// dpc_cli: run any DELP from files, drive it with a trace, and query
// provenance interactively — the adoptable front door to the library.
//
//   dpc_cli --program forwarding.ndlog --trace run.trace --scheme advanced
//
// The program file holds NDlog rules (see examples in src/apps). The trace
// file holds one command per line ('#' starts a comment):
//
//   nodes N                      declare N nodes (ids 0..N-1)
//   link A B LATENCY_S BW_BPS    add an undirected link
//   interest REL                 add REL to the relations of interest
//   slow route(@0, 2, 1)         insert a slow-changing tuple
//   delete route(@0, 2, 1)       delete one (no provenance invalidation)
//   inject 0.5 packet(@0, 0, 2, "x")   schedule an event at t=0.5s
//   run                          drain the simulation
//   keys                         print the computed equivalence keys
//   stats                        print execution counters
//   storage                      print per-scheme storage breakdown
//   snapshot PREFIX              write per-node table snapshots to
//                                PREFIX-nodeN.dpcs (exspan/basic/advanced)
//   query recv(@2, 0, 2, "x")    print the tuple's provenance tree(s)
//   checkpoint                   cut a compacted WAL checkpoint
//                                (needs --wal-dir)
//   crash-at 1.5                 die with _Exit(137) at t=1.5s during the
//                                next run — a kill -9 drill; restart with
//                                --recover to rebuild from disk
//
// The lint subcommand runs the static analyzer over NDlog files without
// executing them:
//
//   dpc_cli lint [--werror] [-f text|json] [--keys] [--plan] [--shard]
//                [--growth] [--storage] [--storage-events N]
//                [--storage-depth D] [--storage-margin F]
//                [--interest REL]... FILE...
//
// The trace subcommand runs a trace script with the observability layer
// enabled, exports the run as Chrome-trace/Perfetto JSON (open it in
// ui.perfetto.dev) and optionally prints the metrics summary:
//
//   dpc_cli trace --program FILE --script FILE [--scheme NAME]
//                 [--out trace.json] [--stats] [--interest REL]...
//
// `--stats` also works in plain run mode to print the metrics registry
// after the script completes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/analysis/lint.h"
#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"
#include "src/core/query.h"
#include "src/core/snapshot.h"
#include "src/ndlog/parser.h"
#include "src/obs/trace.h"
#include "src/util/stats.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

int Fail(const std::string& msg) {
  std::fprintf(stderr, "dpc_cli: %s\n", msg.c_str());
  return 1;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Result<Scheme> ParseScheme(const std::string& name) {
  if (name == "reference") return Scheme::kReference;
  if (name == "exspan") return Scheme::kExspan;
  if (name == "basic") return Scheme::kBasic;
  if (name == "advanced") return Scheme::kAdvanced;
  if (name == "advanced-interclass") return Scheme::kAdvancedInterClass;
  return Status::InvalidArgument(
      "unknown scheme " + name +
      " (reference|exspan|basic|advanced|advanced-interclass)");
}

struct TraceRunner {
  std::unique_ptr<Testbed> bed;
  std::unique_ptr<ProvenanceQuerier> querier;

  int Execute(const std::string& line, int lineno) {
    std::istringstream ss(line);
    std::string cmd;
    ss >> cmd;
    if (cmd.empty() || cmd[0] == '#') return 0;

    auto rest = [&ss]() {
      std::string r;
      std::getline(ss, r);
      return r;
    };
    auto error = [lineno](const std::string& msg) {
      return Fail("trace line " + std::to_string(lineno) + ": " + msg);
    };

    if (cmd == "slow" || cmd == "delete") {
      auto tuple = ParseTuple(rest());
      if (!tuple.ok()) return error(tuple.status().ToString());
      Status st = cmd == "slow" ? bed->system().InsertSlowTuple(*tuple)
                                : bed->system().DeleteSlowTuple(*tuple);
      if (!st.ok()) return error(st.ToString());
      return 0;
    }
    if (cmd == "inject") {
      double when = 0;
      ss >> when;
      auto tuple = ParseTuple(rest());
      if (!tuple.ok()) return error(tuple.status().ToString());
      Status st = bed->system().ScheduleInject(*tuple, when);
      if (!st.ok()) return error(st.ToString());
      return 0;
    }
    if (cmd == "run") {
      bed->system().Run();
      return 0;
    }
    if (cmd == "keys") {
      auto keys = ComputeEquivalenceKeys(bed->program());
      if (!keys.ok()) return error(keys.status().ToString());
      std::printf("equivalence keys: %s\n", keys->ToString().c_str());
      return 0;
    }
    if (cmd == "stats") {
      const SystemStats& s = bed->system().stats();
      std::printf("events=%llu firings=%llu outputs=%llu sigs=%llu "
                  "net=%s msgs=%llu\n",
                  static_cast<unsigned long long>(s.events_injected),
                  static_cast<unsigned long long>(s.rule_firings),
                  static_cast<unsigned long long>(s.outputs),
                  static_cast<unsigned long long>(s.control_signals),
                  FormatBytes(static_cast<double>(
                                  bed->network().total_bytes_sent()))
                      .c_str(),
                  static_cast<unsigned long long>(
                      bed->network().total_messages()));
      return 0;
    }
    if (cmd == "storage") {
      StorageBreakdown s = bed->TotalStorage();
      std::printf("storage: prov=%zu ruleExec=%zu events=%zu tuples=%zu "
                  "total=%zu bytes\n",
                  s.prov, s.rule_exec, s.event_store, s.tuple_store,
                  s.Total());
      return 0;
    }
    if (cmd == "snapshot") {
      std::string prefix;
      ss >> prefix;
      if (prefix.empty()) return error("snapshot needs a file prefix");
      int nodes = bed->topology().num_nodes();
      size_t total = 0;
      for (NodeId n = 0; n < nodes; ++n) {
        NodeSnapshot snap;
        if (bed->exspan() != nullptr) {
          snap = bed->exspan()->SnapshotAt(n);
        } else if (bed->basic() != nullptr) {
          snap = bed->basic()->SnapshotAt(n);
        } else if (bed->advanced() != nullptr) {
          snap = bed->advanced()->SnapshotAt(n);
        } else {
          return error("the reference scheme has no snapshot support");
        }
        ByteWriter w;
        snap.Serialize(w);
        std::string path =
            prefix + "-node" + std::to_string(n) + ".dpcs";
        std::ofstream out(path, std::ios::binary);
        if (!out) return error("cannot write " + path);
        out.write(reinterpret_cast<const char*>(w.bytes().data()),
                  static_cast<std::streamsize>(w.size()));
        total += w.size();
      }
      std::printf("wrote %d snapshot files (%zu bytes)\n", nodes, total);
      return 0;
    }
    if (cmd == "checkpoint") {
      if (bed->wal() == nullptr) return error("checkpoint needs --wal-dir");
      Status st = bed->wal()->Checkpoint();
      if (!st.ok()) return error(st.ToString());
      std::printf("checkpoint cut (%llu total, %llu records journaled)\n",
                  static_cast<unsigned long long>(bed->wal()->checkpoints_cut()),
                  static_cast<unsigned long long>(bed->wal()->records_logged()));
      return 0;
    }
    if (cmd == "crash-at") {
      double when = 0;
      if (!(ss >> when)) return error("crash-at needs a time");
      // _Exit skips destructors and stdio flushing — the closest a process
      // can get to kill -9 from inside. The WAL survives because every
      // append was already flushed (WalWriter::Append).
      bed->ScheduleGlobal(when, [when]() {
        std::fprintf(stderr, "dpc_cli: crash-at t=%g: simulating kill -9\n",
                     when);
        std::_Exit(137);
      });
      return 0;
    }
    if (cmd == "query") {
      if (querier == nullptr) querier = bed->MakeQuerier();
      if (querier == nullptr) {
        return error("the reference scheme is not queryable; use its trees");
      }
      auto tuple = ParseTuple(rest());
      if (!tuple.ok()) return error(tuple.status().ToString());
      auto res = querier->Query(*tuple);
      if (!res.ok()) return error(res.status().ToString());
      std::printf("%zu derivation(s), latency %.3f ms, %zu entries, "
                  "%d hops:\n",
                  res->trees.size(), res->latency_s * 1e3,
                  res->entries_touched, res->hops);
      for (const ProvTree& tree : res->trees) {
        std::printf("%s", tree.ToString().c_str());
      }
      return 0;
    }
    return error("unknown command " + cmd);
  }
};

int RunLint(int argc, char** argv) {
  LintOptions options;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "-f" || arg == "--format") {
      const char* v = next();
      if (!v) return Fail("-f needs a format (text|json)");
      if (std::strcmp(v, "text") == 0) {
        options.format = LintFormat::kText;
      } else if (std::strcmp(v, "json") == 0) {
        options.format = LintFormat::kJson;
      } else {
        return Fail("unknown format " + std::string(v) + " (text|json)");
      }
    } else if (arg == "--keys") {
      options.print_keys = true;
      options.analyzer.key_notes = true;
    } else if (arg == "--plan") {
      options.print_plan = true;
      options.analyzer.plan_notes = true;
    } else if (arg == "--shard") {
      options.print_shard = true;
      options.analyzer.shard = true;
    } else if (arg == "--growth") {
      options.print_growth = true;
      options.analyzer.growth_notes = true;
    } else if (arg == "--storage") {
      options.print_storage = true;
      options.analyzer.storage = true;
    } else if (arg == "--storage-events") {
      const char* v = next();
      if (!v) return Fail("--storage-events needs a count");
      options.analyzer.storage_params.events = std::atof(v);
    } else if (arg == "--storage-depth") {
      const char* v = next();
      if (!v) return Fail("--storage-depth needs a recursion depth");
      options.analyzer.storage_params.recursion_depth = std::atof(v);
    } else if (arg == "--storage-margin") {
      const char* v = next();
      if (!v) return Fail("--storage-margin needs a fraction");
      options.analyzer.storage_params.advanced_margin = std::atof(v);
    } else if (arg == "--interest") {
      const char* v = next();
      if (!v) return Fail("--interest needs a relation");
      options.analyzer.program.relations_of_interest.push_back(v);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: dpc_cli lint [--werror] [-f text|json] [--keys] "
                  "[--plan] [--shard] [--growth] [--storage] "
                  "[--storage-events N] [--storage-depth D] "
                  "[--storage-margin F] [--interest REL]... FILE...\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Fail("unknown lint flag " + arg + " (try dpc_cli lint --help)");
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Fail("lint needs at least one NDlog file");

  std::vector<FileLint> results;
  for (const std::string& path : files) {
    auto source = ReadFile(path);
    if (!source.ok()) return Fail(source.status().ToString());
    options.analyzer.program.name = path;
    results.push_back(LintSource(path, *source, options));
  }

  std::string rendered = options.format == LintFormat::kJson
                             ? RenderJson(results) + "\n"
                             : RenderText(results, options);
  std::fputs(rendered.c_str(), stdout);
  return LintExitCode(results, options);
}

// Flags shared by the plain run mode and the trace subcommand.
struct RunConfig {
  std::string program_path;
  std::string script_path;  // the command script (run mode's --trace)
  std::string scheme_name = "advanced";
  std::vector<std::string> interests;
  std::string trace_out;  // Chrome-trace JSON path ("" = no tracing)
  bool stats = false;     // print the metrics registry at the end
  int shards = 1;         // runtime shard count (TestbedOptions::shards)
  std::string wal_dir;    // journal recorder mutations here (must exist)
  bool recover = false;   // rebuild from wal_dir before running the script
};

int RunScript(const RunConfig& config) {
  auto scheme = ParseScheme(config.scheme_name);
  if (!scheme.ok()) return Fail(scheme.status().ToString());
  auto source = ReadFile(config.program_path);
  if (!source.ok()) return Fail(source.status().ToString());
  auto script_text = ReadFile(config.script_path);
  if (!script_text.ok()) return Fail(script_text.status().ToString());

  ProgramOptions options;
  options.name = config.program_path;
  options.relations_of_interest = config.interests;
  auto program = Program::Parse(*source, options);
  if (!program.ok()) return Fail(program.status().ToString());

  // First pass over the script: topology declarations.
  Topology topo;
  std::vector<std::string> lines;
  {
    std::istringstream ss(*script_text);
    std::string line;
    int lineno = 0;
    while (std::getline(ss, line)) {
      ++lineno;
      std::istringstream ls(line);
      std::string cmd;
      ls >> cmd;
      if (cmd == "nodes") {
        int n = 0;
        ls >> n;
        if (n <= 0) return Fail("bad node count on line " +
                                std::to_string(lineno));
        topo.AddNodes(n);
      } else if (cmd == "link") {
        NodeId a, b;
        LinkProps props;
        ls >> a >> b >> props.latency_s >> props.bandwidth_bps;
        Status st = topo.AddLink(a, b, props);
        if (!st.ok()) return Fail("line " + std::to_string(lineno) + ": " +
                                  st.ToString());
      } else {
        lines.push_back(line);
      }
    }
  }
  if (topo.num_nodes() == 0) return Fail("script declares no nodes");
  topo.ComputeRoutes();

  apps::TestbedOptions bed_options;
  bed_options.trace_path = config.trace_out;
  bed_options.shards = config.shards;
  bed_options.wal_dir = config.wal_dir;
  auto bed = Testbed::Create(std::move(program).value(), &topo, *scheme,
                             std::move(bed_options));
  if (!bed.ok()) return Fail(bed.status().ToString());

  TraceRunner runner;
  runner.bed = std::move(bed).value();
  if (config.recover) {
    if (runner.bed->wal() == nullptr) {
      return Fail("--recover needs --wal-dir");
    }
    auto stats = runner.bed->wal()->Recover();
    if (!stats.ok()) return Fail(stats.status().ToString());
    std::printf("recovered: %d node checkpoint(s), %llu record(s) replayed, "
                "%llu skipped, %llu corrupt frame(s)\n",
                stats->nodes_with_checkpoint,
                static_cast<unsigned long long>(stats->records_replayed),
                static_cast<unsigned long long>(stats->records_skipped),
                static_cast<unsigned long long>(stats->corrupt_frames));
  }
  std::printf("# %s on %d nodes under %s\n", config.program_path.c_str(),
              topo.num_nodes(), apps::SchemeName(*scheme));
  int lineno = 0;
  for (const std::string& line : lines) {
    ++lineno;
    int rc = runner.Execute(line, lineno);
    if (rc != 0) return rc;
  }
  if (config.stats) {
    std::fputs(runner.bed->MetricsDelta().ToText().c_str(), stdout);
  }
  if (!config.trace_out.empty()) {
    Status st = runner.bed->FlushTrace();
    if (!st.ok()) return Fail(st.ToString());
    std::printf("wrote %zu trace events to %s (%llu dropped)\n",
                Trace().event_count(), config.trace_out.c_str(),
                static_cast<unsigned long long>(Trace().dropped_events()));
  }
  return 0;
}

// dpc_cli trace: the run machinery with the observability layer on. The
// command script stays under --script here because --trace historically
// names the script in run mode; --out is the Chrome-trace JSON.
int RunTraceExport(int argc, char** argv) {
  RunConfig config;
  config.trace_out = "trace.json";
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      const char* v = next();
      if (!v) return Fail("--program needs a file");
      config.program_path = v;
    } else if (arg == "--script" || arg == "--trace") {
      const char* v = next();
      if (!v) return Fail(arg + " needs a file");
      config.script_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return Fail("--out needs a file");
      config.trace_out = v;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return Fail("--scheme needs a name");
      config.scheme_name = v;
    } else if (arg == "--interest") {
      const char* v = next();
      if (!v) return Fail("--interest needs a relation");
      config.interests.push_back(v);
    } else if (arg == "--stats") {
      config.stats = true;
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return Fail("--shards needs a count");
      config.shards = std::atoi(v);
      if (config.shards < 1) return Fail("--shards must be >= 1");
    } else if (arg == "--wal-dir") {
      const char* v = next();
      if (!v) return Fail("--wal-dir needs a directory");
      config.wal_dir = v;
    } else if (arg == "--recover") {
      config.recover = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: dpc_cli trace --program FILE --script FILE "
                  "[--scheme NAME] [--out trace.json] [--stats] "
                  "[--shards N] [--wal-dir DIR] [--recover] "
                  "[--interest REL]...\n");
      return 0;
    } else {
      return Fail("unknown trace flag " + arg + " (try dpc_cli trace --help)");
    }
  }
  if (config.program_path.empty() || config.script_path.empty()) {
    return Fail("trace needs --program and --script (try dpc_cli trace "
                "--help)");
  }
  return RunScript(config);
}

int Run(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "lint") == 0) {
    return RunLint(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "trace") == 0) {
    return RunTraceExport(argc, argv);
  }
  RunConfig config;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--program") {
      const char* v = next();
      if (!v) return Fail("--program needs a file");
      config.program_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return Fail("--trace needs a file");
      config.script_path = v;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return Fail("--scheme needs a name");
      config.scheme_name = v;
    } else if (arg == "--interest") {
      const char* v = next();
      if (!v) return Fail("--interest needs a relation");
      config.interests.push_back(v);
    } else if (arg == "--stats") {
      config.stats = true;
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return Fail("--shards needs a count");
      config.shards = std::atoi(v);
      if (config.shards < 1) return Fail("--shards must be >= 1");
    } else if (arg == "--wal-dir") {
      const char* v = next();
      if (!v) return Fail("--wal-dir needs a directory");
      config.wal_dir = v;
    } else if (arg == "--recover") {
      config.recover = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: dpc_cli --program FILE --trace FILE "
                  "[--scheme NAME] [--stats] [--shards N] "
                  "[--wal-dir DIR] [--recover] [--interest REL]...\n"
                  "       dpc_cli lint [--werror] [-f text|json] [--keys] "
                  "[--plan] [--shard] [--growth] [--storage] "
                  "[--interest REL]... FILE...\n"
                  "       dpc_cli trace --program FILE --script FILE "
                  "[--scheme NAME] [--out trace.json] [--stats] "
                  "[--interest REL]...\n");
      return 0;
    } else {
      return Fail("unknown flag " + arg + " (try --help)");
    }
  }
  if (config.program_path.empty() || config.script_path.empty()) {
    return Fail("--program and --trace are required (try --help)");
  }
  return RunScript(config);
}

}  // namespace
}  // namespace dpc

int main(int argc, char** argv) { return dpc::Run(argc, argv); }
