// Testbed wiring: each scheme produces the matching recorder, querier and
// accounting surfaces; environment scaling helpers.
#include "src/apps/testbed.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/apps/experiments.h"
#include "src/apps/forwarding.h"
#include "src/net/topology_factory.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

TEST(SchemeNameTest, AllNamed) {
  EXPECT_STREQ(apps::SchemeName(Scheme::kReference), "Reference");
  EXPECT_STREQ(apps::SchemeName(Scheme::kExspan), "ExSPAN");
  EXPECT_STREQ(apps::SchemeName(Scheme::kBasic), "Basic");
  EXPECT_STREQ(apps::SchemeName(Scheme::kAdvanced), "Advanced");
  EXPECT_STREQ(apps::SchemeName(Scheme::kAdvancedInterClass),
               "Advanced+InterClass");
}

class TestbedWiringTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(TestbedWiringTest, RecorderAndQuerierMatchScheme) {
  Topology topo = MakeLineTopology(3);
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &topo, GetParam());
  ASSERT_TRUE(bed.ok());

  Scheme scheme = GetParam();
  EXPECT_EQ((*bed)->scheme(), scheme);
  EXPECT_EQ((*bed)->reference() != nullptr, scheme == Scheme::kReference);
  EXPECT_EQ((*bed)->exspan() != nullptr, scheme == Scheme::kExspan);
  EXPECT_EQ((*bed)->basic() != nullptr, scheme == Scheme::kBasic);
  EXPECT_EQ((*bed)->advanced() != nullptr,
            scheme == Scheme::kAdvanced ||
                scheme == Scheme::kAdvancedInterClass);
  EXPECT_EQ((*bed)->MakeQuerier() == nullptr, scheme == Scheme::kReference);
  EXPECT_EQ((*bed)->recorder().name(),
            std::string(apps::SchemeName(scheme)) == "Reference"
                ? "Reference"
                : apps::SchemeName(scheme));
  // Fresh deployments hold no provenance.
  EXPECT_EQ((*bed)->TotalStorage().Total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, TestbedWiringTest,
    ::testing::Values(Scheme::kReference, Scheme::kExspan, Scheme::kBasic,
                      Scheme::kAdvanced, Scheme::kAdvancedInterClass),
    [](const auto& info) {
      std::string name = apps::SchemeName(info.param);
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

TEST(TestbedTest, AdvancedInterClassUsesSplitTables) {
  Topology topo = MakeLineTopology(3);
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(*program, &topo, Scheme::kAdvancedInterClass);
  ASSERT_TRUE(bed.ok());
  ASSERT_NE((*bed)->advanced(), nullptr);
  EXPECT_TRUE((*bed)->advanced()->inter_class_sharing());
  EXPECT_EQ((*bed)->advanced()->name(), "Advanced+InterClass");
}

TEST(TestbedTest, InvalidProgramPropagatesError) {
  Topology topo = MakeLineTopology(2);
  auto bad = Program::Parse("a(@X) :- e(@X), e(@X).");
  ASSERT_FALSE(bad.ok());  // rejected before Testbed is even involved
}

TEST(EnvScalingTest, DoubleAndSizeFallBackAndParse) {
  unsetenv("DPC_TEST_KNOB");
  EXPECT_DOUBLE_EQ(apps::EnvDouble("DPC_TEST_KNOB", 2.5), 2.5);
  EXPECT_EQ(apps::EnvSize("DPC_TEST_KNOB", 7u), 7u);
  setenv("DPC_TEST_KNOB", "123.5", 1);
  EXPECT_DOUBLE_EQ(apps::EnvDouble("DPC_TEST_KNOB", 2.5), 123.5);
  EXPECT_EQ(apps::EnvSize("DPC_TEST_KNOB", 7u), 123u);
  setenv("DPC_TEST_KNOB", "1000000", 1);
  EXPECT_EQ(apps::EnvSize("DPC_TEST_KNOB", 7u), 1000000u);
  unsetenv("DPC_TEST_KNOB");
}

TEST(TestbedTest, SameProgramCanDriveMultipleBeds) {
  Topology topo = MakeLineTopology(3);
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  // The Testbed copies the program: several schemes can be deployed from
  // the same parsed instance (as the benches do).
  auto a = Testbed::Create(*program, &topo, Scheme::kExspan);
  auto b = Testbed::Create(*program, &topo, Scheme::kAdvanced);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*a)->system()
                  .InsertSlowTuple(apps::MakeRoute(0, 2, 1))
                  .ok());
  // Independent databases.
  EXPECT_EQ((*b)->system().DbAt(0).TotalTuples(), 0u);
}

}  // namespace
}  // namespace dpc
