// DNS application helpers: universe generation, state installation,
// workloads.
#include "src/apps/dns.h"

#include <gtest/gtest.h>

#include <set>

#include "src/apps/experiments.h"
#include "src/apps/testbed.h"
#include "src/ndlog/functions.h"

namespace dpc {
namespace {

TEST(DnsProgramTest, ParsesFourRules) {
  auto p = apps::MakeDnsProgram();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules().size(), 4u);
  EXPECT_TRUE(p->IsOfInterest("reply"));
}

TEST(DnsUniverseTest, PaperConfiguration) {
  apps::DnsUniverse u = apps::MakeDnsUniverse();
  EXPECT_EQ(u.servers.size(), 100u);
  EXPECT_EQ(u.urls.size(), 38u);
  EXPECT_GE(u.max_depth, 27);
  EXPECT_TRUE(u.graph.IsConnected());
  // Clients are co-located on distinct non-root servers by default.
  EXPECT_EQ(u.clients.size(), 99u);
  std::set<NodeId> client_set(u.clients.begin(), u.clients.end());
  EXPECT_EQ(client_set.size(), u.clients.size());
  EXPECT_EQ(client_set.count(u.root_server), 0u);
}

TEST(DnsUniverseTest, DomainsAreSuffixNested) {
  apps::DnsUniverse u = apps::MakeDnsUniverse();
  EXPECT_EQ(u.domains[0], "");  // root
  for (size_t i = 1; i < u.servers.size(); ++i) {
    int parent = u.parents[i];
    ASSERT_GE(parent, 0);
    // A child's domain is a sub-domain of (strictly below) its parent's.
    EXPECT_TRUE(IsSubDomain(u.domains[parent], u.domains[i]))
        << u.domains[i] << " under " << u.domains[parent];
    EXPECT_NE(u.domains[i], u.domains[parent]);
    // Tree edges exist in the graph.
    EXPECT_TRUE(u.graph.HasLink(u.servers[parent], u.servers[i]));
  }
}

TEST(DnsUniverseTest, UrlsBelongToTheirHolders) {
  apps::DnsUniverse u = apps::MakeDnsUniverse();
  for (size_t k = 0; k < u.urls.size(); ++k) {
    EXPECT_TRUE(IsSubDomain(u.domains[u.url_holders[k]], u.urls[k]))
        << u.urls[k];
  }
}

TEST(DnsUniverseTest, UrlsAreDistinct) {
  apps::DnsUniverse u = apps::MakeDnsUniverse();
  std::set<std::string> urls(u.urls.begin(), u.urls.end());
  EXPECT_EQ(urls.size(), u.urls.size());
}

TEST(DnsUniverseTest, DedicatedClientMode) {
  apps::DnsParams params;
  params.colocate_clients = false;
  params.num_clients = 7;
  apps::DnsUniverse u = apps::MakeDnsUniverse(params);
  EXPECT_EQ(u.graph.num_nodes(), 107);
  EXPECT_EQ(u.clients.size(), 7u);
  EXPECT_TRUE(u.graph.IsConnected());
}

TEST(DnsUniverseTest, DeterministicForSeed) {
  apps::DnsUniverse a = apps::MakeDnsUniverse();
  apps::DnsUniverse b = apps::MakeDnsUniverse();
  EXPECT_EQ(a.domains, b.domains);
  EXPECT_EQ(a.urls, b.urls);
  EXPECT_EQ(a.clients, b.clients);
}

TEST(DnsInstallTest, InsertsAllSlowState) {
  apps::DnsParams params;
  params.num_servers = 15;
  params.num_clients = 3;
  params.num_urls = 5;
  params.trunk_depth = 4;
  apps::DnsUniverse u = apps::MakeDnsUniverse(params);

  auto program = apps::MakeDnsProgram();
  ASSERT_TRUE(program.ok());
  auto bed = apps::Testbed::Create(std::move(program).value(), &u.graph,
                                   apps::Scheme::kReference);
  ASSERT_TRUE(bed.ok());
  ASSERT_TRUE(apps::InstallDnsState((*bed)->system(), u).ok());

  // Every client knows the root.
  for (NodeId client : u.clients) {
    EXPECT_TRUE((*bed)->system().DbAt(client).Contains(
        Tuple::Make("rootServer", client, {Value::Int(u.root_server)})));
  }
  // Every non-root server is delegated from its parent.
  for (size_t i = 1; i < u.servers.size(); ++i) {
    EXPECT_TRUE((*bed)->system().DbAt(u.servers[u.parents[i]]).Contains(
        Tuple::Make("nameServer", u.servers[u.parents[i]],
                    {Value::Str(u.domains[i]), Value::Int(u.servers[i])})));
  }
  // Every URL has an address record at its holder.
  for (size_t k = 0; k < u.urls.size(); ++k) {
    const Table* records =
        (*bed)->system().DbAt(u.servers[u.url_holders[k]]).Find(
            "addressRecord");
    ASSERT_NE(records, nullptr);
    bool found = false;
    records->ForEach([&](const Tuple& t) {
      if (t.at(1) == Value::Str(u.urls[k])) found = true;
      return true;
    });
    EXPECT_TRUE(found) << u.urls[k];
  }
}

TEST(DnsWorkloadTest, RespectsCountRateAndUrlCap) {
  apps::DnsUniverse u = apps::MakeDnsUniverse();
  auto items = apps::MakeDnsWorkload(u, 100, 50, 0.9, 1, /*num_urls=*/3);
  EXPECT_EQ(items.size(), 100u);
  std::set<std::string> used;
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].event.relation(), "url");
    EXPECT_NEAR(items[i].time_s, static_cast<double>(i) / 50, 1e-9);
    used.insert(items[i].event.at(1).AsString());
  }
  EXPECT_LE(used.size(), 3u);
}

TEST(DnsWorkloadTest, RequestIdsAreUnique) {
  apps::DnsUniverse u = apps::MakeDnsUniverse();
  auto items = apps::MakeDnsWorkload(u, 50, 50, 0.9, 1);
  std::set<int64_t> ids;
  for (const auto& item : items) ids.insert(item.event.at(2).AsInt());
  EXPECT_EQ(ids.size(), 50u);
}

TEST(DnsExperimentTest, EveryRequestResolves) {
  apps::DnsParams params;
  params.num_servers = 20;
  params.num_clients = 4;
  params.num_urls = 6;
  params.trunk_depth = 6;
  apps::DnsUniverse u = apps::MakeDnsUniverse(params);
  auto items = apps::MakeDnsWorkload(u, 60, 30, 0.9, 1);
  apps::ExperimentConfig config;
  config.duration_s = 3;
  config.snapshot_interval_s = 1;
  auto res = apps::RunDns(apps::Scheme::kAdvanced, u, items, config);
  EXPECT_EQ(res.events_injected, 60u);
  EXPECT_EQ(res.outputs, 60u);
  EXPECT_GT(res.final_storage.Total(), 0u);
}

}  // namespace
}  // namespace dpc
