// ARP and DHCP as DELPs (§3.1's claim that the model covers them):
// validation, equivalence keys, end-to-end execution, compression, and
// query reconstruction under every scheme.
#include "src/apps/extras.h"

#include <gtest/gtest.h>

#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"
#include "src/core/query.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

TEST(ArpProgramTest, ValidatesAsDelp) {
  auto p = apps::MakeArpProgram();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input_event_relation(), "arpQuery");
  EXPECT_EQ(p->RoleOf("arpReply"), RelationRole::kTerminal);
  EXPECT_EQ(p->RoleOf("uplink"), RelationRole::kSlowChanging);
  EXPECT_EQ(p->RoleOf("owner"), RelationRole::kSlowChanging);
  EXPECT_EQ(p->RoleOf("macOf"), RelationRole::kSlowChanging);
}

TEST(ArpProgramTest, EquivalenceKeysAreLocationAndIp) {
  auto p = apps::MakeArpProgram();
  ASSERT_TRUE(p.ok());
  auto keys = ComputeEquivalenceKeys(*p);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 1}));
}

TEST(DhcpProgramTest, ValidatesAsDelp) {
  auto p = apps::MakeDhcpProgram();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input_event_relation(), "dhcpDiscover");
  EXPECT_EQ(p->RoleOf("dhcpOffer"), RelationRole::kTerminal);
}

TEST(DhcpProgramTest, EquivalenceKeysAreLocationAndMac) {
  auto p = apps::MakeDhcpProgram();
  ASSERT_TRUE(p.ok());
  auto keys = ComputeEquivalenceKeys(*p);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 1}));
}

TEST(LanFixtureTest, ShapeAndConnectivity) {
  apps::LanFixture lan = apps::MakeLan(5);
  EXPECT_EQ(lan.graph.num_nodes(), 6);
  EXPECT_EQ(lan.hosts.size(), 5u);
  EXPECT_TRUE(lan.graph.IsConnected());
  EXPECT_EQ(lan.graph.Diameter(), 2);  // star
  EXPECT_EQ(lan.dhcp_server, lan.hosts.back());
}

class ExtrasSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(ExtrasSchemeTest, ArpResolvesAndReconstructs) {
  apps::LanFixture lan = apps::MakeLan(4);
  auto program = apps::MakeArpProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &lan.graph,
                             GetParam());
  ASSERT_TRUE(bed.ok());
  ASSERT_TRUE(apps::InstallArpState((*bed)->system(), lan).ok());

  // Host 0 resolves every other host's IP, twice (one equivalence class
  // per (host, IP), two members each).
  double t = 0;
  for (int round = 0; round < 2; ++round) {
    for (int i = 1; i < 4; ++i) {
      ASSERT_TRUE((*bed)
                      ->system()
                      .ScheduleInject(apps::MakeArpQuery(lan.hosts[0],
                                                         apps::LanIpOfHost(i)),
                                      t += 0.01)
                      .ok());
    }
  }
  (*bed)->system().Run();

  ASSERT_EQ((*bed)->system().stats().outputs, 6u);
  for (const OutputRecord& out : (*bed)->system().OutputsAt(lan.hosts[0])) {
    ASSERT_EQ(out.tuple.relation(), "arpReply");
    int64_t ip = out.tuple.at(1).AsInt();
    EXPECT_EQ(out.tuple.at(2).AsString(),
              apps::LanMacOfHost(static_cast<int>(ip - 100)));
  }

  if (GetParam() == Scheme::kReference) return;
  auto querier = (*bed)->MakeQuerier();
  Tuple reply = apps::MakeArpReply(lan.hosts[0], apps::LanIpOfHost(2),
                                   apps::LanMacOfHost(2));
  auto res = querier->Query(reply);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_GE(res->trees.size(), 1u);
  const ProvTree& tree = res->trees[0];
  ASSERT_EQ(tree.depth(), 3u);  // a1, a2, a3
  EXPECT_EQ(tree.event(),
            apps::MakeArpQuery(lan.hosts[0], apps::LanIpOfHost(2)));
  EXPECT_EQ(tree.steps()[0].rule_id, "a1");
  EXPECT_EQ(tree.steps()[1].rule_id, "a2");
  EXPECT_EQ(tree.steps()[2].rule_id, "a3");
}

TEST_P(ExtrasSchemeTest, DhcpOffersCorrectAddresses) {
  apps::LanFixture lan = apps::MakeLan(4);
  auto program = apps::MakeDhcpProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &lan.graph,
                             GetParam());
  ASSERT_TRUE(bed.ok());
  ASSERT_TRUE(apps::InstallDhcpState((*bed)->system(), lan).ok());

  double t = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(
                        apps::MakeDhcpDiscover(lan.hosts[i],
                                               apps::LanMacOfHost(i)),
                        t += 0.01)
                    .ok());
  }
  (*bed)->system().Run();

  ASSERT_EQ((*bed)->system().stats().outputs, 4u);
  for (int i = 0; i < 4; ++i) {
    const auto& outs = (*bed)->system().OutputsAt(lan.hosts[i]);
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].tuple,
              apps::MakeDhcpOffer(lan.hosts[i], apps::LanMacOfHost(i),
                                  apps::LanIpOfHost(i)));
  }

  if (GetParam() == Scheme::kReference) return;
  auto querier = (*bed)->MakeQuerier();
  Tuple offer = apps::MakeDhcpOffer(lan.hosts[1], apps::LanMacOfHost(1),
                                    apps::LanIpOfHost(1));
  auto res = querier->Query(offer);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_GE(res->trees.size(), 1u);
  EXPECT_EQ(res->trees[0].depth(), 3u);  // d1, d2, d3
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ExtrasSchemeTest,
    ::testing::Values(Scheme::kReference, Scheme::kExspan, Scheme::kBasic,
                      Scheme::kAdvanced, Scheme::kAdvancedInterClass),
    [](const auto& info) {
      std::string name = apps::SchemeName(info.param);
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

TEST(ExtrasCompressionTest, ArpClassesCompressRepeatedQueries) {
  apps::LanFixture lan = apps::MakeLan(3);
  auto program = apps::MakeArpProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &lan.graph,
                             Scheme::kAdvanced);
  ASSERT_TRUE(bed.ok());
  ASSERT_TRUE(apps::InstallArpState((*bed)->system(), lan).ok());

  // The same (host, IP) query 20 times: one shared tree.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(apps::MakeArpQuery(lan.hosts[0],
                                                       apps::LanIpOfHost(1)),
                                    0.01 * (i + 1))
                    .ok());
  }
  (*bed)->system().Run();

  size_t rule_exec_rows = 0;
  for (NodeId n = 0; n < lan.graph.num_nodes(); ++n) {
    rule_exec_rows += (*bed)->advanced()->RuleExecAt(n).size();
  }
  EXPECT_EQ(rule_exec_rows, 3u);  // a1 + a2 + a3, shared by all 20 queries
  // Identical queries yield identical output tuples, so even the prov
  // table collapses to a single row.
  size_t prov_rows = 0;
  for (NodeId n = 0; n < lan.graph.num_nodes(); ++n) {
    prov_rows += (*bed)->advanced()->ProvAt(n).size();
  }
  EXPECT_EQ(prov_rows, 1u);
}

}  // namespace
}  // namespace dpc
