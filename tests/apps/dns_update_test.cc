// §5.5 on the DNS application: re-homing a URL's address record
// mid-stream. Historical resolutions keep their original provenance; new
// resolutions reflect the new holder, including for equivalence classes
// that existed before the change.
#include <gtest/gtest.h>

#include "src/apps/dns.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"
#include "src/runtime/replay.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class DnsUpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    apps::DnsParams params;
    params.num_servers = 16;
    params.num_clients = 3;
    params.num_urls = 4;
    params.trunk_depth = 5;
    universe_ = apps::MakeDnsUniverse(params);
    auto program = apps::MakeDnsProgram();
    ASSERT_TRUE(program.ok());
    program_ = std::make_unique<Program>(std::move(program).value());
    auto bed = Testbed::Create(*program_, &universe_.graph,
                               Scheme::kAdvanced);
    ASSERT_TRUE(bed.ok());
    bed_ = std::move(bed).value();
    bed_->system().SetReplayLog(&log_);
    ASSERT_TRUE(apps::InstallDnsState(bed_->system(), universe_).ok());
    bed_->system().Run();
  }

  Tuple AddressRecord(int url_index, NodeId holder) {
    int64_t ip = 0x0A000000 + static_cast<int64_t>(url_index);
    return Tuple::Make("addressRecord", holder,
                       {Value::Str(universe_.urls[url_index]),
                        Value::Int(ip)});
  }

  apps::DnsUniverse universe_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<Testbed> bed_;
  ReplayLog log_;
};

TEST_F(DnsUpdateTest, RehomedUrlKeepsHistoryAndServesNewChain) {
  System& sys = bed_->system();
  NodeId client = universe_.clients[0];
  const std::string& url = universe_.urls[0];
  NodeId old_holder = universe_.servers[universe_.url_holders[0]];

  // Resolve twice before the change (the second hit is existFlag=true).
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakeUrlEvent(client, url, 1), 1.0).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakeUrlEvent(client, url, 2), 2.0).ok());
  sys.Run();
  ASSERT_EQ(sys.OutputsAt(client).size(), 2u);

  // Re-home the URL: the record moves from its holder to that holder's
  // parent (always present: holders are non-root).
  int old_idx = universe_.url_holders[0];
  NodeId new_holder = universe_.servers[universe_.parents[old_idx]];
  ASSERT_NE(new_holder, old_holder);
  ASSERT_TRUE(sys.DeleteSlowTuple(AddressRecord(0, old_holder)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(AddressRecord(0, new_holder)).ok());
  sys.Run();

  // Resolve again after the change: same equivalence class (client, url).
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakeUrlEvent(client, url, 3), 10.0).ok());
  sys.Run();
  ASSERT_EQ(sys.OutputsAt(client).size(), 3u);

  auto querier = bed_->MakeQuerier();
  auto holder_of = [](const ProvTree& tree) {
    // The r3 (addressRecord join) firing location.
    for (const ProvStep& step : tree.steps()) {
      if (step.rule_id == "r3") {
        return step.slow_tuples.at(0).Location();
      }
    }
    return kNullNode;
  };

  // Historical resolutions answer with the OLD holder.
  for (int64_t rqid : {1, 2}) {
    const OutputRecord& out = sys.OutputsAt(client)[rqid - 1];
    Vid evid = out.meta.evid;
    auto res = querier->Query(out.tuple, &evid);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->trees.size(), 1u);
    EXPECT_EQ(holder_of(res->trees[0]), old_holder) << "rqid " << rqid;
  }
  // The post-update resolution answers with the NEW holder even though its
  // equivalence class predates the change (§5.5's cache reset).
  {
    const OutputRecord& out = sys.OutputsAt(client)[2];
    Vid evid = out.meta.evid;
    auto res = querier->Query(out.tuple, &evid);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->trees.size(), 1u);
    EXPECT_EQ(holder_of(res->trees[0]), new_holder);
  }
}

TEST_F(DnsUpdateTest, ReplayCoversNonInterestRequestTuples) {
  System& sys = bed_->system();
  NodeId client = universe_.clients[1];
  const std::string& url = universe_.urls[1];
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakeUrlEvent(client, url, 7), 1.0).ok());
  sys.Run();
  ASSERT_EQ(sys.OutputsAt(client).size(), 1u);

  // The intermediate `request` tuple at the root nameserver has no prov
  // row anywhere; §3.2 replay reconstructs its derivation.
  Tuple root_request = Tuple::Make(
      "request", universe_.root_server,
      {Value::Str(url), Value::Int(client), Value::Int(7)});
  Replayer replayer(program_.get(), &universe_.graph);
  auto trees = replayer.ProvenanceOf(log_, root_request);
  ASSERT_TRUE(trees.ok()) << trees.status().ToString();
  ASSERT_EQ(trees->size(), 1u);
  EXPECT_EQ((*trees)[0].depth(), 1u);  // just r1 at the client
  EXPECT_EQ((*trees)[0].steps()[0].rule_id, "r1");
  EXPECT_EQ((*trees)[0].event(), apps::MakeUrlEvent(client, url, 7));
}

TEST_F(DnsUpdateTest, DelegationInsertionResetsCaches) {
  System& sys = bed_->system();
  uint64_t sigs = sys.stats().control_signals;
  uint64_t epoch = bed_->advanced()->EpochAt(universe_.root_server);
  // Delegating a brand-new (synthetic) subdomain is a slow-table insert:
  // every node must receive a sig and bump its epoch.
  ASSERT_TRUE(sys.InsertSlowTuple(Tuple::Make(
                     "nameServer", universe_.root_server,
                     {Value::Str("brandnew"), Value::Int(universe_.servers[1])}))
                  .ok());
  sys.Run();
  EXPECT_EQ(sys.stats().control_signals,
            sigs + static_cast<uint64_t>(universe_.graph.num_nodes()));
  EXPECT_EQ(bed_->advanced()->EpochAt(universe_.root_server), epoch + 1);
}

}  // namespace
}  // namespace dpc
