// Packet forwarding application helpers: program text, route installation,
// workload generation.
#include "src/apps/forwarding.h"

#include <gtest/gtest.h>

#include <set>

#include "src/apps/experiments.h"
#include "src/apps/testbed.h"

namespace dpc {
namespace {

TEST(ForwardingProgramTest, ParsesAndDesignatesRecv) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->rules().size(), 2u);
  EXPECT_EQ(p->name(), "packet-forwarding");
  EXPECT_TRUE(p->IsOfInterest("recv"));
}

TEST(ForwardingTest, TupleConstructors) {
  EXPECT_EQ(apps::MakeRoute(1, 3, 2).ToString(), "route(@1, 3, 2)");
  EXPECT_EQ(apps::MakePacket(1, 1, 3, "d").ToString(),
            "packet(@1, 1, 3, \"d\")");
  EXPECT_EQ(apps::MakeRecv(3, 1, 3, "d").ToString(),
            "recv(@3, 1, 3, \"d\")");
}

TEST(ForwardingTest, InstallRoutesFollowsShortestPath) {
  TransitStubParams params;
  params.num_transit = 2;
  params.stubs_per_transit = 2;
  params.nodes_per_stub = 3;
  TransitStubTopology topo = MakeTransitStub(params);

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto bed = apps::Testbed::Create(std::move(program).value(), &topo.graph,
                                   apps::Scheme::kReference);
  ASSERT_TRUE(bed.ok());

  NodeId s = topo.stub_nodes.front(), d = topo.stub_nodes.back();
  ASSERT_TRUE(
      apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d).ok());
  std::vector<NodeId> path = topo.graph.Path(s, d);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE((*bed)->system().DbAt(path[i]).Contains(
        apps::MakeRoute(path[i], d, path[i + 1])));
  }
  // The destination itself holds no route for d.
  const Table* table = (*bed)->system().DbAt(d).Find("route");
  if (table != nullptr) {
    table->ForEach([&](const Tuple& t) {
      EXPECT_NE(t.at(1), Value::Int(d));
      return true;
    });
  }
}

TEST(ForwardingTest, PairsAreDistinctAndStubOnly) {
  TransitStubTopology topo = MakeTransitStub();
  Rng rng(3);
  auto pairs = apps::PickCommunicatingPairs(topo, 50, rng);
  EXPECT_EQ(pairs.size(), 50u);
  std::set<std::pair<NodeId, NodeId>> seen;
  std::set<NodeId> stub_set(topo.stub_nodes.begin(), topo.stub_nodes.end());
  for (auto [s, d] : pairs) {
    EXPECT_NE(s, d);
    EXPECT_TRUE(seen.insert({s, d}).second);
    EXPECT_TRUE(stub_set.count(s));
    EXPECT_TRUE(stub_set.count(d));
  }
}

TEST(ForwardingTest, PairCountClampsToUniverse) {
  TransitStubParams params;
  params.num_transit = 1;
  params.stubs_per_transit = 1;
  params.nodes_per_stub = 2;  // 2 stub nodes -> 2 ordered pairs
  TransitStubTopology topo = MakeTransitStub(params);
  Rng rng(3);
  auto pairs = apps::PickCommunicatingPairs(topo, 100, rng);
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(ForwardingTest, PayloadLengthAndUniqueness) {
  std::string a = apps::MakePayload(500, 1);
  std::string b = apps::MakePayload(500, 2);
  EXPECT_EQ(a.size(), 500u);
  EXPECT_EQ(b.size(), 500u);
  EXPECT_NE(a, b);
  EXPECT_EQ(apps::MakePayload(8, 123).size(), 8u);
}

TEST(ForwardingWorkloadTest, RateWorkloadHasExpectedCount) {
  TransitStubTopology topo = MakeTransitStub();
  auto w = apps::MakeForwardingWorkload(topo, 10, 5, 4.0, 100, 1);
  EXPECT_EQ(w.pairs.size(), 10u);
  // ~5 pkt/s x 4 s x 10 pairs = 200, modulo stagger offsets.
  EXPECT_NEAR(static_cast<double>(w.items.size()), 200.0, 10.0);
  for (const auto& item : w.items) {
    EXPECT_GE(item.time_s, 0.0);
    EXPECT_LT(item.time_s, 4.0);
    EXPECT_EQ(item.event.relation(), "packet");
  }
}

TEST(ForwardingWorkloadTest, FixedCountIsExact) {
  TransitStubTopology topo = MakeTransitStub();
  auto w = apps::MakeFixedCountForwardingWorkload(topo, 7, 321, 10.0, 100, 1);
  EXPECT_EQ(w.items.size(), 321u);
  // Packets are spread evenly across pairs.
  std::map<std::pair<NodeId, NodeId>, int> counts;
  for (const auto& item : w.items) {
    counts[{item.event.Location(),
            static_cast<NodeId>(item.event.at(2).AsInt())}]++;
  }
  for (const auto& [_, c] : counts) {
    EXPECT_GE(c, 321 / 7);
    EXPECT_LE(c, 321 / 7 + 1);
  }
}

TEST(ExperimentTest, RunForwardingProducesMonotoneStorage) {
  TransitStubParams params;
  params.num_transit = 2;
  params.stubs_per_transit = 2;
  params.nodes_per_stub = 4;
  TransitStubTopology topo = MakeTransitStub(params);
  auto w = apps::MakeFixedCountForwardingWorkload(topo, 5, 100, 5.0, 64, 1);
  apps::ExperimentConfig config;
  config.duration_s = 5;
  config.snapshot_interval_s = 1;
  auto res = apps::RunForwarding(apps::Scheme::kExspan, topo, w, config);
  ASSERT_GE(res.snapshot_times.size(), 5u);
  for (size_t i = 1; i < res.snapshot_times.size(); ++i) {
    EXPECT_GE(res.TotalStorageAt(i), res.TotalStorageAt(i - 1));
  }
  EXPECT_EQ(res.events_injected, 100u);
  EXPECT_EQ(res.outputs, 100u);
  EXPECT_GT(res.total_network_bytes, 0u);
  EXPECT_GT(res.TotalGrowthBytesPerSec(), 0.0);
}

}  // namespace
}  // namespace dpc
