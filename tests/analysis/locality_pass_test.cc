// Pass 7 (shard locality): N701/W702/E703 classification on the two
// shipped example programs and on minimal synthetic DELPs that isolate
// each code.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"

namespace dpc {
namespace {

AnalysisResult AnalyzeShard(std::string_view source) {
  AnalyzerOptions options;
  options.shard = true;
  return AnalyzeSource(source, options);
}

size_t CountCode(const AnalysisResult& res, const std::string& code) {
  size_t n = 0;
  for (const Diagnostic& d : res.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

const RuleShardReport& RuleReport(const AnalysisResult& res,
                                  const std::string& id) {
  for (const RuleShardReport& r : res.shard_report.rules) {
    if (r.rule_id == id) return r;
  }
  ADD_FAILURE() << "no shard report for rule " << id;
  static RuleShardReport empty;
  return empty;
}

constexpr const char* kForwarding =
    "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
    "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n";

constexpr const char* kDns =
    "r1 request(@RT, URL, HST, RQID) :- url(@HST, URL, RQID),\n"
    "                                   rootServer(@HST, RT).\n"
    "r2 request(@SV, URL, HST, RQID) :- request(@X, URL, HST, RQID),\n"
    "                                   nameServer(@X, DM, SV),\n"
    "                                   f_isSubDomain(DM, URL) == true.\n"
    "r3 dnsResult(@X, URL, IPADDR, HST, RQID) :-\n"
    "                                   request(@X, URL, HST, RQID),\n"
    "                                   addressRecord(@X, URL, IPADDR).\n"
    "r4 reply(@HST, URL, IPADDR, RQID) :-\n"
    "                                   dnsResult(@X, URL, IPADDR, HST, "
    "RQID).\n";

TEST(LocalityPassTest, ForwardingRecursiveRuleIsCrossShardButKeyed) {
  AnalysisResult res = AnalyzeShard(kForwarding);
  ASSERT_EQ(res.shard_report.rules.size(), 2u);

  // r1 forwards the packet to the next hop: cross-shard, but the
  // destination is the head location of the input event relation itself
  // (packet:0), which is an equivalence key — routable.
  const RuleShardReport& r1 = RuleReport(res, "r1");
  EXPECT_FALSE(r1.node_local);
  EXPECT_TRUE(r1.keyed);
  EXPECT_EQ(r1.event_loc, "L");
  EXPECT_EQ(r1.head_loc, "N");
  EXPECT_EQ(r1.mixed_conditions, 0u);

  // r2 delivers locally.
  const RuleShardReport& r2 = RuleReport(res, "r2");
  EXPECT_TRUE(r2.node_local);
  EXPECT_TRUE(r2.keyed);

  EXPECT_EQ(res.shard_report.node_local(), 1u);
  EXPECT_EQ(res.shard_report.cross_shard(), 1u);
  EXPECT_EQ(CountCode(res, "N701"), 1u);
  EXPECT_EQ(CountCode(res, "W702"), 0u);
  EXPECT_EQ(CountCode(res, "E703"), 0u);
}

TEST(LocalityPassTest, DnsFlagsUnkeyedCrossShardHops) {
  AnalysisResult res = AnalyzeShard(kDns);
  ASSERT_EQ(res.shard_report.rules.size(), 4u);

  // r1/r2 route the request to a server picked out of slow-changing
  // state (rootServer/nameServer) by attributes that are not equivalence
  // keys of url: the destination shard is not a function of the event's
  // equivalence class — W702.
  EXPECT_FALSE(RuleReport(res, "r1").node_local);
  EXPECT_FALSE(RuleReport(res, "r1").keyed);
  EXPECT_FALSE(RuleReport(res, "r2").node_local);
  EXPECT_FALSE(RuleReport(res, "r2").keyed);

  // r3 resolves locally.
  EXPECT_TRUE(RuleReport(res, "r3").node_local);

  // r4 replies to the originating host, which is carried from the url
  // event (url:0 -> request:2 -> dnsResult:3 -> reply:0): keyed.
  EXPECT_FALSE(RuleReport(res, "r4").node_local);
  EXPECT_TRUE(RuleReport(res, "r4").keyed);

  EXPECT_EQ(res.shard_report.node_local(), 1u);
  EXPECT_EQ(res.shard_report.cross_shard(), 3u);
  EXPECT_EQ(CountCode(res, "N701"), 1u);
  EXPECT_EQ(CountCode(res, "W702"), 2u);
  EXPECT_EQ(CountCode(res, "E703"), 0u);
}

TEST(LocalityPassTest, NodeLocalRuleGetsN701) {
  AnalysisResult res =
      AnalyzeShard("r1 out(@L, X) :- ev(@L, X), s(@L, X).\n");
  ASSERT_EQ(res.shard_report.rules.size(), 1u);
  EXPECT_TRUE(res.shard_report.rules[0].node_local);
  EXPECT_TRUE(res.shard_report.rules[0].keyed);
  EXPECT_EQ(CountCode(res, "N701"), 1u);
  EXPECT_EQ(CountCode(res, "W702"), 0u);
  EXPECT_EQ(res.errors(), 0u);
}

TEST(LocalityPassTest, UnkeyedDestinationGetsW702) {
  // The destination N comes from the pick table joined only on location:
  // two key-equivalent events can route to different shards.
  AnalysisResult res =
      AnalyzeShard("r1 out(@N, X) :- ev(@L, X), pick(@L, N).\n");
  ASSERT_EQ(res.shard_report.rules.size(), 1u);
  EXPECT_FALSE(res.shard_report.rules[0].node_local);
  EXPECT_FALSE(res.shard_report.rules[0].keyed);
  EXPECT_EQ(CountCode(res, "W702"), 1u);
  EXPECT_EQ(res.errors(), 0u);
}

TEST(LocalityPassTest, ConstantDestinationIsKeyed) {
  AnalysisResult res =
      AnalyzeShard("r1 out(@5, X) :- ev(@L, X), s(@L, X).\n");
  ASSERT_EQ(res.shard_report.rules.size(), 1u);
  EXPECT_FALSE(res.shard_report.rules[0].node_local);
  EXPECT_TRUE(res.shard_report.rules[0].keyed);
  EXPECT_EQ(res.shard_report.rules[0].head_loc, "5");
  EXPECT_EQ(CountCode(res, "W702"), 0u);
}

TEST(LocalityPassTest, RecursiveDestinationThroughKeyIsKeyed) {
  // Recursive rule: the head location attribute is ev:0, itself an
  // equivalence key (same shape as forwarding's r1).
  AnalysisResult res =
      AnalyzeShard("r1 ev(@N, X) :- ev(@L, X), s(@L, X, N).\n");
  ASSERT_EQ(res.shard_report.rules.size(), 1u);
  EXPECT_FALSE(res.shard_report.rules[0].node_local);
  EXPECT_TRUE(res.shard_report.rules[0].keyed);
  EXPECT_EQ(CountCode(res, "W702"), 0u);
}

TEST(LocalityPassTest, MislocatedConditionGetsE703) {
  AnalysisResult res =
      AnalyzeShard("r1 out(@L, X) :- ev(@L, X), s(@M, X, M).\n");
  ASSERT_EQ(res.shard_report.rules.size(), 1u);
  EXPECT_EQ(res.shard_report.rules[0].mixed_conditions, 1u);
  EXPECT_EQ(CountCode(res, "E703"), 1u);
  EXPECT_GE(res.errors(), 1u);
}

TEST(LocalityPassTest, PassIsOffByDefaultAndSkipsIllFormedPrograms) {
  AnalyzerOptions off;
  AnalysisResult res = AnalyzeSource(kDns, off);
  EXPECT_TRUE(res.shard_report.empty());
  EXPECT_EQ(CountCode(res, "W702"), 0u);

  // Front-half errors (unbound head variable) suppress the pass: no
  // locality classification of a broken DELP.
  AnalysisResult broken =
      AnalyzeShard("r1 out(@Z, X) :- ev(@L, X), s(@L, X).\n");
  EXPECT_GT(broken.errors(), 0u);
  EXPECT_TRUE(broken.shard_report.empty());
}

TEST(LocalityPassTest, DiagnosticsAreDeterministicallyOrdered) {
  AnalysisResult a = AnalyzeShard(kDns);
  AnalysisResult b = AnalyzeShard(kDns);
  ASSERT_EQ(a.diagnostics.size(), b.diagnostics.size());
  for (size_t i = 0; i < a.diagnostics.size(); ++i) {
    EXPECT_EQ(a.diagnostics[i].code, b.diagnostics[i].code);
    EXPECT_EQ(a.diagnostics[i].message, b.diagnostics[i].message);
  }
  // Sorted by source location, like every other pass's output.
  for (size_t i = 1; i < a.diagnostics.size(); ++i) {
    EXPECT_LE(a.diagnostics[i - 1].loc.line, a.diagnostics[i].loc.line);
  }
  // The report itself is in rule order.
  ASSERT_EQ(a.shard_report.rules.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.shard_report.rules[i].rule_id,
              "r" + std::to_string(i + 1));
  }
}

}  // namespace
}  // namespace dpc
