// Differential validation of the pass-9 static storage model: for the two
// worked examples and for a family of random chain DELPs, EstimateStorage's
// per-scheme, per-component byte predictions must agree with the bytes the
// real recorders measure (Testbed::TotalStorage) within the model's stated
// error bound. The workload parameters are chosen so every model assumption
// (trigger rates, class counts, value widths) is exactly realizable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/cost_model.h"
#include "src/analysis/planner.h"
#include "src/apps/testbed.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

std::string ReadExample(const std::string& name) {
  // The test may run from the repo root, build/ or build/tests.
  std::ifstream in;
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    in.open(std::string(prefix) + "examples/ndlog/" + name);
    if (in.good()) break;
    in.close();
    in.clear();
  }
  EXPECT_TRUE(in.good()) << "cannot open examples/ndlog/" << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const SchemeStorageReport& SchemeNamed(const StorageReport& rep,
                                       const std::string& name) {
  for (const SchemeStorageReport& s : rep.schemes) {
    if (s.scheme == name) return s;
  }
  ADD_FAILURE() << "no scheme named " << name;
  static SchemeStorageReport empty;
  return empty;
}

// The model's stated contract: each predicted component is within
// `rel` (StorageParams::error_bound) of the measured bytes, with a small
// absolute allowance for components of a few table rows where a single
// row is already a large fraction of the total.
void ExpectClose(double model, size_t measured, double rel,
                 const std::string& what) {
  double m = static_cast<double>(measured);
  double tol = std::max(rel * m, 192.0);
  EXPECT_NEAR(model, m, tol) << what << ": model " << model << " vs measured "
                             << m;
}

void ExpectSchemeClose(const SchemeStorageReport& model,
                       const StorageBreakdown& measured, double rel,
                       const std::string& label) {
  ExpectClose(model.prov, measured.prov, rel, label + " prov");
  ExpectClose(model.rule_exec, measured.rule_exec, rel, label + " rule_exec");
  ExpectClose(model.event_store, measured.event_store, rel,
              label + " event_store");
  ExpectClose(model.tuple_store, measured.tuple_store, rel,
              label + " tuple_store");
  ExpectClose(model.total(), measured.Total(), rel, label + " total");
}

StorageBreakdown Measure(const Program& program, const Topology& topo,
                         Scheme scheme, const std::vector<Tuple>& slow,
                         const std::vector<Tuple>& events) {
  auto bed_or = Testbed::Create(program, &topo, scheme);
  EXPECT_TRUE(bed_or.ok()) << bed_or.status().ToString();
  if (!bed_or.ok()) return {};
  auto bed = std::move(bed_or).value();
  for (const Tuple& t : slow) {
    EXPECT_TRUE(bed->system().InsertSlowTuple(t).ok()) << t.ToString();
  }
  // Inject well after the slow inserts so the advanced recorders' class
  // caches are not reset mid-workload (slow updates broadcast a reset).
  double t = 0.5;
  for (const Tuple& e : events) {
    EXPECT_TRUE(bed->system().ScheduleInject(e, t).ok()) << e.ToString();
    t += 0.001;
  }
  bed->system().Run();
  return bed->TotalStorage();
}

struct SchemePair {
  const char* name;
  Scheme scheme;
};

constexpr SchemePair kSchemes[] = {
    {"exspan", Scheme::kExspan},
    {"basic", Scheme::kBasic},
    {"advanced", Scheme::kAdvanced},
    {"advanced-interclass", Scheme::kAdvancedInterClass},
};

// §2's packet-forwarding DELP on an 8-node line: 40 packets injected at
// node 0 all travel 7 hops to node 7, so recursion_depth is exactly 7 and
// every route row is referenced. All packets share (location, D) — one
// equivalence class.
TEST(StorageModelTest, ForwardingDifferential) {
  auto program_or = Program::Parse(ReadExample("forwarding.ndlog"));
  ASSERT_TRUE(program_or.ok()) << program_or.status().ToString();
  const Program& program = *program_or;

  const int n = 8;
  const int kEvents = 40;
  Topology topo;
  topo.AddNodes(n);
  for (int x = 0; x + 1 < n; ++x) {
    ASSERT_TRUE(topo.AddLink(x, x + 1, LinkProps{0.001, 1e9}).ok());
  }
  topo.ComputeRoutes();

  std::vector<Tuple> slow;
  for (int x = 0; x + 1 < n; ++x) {
    slow.push_back(
        Tuple::Make("route", x, {Value::Int(n - 1), Value::Int(x + 1)}));
  }
  std::vector<Tuple> events;
  for (int i = 0; i < kEvents; ++i) {
    events.push_back(Tuple::Make(
        "packet", 0, {Value::Int(i), Value::Int(n - 1), Value::Int(i)}));
  }

  StorageParams params;
  params.events = kEvents;
  params.recursion_depth = n - 1;
  params.class_fraction = 1.0 / kEvents;
  params.slow_rows = n - 1;
  params.value_bytes = 2.0;  // all attributes are ints < 64

  StorageReport rep =
      EstimateStorage(program, PlanRules(program.rules()), params);
  ASSERT_FALSE(rep.empty());
  EXPECT_DOUBLE_EQ(rep.events, kEvents);
  EXPECT_NEAR(rep.classes, 1.0, 1e-9);

  for (const SchemePair& s : kSchemes) {
    StorageBreakdown measured = Measure(program, topo, s.scheme, slow, events);
    ExpectSchemeClose(SchemeNamed(rep, s.name), measured, rep.error_bound,
                      std::string("forwarding/") + s.name);
  }
}

// §6's DNS DELP on a 5-node line: host 0, root server 1, a three-step
// delegation chain over nameServer rows at nodes 1..3, and the address
// records at node 4. Twenty same-length URLs, each its own equivalence
// class (class_fraction 1), delegation depth exactly 3.
TEST(StorageModelTest, DnsDifferential) {
  auto program_or = Program::Parse(ReadExample("dns.ndlog"));
  ASSERT_TRUE(program_or.ok()) << program_or.status().ToString();
  const Program& program = *program_or;

  const int kEvents = 20;
  const int kDepth = 3;
  Topology topo;
  topo.AddNodes(kDepth + 2);
  for (int x = 0; x + 1 < kDepth + 2; ++x) {
    ASSERT_TRUE(topo.AddLink(x, x + 1, LinkProps{0.001, 1e9}).ok());
  }
  topo.ComputeRoutes();

  std::vector<std::string> urls;
  for (int i = 0; i < kEvents; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "u%02d.com", i);
    urls.emplace_back(buf);
  }

  std::vector<Tuple> slow;
  slow.push_back(Tuple::Make("rootServer", 0, {Value::Int(1)}));
  for (int j = 1; j <= kDepth; ++j) {
    slow.push_back(
        Tuple::Make("nameServer", j, {Value::Str("com"), Value::Int(j + 1)}));
  }
  for (int i = 0; i < kEvents; ++i) {
    slow.push_back(Tuple::Make("addressRecord", kDepth + 1,
                               {Value::Str(urls[i]), Value::Int(40 + i)}));
  }
  std::vector<Tuple> events;
  for (int i = 0; i < kEvents; ++i) {
    events.push_back(
        Tuple::Make("url", 0, {Value::Str(urls[i]), Value::Int(i)}));
  }

  StorageParams params;
  params.events = kEvents;
  params.recursion_depth = kDepth;
  params.class_fraction = 1.0;  // every URL is distinct
  params.slow_rows = static_cast<double>(slow.size());
  params.value_bytes = 2.0;
  // Mean serialized bytes per attribute, from the widths above (ints < 64
  // are 2 bytes, a 7-char URL string is 9, "com" is 5).
  params.value_bytes_by_relation = {
      {"url", 13.0 / 3},           {"request", 15.0 / 4},
      {"nameServer", 3.0},         {"addressRecord", 13.0 / 3},
      {"dnsResult", 17.0 / 5},     {"reply", 15.0 / 4},
      {"rootServer", 2.0},
  };

  StorageReport rep =
      EstimateStorage(program, PlanRules(program.rules()), params);
  ASSERT_FALSE(rep.empty());
  EXPECT_NEAR(rep.classes, kEvents, 1e-9);

  for (const SchemePair& s : kSchemes) {
    StorageBreakdown measured = Measure(program, topo, s.scheme, slow, events);
    ExpectSchemeClose(SchemeNamed(rep, s.name), measured, rep.error_bound,
                      std::string("dns/") + s.name);
  }
}

// Random single-node chain DELPs: rule i joins the event on A against a
// slow table s{i} holding exactly one row per residue, so the trigger rate
// of every rule is exactly 1 and the class count is exactly distinct_a.
// The model must track the measured bytes for every scheme and component.
class RandomChainStorageTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChainStorageTest, ModelMatchesMeasurement) {
  Rng rng(GetParam() * 2654435761ULL + 99);
  const int k = 1 + static_cast<int>(rng.NextBelow(4));
  const int distinct_a = 1 + static_cast<int>(rng.NextBelow(6));
  const int num_events = 20 + static_cast<int>(rng.NextBelow(30));

  std::string src;
  for (int i = 1; i <= k; ++i) {
    src += "r" + std::to_string(i) + " e" + std::to_string(i) +
           "(@L, A, B) :- e" + std::to_string(i - 1) +
           "(@L, A, B), s" + std::to_string(i) + "(@L, A).\n";
  }
  SCOPED_TRACE(src);

  auto program_or = Program::Parse(src);
  ASSERT_TRUE(program_or.ok()) << program_or.status().ToString();
  const Program& program = *program_or;

  Topology topo;
  topo.AddNodes(1);
  topo.ComputeRoutes();

  std::vector<Tuple> slow;
  for (int i = 1; i <= k; ++i) {
    for (int a = 0; a < distinct_a; ++a) {
      slow.push_back(Tuple::Make("s" + std::to_string(i), 0, {Value::Int(a)}));
    }
  }
  std::vector<Tuple> events;
  for (int i = 0; i < num_events; ++i) {
    events.push_back(Tuple::Make(
        "e0", 0, {Value::Int(i % distinct_a), Value::Int(i)}));
  }

  StorageParams params;
  params.events = num_events;
  params.class_fraction = static_cast<double>(distinct_a) / num_events;
  params.slow_rows = static_cast<double>(slow.size());
  params.value_bytes = 2.0;  // ints stay below 64

  StorageReport rep =
      EstimateStorage(program, PlanRules(program.rules()), params);
  ASSERT_FALSE(rep.empty());
  EXPECT_NEAR(rep.classes, distinct_a, 1e-9);
  ASSERT_EQ(rep.rules.size(), static_cast<size_t>(k));
  for (const RuleStorageReport& r : rep.rules) {
    EXPECT_NEAR(r.firings_per_event, 1.0, 1e-9) << r.rule_id;
  }

  for (const SchemePair& s : kSchemes) {
    StorageBreakdown measured = Measure(program, topo, s.scheme, slow, events);
    ExpectSchemeClose(SchemeNamed(rep, s.name), measured, rep.error_bound,
                      std::string("chain/") + s.name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainStorageTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace dpc
