// Unit tests for the analysis-driven rule compiler: greedy join ordering,
// constraint/assignment pushdown, constant folding, index-signature
// derivation, planned execution, the cost model, and the W601–N604 plan
// diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/cost_model.h"
#include "src/analysis/planner.h"
#include "src/apps/forwarding.h"
#include "src/ndlog/parser.h"

namespace dpc {
namespace {

Rule ParseOneRule(const std::string& source) {
  auto rules = ParseRules(source);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules->size(), 1u);
  return rules->front();
}

std::vector<std::string> CodesOf(const AnalysisResult& res) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : res.diagnostics) codes.push_back(d.code);
  return codes;
}

std::string RenderCodes(const std::vector<std::string>& codes) {
  std::string out;
  for (const std::string& c : codes) out += c + " ";
  return out;
}

bool HasCode(const AnalysisResult& res, const std::string& code) {
  for (const Diagnostic& d : res.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(PlannerTest, GreedyOrderingProbesBoundAtomFirst) {
  // s_bnd supplies two bound columns (@L, A) at probe time, s_unb only
  // one (@L): the planner must reorder against textual order, after
  // which s_unb's X column is still unbound.
  Rule rule = ParseOneRule(
      "r1 h(@L, A, B, X, Y) :- e(@L, A), s_unb(@L, X, Y), s_bnd(@L, A, B).");
  RulePlan plan = PlanRule(rule);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(rule.atoms[plan.steps[0].atom_index].relation, "s_bnd");
  EXPECT_EQ(plan.steps[0].bound_columns, (IndexSignature{0, 1}));
  EXPECT_EQ(rule.atoms[plan.steps[1].atom_index].relation, "s_unb");
  EXPECT_EQ(plan.steps[1].bound_columns, (IndexSignature{0}));
  EXPECT_FALSE(plan.HasCrossProduct());
  EXPECT_EQ(plan.ToString(rule), "e -> s_bnd[0,1] -> s_unb[0]");
}

TEST(PlannerTest, LaterBindingsWidenTheProbeSignature) {
  // s_b binds B; probing it first turns s_a's third column (B) into a
  // bound column, giving s_a the signature [0,2] instead of [0].
  Rule rule = ParseOneRule(
      "r1 h(@L, A, B, X) :- e(@L, A), s_a(@L, X, B), s_b(@L, A, B).");
  RulePlan plan = PlanRule(rule);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(rule.atoms[plan.steps[0].atom_index].relation, "s_b");
  EXPECT_EQ(plan.steps[1].bound_columns, (IndexSignature{0, 2}));
}

TEST(PlannerTest, PushdownPlacesFiltersAtEarliestBoundPosition) {
  // A > 0 and M := B + 1 only need event variables: both run before any
  // probe. C < 5 needs s's C: it runs at s's step.
  Rule rule = ParseOneRule(
      "r1 h(@L, A, M) :- e(@L, A, B), s(@L, A, C), A > 0, M := B + 1, "
      "C < 5.");
  RulePlan plan = PlanRule(rule);
  EXPECT_EQ(plan.pre_assignments, (std::vector<size_t>{0}));
  EXPECT_EQ(plan.pre_constraints, (std::vector<size_t>{0}));
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].constraints, (std::vector<size_t>{1}));
  EXPECT_TRUE(plan.folded_constraints.empty());
}

TEST(PlannerTest, AssignmentChainsPlaceTogether) {
  // M depends on N which depends only on the event: the fixpoint places
  // both pre-join, in dependency order.
  Rule rule = ParseOneRule(
      "r1 h(@L, M) :- e(@L, A), s(@L, A), N := A + 1, M := N + 1.");
  RulePlan plan = PlanRule(rule);
  EXPECT_EQ(plan.pre_assignments, (std::vector<size_t>{0, 1}));
}

TEST(PlannerTest, AlwaysTrueConstraintFoldsOutOfThePlan) {
  Rule rule = ParseOneRule("r1 h(@L, A) :- e(@L, A), s(@L, A), 1 < 2.");
  RulePlan plan = PlanRule(rule);
  EXPECT_EQ(plan.folded_constraints, (std::vector<size_t>{0}));
  EXPECT_FALSE(plan.never_fires);
  EXPECT_TRUE(plan.pre_constraints.empty());
  for (const PlanStep& s : plan.steps) EXPECT_TRUE(s.constraints.empty());
}

TEST(PlannerTest, AlwaysFalseConstraintMarksNeverFires) {
  Rule rule = ParseOneRule("r1 h(@L, A) :- e(@L, A), s(@L, A), 1 > 2.");
  RulePlan plan = PlanRule(rule);
  EXPECT_TRUE(plan.never_fires);
  EXPECT_NE(plan.ToString(rule).find("(never fires)"), std::string::npos);

  Database db;
  db.Insert(Tuple::Make("s", 0, {Value::Int(1)}));
  auto firings = FireRulePlanned(rule, plan, Tuple::Make("e", 0, {Value::Int(1)}),
                                 db, FunctionRegistry{});
  ASSERT_TRUE(firings.ok());
  EXPECT_TRUE(firings->empty());
}

TEST(PlannerTest, CrossProductIsOnlyTheSecondZeroCoverageProbe) {
  Rule rule = ParseOneRule(
      "r1 h(@L, X, P) :- e(@L, A), s1(@M, X, Y), s2(@N, P, Q).");
  RulePlan plan = PlanRule(rule);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_FALSE(plan.steps[0].cross_product);  // first probe: a scan
  EXPECT_TRUE(plan.steps[1].cross_product);
  EXPECT_TRUE(plan.HasCrossProduct());
  EXPECT_EQ(plan.ToString(rule), "e -> s1[scan] -> s2[xprod]");
}

TEST(PlannerTest, ProgramPlanAggregatesIndexSignatures) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  ProgramPlan plan = PlanProgram(*program);
  ASSERT_EQ(plan.rules.size(), 2u);
  ASSERT_EQ(plan.index_signatures.count("route"), 1u);
  EXPECT_EQ(*plan.index_signatures.at("route").begin(),
            (IndexSignature{0, 1}));
}

TEST(PlannerTest, PlannedFiringRestoresBodyOrderSlowTuples) {
  // The planner probes s_b before s_a; the firing must still list the
  // joined tuples in body-atom order (s_a, s_b) for provenance.
  Rule rule = ParseOneRule(
      "r1 h(@L, A, B, X) :- e(@L, A), s_a(@L, X, B), s_b(@L, A, B).");
  RulePlan plan = PlanRule(rule);
  ASSERT_EQ(rule.atoms[plan.steps[0].atom_index].relation, "s_b");

  Database db;
  Tuple sa = Tuple::Make("s_a", 0, {Value::Int(7), Value::Int(2)});
  Tuple sb = Tuple::Make("s_b", 0, {Value::Int(1), Value::Int(2)});
  db.Insert(sa);
  db.Insert(sb);
  Tuple event = Tuple::Make("e", 0, {Value::Int(1)});

  auto planned = FireRulePlanned(rule, plan, event, db, FunctionRegistry{});
  ASSERT_TRUE(planned.ok());
  ASSERT_EQ(planned->size(), 1u);
  ASSERT_EQ(planned->front().slow_tuples.size(), 2u);
  EXPECT_EQ(*planned->front().slow_tuples[0], sa);
  EXPECT_EQ(*planned->front().slow_tuples[1], sb);

  auto naive = FireRule(rule, event, db, FunctionRegistry{});
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(naive->size(), 1u);
  EXPECT_EQ(naive->front().head, planned->front().head);
  ASSERT_EQ(naive->front().slow_tuples.size(),
            planned->front().slow_tuples.size());
  for (size_t i = 0; i < naive->front().slow_tuples.size(); ++i) {
    EXPECT_EQ(*naive->front().slow_tuples[i],
              *planned->front().slow_tuples[i]);
  }
}

TEST(PlannerTest, CostModelPricesForwarding) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  ProgramPlan plan = PlanProgram(*program);
  ProgramCostEstimate est = EstimateCost(*program, plan);
  ASSERT_EQ(est.rules.size(), 2u);

  // r1 relocates (head @N vs event @L) and probes route on two
  // key-reachable columns: tight fan-out, non-zero comm.
  EXPECT_TRUE(est.rules[0].relocates);
  EXPECT_GT(est.rules[0].comm_bytes, 0.0);
  EXPECT_NEAR(est.rules[0].fanout, 1.0, 0.01);
  // r2 stays local: no communication.
  EXPECT_FALSE(est.rules[1].relocates);
  EXPECT_EQ(est.rules[1].comm_bytes, 0.0);
  EXPECT_GT(est.total_comm_bytes, 0.0);
}

TEST(PlannerTest, CostModelZeroesNeverFiringRules) {
  auto program = Program::Parse(
      "r1 h(@L, A) :- e(@L, A), s(@L, A), 1 > 2.");
  ASSERT_TRUE(program.ok());
  ProgramPlan plan = PlanProgram(*program);
  ProgramCostEstimate est = EstimateCost(*program, plan);
  ASSERT_EQ(est.rules.size(), 1u);
  EXPECT_EQ(est.rules[0].fanout, 0.0);
}

TEST(PlanPassTest, CrossProductJoinIsW601) {
  AnalysisResult res = AnalyzeSource(
      "r1 h(@L, X, P) :- e(@L, A), s1(@M, X, Y), s2(@N, P, Q).",
      AnalyzerOptions{});
  EXPECT_TRUE(HasCode(res, "W601")) << RenderCodes(CodesOf(res));
}

TEST(PlanPassTest, UnindexableFirstProbeIsW602) {
  AnalysisResult res = AnalyzeSource(
      "r1 h(@L, X) :- e(@L, A), s(@M, X, Y).", AnalyzerOptions{});
  EXPECT_TRUE(HasCode(res, "W602")) << RenderCodes(CodesOf(res));
  EXPECT_FALSE(HasCode(res, "W601"));
}

TEST(PlanPassTest, RuleDownstreamOfNeverFiringRuleIsW603) {
  AnalysisResult res = AnalyzeSource(
      "r1 e1(@L, A) :- e0(@L, A), s1(@L, A), 1 > 2.\n"
      "r2 out(@L, A) :- e1(@L, A), s2(@L, A).\n",
      AnalyzerOptions{});
  // r1 itself is the always-false rule (W402); only r2 is dead code.
  EXPECT_TRUE(HasCode(res, "W402")) << RenderCodes(CodesOf(res));
  EXPECT_TRUE(HasCode(res, "W603")) << RenderCodes(CodesOf(res));
  size_t w603 = 0;
  for (const Diagnostic& d : res.diagnostics) {
    if (d.code == "W603") {
      ++w603;
      EXPECT_EQ(d.loc.line, 2);
    }
  }
  EXPECT_EQ(w603, 1u);
}

TEST(PlanPassTest, MutuallyRecursiveDeadGroupIsFullyW603) {
  // r2 and r3 derive each other's triggers, but the only path into the
  // group runs through the always-false r1. The reachability fixpoint must
  // not let the group bootstrap itself off its own heads: both members are
  // dead, and each gets its own W603.
  AnalysisResult res = AnalyzeSource(
      "r1 c(@L, X) :- a(@L, X), s(@L, X), 1 == 2.\n"
      "r2 d(@L, X) :- c(@L, X), s(@L, X).\n"
      "r3 c(@L, X) :- d(@L, X), s(@L, X).\n",
      AnalyzerOptions{});
  EXPECT_TRUE(HasCode(res, "W402")) << RenderCodes(CodesOf(res));
  std::vector<int> w603_lines;
  for (const Diagnostic& d : res.diagnostics) {
    if (d.code == "W603") w603_lines.push_back(d.loc.line);
  }
  EXPECT_EQ(w603_lines, (std::vector<int>{2, 3}));
}

TEST(PlanPassTest, LiveMutualRecursionIsNotW603) {
  // The same shape with a live entry edge: nothing is dead.
  AnalysisResult res = AnalyzeSource(
      "r1 c(@L, X) :- a(@L, X), s(@L, X).\n"
      "r2 d(@L, X) :- c(@L, X), s(@L, X).\n"
      "r3 c(@L, X) :- d(@L, X), s(@L, X).\n",
      AnalyzerOptions{});
  EXPECT_FALSE(HasCode(res, "W603")) << RenderCodes(CodesOf(res));
  EXPECT_FALSE(HasCode(res, "W402"));
}

TEST(PlanPassTest, PlanNotesEmitN604AndFillTheReport) {
  AnalyzerOptions options;
  options.plan_notes = true;
  AnalysisResult res = AnalyzeSource(
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      options);
  EXPECT_TRUE(HasCode(res, "N604"));
  ASSERT_EQ(res.plan_report.rules.size(), 2u);
  EXPECT_EQ(res.plan_report.rules[0].rule_id, "r1");
  EXPECT_EQ(res.plan_report.rules[0].join_order, "packet -> route[0,1]");
  EXPECT_EQ(res.plan_report.rules[0].indexed_probes, 1u);
  EXPECT_TRUE(res.plan_report.rules[0].has_cost);
  ASSERT_EQ(res.plan_report.index_signatures.size(), 1u);
  EXPECT_EQ(res.plan_report.index_signatures[0].first, "route");
}

TEST(PlanPassTest, NoPlanDiagnosticsOnIllFormedSource) {
  // The plan pass is gated on an error-free front half: an empty rule
  // body must produce E-codes only, never a crash or W60x noise.
  AnalysisResult res = AnalyzeSource("r1 h(@L, A) :- .", AnalyzerOptions{});
  EXPECT_GT(res.errors(), 0u);
  EXPECT_FALSE(HasCode(res, "W601"));
  EXPECT_FALSE(HasCode(res, "W602"));
  EXPECT_FALSE(HasCode(res, "W603"));
}

}  // namespace
}  // namespace dpc
