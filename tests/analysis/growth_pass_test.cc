// Pass 8 (derivation boundedness): the examples must certify, synthetic
// unbounded recursion must be flagged W801 with its cycle path, a
// TTL-guarded variant must be certified by the decreasing-argument proof,
// and an identity self-loop is provably divergent (E804).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/analysis/analyzer.h"
#include "src/analysis/trigger_graph.h"

namespace dpc {
namespace {

const Diagnostic* FindCode(const AnalysisResult& result,
                           const std::string& code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string ReadExample(const std::string& name) {
  // The test may run from the repo root, build/ or build/tests.
  std::ifstream in;
  for (const char* prefix : {"", "../", "../../", "../../../"}) {
    in.open(std::string(prefix) + "examples/ndlog/" + name);
    if (in.good()) break;
    in.close();
    in.clear();
  }
  EXPECT_TRUE(in.good()) << "cannot open examples/ndlog/" << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

AnalyzerOptions WithGrowthNotes() {
  AnalyzerOptions options;
  options.growth_notes = true;
  return options;
}

TEST(TriggerGraphTest, FindsSelfLoopAndChainComponents) {
  auto program = Program::Parse(
      "r1 packet(@N, S, D) :- packet(@L, S, D), route(@L, D, N).\n"
      "r2 recv(@L, S, D) :- packet(@L, S, D), D == L.\n");
  ASSERT_TRUE(program.ok());
  TriggerGraph graph = TriggerGraph::Build(program->rules());

  // One event relation (packet; recv is terminal) with a self-loop edge.
  ASSERT_EQ(graph.relations().size(), 1u);
  EXPECT_EQ(graph.relations()[0], "packet");
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_TRUE(graph.ComponentCyclic(graph.ComponentOf(0)));
  EXPECT_TRUE(graph.RuleInCycle(0));
  EXPECT_FALSE(graph.RuleInCycle(1));
  EXPECT_EQ(graph.CyclePath(graph.ComponentOf(0)), "packet -> packet");
}

TEST(GrowthPassTest, ForwardingExampleIsCertified) {
  AnalysisResult result =
      AnalyzeSource(ReadExample("forwarding.ndlog"), WithGrowthNotes());
  EXPECT_EQ(FindCode(result, "W801"), nullptr);
  EXPECT_EQ(FindCode(result, "E804"), nullptr);

  const Diagnostic* cycle_note = FindCode(result, "N802");
  ASSERT_NE(cycle_note, nullptr);
  EXPECT_NE(cycle_note->message.find("packet -> packet"), std::string::npos);

  const Diagnostic* cert = FindCode(result, "N804");
  ASSERT_NE(cert, nullptr);
  EXPECT_NE(cert->message.find("bounded"), std::string::npos);

  const GrowthReport& rep = result.growth_report;
  ASSERT_FALSE(rep.empty());
  EXPECT_TRUE(rep.recursive);
  EXPECT_TRUE(rep.certified);
  EXPECT_EQ(rep.max_chain_depth, 2u);
  ASSERT_EQ(rep.cycles.size(), 1u);
  EXPECT_TRUE(rep.cycles[0].bounded);
  EXPECT_EQ(rep.cycles[0].proof, "finite-support");
  EXPECT_EQ(rep.cycles[0].rule_ids, std::vector<std::string>{"r1"});
}

TEST(GrowthPassTest, DnsExampleIsCertified) {
  AnalysisResult result =
      AnalyzeSource(ReadExample("dns.ndlog"), WithGrowthNotes());
  EXPECT_EQ(FindCode(result, "W801"), nullptr);
  ASSERT_NE(FindCode(result, "N804"), nullptr);

  const GrowthReport& rep = result.growth_report;
  EXPECT_TRUE(rep.recursive);
  EXPECT_TRUE(rep.certified);
  EXPECT_EQ(rep.max_chain_depth, 4u);  // url -> request -> dnsResult -> reply
  ASSERT_EQ(rep.cycles.size(), 1u);
  EXPECT_EQ(rep.cycles[0].path, "request -> request");
  EXPECT_TRUE(rep.cycles[0].bounded);
}

TEST(GrowthPassTest, PayloadArithmeticWithoutGuardIsW801) {
  // A counter incremented around a non-relocating self-loop: no decreasing
  // argument, no finite support (C2 grows), no topology consumption.
  AnalysisResult result = AnalyzeSource(
      "r1 tick(@L, C2) :- tick(@L, C), clock(@L, T), C2 := C + T.\n",
      WithGrowthNotes());
  const Diagnostic* w = FindCode(result, "W801");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->severity, Severity::kWarning);
  EXPECT_NE(w->message.find("tick -> tick"), std::string::npos);
  EXPECT_NE(w->message.find("r1"), std::string::npos);
  EXPECT_NE(w->message.find("unbounded"), std::string::npos);
  EXPECT_EQ(FindCode(result, "N804"), nullptr);
  EXPECT_FALSE(result.growth_report.certified);
  ASSERT_EQ(result.growth_report.cycles.size(), 1u);
  EXPECT_FALSE(result.growth_report.cycles[0].bounded);
  EXPECT_TRUE(result.growth_report.cycles[0].proof.empty());
}

TEST(GrowthPassTest, W801IsOnWithoutGrowthNotes) {
  AnalysisResult result = AnalyzeSource(
      "r1 tick(@L, C2) :- tick(@L, C), clock(@L, T), C2 := C + T.\n");
  EXPECT_NE(FindCode(result, "W801"), nullptr);
  // The notes and the report stay opt-in.
  EXPECT_EQ(FindCode(result, "N804"), nullptr);
  EXPECT_TRUE(result.growth_report.empty());
}

TEST(GrowthPassTest, TtlGuardedVariantCertifiesByDecreasingArgument) {
  AnalysisResult result = AnalyzeSource(
      "r1 probe(@N, S, T2) :- probe(@L, S, T), link(@L, N), T > 0, "
      "T2 := T - 1.\n"
      "r2 seen(@L, S) :- probe(@L, S, T).\n",
      WithGrowthNotes());
  EXPECT_EQ(FindCode(result, "W801"), nullptr);
  const Diagnostic* note = FindCode(result, "N802");
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find("decreasing argument"), std::string::npos);
  ASSERT_EQ(result.growth_report.cycles.size(), 1u);
  const CycleGrowthReport& cycle = result.growth_report.cycles[0];
  EXPECT_EQ(cycle.proof, "decreasing-arg");
  EXPECT_TRUE(cycle.bounded);
  EXPECT_FALSE(cycle.conditional);
  EXPECT_NE(cycle.detail.find("argument 2"), std::string::npos);
  EXPECT_TRUE(result.growth_report.certified);
}

TEST(GrowthPassTest, UnguardedDecrementFallsBackToTopologyProof) {
  // Without the T > 0 guard the decreasing-argument proof must not fire;
  // the hop still consumes a slow-state link edge, so the cycle is
  // conditionally bounded (N803), not W801.
  AnalysisResult result = AnalyzeSource(
      "r1 probe(@N, S, T2) :- probe(@L, S, T), link(@L, N), T2 := T - 1.\n"
      "r2 seen(@L, S) :- probe(@L, S, T).\n",
      WithGrowthNotes());
  EXPECT_EQ(FindCode(result, "W801"), nullptr);
  const Diagnostic* note = FindCode(result, "N803");
  ASSERT_NE(note, nullptr);
  EXPECT_NE(note->message.find("topology"), std::string::npos);
  ASSERT_EQ(result.growth_report.cycles.size(), 1u);
  EXPECT_EQ(result.growth_report.cycles[0].proof, "topology");
  EXPECT_TRUE(result.growth_report.cycles[0].conditional);
  EXPECT_TRUE(result.growth_report.certified);
}

TEST(GrowthPassTest, IdentitySelfLoopIsProvablyDivergent) {
  AnalysisResult result = AnalyzeSource(
      "r1 ping(@L, X) :- ping(@L, X), peer(@L, X).\n", WithGrowthNotes());
  const Diagnostic* e = FindCode(result, "E804");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->severity, Severity::kError);
  EXPECT_NE(e->message.find("divergent"), std::string::npos);
  EXPECT_EQ(FindCode(result, "W801"), nullptr);
  EXPECT_EQ(FindCode(result, "N804"), nullptr);
  ASSERT_EQ(result.growth_report.cycles.size(), 1u);
  EXPECT_TRUE(result.growth_report.cycles[0].divergent);
  EXPECT_FALSE(result.growth_report.certified);
}

TEST(GrowthPassTest, NonRecursiveProgramGetsAcyclicCertification) {
  AnalysisResult result = AnalyzeSource(
      "r1 mid(@N, X) :- start(@L, X), hop(@L, N).\n"
      "r2 done(@L, X) :- mid(@L, X).\n",
      WithGrowthNotes());
  const Diagnostic* cert = FindCode(result, "N804");
  ASSERT_NE(cert, nullptr);
  EXPECT_NE(cert->message.find("acyclic"), std::string::npos);
  EXPECT_FALSE(result.growth_report.recursive);
  EXPECT_TRUE(result.growth_report.certified);
  EXPECT_TRUE(result.growth_report.cycles.empty());
  EXPECT_EQ(result.growth_report.max_chain_depth, 2u);
}

TEST(GrowthPassTest, GrowthPassSkippedWhenFrontHalfHasErrors) {
  // E103 (broken chain) suppresses the back half, including pass 8: no
  // W801/E804 on a program that could not be validated.
  AnalysisResult result = AnalyzeSource(
      "r1 tick(@L, C2) :- tick(@L, C), clock(@L, T), C2 := C + T.\n"
      "r2 other(@L, X) :- unrelated(@L, X).\n",
      WithGrowthNotes());
  ASSERT_NE(FindCode(result, "E103"), nullptr);
  EXPECT_EQ(FindCode(result, "W801"), nullptr);
  EXPECT_EQ(FindCode(result, "N804"), nullptr);
  EXPECT_TRUE(result.growth_report.empty());
}

}  // namespace
}  // namespace dpc
