// dpc-lint rendering: the JSON output must round-trip through a JSON
// parser (a minimal one lives in this test), the text output must carry
// file:line:column prefixes, and --werror must flip the exit code on
// warnings.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/lint.h"

namespace dpc {
namespace {

// --- A minimal recursive-descent JSON parser (objects, arrays, strings,
// integers, booleans), enough to validate RenderJson's output shape. -----

struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool } kind;
  std::map<std::string, std::shared_ptr<JsonValue>> object;
  std::vector<std::shared_ptr<JsonValue>> array;
  std::string str;
  long long number = 0;
  bool boolean = false;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key " << key;
    static JsonValue empty{Kind::kObject, {}, {}, "", 0, false};
    return it == object.end() ? empty : *it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse() {
    auto v = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
    return v;
  }

  bool failed() const { return failed_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    failed_ = true;
    ADD_FAILURE() << "expected '" << c << "' at offset " << pos_;
    return false;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    SkipWs();
    auto v = std::make_shared<JsonValue>();
    if (pos_ >= text_.size()) {
      failed_ = true;
      return v;
    }
    char c = text_[pos_];
    if (c == '{') {
      v->kind = JsonValue::Kind::kObject;
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        SkipWs();
        std::string key = ParseString();
        if (!Consume(':')) return v;
        v->object[key] = ParseValue();
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        Consume('}');
        return v;
      }
    }
    if (c == '[') {
      v->kind = JsonValue::Kind::kArray;
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v->array.push_back(ParseValue());
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        Consume(']');
        return v;
      }
    }
    if (c == '"') {
      v->kind = JsonValue::Kind::kString;
      v->str = ParseString();
      return v;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      v->kind = JsonValue::Kind::kBool;
      v->boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v->kind = JsonValue::Kind::kBool;
      v->boolean = false;
      pos_ += 5;
      return v;
    }
    v->kind = JsonValue::Kind::kNumber;
    bool neg = c == '-';
    if (neg) ++pos_;
    long long n = 0;
    bool any = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      n = n * 10 + (text_[pos_] - '0');
      ++pos_;
      any = true;
    }
    if (!any) {
      failed_ = true;
      ADD_FAILURE() << "bad value at offset " << pos_;
    }
    // Fractional part (the plan report renders %.1f floats): consumed and
    // discarded, `number` keeps the integer part.
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      bool frac = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        frac = true;
      }
      if (!frac) {
        failed_ = true;
        ADD_FAILURE() << "bad fraction at offset " << pos_;
      }
    }
    v->number = neg ? -n : n;
    return v;
  }

  std::string ParseString() {
    std::string out;
    if (!Consume('"')) return out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          int code = 0;
          for (int i = 0; i < 4 && pos_ < text_.size(); ++i) {
            char h = text_[pos_++];
            code = code * 16 + (h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          out += static_cast<char>(code);
          break;
        }
        default: out += esc;
      }
    }
    Consume('"');
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
  bool failed_ = false;
};

TEST(LintJsonTest, JsonOutputRoundTripsThroughAParser) {
  LintOptions options;
  std::vector<FileLint> results;
  // Two errors + one warning, including a diagnostic with an attached note
  // and a "quoted" relation name that needs escaping in messages.
  results.push_back(LintSource(
      "bad.ndlog",
      "r1 out(@N, X, Z) :- ev(@L, X, Y), link(@L, N), Y == 1, Y == 2.\n"
      "r2 fwd(@M, X) :- other(@L, X), hop(@L, M).\n",
      options));
  // A clean file contributing an equivalence-key report.
  results.push_back(LintSource(
      "good.ndlog", "r1 recv(@N, X) :- ev(@L, X, _Y), s(@L, X, N).\n",
      options));

  std::string json = RenderJson(results);
  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_FALSE(parser.failed()) << json;
  ASSERT_EQ(root->kind, JsonValue::Kind::kObject);

  EXPECT_EQ(root->at("errors").number, 2);
  EXPECT_EQ(root->at("warnings").number, 1);

  const JsonValue& files = root->at("files");
  ASSERT_EQ(files.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(files.array.size(), 2u);

  const JsonValue& bad = *files.array[0];
  EXPECT_EQ(bad.at("file").str, "bad.ndlog");
  EXPECT_EQ(bad.at("errors").number, 2);
  EXPECT_EQ(bad.at("warnings").number, 1);
  const JsonValue& diags = bad.at("diagnostics");
  ASSERT_EQ(diags.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(diags.array.size(), 3u);
  bool saw_note = false;
  for (const auto& d : diags.array) {
    EXPECT_FALSE(d->at("code").str.empty());
    EXPECT_GT(d->at("line").number, 0);
    EXPECT_GT(d->at("column").number, 0);
    EXPECT_FALSE(d->at("message").str.empty());
    const JsonValue& sev = d->at("severity");
    EXPECT_TRUE(sev.str == "error" || sev.str == "warning");
    for (const auto& note : d->at("notes").array) {
      saw_note = true;
      EXPECT_EQ(note->at("severity").str, "note");
    }
  }
  EXPECT_TRUE(saw_note);  // W403 carries a "required here" note

  const JsonValue& good = *files.array[1];
  EXPECT_EQ(good.at("errors").number, 0);
  const JsonValue& keys = good.at("equivalence_keys");
  ASSERT_EQ(keys.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(keys.at("summary").str, "(ev:0, ev:1)");
  const JsonValue& attrs = keys.at("attributes");
  ASSERT_EQ(attrs.array.size(), 3u);
  EXPECT_EQ(attrs.array[0]->at("attr").str, "ev:0");
  EXPECT_TRUE(attrs.array[0]->at("is_key").boolean);
  EXPECT_EQ(attrs.array[0]->at("reason").str, "location-specifier");
  EXPECT_TRUE(attrs.array[1]->at("is_key").boolean);
  const JsonValue& chain = attrs.array[1]->at("chain");
  ASSERT_GE(chain.array.size(), 2u);
  EXPECT_EQ(chain.array.front()->str, "ev:1");
  EXPECT_FALSE(attrs.array[2]->at("is_key").boolean);
}

TEST(LintJsonTest, PlanReportRoundTripsThroughAParser) {
  LintOptions options;
  options.print_plan = true;
  options.analyzer.plan_notes = true;
  std::vector<FileLint> results;
  results.push_back(LintSource(
      "fwd.ndlog",
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      options));

  std::string json = RenderJson(results);
  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_FALSE(parser.failed()) << json;

  const JsonValue& file = *root->at("files").array[0];
  const JsonValue& plans = file.at("plans");
  ASSERT_EQ(plans.kind, JsonValue::Kind::kObject);
  const JsonValue& rules = plans.at("rules");
  ASSERT_EQ(rules.array.size(), 2u);
  const JsonValue& r1 = *rules.array[0];
  EXPECT_EQ(r1.at("rule").str, "r1");
  EXPECT_EQ(r1.at("join_order").str, "packet -> route[0,1]");
  EXPECT_EQ(r1.at("indexed_probes").number, 1);
  EXPECT_EQ(r1.at("scan_probes").number, 0);
  EXPECT_FALSE(r1.at("cross_product").boolean);
  EXPECT_FALSE(r1.at("dead").boolean);
  EXPECT_GE(r1.at("est_fanout").number, 1);
  const JsonValue& sigs = plans.at("index_signatures");
  ASSERT_EQ(sigs.array.size(), 1u);
  EXPECT_EQ(sigs.array[0]->at("relation").str, "route");
  EXPECT_EQ(sigs.array[0]->at("signatures").array[0]->str, "[0,1]");

  // The text rendering carries the same report when requested.
  std::string text = RenderText(results, options);
  EXPECT_NE(text.find("rule plans"), std::string::npos) << text;
  EXPECT_NE(text.find("r1: packet -> route[0,1]"), std::string::npos) << text;
  EXPECT_NE(text.find("index route: [0,1]"), std::string::npos) << text;
}

TEST(LintJsonTest, ShardReportRoundTripsThroughAParser) {
  LintOptions options;
  options.print_shard = true;
  options.analyzer.shard = true;
  std::vector<FileLint> results;
  results.push_back(LintSource(
      "fwd.ndlog",
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      options));

  std::string json = RenderJson(results);
  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_FALSE(parser.failed()) << json;

  const JsonValue& file = *root->at("files").array[0];
  const JsonValue& shards = file.at("shards");
  ASSERT_EQ(shards.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(shards.at("node_local").number, 1);
  EXPECT_EQ(shards.at("cross_shard").number, 1);
  const JsonValue& rules = shards.at("rules");
  ASSERT_EQ(rules.array.size(), 2u);
  const JsonValue& r1 = *rules.array[0];
  EXPECT_EQ(r1.at("rule").str, "r1");
  EXPECT_EQ(r1.at("event_loc").str, "L");
  EXPECT_EQ(r1.at("head_loc").str, "N");
  EXPECT_FALSE(r1.at("node_local").boolean);
  EXPECT_TRUE(r1.at("keyed").boolean);
  EXPECT_EQ(r1.at("mixed_conditions").number, 0);
  const JsonValue& r2 = *rules.array[1];
  EXPECT_TRUE(r2.at("node_local").boolean);

  // The text rendering carries the same report when requested.
  std::string text = RenderText(results, options);
  EXPECT_NE(text.find("shard locality (1 node-local, 1 cross-shard)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("r1: cross-shard (@L -> @N), keyed"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("r2: node-local (@L)"), std::string::npos) << text;

  // Without --shard the section is absent entirely.
  LintOptions off;
  std::vector<FileLint> plain;
  plain.push_back(LintSource(
      "fwd.ndlog",
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      off));
  EXPECT_EQ(RenderJson(plain).find("\"shards\""), std::string::npos);
}

TEST(LintJsonTest, GrowthReportRoundTripsThroughAParser) {
  LintOptions options;
  options.print_growth = true;
  options.analyzer.growth_notes = true;
  std::vector<FileLint> results;
  results.push_back(LintSource(
      "fwd.ndlog",
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      options));

  std::string json = RenderJson(results);
  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_FALSE(parser.failed()) << json;

  const JsonValue& file = *root->at("files").array[0];
  const JsonValue& growth = file.at("growth");
  ASSERT_EQ(growth.kind, JsonValue::Kind::kObject);
  EXPECT_TRUE(growth.at("recursive").boolean);
  EXPECT_TRUE(growth.at("certified").boolean);
  EXPECT_EQ(growth.at("max_chain_depth").number, 2);
  const JsonValue& cycles = growth.at("cycles");
  ASSERT_EQ(cycles.array.size(), 1u);
  const JsonValue& cycle = *cycles.array[0];
  EXPECT_EQ(cycle.at("path").str, "packet -> packet");
  ASSERT_EQ(cycle.at("rules").array.size(), 1u);
  EXPECT_EQ(cycle.at("rules").array[0]->str, "r1");
  EXPECT_EQ(cycle.at("proof").str, "finite-support");
  EXPECT_TRUE(cycle.at("bounded").boolean);
  EXPECT_FALSE(cycle.at("conditional").boolean);
  EXPECT_FALSE(cycle.at("divergent").boolean);

  // The text rendering carries the same report when requested.
  std::string text = RenderText(results, options);
  EXPECT_NE(text.find("derivation growth"), std::string::npos) << text;
  EXPECT_NE(text.find("packet -> packet"), std::string::npos) << text;

  // Without --growth the section is absent entirely.
  LintOptions off;
  std::vector<FileLint> plain;
  plain.push_back(LintSource(
      "fwd.ndlog",
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      off));
  EXPECT_EQ(RenderJson(plain).find("\"growth\""), std::string::npos);
}

TEST(LintJsonTest, StorageReportRoundTripsThroughAParser) {
  LintOptions options;
  options.print_storage = true;
  options.analyzer.storage = true;
  std::vector<FileLint> results;
  results.push_back(LintSource(
      "fwd.ndlog",
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      options));

  std::string json = RenderJson(results);
  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_FALSE(parser.failed()) << json;

  const JsonValue& file = *root->at("files").array[0];
  const JsonValue& storage = file.at("storage");
  ASSERT_EQ(storage.kind, JsonValue::Kind::kObject);
  EXPECT_GT(storage.at("events").number, 0);
  EXPECT_GT(storage.at("classes").number, 0);
  const JsonValue& rules = storage.at("rules");
  ASSERT_EQ(rules.array.size(), 2u);
  EXPECT_EQ(rules.array[0]->at("rule").str, "r1");
  EXPECT_GT(rules.array[0]->at("exspan_bytes").number, 0);
  EXPECT_GT(rules.array[0]->at("advanced_bytes").number, 0);
  const JsonValue& schemes = storage.at("schemes");
  ASSERT_EQ(schemes.array.size(), 4u);
  EXPECT_EQ(schemes.array[0]->at("scheme").str, "exspan");
  EXPECT_EQ(schemes.array[1]->at("scheme").str, "basic");
  EXPECT_EQ(schemes.array[2]->at("scheme").str, "advanced");
  EXPECT_EQ(schemes.array[3]->at("scheme").str, "advanced-interclass");
  for (const auto& s : schemes.array) {
    EXPECT_GT(s->at("total").number, 0) << s->at("scheme").str;
  }

  // The text rendering carries the same report when requested.
  std::string text = RenderText(results, options);
  EXPECT_NE(text.find("storage model"), std::string::npos) << text;
  EXPECT_NE(text.find("exspan"), std::string::npos) << text;

  // Without --storage the section is absent entirely.
  LintOptions off;
  std::vector<FileLint> plain;
  plain.push_back(LintSource(
      "fwd.ndlog",
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n",
      off));
  EXPECT_EQ(RenderJson(plain).find("\"storage\""), std::string::npos);
}

TEST(LintJsonTest, JsonStaysValidOnEarlyErrorsWithAllReportsEnabled) {
  // A parse failure (E001) and a front-half error (E103) both suppress the
  // back-half passes; the JSON must remain well-formed with every opt-in
  // report requested, just without the growth/storage sections.
  LintOptions options;
  options.print_keys = true;
  options.print_plan = true;
  options.print_shard = true;
  options.print_growth = true;
  options.print_storage = true;
  options.analyzer.plan_notes = true;
  options.analyzer.shard = true;
  options.analyzer.growth_notes = true;
  options.analyzer.storage = true;

  std::vector<FileLint> results;
  results.push_back(LintSource("broken.ndlog", "not ndlog at all", options));
  results.push_back(LintSource(
      "chain.ndlog",
      "r1 a(@L, X) :- b(@L, X), s(@L, X).\n"
      "r2 c(@L, X) :- d(@L, X), s(@L, X).\n",
      options));

  std::string json = RenderJson(results);
  JsonParser parser(json);
  auto root = parser.Parse();
  ASSERT_FALSE(parser.failed()) << json;
  ASSERT_EQ(root->at("files").array.size(), 2u);
  EXPECT_GT(root->at("errors").number, 0);
  EXPECT_EQ(json.find("\"growth\""), std::string::npos);
  EXPECT_EQ(json.find("\"storage\""), std::string::npos);

  // Rendering text with every section requested must not crash either.
  EXPECT_FALSE(RenderText(results, options).empty());

  // And the exit code reports failure regardless of --werror.
  EXPECT_EQ(LintExitCode(results, options), 1);
}

TEST(LintJsonTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\ny\tz"), "x\\ny\\tz");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(LintJsonTest, TextOutputCarriesFileLineColumnPrefixes) {
  LintOptions options;
  std::vector<FileLint> results;
  results.push_back(
      LintSource("p.ndlog",
                 "r1 out(@N, X) :- ev(@L, X, Extra), link(@L, N).\n",
                 options));
  std::string text = RenderText(results, options);
  EXPECT_NE(text.find("p.ndlog:1:"), std::string::npos) << text;
  EXPECT_NE(text.find("warning:"), std::string::npos) << text;
  EXPECT_NE(text.find("[W301]"), std::string::npos) << text;
  EXPECT_NE(text.find("p.ndlog: 0 errors, 1 warning"), std::string::npos)
      << text;
}

TEST(LintJsonTest, WerrorFlipsExitCodeOnWarnings) {
  LintOptions options;
  std::vector<FileLint> results;
  results.push_back(
      LintSource("w.ndlog",
                 "r1 out(@N, X) :- ev(@L, X, Extra), link(@L, N).\n",
                 options));
  EXPECT_EQ(LintExitCode(results, options), 0);
  options.werror = true;
  EXPECT_EQ(LintExitCode(results, options), 1);

  std::vector<FileLint> clean;
  clean.push_back(LintSource(
      "c.ndlog", "r1 out(@N, X) :- ev(@L, X, _B), link(@L, N).\n", options));
  EXPECT_EQ(LintExitCode(clean, options), 0);

  std::vector<FileLint> broken;
  broken.push_back(LintSource("e.ndlog", "not ndlog at all", options));
  options.werror = false;
  EXPECT_EQ(LintExitCode(broken, options), 1);
}

}  // namespace
}  // namespace dpc
