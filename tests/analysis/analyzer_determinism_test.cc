// The analyzer is pure: running all nine passes twice over the same source
// must produce byte-identical text and JSON output — diagnostics in the
// same order, reports with the same numbers — for a population of random
// DELPs covering chains, relocation, recursion, constraints and broken
// programs. Any hash-map iteration or pointer-keyed ordering leaking into
// the output shows up here as a flaky diff.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

// Chain DELP with random relocation, payload rewrites, an optional
// recursive self-loop and an optional trailing constraint; with small
// probability the chain is deliberately broken (E103) or the source is
// garbage (E001) so the error paths are exercised too.
std::string GenerateDelp(Rng& rng) {
  if (rng.NextBelow(20) == 0) return "not ndlog at all\n";
  int num_rules = 1 + static_cast<int>(rng.NextBelow(4));
  bool has_constraint = rng.NextBelow(2) == 0;
  bool break_chain = rng.NextBelow(10) == 0;
  int self_loop_at =  // 0 = none; else after rule i the head re-derives
      rng.NextBelow(3) == 0 ? 1 + static_cast<int>(rng.NextBelow(num_rules))
                            : 0;
  std::string src;
  int rule_no = 0;
  for (int i = 1; i <= num_rules; ++i) {
    bool relocate = rng.NextBelow(2) == 0;
    int mode = static_cast<int>(rng.NextBelow(4));
    std::string head_loc = relocate ? "N" : "L";
    std::string a_prime;
    switch (mode) {
      case 0: a_prime = "A"; break;
      case 1: a_prime = "C"; break;
      case 2: a_prime = "A + B"; break;
      default: a_prime = "B"; break;
    }
    std::string event =
        "e" + std::to_string(break_chain && i == num_rules ? i + 7 : i - 1);
    std::string rule = "r" + std::to_string(++rule_no) + " e" +
                       std::to_string(i) + "(@" + head_loc + ", AP, B) :- " +
                       event + "(@L, A, B), s" + std::to_string(i) +
                       "(@L, A, N, C), AP := " + a_prime + ".";
    if (has_constraint && i == num_rules) {
      rule.insert(rule.size() - 1, ", A >= 0");
    }
    src += rule + "\n";
    if (i == self_loop_at) {
      // A recursive hop on e{i}: same head and event relation, so the
      // DELP chain stays intact and pass 8 sees a cycle.
      src += "r" + std::to_string(++rule_no) + " e" + std::to_string(i) +
             "(@N, A, B) :- e" + std::to_string(i) + "(@L, A, B), s" +
             std::to_string(i) + "(@L, A, N, C).\n";
    }
  }
  return src;
}

LintOptions AllPasses() {
  LintOptions options;
  options.analyzer.key_notes = true;
  options.analyzer.plan_notes = true;
  options.analyzer.shard = true;
  options.analyzer.growth_notes = true;
  options.analyzer.storage = true;
  options.print_keys = true;
  options.print_plan = true;
  options.print_shard = true;
  options.print_growth = true;
  options.print_storage = true;
  return options;
}

class AnalyzerDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalyzerDeterminismTest, RepeatedAnalysisIsByteIdentical) {
  Rng rng(GetParam() * 2654435761ULL + 17);
  std::string source = GenerateDelp(rng);
  SCOPED_TRACE(source);
  LintOptions options = AllPasses();

  std::vector<FileLint> first;
  first.push_back(LintSource("p.ndlog", source, options));
  std::vector<FileLint> second;
  second.push_back(LintSource("p.ndlog", source, options));

  EXPECT_EQ(RenderJson(first), RenderJson(second));
  EXPECT_EQ(RenderText(first, options), RenderText(second, options));
  EXPECT_EQ(LintExitCode(first, options), LintExitCode(second, options));

  // Diagnostics are already sorted by source location; equal renderings
  // plus sorted order mean the diagnostic vectors themselves agree.
  ASSERT_EQ(first[0].result.diagnostics.size(),
            second[0].result.diagnostics.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerDeterminismTest,
                         ::testing::Range<uint64_t>(1, 101));

}  // namespace
}  // namespace dpc
