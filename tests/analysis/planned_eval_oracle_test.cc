// Differential oracle for the planned evaluator (src/analysis/planner.h):
// on the same rule, database, and event, FireRulePlanned must produce
// exactly the firing set of the naive FireRule — same heads, same joined
// slow tuples in body-atom order. Exercised over the two example
// applications (forwarding, DNS) and 100 seeded random DELPs whose rules
// mix bound joins, scans, cross products, assignment chains, and
// foldable constraints.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/analysis/planner.h"
#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/functions.h"
#include "src/ndlog/parser.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

// A firing rendered to a canonical string: head plus joined slow tuples
// (already in body-atom order by contract).
std::vector<std::string> Canon(const std::vector<RuleFiring>& firings) {
  std::vector<std::string> out;
  out.reserve(firings.size());
  for (const RuleFiring& f : firings) {
    std::string s = f.head.ToString();
    for (const TupleRef& t : f.slow_tuples) s += " | " + t->ToString();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Fires every rule of `rules` triggered by each event with both
// evaluators and asserts identical firing sets. Returns the total number
// of (non-empty) planned firings so callers can assert coverage.
size_t CheckOracle(const std::vector<Rule>& rules,
                   const std::vector<RulePlan>& plans, const Database& db,
                   const std::vector<Tuple>& events,
                   const FunctionRegistry& fns) {
  size_t total_firings = 0;
  for (const Tuple& event : events) {
    for (size_t i = 0; i < rules.size(); ++i) {
      const Rule& rule = rules[i];
      if (rule.EventAtom().relation != event.relation()) continue;
      if (rule.EventAtom().args.size() != event.arity()) continue;
      auto naive = FireRule(rule, event, db, fns);
      auto planned = FireRulePlanned(rule, plans[i], event, db, fns);
      EXPECT_EQ(naive.ok(), planned.ok())
          << rule.ToString() << "\nnaive: " << naive.status().ToString()
          << "\nplanned: " << planned.status().ToString();
      if (!naive.ok() || !planned.ok()) continue;
      EXPECT_EQ(Canon(*naive), Canon(*planned))
          << rule.ToString() << "\nevent " << event.ToString();
      total_firings += planned->size();
    }
  }
  return total_firings;
}

TEST(PlannedEvalOracleTest, ForwardingFiringSetsMatch) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  ProgramPlan plan = PlanProgram(*program);

  Database db;
  for (int d = 0; d < 4; ++d) {
    for (int n = 0; n < 3; ++n) {
      if ((d + n) % 2 == 0) continue;  // leave holes: some probes miss
      db.Insert(Tuple::Make("route", 0,
                            {Value::Int(d), Value::Int(n)}));
    }
  }
  std::vector<Tuple> events;
  for (int s = 0; s < 2; ++s) {
    for (int d = 0; d < 5; ++d) {
      events.push_back(Tuple::Make(
          "packet", 0, {Value::Int(s), Value::Int(d), Value::Int(42)}));
    }
  }
  size_t firings = CheckOracle(program->rules(), plan.rules, db, events,
                               FunctionRegistry{});
  EXPECT_GT(firings, 0u);
}

TEST(PlannedEvalOracleTest, DnsFiringSetsMatch) {
  auto program = apps::MakeDnsProgram();
  ASSERT_TRUE(program.ok());
  ProgramPlan plan = PlanProgram(*program);
  FunctionRegistry fns = DefaultFunctions();

  Database db;
  db.Insert(Tuple::Make("rootServer", 0, {Value::Int(1)}));
  const std::vector<std::string> domains = {"com", "example.com", "org"};
  for (size_t d = 0; d < domains.size(); ++d) {
    db.Insert(Tuple::Make("nameServer", 0,
                          {Value::Str(domains[d]),
                           Value::Int(static_cast<int64_t>(d + 1))}));
  }
  const std::vector<std::string> urls = {"a.example.com", "b.org", "c.com",
                                         "miss.net"};
  for (size_t u = 0; u + 1 < urls.size(); ++u) {
    db.Insert(Tuple::Make("addressRecord", 0,
                          {Value::Str(urls[u]),
                           Value::Str("10.0.0." + std::to_string(u))}));
  }

  std::vector<Tuple> events;
  for (const std::string& url : urls) {
    events.push_back(
        Tuple::Make("url", 0, {Value::Str(url), Value::Int(9)}));
    events.push_back(Tuple::Make(
        "request", 0, {Value::Str(url), Value::Int(5), Value::Int(9)}));
    events.push_back(Tuple::Make(
        "dnsResult", 0,
        {Value::Str(url), Value::Str("10.9.9.9"), Value::Int(5),
         Value::Int(9)}));
  }
  size_t firings =
      CheckOracle(program->rules(), plan.rules, db, events, fns);
  EXPECT_GT(firings, 0u);
}

// Random DELP generator, richer than the key-soundness one: each rule
// draws 1–3 condition atoms from templates that produce bound probes
// (sa: joins on A, sb: joins on B), pure scans (sd: only the location is
// bound), and full cross products (sc: nothing bound, its own location
// variable), in random order, plus optional assignment chains and
// constraints — including constant ones that fold or kill the rule.
std::string GenerateDelp(Rng& rng, int* num_rules_out) {
  int num_rules = 1 + static_cast<int>(rng.NextBelow(3));
  std::string src;
  for (int i = 1; i <= num_rules; ++i) {
    std::vector<std::string> conds;
    std::string tag = std::to_string(i);
    bool has_sa = false;
    int num_atoms = 1 + static_cast<int>(rng.NextBelow(3));
    std::vector<int> kinds = {0, 1, 2, 3};
    for (int k = 0; k < num_atoms; ++k) {
      size_t pick = rng.NextBelow(kinds.size());
      int kind = kinds[pick];
      kinds.erase(kinds.begin() + static_cast<long>(pick));
      switch (kind) {
        case 0:
          conds.push_back("sa" + tag + "(@L, A, C" + tag + ")");
          has_sa = true;
          break;
        case 1:
          conds.push_back("sb" + tag + "(@L, B)");
          break;
        case 2:
          conds.push_back("sc" + tag + "(@M" + tag + ", E" + tag + ")");
          break;
        default:
          conds.push_back("sd" + tag + "(@L, X" + tag + ", Y" + tag + ")");
          break;
      }
    }
    std::vector<std::string> extras;
    if (rng.NextBelow(2) == 0) {
      extras.push_back("Z" + tag + " := A + B");
    }
    switch (rng.NextBelow(5)) {
      case 0: extras.push_back("A >= 1"); break;
      case 1: extras.push_back("B < 2"); break;
      case 2: extras.push_back("0 <= 1"); break;  // folds out (W401)
      case 3: extras.push_back("1 < 0"); break;   // never fires (W402)
      default: break;
    }
    if (has_sa && rng.NextBelow(2) == 0) {
      extras.push_back("C" + tag + " != B");
    }

    std::string a_next = rng.NextBelow(2) == 0 ? "A" : "B";
    std::string b_next;
    switch (rng.NextBelow(3)) {
      case 0: b_next = "B"; break;
      case 1: b_next = "A"; break;
      default:
        b_next = has_sa ? "C" + tag : "A";
        break;
    }
    std::string rule = "r" + tag + " e" + tag + "(@L, " + a_next + ", " +
                       b_next + ") :- e" + std::to_string(i - 1) +
                       "(@L, A, B)";
    for (const std::string& c : conds) rule += ", " + c;
    for (const std::string& x : extras) rule += ", " + x;
    rule += ".";
    src += rule + "\n";
  }
  *num_rules_out = num_rules;
  return src;
}

class PlannedEvalRandomOracleTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlannedEvalRandomOracleTest, RandomDelpFiringSetsMatch) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 17);
  int num_rules = 0;
  std::string source = GenerateDelp(rng, &num_rules);

  auto rules = ParseRules(source);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString() << "\n" << source;
  ProgramPlan plan = PlanRules(*rules);
  ASSERT_EQ(plan.rules.size(), rules->size());

  // Populate every condition relation with all value combinations over a
  // small domain, so joins hit, miss, and fan out.
  Database db;
  for (const Rule& rule : *rules) {
    for (const Atom* atom : rule.ConditionAtoms()) {
      size_t arity = atom->args.size();
      size_t combos = 1;
      for (size_t a = 0; a < arity; ++a) combos *= 3;
      for (size_t c = 0; c < combos; ++c) {
        std::vector<Value> vals;
        size_t rem = c;
        for (size_t a = 0; a < arity; ++a) {
          vals.push_back(Value::Int(static_cast<int64_t>(rem % 3)));
          rem /= 3;
        }
        db.Insert(Tuple(atom->relation, std::move(vals)));
      }
    }
  }

  std::vector<Tuple> events;
  for (int r = 0; r < num_rules; ++r) {
    for (int l = 0; l < 2; ++l) {
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          events.push_back(Tuple::Make("e" + std::to_string(r), l,
                                       {Value::Int(a), Value::Int(b)}));
        }
      }
    }
  }
  CheckOracle(*rules, plan.rules, db, events, FunctionRegistry{});
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannedEvalRandomOracleTest,
                         ::testing::Range<uint64_t>(1, 101));

}  // namespace
}  // namespace dpc
