// The analyzer must report every defect of a broken DELP in a single run,
// each with a stable code and a source location — unlike Program::Parse,
// which stops at the first error.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/analyzer.h"

namespace dpc {
namespace {

const Diagnostic* FindCode(const AnalysisResult& result,
                           const std::string& code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::vector<std::string> Codes(const AnalysisResult& result) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : result.diagnostics) codes.push_back(d.code);
  return codes;
}

TEST(AnalyzerTest, ReportsAllDefectsOfABrokenProgramInOneRun) {
  // Four distinct defects: an unbound head variable (E106), a broken
  // dependency chain (E103), an arity clash on `link` (E201), and a
  // singleton variable (W301).
  AnalysisResult result = AnalyzeSource(
      "r1 out(@N, X, Z) :- ev(@L, X, Y), link(@L, N).\n"
      "r2 fwd(@M, X) :- other(@L, X, W), link(@L, M, M).\n");

  const Diagnostic* unbound = FindCode(result, "E106");
  ASSERT_NE(unbound, nullptr);
  EXPECT_EQ(unbound->severity, Severity::kError);
  EXPECT_EQ(unbound->loc.line, 1);
  EXPECT_GT(unbound->loc.column, 0);
  EXPECT_NE(unbound->message.find("unbound"), std::string::npos);

  const Diagnostic* broken_chain = FindCode(result, "E103");
  ASSERT_NE(broken_chain, nullptr);
  EXPECT_EQ(broken_chain->loc.line, 2);
  EXPECT_NE(broken_chain->message.find("not dependent"), std::string::npos);

  const Diagnostic* arity = FindCode(result, "E201");
  ASSERT_NE(arity, nullptr);
  EXPECT_EQ(arity->loc.line, 2);
  ASSERT_FALSE(arity->notes.empty());
  EXPECT_EQ(arity->notes[0].loc.line, 1);  // first use of link/2

  const Diagnostic* singleton = FindCode(result, "W301");
  ASSERT_NE(singleton, nullptr);
  EXPECT_NE(singleton->message.find("singleton"), std::string::npos);

  EXPECT_FALSE(result.conformant);
  EXPECT_GE(result.errors(), 3u);
  EXPECT_GE(result.warnings(), 1u);

  // Diagnostics are sorted by source location.
  std::vector<SourceLoc> locs;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.loc.valid()) locs.push_back(d.loc);
  }
  EXPECT_TRUE(std::is_sorted(locs.begin(), locs.end()));

  // An erroneous program gets no equivalence-key report.
  EXPECT_TRUE(result.key_summary.empty());
  EXPECT_TRUE(result.key_explanations.empty());
}

TEST(AnalyzerTest, CleanProgramIsConformantWithKeySummary) {
  AnalysisResult result = AnalyzeSource(
      "r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).\n"
      "r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.\n");
  EXPECT_TRUE(result.conformant);
  EXPECT_EQ(result.errors(), 0u);
  EXPECT_EQ(result.warnings(), 0u);
  EXPECT_EQ(result.key_summary, "(packet:0, packet:2)");
  ASSERT_EQ(result.key_explanations.size(), 4u);
  EXPECT_TRUE(result.key_explanations[0].is_key);
  EXPECT_FALSE(result.key_explanations[1].is_key);
  EXPECT_TRUE(result.key_explanations[2].is_key);
  EXPECT_FALSE(result.key_explanations[3].is_key);
}

TEST(AnalyzerTest, ParseFailureYieldsE001WithLocation) {
  AnalysisResult result = AnalyzeSource("r1 out(@N :- ev(@L).\n");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].code, "E001");
  EXPECT_EQ(result.diagnostics[0].severity, Severity::kError);
  EXPECT_EQ(result.diagnostics[0].loc.line, 1);
  EXPECT_GT(result.diagnostics[0].loc.column, 0);
  EXPECT_FALSE(result.conformant);
}

TEST(AnalyzerTest, SchemaPassFlagsConstantTypeClashAndUnknownInterest) {
  AnalyzerOptions options;
  options.program.relations_of_interest = {"recv", "nosuchrel"};
  AnalysisResult result = AnalyzeSource(
      "r1 recv(@N, X, 5) :- ev(@L, X, Y), s(@L, Y, N).\n"
      "r2 ack(@L, X) :- recv(@L, X, \"five\"), t(@L, X).\n",
      options);

  const Diagnostic* kind_clash = FindCode(result, "W202");
  ASSERT_NE(kind_clash, nullptr);
  EXPECT_EQ(kind_clash->loc.line, 2);
  ASSERT_FALSE(kind_clash->notes.empty());
  EXPECT_EQ(kind_clash->notes[0].loc.line, 1);

  const Diagnostic* unknown = FindCode(result, "W203");
  ASSERT_NE(unknown, nullptr);
  EXPECT_NE(unknown->message.find("nosuchrel"), std::string::npos);
}

TEST(AnalyzerTest, VariableLintFlagsShadowingAndDuplicateAssignments) {
  AnalysisResult result = AnalyzeSource(
      "r1 out(@N, M) :- ev(@L, X, Y), s(@L, X, N), "
      "X := 1, M := Y, M := X.\n");
  const Diagnostic* shadow = FindCode(result, "W302");
  ASSERT_NE(shadow, nullptr);
  EXPECT_NE(shadow->message.find("X"), std::string::npos);
  ASSERT_FALSE(shadow->notes.empty());

  const Diagnostic* dup = FindCode(result, "W303");
  ASSERT_NE(dup, nullptr);
  EXPECT_NE(dup->message.find("M"), std::string::npos);
}

TEST(AnalyzerTest, ConstraintPassFoldsConstantsAndSpotsContradictions) {
  AnalysisResult result = AnalyzeSource(
      "r1 out(@N, X) :- ev(@L, X, Y), s(@L, X, N), "
      "K := 4, K >= 2, 1 == 2, Y == 3, Y == 7.\n");
  EXPECT_NE(FindCode(result, "W401"), nullptr);  // K >= 2 always true
  EXPECT_NE(FindCode(result, "W402"), nullptr);  // 1 == 2 always false
  EXPECT_NE(FindCode(result, "W403"), nullptr);  // Y pinned to 3 and 7
}

TEST(AnalyzerTest, KeyNotesEmitOneN501PerEventAttribute) {
  AnalyzerOptions options;
  options.key_notes = true;
  AnalysisResult result = AnalyzeSource(
      "r1 recv(@N, X) :- ev(@L, X, Y), s(@L, X, N).\n", options);
  EXPECT_EQ(result.errors(), 0u);
  size_t notes = 0;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == "N501") ++notes;
  }
  EXPECT_EQ(notes, 3u);  // ev(@L, X, Y)
  EXPECT_EQ(result.key_summary, "(ev:0, ev:1)");
}

TEST(AnalyzerTest, ExtractLocFromMessageParsesParserErrors) {
  SourceLoc loc = ExtractLocFromMessage(
      "expected . at end of rule, got ':-' at line 3, column 14");
  EXPECT_EQ(loc.line, 3);
  EXPECT_EQ(loc.column, 14);

  loc = ExtractLocFromMessage("something odd at line 7");
  EXPECT_EQ(loc.line, 7);
  EXPECT_EQ(loc.column, 1);

  loc = ExtractLocFromMessage("no location here");
  EXPECT_FALSE(loc.valid());
}

TEST(AnalyzerTest, EmptyRuleBodyIsE102NotACrash) {
  AnalysisResult result = AnalyzeRules({Rule{}});
  EXPECT_FALSE(result.conformant);
  EXPECT_GE(result.errors(), 1u);
  std::vector<std::string> codes = Codes(result);
  EXPECT_NE(std::find(codes.begin(), codes.end(), "E102"), codes.end());
}

}  // namespace
}  // namespace dpc
