// System: pipelined semi-naïve execution over the network — injection
// validation, multi-hop derivation, outputs, stats, callbacks.
#include "src/runtime/system.h"

#include <gtest/gtest.h>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_.AddNodes(3);
    ASSERT_TRUE(topo_.AddLink(0, 1, LinkProps{0.001, 1e9}).ok());
    ASSERT_TRUE(topo_.AddLink(1, 2, LinkProps{0.001, 1e9}).ok());
    topo_.ComputeRoutes();
    auto program = apps::MakeForwardingProgram();
    ASSERT_TRUE(program.ok());
    auto bed = Testbed::Create(std::move(program).value(), &topo_,
                               Scheme::kReference);
    ASSERT_TRUE(bed.ok());
    bed_ = std::move(bed).value();
  }

  System& sys() { return bed_->system(); }

  Topology topo_;
  std::unique_ptr<Testbed> bed_;
};

TEST_F(SystemTest, RejectsNonSlowChangingInsert) {
  Status st = sys().InsertSlowTuple(apps::MakePacket(0, 0, 2, "x"));
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(SystemTest, RejectsOutOfRangeNode) {
  EXPECT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(99, 2, 1)).IsOutOfRange());
  EXPECT_TRUE(sys()
                  .ScheduleInject(apps::MakePacket(99, 0, 2, "x"), 0)
                  .IsOutOfRange());
}

TEST_F(SystemTest, RejectsWrongInjectionRelation) {
  Status st = sys().ScheduleInject(apps::MakeRecv(0, 0, 2, "x"), 0);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(SystemTest, DeleteMissingTupleIsNotFound) {
  EXPECT_TRUE(sys().DeleteSlowTuple(apps::MakeRoute(0, 2, 1)).IsNotFound());
}

TEST_F(SystemTest, RejectsNonSlowChangingDelete) {
  // Delete must validate the relation exactly like insert does: a packet
  // event is not slow-changing state, even if an equal-looking tuple
  // happens to sit in the database.
  Status st = sys().DeleteSlowTuple(apps::MakePacket(0, 0, 2, "x"));
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(SystemTest, EndToEndForwarding) {
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(0, 2, 1)).ok());
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(1, 2, 2)).ok());
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(0, 0, 2, "hi"), 0).ok());
  sys().Run();

  EXPECT_EQ(sys().stats().events_injected, 1u);
  EXPECT_EQ(sys().stats().rule_firings, 3u);  // r1@0, r1@1, r2@2
  EXPECT_EQ(sys().stats().outputs, 1u);
  ASSERT_EQ(sys().OutputsAt(2).size(), 1u);
  EXPECT_EQ(sys().OutputsAt(2)[0].tuple, apps::MakeRecv(2, 0, 2, "hi"));
  // The recv tuple is materialized in node 2's database.
  EXPECT_TRUE(sys().DbAt(2).Contains(apps::MakeRecv(2, 0, 2, "hi")));
}

TEST_F(SystemTest, OutputTimeReflectsPropagation) {
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(0, 2, 1)).ok());
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(1, 2, 2)).ok());
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(0, 0, 2, "hi"), 5.0).ok());
  sys().Run();
  ASSERT_EQ(sys().OutputsAt(2).size(), 1u);
  EXPECT_GT(sys().OutputsAt(2)[0].time, 5.0);
  EXPECT_LT(sys().OutputsAt(2)[0].time, 5.1);
}

TEST_F(SystemTest, PacketWithoutRouteDiesSilently) {
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(0, 0, 2, "hi"), 0).ok());
  sys().Run();
  EXPECT_EQ(sys().stats().outputs, 0u);
  EXPECT_EQ(sys().stats().rule_firings, 0u);
}

TEST_F(SystemTest, SelfDestinedPacketDeliversLocally) {
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(2, 0, 2, "hi"), 0).ok());
  sys().Run();
  ASSERT_EQ(sys().OutputsAt(2).size(), 1u);
  EXPECT_EQ(sys().OutputsAt(2)[0].tuple, apps::MakeRecv(2, 0, 2, "hi"));
}

TEST_F(SystemTest, OutputCallbackFires) {
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(0, 2, 1)).ok());
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(1, 2, 2)).ok());
  int called = 0;
  sys().SetOutputCallback([&](NodeId node, const OutputRecord& rec) {
    EXPECT_EQ(node, 2);
    EXPECT_EQ(rec.tuple.relation(), "recv");
    ++called;
  });
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(0, 0, 2, "a"), 0).ok());
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(0, 0, 2, "b"), 1).ok());
  sys().Run();
  EXPECT_EQ(called, 2);
}

TEST_F(SystemTest, AllOutputsAggregates) {
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(0, 2, 1)).ok());
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(1, 2, 2)).ok());
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(0, 0, 2, "a"), 0).ok());
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(2, 2, 2, "b"), 0).ok());
  sys().Run();
  EXPECT_EQ(sys().AllOutputs().size(), 2u);
}

TEST_F(SystemTest, MulticastRoutesDeriveMultipleOutputs) {
  // Two route entries for the same destination at node 0: the rule fires
  // twice and both copies arrive (one direct path, one via node 1).
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(0, 2, 1)).ok());
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(0, 2, 2)).ok());
  ASSERT_TRUE(sys().InsertSlowTuple(apps::MakeRoute(1, 2, 2)).ok());
  ASSERT_TRUE(sys().ScheduleInject(apps::MakePacket(0, 0, 2, "hi"), 0).ok());
  sys().Run();
  EXPECT_EQ(sys().stats().outputs, 2u);
}

TEST(SystemDnsTest, ResolvesThroughDelegationChain) {
  apps::DnsParams params;
  params.num_servers = 12;
  params.num_clients = 3;
  params.num_urls = 6;
  params.trunk_depth = 5;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(params);

  auto program = apps::MakeDnsProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &universe.graph,
                             Scheme::kReference);
  ASSERT_TRUE(bed.ok());
  ASSERT_TRUE(apps::InstallDnsState((*bed)->system(), universe).ok());

  // Resolve every URL from every client.
  int64_t rqid = 0;
  for (NodeId client : universe.clients) {
    for (const std::string& url : universe.urls) {
      ++rqid;
      ASSERT_TRUE((*bed)
                      ->system()
                      .ScheduleInject(apps::MakeUrlEvent(client, url, rqid),
                                      0.001 * static_cast<double>(rqid))
                      .ok());
    }
  }
  (*bed)->system().Run();

  size_t expected = universe.clients.size() * universe.urls.size();
  EXPECT_EQ((*bed)->system().stats().outputs, expected);

  // Every reply carries the address record's IP for its URL.
  for (NodeId client : universe.clients) {
    for (const OutputRecord& out : (*bed)->system().OutputsAt(client)) {
      ASSERT_EQ(out.tuple.relation(), "reply");
      const std::string& url = out.tuple.at(1).AsString();
      auto it = std::find(universe.urls.begin(), universe.urls.end(), url);
      ASSERT_NE(it, universe.urls.end());
      size_t k = static_cast<size_t>(it - universe.urls.begin());
      EXPECT_EQ(out.tuple.at(2).AsInt(),
                0x0A000000 + static_cast<int64_t>(k));
    }
  }
}

}  // namespace
}  // namespace dpc
