// Differential oracle for the batch evaluator (src/runtime/batch_eval.h):
// FireRuleBatched(events)[i] must equal FireRulePlanned(events[i]) for
// every batch member — same firings, same firing order, same joined slow
// tuples, same status — whatever path the batch takes (naive fallthrough,
// PlanExecutor, compiled slot executor, grouped first-key probes,
// duplicate memoization). Exercised over the two example applications and
// 100 seeded random DELPs, with the small-table fallback both at its
// default and disabled so all paths are compared on the same inputs.
#include "src/runtime/batch_eval.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/planner.h"
#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/functions.h"
#include "src/ndlog/parser.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

// A firing rendered to a canonical string: head plus joined slow tuples.
// NOT sorted — the batch contract is order-identical results, so the
// comparison must see the emission order.
std::vector<std::string> Canon(const std::vector<RuleFiring>& firings) {
  std::vector<std::string> out;
  out.reserve(firings.size());
  for (const RuleFiring& f : firings) {
    std::string s = f.head.ToString();
    for (const TupleRef& t : f.slow_tuples) s += " | " + t->ToString();
    out.push_back(std::move(s));
  }
  return out;
}

// Evaluates every rule over `events` both ways — one FireRuleBatched call
// per (rule, whole event list) vs one FireRulePlanned call per (rule,
// event) — and asserts entry-by-entry identical firing sequences and
// statuses. Returns total planned firings so callers can assert coverage.
size_t CheckOracle(const std::vector<Rule>& rules,
                   const std::vector<RulePlan>& plans, const Database& db,
                   const std::vector<Tuple>& events,
                   const FunctionRegistry& fns) {
  size_t total_firings = 0;
  std::vector<const Tuple*> batch;
  batch.reserve(events.size());
  for (const Tuple& ev : events) batch.push_back(&ev);
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    std::vector<BatchEventFirings> batched =
        FireRuleBatched(rule, plans[r], batch, db, fns);
    EXPECT_EQ(batched.size(), events.size());
    if (batched.size() != events.size()) continue;
    for (size_t i = 0; i < events.size(); ++i) {
      auto planned = FireRulePlanned(rule, plans[r], events[i], db, fns);
      EXPECT_EQ(planned.ok(), batched[i].status.ok())
          << rule.ToString() << "\nevent " << events[i].ToString()
          << "\nplanned: " << planned.status().ToString()
          << "\nbatched: " << batched[i].status.ToString();
      if (!planned.ok() || !batched[i].status.ok()) continue;
      EXPECT_EQ(Canon(*planned), Canon(FiringsOf(batched, i)))
          << rule.ToString() << "\nevent " << events[i].ToString();
      total_firings += planned->size();
    }
  }
  return total_firings;
}

// As CheckOracle, run twice: once with the plans as compiled (small-table
// fallback engaged where the planner allows it) and once with the
// fallback disabled, so the planned join path and the batch fast path are
// compared even on small tables.
size_t CheckOracleBothFallbacks(const std::vector<Rule>& rules,
                                const std::vector<RulePlan>& plans,
                                const Database& db,
                                const std::vector<Tuple>& events,
                                const FunctionRegistry& fns) {
  size_t firings = CheckOracle(rules, plans, db, events, fns);
  std::vector<RulePlan> forced = plans;
  for (RulePlan& p : forced) p.small_table_fallback_rows = 0;
  CheckOracle(rules, forced, db, events, fns);
  return firings;
}

TEST(BatchEvalOracleTest, ForwardingBatchMatchesPlanned) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  ProgramPlan plan = PlanProgram(*program);

  Database db;
  for (int d = 0; d < 4; ++d) {
    for (int n = 0; n < 3; ++n) {
      if ((d + n) % 2 == 0) continue;  // leave holes: some probes miss
      db.Insert(Tuple::Make("route", 0, {Value::Int(d), Value::Int(n)}));
    }
  }
  std::vector<Tuple> events;
  for (int s = 0; s < 2; ++s) {
    for (int d = 0; d < 5; ++d) {
      events.push_back(Tuple::Make(
          "packet", 0, {Value::Int(s), Value::Int(d), Value::Int(42)}));
    }
  }
  // Duplicates on purpose: the memoized entries must resolve to the same
  // results as fresh evaluation.
  for (int rep = 0; rep < 3; ++rep) {
    events.push_back(Tuple::Make(
        "packet", 0, {Value::Int(0), Value::Int(1), Value::Int(42)}));
  }
  size_t firings = CheckOracleBothFallbacks(program->rules(), plan.rules, db,
                                            events, FunctionRegistry{});
  EXPECT_GT(firings, 0u);
}

TEST(BatchEvalOracleTest, DnsBatchMatchesPlanned) {
  auto program = apps::MakeDnsProgram();
  ASSERT_TRUE(program.ok());
  ProgramPlan plan = PlanProgram(*program);
  FunctionRegistry fns = DefaultFunctions();

  Database db;
  db.Insert(Tuple::Make("rootServer", 0, {Value::Int(1)}));
  const std::vector<std::string> domains = {"com", "example.com", "org"};
  for (size_t d = 0; d < domains.size(); ++d) {
    db.Insert(Tuple::Make("nameServer", 0,
                          {Value::Str(domains[d]),
                           Value::Int(static_cast<int64_t>(d + 1))}));
  }
  const std::vector<std::string> urls = {"a.example.com", "b.org", "c.com",
                                         "miss.net"};
  for (size_t u = 0; u + 1 < urls.size(); ++u) {
    db.Insert(Tuple::Make("addressRecord", 0,
                          {Value::Str(urls[u]),
                           Value::Str("10.0.0." + std::to_string(u))}));
  }

  // Same-relation batches, as the runtime drains them; each checked
  // against per-event planned evaluation.
  for (const char* shape : {"url", "request", "dnsResult"}) {
    std::vector<Tuple> events;
    for (const std::string& url : urls) {
      if (std::string(shape) == "url") {
        events.push_back(
            Tuple::Make("url", 0, {Value::Str(url), Value::Int(9)}));
      } else if (std::string(shape) == "request") {
        events.push_back(Tuple::Make(
            "request", 0, {Value::Str(url), Value::Int(5), Value::Int(9)}));
      } else {
        events.push_back(Tuple::Make(
            "dnsResult", 0,
            {Value::Str(url), Value::Str("10.9.9.9"), Value::Int(5),
             Value::Int(9)}));
      }
    }
    events.insert(events.end(), events.begin(), events.begin() + 2);  // dups
    CheckOracleBothFallbacks(program->rules(), plan.rules, db, events, fns);
  }
}

TEST(BatchEvalTest, MemoizedDuplicatesShareRepresentativeFirings) {
  auto rules = ParseRules(
      "r1 h(@L, A, B) :- e(@L, A), s(@L, A, B).");
  ASSERT_TRUE(rules.ok());
  ProgramPlan plan = PlanRules(*rules);
  plan.rules[0].small_table_fallback_rows = 0;  // force the batch fast path

  Database db;
  for (int a = 0; a < 8; ++a) {
    db.Insert(Tuple::Make("s", 0, {Value::Int(a), Value::Int(a * 10)}));
  }
  std::vector<Tuple> events;
  for (int i = 0; i < 12; ++i) {
    events.push_back(Tuple::Make("e", 0, {Value::Int(i % 3)}));
  }
  std::vector<const Tuple*> batch;
  for (const Tuple& ev : events) batch.push_back(&ev);
  auto out = FireRuleBatched(rules->front(), plan.rules[0], batch, db,
                             FunctionRegistry{});
  ASSERT_EQ(out.size(), events.size());
  size_t duplicates = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].status.ok());
    const std::vector<RuleFiring>& firings = FiringsOf(out, i);
    ASSERT_EQ(firings.size(), 1u);
    EXPECT_EQ(firings.front().head,
              Tuple::Make("h", 0, {Value::Int(i % 3),
                                   Value::Int((i % 3) * 10)}));
    if (out[i].same_as >= 0) {
      ++duplicates;
      const BatchEventFirings& rep = out[static_cast<size_t>(out[i].same_as)];
      EXPECT_LT(out[i].same_as, static_cast<int32_t>(i));
      EXPECT_EQ(rep.same_as, -1);  // one hop only: reps are never duplicates
      EXPECT_TRUE(rep.shared);
      EXPECT_TRUE(out[i].firings.empty());
    }
  }
  // 3 distinct events, 12 members: 9 must have been memoized.
  EXPECT_EQ(duplicates, 9u);
}

// Random DELP generator (as planned_eval_oracle_test's): rules mix bound
// joins, scans, cross products, assignment chains, and foldable
// constraints — covering plans the slot executor compiles and plans it
// must refuse (falling back to PlanExecutor inside the batch).
std::string GenerateDelp(Rng& rng, int* num_rules_out) {
  int num_rules = 1 + static_cast<int>(rng.NextBelow(3));
  std::string src;
  for (int i = 1; i <= num_rules; ++i) {
    std::vector<std::string> conds;
    std::string tag = std::to_string(i);
    bool has_sa = false;
    int num_atoms = 1 + static_cast<int>(rng.NextBelow(3));
    std::vector<int> kinds = {0, 1, 2, 3};
    for (int k = 0; k < num_atoms; ++k) {
      size_t pick = rng.NextBelow(kinds.size());
      int kind = kinds[pick];
      kinds.erase(kinds.begin() + static_cast<long>(pick));
      switch (kind) {
        case 0:
          conds.push_back("sa" + tag + "(@L, A, C" + tag + ")");
          has_sa = true;
          break;
        case 1:
          conds.push_back("sb" + tag + "(@L, B)");
          break;
        case 2:
          conds.push_back("sc" + tag + "(@M" + tag + ", E" + tag + ")");
          break;
        default:
          conds.push_back("sd" + tag + "(@L, X" + tag + ", Y" + tag + ")");
          break;
      }
    }
    std::vector<std::string> extras;
    if (rng.NextBelow(2) == 0) {
      extras.push_back("Z" + tag + " := A + B");
    }
    switch (rng.NextBelow(5)) {
      case 0: extras.push_back("A >= 1"); break;
      case 1: extras.push_back("B < 2"); break;
      case 2: extras.push_back("0 <= 1"); break;  // folds out (W401)
      case 3: extras.push_back("1 < 0"); break;   // never fires (W402)
      default: break;
    }
    if (has_sa && rng.NextBelow(2) == 0) {
      extras.push_back("C" + tag + " != B");
    }

    std::string a_next = rng.NextBelow(2) == 0 ? "A" : "B";
    std::string b_next;
    switch (rng.NextBelow(3)) {
      case 0: b_next = "B"; break;
      case 1: b_next = "A"; break;
      default:
        b_next = has_sa ? "C" + tag : "A";
        break;
    }
    std::string rule = "r" + tag + " e" + tag + "(@L, " + a_next + ", " +
                       b_next + ") :- e" + std::to_string(i - 1) +
                       "(@L, A, B)";
    for (const std::string& c : conds) rule += ", " + c;
    for (const std::string& x : extras) rule += ", " + x;
    rule += ".";
    src += rule + "\n";
  }
  *num_rules_out = num_rules;
  return src;
}

class BatchEvalRandomOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchEvalRandomOracleTest, RandomDelpBatchMatchesPlanned) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 29);
  int num_rules = 0;
  std::string source = GenerateDelp(rng, &num_rules);

  auto rules = ParseRules(source);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString() << "\n" << source;
  ProgramPlan plan = PlanRules(*rules);
  ASSERT_EQ(plan.rules.size(), rules->size());

  Database db;
  for (const Rule& rule : *rules) {
    for (const Atom* atom : rule.ConditionAtoms()) {
      size_t arity = atom->args.size();
      size_t combos = 1;
      for (size_t a = 0; a < arity; ++a) combos *= 3;
      for (size_t c = 0; c < combos; ++c) {
        std::vector<Value> vals;
        size_t rem = c;
        for (size_t a = 0; a < arity; ++a) {
          vals.push_back(Value::Int(static_cast<int64_t>(rem % 3)));
          rem /= 3;
        }
        db.Insert(Tuple(atom->relation, std::move(vals)));
      }
    }
  }

  // One same-relation batch per trigger relation, duplicates included —
  // exactly the batches the runtime's drain would form.
  for (int r = 0; r < num_rules; ++r) {
    std::vector<Tuple> events;
    for (int l = 0; l < 2; ++l) {
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          events.push_back(Tuple::Make("e" + std::to_string(r), l,
                                       {Value::Int(a), Value::Int(b)}));
        }
      }
    }
    events.insert(events.end(), events.begin(), events.begin() + 6);
    CheckOracleBothFallbacks(*rules, plan.rules, db, events,
                             FunctionRegistry{});
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEvalRandomOracleTest,
                         ::testing::Range<uint64_t>(1, 101));

}  // namespace
}  // namespace dpc
