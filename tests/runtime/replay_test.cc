// §3.2 reactive provenance: replaying the non-deterministic input log
// reconstructs the provenance of any tuple — including intermediate event
// tuples that no storage scheme materializes — and survives mid-stream
// slow-table updates.
#include "src/runtime/replay.h"

#include <gtest/gtest.h>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class ReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    n1_ = topo_.AddNode();
    n2_ = topo_.AddNode();
    n3_ = topo_.AddNode();
    ASSERT_TRUE(topo_.AddLink(n1_, n2_, LinkProps{0.002, 50e6}).ok());
    ASSERT_TRUE(topo_.AddLink(n2_, n3_, LinkProps{0.002, 50e6}).ok());
    topo_.ComputeRoutes();
    auto program = apps::MakeForwardingProgram();
    ASSERT_TRUE(program.ok());
    program_ = std::make_unique<Program>(std::move(program).value());
    auto bed = Testbed::Create(*program_, &topo_, Scheme::kAdvanced);
    ASSERT_TRUE(bed.ok());
    bed_ = std::move(bed).value();
    bed_->system().SetReplayLog(&log_);
  }

  void RunBaseScenario() {
    System& sys = bed_->system();
    ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
    ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
    ASSERT_TRUE(
        sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "data"), 1.0).ok());
    ASSERT_TRUE(
        sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "url"), 2.0).ok());
    sys.Run();
  }

  Topology topo_;
  NodeId n1_, n2_, n3_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<Testbed> bed_;
  ReplayLog log_;
};

TEST_F(ReplayTest, LogCapturesAllInputs) {
  RunBaseScenario();
  ASSERT_EQ(log_.size(), 4u);  // 2 slow inserts + 2 injections
  EXPECT_EQ(log_.entries()[0].kind, ReplayLog::Kind::kSlowInsert);
  EXPECT_EQ(log_.entries()[2].kind, ReplayLog::Kind::kInject);
  EXPECT_DOUBLE_EQ(log_.entries()[2].time, 1.0);
  EXPECT_EQ(log_.entries()[3].tuple,
            apps::MakePacket(n1_, n1_, n3_, "url"));
}

TEST_F(ReplayTest, LogSerializationRoundTrips) {
  RunBaseScenario();
  ByteWriter w;
  log_.Serialize(w);
  ByteReader r(w.bytes());
  auto back = ReplayLog::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->entries(), log_.entries());
  EXPECT_GT(log_.SerializedBytes(), 0u);
}

TEST_F(ReplayTest, ReplayReconstructsTerminalOutputs) {
  RunBaseScenario();
  Replayer replayer(program_.get(), &topo_);
  auto trees =
      replayer.ProvenanceOf(log_, apps::MakeRecv(n3_, n1_, n3_, "data"));
  ASSERT_TRUE(trees.ok()) << trees.status().ToString();
  ASSERT_EQ(trees->size(), 1u);
  EXPECT_EQ((*trees)[0].event(), apps::MakePacket(n1_, n1_, n3_, "data"));
  EXPECT_EQ((*trees)[0].depth(), 3u);
}

TEST_F(ReplayTest, ReplayReconstructsIntermediateTuples) {
  RunBaseScenario();
  Replayer replayer(program_.get(), &topo_);
  // The intermediate packet at n2 has no prov row in any scheme; only
  // replay can answer for it.
  Tuple intermediate = apps::MakePacket(n2_, n1_, n3_, "url");
  auto trees = replayer.ProvenanceOf(log_, intermediate);
  ASSERT_TRUE(trees.ok()) << trees.status().ToString();
  ASSERT_EQ(trees->size(), 1u);
  EXPECT_EQ((*trees)[0].Output(), intermediate);
  EXPECT_EQ((*trees)[0].depth(), 1u);  // just r1@n1
  ASSERT_EQ((*trees)[0].steps()[0].slow_tuples.size(), 1u);
  EXPECT_EQ((*trees)[0].steps()[0].slow_tuples[0],
            apps::MakeRoute(n1_, n3_, n2_));
}

TEST_F(ReplayTest, UnknownTupleIsNotFound) {
  RunBaseScenario();
  Replayer replayer(program_.get(), &topo_);
  auto trees =
      replayer.ProvenanceOf(log_, apps::MakeRecv(n3_, n1_, n3_, "never"));
  EXPECT_TRUE(trees.status().IsNotFound());
}

TEST_F(ReplayTest, MidStreamUpdateReplaysFaithfully) {
  System& sys = bed_->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "old"), 1.0).ok());
  sys.RunUntil(5.0);
  // Reroute directly over the n1-n2 link's reverse direction is impossible
  // in this line topology, so simply retarget the first hop via n2 again
  // after a delete/insert pair — the replay must apply both at t>=5.
  ASSERT_TRUE(sys.DeleteSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "new"), 6.0).ok());
  sys.Run();

  Replayer replayer(program_.get(), &topo_);
  auto all = replayer.AllTrees(log_);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  for (const ProvTree& tree : *all) {
    EXPECT_EQ(tree.depth(), 3u);
  }
}

TEST_F(ReplayTest, ReplayedTreesMatchReferenceRecorder) {
  RunBaseScenario();
  // An independent reference run over the same inputs.
  auto ref_bed = Testbed::Create(*program_, &topo_, Scheme::kReference);
  ASSERT_TRUE(ref_bed.ok());
  System& ref_sys = (*ref_bed)->system();
  ASSERT_TRUE(ref_sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(ref_sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
  ASSERT_TRUE(ref_sys
                  .ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "data"),
                                  1.0)
                  .ok());
  ASSERT_TRUE(ref_sys
                  .ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "url"),
                                  2.0)
                  .ok());
  ref_sys.Run();

  Replayer replayer(program_.get(), &topo_);
  auto replayed = replayer.AllTrees(log_);
  ASSERT_TRUE(replayed.ok());
  auto expected = (*ref_bed)->reference()->AllTrees();
  ASSERT_EQ(replayed->size(), expected.size());
  for (const ProvTree* tree : expected) {
    EXPECT_NE(std::find(replayed->begin(), replayed->end(), *tree),
              replayed->end());
  }
}

}  // namespace
}  // namespace dpc
