// Table / Database: set semantics, tombstoned deletion, iteration order,
// serialization size accounting.
#include "src/db/table.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

Tuple Route(NodeId at, NodeId dst, NodeId next) {
  return Tuple::Make("route", at, {Value::Int(dst), Value::Int(next)});
}

TEST(TableTest, InsertDeduplicates) {
  Table t("route");
  EXPECT_TRUE(t.Insert(Route(1, 3, 2)));
  EXPECT_FALSE(t.Insert(Route(1, 3, 2)));
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, EraseAndReinsert) {
  Table t("route");
  Tuple r = Route(1, 3, 2);
  EXPECT_FALSE(t.Erase(r));  // not present yet
  t.Insert(r);
  EXPECT_TRUE(t.Erase(r));
  EXPECT_FALSE(t.Contains(r));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Insert(r));  // reinsertion after erase
  EXPECT_TRUE(t.Contains(r));
}

TEST(TableTest, SnapshotPreservesInsertionOrder) {
  Table t("route");
  t.Insert(Route(1, 3, 2));
  t.Insert(Route(1, 4, 2));
  t.Insert(Route(1, 5, 2));
  t.Erase(Route(1, 4, 2));
  auto snap = t.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0], Route(1, 3, 2));
  EXPECT_EQ(snap[1], Route(1, 5, 2));
}

TEST(TableTest, ForEachEarlyStop) {
  Table t("route");
  for (int d = 0; d < 10; ++d) t.Insert(Route(1, d, 2));
  int visited = 0;
  t.ForEach([&](const Tuple&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(TableTest, ForEachSkipsErased) {
  Table t("route");
  t.Insert(Route(1, 3, 2));
  t.Insert(Route(1, 4, 2));
  t.Erase(Route(1, 3, 2));
  int visited = 0;
  t.ForEach([&](const Tuple& tup) {
    EXPECT_EQ(tup, Route(1, 4, 2));
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 1);
}

TEST(TableTest, SerializeCountsLiveTuplesOnly) {
  Table t("route");
  t.Insert(Route(1, 3, 2));
  size_t one = t.SerializedSize();
  t.Insert(Route(1, 4, 2));
  size_t two = t.SerializedSize();
  EXPECT_GT(two, one);
  t.Erase(Route(1, 4, 2));
  EXPECT_EQ(t.SerializedSize(), one);
}

TEST(DatabaseTest, GetOrCreateIsIdempotent) {
  Database db;
  Table& a = db.GetOrCreate("route");
  Table& b = db.GetOrCreate("route");
  EXPECT_EQ(&a, &b);
}

TEST(DatabaseTest, FindReturnsNullForMissing) {
  Database db;
  EXPECT_EQ(db.Find("nope"), nullptr);
  const Database& cdb = db;
  EXPECT_EQ(cdb.Find("nope"), nullptr);
}

TEST(DatabaseTest, InsertRoutesToRightTable) {
  Database db;
  db.Insert(Route(1, 3, 2));
  db.Insert(Tuple::Make("link", 1, {Value::Int(2)}));
  EXPECT_EQ(db.Find("route")->size(), 1u);
  EXPECT_EQ(db.Find("link")->size(), 1u);
  EXPECT_EQ(db.TotalTuples(), 2u);
}

TEST(DatabaseTest, EraseAndContains) {
  Database db;
  Tuple r = Route(1, 3, 2);
  EXPECT_FALSE(db.Erase(r));
  db.Insert(r);
  EXPECT_TRUE(db.Contains(r));
  EXPECT_TRUE(db.Erase(r));
  EXPECT_FALSE(db.Contains(r));
}

TEST(DatabaseTest, RelationNamesSorted) {
  Database db;
  db.GetOrCreate("zeta");
  db.GetOrCreate("alpha");
  db.GetOrCreate("mid");
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

}  // namespace
}  // namespace dpc
