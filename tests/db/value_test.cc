// Value: typing, ordering, truthiness, serialization.
#include "src/db/value.h"

#include <gtest/gtest.h>

#include <limits>

namespace dpc {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::Int(1).is_int());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_TRUE(Value::Bool(true).is_int());  // booleans are 0/1 integers
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
  EXPECT_EQ(Value::Bool(false).AsInt(), 0);
}

TEST(ValueTest, DefaultIsZeroInt) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_NE(Value::Int(5), Value::Int(6));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_NE(Value::Str("a"), Value::Str("b"));
  // Cross-type values never compare equal, even "5" vs 5.
  EXPECT_NE(Value::Int(5), Value::Str("5"));
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Str("a"), Value::Str("b"));
  // Variant ordering: all ints sort before all strings (index order).
  EXPECT_LT(Value::Int(999), Value::Str("a"));
}

TEST(ValueTest, Truthiness) {
  EXPECT_TRUE(Value::Int(1).Truthy());
  EXPECT_TRUE(Value::Int(-1).Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Str("x").Truthy());
  EXPECT_FALSE(Value::Str("").Truthy());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Str("data").ToString(), "\"data\"");
}

class ValueRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTrip, SerializeDeserialize) {
  ByteWriter w;
  GetParam().Serialize(w);
  EXPECT_EQ(w.size(), GetParam().SerializedSize());
  ByteReader r(w.bytes());
  auto v = Value::Deserialize(r);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Values, ValueRoundTrip,
    ::testing::Values(Value::Int(0), Value::Int(-1), Value::Int(1),
                      Value::Int(1LL << 40), Value::Int(-(1LL << 40)),
                      Value::Str(""), Value::Str("hello"),
                      Value::Str(std::string(1000, 'x')),
                      Value::Bool(true)));

TEST(ValueTest, DeserializeRejectsBadTag) {
  std::vector<uint8_t> bytes{0x77};
  ByteReader r(bytes);
  EXPECT_FALSE(Value::Deserialize(r).ok());
}

TEST(ValueTest, SerializedSizeIsCompact) {
  EXPECT_LE(Value::Int(5).SerializedSize(), 2u);      // tag + 1 varint byte
  EXPECT_LE(Value::Str("ab").SerializedSize(), 4u);   // tag + len + 2
}

// SerializedSize is computed arithmetically (no buffer); it must agree with
// the bytes Serialize actually appends at every varint width boundary.
TEST(ValueTest, ArithmeticSizeMatchesBufferAtEveryVarintWidth) {
  std::vector<Value> samples;
  // Zigzag varint boundaries: the encoded magnitude crosses a 7-bit
  // group at |2n| (or |2n|-1 for negatives) == 2^(7k).
  for (int shift = 0; shift <= 62; ++shift) {
    int64_t v = int64_t{1} << shift;
    for (int64_t delta : {-1, 0, 1}) {
      samples.push_back(Value::Int(v + delta));
      samples.push_back(Value::Int(-(v + delta)));
    }
  }
  samples.push_back(Value::Int(0));
  samples.push_back(Value::Int(std::numeric_limits<int64_t>::max()));
  samples.push_back(Value::Int(std::numeric_limits<int64_t>::min()));
  // String length-prefix boundaries, empty and long strings included.
  for (size_t len : {0u, 1u, 127u, 128u, 129u, 16383u, 16384u, 20000u}) {
    samples.push_back(Value::Str(std::string(len, 's')));
  }

  for (const Value& v : samples) {
    ByteWriter w;
    v.Serialize(w);
    EXPECT_EQ(v.SerializedSize(), w.size()) << v.ToString().substr(0, 64);
  }
}

}  // namespace
}  // namespace dpc
