// Tuple: location specifier, VIDs, serialization, display.
#include "src/db/tuple.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

Tuple SamplePacket() {
  return Tuple::Make("packet", 1,
                     {Value::Int(1), Value::Int(3), Value::Str("data")});
}

TEST(TupleTest, MakePrependsLocation) {
  Tuple t = SamplePacket();
  EXPECT_EQ(t.relation(), "packet");
  EXPECT_EQ(t.arity(), 4u);
  EXPECT_EQ(t.Location(), 1);
  EXPECT_EQ(t.at(0), Value::Int(1));
  EXPECT_EQ(t.at(3), Value::Str("data"));
}

TEST(TupleTest, EqualityIsStructural) {
  EXPECT_EQ(SamplePacket(), SamplePacket());
  Tuple other = Tuple::Make("packet", 1,
                            {Value::Int(1), Value::Int(3), Value::Str("x")});
  EXPECT_NE(SamplePacket(), other);
  Tuple renamed =
      Tuple::Make("pkt", 1, {Value::Int(1), Value::Int(3), Value::Str("data")});
  EXPECT_NE(SamplePacket(), renamed);
}

TEST(TupleTest, VidIsContentHash) {
  EXPECT_EQ(SamplePacket().Vid(), SamplePacket().Vid());
  Tuple other = Tuple::Make("packet", 1,
                            {Value::Int(1), Value::Int(3), Value::Str("url")});
  EXPECT_NE(SamplePacket().Vid(), other.Vid());
}

TEST(TupleTest, VidDependsOnRelationName) {
  Tuple a("r1", {Value::Int(0)});
  Tuple b("r2", {Value::Int(0)});
  EXPECT_NE(a.Vid(), b.Vid());
}

TEST(TupleTest, RoundTrip) {
  Tuple t = SamplePacket();
  ByteWriter w;
  t.Serialize(w);
  EXPECT_EQ(w.size(), t.SerializedSize());
  ByteReader r(w.bytes());
  auto back = Tuple::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TupleTest, RoundTripEmptyValues) {
  Tuple t("nullary", {Value::Int(0)});
  ByteWriter w;
  t.Serialize(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(Tuple::Deserialize(r).value(), t);
}

TEST(TupleTest, ToStringMatchesPaperNotation) {
  EXPECT_EQ(SamplePacket().ToString(), "packet(@1, 1, 3, \"data\")");
}

TEST(TupleTest, HashFunctorConsistentWithEquality) {
  TupleHash h;
  EXPECT_EQ(h(SamplePacket()), h(SamplePacket()));
}

TEST(TupleTest, SerializedSizeScalesWithPayload) {
  Tuple small = Tuple::Make("packet", 1, {Value::Str("x")});
  Tuple big = Tuple::Make("packet", 1, {Value::Str(std::string(500, 'x'))});
  EXPECT_GT(big.SerializedSize(), small.SerializedSize() + 490);
}

TEST(TupleDeathTest, LocationRequiresIntFirstAttribute) {
  Tuple bad("rel", {Value::Str("not-a-node")});
  EXPECT_DEATH((void)bad.Location(), "location");
}

}  // namespace
}  // namespace dpc
