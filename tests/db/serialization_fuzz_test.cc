// Randomized round-trip sweeps over the wire formats: tuples, trees, and
// provenance rows survive serialization byte-exactly for arbitrary
// generated contents, and truncating any serialized form at any byte
// boundary fails cleanly instead of crashing or fabricating data.
#include <gtest/gtest.h>

#include "src/core/prov_tables.h"
#include "src/core/tree.h"
#include "src/db/tuple.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

Value RandomValue(Rng& rng) {
  if (rng.NextBelow(2) == 0) {
    return Value::Int(static_cast<int64_t>(rng.Next()));
  }
  size_t len = rng.NextBelow(40);
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return Value::Str(std::move(s));
}

Tuple RandomTuple(Rng& rng) {
  std::string rel = "rel" + std::to_string(rng.NextBelow(16));
  std::vector<Value> values;
  values.push_back(Value::Int(static_cast<int64_t>(rng.NextBelow(100))));
  size_t arity = 1 + rng.NextBelow(6);
  for (size_t i = 1; i < arity; ++i) values.push_back(RandomValue(rng));
  return Tuple(std::move(rel), std::move(values));
}

ProvTree RandomTree(Rng& rng) {
  ProvTree tree;
  tree.set_event(RandomTuple(rng));
  size_t depth = 1 + rng.NextBelow(5);
  for (size_t i = 0; i < depth; ++i) {
    ProvStep step;
    step.rule_id = "r" + std::to_string(i + 1);
    step.head = RandomTuple(rng);
    size_t slow = rng.NextBelow(3);
    for (size_t j = 0; j < slow; ++j) {
      step.slow_tuples.push_back(RandomTuple(rng));
    }
    tree.AppendStep(std::move(step));
  }
  return tree;
}

class SerializationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationFuzz, TuplesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Tuple t = RandomTuple(rng);
    ByteWriter w;
    t.Serialize(w);
    ByteReader r(w.bytes());
    auto back = Tuple::Deserialize(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(back->Vid(), t.Vid());
  }
}

TEST_P(SerializationFuzz, TreesRoundTrip) {
  Rng rng(GetParam() * 31);
  for (int i = 0; i < 50; ++i) {
    ProvTree tree = RandomTree(rng);
    ByteWriter w;
    tree.Serialize(w);
    ByteReader r(w.bytes());
    auto back = ProvTree::Deserialize(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, tree);
  }
}

TEST_P(SerializationFuzz, RowsRoundTrip) {
  Rng rng(GetParam() * 77);
  for (int i = 0; i < 100; ++i) {
    RuleExecEntry e;
    e.rloc = static_cast<NodeId>(rng.NextBelow(100));
    e.rid = Sha1::Hash(std::to_string(rng.Next()));
    e.rule_id = "r" + std::to_string(rng.NextBelow(20));
    size_t vids = rng.NextBelow(5);
    for (size_t j = 0; j < vids; ++j) {
      e.vids.push_back(Sha1::Hash(std::to_string(rng.Next())));
    }
    bool with_next = rng.NextBelow(2) == 0;
    if (with_next && rng.NextBelow(2) == 0) {
      e.next = NodeRid{static_cast<NodeId>(rng.NextBelow(100)),
                       Sha1::Hash(std::to_string(rng.Next()))};
    }
    ByteWriter w;
    e.Serialize(w, with_next);
    ByteReader r(w.bytes());
    auto back = RuleExecEntry::Deserialize(r, with_next);
    ASSERT_TRUE(back.ok());
    if (with_next) {
      EXPECT_EQ(*back, e);
    } else {
      EXPECT_EQ(back->rid, e.rid);
      EXPECT_EQ(back->vids, e.vids);
    }
  }
}

TEST_P(SerializationFuzz, TruncationNeverCrashes) {
  Rng rng(GetParam() * 123);
  ProvTree tree = RandomTree(rng);
  ByteWriter w;
  tree.Serialize(w);
  const auto& full = w.bytes();
  // Every strict prefix must fail to parse — never crash, never succeed
  // with different content.
  for (size_t cut = 0; cut < full.size();
       cut += 1 + full.size() / 64) {
    std::vector<uint8_t> prefix(full.begin(), full.begin() + cut);
    ByteReader r(prefix);
    auto back = ProvTree::Deserialize(r);
    if (back.ok()) {
      // A prefix can only parse successfully if trailing bytes were going
      // to be ignored — which our format never does.
      EXPECT_EQ(*back, tree);
      FAIL() << "prefix of " << cut << "/" << full.size() << " parsed";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dpc
