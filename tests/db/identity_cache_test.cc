// Differential tests for the memoized tuple identities: the cached
// Vid/SerializedSize/Hash64 must equal the values computed the slow way
// (materialize the canonical encoding, hash the buffer), table and store
// byte accounting must equal independent buffer-based recomputation, and
// the intern pool must share allocations without conflating contents.
#include <gtest/gtest.h>

#include "src/core/prov_tables.h"
#include "src/db/intern.h"
#include "src/db/table.h"
#include "src/db/tuple.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

Value RandomValue(Rng& rng) {
  if (rng.NextBelow(2) == 0) {
    return Value::Int(static_cast<int64_t>(rng.Next()));
  }
  size_t len = rng.NextBelow(40);
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.NextBelow(256)));
  }
  return Value::Str(std::move(s));
}

Tuple RandomTuple(Rng& rng) {
  std::string rel = "rel" + std::to_string(rng.NextBelow(16));
  std::vector<Value> values;
  values.push_back(Value::Int(static_cast<int64_t>(rng.NextBelow(100))));
  size_t arity = 1 + rng.NextBelow(6);
  for (size_t i = 1; i < arity; ++i) values.push_back(RandomValue(rng));
  return Tuple(std::move(rel), std::move(values));
}

// The slow path the caches replace: serialize into a scratch buffer.
std::vector<uint8_t> CanonicalBytes(const Tuple& t) {
  ByteWriter w;
  t.Serialize(w);
  return w.Take();
}

TEST(IdentityCacheTest, CachedIdentitiesEqualFreshOnRandomTuples) {
  Rng rng(20170514);
  for (int i = 0; i < 1000; ++i) {
    Tuple t = RandomTuple(rng);
    // Warm every cache, in an order that exercises cross-dependencies
    // (Vid() internally uses SerializedSize()).
    const Sha1Digest& cached_vid = t.Vid();
    size_t cached_size = t.SerializedSize();
    uint64_t cached_hash = t.Hash64();

    std::vector<uint8_t> bytes = CanonicalBytes(t);
    EXPECT_EQ(cached_size, bytes.size());
    EXPECT_EQ(cached_vid, Sha1::Hash(bytes.data(), bytes.size()));
    // The streaming FNV hash must equal FNV over the serialized buffer:
    // the container hash is defined by the canonical encoding.
    EXPECT_EQ(cached_hash, Fnv1a::HashBytes(bytes.data(), bytes.size()));

    // Second reads return the same values (memoization is stable).
    EXPECT_EQ(t.Vid(), cached_vid);
    EXPECT_EQ(t.SerializedSize(), cached_size);
    EXPECT_EQ(t.Hash64(), cached_hash);

    // A cold copy built from the same content agrees with the warm one.
    Tuple fresh(t.relation(), t.values());
    EXPECT_EQ(fresh, t);
    EXPECT_EQ(fresh.Hash64(), cached_hash);
    EXPECT_EQ(fresh.SerializedSize(), cached_size);
    EXPECT_EQ(fresh.Vid(), cached_vid);
  }
}

TEST(IdentityCacheTest, TableBytesEqualBufferSerialization) {
  Rng rng(42);
  Table table("t");
  for (int i = 0; i < 300; ++i) table.Insert(RandomTuple(rng));
  // Erase a third so live accounting paths (revive/erase) are exercised.
  std::vector<Tuple> snapshot = table.Snapshot();
  for (size_t i = 0; i < snapshot.size(); i += 3) table.Erase(snapshot[i]);
  // Re-insert a few of the erased (slot revival).
  for (size_t i = 0; i < snapshot.size(); i += 9) table.Insert(snapshot[i]);

  ByteWriter w;
  table.Serialize(w);
  EXPECT_EQ(table.SerializedSize(), w.size());
}

TEST(IdentityCacheTest, TupleStoreBytesEqualBufferSerialization) {
  Rng rng(7);
  TupleStore store;
  size_t expected = 0;
  for (int i = 0; i < 300; ++i) {
    Tuple t = RandomTuple(rng);
    std::vector<uint8_t> bytes = CanonicalBytes(t);
    if (store.Put(t)) expected += 20 + bytes.size();  // key digest + content
  }
  EXPECT_EQ(store.SerializedBytes(), expected);
}

TEST(IdentityCacheTest, StoreSharesCallerAllocation) {
  TupleRef t = MakeTupleRef(Tuple("r", {Value::Int(1), Value::Int(2)}));
  TupleStore store;
  EXPECT_TRUE(store.Put(t));
  EXPECT_FALSE(store.Put(t));  // duplicate: no state change
  const Tuple* found = store.Find(t->Vid());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, t.get());  // same allocation, not a copy
}

TEST(InternerTest, InterningSharesAndVerifiesContent) {
  TupleInterner interner;
  TupleRef a = interner.Intern(Tuple("r", {Value::Int(1)}));
  TupleRef b = interner.Intern(Tuple("r", {Value::Int(1)}));
  TupleRef c = interner.Intern(Tuple("r", {Value::Int(2)}));
  EXPECT_EQ(a.get(), b.get());  // identical content: one allocation
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.hits(), 1u);

  // The TupleRef overload shares too, without copying on a hit.
  TupleRef d = interner.Intern(c);
  EXPECT_EQ(d.get(), c.get());
  EXPECT_EQ(interner.hits(), 2u);
}

TEST(InternerTest, EpochFlushBoundsPoolAndKeepsRefsValid) {
  TupleInterner interner(/*max_entries=*/8);
  std::vector<TupleRef> held;
  for (int i = 0; i < 40; ++i) {
    held.push_back(interner.Intern(Tuple("r", {Value::Int(i)})));
  }
  EXPECT_GE(interner.flushes(), 1u);
  EXPECT_LE(interner.size(), 8u);
  // Outstanding refs survive the flushes with their contents intact.
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(held[i]->at(0).AsInt(), i);
  }
}

}  // namespace
}  // namespace dpc
