// MetricsRegistry / Tracer unit coverage: counter + per-node scoping,
// histogram bucketing, snapshot deltas and renderings, tracer buffering
// with bounded drops.
#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include "src/obs/trace.h"

namespace dpc {
namespace {

TEST(CounterTest, IncrementAndPerNode) {
  Counter c;
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_TRUE(c.per_node().empty());

  c.IncrementAt(2, 3);
  c.IncrementAt(0);
  EXPECT_EQ(c.value(), 9u);
  ASSERT_EQ(c.per_node().size(), 3u);
  EXPECT_EQ(c.per_node()[0], 1u);
  EXPECT_EQ(c.per_node()[1], 0u);
  EXPECT_EQ(c.per_node()[2], 3u);

  // node < 0 is process-scoped: total only.
  c.IncrementAt(-1, 7);
  EXPECT_EQ(c.value(), 16u);
  EXPECT_EQ(c.per_node().size(), 3u);

  c.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(c.per_node().empty());
}

TEST(HistogramTest, BucketsAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);

  for (int i = 0; i < 100; ++i) h.Observe(1.0);
  h.Observe(1000.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 1100.0 / 101.0, 1e-9);
  // The median bucket holds the 1.0 observations; the tail sees 1000.
  EXPECT_LE(h.Quantile(0.5), 2.0);
  EXPECT_GE(h.Quantile(0.999), 1000.0 / 2);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistryTest, StableReferencesAndSnapshot) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("test.a");
  Counter& a2 = reg.GetCounter("test.a");
  EXPECT_EQ(&a, &a2);  // hot paths cache this pointer

  a.IncrementAt(1, 10);
  reg.GetGauge("test.g").Set(2.5);
  reg.GetHistogram("test.h").Observe(4.0);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test.a"), 10u);
  ASSERT_EQ(snap.counters_per_node.at("test.a").size(), 2u);
  EXPECT_EQ(snap.counters_per_node.at("test.a")[1], 10u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.g"), 2.5);
  EXPECT_EQ(snap.histograms.at("test.h").count, 1u);

  reg.Reset();
  EXPECT_EQ(reg.GetCounter("test.a").value(), 0u);
  EXPECT_EQ(&reg.GetCounter("test.a"), &a);  // still the same object
}

TEST(MetricsSnapshotTest, DeltaIsolatesAWindow) {
  MetricsRegistry reg;
  reg.GetCounter("test.n").IncrementAt(0, 5);
  reg.GetHistogram("test.h").Observe(1.0);
  MetricsSnapshot before = reg.Snapshot();

  reg.GetCounter("test.n").IncrementAt(0, 2);
  reg.GetCounter("test.fresh").Increment();
  reg.GetHistogram("test.h").Observe(3.0);
  MetricsSnapshot delta = reg.Snapshot().Delta(before);

  EXPECT_EQ(delta.counters.at("test.n"), 2u);
  EXPECT_EQ(delta.counters_per_node.at("test.n")[0], 2u);
  EXPECT_EQ(delta.counters.at("test.fresh"), 1u);
  EXPECT_EQ(delta.histograms.at("test.h").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("test.h").sum, 3.0);
}

TEST(MetricsSnapshotTest, RenderingsNameEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("test.render").Increment(3);
  reg.GetGauge("test.gauge").Set(1.5);
  reg.GetHistogram("test.lat").Observe(0.25);
  MetricsSnapshot snap = reg.Snapshot();

  std::string text = snap.ToText();
  EXPECT_NE(text.find("test.render"), std::string::npos);
  EXPECT_NE(text.find("test.lat"), std::string::npos);

  std::string json = snap.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.render\": 3"), std::string::npos);

  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(TracerTest, RecordsAndBoundsTheBuffer) {
  Tracer t;
  EXPECT_FALSE(t.enabled());

  double sim_now = 1.5;
  t.Enable([&sim_now]() { return sim_now; }, /*max_events=*/3);
  ASSERT_TRUE(t.enabled());
  EXPECT_DOUBLE_EQ(t.now(), 1.5);

  t.Instant(0, TraceCat::kNetwork, "drop");
  t.CompleteAt(1, TraceCat::kRule, "fire:r1", 2.0, "\"rows\": 3");
  t.AsyncBegin(0, TraceCat::kQuery, "query", 7);
  // Buffer full: further events are dropped and counted, never grown.
  t.AsyncEnd(0, TraceCat::kQuery, "query", 7);
  t.Instant(0, TraceCat::kNetwork, "drop");
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped_events(), 2u);

  std::string json = t.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fire:r1\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);

  t.Disable();
  EXPECT_FALSE(t.enabled());
  EXPECT_EQ(t.events().size(), 3u);  // still exportable after Disable
  t.Clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped_events(), 0u);
}

}  // namespace
}  // namespace dpc
