// Trace-export golden test: the fwd and DNS experiment drivers must emit
// Chrome-trace/Perfetto JSON with the documented shape — traceEvents
// array, metadata rows, the span taxonomy (queue dispatch, rule firings,
// query lifecycle) and monotonically non-decreasing timestamps — and the
// ExperimentResult must carry the run's metrics snapshot.
//
// The repo has no JSON parser, so shape checks scan the exported string;
// CI additionally round-trips an export through `python3 -m json.tool`.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/core/distributed_query.h"
#include "src/obs/trace.h"

namespace dpc {
namespace {

using apps::ExperimentConfig;
using apps::ExperimentResult;
using apps::Scheme;
using apps::Testbed;

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Every "ts": value in the export, in file order.
std::vector<double> ExtractTimestamps(const std::string& json) {
  std::vector<double> out;
  const std::string key = "\"ts\": ";
  for (size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    out.push_back(std::strtod(json.c_str() + pos + key.size(), nullptr));
  }
  return out;
}

void ExpectChromeTraceShape(const std::string& json) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"clock\": \"simulated\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  // Process/thread metadata rows name the per-node tracks.
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"simulator\""), std::string::npos);

  // Events append in dispatch order, so exported sim timestamps must be
  // non-decreasing (metadata rows carry no ts and are skipped naturally).
  std::vector<double> ts = ExtractTimestamps(json);
  ASSERT_FALSE(ts.empty());
  for (size_t i = 1; i < ts.size(); ++i) {
    ASSERT_GE(ts[i], ts[i - 1]) << "timestamp regression at event " << i;
  }
}

TEST(TraceExportTest, ForwardingRunExportsValidTrace) {
  TransitStubParams params;
  TransitStubTopology topo = MakeTransitStub(params);
  apps::ForwardingWorkload workload = apps::MakeForwardingWorkload(
      topo, /*pairs=*/5, /*rate_pps=*/10, /*duration_s=*/2,
      apps::kDefaultPayloadLen, /*seed=*/42);
  ExperimentConfig config;
  config.duration_s = 2;
  config.snapshot_interval_s = 1;
  config.trace_path = ::testing::TempDir() + "fwd_trace.json";

  ExperimentResult r =
      apps::RunForwarding(Scheme::kAdvanced, topo, workload, config);
  ASSERT_GT(r.outputs, 0u);

  std::string json = ReadAll(config.trace_path);
  ExpectChromeTraceShape(json);
  // The taxonomy's synchronous spans: queue dispatch plus per-rule
  // firings with their planner step counts and recorder maintenance.
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"fire:"), std::string::npos);
  EXPECT_NE(json.find("\"plan_steps\":"), std::string::npos);
  EXPECT_NE(json.find("\"on_rule_fired\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  // The run's metrics ride in the result.
  ASSERT_FALSE(r.metrics.empty());
  EXPECT_GT(r.metrics.counters.at("queue.events_dispatched"), 0u);
  EXPECT_GT(r.metrics.counters.at("system.rule_firings"), 0u);
  EXPECT_GT(r.metrics.counters.at("system.outputs"), 0u);
  EXPECT_FALSE(r.metrics.ToText().empty());
}

TEST(TraceExportTest, DnsRunExportsValidTrace) {
  apps::DnsParams params;
  params.num_servers = 20;
  params.num_urls = 10;
  params.trunk_depth = 6;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(params);
  std::vector<apps::WorkloadItem> workload = apps::MakeDnsWorkload(
      universe, /*count=*/40, /*rate_rps=*/40, /*zipf_theta=*/0.9,
      /*seed=*/7);
  ExperimentConfig config;
  config.duration_s = 2;
  config.snapshot_interval_s = 1;
  config.trace_path = ::testing::TempDir() + "dns_trace.json";

  ExperimentResult r =
      apps::RunDns(Scheme::kBasic, universe, workload, config);
  ASSERT_GT(r.outputs, 0u);

  std::string json = ReadAll(config.trace_path);
  ExpectChromeTraceShape(json);
  EXPECT_NE(json.find("\"fire:"), std::string::npos);
  ASSERT_FALSE(r.metrics.empty());
  EXPECT_GT(r.metrics.counters.at("system.rule_firings"), 0u);
}

// Distributed queries show up as async spans with per-hop instants.
TEST(TraceExportTest, DistributedQuerySpans) {
  TransitStubParams params;
  params.num_transit = 2;
  params.stubs_per_transit = 2;
  params.nodes_per_stub = 3;
  TransitStubTopology topo = MakeTransitStub(params);
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  apps::TestbedOptions options;
  options.trace = true;  // in-memory trace, no file
  auto bed_result = Testbed::Create(std::move(program).value(), &topo.graph,
                                    Scheme::kAdvanced, options);
  ASSERT_TRUE(bed_result.ok());
  auto bed = std::move(bed_result).value();
  ASSERT_TRUE(bed->tracing());

  Rng rng(5);
  auto pairs = apps::PickCommunicatingPairs(topo, 3, rng);
  for (auto [s, d] : pairs) {
    ASSERT_TRUE(
        apps::InstallRoutesForPair(bed->system(), topo.graph, s, d).ok());
  }
  double t = 0;
  for (auto [s, d] : pairs) {
    ASSERT_TRUE(bed->system()
                    .ScheduleInject(
                        apps::MakePacket(s, s, d, apps::MakePayload(64, s)),
                        t += 0.001)
                    .ok());
  }
  bed->system().Run();
  ASSERT_GT(bed->system().stats().outputs, 0u);

  auto querier = DistributedQuerier::ForAdvanced(
      bed->advanced(), &bed->program(), &bed->system().functions(),
      &topo.graph, &bed->queue());
  OutputRecord out = bed->system().AllOutputs().front();
  auto res = querier->QueryAndWait(out.tuple, &out.meta.evid);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  bool saw_begin = false, saw_end = false, saw_hop = false;
  for (const TraceEvent& ev : Trace().events()) {
    if (ev.cat != TraceCat::kQuery) continue;
    if (ev.name == "query" && ev.phase == 'b') saw_begin = true;
    if (ev.name == "query" && ev.phase == 'e') saw_end = true;
    if (ev.name == "hop" && ev.phase == 'i') saw_hop = true;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_hop);

  MetricsSnapshot delta = bed->MetricsDelta();
  EXPECT_GE(delta.counters.at("query.started"), 1u);
  EXPECT_GE(delta.counters.at("query.completed"), 1u);
  EXPECT_GE(delta.histograms.at("query.latency_s").count, 1u);
}

// Satellite hardening: growth accessors on degenerate results must warn
// and report zero, never underflow `size() - 1`.
TEST(TraceExportTest, EmptySnapshotGrowthIsZero) {
  ExperimentResult r;
  EXPECT_TRUE(r.PerNodeGrowthBps().empty());
  EXPECT_EQ(r.TotalGrowthBytesPerSec(), 0);
  EXPECT_EQ(r.TotalStorageAt(3), 0u);

  r.snapshot_times = {1.0};  // one snapshot: still no window
  r.per_node_storage = {{10, 20}};
  EXPECT_TRUE(r.PerNodeGrowthBps().empty());
  EXPECT_EQ(r.TotalGrowthBytesPerSec(), 0);

  r.snapshot_times = {1.0, 1.0};  // zero-width window
  r.per_node_storage = {{10, 20}, {30, 40}};
  EXPECT_TRUE(r.PerNodeGrowthBps().empty());
  EXPECT_EQ(r.TotalGrowthBytesPerSec(), 0);
}

}  // namespace
}  // namespace dpc
