// Topology: link bookkeeping, BFS routing, path/latency metrics.
#include "src/net/topology.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

class LineTopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) topo_.AddNode();
    ASSERT_TRUE(topo_.AddLink(0, 1, LinkProps{0.010, 1e9}).ok());
    ASSERT_TRUE(topo_.AddLink(1, 2, LinkProps{0.020, 1e9}).ok());
    ASSERT_TRUE(topo_.AddLink(2, 3, LinkProps{0.030, 1e9}).ok());
    topo_.ComputeRoutes();
  }
  Topology topo_;
};

TEST_F(LineTopologyTest, Distances) {
  EXPECT_EQ(topo_.Distance(0, 0), 0);
  EXPECT_EQ(topo_.Distance(0, 3), 3);
  EXPECT_EQ(topo_.Distance(3, 0), 3);
  EXPECT_EQ(topo_.Distance(1, 2), 1);
}

TEST_F(LineTopologyTest, NextHopAndPath) {
  EXPECT_EQ(topo_.NextHop(0, 3), 1);
  EXPECT_EQ(topo_.NextHop(3, 0), 2);
  EXPECT_EQ(topo_.NextHop(0, 0), kNullNode);
  EXPECT_EQ(topo_.Path(0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(topo_.Path(2, 2), (std::vector<NodeId>{2}));
}

TEST_F(LineTopologyTest, PathLatencySumsLinks) {
  EXPECT_DOUBLE_EQ(topo_.PathLatency(0, 3), 0.060);
  EXPECT_DOUBLE_EQ(topo_.PathLatency(1, 1), 0);
}

TEST_F(LineTopologyTest, DiameterAndAverage) {
  EXPECT_EQ(topo_.Diameter(), 3);
  EXPECT_TRUE(topo_.IsConnected());
  // Pairwise distances: 1,2,3,1,2,1 each counted twice; avg = 20/12.
  EXPECT_NEAR(topo_.AverageDistance(), 20.0 / 12.0, 1e-12);
}

TEST_F(LineTopologyTest, LinkLookup) {
  EXPECT_TRUE(topo_.HasLink(0, 1));
  EXPECT_TRUE(topo_.HasLink(1, 0));  // undirected
  EXPECT_FALSE(topo_.HasLink(0, 2));
  EXPECT_DOUBLE_EQ(topo_.Link(2, 1).latency_s, 0.020);
}

TEST(TopologyTest, RejectsBadLinks) {
  Topology t;
  t.AddNodes(2);
  EXPECT_TRUE(t.AddLink(0, 0, {}).IsInvalidArgument());
  EXPECT_TRUE(t.AddLink(0, 5, {}).IsInvalidArgument());
  EXPECT_TRUE(t.AddLink(0, 1, {}).ok());
  EXPECT_TRUE(t.AddLink(1, 0, {}).IsAlreadyExists());
}

TEST(TopologyTest, DisconnectedGraphs) {
  Topology t;
  t.AddNodes(4);
  ASSERT_TRUE(t.AddLink(0, 1, {}).ok());
  ASSERT_TRUE(t.AddLink(2, 3, {}).ok());
  t.ComputeRoutes();
  EXPECT_FALSE(t.IsConnected());
  EXPECT_EQ(t.Distance(0, 2), -1);
  EXPECT_EQ(t.NextHop(0, 2), kNullNode);
  EXPECT_TRUE(t.Path(0, 2).empty());
}

TEST(TopologyTest, ShortestPathPrefersFewerHops) {
  // Square with a diagonal: 0-1-2 vs 0-2 direct.
  Topology t;
  t.AddNodes(3);
  ASSERT_TRUE(t.AddLink(0, 1, {}).ok());
  ASSERT_TRUE(t.AddLink(1, 2, {}).ok());
  ASSERT_TRUE(t.AddLink(0, 2, {}).ok());
  t.ComputeRoutes();
  EXPECT_EQ(t.Distance(0, 2), 1);
  EXPECT_EQ(t.Path(0, 2), (std::vector<NodeId>{0, 2}));
}

TEST(TopologyTest, NextHopConsistentWithDistance) {
  // On any graph, following NextHop must decrease distance by exactly 1.
  Topology t;
  t.AddNodes(6);
  ASSERT_TRUE(t.AddLink(0, 1, {}).ok());
  ASSERT_TRUE(t.AddLink(1, 2, {}).ok());
  ASSERT_TRUE(t.AddLink(2, 3, {}).ok());
  ASSERT_TRUE(t.AddLink(3, 4, {}).ok());
  ASSERT_TRUE(t.AddLink(4, 5, {}).ok());
  ASSERT_TRUE(t.AddLink(0, 5, {}).ok());
  t.ComputeRoutes();
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u == v) continue;
      NodeId next = t.NextHop(u, v);
      ASSERT_NE(next, kNullNode);
      EXPECT_EQ(t.Distance(next, v), t.Distance(u, v) - 1)
          << u << "->" << v;
    }
  }
}

TEST(TopologyTest, AddNodesReturnsFirstId) {
  Topology t;
  EXPECT_EQ(t.AddNodes(3), 0);
  EXPECT_EQ(t.AddNodes(2), 3);
  EXPECT_EQ(t.num_nodes(), 5);
}

}  // namespace
}  // namespace dpc
