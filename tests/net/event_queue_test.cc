// Discrete-event queue: ordering, tie-breaking, time advancement.
#include "src/net/event_queue.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dpc {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PastSchedulesClampToNowAndAreCounted) {
  // Regression: scheduling at t < now() used to be a debug-check abort
  // (and in release builds silently created an event in the past, which
  // the priority queue would run with time flowing backwards). It must
  // clamp to now() and count the occurrence.
  EventQueue q;
  std::vector<double> fired_at;
  q.ScheduleAt(5.0, [&] {
    q.ScheduleAt(2.0, [&] { fired_at.push_back(q.now()); });  // the past
    q.ScheduleAt(5.0, [&] { fired_at.push_back(q.now()); });  // now: fine
  });
  q.RunAll();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(fired_at[0], 5.0);  // clamped, not 2.0
  EXPECT_DOUBLE_EQ(fired_at[1], 5.0);
  EXPECT_EQ(q.past_schedules(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);  // time never ran backwards
}

TEST(EventQueueTest, PeekTimeAndRunWindow) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(q.PeekTime(), 1.0);
  // Window end is exclusive: the event at exactly 3.0 stays pending.
  EXPECT_EQ(q.RunWindow(3.0), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 3.0);
  EXPECT_EQ(q.RunWindow(10.0), 1u);
  EXPECT_TRUE(std::isinf(q.PeekTime()));  // drained
}

TEST(EventQueueTest, CallbacksCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] {
    ++fired;
    q.ScheduleAfter(1.0, [&] { ++fired; });
  });
  q.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(5.0, [&] { ++fired; });
  q.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.pending(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilAdvancesTimeWhenIdle) {
  EventQueue q;
  q.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueueTest, RunNextOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.RunNext());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1;
  q.ScheduleAt(2.0, [&] {
    q.ScheduleAfter(0.5, [&] { fired_at = q.now(); });
  });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  TimerId id = q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(2.0, [&] { ++fired; });
  q.Cancel(id);
  EXPECT_EQ(q.pending(), 1u);
  q.RunAll();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelingAllEventsEmptiesQueue) {
  EventQueue q;
  TimerId a = q.ScheduleAt(1.0, [] {});
  TimerId b = q.ScheduleAt(2.0, [] {});
  q.Cancel(a);
  q.Cancel(b);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, CancelAfterFiringIsANoOp) {
  EventQueue q;
  int fired = 0;
  TimerId id = q.ScheduleAt(1.0, [&] { ++fired; });
  q.RunAll();
  EXPECT_EQ(fired, 1);
  q.Cancel(id);  // already fired: must not disturb later scheduling
  q.ScheduleAt(2.0, [&] { ++fired; });
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelFromInsideCallback) {
  EventQueue q;
  int fired = 0;
  TimerId victim = q.ScheduleAt(2.0, [&] { ++fired; });
  q.ScheduleAt(1.0, [&] { q.Cancel(victim); });
  q.RunAll();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDrainTest, DrainsContiguousSameTagSameTimeRun) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAtTagged(1.0, 7, [&] {
    order.push_back(0);
    // Inside the dispatch of the first tag-7 event: the next three
    // entries fire at this instant with this tag, so the drain runs
    // exactly them, in schedule order, and stops at the tag-9 entry.
    EXPECT_EQ(q.HeadTagAtNow(), 7u);
    EXPECT_EQ(q.DrainAtTime(7), 3u);
    EXPECT_EQ(q.HeadTagAtNow(), 9u);
  });
  for (int i = 1; i <= 3; ++i) {
    q.ScheduleAtTagged(1.0, 7, [&order, i] { order.push_back(i); });
  }
  q.ScheduleAtTagged(1.0, 9, [&] { order.push_back(4); });
  q.ScheduleAtTagged(1.0, 7, [&] { order.push_back(5); });  // after 9: kept
  q.RunAll();
  // The drain never reorders: the post-drain events still run in the
  // exact sequence RunAll alone would have used.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(EventQueueDrainTest, DrainStopsAtLaterTimeAndUntaggedEvents) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAtTagged(1.0, 5, [&] {
    order.push_back(0);
    EXPECT_EQ(q.DrainAtTime(5), 1u);  // only the same-instant peer
  });
  q.ScheduleAtTagged(1.0, 5, [&order] { order.push_back(1); });
  q.ScheduleAt(1.0, [&order] { order.push_back(2); });  // untagged barrier
  q.ScheduleAtTagged(1.0, 5, [&order] { order.push_back(3); });
  q.ScheduleAtTagged(2.0, 5, [&] {
    order.push_back(4);
    // Same tag, but the next entry is at a later time: nothing drains.
    EXPECT_EQ(q.HeadTagAtNow(), 0u);
    EXPECT_EQ(q.DrainAtTime(5), 0u);
  });
  q.ScheduleAtTagged(3.0, 5, [&order] { order.push_back(5); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueueDrainTest, DrainCountsDispatchesAndSkipsCanceled) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAtTagged(1.0, 3, [&] {
    ++fired;
    EXPECT_EQ(q.DrainAtTime(3), 1u);  // the canceled peer is not run
  });
  TimerId victim = q.ScheduleAtTagged(1.0, 3, [&] { ++fired; });
  q.ScheduleAtTagged(1.0, 3, [&] { ++fired; });
  q.Cancel(victim);
  q.RunAll();
  EXPECT_EQ(fired, 2);
  // Drained entries count as dispatches exactly as RunNext would count
  // them (replay and trace accounting key off this).
  EXPECT_EQ(q.dispatched(), 2u);
}

TEST(EventQueueDrainTest, DrainNeverCrossesRunWindowBoundary) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAtTagged(1.0, 4, [&] {
    order.push_back(0);
    // Drained peers fire at now(), which is strictly inside the window
    // that admitted this event — entries at the window edge have a later
    // time and are left alone.
    EXPECT_EQ(q.DrainAtTime(4), 1u);
  });
  q.ScheduleAtTagged(1.0, 4, [&order] { order.push_back(1); });
  q.ScheduleAtTagged(2.0, 4, [&order] { order.push_back(2); });
  // RunWindow pops one entry itself; the drain dispatched the peer from
  // inside that entry's callback (both count in dispatched()).
  EXPECT_EQ(q.RunWindow(/*end_exclusive=*/2.0), 1u);
  EXPECT_EQ(q.dispatched(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(q.pending(), 1u);  // the t=2.0 event stayed for the next window
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueDrainTest, CurrentIsSetOnlyDuringDispatch) {
  EXPECT_EQ(EventQueue::Current(), nullptr);
  EventQueue q;
  q.ScheduleAt(1.0, [&] { EXPECT_EQ(EventQueue::Current(), &q); });
  q.RunAll();
  EXPECT_EQ(EventQueue::Current(), nullptr);
}

TEST(EventQueueTest, MaxEventsGuardStops) {
  EventQueue q;
  int fired = 0;
  // A self-perpetuating event chain.
  std::function<void()> tick = [&] {
    ++fired;
    q.ScheduleAfter(1.0, tick);
  };
  q.ScheduleAt(0.0, tick);
  q.RunAll(/*max_events=*/100);
  EXPECT_EQ(fired, 100);
}

}  // namespace
}  // namespace dpc
