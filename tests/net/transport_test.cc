// ReliableTransport: ack/retransmit/backoff, exactly-once dedup, bounded
// give-up, determinism under seeded loss.
#include "src/net/transport.h"

#include <gtest/gtest.h>

#include <vector>

namespace dpc {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_.AddNodes(4);
    // 0 -- 1 -- 2 -- 3 with 10 ms / 1 Mbps links.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(topo_.AddLink(i, i + 1, LinkProps{0.010, 1e6}).ok());
    }
    topo_.ComputeRoutes();
    net_ = std::make_unique<Network>(&topo_, &queue_);
  }

  void MakeTransport(TransportOptions options = {}) {
    transport_ = std::make_unique<ReliableTransport>(net_.get(), &queue_,
                                                     options);
    transport_->SetDeliveryHandler(
        [this](const Message& m) { delivered_.push_back(m); });
  }

  Message MakeMsg(NodeId src, NodeId dst, uint8_t tag) {
    Message m;
    m.kind = MessageKind::kEvent;
    m.src = src;
    m.dst = dst;
    m.payload.assign(16, tag);
    return m;
  }

  Topology topo_;
  EventQueue queue_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<ReliableTransport> transport_;
  std::vector<Message> delivered_;
};

TEST_F(TransportTest, LosslessDeliveryIsTransparent) {
  MakeTransport();
  transport_->Send(MakeMsg(0, 3, 0xAA));
  queue_.RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].dst, 3);
  EXPECT_EQ(delivered_[0].kind, MessageKind::kEvent);
  // The transport header must be stripped before the application sees it.
  EXPECT_EQ(delivered_[0].payload, std::vector<uint8_t>(16, 0xAA));
  EXPECT_EQ(transport_->stats().retransmissions, 0u);
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST_F(TransportTest, RetransmitsUntilDeliveredUnderHeavyLoss) {
  // 50% per-traversal loss over 3 hops leaves ~1.6% end-to-end success per
  // attempt; loss is transient, so retry forever rather than give up.
  TransportOptions options;
  options.max_attempts = 0;
  MakeTransport(options);
  net_->SetLossRate(0.5, /*seed=*/3);
  for (int i = 0; i < 20; ++i) {
    transport_->Send(MakeMsg(0, 3, static_cast<uint8_t>(i)));
  }
  queue_.RunAll();
  EXPECT_EQ(delivered_.size(), 20u);
  EXPECT_GT(transport_->stats().retransmissions, 0u);
  EXPECT_EQ(transport_->stats().delivery_failures, 0u);
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST_F(TransportTest, LostAckTriggersResendButDeliversOnce) {
  TransportOptions options;
  options.max_attempts = 0;
  MakeTransport(options);
  // Drop the very first traversal 1->0 the ack takes; data 0->1 is clean.
  // Easiest deterministic setup: full loss on the link only after the data
  // frame got through once. Instead, force it with a one-shot hook: down
  // the link while the ack is in flight is timing-fragile, so use loss on
  // every traversal with a seed known to lose some acks: the observable
  // contract is what matters — exactly-once delivery, duplicates
  // suppressed, duplicate deliveries re-acked.
  net_->SetLossRate(0.4, /*seed=*/11);
  for (int i = 0; i < 30; ++i) {
    transport_->Send(MakeMsg(0, 1, static_cast<uint8_t>(i)));
  }
  queue_.RunAll();
  EXPECT_EQ(delivered_.size(), 30u);  // exactly once each, no duplicates
  EXPECT_EQ(transport_->stats().duplicates_suppressed +
                transport_->stats().data_frames_sent,
            transport_->stats().acks_sent);
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST_F(TransportTest, BackoffCapsAtMaxRto) {
  TransportOptions options;
  options.initial_rto_s = 0.1;
  options.backoff_factor = 2.0;
  options.max_rto_s = 0.4;
  options.max_attempts = 5;
  MakeTransport(options);
  ASSERT_TRUE(net_->SetLinkUp(0, 1, false).ok());
  transport_->Send(MakeMsg(0, 1, 1));
  queue_.RunAll();
  // Attempts at t=0, .1, .3, .7, 1.1 (rto 0.1, 0.2, 0.4, 0.4), giving up
  // one rto after the 5th attempt: t = 1.5.
  EXPECT_EQ(transport_->stats().delivery_failures, 1u);
  EXPECT_EQ(transport_->stats().retransmissions, 4u);
  EXPECT_NEAR(queue_.now(), 1.5, 1e-9);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(TransportTest, FailureHandlerGetsTheOriginalMessage) {
  TransportOptions options;
  options.max_attempts = 2;
  MakeTransport(options);
  std::vector<Message> failed;
  transport_->SetFailureHandler(
      [&](const Message& m) { failed.push_back(m); });
  ASSERT_TRUE(net_->SetLinkUp(2, 3, false).ok());
  transport_->Send(MakeMsg(0, 3, 0x5C));
  queue_.RunAll();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0].dst, 3);
  EXPECT_EQ(failed[0].payload, std::vector<uint8_t>(16, 0x5C));
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST_F(TransportTest, RecoversWhenLinkHealsBeforeGiveUp) {
  TransportOptions options;
  options.initial_rto_s = 0.2;
  options.max_attempts = 16;
  MakeTransport(options);
  ASSERT_TRUE(net_->SetLinkUp(1, 2, false).ok());
  ASSERT_TRUE(net_->ScheduleLinkUp(1, 2, true, 1.0).ok());
  transport_->Send(MakeMsg(0, 3, 0x77));
  queue_.RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(transport_->stats().delivery_failures, 0u);
  EXPECT_GT(transport_->stats().retransmissions, 0u);
}

TEST_F(TransportTest, SurvivesATransientPartition) {
  MakeTransport();
  ASSERT_TRUE(net_->SetPartition({0, 0, 1, 1}).ok());
  net_->SchedulePartition({}, 2.0);  // heal at t=2
  transport_->Send(MakeMsg(0, 3, 0x33));
  queue_.RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(transport_->stats().delivery_failures, 0u);
}

TEST_F(TransportTest, BroadcastSkipsOriginatorAndIsReliable) {
  MakeTransport();
  net_->SetLossRate(0.3, /*seed=*/5);
  Message m;
  m.kind = MessageKind::kControl;
  transport_->Broadcast(1, std::move(m));
  queue_.RunAll();
  std::vector<NodeId> destinations;
  for (const Message& d : delivered_) destinations.push_back(d.dst);
  std::sort(destinations.begin(), destinations.end());
  EXPECT_EQ(destinations, (std::vector<NodeId>{0, 2, 3}));
}

TEST_F(TransportTest, DeterministicPerSeed) {
  auto run = [&](uint64_t seed) {
    EventQueue q;
    Network net(&topo_, &q);
    ReliableTransport transport(&net, &q);
    uint64_t count = 0;
    transport.SetDeliveryHandler([&](const Message&) { ++count; });
    net.SetLossRate(0.4, seed);
    Message m;
    m.kind = MessageKind::kEvent;
    for (int i = 0; i < 25; ++i) {
      m.src = 0;
      m.dst = 3;
      m.payload.assign(8, static_cast<uint8_t>(i));
      transport.Send(m);
    }
    q.RunAll();
    return std::make_tuple(count, transport.stats().retransmissions,
                           transport.stats().duplicates_suppressed,
                           q.now());
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_EQ(std::get<0>(run(9)), 25u);
}

}  // namespace
}  // namespace dpc
