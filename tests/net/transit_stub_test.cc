// Transit-stub generator: structure, connectivity, link classes, and the
// paper's 100-node configuration.
#include "src/net/transit_stub.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

TEST(TransitStubTest, PaperConfiguration) {
  TransitStubTopology topo = MakeTransitStub();
  EXPECT_EQ(topo.graph.num_nodes(), 100);  // 4 + 4*3*8
  EXPECT_EQ(topo.transit_nodes.size(), 4u);
  EXPECT_EQ(topo.stub_domains.size(), 12u);
  EXPECT_EQ(topo.stub_nodes.size(), 96u);
  EXPECT_TRUE(topo.graph.IsConnected());
  // The paper reports diameter 12 and average distance 5.3 for GT-ITM's
  // output; our generator should land in the same regime.
  EXPECT_GE(topo.graph.Diameter(), 5);
  EXPECT_LE(topo.graph.Diameter(), 14);
  EXPECT_GT(topo.graph.AverageDistance(), 3.0);
  EXPECT_LT(topo.graph.AverageDistance(), 7.0);
}

TEST(TransitStubTest, TransitCoreIsFullMesh) {
  TransitStubTopology topo = MakeTransitStub();
  for (size_t i = 0; i < topo.transit_nodes.size(); ++i) {
    for (size_t j = i + 1; j < topo.transit_nodes.size(); ++j) {
      EXPECT_TRUE(
          topo.graph.HasLink(topo.transit_nodes[i], topo.transit_nodes[j]));
    }
  }
}

TEST(TransitStubTest, LinkClassesCarryConfiguredProps) {
  TransitStubParams params;
  TransitStubTopology topo = MakeTransitStub(params);
  // Transit-transit.
  EXPECT_EQ(topo.graph.Link(topo.transit_nodes[0], topo.transit_nodes[1]),
            params.transit_transit);
  // Gateway (first stub node of domain 0) to its transit node.
  EXPECT_EQ(topo.graph.Link(topo.stub_domains[0][0], topo.transit_nodes[0]),
            params.transit_stub);
  // Intra-stub spanning-tree edge.
  const auto& domain = topo.stub_domains[0];
  bool found = false;
  for (size_t i = 1; i < domain.size() && !found; ++i) {
    for (size_t j = 0; j < i && !found; ++j) {
      if (topo.graph.HasLink(domain[i], domain[j])) {
        EXPECT_EQ(topo.graph.Link(domain[i], domain[j]), params.stub_stub);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(TransitStubTest, DeterministicForSeed) {
  TransitStubTopology a = MakeTransitStub();
  TransitStubTopology b = MakeTransitStub();
  EXPECT_EQ(a.graph.num_links(), b.graph.num_links());
  EXPECT_EQ(a.graph.Diameter(), b.graph.Diameter());
}

TEST(TransitStubTest, DifferentSeedsDiffer) {
  TransitStubParams p1, p2;
  p2.seed = 777;
  TransitStubTopology a = MakeTransitStub(p1);
  TransitStubTopology b = MakeTransitStub(p2);
  // Same node count, (almost surely) different wiring.
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_NE(a.graph.num_links(), b.graph.num_links());
}

class TransitStubSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TransitStubSweep, ArbitraryShapesStayConnected) {
  auto [nt, spt, nps] = GetParam();
  TransitStubParams params;
  params.num_transit = nt;
  params.stubs_per_transit = spt;
  params.nodes_per_stub = nps;
  TransitStubTopology topo = MakeTransitStub(params);
  EXPECT_EQ(topo.graph.num_nodes(), nt + nt * spt * nps);
  EXPECT_TRUE(topo.graph.IsConnected());
  EXPECT_EQ(topo.stub_nodes.size(),
            static_cast<size_t>(nt * spt * nps));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransitStubSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 2, 4),
                      std::make_tuple(2, 1, 8), std::make_tuple(3, 3, 3),
                      std::make_tuple(6, 2, 5), std::make_tuple(8, 1, 2)));

}  // namespace
}  // namespace dpc
