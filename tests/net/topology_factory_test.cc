// Topology constructors: structure, connectivity, distances.
#include "src/net/topology_factory.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

TEST(TopologyFactoryTest, Line) {
  Topology t = MakeLineTopology(5);
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_TRUE(t.IsConnected());
  EXPECT_EQ(t.Diameter(), 4);
  EXPECT_EQ(t.Distance(0, 4), 4);
}

TEST(TopologyFactoryTest, SingleNodeLine) {
  Topology t = MakeLineTopology(1);
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_EQ(t.num_links(), 0u);
  EXPECT_TRUE(t.IsConnected());
  EXPECT_EQ(t.Diameter(), 0);
}

TEST(TopologyFactoryTest, Ring) {
  Topology t = MakeRingTopology(6);
  EXPECT_EQ(t.num_links(), 6u);
  EXPECT_TRUE(t.IsConnected());
  EXPECT_EQ(t.Diameter(), 3);          // opposite nodes
  EXPECT_EQ(t.Distance(0, 5), 1);      // wraps around
}

TEST(TopologyFactoryTest, Star) {
  Topology t = MakeStarTopology(7);
  EXPECT_EQ(t.num_links(), 6u);
  EXPECT_EQ(t.Diameter(), 2);
  for (NodeId i = 1; i < 7; ++i) {
    EXPECT_EQ(t.Distance(0, i), 1);
    EXPECT_EQ(t.NextHop(i, (i % 6) + 1 == i ? 1 : (i % 6) + 1), 0);
  }
}

TEST(TopologyFactoryTest, Grid) {
  Topology t = MakeGridTopology(3, 4);
  EXPECT_EQ(t.num_nodes(), 12);
  // 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8 = 17 links.
  EXPECT_EQ(t.num_links(), 17u);
  EXPECT_TRUE(t.IsConnected());
  // Manhattan distance between corners.
  EXPECT_EQ(t.Distance(0, 11), 5);
  EXPECT_EQ(t.Diameter(), 5);
}

TEST(TopologyFactoryTest, DegenerateGrid) {
  Topology t = MakeGridTopology(1, 5);
  EXPECT_EQ(t.num_links(), 4u);
  EXPECT_EQ(t.Diameter(), 4);
}

class RandomTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreeSweep, TreesAreTrees) {
  Topology t = MakeRandomTreeTopology(GetParam(), /*seed=*/GetParam() * 7);
  EXPECT_EQ(t.num_nodes(), GetParam());
  EXPECT_EQ(t.num_links(), static_cast<size_t>(GetParam() - 1));
  EXPECT_TRUE(t.IsConnected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTreeSweep,
                         ::testing::Values(1, 2, 3, 10, 50, 200));

TEST(TopologyFactoryTest, CustomLinkPropsApply) {
  LinkProps fast{0.0001, 10e9};
  Topology t = MakeLineTopology(3, fast);
  EXPECT_EQ(t.Link(0, 1), fast);
  EXPECT_DOUBLE_EQ(t.PathLatency(0, 2), 0.0002);
}

}  // namespace
}  // namespace dpc
