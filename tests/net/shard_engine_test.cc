// ShardEngine: partitioning, lookahead, window execution, deterministic
// cross-shard mailbox merge, and global actions.
#include "src/net/shard_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <vector>

namespace dpc {
namespace {

Topology MakeLine(int n, double latency_s) {
  Topology topo;
  topo.AddNodes(n);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(topo.AddLink(i, i + 1, LinkProps{latency_s, 1e6}).ok());
  }
  topo.ComputeRoutes();
  return topo;
}

TEST(ShardMapTest, ContiguousNearEqualBlocks) {
  ShardMap map(10, 4);
  EXPECT_EQ(map.num_shards(), 4);
  std::vector<int> sizes(4, 0);
  int prev = 0;
  for (NodeId n = 0; n < 10; ++n) {
    int s = map.shard_of(n);
    EXPECT_GE(s, prev);  // contiguous blocks: shard ids never go back
    prev = s;
    ++sizes[s];
  }
  for (int s : sizes) {
    EXPECT_GE(s, 2);
    EXPECT_LE(s, 3);
  }
}

TEST(ShardMapTest, ClampsShardsToNodes) {
  ShardMap map(3, 8);
  EXPECT_EQ(map.num_shards(), 3);
}

TEST(ShardEngineTest, LookaheadIsMinCrossShardLatency) {
  Topology topo;
  topo.AddNodes(4);
  // 2 shards of {0,1} and {2,3}: link 1--2 crosses, the others don't.
  ASSERT_TRUE(topo.AddLink(0, 1, LinkProps{0.001, 1e6}).ok());
  ASSERT_TRUE(topo.AddLink(1, 2, LinkProps{0.040, 1e6}).ok());
  ASSERT_TRUE(topo.AddLink(2, 3, LinkProps{0.002, 1e6}).ok());
  topo.ComputeRoutes();
  ShardMap map(4, 2);
  EXPECT_DOUBLE_EQ(MinCrossShardLatency(topo, map), 0.040);
  // All links shard-internal: no cross-shard interaction, infinite windows.
  EXPECT_TRUE(std::isinf(MinCrossShardLatency(topo, ShardMap(4, 1))));

  EventQueue q;
  ShardEngine engine(&topo, 2, &q);
  EXPECT_DOUBLE_EQ(engine.lookahead_s(), 0.040);
}

TEST(ShardEngineTest, RunsEventsAcrossShardsInTimeOrder) {
  Topology topo = MakeLine(6, 0.010);
  EventQueue q;
  ShardEngine engine(&topo, 3, &q);
  ASSERT_EQ(engine.num_shards(), 3);

  // One log per node: only the owning shard's worker writes it.
  std::vector<std::vector<double>> log(6);
  for (NodeId n = 0; n < 6; ++n) {
    for (int k = 1; k <= 3; ++k) {
      double t = 0.1 * k + 0.01 * n;
      engine.ScheduleAtNode(n, t, [&log, &engine, n]() {
        log[n].push_back(engine.queue(engine.shard_of(n)).now());
      });
    }
  }
  engine.RunAll();
  for (NodeId n = 0; n < 6; ++n) {
    ASSERT_EQ(log[n].size(), 3u) << "node " << n;
    EXPECT_LT(log[n][0], log[n][1]);
    EXPECT_LT(log[n][1], log[n][2]);
  }
  EXPECT_EQ(engine.events_executed(), 18u);
  EXPECT_GT(engine.windows(), 0u);
}

// The determinism core: per-node execution histories of a cross-shard
// ping workload are identical at 1 and 3 shards — mailbox merges replace
// direct schedules without disturbing times or same-time tie order.
TEST(ShardEngineTest, CrossShardMergeMatchesSingleShardRun) {
  auto run = [](int shards) {
    Topology topo = MakeLine(6, 0.010);
    EventQueue q;
    ShardEngine engine(&topo, shards, &q);
    std::vector<std::vector<double>> log(6);
    // Each hop schedules the next at + one lookahead (the minimum legal
    // cross-shard delay), bouncing 0 -> 5 -> 0 ... with two same-time
    // events per arrival to exercise tie order.
    std::function<void(NodeId, int)> hop = [&](NodeId at, int remaining) {
      log[at].push_back(engine.queue(engine.shard_of(at)).now());
      if (remaining == 0) return;
      NodeId next = at == 0 ? 5 : 0;
      double t = engine.queue(engine.shard_of(at)).now() + 0.010;
      engine.ScheduleAtNode(next, t, [&hop, next, remaining]() {
        hop(next, remaining - 1);
      });
      engine.ScheduleAtNode(next, t, [&log, next]() {
        log[next].push_back(-1.0);  // tie marker: must stay after the hop
      });
    };
    engine.ScheduleAtNode(0, 0.5, [&hop]() { hop(0, 8); });
    engine.RunAll();
    if (shards > 1) EXPECT_GT(engine.cross_shard_messages(), 0u);
    return log;
  };
  auto log1 = run(1);
  auto log3 = run(3);
  EXPECT_EQ(log1, log3);
  EXPECT_FALSE(log1[0].empty());
  EXPECT_FALSE(log1[5].empty());
}

TEST(ShardEngineTest, GlobalActionsRunAloneBetweenWindows) {
  Topology topo = MakeLine(4, 0.010);
  EventQueue q;
  ShardEngine engine(&topo, 2, &q);

  std::atomic<int> executed{0};
  for (NodeId n = 0; n < 4; ++n) {
    engine.ScheduleAtNode(n, 1.0, [&executed]() { ++executed; });
    engine.ScheduleAtNode(n, 2.0, [&executed]() { ++executed; });
  }
  int at_global = -1;
  double global_now = -1;
  engine.ScheduleGlobal(2.0, [&]() {
    // Everything earlier than t=2 has run; nothing at exactly 2 has.
    at_global = executed.load();
    global_now = engine.now();
    EXPECT_EQ(ShardEngine::current_shard(), -1);
  });
  engine.RunAll();
  EXPECT_EQ(at_global, 4);
  EXPECT_DOUBLE_EQ(global_now, 2.0);
  EXPECT_EQ(executed.load(), 8);
}

TEST(ShardEngineTest, RunUntilAdvancesEveryShardClock) {
  Topology topo = MakeLine(4, 0.010);
  EventQueue q;
  ShardEngine engine(&topo, 2, &q);
  int fired = 0;
  engine.ScheduleAtNode(0, 1.0, [&fired]() { ++fired; });
  engine.ScheduleAtNode(3, 5.0, [&fired]() { ++fired; });
  engine.RunUntil(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
  for (int s = 0; s < engine.num_shards(); ++s) {
    EXPECT_DOUBLE_EQ(engine.queue(s).now(), 3.0);
  }
  engine.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(ShardEngineTest, SingleShardAdoptsExternalQueue) {
  Topology topo = MakeLine(4, 0.010);
  EventQueue q;
  ShardEngine engine(&topo, 1, &q);
  int fired = 0;
  engine.ScheduleAtNode(2, 1.0, [&fired]() { ++fired; });
  EXPECT_EQ(q.pending(), 1u);  // went straight into the adopted queue
  engine.RunAll();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

}  // namespace
}  // namespace dpc
