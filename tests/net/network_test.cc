// Network: hop-by-hop delivery, latency accrual, bandwidth accounting,
// broadcast.
#include "src/net/network.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_.AddNodes(4);
    // 0 -- 1 -- 2 -- 3 with 10 ms / 1 Mbps links.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(topo_.AddLink(i, i + 1, LinkProps{0.010, 1e6}).ok());
    }
    topo_.ComputeRoutes();
    net_ = std::make_unique<Network>(&topo_, &queue_);
  }

  Message MakeMsg(NodeId src, NodeId dst, size_t payload_len) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.payload.assign(payload_len, 0xCD);
    return m;
  }

  Topology topo_;
  EventQueue queue_;
  std::unique_ptr<Network> net_;
};

TEST_F(NetworkTest, DeliversToDestination) {
  std::vector<Message> delivered;
  net_->SetDeliveryHandler([&](const Message& m) { delivered.push_back(m); });
  net_->Send(MakeMsg(0, 3, 100));
  queue_.RunAll();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].dst, 3);
  EXPECT_EQ(delivered[0].payload.size(), 100u);
}

TEST_F(NetworkTest, LatencyAccruesPerHop) {
  double arrival = -1;
  net_->SetDeliveryHandler([&](const Message&) { arrival = queue_.now(); });
  // 128-byte wire size (100 + 28 header): 3 hops of 10ms + 1.024ms tx.
  net_->Send(MakeMsg(0, 3, 100));
  queue_.RunAll();
  double per_hop = 0.010 + (100 + kMessageHeaderBytes) * 8.0 / 1e6;
  EXPECT_NEAR(arrival, 3 * per_hop, 1e-9);
}

TEST_F(NetworkTest, LocalDeliveryIsFastAndFree) {
  int delivered = 0;
  net_->SetDeliveryHandler([&](const Message&) { ++delivered; });
  net_->Send(MakeMsg(2, 2, 50));
  queue_.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_->total_bytes_sent(), 0u);
  EXPECT_LT(queue_.now(), 0.001);
}

TEST_F(NetworkTest, BytesChargedPerTraversedLink) {
  net_->SetDeliveryHandler([](const Message&) {});
  net_->Send(MakeMsg(0, 3, 100));
  queue_.RunAll();
  EXPECT_EQ(net_->total_bytes_sent(), 3 * (100 + kMessageHeaderBytes));
  EXPECT_EQ(net_->total_messages(), 1u);
}

TEST_F(NetworkTest, BucketsSplitByTime) {
  net_->set_bucket_width_s(0.02);
  net_->SetDeliveryHandler([](const Message&) {});
  net_->Send(MakeMsg(0, 2, 0));  // hop at t=0 and t~=0.0102
  queue_.RunAll();
  const auto& buckets = net_->bucket_bytes();
  ASSERT_GE(buckets.size(), 1u);
  EXPECT_EQ(buckets[0], 2u * kMessageHeaderBytes);
}

TEST_F(NetworkTest, BroadcastReachesEveryoneButTheOriginator) {
  // §5.5: the inserting node resets its own cache synchronously; the
  // broadcast must not echo the sig back to it.
  std::vector<NodeId> destinations;
  net_->SetDeliveryHandler(
      [&](const Message& m) { destinations.push_back(m.dst); });
  Message m;
  m.kind = MessageKind::kControl;
  net_->Broadcast(1, std::move(m));
  queue_.RunAll();
  std::sort(destinations.begin(), destinations.end());
  EXPECT_EQ(destinations, (std::vector<NodeId>{0, 2, 3}));
}

TEST_F(NetworkTest, ResetAccountingClearsCounters) {
  net_->SetDeliveryHandler([](const Message&) {});
  net_->Send(MakeMsg(0, 3, 10));
  queue_.RunAll();
  ASSERT_GT(net_->total_bytes_sent(), 0u);
  net_->ResetAccounting();
  EXPECT_EQ(net_->total_bytes_sent(), 0u);
  EXPECT_EQ(net_->total_messages(), 0u);
  EXPECT_TRUE(net_->bucket_bytes().empty());
}

TEST_F(NetworkTest, InFlightOrderPreservedOnSamePath) {
  std::vector<int> order;
  net_->SetDeliveryHandler([&](const Message& m) {
    order.push_back(static_cast<int>(m.payload.size()));
  });
  net_->Send(MakeMsg(0, 3, 1));
  net_->Send(MakeMsg(0, 3, 2));
  net_->Send(MakeMsg(0, 3, 3));
  queue_.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(NetworkTest, DownedLinkDropsTraversals) {
  int delivered = 0;
  net_->SetDeliveryHandler([&](const Message&) { ++delivered; });
  ASSERT_TRUE(net_->SetLinkUp(1, 2, false).ok());
  net_->Send(MakeMsg(0, 3, 10));  // must cross 1--2
  net_->Send(MakeMsg(0, 1, 10));  // unaffected
  queue_.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_->dropped_messages(), 1u);
}

TEST_F(NetworkTest, SetLinkUpRestoresDelivery) {
  int delivered = 0;
  net_->SetDeliveryHandler([&](const Message&) { ++delivered; });
  ASSERT_TRUE(net_->SetLinkUp(1, 2, false).ok());
  ASSERT_TRUE(net_->SetLinkUp(1, 2, true).ok());
  net_->Send(MakeMsg(0, 3, 10));
  queue_.RunAll();
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetworkTest, SetLinkUpRejectsUnknownLink) {
  EXPECT_FALSE(net_->SetLinkUp(0, 3, false).ok());  // no direct 0--3 link
}

TEST_F(NetworkTest, ScheduleLinkUpTogglesAtSimTime) {
  int delivered = 0;
  net_->SetDeliveryHandler([&](const Message&) { ++delivered; });
  ASSERT_TRUE(net_->ScheduleLinkUp(1, 2, false, 0.5).ok());
  ASSERT_TRUE(net_->ScheduleLinkUp(1, 2, true, 2.0).ok());
  // t=0: link still up, goes through. t=1: down, dropped. t=3: up again.
  queue_.ScheduleAt(0.0, [&] { net_->Send(MakeMsg(0, 3, 10)); });
  queue_.ScheduleAt(1.0, [&] { net_->Send(MakeMsg(0, 3, 10)); });
  queue_.ScheduleAt(3.0, [&] { net_->Send(MakeMsg(0, 3, 10)); });
  queue_.RunAll();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net_->dropped_messages(), 1u);
}

TEST_F(NetworkTest, PartitionSplitsGroupsAndHeals) {
  int delivered = 0;
  net_->SetDeliveryHandler([&](const Message&) { ++delivered; });
  ASSERT_TRUE(net_->SetPartition({0, 0, 1, 1}).ok());
  net_->Send(MakeMsg(0, 1, 10));  // same group
  net_->Send(MakeMsg(0, 3, 10));  // crosses the cut at 1--2
  queue_.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_->dropped_messages(), 1u);
  ASSERT_TRUE(net_->SetPartition({}).ok());  // heal
  net_->Send(MakeMsg(0, 3, 10));
  queue_.RunAll();
  EXPECT_EQ(delivered, 2);
}

TEST_F(NetworkTest, PartitionRejectsWrongSize) {
  EXPECT_FALSE(net_->SetPartition({0, 1}).ok());
}

TEST_F(NetworkTest, PerLinkLossOverridesGlobalRate) {
  int delivered = 0;
  net_->SetDeliveryHandler([&](const Message&) { ++delivered; });
  net_->SetLossRate(0.9, /*seed=*/7);
  // Overriding every traversed link to 0 makes the path lossless even
  // though the global rate is near-certain loss.
  ASSERT_TRUE(net_->SetLinkLossRate(0, 1, 0.0).ok());
  ASSERT_TRUE(net_->SetLinkLossRate(1, 2, 0.0).ok());
  ASSERT_TRUE(net_->SetLinkLossRate(2, 3, 0.0).ok());
  for (int i = 0; i < 20; ++i) net_->Send(MakeMsg(0, 3, 10));
  queue_.RunAll();
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(net_->dropped_messages(), 0u);
}

TEST_F(NetworkTest, LossIsDeterministicPerSeed) {
  auto run = [&](uint64_t seed) {
    EventQueue q;
    Network net(&topo_, &q);
    std::vector<uint64_t> delivered;
    net.SetDeliveryHandler(
        [&](const Message& m) { delivered.push_back(m.tx_id); });
    net.SetLossRate(0.5, seed);
    for (int i = 0; i < 50; ++i) {
      Message m;
      m.src = 0;
      m.dst = 3;
      m.tx_id = static_cast<uint64_t>(i) + 1;  // 50 distinct transmissions
      net.Send(std::move(m));
    }
    q.RunAll();
    return delivered;
  };
  EXPECT_EQ(run(42), run(42));  // same seed: the same transmissions survive
  EXPECT_GT(run(42).size(), 0u);
  EXPECT_LT(run(42).size(), 50u);
  EXPECT_NE(run(42), run(43));  // different seed: a different drop set
}

TEST_F(NetworkTest, LossIsAPureFunctionOfTransmissionIdentity) {
  // The drop decision hashes (seed, tx_id, link) — it does not consume a
  // shared RNG stream — so whether a given transmission survives is
  // independent of what other traffic exists or in what order it is sent.
  auto survives = [&](uint64_t tx_id, int decoys) {
    EventQueue q;
    Network net(&topo_, &q);
    int got = 0;
    net.SetDeliveryHandler([&](const Message& m) {
      if (m.tx_id == 0xabcdef) ++got;
    });
    net.SetLossRate(0.5, /*seed=*/42);
    for (int i = 0; i < decoys; ++i) {
      Message d;
      d.src = 0;
      d.dst = 3;
      d.tx_id = 1000 + static_cast<uint64_t>(i);
      net.Send(std::move(d));
    }
    Message m;
    m.src = 0;
    m.dst = 3;
    m.tx_id = tx_id;
    net.Send(std::move(m));
    q.RunAll();
    return got;
  };
  int alone = survives(0xabcdef, 0);
  EXPECT_EQ(alone, survives(0xabcdef, 7));
  EXPECT_EQ(alone, survives(0xabcdef, 31));
}

TEST_F(NetworkTest, SendDerivesTxIdFromContent) {
  // Unassigned tx_id (0) is filled in from the message content, so
  // byte-identical raw sends share one loss fate and distinct payloads
  // draw independently.
  std::vector<uint64_t> seen;
  net_->SetDeliveryHandler(
      [&](const Message& m) { seen.push_back(m.tx_id); });
  net_->Send(MakeMsg(0, 3, 10));
  net_->Send(MakeMsg(0, 3, 10));
  net_->Send(MakeMsg(0, 3, 25));
  queue_.RunAll();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_NE(seen[0], 0u);
  EXPECT_EQ(seen[0], seen[1]);  // same bytes, same identity
  EXPECT_NE(seen[0], seen[2]);  // different payload, different identity
}

TEST(MessageTest, WireSizeIncludesHeader) {
  Message m;
  m.payload.assign(100, 0);
  EXPECT_EQ(m.WireSize(), 100 + kMessageHeaderBytes);
}

}  // namespace
}  // namespace dpc
