// Network: hop-by-hop delivery, latency accrual, bandwidth accounting,
// broadcast.
#include "src/net/network.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_.AddNodes(4);
    // 0 -- 1 -- 2 -- 3 with 10 ms / 1 Mbps links.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(topo_.AddLink(i, i + 1, LinkProps{0.010, 1e6}).ok());
    }
    topo_.ComputeRoutes();
    net_ = std::make_unique<Network>(&topo_, &queue_);
  }

  Message MakeMsg(NodeId src, NodeId dst, size_t payload_len) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.payload.assign(payload_len, 0xCD);
    return m;
  }

  Topology topo_;
  EventQueue queue_;
  std::unique_ptr<Network> net_;
};

TEST_F(NetworkTest, DeliversToDestination) {
  std::vector<Message> delivered;
  net_->SetDeliveryHandler([&](const Message& m) { delivered.push_back(m); });
  net_->Send(MakeMsg(0, 3, 100));
  queue_.RunAll();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].dst, 3);
  EXPECT_EQ(delivered[0].payload.size(), 100u);
}

TEST_F(NetworkTest, LatencyAccruesPerHop) {
  double arrival = -1;
  net_->SetDeliveryHandler([&](const Message&) { arrival = queue_.now(); });
  // 128-byte wire size (100 + 28 header): 3 hops of 10ms + 1.024ms tx.
  net_->Send(MakeMsg(0, 3, 100));
  queue_.RunAll();
  double per_hop = 0.010 + (100 + kMessageHeaderBytes) * 8.0 / 1e6;
  EXPECT_NEAR(arrival, 3 * per_hop, 1e-9);
}

TEST_F(NetworkTest, LocalDeliveryIsFastAndFree) {
  int delivered = 0;
  net_->SetDeliveryHandler([&](const Message&) { ++delivered; });
  net_->Send(MakeMsg(2, 2, 50));
  queue_.RunAll();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net_->total_bytes_sent(), 0u);
  EXPECT_LT(queue_.now(), 0.001);
}

TEST_F(NetworkTest, BytesChargedPerTraversedLink) {
  net_->SetDeliveryHandler([](const Message&) {});
  net_->Send(MakeMsg(0, 3, 100));
  queue_.RunAll();
  EXPECT_EQ(net_->total_bytes_sent(), 3 * (100 + kMessageHeaderBytes));
  EXPECT_EQ(net_->total_messages(), 1u);
}

TEST_F(NetworkTest, BucketsSplitByTime) {
  net_->set_bucket_width_s(0.02);
  net_->SetDeliveryHandler([](const Message&) {});
  net_->Send(MakeMsg(0, 2, 0));  // hop at t=0 and t~=0.0102
  queue_.RunAll();
  const auto& buckets = net_->bucket_bytes();
  ASSERT_GE(buckets.size(), 1u);
  EXPECT_EQ(buckets[0], 2u * kMessageHeaderBytes);
}

TEST_F(NetworkTest, BroadcastReachesEveryone) {
  std::vector<NodeId> destinations;
  net_->SetDeliveryHandler(
      [&](const Message& m) { destinations.push_back(m.dst); });
  Message m;
  m.kind = MessageKind::kControl;
  net_->Broadcast(1, std::move(m));
  queue_.RunAll();
  std::sort(destinations.begin(), destinations.end());
  EXPECT_EQ(destinations, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST_F(NetworkTest, ResetAccountingClearsCounters) {
  net_->SetDeliveryHandler([](const Message&) {});
  net_->Send(MakeMsg(0, 3, 10));
  queue_.RunAll();
  ASSERT_GT(net_->total_bytes_sent(), 0u);
  net_->ResetAccounting();
  EXPECT_EQ(net_->total_bytes_sent(), 0u);
  EXPECT_EQ(net_->total_messages(), 0u);
  EXPECT_TRUE(net_->bucket_bytes().empty());
}

TEST_F(NetworkTest, InFlightOrderPreservedOnSamePath) {
  std::vector<int> order;
  net_->SetDeliveryHandler([&](const Message& m) {
    order.push_back(static_cast<int>(m.payload.size()));
  });
  net_->Send(MakeMsg(0, 3, 1));
  net_->Send(MakeMsg(0, 3, 2));
  net_->Send(MakeMsg(0, 3, 3));
  queue_.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(MessageTest, WireSizeIncludesHeader) {
  Message m;
  m.payload.assign(100, 0);
  EXPECT_EQ(m.WireSize(), 100 + kMessageHeaderBytes);
}

}  // namespace
}  // namespace dpc
