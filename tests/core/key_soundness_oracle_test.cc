// Randomized differential oracle for the equivalence-key soundness pass.
// For each seed, a random DELP is generated; the explanation pass
// (ExplainEquivalenceKeys, shortest-path search) must derive exactly the
// key set of GetEquiKeys (ComputeEquivalenceKeys, reachable-set
// intersection), and executing the program must uphold Theorem 1: events
// agreeing on the derived keys yield ~-equivalent provenance trees.
#include <gtest/gtest.h>

#include <map>

#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

// Same generator family as random_delp_test: a chain e0 -> ... -> ek where
// rule i joins s{i}(@L, A, N, C) on A and rewrites the payload via one of
// {A, C, A+B, B}, optionally ending in a constraint on A.
std::string GenerateDelp(Rng& rng, int* num_rules_out) {
  int num_rules = 1 + static_cast<int>(rng.NextBelow(4));
  bool has_constraint = rng.NextBelow(2) == 0;
  std::string src;
  for (int i = 1; i <= num_rules; ++i) {
    bool relocate = rng.NextBelow(2) == 0;
    int mode = static_cast<int>(rng.NextBelow(4));
    std::string head_loc = relocate ? "N" : "L";
    std::string a_prime;
    switch (mode) {
      case 0: a_prime = "A"; break;
      case 1: a_prime = "C"; break;
      case 2: a_prime = "A + B"; break;
      default: a_prime = "B"; break;
    }
    std::string b_prime = (rng.NextBelow(2) == 0) ? "B" : "A";
    std::string rule = "r" + std::to_string(i) + " e" + std::to_string(i) +
                       "(@" + head_loc + ", AP, " + b_prime + ") :- e" +
                       std::to_string(i - 1) + "(@L, A, B), s" +
                       std::to_string(i) + "(@L, A, N, C), AP := " + a_prime +
                       ".";
    if (has_constraint && i == num_rules) {
      rule.insert(rule.size() - 1, ", A >= 0");
    }
    src += rule + "\n";
  }
  *num_rules_out = num_rules;
  return src;
}

class KeySoundnessOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeySoundnessOracleTest, ExplanationsMatchGetEquiKeysAndTheorem1) {
  Rng rng(GetParam() * 2654435761ULL + 99);
  int num_rules = 0;
  std::string source = GenerateDelp(rng, &num_rules);

  auto program_or = Program::Parse(source);
  ASSERT_TRUE(program_or.ok())
      << program_or.status().ToString() << "\n" << source;
  Program& program = *program_or;

  auto keys_or = ComputeEquivalenceKeys(program);
  ASSERT_TRUE(keys_or.ok());
  const EquivalenceKeys& keys = *keys_or;

  // Differential check #1: the independently-derived per-attribute
  // explanations must reproduce exactly the GetEquiKeys index set, and
  // every key must carry a witness (or be the location specifier).
  auto expl_or = ExplainEquivalenceKeys(program);
  ASSERT_TRUE(expl_or.ok()) << expl_or.status().ToString() << "\n" << source;
  ASSERT_EQ(expl_or->size(), 3u);  // e0(@L, A, B)
  std::vector<size_t> derived;
  for (const KeyExplanation& ex : *expl_or) {
    if (ex.is_key) derived.push_back(ex.attr.index);
    if (ex.reason == KeyReason::kReachesSlowChanging ||
        ex.reason == KeyReason::kReachesConstraint) {
      ASSERT_FALSE(ex.chain.empty()) << ex.ToString() << "\n" << source;
      EXPECT_EQ(ex.chain.front(), ex.attr) << ex.ToString();
    } else {
      EXPECT_TRUE(ex.chain.empty()) << ex.ToString();
    }
  }
  EXPECT_EQ(derived, keys.indices()) << source;

  // Differential check #2: execute the program and verify Theorem 1 for
  // the derived keys — the dynamic ground truth the static pass predicts.
  const int n = 3;
  Topology topo;
  topo.AddNodes(n);
  for (int x = 0; x < n; ++x) {
    Status st = topo.AddLink(x, (x + 1) % n, LinkProps{0.001, 1e9});
    ASSERT_TRUE(st.ok() || st.IsAlreadyExists());
  }
  topo.ComputeRoutes();

  auto bed_or = Testbed::Create(program, &topo, Scheme::kReference);
  ASSERT_TRUE(bed_or.ok());
  auto bed = std::move(bed_or).value();

  // Slow coverage a in 0..31 dominates any value the A+B / C rewrites can
  // produce from A<=1, B<=2 over at most 4 rules.
  for (int i = 1; i <= num_rules; ++i) {
    for (int x = 0; x < n; ++x) {
      for (int a = 0; a < 32; ++a) {
        ASSERT_TRUE(bed->system()
                        .InsertSlowTuple(Tuple::Make(
                            "s" + std::to_string(i), x,
                            {Value::Int(a), Value::Int((x + 1) % n),
                             Value::Int((x + a) % 3)}))
                        .ok());
      }
    }
  }

  double t = 0;
  for (int round = 0; round < 2; ++round) {
    for (int x = 0; x < n; ++x) {
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 3; ++b) {
          ASSERT_TRUE(bed->system()
                          .ScheduleInject(
                              Tuple::Make("e0", x,
                                          {Value::Int(a), Value::Int(b)}),
                              t += 0.001)
                          .ok());
        }
      }
    }
  }
  bed->system().Run();

  auto trees = bed->reference()->AllTrees();
  ASSERT_GT(trees.size(), 0u) << source;

  std::map<std::string, std::vector<const ProvTree*>> classes;
  for (const ProvTree* tree : trees) {
    auto digest = keys.CheckedHashOf(tree->event());
    ASSERT_TRUE(digest.ok()) << digest.status().ToString();
    classes[digest->ToHex()].push_back(tree);
  }
  size_t multi_member_classes = 0;
  for (const auto& [_, members] : classes) {
    if (members.size() > 1) ++multi_member_classes;
    for (size_t i = 1; i < members.size(); ++i) {
      ASSERT_TRUE(members[0]->EquivalentTo(*members[i]))
          << source << "\n"
          << members[0]->ToString() << "\nvs\n"
          << members[i]->ToString();
    }
  }
  EXPECT_GT(multi_member_classes, 0u) << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeySoundnessOracleTest,
                         ::testing::Range<uint64_t>(1, 101));

}  // namespace
}  // namespace dpc
