// Provenance storage tables: deduplication, indexing, incremental
// serialized-size accounting, schema-dependent row widths.
#include "src/core/prov_tables.h"

#include <gtest/gtest.h>

#include "src/core/recorder.h"

namespace dpc {
namespace {

Vid V(int i) { return Sha1::Hash("vid" + std::to_string(i)); }
Rid R(int i) { return Sha1::Hash("rid" + std::to_string(i)); }

TEST(NodeRidTest, NullAndEquality) {
  NodeRid null = NodeRid::Null();
  EXPECT_TRUE(null.IsNull());
  NodeRid a{1, R(1)};
  EXPECT_FALSE(a.IsNull());
  EXPECT_EQ(a, (NodeRid{1, R(1)}));
  EXPECT_NE(a, (NodeRid{2, R(1)}));
  EXPECT_NE(a, (NodeRid{1, R(2)}));
}

TEST(NodeRidTest, RoundTrip) {
  NodeRid a{7, R(3)};
  ByteWriter w;
  a.Serialize(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(NodeRid::Deserialize(r).value(), a);
}

TEST(ProvEntryTest, EvidChangesWidth) {
  ProvEntry e{1, V(1), NodeRid{2, R(1)}, V(9)};
  EXPECT_EQ(e.SerializedSize(true), e.SerializedSize(false) + 20);
}

TEST(RuleExecEntryTest, NextColumnsChangeWidth) {
  RuleExecEntry e{1, R(1), "r1", {V(1), V(2)}, NodeRid{2, R(2)}};
  EXPECT_EQ(e.SerializedSize(true), e.SerializedSize(false) + 24);
}

TEST(ProvTableTest, InsertAndFind) {
  ProvTable t(/*with_evid=*/false);
  EXPECT_TRUE(t.Insert(ProvEntry{1, V(1), NodeRid{2, R(1)}, Vid{}}));
  EXPECT_FALSE(t.Insert(ProvEntry{1, V(1), NodeRid{2, R(1)}, Vid{}}));
  EXPECT_TRUE(t.Insert(ProvEntry{1, V(1), NodeRid{3, R(2)}, Vid{}}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.FindByVid(V(1)).size(), 2u);
  EXPECT_TRUE(t.FindByVid(V(9)).empty());
}

TEST(ProvTableTest, EvidDistinguishesRows) {
  ProvTable t(/*with_evid=*/true);
  EXPECT_TRUE(t.Insert(ProvEntry{1, V(1), NodeRid{2, R(1)}, V(5)}));
  EXPECT_TRUE(t.Insert(ProvEntry{1, V(1), NodeRid{2, R(1)}, V(6)}));
  EXPECT_EQ(t.size(), 2u);
}

TEST(ProvTableTest, BytesAccumulateIncrementally) {
  ProvTable t(/*with_evid=*/true);
  EXPECT_EQ(t.SerializedBytes(), 0u);
  ProvEntry e{1, V(1), NodeRid{2, R(1)}, V(5)};
  t.Insert(e);
  EXPECT_EQ(t.SerializedBytes(), e.SerializedSize(true));
  t.Insert(e);  // duplicate: no growth
  EXPECT_EQ(t.SerializedBytes(), e.SerializedSize(true));
}

TEST(RuleExecTableTest, MultipleRowsPerRid) {
  RuleExecTable t(/*with_next=*/true);
  EXPECT_TRUE(t.Insert(RuleExecEntry{1, R(1), "r1", {V(1)}, NodeRid{2, R(2)}}));
  EXPECT_TRUE(t.Insert(RuleExecEntry{1, R(1), "r1", {V(1)}, NodeRid{3, R(3)}}));
  EXPECT_FALSE(
      t.Insert(RuleExecEntry{1, R(1), "r1", {V(1)}, NodeRid{3, R(3)}}));
  EXPECT_EQ(t.FindByRid(R(1)).size(), 2u);
  EXPECT_TRUE(t.FindByRid(R(5)).empty());
}

TEST(RuleExecTableTest, BytesUseSchemaWidth) {
  RuleExecTable narrow(/*with_next=*/false);
  RuleExecTable wide(/*with_next=*/true);
  RuleExecEntry e{1, R(1), "r1", {V(1)}, NodeRid::Null()};
  narrow.Insert(e);
  wide.Insert(e);
  EXPECT_EQ(wide.SerializedBytes(), narrow.SerializedBytes() + 24);
}

TEST(RuleExecNodeTableTest, UniquePerRid) {
  RuleExecNodeTable t;
  EXPECT_TRUE(t.Insert(RuleExecNodeEntry{1, R(1), "r1", {V(1)}}));
  EXPECT_FALSE(t.Insert(RuleExecNodeEntry{1, R(1), "r1", {V(1)}}));
  ASSERT_NE(t.FindByRid(R(1)), nullptr);
  EXPECT_EQ(t.FindByRid(R(1))->rule_id, "r1");
  EXPECT_EQ(t.FindByRid(R(2)), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RuleExecLinkTableTest, DedupByFullContent) {
  RuleExecLinkTable t;
  EXPECT_TRUE(t.Insert(RuleExecLinkEntry{1, R(1), NodeRid{2, R(2)}}));
  EXPECT_TRUE(t.Insert(RuleExecLinkEntry{1, R(1), NodeRid{3, R(3)}}));
  EXPECT_FALSE(t.Insert(RuleExecLinkEntry{1, R(1), NodeRid{3, R(3)}}));
  EXPECT_EQ(t.FindByRid(R(1)).size(), 2u);
  EXPECT_GT(t.SerializedBytes(), 0u);
}

TEST(TupleStoreTest, PutFindAndBytes) {
  TupleStore store;
  Tuple t = Tuple::Make("route", 1, {Value::Int(3), Value::Int(2)});
  EXPECT_TRUE(store.Put(t));
  EXPECT_FALSE(store.Put(t));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.Find(t.Vid()), nullptr);
  EXPECT_EQ(*store.Find(t.Vid()), t);
  EXPECT_EQ(store.Find(Sha1::Hash("other")), nullptr);
  EXPECT_EQ(store.SerializedBytes(), 20 + t.SerializedSize());
}

TEST(StorageBreakdownTest, TotalsAndAccumulation) {
  StorageBreakdown a{1, 2, 3, 4};
  EXPECT_EQ(a.Total(), 10u);
  StorageBreakdown b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.prov, 11u);
  EXPECT_EQ(a.Total(), 110u);
}

}  // namespace
}  // namespace dpc
