// Provenance trees: the ~ equivalence relation (Appendix A), equality,
// serialization, rendering.
#include "src/core/tree.h"

#include <gtest/gtest.h>

#include "src/apps/forwarding.h"

namespace dpc {
namespace {

ProvTree SampleTree(const std::string& payload, NodeId via = 1) {
  ProvTree tree;
  tree.set_event(apps::MakePacket(0, 0, 2, payload));
  tree.AppendStep(ProvStep{"r1", apps::MakePacket(via, 0, 2, payload),
                           {apps::MakeRoute(0, 2, via)}});
  tree.AppendStep(ProvStep{"r1", apps::MakePacket(2, 0, 2, payload),
                           {apps::MakeRoute(via, 2, 2)}});
  tree.AppendStep(
      ProvStep{"r2", apps::MakeRecv(2, 0, 2, payload), {}});
  return tree;
}

TEST(ProvTreeTest, OutputIsLastHead) {
  ProvTree tree = SampleTree("data");
  EXPECT_EQ(tree.Output(), apps::MakeRecv(2, 0, 2, "data"));
  EXPECT_EQ(tree.depth(), 3u);
  EXPECT_FALSE(tree.empty());
}

TEST(ProvTreeTest, EqualityIsFull) {
  EXPECT_EQ(SampleTree("data"), SampleTree("data"));
  EXPECT_NE(SampleTree("data"), SampleTree("url"));
}

TEST(ProvTreeTest, EquivalenceIgnoresEventAndHeads) {
  // Same rules, same slow tuples, different payload => equivalent (§5.1).
  EXPECT_TRUE(SampleTree("data").EquivalentTo(SampleTree("url")));
  EXPECT_TRUE(SampleTree("url").EquivalentTo(SampleTree("data")));
}

TEST(ProvTreeTest, EquivalenceRequiresSameSlowTuples) {
  // Different route => different class.
  EXPECT_FALSE(SampleTree("data", 1).EquivalentTo(SampleTree("data", 3)));
}

TEST(ProvTreeTest, EquivalenceRequiresSameRuleSequence) {
  ProvTree a = SampleTree("data");
  ProvTree b = SampleTree("data");
  // Truncate one step.
  ProvTree shorter(b.event(),
                   {b.steps()[0], b.steps()[1]});
  EXPECT_FALSE(a.EquivalentTo(shorter));
}

TEST(ProvTreeTest, EquivalenceDiffersOnRuleId) {
  ProvTree a = SampleTree("data");
  ProvTree b(a.event(), {ProvStep{"rX", a.steps()[0].head,
                                  a.steps()[0].slow_tuples},
                         a.steps()[1], a.steps()[2]});
  EXPECT_FALSE(a.EquivalentTo(b));
}

TEST(ProvTreeTest, SerializationRoundTrip) {
  ProvTree tree = SampleTree("data");
  ByteWriter w;
  tree.Serialize(w);
  EXPECT_EQ(w.size(), tree.SerializedSize());
  ByteReader r(w.bytes());
  auto back = ProvTree::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, tree);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ProvTreeTest, EmptyTreeRoundTrip) {
  ProvTree tree;
  tree.set_event(apps::MakePacket(0, 0, 2, "x"));
  ByteWriter w;
  tree.Serialize(w);
  ByteReader r(w.bytes());
  EXPECT_EQ(ProvTree::Deserialize(r).value(), tree);
}

TEST(ProvTreeTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage{1, 2, 3};
  ByteReader r(garbage);
  EXPECT_FALSE(ProvTree::Deserialize(r).ok());
}

TEST(ProvTreeTest, ToStringShowsChain) {
  std::string s = SampleTree("data").ToString();
  // Root first, event last; rule nodes annotated with firing location.
  EXPECT_NE(s.find("recv(@2, 0, 2, \"data\")"), std::string::npos);
  EXPECT_NE(s.find("(r2@n2)"), std::string::npos);
  EXPECT_NE(s.find("(r1@n0)"), std::string::npos);
  EXPECT_NE(s.find("route(@0, 2, 1)"), std::string::npos);
  EXPECT_LT(s.find("recv"), s.find("packet(@0"));
}

TEST(ProvTreeTest, ToDotRendersPaperShapes) {
  std::string dot = SampleTree("data").ToDot("fig3");
  EXPECT_NE(dot.find("digraph fig3 {"), std::string::npos);
  // Tuple nodes are boxes, rule nodes are ellipses, as in Fig. 3.
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("r2@n2"), std::string::npos);
  // Quotes in payloads are escaped.
  EXPECT_NE(dot.find("\\\"data\\\""), std::string::npos);
  // One edge into each rule node per body tuple + one out to the head:
  // r1 steps have 2 in + 1 out, r2 has 1 in + 1 out => 8 edges.
  size_t edges = 0;
  for (size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 8u);
}

TEST(ProvTreeTest, SerializedSizeGrowsWithPayload) {
  EXPECT_GT(SampleTree(std::string(500, 'x')).SerializedSize(),
            SampleTree("x").SerializedSize() + 4 * 490);
}

}  // namespace
}  // namespace dpc
