// The paper's worked example: the three-node deployment of Fig. 2 running
// the packet-forwarding program of Fig. 1. Validates the provenance tree of
// Fig. 3, the optimized tables of §4 (Table 2), the compressed tables of
// §5.3 (Table 3), the §5.4 split (Table 4), and querying over each.
#include <gtest/gtest.h>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

// Fig. 2: n1 -- n2 -- n3 in a line; routes at n1 and n2 lead to n3.
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    n1_ = topo_.AddNode();
    n2_ = topo_.AddNode();
    n3_ = topo_.AddNode();
    ASSERT_TRUE(topo_.AddLink(n1_, n2_, LinkProps{0.002, 50e6}).ok());
    ASSERT_TRUE(topo_.AddLink(n2_, n3_, LinkProps{0.002, 50e6}).ok());
    topo_.ComputeRoutes();
  }

  std::unique_ptr<Testbed> MakeBed(Scheme scheme) {
    auto program = apps::MakeForwardingProgram();
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    auto bed = Testbed::Create(std::move(program).value(), &topo_, scheme);
    EXPECT_TRUE(bed.ok()) << bed.status().ToString();
    return std::move(bed).value();
  }

  // Installs Fig. 2's routes and sends packet(@n1, n1, n3, payload).
  void RunPackets(Testbed& bed, const std::vector<std::string>& payloads,
                  NodeId src_node = -1) {
    NodeId src = src_node < 0 ? n1_ : src_node;
    ASSERT_TRUE(
        bed.system().InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
    ASSERT_TRUE(
        bed.system().InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
    double t = 0;
    for (const auto& p : payloads) {
      ASSERT_TRUE(bed.system()
                      .ScheduleInject(apps::MakePacket(src, src, n3_, p),
                                      t += 0.01)
                      .ok());
    }
    bed.system().Run();
  }

  Topology topo_;
  NodeId n1_, n2_, n3_;
};

TEST_F(PaperExampleTest, ReferenceTreeMatchesFig3) {
  auto bed = MakeBed(Scheme::kReference);
  RunPackets(*bed, {"data"});

  // recv(@n3, n1, n3, "data") materialized at n3.
  const auto& outputs = bed->system().OutputsAt(n3_);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0].tuple, apps::MakeRecv(n3_, n1_, n3_, "data"));

  // The provenance tree of Fig. 3: r1@n1, r1@n2, r2@n3.
  auto trees = bed->reference()->FindTrees(outputs[0].tuple);
  ASSERT_EQ(trees.size(), 1u);
  const ProvTree& tree = *trees[0];
  EXPECT_EQ(tree.event(), apps::MakePacket(n1_, n1_, n3_, "data"));
  ASSERT_EQ(tree.depth(), 3u);
  EXPECT_EQ(tree.steps()[0].rule_id, "r1");
  EXPECT_EQ(tree.steps()[0].head, apps::MakePacket(n2_, n1_, n3_, "data"));
  ASSERT_EQ(tree.steps()[0].slow_tuples.size(), 1u);
  EXPECT_EQ(tree.steps()[0].slow_tuples[0], apps::MakeRoute(n1_, n3_, n2_));
  EXPECT_EQ(tree.steps()[1].rule_id, "r1");
  EXPECT_EQ(tree.steps()[1].head, apps::MakePacket(n3_, n1_, n3_, "data"));
  EXPECT_EQ(tree.steps()[1].slow_tuples[0], apps::MakeRoute(n2_, n3_, n3_));
  EXPECT_EQ(tree.steps()[2].rule_id, "r2");
  EXPECT_EQ(tree.steps()[2].head, outputs[0].tuple);
  EXPECT_TRUE(tree.steps()[2].slow_tuples.empty());
}

TEST_F(PaperExampleTest, ExspanTablesMatchTable1) {
  auto bed = MakeBed(Scheme::kExspan);
  RunPackets(*bed, {"data"});

  // Table 1's prov rows: six entries across the three nodes.
  // n1: route(@n1,n3,n2) and packet(@n1,n1,n3,"data"), both NULL-derived.
  const ProvTable& prov1 = bed->exspan()->ProvAt(n1_);
  EXPECT_EQ(prov1.size(), 2u);
  for (const ProvEntry& row : prov1.rows()) {
    EXPECT_TRUE(row.rule.IsNull());
  }
  // n2: route(@n2,n3,n3) NULL-derived and packet(@n2,...) derived by r1@n1.
  const ProvTable& prov2 = bed->exspan()->ProvAt(n2_);
  EXPECT_EQ(prov2.size(), 2u);
  Tuple pkt2 = apps::MakePacket(n2_, n1_, n3_, "data");
  auto rows2 = prov2.FindByVid(pkt2.Vid());
  ASSERT_EQ(rows2.size(), 1u);
  EXPECT_EQ(rows2[0]->rule.loc, n1_);
  // n3: packet(@n3,...) derived by r1@n2 and recv(...) derived by r2@n3.
  const ProvTable& prov3 = bed->exspan()->ProvAt(n3_);
  EXPECT_EQ(prov3.size(), 2u);
  Tuple recv = apps::MakeRecv(n3_, n1_, n3_, "data");
  auto recv_rows = prov3.FindByVid(recv.Vid());
  ASSERT_EQ(recv_rows.size(), 1u);
  EXPECT_EQ(recv_rows[0]->rule.loc, n3_);

  // Table 1's ruleExec rows: r1@n1 (2 vids), r1@n2 (2 vids), r2@n3 (1 vid).
  EXPECT_EQ(bed->exspan()->RuleExecAt(n1_).size(), 1u);
  EXPECT_EQ(bed->exspan()->RuleExecAt(n2_).size(), 1u);
  EXPECT_EQ(bed->exspan()->RuleExecAt(n3_).size(), 1u);
  const RuleExecEntry& r1n1 = bed->exspan()->RuleExecAt(n1_).rows()[0];
  EXPECT_EQ(r1n1.rule_id, "r1");
  EXPECT_EQ(r1n1.vids.size(), 2u);  // event packet + route
  const RuleExecEntry& r2n3 = bed->exspan()->RuleExecAt(n3_).rows()[0];
  EXPECT_EQ(r2n3.rule_id, "r2");
  EXPECT_EQ(r2n3.vids.size(), 1u);  // event packet only (D == L condition)
}

TEST_F(PaperExampleTest, BasicTablesMatchTable2) {
  auto bed = MakeBed(Scheme::kBasic);
  RunPackets(*bed, {"data"});

  // prov: only the recv output row, at n3.
  EXPECT_EQ(bed->basic()->ProvAt(n1_).size(), 0u);
  EXPECT_EQ(bed->basic()->ProvAt(n2_).size(), 0u);
  const ProvTable& prov3 = bed->basic()->ProvAt(n3_);
  ASSERT_EQ(prov3.size(), 1u);
  Tuple recv = apps::MakeRecv(n3_, n1_, n3_, "data");
  EXPECT_EQ(prov3.rows()[0].vid, recv.Vid());
  EXPECT_EQ(prov3.rows()[0].rule.loc, n3_);

  // ruleExec rows chain n3 -> n2 -> n1 through (NLoc, NRID).
  ASSERT_EQ(bed->basic()->RuleExecAt(n3_).size(), 1u);
  const RuleExecEntry& top = bed->basic()->RuleExecAt(n3_).rows()[0];
  EXPECT_EQ(top.rule_id, "r2");
  EXPECT_TRUE(top.vids.empty());  // Table 2: rid3 VIDS is NULL
  EXPECT_EQ(top.next.loc, n2_);

  ASSERT_EQ(bed->basic()->RuleExecAt(n2_).size(), 1u);
  const RuleExecEntry& mid = bed->basic()->RuleExecAt(n2_).rows()[0];
  EXPECT_EQ(mid.rule_id, "r1");
  ASSERT_EQ(mid.vids.size(), 1u);  // the route tuple at n2
  EXPECT_EQ(mid.vids[0], apps::MakeRoute(n2_, n3_, n3_).Vid());
  EXPECT_EQ(mid.next.loc, n1_);
  EXPECT_EQ(mid.next.rid, bed->basic()->RuleExecAt(n1_).rows()[0].rid);

  ASSERT_EQ(bed->basic()->RuleExecAt(n1_).size(), 1u);
  const RuleExecEntry& leaf = bed->basic()->RuleExecAt(n1_).rows()[0];
  EXPECT_EQ(leaf.rule_id, "r1");
  ASSERT_EQ(leaf.vids.size(), 2u);  // Table 2: (vid1, vid2) = event + route
  EXPECT_EQ(leaf.vids[0], apps::MakePacket(n1_, n1_, n3_, "data").Vid());
  EXPECT_EQ(leaf.vids[1], apps::MakeRoute(n1_, n3_, n2_).Vid());
  EXPECT_TRUE(leaf.next.IsNull());
}

TEST_F(PaperExampleTest, AdvancedTablesMatchTable3) {
  auto bed = MakeBed(Scheme::kAdvanced);
  // The §5.3 walk-through: "data" first, then "url" in the same class.
  RunPackets(*bed, {"data", "url"});

  // The shared tree: exactly one ruleExec row per node despite two packets.
  EXPECT_EQ(bed->advanced()->RuleExecAt(n1_).size(), 1u);
  EXPECT_EQ(bed->advanced()->RuleExecAt(n2_).size(), 1u);
  EXPECT_EQ(bed->advanced()->RuleExecAt(n3_).size(), 1u);

  // Table 3: rid1 at n3 has NULL vids; rid2/rid3 reference the routes only.
  const RuleExecEntry& top = bed->advanced()->RuleExecAt(n3_).rows()[0];
  EXPECT_EQ(top.rule_id, "r2");
  EXPECT_TRUE(top.vids.empty());
  EXPECT_EQ(top.next.loc, n2_);
  const RuleExecEntry& mid = bed->advanced()->RuleExecAt(n2_).rows()[0];
  ASSERT_EQ(mid.vids.size(), 1u);
  EXPECT_EQ(mid.vids[0], apps::MakeRoute(n2_, n3_, n3_).Vid());
  const RuleExecEntry& leaf = bed->advanced()->RuleExecAt(n1_).rows()[0];
  ASSERT_EQ(leaf.vids.size(), 1u);  // slow tuple only; the event is the delta
  EXPECT_EQ(leaf.vids[0], apps::MakeRoute(n1_, n3_, n2_).Vid());
  EXPECT_TRUE(leaf.next.IsNull());

  // Table 3's prov rows: tid1/tid2 both reference the same shared tree and
  // carry their own EVIDs.
  const ProvTable& prov3 = bed->advanced()->ProvAt(n3_);
  ASSERT_EQ(prov3.size(), 2u);
  Tuple recv_data = apps::MakeRecv(n3_, n1_, n3_, "data");
  Tuple recv_url = apps::MakeRecv(n3_, n1_, n3_, "url");
  auto data_rows = prov3.FindByVid(recv_data.Vid());
  auto url_rows = prov3.FindByVid(recv_url.Vid());
  ASSERT_EQ(data_rows.size(), 1u);
  ASSERT_EQ(url_rows.size(), 1u);
  EXPECT_EQ(data_rows[0]->rule, url_rows[0]->rule);  // shared (RLoc, RID)
  EXPECT_EQ(data_rows[0]->evid,
            apps::MakePacket(n1_, n1_, n3_, "data").Vid());
  EXPECT_EQ(url_rows[0]->evid, apps::MakePacket(n1_, n1_, n3_, "url").Vid());
  EXPECT_EQ(bed->advanced()->PendingOutputs(), 0u);
}

TEST_F(PaperExampleTest, InterClassSharingMatchesTable4) {
  auto bed = MakeBed(Scheme::kAdvancedInterClass);
  RunPackets(*bed, {"data", "url"});
  // A third packet from n2 shares the rid1/rid2 suffix (§5.4's example).
  ASSERT_TRUE(bed->system()
                  .ScheduleInject(apps::MakePacket(n2_, n2_, n3_, "ack"), 1.0)
                  .ok());
  bed->system().Run();

  // ruleExecNode: one concrete node per (rloc, rid) even across classes.
  EXPECT_EQ(bed->advanced()->RuleExecNodesAt(n3_).size(), 1u);
  EXPECT_EQ(bed->advanced()->RuleExecNodesAt(n2_).size(), 1u);
  EXPECT_EQ(bed->advanced()->RuleExecNodesAt(n1_).size(), 1u);

  // ruleExecLink at n2: the (n1, rid3) edge from the n1-class and the
  // NULL edge from the n2-class.
  EXPECT_EQ(bed->advanced()->RuleExecLinksAt(n2_).size(), 2u);
  // At n3 both classes share the same (n2, rid2) edge.
  EXPECT_EQ(bed->advanced()->RuleExecLinksAt(n3_).size(), 1u);

  // Both classes' outputs remain queryable with correct trees.
  auto querier = bed->MakeQuerier();
  Tuple recv_ack = apps::MakeRecv(n3_, n2_, n3_, "ack");
  Vid evid = apps::MakePacket(n2_, n2_, n3_, "ack").Vid();
  auto res = querier->Query(recv_ack, &evid);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->trees.size(), 1u);
  EXPECT_EQ(res->trees[0].event(), apps::MakePacket(n2_, n2_, n3_, "ack"));
  EXPECT_EQ(res->trees[0].depth(), 2u);  // r1@n2, r2@n3
}

// Every queryable scheme reconstructs exactly the reference trees.
class PaperExampleQueryTest
    : public PaperExampleTest,
      public ::testing::WithParamInterface<Scheme> {};

TEST_P(PaperExampleQueryTest, QueryReturnsReferenceTree) {
  auto ref_bed = MakeBed(Scheme::kReference);
  RunPackets(*ref_bed, {"data", "url", "xyz"});

  auto bed = MakeBed(GetParam());
  RunPackets(*bed, {"data", "url", "xyz"});

  auto querier = bed->MakeQuerier();
  ASSERT_NE(querier, nullptr);
  for (const std::string payload : {"data", "url", "xyz"}) {
    Tuple recv = apps::MakeRecv(n3_, n1_, n3_, payload);
    Vid evid = apps::MakePacket(n1_, n1_, n3_, payload).Vid();
    auto res = querier->Query(recv, &evid);
    ASSERT_TRUE(res.ok()) << SchemeName(GetParam()) << ": "
                          << res.status().ToString();
    ASSERT_EQ(res->trees.size(), 1u);

    auto expected = ref_bed->reference()->FindTrees(recv, &evid);
    ASSERT_EQ(expected.size(), 1u);
    EXPECT_EQ(res->trees[0], *expected[0])
        << SchemeName(GetParam()) << " tree:\n"
        << res->trees[0].ToString() << "\nexpected:\n"
        << expected[0]->ToString();
    EXPECT_GT(res->latency_s, 0);
    EXPECT_GT(res->entries_touched, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PaperExampleQueryTest,
                         ::testing::Values(Scheme::kExspan, Scheme::kBasic,
                                           Scheme::kAdvanced,
                                           Scheme::kAdvancedInterClass),
                         [](const auto& info) {
                           return std::string(apps::SchemeName(info.param)) ==
                                          "Advanced+InterClass"
                                      ? "AdvancedInterClass"
                                      : apps::SchemeName(info.param);
                         });

}  // namespace
}  // namespace dpc
