// §5.5: updates to slow-changing tables. Reproduces the Fig. 7 scenario —
// the route at n1 is switched from n2 to a new node n4 mid-stream — and
// checks that (a) the insertion broadcasts a sig that resets every node's
// equivalence cache, (b) provenance for the new path is maintained even
// though the equivalence keys were already known, and (c) pre-update and
// post-update outputs both reconstruct their true trees.
#include <gtest/gtest.h>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class SlowUpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    n1_ = topo_.AddNode();
    n2_ = topo_.AddNode();
    n3_ = topo_.AddNode();
    n4_ = topo_.AddNode();
    LinkProps lp{0.002, 50e6};
    ASSERT_TRUE(topo_.AddLink(n1_, n2_, lp).ok());
    ASSERT_TRUE(topo_.AddLink(n2_, n3_, lp).ok());
    ASSERT_TRUE(topo_.AddLink(n1_, n4_, lp).ok());
    ASSERT_TRUE(topo_.AddLink(n4_, n3_, lp).ok());
    topo_.ComputeRoutes();
  }

  std::unique_ptr<Testbed> MakeBed(Scheme scheme) {
    auto program = apps::MakeForwardingProgram();
    EXPECT_TRUE(program.ok());
    auto bed = Testbed::Create(std::move(program).value(), &topo_, scheme);
    EXPECT_TRUE(bed.ok());
    return std::move(bed).value();
  }

  Topology topo_;
  NodeId n1_, n2_, n3_, n4_;
};

TEST_F(SlowUpdateTest, Fig7RouteChangeKeepsProvenanceCorrect) {
  auto bed = MakeBed(Scheme::kAdvanced);
  System& sys = bed->system();

  // Initial Fig. 2 state: n1 -> n2 -> n3.
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
  sys.Run();  // drain the §5.5 broadcasts caused by setup

  // Two packets traverse the old path; the second is existFlag=true.
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "old-1"), 1.0).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "old-2"), 2.0).ok());
  sys.Run();
  uint64_t sigs_before = sys.stats().control_signals;

  // Fig. 7: the administrator redirects traffic through n4.
  ASSERT_TRUE(sys.DeleteSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n4_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n4_, n3_, n3_)).ok());
  sys.Run();
  // Each insertion broadcast a sig to all four nodes; the deletion did not.
  EXPECT_EQ(sys.stats().control_signals, sigs_before + 2u * 4u);

  // A post-update packet of the same equivalence class (n1, n3): without
  // the §5.5 reset its provenance would be silently dropped.
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "new-1"), 10.0).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "new-2"), 11.0).ok());
  sys.Run();

  ASSERT_EQ(sys.OutputsAt(n3_).size(), 4u);
  auto querier = bed->MakeQuerier();

  // Old packets resolve through n2.
  {
    Tuple recv = apps::MakeRecv(n3_, n1_, n3_, "old-1");
    Vid evid = apps::MakePacket(n1_, n1_, n3_, "old-1").Vid();
    auto res = querier->Query(recv, &evid);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    ASSERT_EQ(res->trees.size(), 1u);
    EXPECT_EQ(res->trees[0].steps()[0].slow_tuples[0],
              apps::MakeRoute(n1_, n3_, n2_))
        << "history must keep the old route even after its deletion";
  }
  // New packets resolve through n4 — both the cache-resetting first one and
  // the existFlag=true follower.
  for (const char* payload : {"new-1", "new-2"}) {
    Tuple recv = apps::MakeRecv(n3_, n1_, n3_, payload);
    Vid evid = apps::MakePacket(n1_, n1_, n3_, payload).Vid();
    auto res = querier->Query(recv, &evid);
    ASSERT_TRUE(res.ok()) << payload << ": " << res.status().ToString();
    ASSERT_EQ(res->trees.size(), 1u);
    EXPECT_EQ(res->trees[0].steps()[0].slow_tuples[0],
              apps::MakeRoute(n1_, n3_, n4_));
    EXPECT_EQ(res->trees[0].steps()[1].slow_tuples[0],
              apps::MakeRoute(n4_, n3_, n3_));
  }
}

TEST_F(SlowUpdateTest, DeletionAloneDoesNotBroadcast) {
  auto bed = MakeBed(Scheme::kAdvanced);
  System& sys = bed->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  sys.Run();
  uint64_t sigs = sys.stats().control_signals;
  ASSERT_TRUE(sys.DeleteSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  sys.Run();
  EXPECT_EQ(sys.stats().control_signals, sigs);
}

TEST_F(SlowUpdateTest, ReinsertingExistingRouteDoesNotBroadcast) {
  auto bed = MakeBed(Scheme::kAdvanced);
  System& sys = bed->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  sys.Run();
  uint64_t sigs = sys.stats().control_signals;
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  sys.Run();
  EXPECT_EQ(sys.stats().control_signals, sigs);
}

TEST_F(SlowUpdateTest, ExspanIgnoresUpdatesWithoutBroadcast) {
  auto bed = MakeBed(Scheme::kExspan);
  System& sys = bed->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  sys.Run();
  EXPECT_EQ(sys.stats().control_signals, 0u);
}

}  // namespace
}  // namespace dpc
