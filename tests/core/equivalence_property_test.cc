// Theorem 1 / Lemma 2 as a property test: if two input events agree on the
// equivalence keys computed by the static analysis, the provenance trees
// they generate are ~-equivalent (same rule sequence, same slow-changing
// tuples). Exercises both paper programs plus synthetic DELPs with
// assignments and constraints.
#include <gtest/gtest.h>

#include <map>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

TEST(EquivalenceKeysTest, ForwardingKeysMatchPaper) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  // §5.2: (packet:0, packet:2) — the injection location and destination.
  EXPECT_EQ(keys->event_relation(), "packet");
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 2}));
}

TEST(EquivalenceKeysTest, DnsKeysAreHostAndUrl)
{
  auto program = apps::MakeDnsProgram();
  ASSERT_TRUE(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  // url(@HST, URL, RQID): HST joins rootServer, URL joins nameServer /
  // addressRecord through the f_isSubDomain constraint; RQID joins nothing.
  EXPECT_EQ(keys->event_relation(), "url");
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 1}));
}

TEST(EquivalenceKeysTest, AssignmentPropagatesKeyMembership) {
  // The paper's r2' variant: N := L + 2 makes recv:2 depend on packet:0.
  // packet:1 (S) still reaches no slow attribute and stays a non-key.
  const char* text = R"(
    r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
    r2 recv(@L, S, N, DT)   :- packet(@L, S, D, DT), N := L + 2, D == L.
  )";
  auto program = Program::Parse(text);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 2}));
}

TEST(EquivalenceKeysTest, PureConstraintAttributeBecomesKey) {
  // TTL joins no slow-changing relation but gates r2's firing; the
  // conservative strengthening (DESIGN.md §2) must include it.
  const char* text = R"(
    r1 hop(@N, D, TTL)  :- hop(@L, D, TTL), link(@L, N).
    r2 seen(@L, D, TTL) :- hop(@L, D, TTL), TTL > 3.
  )";
  auto program = Program::Parse(text);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  EXPECT_TRUE(keys->Contains(2)) << keys->ToString();
}

TEST(EquivalenceKeysTest, HashRespectsDefinition2) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());

  Tuple a = apps::MakePacket(1, 1, 3, "data");
  Tuple b = apps::MakePacket(1, 1, 3, "url");   // same keys, diff payload
  Tuple c = apps::MakePacket(1, 5, 3, "data");  // src is not a key
  Tuple d = apps::MakePacket(1, 1, 4, "data");  // dst is a key
  Tuple e = apps::MakePacket(2, 1, 3, "data");  // location is a key

  EXPECT_TRUE(keys->Equivalent(a, b));
  EXPECT_TRUE(keys->Equivalent(a, c));
  EXPECT_FALSE(keys->Equivalent(a, d));
  EXPECT_FALSE(keys->Equivalent(a, e));
  EXPECT_EQ(keys->HashOf(a), keys->HashOf(b));
  EXPECT_EQ(keys->HashOf(a), keys->HashOf(c));
  EXPECT_NE(keys->HashOf(a), keys->HashOf(d));
  EXPECT_NE(keys->HashOf(a), keys->HashOf(e));
}

// Theorem 1 end-to-end: equivalent events yield ~-equivalent trees.
class ForwardingTheorem1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ForwardingTheorem1Test, EquivalentEventsYieldEquivalentTrees) {
  uint64_t seed = GetParam();
  TransitStubParams tparams;
  tparams.num_transit = 2;
  tparams.stubs_per_transit = 2;
  tparams.nodes_per_stub = 4;
  tparams.seed = seed;
  TransitStubTopology topo = MakeTransitStub(tparams);

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());

  auto bed_result =
      Testbed::Create(std::move(program).value(), &topo.graph,
                      Scheme::kReference);
  ASSERT_TRUE(bed_result.ok());
  auto bed = std::move(bed_result).value();

  Rng rng(seed * 31 + 7);
  auto pairs = apps::PickCommunicatingPairs(topo, 5, rng);
  for (auto [s, d] : pairs) {
    ASSERT_TRUE(
        apps::InstallRoutesForPair(bed->system(), topo.graph, s, d).ok());
  }
  // Several events per pair, with varying payload and src attribute
  // (both non-keys) so classes contain structurally diverse members.
  double t = 0;
  std::vector<Tuple> events;
  for (int round = 0; round < 5; ++round) {
    for (auto [s, d] : pairs) {
      NodeId claimed_src =
          (round % 2 == 0) ? s : static_cast<NodeId>(rng.NextBelow(10));
      Tuple ev = apps::MakePacket(
          s, claimed_src, d,
          apps::MakePayload(16, seed * 100 + round));
      events.push_back(ev);
      ASSERT_TRUE(bed->system().ScheduleInject(ev, t += 0.001).ok());
    }
  }
  bed->system().Run();

  auto trees = bed->reference()->AllTrees();
  ASSERT_GT(trees.size(), 0u);

  // Group the trees by their event's equivalence-key hash; all members of
  // a class must be pairwise ~-equivalent (Theorem 1).
  std::map<std::string, std::vector<const ProvTree*>> classes;
  for (const ProvTree* tree : trees) {
    classes[keys->HashOf(tree->event()).ToHex()].push_back(tree);
  }
  EXPECT_EQ(classes.size(), pairs.size());
  size_t comparisons = 0;
  for (const auto& [_, members] : classes) {
    for (size_t i = 1; i < members.size(); ++i) {
      EXPECT_TRUE(members[0]->EquivalentTo(*members[i]))
          << members[0]->ToString() << "\nvs\n"
          << members[i]->ToString();
      ++comparisons;
    }
  }
  EXPECT_GT(comparisons, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardingTheorem1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Theorem 1 on DNS: requests for the same URL from the same client are
// equivalent regardless of request id.
TEST(DnsTheorem1Test, SameUrlSameClientIsOneClass) {
  apps::DnsParams dparams;
  dparams.num_servers = 20;
  dparams.num_clients = 2;
  dparams.num_urls = 4;
  dparams.trunk_depth = 6;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(dparams);

  auto program = apps::MakeDnsProgram();
  ASSERT_TRUE(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());

  auto bed_result = Testbed::Create(std::move(program).value(),
                                    &universe.graph, Scheme::kReference);
  ASSERT_TRUE(bed_result.ok());
  auto bed = std::move(bed_result).value();
  ASSERT_TRUE(apps::InstallDnsState(bed->system(), universe).ok());

  double t = 0;
  int64_t rqid = 0;
  for (int round = 0; round < 3; ++round) {
    for (NodeId client : universe.clients) {
      for (const std::string& url : universe.urls) {
        ASSERT_TRUE(bed->system()
                        .ScheduleInject(
                            apps::MakeUrlEvent(client, url, rqid++),
                            t += 0.001)
                        .ok());
      }
    }
  }
  bed->system().Run();

  auto trees = bed->reference()->AllTrees();
  std::map<std::string, std::vector<const ProvTree*>> classes;
  for (const ProvTree* tree : trees) {
    classes[keys->HashOf(tree->event()).ToHex()].push_back(tree);
  }
  // #classes = #clients x #urls; each class has 3 members (rounds).
  EXPECT_EQ(classes.size(),
            universe.clients.size() * universe.urls.size());
  for (const auto& [_, members] : classes) {
    ASSERT_EQ(members.size(), 3u);
    EXPECT_TRUE(members[0]->EquivalentTo(*members[1]));
    EXPECT_TRUE(members[0]->EquivalentTo(*members[2]));
  }
}

}  // namespace
}  // namespace dpc
