// Query machinery unit tests: ReExecuteRule, error paths, multiple
// derivations, latency accounting, and cross-scheme agreement beyond what
// the paper-example and property suites cover.
#include "src/core/query.h"

#include <gtest/gtest.h>

#include <set>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/ndlog/parser.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class ReExecuteRuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = apps::MakeForwardingProgram();
    ASSERT_TRUE(program.ok());
    program_ = std::make_unique<Program>(std::move(program).value());
  }
  const Rule& r1() { return *program_->FindRule("r1"); }
  const Rule& r2() { return *program_->FindRule("r2"); }

  std::unique_ptr<Program> program_;
  FunctionRegistry fns_ = DefaultFunctions();
};

TEST_F(ReExecuteRuleTest, DerivesForwardingStep) {
  auto head = ReExecuteRule(r1(), apps::MakePacket(1, 1, 3, "d"),
                            {apps::MakeRoute(1, 3, 2)}, fns_);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(*head, apps::MakePacket(2, 1, 3, "d"));
}

TEST_F(ReExecuteRuleTest, DerivesConstraintStep) {
  auto head = ReExecuteRule(r2(), apps::MakePacket(3, 1, 3, "d"), {}, fns_);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, apps::MakeRecv(3, 1, 3, "d"));
}

TEST_F(ReExecuteRuleTest, FailsWhenConstraintUnsatisfied) {
  // r2 at an intermediate node: D != L.
  auto head = ReExecuteRule(r2(), apps::MakePacket(2, 1, 3, "d"), {}, fns_);
  EXPECT_TRUE(head.status().IsFailedPrecondition());
}

TEST_F(ReExecuteRuleTest, FailsOnWrongEventRelation) {
  auto head = ReExecuteRule(r1(), apps::MakeRecv(1, 1, 3, "d"),
                            {apps::MakeRoute(1, 3, 2)}, fns_);
  EXPECT_TRUE(head.status().IsFailedPrecondition());
}

TEST_F(ReExecuteRuleTest, FailsOnConditionCountMismatch) {
  auto head = ReExecuteRule(r1(), apps::MakePacket(1, 1, 3, "d"), {}, fns_);
  EXPECT_TRUE(head.status().IsFailedPrecondition());
}

TEST_F(ReExecuteRuleTest, FailsOnNonJoiningSlowTuple) {
  // A route for a different destination cannot have joined.
  auto head = ReExecuteRule(r1(), apps::MakePacket(1, 1, 3, "d"),
                            {apps::MakeRoute(1, 9, 2)}, fns_);
  EXPECT_TRUE(head.status().IsFailedPrecondition());
}

TEST_F(ReExecuteRuleTest, FailsOnWrongLocationSlowTuple) {
  auto head = ReExecuteRule(r1(), apps::MakePacket(1, 1, 3, "d"),
                            {apps::MakeRoute(5, 3, 2)}, fns_);
  EXPECT_TRUE(head.status().IsFailedPrecondition());
}

TEST_F(ReExecuteRuleTest, AssignmentRuleReExecutes) {
  auto rules = ParseRules("r out(@L, N) :- in(@L, D), s(@L), N := D + 5.");
  ASSERT_TRUE(rules.ok());
  Tuple s = Tuple::Make("s", 1, {});
  auto head = ReExecuteRule(rules->front(),
                            Tuple::Make("in", 1, {Value::Int(2)}), {s}, fns_);
  ASSERT_TRUE(head.ok()) << head.status().ToString();
  EXPECT_EQ(*head, Tuple::Make("out", 1, {Value::Int(7)}));
}

// --- end-to-end query behaviours ---------------------------------------

class QueryBehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    n1_ = topo_.AddNode();
    n2_ = topo_.AddNode();
    n3_ = topo_.AddNode();
    n4_ = topo_.AddNode();
    LinkProps lp{0.001, 1e9};
    ASSERT_TRUE(topo_.AddLink(n1_, n2_, lp).ok());
    ASSERT_TRUE(topo_.AddLink(n2_, n3_, lp).ok());
    ASSERT_TRUE(topo_.AddLink(n1_, n4_, lp).ok());
    ASSERT_TRUE(topo_.AddLink(n4_, n3_, lp).ok());
    topo_.ComputeRoutes();
  }

  std::unique_ptr<Testbed> MakeBed(Scheme scheme) {
    auto program = apps::MakeForwardingProgram();
    EXPECT_TRUE(program.ok());
    auto bed = Testbed::Create(std::move(program).value(), &topo_, scheme);
    EXPECT_TRUE(bed.ok());
    return std::move(bed).value();
  }

  Topology topo_;
  NodeId n1_, n2_, n3_, n4_;
};

TEST_F(QueryBehaviorTest, UnknownTupleIsNotFound) {
  auto bed = MakeBed(Scheme::kAdvanced);
  auto querier = bed->MakeQuerier();
  auto res = querier->Query(apps::MakeRecv(n3_, n1_, n3_, "ghost"));
  EXPECT_TRUE(res.status().IsNotFound());
}

TEST_F(QueryBehaviorTest, MulticastYieldsTwoDerivations) {
  // Two routes at n1 for destination n3 (via n2 and via n4): the same
  // recv tuple is derived twice; ExSPAN must return both proofs.
  auto bed = MakeBed(Scheme::kExspan);
  System& sys = bed->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n4_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n4_, n3_, n3_)).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "m"), 0.1).ok());
  sys.Run();
  EXPECT_EQ(sys.stats().outputs, 2u);  // same tuple arrives twice

  auto querier = bed->MakeQuerier();
  auto res = querier->Query(apps::MakeRecv(n3_, n1_, n3_, "m"));
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->trees.size(), 2u);
  // One derivation through each intermediate node.
  std::set<NodeId> intermediates;
  for (const ProvTree& tree : res->trees) {
    ASSERT_EQ(tree.depth(), 3u);
    intermediates.insert(tree.steps()[0].head.Location());
  }
  EXPECT_EQ(intermediates, (std::set<NodeId>{n2_, n4_}));
}

TEST_F(QueryBehaviorTest, EvidFilterSelectsOneDerivation) {
  auto bed = MakeBed(Scheme::kBasic);
  System& sys = bed->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n4_, n3_, n3_)).ok());
  // The same recv content reachable from two different injected events
  // (different sources claiming the same src attribute).
  Tuple ev1 = apps::MakePacket(n1_, n1_, n3_, "x");
  Tuple ev2 = apps::MakePacket(n4_, n1_, n3_, "x");
  ASSERT_TRUE(sys.ScheduleInject(ev1, 0.1).ok());
  ASSERT_TRUE(sys.ScheduleInject(ev2, 0.2).ok());
  sys.Run();
  EXPECT_EQ(sys.stats().outputs, 2u);

  auto querier = bed->MakeQuerier();
  Tuple recv = apps::MakeRecv(n3_, n1_, n3_, "x");
  auto all = querier->Query(recv);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->trees.size(), 2u);

  Vid evid1 = ev1.Vid();
  auto only1 = querier->Query(recv, &evid1);
  ASSERT_TRUE(only1.ok());
  ASSERT_EQ(only1->trees.size(), 1u);
  EXPECT_EQ(only1->trees[0].event(), ev1);
}

TEST_F(QueryBehaviorTest, LatencyGrowsWithPathLength) {
  auto bed = MakeBed(Scheme::kAdvanced);
  System& sys = bed->system();
  // Long path n1 -> n2 -> n3 vs short local delivery at n3.
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
  // The near output lands at n4: its r2 row cannot share a (node, RID)
  // with the far class's rows at n1/n2/n3, so no branch exploration mixes
  // the two queries.
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "far"), 0.1).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n4_, n4_, n4_, "near"), 0.2).ok());
  sys.Run();

  auto querier = bed->MakeQuerier();
  auto far = querier->Query(apps::MakeRecv(n3_, n1_, n3_, "far"));
  auto near = querier->Query(apps::MakeRecv(n4_, n4_, n4_, "near"));
  ASSERT_TRUE(far.ok());
  ASSERT_TRUE(near.ok());
  EXPECT_GT(far->latency_s, near->latency_s);
  EXPECT_GT(far->hops, near->hops);
  EXPECT_GT(far->entries_touched, near->entries_touched);
}

TEST_F(QueryBehaviorTest, CostModelScalesLatency) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  QueryCostModel slow_cost;
  slow_cost.per_entry_s *= 10;
  auto bed_fast = Testbed::Create(*program, &topo_, Scheme::kBasic);
  auto bed_slow =
      Testbed::Create(*program, &topo_, Scheme::kBasic, slow_cost);
  ASSERT_TRUE(bed_fast.ok());
  ASSERT_TRUE(bed_slow.ok());
  for (auto& bed : {bed_fast->get(), bed_slow->get()}) {
    System& sys = bed->system();
    ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
    ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
    ASSERT_TRUE(
        sys.ScheduleInject(apps::MakePacket(n1_, n1_, n3_, "c"), 0.1).ok());
    sys.Run();
  }
  Tuple recv = apps::MakeRecv(n3_, n1_, n3_, "c");
  auto fast = (*bed_fast)->MakeQuerier()->Query(recv);
  auto slow = (*bed_slow)->MakeQuerier()->Query(recv);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow->latency_s, 2 * fast->latency_s);
  EXPECT_EQ(slow->entries_touched, fast->entries_touched);
  EXPECT_EQ(slow->trees, fast->trees);
}

}  // namespace
}  // namespace dpc
