// Theorem 1 beyond the paper's two applications: a generator family of
// random DELPs — varying chain length, value flow, joins, assignments and
// constraints — executed over random slow-changing state and random events.
// For every generated program, events agreeing on the computed equivalence
// keys must yield ~-equivalent provenance trees.
#include <gtest/gtest.h>

#include <map>

#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

// One generated scenario: the program text plus the state/workload builder
// knobs that keep execution meaningful (every event must fire each rule).
struct GeneratedDelp {
  std::string source;
  int num_rules;
  // Per rule: whether the head relocates via the slow tuple (true) or stays
  // local, and whether the head's payload attribute is rewritten from the
  // slow tuple / an assignment.
  std::vector<bool> relocates;
  std::vector<int> payload_mode;  // 0=carry A, 1=from slow C, 2=A+B, 3=B
  bool has_constraint;
};

// Generates a chain e0 -> e1 -> ... -> ek. Every event relation has shape
// ei(@L, A, B); every rule i joins a slow relation si(@L, A, N, C):
//
//   ri  e{i}(@H, A', B') :- e{i-1}(@L, A, B), s{i}(@L, A, N, C) [, A >= 0].
//
// with H in {L, N} and A'/B' drawn from {A, B, C, A+B}. Since every rule
// joins on A, the analysis must always include attribute 1 (A) in the
// equivalence keys; B becomes a key only when some rule feeds it into a
// join/constraint path.
GeneratedDelp GenerateDelp(Rng& rng) {
  GeneratedDelp g;
  g.num_rules = 1 + static_cast<int>(rng.NextBelow(4));
  g.has_constraint = rng.NextBelow(2) == 0;
  std::string src;
  for (int i = 1; i <= g.num_rules; ++i) {
    bool relocate = rng.NextBelow(2) == 0;
    int mode = static_cast<int>(rng.NextBelow(4));
    g.relocates.push_back(relocate);
    g.payload_mode.push_back(mode);

    std::string head_loc = relocate ? "N" : "L";
    std::string a_prime;
    switch (mode) {
      case 0: a_prime = "A"; break;
      case 1: a_prime = "C"; break;
      case 2: a_prime = "A + B"; break;
      default: a_prime = "B"; break;
    }
    std::string b_prime = (rng.NextBelow(2) == 0) ? "B" : "A";
    std::string rule = "r" + std::to_string(i) + " e" + std::to_string(i) +
                       "(@" + head_loc + ", AP, " + b_prime + ") :- e" +
                       std::to_string(i - 1) + "(@L, A, B), s" +
                       std::to_string(i) + "(@L, A, N, C), AP := " + a_prime +
                       ".";
    if (g.has_constraint && i == g.num_rules) {
      rule.insert(rule.size() - 1, ", A >= 0");
    }
    src += rule + "\n";
  }
  g.source = src;
  return g;
}

class RandomDelpTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDelpTest, EquivalentEventsYieldEquivalentTrees) {
  Rng rng(GetParam() * 1315423911ULL + 17);
  GeneratedDelp g = GenerateDelp(rng);

  auto program_or = Program::Parse(g.source);
  ASSERT_TRUE(program_or.ok())
      << program_or.status().ToString() << "\n" << g.source;
  Program& program = *program_or;
  EXPECT_EQ(program.input_event_relation(), "e0");

  auto keys_or = ComputeEquivalenceKeys(program);
  ASSERT_TRUE(keys_or.ok());
  const EquivalenceKeys& keys = *keys_or;
  // Every rule joins the event's A attribute against a slow relation, so A
  // (index 1) must always be an equivalence key; the location always is.
  EXPECT_TRUE(keys.Contains(0)) << keys.ToString() << "\n" << g.source;
  EXPECT_TRUE(keys.Contains(1)) << keys.ToString() << "\n" << g.source;

  // A ring topology where node x's "next" is x+1 mod n.
  const int n = 5;
  Topology topo;
  topo.AddNodes(n);
  for (int x = 0; x < n; ++x) {
    Status st = topo.AddLink(x, (x + 1) % n, LinkProps{0.001, 1e9});
    ASSERT_TRUE(st.ok() || st.IsAlreadyExists());
  }
  topo.ComputeRoutes();

  auto bed_or = Testbed::Create(program, &topo, Scheme::kReference);
  ASSERT_TRUE(bed_or.ok());
  auto bed = std::move(bed_or).value();

  // Slow state: every node holds s_i rows, pointing to its ring successor,
  // with a small C derived from (node, a). The A-value coverage (0..24)
  // exceeds anything the A+B / C rewrite modes can produce over 4 rules
  // starting from A<=2, B<=3, so no chain dies on a missing join partner.
  const int a_values = 3;
  for (int i = 1; i <= g.num_rules; ++i) {
    for (int x = 0; x < n; ++x) {
      for (int a = 0; a < 25; ++a) {
        ASSERT_TRUE(bed->system()
                        .InsertSlowTuple(Tuple::Make(
                            "s" + std::to_string(i), x,
                            {Value::Int(a), Value::Int((x + 1) % n),
                             Value::Int((x + a) % 3)}))
                        .ok());
      }
    }
  }

  // Workload: events sweeping locations, A-values, and B-values, two
  // rounds each. B is sometimes a key (via A+B flows or B->A swaps) and
  // sometimes not; the analysis decides, the theorem must hold either way.
  double t = 0;
  for (int round = 0; round < 2; ++round) {
    for (int x = 0; x < n; ++x) {
      for (int a = 0; a < a_values; ++a) {
        for (int b = 0; b < 4; ++b) {
          ASSERT_TRUE(bed->system()
                          .ScheduleInject(
                              Tuple::Make("e0", x,
                                          {Value::Int(a), Value::Int(b)}),
                              t += 0.001)
                          .ok());
        }
      }
    }
  }
  bed->system().Run();

  auto trees = bed->reference()->AllTrees();
  ASSERT_GT(trees.size(), 0u) << g.source;

  // Theorem 1: group by key hash, assert pairwise ~ within each class.
  std::map<std::string, std::vector<const ProvTree*>> classes;
  for (const ProvTree* tree : trees) {
    classes[keys.HashOf(tree->event()).ToHex()].push_back(tree);
  }
  size_t multi_member_classes = 0;
  for (const auto& [_, members] : classes) {
    if (members.size() > 1) ++multi_member_classes;
    for (size_t i = 1; i < members.size(); ++i) {
      ASSERT_TRUE(members[0]->EquivalentTo(*members[i]))
          << g.source << "\n"
          << members[0]->ToString() << "\nvs\n"
          << members[i]->ToString();
    }
  }
  // The two-round sweep guarantees several events per class; if every
  // class were a singleton the test would be vacuous.
  EXPECT_GT(multi_member_classes, 0u) << g.source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDelpTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace dpc
