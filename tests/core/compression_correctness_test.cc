// Theorem 3 (lossless compression) and Theorem 5 (query correctness) as
// property tests: over randomized topologies, route tables and event
// streams, the trees reconstructed from each scheme's distributed tables
// must equal — derivation for derivation — the trees captured by the
// ReferenceRecorder, which ships every tree inline.
#include <gtest/gtest.h>

#include <map>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

struct Case {
  Scheme scheme;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = apps::SchemeName(info.param.scheme);
  for (char& c : name) {
    if (c == '+') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

class ForwardingCompressionTest : public ::testing::TestWithParam<Case> {};

TEST_P(ForwardingCompressionTest, AllOutputsReconstructExactly) {
  const Case& param = GetParam();
  TransitStubParams tparams;
  tparams.num_transit = 2;
  tparams.stubs_per_transit = 2;
  tparams.nodes_per_stub = 4;
  tparams.seed = param.seed;
  TransitStubTopology topo = MakeTransitStub(tparams);

  Rng rng(param.seed * 977 + 13);
  auto pairs = apps::PickCommunicatingPairs(topo, 6, rng);

  auto make_bed = [&](Scheme scheme) {
    auto program = apps::MakeForwardingProgram();
    EXPECT_TRUE(program.ok());
    auto bed = Testbed::Create(std::move(program).value(), &topo.graph,
                               scheme);
    EXPECT_TRUE(bed.ok());
    return std::move(bed).value();
  };

  auto run_workload = [&](Testbed& bed) {
    for (auto [s, d] : pairs) {
      ASSERT_TRUE(
          apps::InstallRoutesForPair(bed.system(), topo.graph, s, d).ok());
    }
    double t = 0;
    // Several packets per pair so equivalence classes have real members,
    // plus interleaving across pairs.
    for (int round = 0; round < 4; ++round) {
      for (size_t p = 0; p < pairs.size(); ++p) {
        auto [s, d] = pairs[p];
        std::string payload = apps::MakePayload(
            24, param.seed * 1000 + round * 100 + p);
        ASSERT_TRUE(bed.system()
                        .ScheduleInject(
                            apps::MakePacket(s, s, d, payload), t += 0.001)
                        .ok());
      }
    }
    bed.system().Run();
  };

  auto ref_bed = make_bed(Scheme::kReference);
  run_workload(*ref_bed);
  auto bed = make_bed(param.scheme);
  run_workload(*bed);

  // Identical executions.
  EXPECT_EQ(bed->system().stats().rule_firings,
            ref_bed->system().stats().rule_firings);
  EXPECT_EQ(bed->system().stats().outputs,
            ref_bed->system().stats().outputs);
  ASSERT_GT(ref_bed->system().stats().outputs, 0u);

  auto querier = bed->MakeQuerier();
  ASSERT_NE(querier, nullptr);
  size_t checked = 0;
  for (NodeId n = 0; n < topo.graph.num_nodes(); ++n) {
    for (const OutputRecord& out : ref_bed->system().OutputsAt(n)) {
      Vid evid = out.meta.evid;
      auto expected = ref_bed->reference()->FindTrees(out.tuple, &evid);
      ASSERT_GE(expected.size(), 1u);

      auto res = querier->Query(out.tuple, &evid);
      ASSERT_TRUE(res.ok())
          << apps::SchemeName(param.scheme) << " failed on "
          << out.tuple.ToString() << ": " << res.status().ToString();
      ASSERT_EQ(res->trees.size(), expected.size());
      EXPECT_EQ(res->trees[0], *expected[0]);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);

  if (bed->advanced() != nullptr) {
    EXPECT_EQ(bed->advanced()->PendingOutputs(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForwardingCompressionTest,
    ::testing::Values(Case{Scheme::kExspan, 1}, Case{Scheme::kExspan, 2},
                      Case{Scheme::kBasic, 1}, Case{Scheme::kBasic, 2},
                      Case{Scheme::kBasic, 3}, Case{Scheme::kAdvanced, 1},
                      Case{Scheme::kAdvanced, 2}, Case{Scheme::kAdvanced, 3},
                      Case{Scheme::kAdvanced, 4},
                      Case{Scheme::kAdvancedInterClass, 1},
                      Case{Scheme::kAdvancedInterClass, 2},
                      Case{Scheme::kAdvancedInterClass, 3}),
    CaseName);

class DnsCompressionTest : public ::testing::TestWithParam<Case> {};

TEST_P(DnsCompressionTest, AllRepliesReconstructExactly) {
  const Case& param = GetParam();
  apps::DnsParams dparams;
  dparams.num_servers = 24;
  dparams.num_clients = 4;
  dparams.num_urls = 10;
  dparams.trunk_depth = 8;
  dparams.seed = param.seed;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(dparams);

  auto make_bed = [&](Scheme scheme) {
    auto program = apps::MakeDnsProgram();
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    auto bed = Testbed::Create(std::move(program).value(), &universe.graph,
                               scheme);
    EXPECT_TRUE(bed.ok());
    return std::move(bed).value();
  };

  auto urls = apps::ZipfUrlSequence(universe, 40, 0.9, param.seed + 5);
  auto run_workload = [&](Testbed& bed) {
    ASSERT_TRUE(apps::InstallDnsState(bed.system(), universe).ok());
    double t = 0;
    for (size_t i = 0; i < urls.size(); ++i) {
      NodeId client = universe.clients[i % universe.clients.size()];
      ASSERT_TRUE(bed.system()
                      .ScheduleInject(
                          apps::MakeUrlEvent(client, universe.urls[urls[i]],
                                             static_cast<int64_t>(i)),
                          t += 0.002)
                      .ok());
    }
    bed.system().Run();
  };

  auto ref_bed = make_bed(Scheme::kReference);
  run_workload(*ref_bed);
  auto bed = make_bed(param.scheme);
  run_workload(*bed);

  ASSERT_EQ(ref_bed->system().stats().outputs, urls.size())
      << "every request must resolve";
  EXPECT_EQ(bed->system().stats().outputs, urls.size());

  auto querier = bed->MakeQuerier();
  size_t checked = 0;
  for (NodeId n = 0; n < universe.graph.num_nodes(); ++n) {
    for (const OutputRecord& out : ref_bed->system().OutputsAt(n)) {
      Vid evid = out.meta.evid;
      auto expected = ref_bed->reference()->FindTrees(out.tuple, &evid);
      ASSERT_EQ(expected.size(), 1u);
      auto res = querier->Query(out.tuple, &evid);
      ASSERT_TRUE(res.ok())
          << apps::SchemeName(param.scheme) << " failed on "
          << out.tuple.ToString() << ": " << res.status().ToString();
      ASSERT_EQ(res->trees.size(), 1u);
      EXPECT_EQ(res->trees[0], *expected[0])
          << "got:\n"
          << res->trees[0].ToString() << "expected:\n"
          << expected[0]->ToString();
      ++checked;
    }
  }
  EXPECT_EQ(checked, urls.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DnsCompressionTest,
    ::testing::Values(Case{Scheme::kExspan, 1}, Case{Scheme::kBasic, 1},
                      Case{Scheme::kBasic, 2}, Case{Scheme::kAdvanced, 1},
                      Case{Scheme::kAdvanced, 2},
                      Case{Scheme::kAdvancedInterClass, 1},
                      Case{Scheme::kAdvancedInterClass, 2}),
    CaseName);

}  // namespace
}  // namespace dpc
