// WAL + checkpoint durability codec: round-trips for every record kind,
// node-state snapshot round-trips for all four compressing schemes, and
// the hostile-input contract — truncated, bit-flipped, or hostile-length
// files must come back as Status/Result errors (or a shorter intact
// prefix), never a crash or abort.
#include <gtest/gtest.h>
#include <stdlib.h>

#ifdef __linux__
#include <sys/resource.h>

#include <csignal>
#endif

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"
#include "src/core/wal.h"
#include "src/obs/metrics.h"
#include "src/util/serial.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

// A scratch directory under the test temp root, removed on destruction.
struct TempDir {
  std::string path;

  explicit TempDir(const std::string& tag) {
    std::string tmpl = ::testing::TempDir() + "dpc_" + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    if (got != nullptr) path = got;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
};

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

WalRecord MakeRuleFiredRecord() {
  WalRecord rec;
  rec.seq = 42;
  rec.kind = WalRecordKind::kRuleFired;
  rec.node = 3;
  rec.rule_id = "r1";
  rec.tuple = Tuple::Make("packet", 3,
                          {Value::Int(0), Value::Int(2), Value::Str("data")});
  rec.head = Tuple::Make("packet", 4,
                         {Value::Int(0), Value::Int(2), Value::Str("data")});
  rec.slow.push_back(Tuple::Make("route", 3, {Value::Int(2), Value::Int(4)}));
  rec.meta = {0xde, 0xad, 0xbe, 0xef};
  return rec;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.rule_id, b.rule_id);
  EXPECT_TRUE(a.tuple == b.tuple) << a.tuple.ToString() << " vs "
                                  << b.tuple.ToString();
  ASSERT_EQ(a.slow.size(), b.slow.size());
  for (size_t i = 0; i < a.slow.size(); ++i) {
    EXPECT_TRUE(a.slow[i] == b.slow[i]);
  }
  if (a.kind == WalRecordKind::kRuleFired) {
    EXPECT_TRUE(a.head == b.head);
  }
  EXPECT_EQ(a.meta, b.meta);
}

TEST(WalRecordCodecTest, EveryKindRoundTrips) {
  std::vector<WalRecord> records;
  {
    WalRecord rec;
    rec.seq = 1;
    rec.kind = WalRecordKind::kInject;
    rec.node = 0;
    rec.tuple = Tuple::Make("packet", 0, {Value::Int(7)});
    records.push_back(rec);
  }
  records.push_back(MakeRuleFiredRecord());
  for (WalRecordKind kind :
       {WalRecordKind::kOutput, WalRecordKind::kArrival,
        WalRecordKind::kSlowInsert, WalRecordKind::kSlowDelete}) {
    WalRecord rec;
    rec.seq = records.size() + 1;
    rec.kind = kind;
    rec.node = 2;
    rec.tuple = Tuple::Make("route", 2, {Value::Int(1), Value::Int(3)});
    if (kind == WalRecordKind::kOutput || kind == WalRecordKind::kArrival) {
      rec.meta = {1, 2, 3};
    }
    records.push_back(rec);
  }
  {
    WalRecord rec;
    rec.seq = records.size() + 1;
    rec.kind = WalRecordKind::kControlSignal;
    rec.node = 5;
    records.push_back(rec);
  }

  for (const WalRecord& rec : records) {
    ByteWriter w;
    rec.Serialize(w);
    ByteReader r(w.bytes());
    auto got = WalRecord::Deserialize(r);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectRecordsEqual(rec, *got);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(WalRecordCodecTest, TruncatedPayloadIsAnErrorNeverACrash) {
  WalRecord rec = MakeRuleFiredRecord();
  ByteWriter w;
  rec.Serialize(w);
  const std::vector<uint8_t> full(w.bytes().begin(), w.bytes().end());
  for (size_t len = 0; len < full.size(); ++len) {
    std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    ByteReader r(prefix);
    auto got = WalRecord::Deserialize(r);
    // Any strict prefix must fail decoding: every field is length-checked.
    EXPECT_FALSE(got.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WalRecordCodecTest, BitFlippedPayloadNeverCrashes) {
  WalRecord rec = MakeRuleFiredRecord();
  ByteWriter w;
  rec.Serialize(w);
  const std::vector<uint8_t> full(w.bytes().begin(), w.bytes().end());
  for (size_t i = 0; i < full.size(); ++i) {
    for (uint8_t bit : {uint8_t{1}, uint8_t{0x80}}) {
      std::vector<uint8_t> mutated = full;
      mutated[i] ^= bit;
      ByteReader r(mutated);
      // May decode to a different record or fail; must not crash.
      auto got = WalRecord::Deserialize(r);
      (void)got;
    }
  }
}

TEST(WalWriterTest, AppendReadRoundTrip) {
  TempDir dir("walrt");
  std::string path = WalPath(dir.path, 0);
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<WalRecord> records;
  for (uint64_t seq = 1; seq <= 20; ++seq) {
    WalRecord rec = MakeRuleFiredRecord();
    rec.seq = seq;
    records.push_back(rec);
    ASSERT_TRUE(writer->Append(rec).ok());
  }
  auto got = ReadWal(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->corrupt_frames, 0u);
  ASSERT_EQ(got->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectRecordsEqual(records[i], got->records[i]);
  }
}

TEST(WalWriterTest, MissingFileReadsAsEmptyLog) {
  TempDir dir("walmiss");
  auto got = ReadWal(WalPath(dir.path, 7));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->records.empty());
  EXPECT_EQ(got->corrupt_frames, 0u);
}

TEST(WalWriterTest, ResetTruncatesTheLog) {
  TempDir dir("walreset");
  std::string path = WalPath(dir.path, 0);
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  WalRecord rec = MakeRuleFiredRecord();
  ASSERT_TRUE(writer->Append(rec).ok());
  ASSERT_TRUE(writer->Reset().ok());
  ASSERT_TRUE(writer->Append(rec).ok());
  auto got = ReadWal(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->records.size(), 1u);
}

// Group-commit mode buffers appends in user space: before a Flush the
// on-disk log may be empty (a crash would lose the tail), after Flush or
// close every appended record is durable.
TEST(WalWriterTest, BufferedModeFlushesOnFlushAndClose) {
  TempDir dir("walbuf");
  std::string path = WalPath(dir.path, 0);
  WalRecord rec = MakeRuleFiredRecord();
  {
    auto writer = WalWriter::Open(path, /*sync=*/false, /*flush_each=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(rec).ok());
    ASSERT_TRUE(writer->Flush().ok());
    auto got = ReadWal(path);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->records.size(), 1u);
    ASSERT_TRUE(writer->Append(rec).ok());
  }  // close flushes the second record
  auto got = ReadWal(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->records.size(), 2u);
  EXPECT_EQ(got->corrupt_frames, 0u);
}

// Every torn prefix of a multi-record log yields the longest intact
// record prefix; a mid-frame cut is counted as one corrupt frame.
TEST(WalFuzzTest, EveryTruncationYieldsAnIntactPrefix) {
  TempDir dir("waltrunc");
  std::string path = WalPath(dir.path, 0);
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    WalRecord rec = MakeRuleFiredRecord();
    rec.seq = seq;
    ASSERT_TRUE(writer->Append(rec).ok());
  }
  const std::vector<uint8_t> full = ReadAll(path);
  std::string cut = dir.path + "/cut.wal";
  size_t prev_count = 0;
  for (size_t len = 0; len <= full.size(); ++len) {
    WriteAll(cut, std::vector<uint8_t>(full.begin(), full.begin() + len));
    auto got = ReadWal(cut);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_LE(got->records.size(), 5u);
    EXPECT_GE(got->records.size(), prev_count);  // monotone in the prefix
    prev_count = got->records.size();
    for (size_t i = 0; i < got->records.size(); ++i) {
      EXPECT_EQ(got->records[i].seq, i + 1);
    }
    if (len == full.size()) {
      EXPECT_EQ(got->records.size(), 5u);
      EXPECT_EQ(got->corrupt_frames, 0u);
    }
  }
}

TEST(WalFuzzTest, BitFlipsAreDetectedByTheChecksum) {
  TempDir dir("walflip");
  std::string path = WalPath(dir.path, 0);
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    WalRecord rec = MakeRuleFiredRecord();
    rec.seq = seq;
    ASSERT_TRUE(writer->Append(rec).ok());
  }
  const std::vector<uint8_t> full = ReadAll(path);
  std::string flip = dir.path + "/flip.wal";
  for (size_t i = 0; i < full.size(); ++i) {
    std::vector<uint8_t> mutated = full;
    mutated[i] ^= 0x40;
    WriteAll(flip, mutated);
    auto got = ReadWal(flip);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // A flip inside frame k leaves frames before k intact; everything at
    // and after the flip is untrusted. Flipping a length byte may also
    // shift framing, so the only hard guarantees are: no crash, no more
    // than 3 records, and a reported corruption whenever any were lost.
    EXPECT_LE(got->records.size(), 3u);
    if (got->records.size() < 3) {
      EXPECT_EQ(got->corrupt_frames, 1u) << "flip at byte " << i;
    }
  }
}

// The crash-restart append hazard: a torn tail must be cut back to the
// intact prefix before reopening for append, or every record written
// after the restart sits behind a frame ReadWal refuses to cross.
TEST(WalWriterTest, TruncateWalMakesPostTearAppendsReadable) {
  TempDir dir("waltear");
  std::string path = WalPath(dir.path, 0);
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      WalRecord rec = MakeRuleFiredRecord();
      rec.seq = seq;
      ASSERT_TRUE(writer->Append(rec).ok());
    }
  }
  {
    // A torn frame: header bytes of a record that never finished.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char garbage[] = {0x10, 0x00, 0x00, 0x00, 0x5a, 0x5a, 0x5a};
    out.write(garbage, sizeof(garbage));
    ASSERT_TRUE(out.good());
  }
  auto torn = ReadWal(path);
  ASSERT_TRUE(torn.ok());
  ASSERT_EQ(torn->records.size(), 3u);
  ASSERT_EQ(torn->corrupt_frames, 1u);

  // Without the truncation, this append would be unreachable.
  ASSERT_TRUE(TruncateWal(path, torn->bytes_scanned).ok());
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  WalRecord rec = MakeRuleFiredRecord();
  rec.seq = 4;
  ASSERT_TRUE(writer->Append(rec).ok());

  auto got = ReadWal(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->corrupt_frames, 0u);
  ASSERT_EQ(got->records.size(), 4u);
  EXPECT_EQ(got->records.back().seq, 4u);
}

TEST(WalWriterTest, TruncateWalOnAMissingFileIsOk) {
  TempDir dir("waltearmiss");
  EXPECT_TRUE(TruncateWal(WalPath(dir.path, 0), 0).ok());
}

TEST(WalFuzzTest, HostileLengthIsRejectedNotAllocated) {
  TempDir dir("wallen");
  std::string path = dir.path + "/hostile.wal";
  // Frame header claiming a ~4 GiB payload with 12 bytes behind it.
  std::vector<uint8_t> bytes = {0xff, 0xff, 0xff, 0xff,
                                0, 0, 0, 0, 0, 0, 0, 0};
  WriteAll(path, bytes);
  auto got = ReadWal(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->records.empty());
  EXPECT_EQ(got->corrupt_frames, 1u);
}

TEST(CheckpointTest, RoundTripsHeaderAndState) {
  TempDir dir("ckptrt");
  CheckpointData data;
  data.node = 4;
  data.watermark = 1234;
  data.epoch = 9;
  data.state = {1, 2, 3, 4, 5, 6, 7, 8};
  std::string path = CheckpointPath(dir.path, 4);
  ASSERT_TRUE(WriteCheckpoint(path, data).ok());
  auto got = ReadCheckpoint(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->node, 4);
  EXPECT_EQ(got->watermark, 1234u);
  EXPECT_EQ(got->epoch, 9u);
  EXPECT_EQ(got->state, data.state);
  // No .tmp litter: the write is tmp + rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// The sync mode adds tmp-file + directory fsyncs (power-loss ordering
// against the WAL truncation that follows); the bytes on disk and the
// atomic tmp+rename cutover are identical to the default mode.
TEST(CheckpointTest, SyncModeRoundTripsIdentically) {
  TempDir dir("ckptsync");
  CheckpointData data;
  data.node = 2;
  data.watermark = 55;
  data.epoch = 1;
  data.state = {9, 8, 7};
  std::string path = CheckpointPath(dir.path, 2);
  ASSERT_TRUE(WriteCheckpoint(path, data, /*sync=*/true).ok());
  auto got = ReadCheckpoint(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->watermark, 55u);
  EXPECT_EQ(got->state, data.state);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  TempDir dir("ckptmiss");
  auto got = ReadCheckpoint(CheckpointPath(dir.path, 0));
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound()) << got.status().ToString();
}

TEST(CheckpointFuzzTest, TruncationAndBitFlipsAreErrorsNeverCrashes) {
  TempDir dir("ckptfuzz");
  CheckpointData data;
  data.node = 0;
  data.watermark = 77;
  data.epoch = 3;
  for (int i = 0; i < 64; ++i) {
    data.state.push_back(static_cast<uint8_t>(i * 7));
  }
  std::string path = CheckpointPath(dir.path, 0);
  ASSERT_TRUE(WriteCheckpoint(path, data).ok());
  const std::vector<uint8_t> full = ReadAll(path);
  std::string fuzzed = dir.path + "/fuzz.ckpt";
  for (size_t len = 0; len < full.size(); ++len) {
    WriteAll(fuzzed, std::vector<uint8_t>(full.begin(), full.begin() + len));
    auto got = ReadCheckpoint(fuzzed);
    EXPECT_FALSE(got.ok()) << "prefix of " << len << " bytes decoded";
  }
  for (size_t i = 0; i < full.size(); ++i) {
    std::vector<uint8_t> mutated = full;
    mutated[i] ^= 0x10;
    WriteAll(fuzzed, mutated);
    auto got = ReadCheckpoint(fuzzed);
    // The checksum covers the state; header flips trip magic/length/
    // checksum validation. Either way: an error Status, not an abort.
    EXPECT_FALSE(got.ok()) << "flip at byte " << i << " decoded";
  }
}

// ---------------------------------------------------------------------
// Node-state snapshot round-trip: the durability backbone. For all four
// compressing schemes, SerializeNodeState -> fresh deployment ->
// RestoreNodeState must reproduce identical storage accounting, identical
// re-serialized bytes (the encoding is canonical), and identical
// provenance query answers.
// ---------------------------------------------------------------------

constexpr Scheme kStatefulSchemes[] = {Scheme::kExspan, Scheme::kBasic,
                                       Scheme::kAdvanced,
                                       Scheme::kAdvancedInterClass};

Topology MakeLineTopo(int n) {
  Topology topo;
  topo.AddNodes(n);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(topo.AddLink(i, i + 1, LinkProps{0.001, 1e9}).ok());
  }
  topo.ComputeRoutes();
  return topo;
}

std::unique_ptr<Testbed> RunForwardingWorkload(Scheme scheme,
                                               const Topology& topo,
                                               apps::TestbedOptions options) {
  auto program = apps::MakeForwardingProgram();
  EXPECT_TRUE(program.ok());
  auto bed = Testbed::Create(*program, &topo, scheme, std::move(options));
  EXPECT_TRUE(bed.ok()) << bed.status().ToString();
  int last = topo.num_nodes() - 1;
  EXPECT_TRUE(
      apps::InstallRoutesForPair((*bed)->system(), topo, 0, last).ok());
  EXPECT_TRUE(
      apps::InstallRoutesForPair((*bed)->system(), topo, last, 0).ok());
  double t = 0;
  for (int round = 0; round < 6; ++round) {
    EXPECT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(apps::MakePacket(
                                        0, 0, last,
                                        apps::MakePayload(24, round)),
                                    t += 0.003)
                    .ok());
    EXPECT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(apps::MakePacket(
                                        last, last, 0,
                                        apps::MakePayload(24, 100 + round)),
                                    t += 0.003)
                    .ok());
  }
  (*bed)->system().Run();
  return std::move(bed).value();
}

std::string QueryAnswers(Testbed& bed) {
  auto querier = bed.MakeQuerier();
  EXPECT_NE(querier, nullptr);
  std::ostringstream answers;
  for (const OutputRecord& out : bed.system().AllOutputs()) {
    // Only the advanced schemes stamp an event vid into the output meta;
    // for ExSPAN/Basic it is all-zero and must not be used as a filter.
    Vid evid = out.meta.evid;
    auto res = querier->Query(out.tuple, evid.IsZero() ? nullptr : &evid);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (!res.ok()) continue;
    for (const ProvTree& tree : res->trees) {
      answers << tree.ToString() << "\n";
    }
  }
  return answers.str();
}

#ifdef __linux__
// A failed append (here: disk full, simulated with a zero RLIMIT_FSIZE)
// leaves the in-memory recorder ahead of the journal. The run survives,
// but the divergence must be visible: a sticky durability_degraded flag
// plus per-node wal.append_errors counts — not just a transient log line.
TEST(WalDurabilityTest, AppendFailureSetsStickyDegradedFlag) {
  TempDir dir("waldeg");
  Topology topo = MakeLineTopo(3);
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  apps::TestbedOptions options;
  options.wal_dir = dir.path;
  auto bed = Testbed::Create(*program, &topo, Scheme::kBasic, options);
  ASSERT_TRUE(bed.ok()) << bed.status().ToString();
  ASSERT_NE((*bed)->wal(), nullptr);
  EXPECT_FALSE((*bed)->wal()->durability_degraded());

  MetricsSnapshot before = GlobalMetrics().Snapshot();
  // Any WAL growth now fails with EFBIG (SIGXFSZ ignored so the failure
  // surfaces as an error return, not a process kill).
  struct rlimit old_limit;
  ASSERT_EQ(getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  auto old_handler = std::signal(SIGXFSZ, SIG_IGN);
  struct rlimit tiny = {0, old_limit.rlim_max};
  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &tiny), 0);

  ASSERT_TRUE(apps::InstallRoutesForPair((*bed)->system(), topo, 0, 2).ok());
  ASSERT_TRUE((*bed)
                  ->system()
                  .ScheduleInject(
                      apps::MakePacket(0, 0, 2, apps::MakePayload(24, 1)),
                      0.001)
                  .ok());
  (*bed)->system().Run();

  ASSERT_EQ(setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  std::signal(SIGXFSZ, old_handler);

  EXPECT_TRUE((*bed)->wal()->durability_degraded());
  MetricsSnapshot delta = GlobalMetrics().Snapshot().Delta(before);
  EXPECT_GT(delta.counters["wal.append_errors"], 0u);
}
#endif  // __linux__

class NodeStateRoundTripTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(NodeStateRoundTripTest, RestoredStateIsByteIdentical) {
  Scheme scheme = GetParam();
  Topology topo = MakeLineTopo(4);
  auto source = RunForwardingWorkload(scheme, topo, {});
  ASSERT_GT(source->system().AllOutputs().size(), 0u);
  ASSERT_TRUE(source->recorder().SupportsNodeState());

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto fresh_or = Testbed::Create(*program, &topo, scheme, apps::TestbedOptions{});
  ASSERT_TRUE(fresh_or.ok());
  auto fresh = std::move(fresh_or).value();

  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    ByteWriter w;
    source->recorder().SerializeNodeState(n, w);
    ByteReader r(w.bytes());
    Status st = fresh->recorder().RestoreNodeState(n, r);
    ASSERT_TRUE(st.ok()) << apps::SchemeName(scheme) << " node " << n << ": "
                         << st.ToString();
    EXPECT_TRUE(r.AtEnd());

    // The encoding is canonical (tables serialize sorted), so restoring
    // and re-serializing must reproduce the source bytes exactly.
    ByteWriter w2;
    fresh->recorder().SerializeNodeState(n, w2);
    ASSERT_EQ(w.bytes(), w2.bytes())
        << apps::SchemeName(scheme) << " node " << n
        << ": restored state re-serializes differently";

    StorageBreakdown a = source->StorageAt(n);
    StorageBreakdown b = fresh->StorageAt(n);
    EXPECT_EQ(a.prov, b.prov);
    EXPECT_EQ(a.rule_exec, b.rule_exec);
    EXPECT_EQ(a.event_store, b.event_store);
    EXPECT_EQ(a.tuple_store, b.tuple_store);
    EXPECT_EQ(source->recorder().StateEpoch(n), fresh->recorder().StateEpoch(n));
  }
}

TEST_P(NodeStateRoundTripTest, RestoredStateAnswersQueriesIdentically) {
  Scheme scheme = GetParam();
  Topology topo = MakeLineTopo(4);
  auto source = RunForwardingWorkload(scheme, topo, {});
  std::string expected = QueryAnswers(*source);
  ASSERT_FALSE(expected.empty());

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto fresh_or = Testbed::Create(*program, &topo, scheme, apps::TestbedOptions{});
  ASSERT_TRUE(fresh_or.ok());
  auto fresh = std::move(fresh_or).value();
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    ByteWriter w;
    source->recorder().SerializeNodeState(n, w);
    ByteReader r(w.bytes());
    ASSERT_TRUE(fresh->recorder().RestoreNodeState(n, r).ok());
  }

  // Query the restored tables directly: same outputs, same trees. The
  // querier needs the output records, which live in the runtime, so we
  // query the restored recorder with the source run's output list.
  auto querier = fresh->MakeQuerier();
  ASSERT_NE(querier, nullptr);
  std::ostringstream answers;
  for (const OutputRecord& out : source->system().AllOutputs()) {
    Vid evid = out.meta.evid;
    auto res = querier->Query(out.tuple, evid.IsZero() ? nullptr : &evid);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    for (const ProvTree& tree : res->trees) {
      answers << tree.ToString() << "\n";
    }
  }
  EXPECT_EQ(expected, answers.str());
}

// Hostile node-state inputs: truncations and bit flips of a real
// serialized state must never crash RestoreNodeState. (Each attempt
// restores into a throwaway deployment: a failed restore may leave
// partial tables behind.)
TEST_P(NodeStateRoundTripTest, CorruptStateNeverCrashesRestore) {
  Scheme scheme = GetParam();
  Topology topo = MakeLineTopo(3);
  auto source = RunForwardingWorkload(scheme, topo, {});
  ByteWriter w;
  source->recorder().SerializeNodeState(1, w);
  const std::vector<uint8_t> full(w.bytes().begin(), w.bytes().end());
  ASSERT_GT(full.size(), 0u);

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());

  auto attempt = [&](const std::vector<uint8_t>& bytes) {
    auto fresh = Testbed::Create(*program, &topo, scheme, apps::TestbedOptions{});
    ASSERT_TRUE(fresh.ok());
    ByteReader r(bytes);
    Status st = (*fresh)->recorder().RestoreNodeState(1, r);
    (void)st;  // error or ok — never a crash
  };

  // Stride the truncation points (a testbed per prefix keeps this
  // honest but bounded); always include the boundary cases.
  for (size_t len = 0; len < full.size(); len += 17) {
    attempt(std::vector<uint8_t>(full.begin(), full.begin() + len));
  }
  attempt(std::vector<uint8_t>(full.begin(), full.end() - 1));
  for (size_t i = 0; i < full.size(); i += 11) {
    std::vector<uint8_t> mutated = full;
    mutated[i] ^= 0x20;
    attempt(mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, NodeStateRoundTripTest,
                         ::testing::ValuesIn(kStatefulSchemes),
                         [](const auto& info) {
                           std::string name = apps::SchemeName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace dpc
