// Recorder-level unit tests: per-scheme metadata wire formats and sizes
// (what each scheme adds to every message, §6.1.2/§6.2.2), storage
// breakdowns, and the out-of-order pending-output path of AdvancedRecorder.
#include "src/core/recorder.h"

#include <gtest/gtest.h>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/advanced_recorder.h"
#include "src/core/basic_recorder.h"
#include "src/core/exspan_recorder.h"
#include "src/core/reference_recorder.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class MetaRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto program = apps::MakeForwardingProgram();
    ASSERT_TRUE(program.ok());
    program_ = std::make_unique<Program>(std::move(program).value());
    auto keys = ComputeEquivalenceKeys(*program_);
    ASSERT_TRUE(keys.ok());
    keys_ = std::make_unique<EquivalenceKeys>(*keys);
  }

  ProvMeta SampleMeta(bool with_prev) {
    ProvMeta meta;
    meta.evid = Sha1::Hash("event");
    meta.eqkey = Sha1::Hash("class");
    meta.exist_flag = true;
    meta.maintain = false;
    if (with_prev) meta.prev = NodeRid{3, Sha1::Hash("rid")};
    return meta;
  }

  std::unique_ptr<Program> program_;
  std::unique_ptr<EquivalenceKeys> keys_;
};

TEST_F(MetaRoundTripTest, ExspanCarriesOnlyTheRuleRef) {
  ExspanRecorder rec(4);
  ProvMeta meta = SampleMeta(true);
  ByteWriter w;
  rec.SerializeMeta(meta, w);
  EXPECT_EQ(w.size(), 24u);  // NodeRid only
  ByteReader r(w.bytes());
  auto back = rec.DeserializeMeta(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->prev, meta.prev);
}

TEST_F(MetaRoundTripTest, BasicCarriesOnlyTheChainRef) {
  BasicRecorder rec(program_.get(), 4);
  ProvMeta meta = SampleMeta(true);
  EXPECT_EQ(rec.MetaWireSize(meta), 24u);
  ByteWriter w;
  rec.SerializeMeta(meta, w);
  ByteReader r(w.bytes());
  EXPECT_EQ(rec.DeserializeMeta(r)->prev, meta.prev);
}

TEST_F(MetaRoundTripTest, AdvancedCarriesFlagsHashesAndOptionalRef) {
  AdvancedRecorder rec(program_.get(), *keys_, 4);
  ProvMeta with_prev = SampleMeta(true);
  ProvMeta without_prev = SampleMeta(false);
  // flags(1) + evid(20) + eqkey(20) [+ prev(24)]
  EXPECT_EQ(rec.MetaWireSize(without_prev), 41u);
  EXPECT_EQ(rec.MetaWireSize(with_prev), 65u);

  for (const ProvMeta& meta : {with_prev, without_prev}) {
    ByteWriter w;
    rec.SerializeMeta(meta, w);
    ByteReader r(w.bytes());
    auto back = rec.DeserializeMeta(r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->evid, meta.evid);
    EXPECT_EQ(back->eqkey, meta.eqkey);
    EXPECT_EQ(back->exist_flag, meta.exist_flag);
    EXPECT_EQ(back->maintain, meta.maintain);
    EXPECT_EQ(back->prev, meta.prev);
  }
}

TEST_F(MetaRoundTripTest, ReferenceShipsTheWholeTree) {
  ReferenceRecorder rec(4);
  TupleRef packet = MakeTupleRef(apps::MakePacket(0, 0, 2, "data"));
  ProvMeta meta = rec.OnInject(0, packet);
  size_t size_at_injection = rec.MetaWireSize(meta);
  const Rule& r1 = program_->rules()[0];
  ProvMeta grown =
      rec.OnRuleFired(0, r1, packet, meta,
                      {MakeTupleRef(apps::MakeRoute(0, 2, 1))},
                      MakeTupleRef(apps::MakePacket(1, 0, 2, "data")));
  // The inline tree grows with every hop: the §2.3 argument against
  // shipping provenance with tuples.
  EXPECT_GT(rec.MetaWireSize(grown), size_at_injection);

  ByteWriter w;
  rec.SerializeMeta(grown, w);
  ByteReader r(w.bytes());
  auto back = rec.DeserializeMeta(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back->tree, *grown.tree);
}

TEST_F(MetaRoundTripTest, CorruptMetaFailsCleanly) {
  AdvancedRecorder rec(program_.get(), *keys_, 4);
  std::vector<uint8_t> garbage{0x07, 0x01};
  ByteReader r(garbage);
  EXPECT_FALSE(rec.DeserializeMeta(r).ok());
}

TEST(RecorderStorageTest, BreakdownReflectsSchemeShape) {
  Topology topo;
  NodeId n1 = topo.AddNode(), n2 = topo.AddNode(), n3 = topo.AddNode();
  LinkProps lp{0.001, 1e9};
  ASSERT_TRUE(topo.AddLink(n1, n2, lp).ok());
  ASSERT_TRUE(topo.AddLink(n2, n3, lp).ok());
  topo.ComputeRoutes();

  auto run = [&](Scheme scheme) {
    auto program = apps::MakeForwardingProgram();
    EXPECT_TRUE(program.ok());
    auto bed =
        Testbed::Create(std::move(program).value(), &topo, scheme).value();
    EXPECT_TRUE(
        bed->system().InsertSlowTuple(apps::MakeRoute(n1, n3, n2)).ok());
    EXPECT_TRUE(
        bed->system().InsertSlowTuple(apps::MakeRoute(n2, n3, n3)).ok());
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(bed->system()
                      .ScheduleInject(apps::MakePacket(
                                          n1, n1, n3,
                                          "p" + std::to_string(i)),
                                      0.1 * (i + 1))
                      .ok());
    }
    bed->system().Run();
    return bed->TotalStorage();
  };

  StorageBreakdown exspan = run(Scheme::kExspan);
  StorageBreakdown basic = run(Scheme::kBasic);
  StorageBreakdown advanced = run(Scheme::kAdvanced);

  // ExSPAN materializes intermediates: its tuple store dominates.
  EXPECT_GT(exspan.tuple_store, basic.tuple_store);
  // Basic drops per-intermediate prov rows.
  EXPECT_GT(exspan.prov, basic.prov);
  // Advanced shares one tree across the 5 packets: its ruleExec storage is
  // several times below Basic's.
  EXPECT_GT(basic.rule_exec, 3 * advanced.rule_exec);
  // But each scheme keeps every input event (the irreducible delta).
  EXPECT_EQ(basic.event_store, advanced.event_store);
  EXPECT_GT(advanced.event_store, 0u);
  // Totals are ordered as in the paper.
  EXPECT_GT(exspan.Total(), basic.Total());
  EXPECT_GT(basic.Total(), advanced.Total());
}

TEST(RecorderStorageTest, PendingOutputFlushes) {
  // Drive the Advanced out-of-order path directly: an existFlag=true
  // output arriving before the shared tree registers must be parked and
  // flushed, not dropped.
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  AdvancedRecorder rec(&*program, *keys, 3);
  const Rule& r2 = program->FindRule("r2") != nullptr
                       ? *program->FindRule("r2")
                       : program->rules()[1];

  // First event (maintains) fires r2 but its output is delayed.
  TupleRef ev1 = MakeTupleRef(apps::MakePacket(2, 0, 2, "first"));
  ProvMeta m1 = rec.OnInject(2, ev1);
  ASSERT_TRUE(m1.maintain);
  m1 = rec.OnRuleFired(2, r2, ev1, m1, {},
                       MakeTupleRef(apps::MakeRecv(2, 0, 2, "first")));

  // Second event of the same class overtakes: existFlag set, no hmap yet.
  TupleRef ev2 = MakeTupleRef(apps::MakePacket(2, 0, 2, "second"));
  ProvMeta m2 = rec.OnInject(2, ev2);
  ASSERT_TRUE(m2.exist_flag);
  rec.OnOutput(2, MakeTupleRef(apps::MakeRecv(2, 0, 2, "second")), m2);
  EXPECT_EQ(rec.PendingOutputs(), 1u);
  EXPECT_EQ(rec.ProvAt(2).size(), 0u);

  // The first output lands: both prov rows appear, pending drains.
  rec.OnOutput(2, MakeTupleRef(apps::MakeRecv(2, 0, 2, "first")), m1);
  EXPECT_EQ(rec.PendingOutputs(), 0u);
  EXPECT_EQ(rec.ProvAt(2).size(), 2u);
}

}  // namespace
}  // namespace dpc
