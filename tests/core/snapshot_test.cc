// Checkpoint/restore of per-node provenance tables: snapshots round-trip
// byte-exactly and queries over restored tables return the original trees
// (a restart scenario).
#include "src/core/snapshot.h"

#include <gtest/gtest.h>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    n1_ = topo_.AddNode();
    n2_ = topo_.AddNode();
    n3_ = topo_.AddNode();
    LinkProps lp{0.001, 1e9};
    ASSERT_TRUE(topo_.AddLink(n1_, n2_, lp).ok());
    ASSERT_TRUE(topo_.AddLink(n2_, n3_, lp).ok());
    topo_.ComputeRoutes();
  }

  std::unique_ptr<Testbed> RunScenario(Scheme scheme) {
    auto program = apps::MakeForwardingProgram();
    EXPECT_TRUE(program.ok());
    auto bed =
        Testbed::Create(std::move(program).value(), &topo_, scheme).value();
    EXPECT_TRUE(
        bed->system().InsertSlowTuple(apps::MakeRoute(n1_, n3_, n2_)).ok());
    EXPECT_TRUE(
        bed->system().InsertSlowTuple(apps::MakeRoute(n2_, n3_, n3_)).ok());
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(bed->system()
                      .ScheduleInject(apps::MakePacket(
                                          n1_, n1_, n3_,
                                          "p" + std::to_string(i)),
                                      0.1 * (i + 1))
                      .ok());
    }
    bed->system().Run();
    return bed;
  }

  Topology topo_;
  NodeId n1_, n2_, n3_;
};

TEST_F(SnapshotTest, RoundTripsByteExactly) {
  auto bed = RunScenario(Scheme::kAdvanced);
  for (NodeId n : {n1_, n2_, n3_}) {
    NodeSnapshot snap = bed->advanced()->SnapshotAt(n);
    ByteWriter w;
    snap.Serialize(w);
    EXPECT_EQ(w.size(), snap.SerializedSize());
    ByteReader r(w.bytes());
    auto back = NodeSnapshot::Deserialize(r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->node, n);
    EXPECT_EQ(back->prov, snap.prov);
    EXPECT_EQ(back->rule_exec, snap.rule_exec);
    EXPECT_EQ(back->events.size(), snap.events.size());
    EXPECT_EQ(back->tuples.size(), snap.tuples.size());
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST_F(SnapshotTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ByteReader r(garbage);
  auto snap = NodeSnapshot::Deserialize(r);
  EXPECT_FALSE(snap.ok());
}

TEST_F(SnapshotTest, RestoredTablesAnswerLookups) {
  auto bed = RunScenario(Scheme::kBasic);
  NodeSnapshot snap = bed->basic()->SnapshotAt(n3_);
  auto restored = RestoreTables(snap);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->prov.size(), bed->basic()->ProvAt(n3_).size());
  EXPECT_EQ(restored->rule_exec.size(),
            bed->basic()->RuleExecAt(n3_).size());
  // A specific lookup survives the round trip.
  Tuple recv = apps::MakeRecv(n3_, n1_, n3_, "p0");
  auto rows = restored->prov.FindByVid(recv.Vid());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0]->rule.loc, n3_);
}

TEST_F(SnapshotTest, RestartScenarioKeepsQueriesWorking) {
  // Run under Advanced, snapshot every node, restore into a fresh
  // recorder-like table set, and reconstruct a tree manually via the
  // restored chain to prove nothing depends on in-memory state.
  auto bed = RunScenario(Scheme::kAdvanced);
  std::vector<std::vector<uint8_t>> files;
  for (NodeId n : {n1_, n2_, n3_}) {
    ByteWriter w;
    bed->advanced()->SnapshotAt(n).Serialize(w);
    files.push_back(w.Take());
  }

  // "Restart": everything below uses only the serialized bytes.
  std::vector<RestoredTables> nodes;
  for (const auto& bytes : files) {
    ByteReader r(bytes);
    auto snap = NodeSnapshot::Deserialize(r);
    ASSERT_TRUE(snap.ok());
    auto restored = RestoreTables(*snap);
    ASSERT_TRUE(restored.ok());
    nodes.push_back(std::move(restored).value());
  }

  Tuple recv = apps::MakeRecv(n3_, n1_, n3_, "p2");
  auto prov_rows = nodes[2].prov.FindByVid(recv.Vid());
  ASSERT_EQ(prov_rows.size(), 1u);
  // Follow the chain n3 -> n2 -> n1 across the restored tables.
  NodeRid at = prov_rows[0]->rule;
  std::vector<std::string> rules;
  int guard = 0;
  while (!at.IsNull() && guard++ < 10) {
    auto rows = nodes[at.loc].rule_exec.FindByRid(at.rid);
    ASSERT_EQ(rows.size(), 1u);
    rules.push_back(rows[0]->rule_id);
    at = rows[0]->next;
  }
  EXPECT_EQ(rules, (std::vector<std::string>{"r2", "r1", "r1"}));
  // The event is retrievable from the restored event store at n1.
  EXPECT_NE(nodes[0].events.Find(prov_rows[0]->evid), nullptr);
}

TEST_F(SnapshotTest, InterClassSnapshotsIncludeSplitTables) {
  auto bed = RunScenario(Scheme::kAdvancedInterClass);
  NodeSnapshot snap = bed->advanced()->SnapshotAt(n2_);
  EXPECT_TRUE(snap.rule_exec.empty());
  EXPECT_FALSE(snap.exec_nodes.empty());
  EXPECT_FALSE(snap.exec_links.empty());
  ByteWriter w;
  snap.Serialize(w);
  ByteReader r(w.bytes());
  auto back = NodeSnapshot::Deserialize(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->exec_nodes, snap.exec_nodes);
  EXPECT_EQ(back->exec_links, snap.exec_links);
}

TEST_F(SnapshotTest, SnapshotSizeTracksStorageBreakdown) {
  auto bed = RunScenario(Scheme::kExspan);
  for (NodeId n : {n1_, n2_, n3_}) {
    NodeSnapshot snap = bed->exspan()->SnapshotAt(n);
    StorageBreakdown breakdown = bed->exspan()->StorageAt(n);
    // The snapshot adds framing (magic, counts, schema flags) but its row
    // payload matches the breakdown's accounting to within that overhead.
    EXPECT_GE(snap.SerializedSize() + 20 * snap.events.size() +
                  20 * snap.tuples.size(),
              breakdown.Total());
    EXPECT_LT(snap.SerializedSize(),
              breakdown.Total() + 64 + 8 * snap.prov.size());
  }
}

}  // namespace
}  // namespace dpc
