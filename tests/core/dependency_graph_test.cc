// Attribute-level dependency graph construction (§5.2, Appendix C).
#include "src/core/dependency_graph.h"

#include <gtest/gtest.h>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"

namespace dpc {
namespace {

TEST(DependencyGraphTest, ForwardingMatchesAppendixC) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok());
  DependencyGraph g = DependencyGraph::Build(*p);

  // Condition (1): event attrs join same-variable slow-changing attrs.
  EXPECT_TRUE(g.HasEdge({"packet", 0}, {"route", 0}));  // L
  EXPECT_TRUE(g.HasEdge({"packet", 2}, {"route", 1}));  // D
  // Condition (2): event attrs connect to same-variable head attrs.
  EXPECT_TRUE(g.HasEdge({"packet", 1}, {"recv", 1}));   // S
  EXPECT_TRUE(g.HasEdge({"packet", 3}, {"recv", 3}));   // DT
  // Condition (3): D == L connects packet:0 and packet:2 (paper's example).
  EXPECT_TRUE(g.HasEdge({"packet", 0}, {"packet", 2}));
  // Head attr fed by a slow tuple: packet:0 (N in r1) joins route:2.
  EXPECT_TRUE(g.HasEdge({"packet", 0}, {"route", 2}));

  // Non-edges: the payload never touches routing state.
  EXPECT_FALSE(g.HasEdge({"packet", 3}, {"route", 0}));
  EXPECT_FALSE(g.HasEdge({"packet", 3}, {"route", 1}));
  EXPECT_FALSE(g.HasEdge({"packet", 1}, {"route", 1}));
}

TEST(DependencyGraphTest, ReachabilityIsTransitive) {
  auto p = apps::MakeDnsProgram();
  ASSERT_TRUE(p.ok());
  DependencyGraph g = DependencyGraph::Build(*p);
  // url:1 (URL) -> request:1 -> nameServer:1 (via the f_isSubDomain
  // constraint) across two rules.
  EXPECT_TRUE(g.Reachable({"url", 1}, {"nameServer", 1}));
  EXPECT_TRUE(g.Reachable({"url", 1}, {"addressRecord", 1}));
  // The request id never reaches any slow-changing attribute.
  EXPECT_FALSE(g.Reachable({"url", 2}, {"nameServer", 1}));
  EXPECT_FALSE(g.Reachable({"url", 2}, {"rootServer", 1}));
}

TEST(DependencyGraphTest, ReachableSetIncludesSelf) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok());
  DependencyGraph g = DependencyGraph::Build(*p);
  auto reach = g.ReachableSet({"packet", 3});
  EXPECT_TRUE(reach.count({"packet", 3}) > 0);
  EXPECT_TRUE(reach.count({"recv", 3}) > 0);
}

TEST(DependencyGraphTest, AssignmentEdges) {
  auto p = Program::Parse(
      "a(@X, Y) :- e(@X, Z), s(@X), Y := Z * 2.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  DependencyGraph g = DependencyGraph::Build(*p);
  // Condition (4): rhs var Z connects to the receiving head attr a:1.
  EXPECT_TRUE(g.HasEdge({"e", 1}, {"a", 1}));
}

TEST(DependencyGraphTest, ConstraintEdgesSpanEventAndSlow) {
  auto p = Program::Parse(
      "a(@X) :- e(@X, U), s(@X, D), f_isSubDomain(D, U) == true.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  DependencyGraph g = DependencyGraph::Build(*p);
  EXPECT_TRUE(g.HasEdge({"e", 1}, {"s", 1}));
}

TEST(DependencyGraphTest, IsolatedAttributesHaveNodes) {
  auto p = Program::Parse("a(@X) :- e(@X, Dead), s(@X).");
  ASSERT_TRUE(p.ok());
  DependencyGraph g = DependencyGraph::Build(*p);
  EXPECT_TRUE(g.HasNode({"e", 1}));
  EXPECT_TRUE(g.NeighborsOf({"e", 1}).empty());
}

TEST(DependencyGraphTest, TouchesSlowChanging) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok());
  DependencyGraph g = DependencyGraph::Build(*p);
  EXPECT_TRUE(g.TouchesSlowChanging({"packet", 2}, *p));  // joins route:1
  EXPECT_TRUE(g.TouchesSlowChanging({"route", 1}, *p));   // is slow itself
  EXPECT_FALSE(g.TouchesSlowChanging({"packet", 3}, *p));
}

TEST(DependencyGraphTest, CountsAreSane) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok());
  DependencyGraph g = DependencyGraph::Build(*p);
  // packet(4) + route(3) + recv(4) attributes.
  EXPECT_EQ(g.Nodes().size(), 11u);
  EXPECT_GT(g.NumEdges(), 5u);
  EXPECT_FALSE(g.ToString().empty());
}

TEST(DependencyGraphTest, NoSelfEdges) {
  auto p = apps::MakeDnsProgram();
  ASSERT_TRUE(p.ok());
  DependencyGraph g = DependencyGraph::Build(*p);
  for (const AttrNode& n : g.Nodes()) {
    EXPECT_EQ(g.NeighborsOf(n).count(n), 0u) << n.ToString();
  }
}

}  // namespace
}  // namespace dpc
