// Message-driven distributed querying (§5.6): the trees must equal the
// analytic queriers' output for every scheme; measured latency accrues
// from the simulated network and parallel branch fan-out caps it at the
// slowest branch rather than the branch sum.
#include "src/core/distributed_query.h"

#include <gtest/gtest.h>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class DistributedQueryTest : public ::testing::TestWithParam<Scheme> {
 protected:
  void SetUp() override {
    TransitStubParams params;
    params.num_transit = 2;
    params.stubs_per_transit = 2;
    params.nodes_per_stub = 4;
    topo_ = MakeTransitStub(params);

    auto program = apps::MakeForwardingProgram();
    ASSERT_TRUE(program.ok());
    auto bed = Testbed::Create(std::move(program).value(), &topo_.graph,
                               GetParam());
    ASSERT_TRUE(bed.ok());
    bed_ = std::move(bed).value();

    Rng rng(11);
    pairs_ = apps::PickCommunicatingPairs(topo_, 6, rng);
    for (auto [s, d] : pairs_) {
      ASSERT_TRUE(
          apps::InstallRoutesForPair(bed_->system(), topo_.graph, s, d).ok());
    }
    double t = 0;
    for (int round = 0; round < 3; ++round) {
      for (auto [s, d] : pairs_) {
        ASSERT_TRUE(bed_->system()
                        .ScheduleInject(
                            apps::MakePacket(
                                s, s, d,
                                apps::MakePayload(64, round * 100 + s)),
                            t += 0.001)
                        .ok());
      }
    }
    bed_->system().Run();
    ASSERT_GT(bed_->system().stats().outputs, 0u);
  }

  std::unique_ptr<DistributedQuerier> MakeDistributed() {
    switch (GetParam()) {
      case Scheme::kExspan:
        return DistributedQuerier::ForExspan(bed_->exspan(), &topo_.graph,
                                             &bed_->queue());
      case Scheme::kBasic:
        return DistributedQuerier::ForBasic(
            bed_->basic(), &bed_->program(), &bed_->system().functions(),
            &topo_.graph, &bed_->queue());
      case Scheme::kAdvanced:
      case Scheme::kAdvancedInterClass:
        return DistributedQuerier::ForAdvanced(
            bed_->advanced(), &bed_->program(), &bed_->system().functions(),
            &topo_.graph, &bed_->queue());
      default:
        return nullptr;
    }
  }

  TransitStubTopology topo_;
  std::unique_ptr<Testbed> bed_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;
};

TEST_P(DistributedQueryTest, TreesMatchAnalyticQuerier) {
  auto distributed = MakeDistributed();
  ASSERT_NE(distributed, nullptr);
  auto analytic = bed_->MakeQuerier();

  // Only the Advanced schemes ship the EVID with the output (§5.3);
  // ExSPAN and Basic queries identify derivations by tuple alone.
  bool use_evid = GetParam() == Scheme::kAdvanced ||
                  GetParam() == Scheme::kAdvancedInterClass;
  auto sorted = [](std::vector<ProvTree> trees) {
    std::sort(trees.begin(), trees.end(),
              [](const ProvTree& a, const ProvTree& b) {
                ByteWriter wa, wb;
                a.Serialize(wa);
                b.Serialize(wb);
                return wa.bytes() < wb.bytes();
              });
    return trees;
  };
  size_t checked = 0;
  for (const OutputRecord& out : bed_->system().AllOutputs()) {
    Vid evid = out.meta.evid;
    const Vid* evid_ptr = use_evid ? &evid : nullptr;
    auto expected = analytic->Query(out.tuple, evid_ptr);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto got = distributed->QueryAndWait(out.tuple, evid_ptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(sorted(got->trees), sorted(expected->trees))
        << out.tuple.ToString();
    EXPECT_GT(got->latency_s, 0);
    ++checked;
  }
  EXPECT_GT(checked, 10u);
  EXPECT_GT(distributed->network().total_bytes_sent(), 0u);
}

TEST_P(DistributedQueryTest, MissingTupleFailsCleanly) {
  auto distributed = MakeDistributed();
  auto res = distributed->QueryAndWait(
      apps::MakeRecv(pairs_[0].second, 1, pairs_[0].second, "ghost"));
  EXPECT_TRUE(res.status().IsNotFound());
}

TEST_P(DistributedQueryTest, AsyncCompletionDeliversOnQueue) {
  auto distributed = MakeDistributed();
  OutputRecord out = bed_->system().AllOutputs().front();
  bool fired = false;
  distributed->QueryAsync(out.tuple, nullptr, bed_->queue().now() + 1.0,
                          [&](Result<QueryResult> res) {
                            EXPECT_TRUE(res.ok());
                            fired = true;
                          });
  EXPECT_FALSE(fired);
  bed_->queue().RunAll();
  EXPECT_TRUE(fired);
}

TEST_P(DistributedQueryTest, ReliableTransportMatchesAnalyticUnderLoss) {
  // 20% per-traversal loss on the query network: with ack/retransmit the
  // protocol must still reconstruct exactly the analytic trees.
  auto distributed = MakeDistributed();
  distributed->network().SetLossRate(0.2, /*seed=*/17);
  TransportOptions retry_forever;
  retry_forever.max_attempts = 0;  // loss is transient: never give up
  distributed->EnableReliableTransport(retry_forever);
  auto analytic = bed_->MakeQuerier();
  bool use_evid = GetParam() == Scheme::kAdvanced ||
                  GetParam() == Scheme::kAdvancedInterClass;
  auto sorted = [](std::vector<ProvTree> trees) {
    std::sort(trees.begin(), trees.end(),
              [](const ProvTree& a, const ProvTree& b) {
                ByteWriter wa, wb;
                a.Serialize(wa);
                b.Serialize(wb);
                return wa.bytes() < wb.bytes();
              });
    return trees;
  };
  size_t checked = 0;
  for (const OutputRecord& out : bed_->system().AllOutputs()) {
    Vid evid = out.meta.evid;
    const Vid* evid_ptr = use_evid ? &evid : nullptr;
    auto expected = analytic->Query(out.tuple, evid_ptr);
    ASSERT_TRUE(expected.ok());
    auto got = distributed->QueryAndWait(out.tuple, evid_ptr);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(sorted(got->trees), sorted(expected->trees));
    ++checked;
  }
  EXPECT_GT(checked, 10u);
  EXPECT_GT(distributed->network().dropped_messages(), 0u);
  EXPECT_GT(distributed->transport()->stats().retransmissions, 0u);
  EXPECT_EQ(distributed->transport()->stats().delivery_failures, 0u);
}

TEST_P(DistributedQueryTest, LossyQueriesNeverHangOrAbort) {
  // Raw lossy network, no transport: every query must still terminate —
  // with the result, or with DeadlineExceeded once loss orphans it.
  auto distributed = MakeDistributed();
  distributed->network().SetLossRate(0.6, /*seed=*/23);
  size_t ok = 0, deadline = 0;
  for (const OutputRecord& out : bed_->system().AllOutputs()) {
    auto res = distributed->QueryAndWait(out.tuple);
    if (res.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(res.status().IsDeadlineExceeded())
          << res.status().ToString();
      ++deadline;
    }
  }
  EXPECT_EQ(ok + deadline, bed_->system().AllOutputs().size());
  EXPECT_GT(deadline, 0u);  // 60% loss over many multi-hop queries
}

TEST_P(DistributedQueryTest, PartitionedQueryHitsTheDeadline) {
  auto distributed = MakeDistributed();
  distributed->set_default_deadline_s(0.5);
  // Isolate every node: all remote query frames are dropped.
  std::vector<int> groups(topo_.graph.num_nodes());
  for (size_t i = 0; i < groups.size(); ++i) groups[i] = static_cast<int>(i);
  ASSERT_TRUE(distributed->network().SetPartition(groups).ok());
  size_t completions = 0, deadline = 0;
  for (const OutputRecord& out : bed_->system().AllOutputs()) {
    auto res = distributed->QueryAndWait(out.tuple);
    ++completions;
    if (!res.ok()) {
      ASSERT_TRUE(res.status().IsDeadlineExceeded())
          << res.status().ToString();
      ++deadline;
    }
  }
  EXPECT_EQ(completions, bed_->system().AllOutputs().size());
  EXPECT_GT(deadline, 0u);
}

TEST_P(DistributedQueryTest, TransportGiveUpFailsQueryUnderPartition) {
  // Reliable transport with bounded attempts across a permanent partition:
  // the transport abandons the frame and the query fails cleanly instead
  // of retrying forever.
  auto distributed = MakeDistributed();
  TransportOptions options;
  options.initial_rto_s = 0.05;
  options.max_attempts = 3;
  distributed->EnableReliableTransport(options);
  std::vector<int> groups(topo_.graph.num_nodes());
  for (size_t i = 0; i < groups.size(); ++i) groups[i] = static_cast<int>(i);
  ASSERT_TRUE(distributed->network().SetPartition(groups).ok());
  size_t deadline = 0;
  for (const OutputRecord& out : bed_->system().AllOutputs()) {
    auto res = distributed->QueryAndWait(out.tuple);
    if (!res.ok()) {
      ASSERT_TRUE(res.status().IsDeadlineExceeded())
          << res.status().ToString();
      ++deadline;
    }
  }
  EXPECT_GT(deadline, 0u);
  EXPECT_GT(distributed->transport()->stats().delivery_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, DistributedQueryTest,
    ::testing::Values(Scheme::kExspan, Scheme::kBasic, Scheme::kAdvanced,
                      Scheme::kAdvancedInterClass),
    [](const auto& info) {
      std::string name = apps::SchemeName(info.param);
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      return name;
    });

TEST(DistributedQueryLatencyTest, ParallelBranchesBeatSequentialSum) {
  // A diamond with multicast: the analytic model walks branches
  // depth-first (sum), the distributed protocol fans out (max).
  Topology topo;
  NodeId n1 = topo.AddNode(), n2 = topo.AddNode(), n3 = topo.AddNode(),
         n4 = topo.AddNode();
  LinkProps lp{0.005, 1e9};
  ASSERT_TRUE(topo.AddLink(n1, n2, lp).ok());
  ASSERT_TRUE(topo.AddLink(n2, n3, lp).ok());
  ASSERT_TRUE(topo.AddLink(n1, n4, lp).ok());
  ASSERT_TRUE(topo.AddLink(n4, n3, lp).ok());
  topo.ComputeRoutes();

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto bed =
      Testbed::Create(std::move(program).value(), &topo, Scheme::kExspan)
          .value();
  System& sys = bed->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1, n3, n2)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1, n3, n4)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2, n3, n3)).ok());
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n4, n3, n3)).ok());
  ASSERT_TRUE(
      sys.ScheduleInject(apps::MakePacket(n1, n1, n3, "m"), 0.1).ok());
  sys.Run();

  Tuple recv = apps::MakeRecv(n3, n1, n3, "m");
  auto analytic = bed->MakeQuerier()->Query(recv);
  auto distributed =
      DistributedQuerier::ForExspan(bed->exspan(), &topo, &bed->queue());
  auto parallel = distributed->QueryAndWait(recv);
  ASSERT_TRUE(analytic.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->trees.size(), 2u);
  ASSERT_EQ(analytic->trees.size(), 2u);
  for (const ProvTree& tree : parallel->trees) {
    EXPECT_NE(std::find(analytic->trees.begin(), analytic->trees.end(),
                        tree),
              analytic->trees.end());
  }
  EXPECT_LT(parallel->latency_s, analytic->latency_s);
}

}  // namespace
}  // namespace dpc
