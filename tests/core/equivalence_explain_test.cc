// Exact equivalence-key index sets and per-attribute explanations for the
// paper's two applications (§2 packet forwarding, §6 DNS resolution), plus
// the hardened recorder-ingest path: arity-mismatched events must be
// rejected with a Status instead of crashing the node.
#include <gtest/gtest.h>

#include "src/apps/dns.h"
#include "src/apps/extras.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

std::vector<size_t> KeyIndices(const std::vector<KeyExplanation>& expl) {
  std::vector<size_t> out;
  for (const KeyExplanation& ex : expl) {
    if (ex.is_key) out.push_back(ex.attr.index);
  }
  return out;
}

TEST(EquivalenceExplainTest, ForwardingKeysAreLocationAndDestination) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());

  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->event_relation(), "packet");
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 2}));

  auto expl = ExplainEquivalenceKeys(*program);
  ASSERT_TRUE(expl.ok());
  ASSERT_EQ(expl->size(), 4u);  // packet(@L, S, D, DT)
  EXPECT_EQ(KeyIndices(*expl), keys->indices());

  const KeyExplanation& loc = (*expl)[0];
  EXPECT_EQ(loc.var, "L");
  EXPECT_TRUE(loc.is_key);
  EXPECT_EQ(loc.reason, KeyReason::kLocation);
  EXPECT_TRUE(loc.chain.empty());

  const KeyExplanation& src = (*expl)[1];
  EXPECT_EQ(src.var, "S");
  EXPECT_FALSE(src.is_key);
  EXPECT_EQ(src.reason, KeyReason::kUnreachable);

  // D is a key because it joins against the slow-changing route table; the
  // witness chain is the one-hop edge packet:2 -> route:1.
  const KeyExplanation& dst = (*expl)[2];
  EXPECT_EQ(dst.var, "D");
  EXPECT_TRUE(dst.is_key);
  EXPECT_EQ(dst.reason, KeyReason::kReachesSlowChanging);
  ASSERT_EQ(dst.chain.size(), 2u);
  EXPECT_EQ(dst.chain.front().ToString(), "packet:2");
  EXPECT_EQ(dst.chain.back().ToString(), "route:1");
  EXPECT_EQ(dst.ToString(),
            "packet:2 (D): key, reaches-slow-changing via "
            "packet:2 -> route:1");

  const KeyExplanation& payload = (*expl)[3];
  EXPECT_EQ(payload.var, "DT");
  EXPECT_FALSE(payload.is_key);
  EXPECT_EQ(payload.reason, KeyReason::kUnreachable);
}

TEST(EquivalenceExplainTest, DnsKeysAreLocationAndUrl) {
  auto program = apps::MakeDnsProgram();
  ASSERT_TRUE(program.ok());

  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->event_relation(), "url");
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 1}));

  auto expl = ExplainEquivalenceKeys(*program);
  ASSERT_TRUE(expl.ok());
  ASSERT_EQ(expl->size(), 3u);  // url(@HST, URL, RQID)
  EXPECT_EQ(KeyIndices(*expl), keys->indices());

  EXPECT_EQ((*expl)[0].var, "HST");
  EXPECT_EQ((*expl)[0].reason, KeyReason::kLocation);

  // URL reaches the slow-changing addressRecord table through the request
  // chain; the witness must start at url:1 and end at a slow attribute.
  const KeyExplanation& url = (*expl)[1];
  EXPECT_EQ(url.var, "URL");
  EXPECT_TRUE(url.is_key);
  EXPECT_EQ(url.reason, KeyReason::kReachesSlowChanging);
  ASSERT_GE(url.chain.size(), 2u);
  EXPECT_EQ(url.chain.front().ToString(), "url:1");
  EXPECT_EQ(url.chain.back().relation, "addressRecord");

  EXPECT_EQ((*expl)[2].var, "RQID");
  EXPECT_FALSE((*expl)[2].is_key);
}

TEST(EquivalenceExplainTest, ExplanationsMatchGetEquiKeysForAllInRepoApps) {
  // Every bundled application: the independently-derived explanation keys
  // must reproduce exactly the GetEquiKeys index set, with a witness chain
  // behind every reachability-based key.
  std::vector<Result<Program>> programs;
  programs.push_back(apps::MakeForwardingProgram());
  programs.push_back(apps::MakeDnsProgram());
  programs.push_back(apps::MakeArpProgram());
  programs.push_back(apps::MakeDhcpProgram());
  for (auto& program : programs) {
    ASSERT_TRUE(program.ok());
    auto keys = ComputeEquivalenceKeys(*program);
    ASSERT_TRUE(keys.ok()) << program->name();
    auto expl = ExplainEquivalenceKeys(*program);
    ASSERT_TRUE(expl.ok()) << program->name();
    EXPECT_EQ(KeyIndices(*expl), keys->indices()) << program->name();
    for (const KeyExplanation& ex : *expl) {
      if (ex.reason == KeyReason::kReachesSlowChanging ||
          ex.reason == KeyReason::kReachesConstraint) {
        ASSERT_FALSE(ex.chain.empty()) << program->name() << ": "
                                       << ex.ToString();
        EXPECT_EQ(ex.chain.front(), ex.attr);
      }
    }
  }
}

TEST(EquivalenceExplainTest, ConstraintReachabilityExplainsKey) {
  // B reaches no slow-changing attribute but is compared in a constraint,
  // so the conservative strengthening makes it a key.
  auto program = Program::Parse(
      "r1 out(@N, A) :- ev(@L, A, B), s(@L, A, N), B >= 3.\n");
  ASSERT_TRUE(program.ok());

  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->indices(), (std::vector<size_t>{0, 1, 2}));

  auto expl = ExplainEquivalenceKeys(*program);
  ASSERT_TRUE(expl.ok());
  const KeyExplanation& b = (*expl)[2];
  EXPECT_TRUE(b.is_key);
  EXPECT_EQ(b.reason, KeyReason::kReachesConstraint);
  ASSERT_FALSE(b.chain.empty());
  EXPECT_EQ(b.chain.front().ToString(), "ev:2");
}

TEST(EquivalenceExplainTest, ValidateEventRejectsMalformedEvents) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  ASSERT_TRUE(keys.ok());

  Tuple good = apps::MakePacket(0, 1, 2, "x");
  EXPECT_TRUE(keys->ValidateEvent(good).ok());
  EXPECT_TRUE(keys->CheckedHashOf(good).ok());

  // Wrong relation.
  Tuple wrong_rel = apps::MakeRoute(0, 2, 1);
  Status st = keys->ValidateEvent(wrong_rel);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_FALSE(keys->CheckedHashOf(wrong_rel).ok());

  // Arity too small to cover key index 2 (the destination).
  Tuple short_event = Tuple::Make("packet", 0, {Value::Int(1)});
  st = keys->ValidateEvent(short_event);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_FALSE(keys->CheckedHashOf(short_event).ok());

  // HashOf on a short tuple must not read out of bounds (it skips missing
  // indices); the checked path is the one that reports the problem.
  (void)keys->HashOf(short_event);
}

TEST(EquivalenceExplainTest, ScheduleInjectRejectsArityMismatch) {
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());

  Topology topo;
  topo.AddNodes(2);
  ASSERT_TRUE(topo.AddLink(0, 1, LinkProps{0.001, 1e9}).ok());
  topo.ComputeRoutes();

  auto bed = Testbed::Create(std::move(program).value(), &topo,
                             Scheme::kAdvanced);
  ASSERT_TRUE(bed.ok());

  // packet has 4 attributes; a 2-attribute event must be rejected at
  // ingest, before it can reach the recorder's key hashing.
  Tuple bad = Tuple::Make("packet", 0, {Value::Int(1)});
  Status st = (*bed)->system().ScheduleInject(bad, 0.1);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();

  Tuple good = apps::MakePacket(0, 0, 1, "x");
  EXPECT_TRUE((*bed)->system().ScheduleInject(good, 0.2).ok());
  (*bed)->system().Run();
}

}  // namespace
}  // namespace dpc
