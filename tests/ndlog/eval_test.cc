// Expression evaluation, atom unification, and single-rule firing.
#include "src/ndlog/eval.h"

#include <gtest/gtest.h>

#include "src/ndlog/parser.h"

namespace dpc {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  ExprPtr Parse(const std::string& expr_src) {
    // Wrap the expression in a throwaway rule to reuse the parser.
    auto rules = ParseRules("a(@X) :- e(@X, A, B, C, S), Y := " + expr_src +
                            ".");
    EXPECT_TRUE(rules.ok()) << rules.status().ToString();
    return rules->front().assignments.front().expr;
  }

  Result<Value> Eval(const std::string& expr_src) {
    return EvalExpr(*Parse(expr_src), env_, fns_);
  }

  Bindings env_{{"A", Value::Int(6)},
                {"B", Value::Int(3)},
                {"C", Value::Int(-2)},
                {"S", Value::Str("www.hello.com")}};
  FunctionRegistry fns_ = DefaultFunctions();
};

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("A + B").value(), Value::Int(9));
  EXPECT_EQ(Eval("A - B").value(), Value::Int(3));
  EXPECT_EQ(Eval("A * B").value(), Value::Int(18));
  EXPECT_EQ(Eval("A / B").value(), Value::Int(2));
  EXPECT_EQ(Eval("A % 4").value(), Value::Int(2));
  EXPECT_EQ(Eval("A + B * C").value(), Value::Int(0));
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_EQ(Eval("A == 6").value(), Value::Bool(true));
  EXPECT_EQ(Eval("A != 6").value(), Value::Bool(false));
  EXPECT_EQ(Eval("B < A").value(), Value::Bool(true));
  EXPECT_EQ(Eval("B <= 3").value(), Value::Bool(true));
  EXPECT_EQ(Eval("C > 0").value(), Value::Bool(false));
  EXPECT_EQ(Eval("C >= -2").value(), Value::Bool(true));
}

TEST_F(EvalTest, StringOperations) {
  EXPECT_EQ(Eval("S == \"www.hello.com\"").value(), Value::Bool(true));
  EXPECT_EQ(Eval("S + \"x\"").value(), Value::Str("www.hello.comx"));
  EXPECT_EQ(Eval("\"a\" < \"b\"").value(), Value::Bool(true));
}

TEST_F(EvalTest, CrossTypeEquality) {
  EXPECT_EQ(Eval("S == 5").value(), Value::Bool(false));
  EXPECT_EQ(Eval("S != 5").value(), Value::Bool(true));
  EXPECT_FALSE(Eval("S < 5").ok());  // ordered cross-type comparison
}

TEST_F(EvalTest, FunctionCalls) {
  EXPECT_EQ(Eval("f_isSubDomain(\"hello.com\", S)").value(),
            Value::Bool(true));
  EXPECT_EQ(Eval("f_size(S)").value(), Value::Int(13));
  EXPECT_EQ(Eval("f_min(A, B)").value(), Value::Int(3));
  EXPECT_EQ(Eval("f_max(A, C)").value(), Value::Int(6));
  EXPECT_EQ(Eval("f_concat(\"a\", \"b\")").value(), Value::Str("ab"));
}

TEST_F(EvalTest, Errors) {
  EXPECT_FALSE(Eval("Z + 1").ok());              // unbound variable
  EXPECT_FALSE(Eval("A / 0").ok());              // division by zero
  EXPECT_FALSE(Eval("A % 0").ok());              // modulo by zero
  EXPECT_FALSE(Eval("S * 2").ok());              // string arithmetic
  EXPECT_FALSE(Eval("f_undefined(A)").ok());     // unknown function
  EXPECT_FALSE(Eval("f_size(A)").ok());          // wrong argument type
  EXPECT_FALSE(Eval("f_min(A)").ok());           // wrong arity
}

TEST(MatchAtomTest, BindsVariables) {
  Rule r = ParseRules("a(@X) :- pkt(@L, D, D).").value().front();
  Bindings env;
  Tuple ok = Tuple::Make("pkt", 1, {Value::Int(5), Value::Int(5)});
  EXPECT_TRUE(MatchAtom(r.atoms[0], ok, env));
  EXPECT_EQ(env["L"], Value::Int(1));
  EXPECT_EQ(env["D"], Value::Int(5));
}

TEST(MatchAtomTest, RepeatedVariableMustAgree) {
  Rule r = ParseRules("a(@X) :- pkt(@L, D, D).").value().front();
  Bindings env;
  Tuple bad = Tuple::Make("pkt", 1, {Value::Int(5), Value::Int(6)});
  EXPECT_FALSE(MatchAtom(r.atoms[0], bad, env));
}

TEST(MatchAtomTest, ConstantMustMatch) {
  Rule r = ParseRules("a(@X) :- pkt(@L, 7).").value().front();
  Bindings env;
  EXPECT_TRUE(MatchAtom(r.atoms[0], Tuple::Make("pkt", 1, {Value::Int(7)}),
                        env));
  Bindings env2;
  EXPECT_FALSE(MatchAtom(r.atoms[0], Tuple::Make("pkt", 1, {Value::Int(8)}),
                         env2));
}

TEST(MatchAtomTest, RelationAndArityMustMatch) {
  Rule r = ParseRules("a(@X) :- pkt(@L, D).").value().front();
  Bindings env;
  EXPECT_FALSE(
      MatchAtom(r.atoms[0], Tuple::Make("other", 1, {Value::Int(1)}), env));
  EXPECT_FALSE(MatchAtom(r.atoms[0], Tuple::Make("pkt", 1, {}), env));
}

TEST(MatchAtomTest, ExistingBindingConstrains) {
  Rule r = ParseRules("a(@X) :- pkt(@L, D).").value().front();
  Bindings env{{"D", Value::Int(9)}};
  EXPECT_FALSE(
      MatchAtom(r.atoms[0], Tuple::Make("pkt", 1, {Value::Int(8)}), env));
}

TEST(InstantiateAtomTest, SubstitutesAndFailsOnUnbound) {
  Rule r = ParseRules("a(@X, D, 3) :- e(@X, D).").value().front();
  Bindings env{{"X", Value::Int(1)}, {"D", Value::Int(2)}};
  auto t = InstantiateAtom(r.head, env);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, Tuple::Make("a", 1, {Value::Int(2), Value::Int(3)}));
  Bindings partial{{"X", Value::Int(1)}};
  EXPECT_FALSE(InstantiateAtom(r.head, partial).ok());
}

class FireRuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto rules = ParseRules(
        "r1 packet(@N, S, D) :- packet(@L, S, D), route(@L, D, N).");
    ASSERT_TRUE(rules.ok());
    rule_ = rules->front();
  }

  Rule rule_;
  Database db_;
  FunctionRegistry fns_ = DefaultFunctions();
};

TEST_F(FireRuleTest, NoConditionMatchNoFiring) {
  Tuple pkt = Tuple::Make("packet", 1, {Value::Int(1), Value::Int(3)});
  auto firings = FireRule(rule_, pkt, db_, fns_);
  ASSERT_TRUE(firings.ok());
  EXPECT_TRUE(firings->empty());
}

TEST_F(FireRuleTest, SingleJoin) {
  db_.Insert(Tuple::Make("route", 1, {Value::Int(3), Value::Int(2)}));
  Tuple pkt = Tuple::Make("packet", 1, {Value::Int(1), Value::Int(3)});
  auto firings = FireRule(rule_, pkt, db_, fns_);
  ASSERT_TRUE(firings.ok());
  ASSERT_EQ(firings->size(), 1u);
  EXPECT_EQ((*firings)[0].head,
            Tuple::Make("packet", 2, {Value::Int(1), Value::Int(3)}));
  ASSERT_EQ((*firings)[0].slow_tuples.size(), 1u);
}

TEST_F(FireRuleTest, MultipleMatchesFireMultipleTimes) {
  // Two routes for the same destination: multicast-style double firing.
  db_.Insert(Tuple::Make("route", 1, {Value::Int(3), Value::Int(2)}));
  db_.Insert(Tuple::Make("route", 1, {Value::Int(3), Value::Int(4)}));
  Tuple pkt = Tuple::Make("packet", 1, {Value::Int(1), Value::Int(3)});
  auto firings = FireRule(rule_, pkt, db_, fns_);
  ASSERT_TRUE(firings.ok());
  EXPECT_EQ(firings->size(), 2u);
}

TEST_F(FireRuleTest, EventMismatchIsEmpty) {
  db_.Insert(Tuple::Make("route", 1, {Value::Int(3), Value::Int(2)}));
  Tuple wrong = Tuple::Make("other", 1, {Value::Int(1), Value::Int(3)});
  auto firings = FireRule(rule_, wrong, db_, fns_);
  ASSERT_TRUE(firings.ok());
  EXPECT_TRUE(firings->empty());
}

TEST_F(FireRuleTest, ConstraintFiltersFiring) {
  auto rules = ParseRules("r2 recv(@L, D) :- packet(@L, D), D == L.");
  ASSERT_TRUE(rules.ok());
  Tuple at_dest = Tuple::Make("packet", 3, {Value::Int(3)});
  Tuple in_flight = Tuple::Make("packet", 2, {Value::Int(3)});
  EXPECT_EQ(FireRule(rules->front(), at_dest, db_, fns_)->size(), 1u);
  EXPECT_TRUE(FireRule(rules->front(), in_flight, db_, fns_)->empty());
}

TEST_F(FireRuleTest, AssignmentComputesHeadValue) {
  auto rules = ParseRules("r recv(@L, N) :- packet(@L, D), N := D * 10.");
  ASSERT_TRUE(rules.ok());
  Tuple pkt = Tuple::Make("packet", 1, {Value::Int(7)});
  auto firings = FireRule(rules->front(), pkt, db_, fns_);
  ASSERT_TRUE(firings.ok());
  ASSERT_EQ(firings->size(), 1u);
  EXPECT_EQ((*firings)[0].head, Tuple::Make("recv", 1, {Value::Int(70)}));
}

TEST_F(FireRuleTest, TwoConditionAtomsJoinTransitively) {
  auto rules = ParseRules(
      "r out(@L, C) :- in(@L, A), m1(@L, A, B), m2(@L, B, C).");
  ASSERT_TRUE(rules.ok());
  db_.Insert(Tuple::Make("m1", 1, {Value::Int(10), Value::Int(20)}));
  db_.Insert(Tuple::Make("m2", 1, {Value::Int(20), Value::Int(30)}));
  db_.Insert(Tuple::Make("m2", 1, {Value::Int(99), Value::Int(31)}));
  Tuple ev = Tuple::Make("in", 1, {Value::Int(10)});
  auto firings = FireRule(rules->front(), ev, db_, fns_);
  ASSERT_TRUE(firings.ok());
  ASSERT_EQ(firings->size(), 1u);
  EXPECT_EQ((*firings)[0].head, Tuple::Make("out", 1, {Value::Int(30)}));
  EXPECT_EQ((*firings)[0].slow_tuples.size(), 2u);
}

}  // namespace
}  // namespace dpc
