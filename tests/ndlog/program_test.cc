// Program: DELP validation (Definition 1), relation roles, relations of
// interest.
#include "src/ndlog/program.h"

#include <gtest/gtest.h>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"

namespace dpc {
namespace {

TEST(ProgramTest, ForwardingRoles) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input_event_relation(), "packet");
  EXPECT_EQ(p->RoleOf("packet"), RelationRole::kInputEvent);
  EXPECT_EQ(p->RoleOf("route"), RelationRole::kSlowChanging);
  EXPECT_EQ(p->RoleOf("recv"), RelationRole::kTerminal);
  EXPECT_TRUE(p->IsSlowChanging("route"));
  EXPECT_FALSE(p->IsSlowChanging("packet"));
  EXPECT_TRUE(p->IsEventRelation("packet"));
  EXPECT_FALSE(p->IsEventRelation("recv"));
  EXPECT_EQ(p->terminal_relations(), (std::vector<std::string>{"recv"}));
  EXPECT_TRUE(p->IsOfInterest("recv"));
  EXPECT_FALSE(p->IsOfInterest("packet"));
}

TEST(ProgramTest, DnsRoles) {
  auto p = apps::MakeDnsProgram();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->input_event_relation(), "url");
  EXPECT_EQ(p->RoleOf("request"), RelationRole::kDerived);
  EXPECT_EQ(p->RoleOf("dnsResult"), RelationRole::kDerived);
  EXPECT_EQ(p->RoleOf("reply"), RelationRole::kTerminal);
  EXPECT_EQ(p->RoleOf("rootServer"), RelationRole::kSlowChanging);
  EXPECT_EQ(p->RoleOf("nameServer"), RelationRole::kSlowChanging);
  EXPECT_EQ(p->RoleOf("addressRecord"), RelationRole::kSlowChanging);
}

TEST(ProgramTest, RulesTriggeredBy) {
  auto p = apps::MakeDnsProgram();
  ASSERT_TRUE(p.ok());
  auto by_request = p->RulesTriggeredBy("request");
  ASSERT_EQ(by_request.size(), 2u);  // r2 and r3
  EXPECT_EQ(by_request[0]->id, "r2");
  EXPECT_EQ(by_request[1]->id, "r3");
  EXPECT_TRUE(p->RulesTriggeredBy("reply").empty());
}

TEST(ProgramTest, FindRule) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok());
  ASSERT_NE(p->FindRule("r1"), nullptr);
  EXPECT_EQ(p->FindRule("r1")->head.relation, "packet");
  EXPECT_EQ(p->FindRule("r99"), nullptr);
}

TEST(ProgramTest, DefaultInterestIsTerminals) {
  auto p = Program::Parse("a(@X) :- e(@X), s(@X).");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->relations_of_interest(), (std::vector<std::string>{"a"}));
}

TEST(ProgramTest, ExplicitInterestOverrides) {
  ProgramOptions opts;
  opts.relations_of_interest = {"e"};
  auto p = Program::Parse("a(@X) :- e(@X), s(@X).", opts);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->IsOfInterest("e"));
  EXPECT_FALSE(p->IsOfInterest("a"));
}

TEST(ProgramTest, UnknownRelationDefaultsToSlowChanging) {
  auto p = apps::MakeForwardingProgram();
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->RoleOf("linkState"), RelationRole::kSlowChanging);
}

// --- Definition 1 violations ------------------------------------------------

TEST(DelpValidationTest, EmptyProgramRejected) {
  EXPECT_FALSE(Program::Parse("").ok());
}

TEST(DelpValidationTest, NonDependentConsecutiveRulesRejected) {
  auto p = Program::Parse(R"(
    r1 a(@X) :- e(@X), s(@X).
    r2 b(@X) :- f(@X), s(@X).
  )");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("not dependent"), std::string::npos);
}

TEST(DelpValidationTest, HeadUsedAsConditionRejected) {
  // Condition 3: head relation `a` appears as a non-event body atom.
  auto p = Program::Parse(R"(
    r1 a(@X) :- e(@X), s(@X).
    r2 b(@X) :- a(@X), a(@X).
  )");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("condition 3"), std::string::npos);
}

TEST(DelpValidationTest, InputEventAsConditionRejected) {
  auto p = Program::Parse(R"(
    r1 a(@X) :- e(@X), e(@X).
  )");
  EXPECT_FALSE(p.ok());
}

TEST(DelpValidationTest, UnboundHeadVariableRejected) {
  auto p = Program::Parse("a(@X, Y) :- e(@X).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("unbound"), std::string::npos);
}

TEST(DelpValidationTest, UnboundConstraintVariableRejected) {
  auto p = Program::Parse("a(@X) :- e(@X), Z == 1.");
  EXPECT_FALSE(p.ok());
}

TEST(DelpValidationTest, UnboundAssignmentVariableRejected) {
  auto p = Program::Parse("a(@X, Y) :- e(@X), Y := Z + 1.");
  EXPECT_FALSE(p.ok());
}

TEST(DelpValidationTest, AssignmentBindingHeadVarAccepted) {
  auto p = Program::Parse("a(@X, Y) :- e(@X), Y := X + 1.");
  EXPECT_TRUE(p.ok()) << p.status().ToString();
}

TEST(DelpValidationTest, DuplicateRuleIdsRejected) {
  auto p = Program::Parse(R"(
    r1 a(@X) :- e(@X).
    r1 b(@X) :- a(@X).
  )");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("duplicate"), std::string::npos);
}

TEST(DelpValidationTest, SelfRecursiveEventRuleAccepted) {
  // DNS r2's shape: request derives request.
  auto p = Program::Parse(R"(
    r1 req(@Y, U) :- url(@X, U), root(@X, Y).
    r2 req(@Z, U) :- req(@Y, U), deleg(@Y, Z).
  )");
  EXPECT_TRUE(p.ok()) << p.status().ToString();
}

TEST(DelpValidationTest, PaperProgramsValidate) {
  EXPECT_TRUE(apps::MakeForwardingProgram().ok());
  EXPECT_TRUE(apps::MakeDnsProgram().ok());
}

TEST(ProgramTest, ToStringContainsAllRules) {
  auto p = apps::MakeDnsProgram();
  ASSERT_TRUE(p.ok());
  std::string s = p->ToString();
  for (const char* id : {"r1", "r2", "r3", "r4"}) {
    EXPECT_NE(s.find(id), std::string::npos);
  }
}

}  // namespace
}  // namespace dpc
