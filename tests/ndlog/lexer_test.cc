// Tokenizer coverage: every token kind, comments, errors with positions.
#include "src/ndlog/lexer.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

std::vector<TokenKind> KindsOf(const std::string& src) {
  auto tokens = Tokenize(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, SimpleRule) {
  auto kinds = KindsOf("recv(@L) :- packet(@L).");
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kLParen, TokenKind::kAt,
                TokenKind::kIdent, TokenKind::kRParen, TokenKind::kImplies,
                TokenKind::kIdent, TokenKind::kLParen, TokenKind::kAt,
                TokenKind::kIdent, TokenKind::kRParen, TokenKind::kPeriod,
                TokenKind::kEof}));
}

TEST(LexerTest, AllOperators) {
  auto kinds = KindsOf(":= == != <= >= < > + - * / %");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kAssign, TokenKind::kEq, TokenKind::kNe,
                       TokenKind::kLe, TokenKind::kGe, TokenKind::kLt,
                       TokenKind::kGt, TokenKind::kPlus, TokenKind::kMinus,
                       TokenKind::kStar, TokenKind::kSlash,
                       TokenKind::kPercent, TokenKind::kEof}));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("42 \"hello world\"").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].number, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "hello world");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize(R"("a\"b\nc\\d")").value();
  EXPECT_EQ(tokens[0].text, "a\"b\nc\\d");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto kinds = KindsOf("// whole line\nfoo # trailing\nbar");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kIdent,
                                           TokenKind::kIdent,
                                           TokenKind::kEof}));
}

TEST(LexerTest, LineTrackingInTokens) {
  auto tokens = Tokenize("a\nb\n  c").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  auto tokens = Tokenize("f_isSubDomain rule_2 X9").value();
  EXPECT_EQ(tokens[0].text, "f_isSubDomain");
  EXPECT_EQ(tokens[1].text, "rule_2");
  EXPECT_EQ(tokens[2].text, "X9");
}

TEST(LexerTest, UnterminatedStringIsError) {
  auto tokens = Tokenize("\"never closed");
  EXPECT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
}

TEST(LexerTest, LoneColonIsError) {
  EXPECT_FALSE(Tokenize("a : b").ok());
}

TEST(LexerTest, LoneEqualsIsError) {
  EXPECT_FALSE(Tokenize("a = b").ok());
}

TEST(LexerTest, LoneBangIsError) {
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(LexerTest, UnexpectedCharacterReportsPosition) {
  auto tokens = Tokenize("abc\n  $");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("line 2"), std::string::npos);
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto kinds = KindsOf("");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(NamingTest, VariableNames) {
  EXPECT_TRUE(IsVariableName("X"));
  EXPECT_TRUE(IsVariableName("Dest"));
  EXPECT_TRUE(IsVariableName("_tmp"));
  EXPECT_FALSE(IsVariableName("packet"));
  EXPECT_FALSE(IsVariableName(""));
}

TEST(NamingTest, FunctionNames) {
  EXPECT_TRUE(IsFunctionName("f_isSubDomain"));
  EXPECT_TRUE(IsFunctionName("f_x"));
  EXPECT_FALSE(IsFunctionName("isSubDomain"));
  EXPECT_FALSE(IsFunctionName("F_upper"));
}

}  // namespace
}  // namespace dpc
