// UDF registry and the built-in functions, especially f_isSubDomain which
// drives DNS delegation matching.
#include "src/ndlog/functions.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

TEST(IsSubDomainTest, BasicSuffixMatching) {
  EXPECT_TRUE(IsSubDomain("com", "www.hello.com"));
  EXPECT_TRUE(IsSubDomain("hello.com", "www.hello.com"));
  EXPECT_TRUE(IsSubDomain("www.hello.com", "www.hello.com"));
  EXPECT_FALSE(IsSubDomain("x.www.hello.com", "www.hello.com"));
  EXPECT_FALSE(IsSubDomain("org", "www.hello.com"));
}

TEST(IsSubDomainTest, LabelBoundaryRespected) {
  // "ello.com" is a string suffix but not a domain suffix.
  EXPECT_FALSE(IsSubDomain("ello.com", "www.hello.com"));
  EXPECT_FALSE(IsSubDomain("llo.com", "hello.com"));
}

TEST(IsSubDomainTest, RootMatchesEverything) {
  EXPECT_TRUE(IsSubDomain("", "anything.at.all"));
  EXPECT_TRUE(IsSubDomain(".", "anything.at.all"));
}

TEST(IsSubDomainTest, GeneratedDnsDomains) {
  // The shapes MakeDnsUniverse produces.
  EXPECT_TRUE(IsSubDomain("d1", "www3.d9.d4.d1"));
  EXPECT_TRUE(IsSubDomain("d4.d1", "www3.d9.d4.d1"));
  EXPECT_TRUE(IsSubDomain("d9.d4.d1", "www3.d9.d4.d1"));
  EXPECT_FALSE(IsSubDomain("d9.d4.d1", "www3.d8.d4.d1"));
  EXPECT_FALSE(IsSubDomain("d11", "www3.d1"));
}

class RegistryTest : public ::testing::Test {
 protected:
  FunctionRegistry reg_ = DefaultFunctions();
};

TEST_F(RegistryTest, ContainsDefaults) {
  for (const char* fn :
       {"f_isSubDomain", "f_size", "f_concat", "f_min", "f_max"}) {
    EXPECT_TRUE(reg_.Contains(fn)) << fn;
  }
  EXPECT_FALSE(reg_.Contains("f_missing"));
}

TEST_F(RegistryTest, CallDispatches) {
  auto v = reg_.Call("f_size", {Value::Str("abcd")});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(4));
}

TEST_F(RegistryTest, UnknownFunctionIsNotFound) {
  auto v = reg_.Call("f_missing", {});
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST_F(RegistryTest, ArityErrors) {
  EXPECT_FALSE(reg_.Call("f_isSubDomain", {Value::Str("a")}).ok());
  EXPECT_FALSE(reg_.Call("f_size", {}).ok());
  EXPECT_FALSE(
      reg_.Call("f_concat", {Value::Str("a"), Value::Str("b"),
                             Value::Str("c")})
          .ok());
}

TEST_F(RegistryTest, TypeErrors) {
  EXPECT_FALSE(reg_.Call("f_isSubDomain", {Value::Int(1), Value::Int(2)})
                   .ok());
  EXPECT_FALSE(reg_.Call("f_size", {Value::Int(1)}).ok());
}

TEST_F(RegistryTest, MinMaxWorkOnBothTypes) {
  EXPECT_EQ(reg_.Call("f_min", {Value::Int(2), Value::Int(1)}).value(),
            Value::Int(1));
  EXPECT_EQ(
      reg_.Call("f_max", {Value::Str("a"), Value::Str("b")}).value(),
      Value::Str("b"));
}

TEST_F(RegistryTest, RegisterOverrides) {
  reg_.Register("f_size", [](const std::vector<Value>&) -> Result<Value> {
    return Value::Int(-1);
  });
  EXPECT_EQ(reg_.Call("f_size", {Value::Str("abcd")}).value(),
            Value::Int(-1));
}

TEST_F(RegistryTest, CustomFunction) {
  reg_.Register("f_double",
                [](const std::vector<Value>& args) -> Result<Value> {
                  return Value::Int(args[0].AsInt() * 2);
                });
  EXPECT_EQ(reg_.Call("f_double", {Value::Int(21)}).value(), Value::Int(42));
}

}  // namespace
}  // namespace dpc
