// Batch-evaluation differential: set-at-a-time evaluation must be an
// implementation detail. For the same program, topology, workload and
// seed, a run with batch_eval on must produce byte-identical accounting,
// storage, provenance query answers — and under injected loss the
// identical drop set — as the tuple-at-a-time run, for every compression
// scheme and at every shard count. Plus the same-instant ordering
// regression: events landing at one simulated tick fire in schedule
// (sequence) order whether or not they are drained into a batch.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/apps/dns.h"
#include "src/apps/experiments.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"

namespace dpc {
namespace {

using apps::ExperimentConfig;
using apps::ExperimentResult;
using apps::Scheme;
using apps::Testbed;

TransitStubTopology MakeTopo() {
  TransitStubParams params;
  params.num_transit = 2;
  params.stubs_per_transit = 2;
  params.nodes_per_stub = 4;
  return MakeTransitStub(params);
}

// Field-by-field equality of two experiment runs' accounting (the same
// identity the shard-determinism suite asserts across shard counts).
void ExpectIdenticalResults(const ExperimentResult& a,
                            const ExperimentResult& b,
                            const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.events_injected, b.events_injected);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.total_network_bytes, b.total_network_bytes);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.bandwidth_buckets, b.bandwidth_buckets);
  EXPECT_EQ(a.snapshot_times, b.snapshot_times);
  EXPECT_EQ(a.per_node_storage, b.per_node_storage);
  EXPECT_EQ(a.final_storage.prov, b.final_storage.prov);
  EXPECT_EQ(a.final_storage.rule_exec, b.final_storage.rule_exec);
  EXPECT_EQ(a.final_storage.event_store, b.final_storage.event_store);
  EXPECT_EQ(a.final_storage.tuple_store, b.final_storage.tuple_store);
}

// All four non-reference schemes: the paper's three plus inter-class
// sharing. The batch path must be invisible to every one of them.
constexpr Scheme kAllSchemes[] = {Scheme::kExspan, Scheme::kBasic,
                                  Scheme::kAdvanced,
                                  Scheme::kAdvancedInterClass};

class BatchDifferentialTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(BatchDifferentialTest, ForwardingResultsIdenticalBatchedVsUnbatched) {
  Scheme scheme = GetParam();
  TransitStubTopology topo = MakeTopo();
  // A fixed-count workload spread over the duration lands multiple
  // packets on shared trunk nodes at coincident instants — batches form.
  auto workload =
      apps::MakeForwardingWorkload(topo, /*pairs=*/8, /*rate_pps=*/40,
                                   /*duration_s=*/1.5, /*payload_len=*/64,
                                   /*seed=*/7);
  auto run = [&](bool batch_eval, int shards) {
    ExperimentConfig config;
    config.duration_s = 1.5;
    config.snapshot_interval_s = 0.5;
    config.shards = shards;
    config.batch_eval = batch_eval;
    config.metrics = false;
    return apps::RunForwarding(scheme, topo, workload, config);
  };
  ExperimentResult batched = run(true, 1);
  ASSERT_GT(batched.outputs, 0u);
  ExpectIdenticalResults(batched, run(false, 1), "batched vs unbatched");
  // And across shard counts: draining never crosses a shard window, so
  // the sharded batched run equals the single-queue unbatched run.
  ExpectIdenticalResults(batched, run(true, 8), "batched shards 1 vs 8");
  ExpectIdenticalResults(batched, run(false, 8),
                         "batched vs unbatched at 8 shards");
}

TEST_P(BatchDifferentialTest, DnsResultsIdenticalBatchedVsUnbatched) {
  Scheme scheme = GetParam();
  apps::DnsParams params;
  params.num_servers = 24;
  params.num_urls = 12;
  params.trunk_depth = 8;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(params);
  auto workload = apps::MakeDnsWorkload(universe, /*count=*/60,
                                        /*rate_rps=*/50, /*zipf_theta=*/0.9,
                                        /*seed=*/13);
  auto run = [&](bool batch_eval) {
    ExperimentConfig config;
    config.duration_s = 60.0 / 50;
    config.snapshot_interval_s = 0.4;
    config.batch_eval = batch_eval;
    config.metrics = false;
    return apps::RunDns(scheme, universe, workload, config);
  };
  ExperimentResult batched = run(true);
  ASSERT_GT(batched.outputs, 0u);
  ExpectIdenticalResults(batched, run(false), "dns batched vs unbatched");
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BatchDifferentialTest, ::testing::ValuesIn(kAllSchemes),
    [](const auto& info) {
      // Gtest parameter names must be alphanumeric ("Advanced+InterClass"
      // is not), so strip the punctuation out of the scheme name.
      std::string name;
      for (char c : std::string(apps::SchemeName(info.param))) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9')) {
          name += c;
        }
      }
      return name;
    });

// Under hash-keyed loss the drop set is a pure function of (seed,
// transmission, link); batching must not perturb a single transmission,
// so the lossy batched run drops exactly the same traversals.
TEST(BatchDifferentialLossTest, LossyRunsDropIdenticalSets) {
  TransitStubTopology topo = MakeTopo();
  auto workload = apps::MakeForwardingWorkload(topo, 8, 40, 1.5, 64, 11);
  auto run = [&](bool batch_eval) {
    ExperimentConfig config;
    config.duration_s = 1.5;
    config.snapshot_interval_s = 0.5;
    config.loss_rate = 0.2;
    config.loss_seed = 77;
    config.batch_eval = batch_eval;
    config.metrics = false;
    return apps::RunForwarding(Scheme::kAdvanced, topo, workload, config);
  };
  ExperimentResult batched = run(true);
  ASSERT_GT(batched.dropped_messages, 0u);
  ASSERT_GT(batched.outputs, 0u);
  ExpectIdenticalResults(batched, run(false), "lossy batched vs unbatched");
}

// Provenance queries answer identically with batching on or off: same
// trees, same structure, for every delivered output — and outputs arrive
// in the same order (AllOutputs is the recorded delivery sequence).
TEST(BatchDifferentialQueryTest, QueryAnswersIdenticalBatchedVsUnbatched) {
  TransitStubTopology topo = MakeTopo();
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  Rng rng(5);
  auto pairs = apps::PickCommunicatingPairs(topo, 6, rng);

  auto run = [&](bool batch_eval) {
    apps::TestbedOptions options;
    options.batch_eval = batch_eval;
    options.metrics = false;
    auto bed = Testbed::Create(*program, &topo.graph, Scheme::kAdvanced,
                               options);
    EXPECT_TRUE(bed.ok());
    for (auto [s, d] : pairs) {
      EXPECT_TRUE(
          apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d)
              .ok());
    }
    // Several rounds at the SAME instant per round: maximal batches.
    for (int round = 0; round < 4; ++round) {
      for (auto [s, d] : pairs) {
        EXPECT_TRUE((*bed)
                        ->system()
                        .ScheduleInject(
                            apps::MakePacket(
                                s, s, d,
                                apps::MakePayload(32, round * 100 + s)),
                            0.002 * (round + 1))
                        .ok());
      }
    }
    (*bed)->system().Run();
    auto querier = (*bed)->MakeQuerier();
    std::ostringstream answers;
    for (const OutputRecord& out : (*bed)->system().AllOutputs()) {
      answers << out.tuple.ToString() << " @" << out.time << "\n";
      Vid evid = out.meta.evid;
      auto res = querier->Query(out.tuple, &evid);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      if (!res.ok()) continue;
      for (const ProvTree& tree : res->trees) {
        answers << tree.ToString() << "\n";
      }
    }
    return answers.str();
  };

  std::string batched = run(true);
  ASSERT_FALSE(batched.empty());
  EXPECT_EQ(batched, run(false));
}

// Same-instant ordering regression: injections scheduled out of arrival
// order at one tick must fire in schedule (sequence) order — the batch
// drain preserves the queue's tie-break, so the recorded output sequence
// is identical with batching on and off.
TEST(BatchOrderingTest, SameInstantInjectionsFireInScheduleOrder) {
  TransitStubTopology topo = MakeTopo();
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  Rng rng(9);
  auto pairs = apps::PickCommunicatingPairs(topo, 6, rng);

  auto run = [&](bool batch_eval) {
    apps::TestbedOptions options;
    options.batch_eval = batch_eval;
    options.metrics = false;
    auto bed = Testbed::Create(*program, &topo.graph, Scheme::kBasic,
                               options);
    EXPECT_TRUE(bed.ok());
    for (auto [s, d] : pairs) {
      EXPECT_TRUE(
          apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d)
              .ok());
    }
    // Everything at t = 0.5, deliberately scrambled across pairs: the
    // injection sequence, not the pair order, defines the tie-break.
    int seq = 0;
    for (int round = 0; round < 3; ++round) {
      for (size_t p = pairs.size(); p-- > 0;) {
        auto [s, d] = pairs[p];
        EXPECT_TRUE(
            (*bed)
                ->system()
                .ScheduleInject(
                    apps::MakePacket(s, s, d, apps::MakePayload(16, seq++)),
                    0.5)
                .ok());
      }
    }
    (*bed)->system().Run();
    std::ostringstream sequence;
    for (const OutputRecord& out : (*bed)->system().AllOutputs()) {
      sequence << out.tuple.ToString() << "\n";
    }
    EXPECT_GT((*bed)->system().AllOutputs().size(), 1u);
    return sequence.str();
  };

  std::string batched = run(true);
  ASSERT_FALSE(batched.empty());
  EXPECT_EQ(batched, run(false));
}

// The differential only means something if batches actually form: with
// metrics on, the batched run must record multi-event batches and
// per-rule batched firings.
TEST(BatchDifferentialTest2, BatchesActuallyFormOnCoincidentWorkload) {
  TransitStubTopology topo = MakeTopo();
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  Rng rng(5);
  auto pairs = apps::PickCommunicatingPairs(topo, 6, rng);
  apps::TestbedOptions options;
  auto bed =
      Testbed::Create(*program, &topo.graph, Scheme::kBasic, options);
  ASSERT_TRUE(bed.ok());
  for (auto [s, d] : pairs) {
    ASSERT_TRUE(
        apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d).ok());
  }
  for (auto [s, d] : pairs) {
    ASSERT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(
                        apps::MakePacket(s, s, d, apps::MakePayload(16, s)),
                        0.25)
                    .ok());
  }
  (*bed)->system().Run();
  MetricsSnapshot delta = (*bed)->MetricsDelta();
  auto hist = delta.histograms.find("system.batch_size");
  ASSERT_NE(hist, delta.histograms.end());
  EXPECT_GT(hist->second.count, 0u);
  EXPECT_GT(hist->second.max, 1.0);  // at least one multi-event batch
  uint64_t batched_firings = 0;
  for (const auto& [name, value] : delta.counters) {
    if (name.rfind("system.batched_firings.", 0) == 0) {
      batched_firings += value;
    }
  }
  EXPECT_GT(batched_firings, 0u);
}

}  // namespace
}  // namespace dpc
