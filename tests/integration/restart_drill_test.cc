// Kill/restart fault drill: a deployment journaling through WalRecorder
// is destroyed mid-run (every WAL append was already flushed, so this is
// the on-disk state a kill -9 leaves behind) and rebuilt from disk into a
// fresh deployment. The recovered per-node tables must be byte-identical
// to an oracle run that was never interrupted — for all four compressing
// schemes, under 20% loss with the reliable transport, with and without a
// mid-run checkpoint — and recovery must not double-count a single
// metric or identity counter.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cctype>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"
#include "src/core/wal.h"
#include "src/obs/metrics.h"
#include "src/util/perf.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;
using apps::TestbedOptions;

struct TempDir {
  std::string path;

  explicit TempDir(const std::string& tag) {
    std::string tmpl = ::testing::TempDir() + "dpc_" + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* got = mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    if (got != nullptr) path = got;
  }
  ~TempDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
};

Topology MakeLineTopo(int n) {
  Topology topo;
  topo.AddNodes(n);
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(topo.AddLink(i, i + 1, LinkProps{0.001, 1e9}).ok());
  }
  topo.ComputeRoutes();
  return topo;
}

// Serializes every node's recorder state into one blob: the byte-level
// fingerprint of a deployment's provenance tables.
std::string StateFingerprint(Testbed& bed) {
  std::ostringstream out;
  for (NodeId n = 0; n < bed.topology().num_nodes(); ++n) {
    ByteWriter w;
    bed.recorder().SerializeNodeState(n, w);
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.size()));
    out << "|";
  }
  return out.str();
}

std::string QueryAnswersFor(Testbed& bed,
                            const std::vector<OutputRecord>& outputs) {
  auto querier = bed.MakeQuerier();
  EXPECT_NE(querier, nullptr);
  std::ostringstream answers;
  for (const OutputRecord& out : outputs) {
    // ExSPAN/Basic leave meta.evid zeroed; only filter when it is stamped.
    Vid evid = out.meta.evid;
    auto res = querier->Query(out.tuple, evid.IsZero() ? nullptr : &evid);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (!res.ok()) continue;
    for (const ProvTree& tree : res->trees) {
      answers << tree.ToString() << "\n";
    }
  }
  return answers.str();
}

// Builds a deployment, installs routes both ways, and schedules the
// standard two-way packet workload. rounds == 0 builds an untouched
// deployment (no routes, no injects) — the shape a recovery target needs,
// since any pre-recovery mutation would be journaled and restored on top.
std::unique_ptr<Testbed> MakeDeployment(Scheme scheme, const Topology& topo,
                                        TestbedOptions options,
                                        int rounds = 8) {
  auto program = apps::MakeForwardingProgram();
  EXPECT_TRUE(program.ok());
  auto bed = Testbed::Create(*program, &topo, scheme, std::move(options));
  EXPECT_TRUE(bed.ok()) << bed.status().ToString();
  if (rounds == 0) return std::move(bed).value();
  int last = topo.num_nodes() - 1;
  EXPECT_TRUE(
      apps::InstallRoutesForPair((*bed)->system(), topo, 0, last).ok());
  EXPECT_TRUE(
      apps::InstallRoutesForPair((*bed)->system(), topo, last, 0).ok());
  double t = 0;
  for (int round = 0; round < rounds; ++round) {
    EXPECT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(apps::MakePacket(
                                        0, 0, last,
                                        apps::MakePayload(32, round)),
                                    t += 0.004)
                    .ok());
    EXPECT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(apps::MakePacket(
                                        last, last, 0,
                                        apps::MakePayload(32, 100 + round)),
                                    t += 0.004)
                    .ok());
  }
  return std::move(bed).value();
}

TestbedOptions LossyReliableOptions(const std::string& wal_dir) {
  TestbedOptions options;
  options.loss_rate = 0.2;
  options.loss_seed = 91;
  options.reliable_transport = true;
  options.wal_dir = wal_dir;
  return options;
}

// Parameterized over the four schemes with node-state durability.
class RestartDrillTest : public ::testing::TestWithParam<Scheme> {};

// The core drill: a lossy reliable run is stopped at an arbitrary
// mid-run instant and its deployment destroyed. The WAL on disk must
// rebuild tables byte-identical to an identically configured oracle run
// stopped at the same instant (the runtime is deterministic, so the
// oracle reproduces the victim's pre-crash execution exactly).
TEST_P(RestartDrillTest, MidRunCrashRecoversByteIdenticalTables) {
  Scheme scheme = GetParam();
  Topology topo = MakeLineTopo(5);
  TempDir dir("drill");
  const double crash_at = 0.025;  // mid-workload: injects run to 0.064

  // Victim: journaling, stopped mid-run, destroyed without ceremony.
  {
    auto victim = MakeDeployment(scheme, topo, LossyReliableOptions(dir.path));
    ASSERT_NE(victim->wal(), nullptr);
    victim->system().RunUntil(crash_at);
    ASSERT_GT(victim->wal()->records_logged(), 0u);
  }

  // Oracle: identical config (journaling into a scratch dir so the WAL
  // hook sequence matches exactly), stopped at the same instant, alive.
  TempDir oracle_dir("drill_oracle");
  auto oracle =
      MakeDeployment(scheme, topo, LossyReliableOptions(oracle_dir.path));
  oracle->system().RunUntil(crash_at);

  // Recovered: a fresh deployment over the victim's WAL directory.
  auto recovered =
      MakeDeployment(scheme, topo, LossyReliableOptions(dir.path), 0);
  auto stats = recovered->wal()->Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->records_replayed, 0u);
  EXPECT_EQ(stats->corrupt_frames, 0u);

  EXPECT_EQ(StateFingerprint(*oracle), StateFingerprint(*recovered))
      << apps::SchemeName(scheme)
      << ": recovered tables differ from the uninterrupted oracle";

  // Distributed queries over the recovered tables answer exactly like
  // the oracle for every pre-crash output.
  std::vector<OutputRecord> outputs = oracle->system().AllOutputs();
  if (!outputs.empty()) {
    EXPECT_EQ(QueryAnswersFor(*oracle, outputs),
              QueryAnswersFor(*recovered, outputs));
  }
}

// Same drill with a checkpoint cut mid-run: recovery restores the
// snapshot and replays only the tail past the watermark.
TEST_P(RestartDrillTest, CheckpointPlusTailRecoversByteIdenticalTables) {
  Scheme scheme = GetParam();
  Topology topo = MakeLineTopo(5);
  TempDir dir("drillckpt");

  {
    auto victim = MakeDeployment(scheme, topo, LossyReliableOptions(dir.path));
    victim->system().RunUntil(0.02);
    ASSERT_TRUE(victim->wal()->Checkpoint().ok());
    uint64_t at_checkpoint = victim->wal()->records_logged();
    victim->system().RunUntil(0.05);
    ASSERT_GT(victim->wal()->records_logged(), at_checkpoint)
        << "no tail past the checkpoint; the drill is vacuous";
  }

  TempDir oracle_dir("drillckpt_oracle");
  auto oracle =
      MakeDeployment(scheme, topo, LossyReliableOptions(oracle_dir.path));
  oracle->system().RunUntil(0.05);

  auto recovered =
      MakeDeployment(scheme, topo, LossyReliableOptions(dir.path), 0);
  auto stats = recovered->wal()->Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->nodes_with_checkpoint, topo.num_nodes());
  EXPECT_GT(stats->records_replayed, 0u);

  EXPECT_EQ(StateFingerprint(*oracle), StateFingerprint(*recovered))
      << apps::SchemeName(scheme);
}

// A drained run (no in-flight traffic at the cut) recovers and then
// continues: the resumed deployment re-declares its slow state (the
// recorder dedups), processes the rest of the workload, and ends with
// tables and query answers byte-identical to a run that never stopped.
TEST_P(RestartDrillTest, RecoveredDeploymentContinuesTheWorkload) {
  Scheme scheme = GetParam();
  Topology topo = MakeLineTopo(4);
  TempDir dir("drillcont");
  int last = topo.num_nodes() - 1;
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());

  auto inject_round = [&](Testbed& bed, int round, double t) {
    ASSERT_TRUE(bed.system()
                    .ScheduleInject(apps::MakePacket(
                                        0, 0, last,
                                        apps::MakePayload(32, round)),
                                    t)
                    .ok());
  };

  // Uninterrupted oracle: all 6 rounds in one life.
  TempDir oracle_dir("drillcont_oracle");
  TestbedOptions oracle_options;
  oracle_options.wal_dir = oracle_dir.path;
  auto oracle = Testbed::Create(*program, &topo, scheme, oracle_options);
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(
      apps::InstallRoutesForPair((*oracle)->system(), topo, 0, last).ok());
  for (int round = 0; round < 6; ++round) {
    inject_round(**oracle, round, 0.004 * (round + 1));
  }
  (*oracle)->system().Run();

  // Victim: rounds 0-2, drained, then destroyed.
  {
    TestbedOptions options;
    options.wal_dir = dir.path;
    auto victim = Testbed::Create(*program, &topo, scheme, options);
    ASSERT_TRUE(victim.ok());
    ASSERT_TRUE(
        apps::InstallRoutesForPair((*victim)->system(), topo, 0, last).ok());
    for (int round = 0; round < 3; ++round) {
      inject_round(**victim, round, 0.004 * (round + 1));
    }
    (*victim)->system().Run();
  }

  // Restart: recover, re-declare routes, run rounds 3-5.
  TestbedOptions options;
  options.wal_dir = dir.path;
  auto resumed = Testbed::Create(*program, &topo, scheme, options);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE((*resumed)->wal()->Recover().ok());
  ASSERT_TRUE(
      apps::InstallRoutesForPair((*resumed)->system(), topo, 0, last).ok());
  for (int round = 3; round < 6; ++round) {
    inject_round(**resumed, round, 0.004 * (round + 1));
  }
  (*resumed)->system().Run();

  EXPECT_EQ(StateFingerprint(**oracle), StateFingerprint(**resumed))
      << apps::SchemeName(scheme);
  std::vector<OutputRecord> outputs = (*oracle)->system().AllOutputs();
  ASSERT_GT(outputs.size(), 0u);
  EXPECT_EQ(QueryAnswersFor(**oracle, outputs),
            QueryAnswersFor(**resumed, outputs));
}

// Replay must be accounting-neutral: rebuilding tables bumps no
// system.*/recorder.*/transport metrics and no identity counters — only
// the wal.* counters describing the recovery itself move.
TEST_P(RestartDrillTest, RecoveryDoesNotDoubleCountAccounting) {
  Scheme scheme = GetParam();
  Topology topo = MakeLineTopo(4);
  TempDir dir("drillacct");

  {
    auto victim = MakeDeployment(scheme, topo, LossyReliableOptions(dir.path));
    victim->system().Run();
  }

  auto recovered =
      MakeDeployment(scheme, topo, LossyReliableOptions(dir.path), 0);
  MetricsSnapshot before = GlobalMetrics().Snapshot();
  IdentityCounters identity_before = identity_counters();
  auto stats = recovered->wal()->Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GT(stats->records_replayed, 0u);
  MetricsSnapshot delta = GlobalMetrics().Snapshot().Delta(before);
  IdentityCounters identity_delta = identity_counters() - identity_before;

  for (const auto& [name, value] : delta.counters) {
    if (value == 0) continue;
    EXPECT_EQ(name.rfind("wal.", 0), 0u)
        << "recovery bumped non-WAL counter " << name << " by " << value;
  }
  for (const auto& [name, hist] : delta.histograms) {
    EXPECT_EQ(hist.count, 0u)
        << "recovery observed into histogram " << name;
  }
  EXPECT_EQ(delta.counters["wal.records_replayed"], stats->records_replayed);

  EXPECT_EQ(identity_delta.sha1_invocations, 0u);
  EXPECT_EQ(identity_delta.tuple_bytes_serialized, 0u);
  EXPECT_EQ(identity_delta.vid_cache_hits, 0u);
  EXPECT_EQ(identity_delta.vid_cache_misses, 0u);
  EXPECT_EQ(identity_delta.tuples_interned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, RestartDrillTest,
                         ::testing::Values(Scheme::kExspan, Scheme::kBasic,
                                           Scheme::kAdvanced,
                                           Scheme::kAdvancedInterClass),
                         [](const auto& info) {
                           std::string name = apps::SchemeName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out += c;
                             }
                           }
                           return out;
                         });

// A sharded victim writes the same WAL as an unsharded one (hooks run on
// the owning shard in deterministic order per node), so recovery from a
// sharded run's disk matches the single-queue oracle.
TEST(RestartDrillShardTest, ShardedVictimRecoversAgainstUnshardedOracle) {
  Topology topo = MakeLineTopo(8);
  TempDir dir("drillshard");

  {
    TestbedOptions options;
    options.wal_dir = dir.path;
    options.shards = 4;
    auto victim = MakeDeployment(Scheme::kAdvanced, topo, options);
    ASSERT_EQ(victim->shards(), 4);
    victim->system().Run();
  }

  TempDir oracle_dir("drillshard_oracle");
  TestbedOptions oracle_options;
  oracle_options.wal_dir = oracle_dir.path;
  auto oracle = MakeDeployment(Scheme::kAdvanced, topo, oracle_options);
  oracle->system().Run();

  TestbedOptions options;
  options.wal_dir = dir.path;
  auto recovered = MakeDeployment(Scheme::kAdvanced, topo, options, 0);
  ASSERT_TRUE(recovered->wal()->Recover().ok());
  EXPECT_EQ(StateFingerprint(*oracle), StateFingerprint(*recovered));
}

// The reference scheme has no node-state serialization; asking for a WAL
// must fail loudly at deployment construction, not at checkpoint time.
TEST(RestartDrillConfigTest, ReferenceSchemeRejectsWal) {
  Topology topo = MakeLineTopo(3);
  TempDir dir("drillref");
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  TestbedOptions options;
  options.wal_dir = dir.path;
  auto bed = Testbed::Create(*program, &topo, Scheme::kReference, options);
  EXPECT_FALSE(bed.ok());
}

// A corrupt WAL tail (torn final frame) is survivable: recovery replays
// the intact prefix, reports the corruption, and the tables match an
// oracle that only saw the intact records.
TEST(RestartDrillCorruptionTest, TornTailRecoversThePrefix) {
  Topology topo = MakeLineTopo(4);
  TempDir dir("drilltorn");

  {
    TestbedOptions options;
    options.wal_dir = dir.path;
    auto victim = MakeDeployment(Scheme::kBasic, topo, options);
    victim->system().Run();
  }

  // Tear the last node's log mid-frame.
  std::string victim_path = WalPath(dir.path, topo.num_nodes() - 1);
  auto size = std::filesystem::file_size(victim_path);
  ASSERT_GT(size, 8u);
  std::filesystem::resize_file(victim_path, size - 3);

  TestbedOptions options;
  options.wal_dir = dir.path;
  auto recovered = MakeDeployment(Scheme::kBasic, topo, options, 0);
  MetricsSnapshot before = GlobalMetrics().Snapshot();
  auto stats = recovered->wal()->Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->corrupt_frames, 1u);
  EXPECT_GT(stats->records_replayed, 0u);
  MetricsSnapshot delta = GlobalMetrics().Snapshot().Delta(before);
  EXPECT_EQ(delta.counters["wal.corrupt_frames"], 1u);
}

// The second-crash hazard: a restarted deployment must truncate a torn
// tail before appending, or everything it journals after the restart sits
// behind the corrupt frame — reachable by nothing — and a second crash
// silently loses acknowledged-durable records.
TEST(RestartDrillCorruptionTest, AppendsAfterATornTailStayRecoverable) {
  Topology topo = MakeLineTopo(4);
  TempDir dir("drilltorn2");
  int last = topo.num_nodes() - 1;
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());

  // First life: a full run, then a mid-frame tear of one node's log —
  // the on-disk state a crash can leave.
  {
    TestbedOptions options;
    options.wal_dir = dir.path;
    auto victim = MakeDeployment(Scheme::kBasic, topo, options);
    victim->system().Run();
  }
  std::string torn_path = WalPath(dir.path, last);
  auto size = std::filesystem::file_size(torn_path);
  ASSERT_GT(size, 8u);
  std::filesystem::resize_file(torn_path, size - 3);

  // Second life: recover the intact prefix (the tear is reported once,
  // here) and keep working; Attach cut the torn frame away, so these
  // appends land at a decodable position.
  std::string resumed_fingerprint;
  {
    TestbedOptions options;
    options.wal_dir = dir.path;
    auto resumed = MakeDeployment(Scheme::kBasic, topo, options, 0);
    auto stats = resumed->wal()->Recover();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->corrupt_frames, 1u);
    ASSERT_TRUE(
        apps::InstallRoutesForPair(resumed->system(), topo, 0, last).ok());
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(resumed->system()
                      .ScheduleInject(apps::MakePacket(
                                          0, 0, last,
                                          apps::MakePayload(32, round)),
                                      0.004 * (round + 1))
                      .ok());
    }
    resumed->system().Run();
    resumed_fingerprint = StateFingerprint(*resumed);
  }

  // Second crash: every record the second life journaled must replay —
  // the log is clean end to end, nothing stranded, nothing lost.
  TestbedOptions options;
  options.wal_dir = dir.path;
  auto recovered = MakeDeployment(Scheme::kBasic, topo, options, 0);
  auto stats = recovered->wal()->Recover();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->corrupt_frames, 0u);
  EXPECT_GT(stats->records_replayed, 0u);
  EXPECT_EQ(resumed_fingerprint, StateFingerprint(*recovered));
}

// ---------------------------------------------------------------------
// WAL replay oracle over random DELPs: for 50 generated programs (random
// chain length, relocation, value rewrites — the random_delp_test
// family), a journaled run's WAL must rebuild tables byte-identical to
// the run that wrote it.
// ---------------------------------------------------------------------

std::string GenerateChainDelp(Rng& rng, int* num_rules_out) {
  int num_rules = 1 + static_cast<int>(rng.NextBelow(3));
  bool has_constraint = rng.NextBelow(2) == 0;
  std::string src;
  for (int i = 1; i <= num_rules; ++i) {
    bool relocate = rng.NextBelow(2) == 0;
    int mode = static_cast<int>(rng.NextBelow(4));
    std::string head_loc = relocate ? "N" : "L";
    std::string a_prime;
    switch (mode) {
      case 0: a_prime = "A"; break;
      case 1: a_prime = "C"; break;
      case 2: a_prime = "A + B"; break;
      default: a_prime = "B"; break;
    }
    std::string b_prime = (rng.NextBelow(2) == 0) ? "B" : "A";
    std::string rule = "r" + std::to_string(i) + " e" + std::to_string(i) +
                       "(@" + head_loc + ", AP, " + b_prime + ") :- e" +
                       std::to_string(i - 1) + "(@L, A, B), s" +
                       std::to_string(i) + "(@L, A, N, C), AP := " + a_prime +
                       ".";
    if (has_constraint && i == num_rules) {
      rule.insert(rule.size() - 1, ", A >= 0");
    }
    src += rule + "\n";
  }
  *num_rules_out = num_rules;
  return src;
}

class RandomDelpReplayTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDelpReplayTest, WalReplayRebuildsIdenticalTables) {
  Rng rng(GetParam() * 2654435761ULL + 7);
  int num_rules = 0;
  std::string source = GenerateChainDelp(rng, &num_rules);
  auto program = Program::Parse(source);
  ASSERT_TRUE(program.ok()) << program.status().ToString() << "\n" << source;

  const int n = 4;
  Topology topo;
  topo.AddNodes(n);
  for (int x = 0; x < n; ++x) {
    Status st = topo.AddLink(x, (x + 1) % n, LinkProps{0.001, 1e9});
    ASSERT_TRUE(st.ok() || st.IsAlreadyExists());
  }
  topo.ComputeRoutes();

  // Rotate through the compressing schemes across seeds.
  constexpr Scheme kSchemes[] = {Scheme::kExspan, Scheme::kBasic,
                                 Scheme::kAdvanced,
                                 Scheme::kAdvancedInterClass};
  Scheme scheme = kSchemes[GetParam() % 4];

  TempDir dir("delp");
  {
    TestbedOptions options;
    options.wal_dir = dir.path;
    auto bed = Testbed::Create(*program, &topo, scheme, options);
    ASSERT_TRUE(bed.ok()) << bed.status().ToString();
    for (int i = 1; i <= num_rules; ++i) {
      for (int x = 0; x < n; ++x) {
        for (int a = 0; a < 12; ++a) {
          ASSERT_TRUE((*bed)
                          ->system()
                          .InsertSlowTuple(Tuple::Make(
                              "s" + std::to_string(i), x,
                              {Value::Int(a), Value::Int((x + 1) % n),
                               Value::Int((x + a) % 3)}))
                          .ok());
        }
      }
    }
    double t = 0;
    for (int x = 0; x < n; ++x) {
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 2; ++b) {
          ASSERT_TRUE((*bed)
                          ->system()
                          .ScheduleInject(
                              Tuple::Make("e0", x,
                                          {Value::Int(a), Value::Int(b)}),
                              t += 0.001)
                          .ok());
        }
      }
    }
    (*bed)->system().Run();

    // Recover into a fresh deployment and compare byte-for-byte.
    TestbedOptions fresh_options;
    fresh_options.wal_dir = dir.path;
    auto fresh = Testbed::Create(*program, &topo, scheme, fresh_options);
    ASSERT_TRUE(fresh.ok());
    auto stats = (*fresh)->wal()->Recover();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->corrupt_frames, 0u);
    EXPECT_EQ(StateFingerprint(**bed), StateFingerprint(**fresh))
        << apps::SchemeName(scheme) << "\n" << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDelpReplayTest,
                         ::testing::Range<uint64_t>(1, 51));

}  // namespace
}  // namespace dpc
