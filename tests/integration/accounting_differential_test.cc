// Differential check on the incremental byte accounting: every recorder
// table maintains its serialized size arithmetically (ProvEntry sizes,
// memoized tuple sizes, running counters). This test re-derives each
// node's StorageBreakdown the slow way — buffer-serialize every row and
// count actual bytes — after real forwarding and DNS runs, for every
// scheme. Any drift between the fast path and the bytes on the wire is a
// bug in the figures.
//
// It also asserts that tuple interning is accounting-invisible: the same
// workload with the intern pool on and off produces byte-identical
// storage and network totals.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/prov_tables.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

// --- slow-path recomputation: serialize every row into a fresh buffer ------

size_t BufferBytes(const ProvTable& table, bool with_evid) {
  size_t sum = 0;
  for (const ProvEntry& e : table.rows()) {
    ByteWriter w;
    e.Serialize(w, with_evid);
    sum += w.size();
  }
  return sum;
}

size_t BufferBytes(const RuleExecTable& table, bool with_next) {
  size_t sum = 0;
  for (const RuleExecEntry& e : table.rows()) {
    ByteWriter w;
    e.Serialize(w, with_next);
    sum += w.size();
  }
  return sum;
}

size_t BufferBytes(const RuleExecNodeTable& table) {
  size_t sum = 0;
  for (const RuleExecNodeEntry& e : table.rows()) {
    ByteWriter w;
    e.Serialize(w);
    sum += w.size();
  }
  return sum;
}

size_t BufferBytes(const RuleExecLinkTable& table) {
  size_t sum = 0;
  for (const RuleExecLinkEntry& e : table.rows()) {
    ByteWriter w;
    e.Serialize(w);
    sum += w.size();
  }
  return sum;
}

// A stored tuple costs its 20-byte VID key plus the canonical encoding.
size_t BufferBytes(const TupleStore& store) {
  size_t sum = 0;
  store.ForEach([&](const Tuple& t) {
    ByteWriter w;
    t.Serialize(w);
    sum += 20 + w.size();
  });
  return sum;
}

// Recomputes node `n`'s StorageBreakdown from buffers and compares it,
// field by field, against the recorder's incrementally maintained one.
void CheckNode(Testbed& bed, NodeId n) {
  StorageBreakdown fast = bed.StorageAt(n);
  StorageBreakdown slow;
  switch (bed.scheme()) {
    case Scheme::kExspan: {
      const ExspanRecorder& r = *bed.exspan();
      slow.prov = BufferBytes(r.ProvAt(n), /*with_evid=*/false);
      slow.rule_exec = BufferBytes(r.RuleExecAt(n), /*with_next=*/false);
      slow.event_store = BufferBytes(r.EventsAt(n));
      slow.tuple_store = BufferBytes(r.TuplesAt(n));
      break;
    }
    case Scheme::kBasic: {
      const BasicRecorder& r = *bed.basic();
      slow.prov = BufferBytes(r.ProvAt(n), /*with_evid=*/false);
      slow.rule_exec = BufferBytes(r.RuleExecAt(n), /*with_next=*/true);
      slow.event_store = BufferBytes(r.EventsAt(n));
      slow.tuple_store = BufferBytes(r.TuplesAt(n));
      break;
    }
    case Scheme::kAdvanced:
    case Scheme::kAdvancedInterClass: {
      const AdvancedRecorder& r = *bed.advanced();
      slow.prov = BufferBytes(r.ProvAt(n), /*with_evid=*/true);
      slow.rule_exec =
          bed.scheme() == Scheme::kAdvancedInterClass
              ? BufferBytes(r.RuleExecNodesAt(n)) +
                    BufferBytes(r.RuleExecLinksAt(n))
              : BufferBytes(r.RuleExecAt(n), /*with_next=*/true);
      slow.event_store = BufferBytes(r.EventsAt(n));
      slow.tuple_store = BufferBytes(r.TuplesAt(n));
      break;
    }
    case Scheme::kReference:
      return;  // trees, not tables; nothing incremental to cross-check
  }
  const char* scheme = apps::SchemeName(bed.scheme());
  EXPECT_EQ(fast.prov, slow.prov) << scheme << " node " << n;
  EXPECT_EQ(fast.rule_exec, slow.rule_exec) << scheme << " node " << n;
  EXPECT_EQ(fast.event_store, slow.event_store) << scheme << " node " << n;
  EXPECT_EQ(fast.tuple_store, slow.tuple_store) << scheme << " node " << n;
}

constexpr Scheme kAllTableSchemes[] = {
    Scheme::kExspan, Scheme::kBasic, Scheme::kAdvanced,
    Scheme::kAdvancedInterClass};

// --- forwarding: 3-node chain, two routes, five packets --------------------

std::unique_ptr<Testbed> RunForwardingChain(const Topology& topo,
                                            Scheme scheme, bool intern) {
  auto program = apps::MakeForwardingProgram();
  EXPECT_TRUE(program.ok());
  auto bed =
      Testbed::Create(std::move(program).value(), &topo, scheme).value();
  bed->system().EnableInterning(intern);
  NodeId n1 = 0, n2 = 1, n3 = 2;
  EXPECT_TRUE(bed->system().InsertSlowTuple(apps::MakeRoute(n1, n3, n2)).ok());
  EXPECT_TRUE(bed->system().InsertSlowTuple(apps::MakeRoute(n2, n3, n3)).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(bed->system()
                    .ScheduleInject(
                        apps::MakePacket(n1, n1, n3, "p" + std::to_string(i)),
                        0.1 * (i + 1))
                    .ok());
  }
  bed->system().Run();
  return bed;
}

Topology MakeChain() {
  Topology topo;
  NodeId n1 = topo.AddNode(), n2 = topo.AddNode(), n3 = topo.AddNode();
  LinkProps lp{0.001, 1e9};
  EXPECT_TRUE(topo.AddLink(n1, n2, lp).ok());
  EXPECT_TRUE(topo.AddLink(n2, n3, lp).ok());
  topo.ComputeRoutes();
  return topo;
}

TEST(AccountingDifferentialTest, ForwardingStorageMatchesBufferBytes) {
  Topology topo = MakeChain();
  for (Scheme scheme : kAllTableSchemes) {
    auto bed = RunForwardingChain(topo, scheme, /*intern=*/false);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) CheckNode(*bed, n);
    // Sanity: the run actually recorded something on the chain.
    EXPECT_GT(bed->TotalStorage().Total(), 0u)
        << apps::SchemeName(scheme);
  }
}

// Interning changes allocations, never bytes: storage and network
// accounting must be identical with the pool on and off.
TEST(AccountingDifferentialTest, InterningIsAccountingInvisible) {
  Topology topo = MakeChain();
  for (Scheme scheme : kAllTableSchemes) {
    auto plain = RunForwardingChain(topo, scheme, /*intern=*/false);
    auto interned = RunForwardingChain(topo, scheme, /*intern=*/true);
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      StorageBreakdown a = plain->StorageAt(n);
      StorageBreakdown b = interned->StorageAt(n);
      EXPECT_EQ(a.prov, b.prov);
      EXPECT_EQ(a.rule_exec, b.rule_exec);
      EXPECT_EQ(a.event_store, b.event_store);
      EXPECT_EQ(a.tuple_store, b.tuple_store);
      CheckNode(*interned, n);
    }
    EXPECT_EQ(plain->network().total_bytes_sent(),
              interned->network().total_bytes_sent());
    EXPECT_EQ(plain->network().total_messages(),
              interned->network().total_messages());
  }
}

// --- DNS: small nameserver tree, Zipf-free fixed request set ---------------

TEST(AccountingDifferentialTest, DnsStorageMatchesBufferBytes) {
  apps::DnsParams params;
  params.num_servers = 12;
  params.trunk_depth = 4;
  params.num_urls = 6;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(params);

  for (Scheme scheme : kAllTableSchemes) {
    auto program = apps::MakeDnsProgram();
    ASSERT_TRUE(program.ok());
    auto bed = Testbed::Create(std::move(program).value(), &universe.graph,
                               scheme)
                   .value();
    ASSERT_TRUE(apps::InstallDnsState(bed->system(), universe).ok());
    for (size_t i = 0; i < 8; ++i) {
      NodeId client = universe.clients[i % universe.clients.size()];
      const std::string& url = universe.urls[i % universe.urls.size()];
      ASSERT_TRUE(bed->system()
                      .ScheduleInject(apps::MakeUrlEvent(
                                          client, url,
                                          static_cast<int64_t>(i)),
                                      0.05 * static_cast<double>(i + 1))
                      .ok());
    }
    bed->system().Run();
    EXPECT_GT(bed->system().stats().outputs, 0u)
        << apps::SchemeName(scheme);
    for (NodeId n = 0; n < universe.graph.num_nodes(); ++n) {
      CheckNode(*bed, n);
    }
  }
}

}  // namespace
}  // namespace dpc
