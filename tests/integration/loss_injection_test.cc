// Failure injection: link-level message loss. Provenance maintained for
// the executions that DID complete must remain exactly correct (validated
// against replay of the surviving deliveries), and incomplete classes must
// degrade detectably (parked pending rows), never silently wrong.
#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

class LossInjectionTest : public ::testing::TestWithParam<double> {
 protected:
  void SetUp() override {
    TransitStubParams params;
    params.num_transit = 2;
    params.stubs_per_transit = 2;
    params.nodes_per_stub = 4;
    topo_ = MakeTransitStub(params);
  }

  TransitStubTopology topo_;
};

TEST_P(LossInjectionTest, DeliveredOutputsStayQueryable) {
  double loss = GetParam();
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(*program, &topo_.graph, Scheme::kAdvanced);
  ASSERT_TRUE(bed.ok());
  (*bed)->network().SetLossRate(loss, /*seed=*/99);

  Rng rng(5);
  auto pairs = apps::PickCommunicatingPairs(topo_, 8, rng);
  for (auto [s, d] : pairs) {
    ASSERT_TRUE(
        apps::InstallRoutesForPair((*bed)->system(), topo_.graph, s, d).ok());
  }
  double t = 0;
  size_t injected = 0;
  for (int round = 0; round < 6; ++round) {
    for (auto [s, d] : pairs) {
      ASSERT_TRUE((*bed)
                      ->system()
                      .ScheduleInject(
                          apps::MakePacket(
                              s, s, d,
                              apps::MakePayload(32, round * 100 + s)),
                          t += 0.002)
                      .ok());
      ++injected;
    }
  }
  (*bed)->system().Run();

  uint64_t outputs = (*bed)->system().stats().outputs;
  if (loss == 0) {
    EXPECT_EQ(outputs, injected);
    EXPECT_EQ((*bed)->network().dropped_messages(), 0u);
  } else {
    EXPECT_LT(outputs, injected);
    EXPECT_GT((*bed)->network().dropped_messages(), 0u);
  }

  // Every delivered output is either fully queryable with a correct tree,
  // or is a parked straggler of a class whose first execution was cut
  // short (detectable, not silently wrong).
  auto querier = (*bed)->MakeQuerier();
  size_t queryable = 0, parked = 0;
  for (const OutputRecord& out : (*bed)->system().AllOutputs()) {
    Vid evid = out.meta.evid;
    auto res = querier->Query(out.tuple, &evid);
    if (!res.ok()) {
      ASSERT_TRUE(res.status().IsNotFound()) << res.status().ToString();
      ++parked;
      continue;
    }
    ++queryable;
    ASSERT_EQ(res->trees.size(), 1u);
    const ProvTree& tree = res->trees[0];
    // The reconstructed tree must be an actual execution: it starts at the
    // injected event and every hop follows an installed route.
    EXPECT_EQ(tree.Output(), out.tuple);
    Tuple current = tree.event();
    for (const ProvStep& step : tree.steps()) {
      for (const Tuple& slow : step.slow_tuples) {
        EXPECT_TRUE(
            (*bed)->system().DbAt(slow.Location()).Contains(slow));
      }
      current = step.head;
    }
  }
  EXPECT_GT(queryable, 0u);
  EXPECT_EQ(parked + queryable, outputs);
  if (loss == 0) {
    EXPECT_EQ(parked, 0u);
    EXPECT_EQ((*bed)->advanced()->PendingOutputs(), 0u);
  } else {
    // The recorder accounts for exactly the parked stragglers.
    EXPECT_EQ((*bed)->advanced()->PendingOutputs(), parked);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossInjectionTest,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5));

TEST(LossInjectionBasicTest, BasicChainsSurviveLoss) {
  // Basic has no cross-event sharing: every delivered output's chain was
  // recorded by its own execution, so all delivered outputs stay
  // queryable under any loss rate.
  TransitStubParams params;
  params.num_transit = 2;
  params.stubs_per_transit = 2;
  params.nodes_per_stub = 4;
  TransitStubTopology topo = MakeTransitStub(params);

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &topo.graph,
                             Scheme::kBasic);
  ASSERT_TRUE(bed.ok());
  (*bed)->network().SetLossRate(0.3, /*seed=*/7);

  Rng rng(5);
  auto pairs = apps::PickCommunicatingPairs(topo, 6, rng);
  for (auto [s, d] : pairs) {
    ASSERT_TRUE(
        apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d).ok());
  }
  double t = 0;
  for (int i = 0; i < 40; ++i) {
    auto [s, d] = pairs[i % pairs.size()];
    ASSERT_TRUE((*bed)
                    ->system()
                    .ScheduleInject(
                        apps::MakePacket(s, s, d, apps::MakePayload(32, i)),
                        t += 0.002)
                    .ok());
  }
  (*bed)->system().Run();
  ASSERT_GT((*bed)->system().stats().outputs, 0u);
  ASSERT_GT((*bed)->network().dropped_messages(), 0u);

  auto querier = (*bed)->MakeQuerier();
  for (const OutputRecord& out : (*bed)->system().AllOutputs()) {
    auto res = querier->Query(out.tuple);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->trees[0].Output(), out.tuple);
  }
}

TEST(LossInjectionControlTest, LostSigsLeaveCachesStale) {
  // §5.5's sig broadcast rides the same lossy network: a dropped sig
  // leaves that node's htequi stale. The system still runs; this test
  // documents the (paper-acknowledged) reliance on reliable control
  // delivery by showing the epoch skew is observable.
  Topology topo;
  NodeId n1 = topo.AddNode(), n2 = topo.AddNode(), n3 = topo.AddNode();
  LinkProps lp{0.001, 1e9};
  ASSERT_TRUE(topo.AddLink(n1, n2, lp).ok());
  ASSERT_TRUE(topo.AddLink(n2, n3, lp).ok());
  topo.ComputeRoutes();

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &topo,
                             Scheme::kAdvanced);
  ASSERT_TRUE(bed.ok());
  System& sys = (*bed)->system();
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n1, n3, n2)).ok());
  sys.Run();
  uint64_t epoch_n1 = (*bed)->advanced()->EpochAt(n1);

  (*bed)->network().SetLossRate(0.9, /*seed=*/3);
  ASSERT_TRUE(sys.InsertSlowTuple(apps::MakeRoute(n2, n3, n3)).ok());
  sys.Run();
  // n2 inserted locally: its own sig delivery is local and never dropped,
  // but remote nodes' sigs mostly are.
  EXPECT_EQ((*bed)->advanced()->EpochAt(n2), epoch_n1 + 1);
  EXPECT_LE((*bed)->advanced()->EpochAt(n1), epoch_n1 + 1);
}

}  // namespace
}  // namespace dpc
