// Integration: small-scale versions of the paper's experiments must
// reproduce the qualitative shapes of Figures 8-16 (orderings, relative
// factors, crossovers), so bench regressions are caught by ctest.
#include <gtest/gtest.h>

#include "src/apps/experiments.h"
#include "src/core/query.h"

namespace dpc {
namespace {

using apps::ExperimentConfig;
using apps::ExperimentResult;
using apps::Scheme;
using apps::Testbed;

class ForwardingFiguresTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TransitStubParams params;
    topo_ = MakeTransitStub(params);
    workload_ = apps::MakeForwardingWorkload(topo_, /*pairs=*/20,
                                             /*rate_pps=*/10,
                                             /*duration_s=*/5,
                                             apps::kDefaultPayloadLen,
                                             /*seed=*/42);
    config_.duration_s = 5;
    config_.snapshot_interval_s = 1;
  }

  ExperimentResult Run(Scheme scheme) {
    return apps::RunForwarding(scheme, topo_, workload_, config_);
  }

  TransitStubTopology topo_;
  apps::ForwardingWorkload workload_;
  ExperimentConfig config_;
};

TEST_F(ForwardingFiguresTest, Fig8And9StorageOrdering) {
  ExperimentResult exspan = Run(Scheme::kExspan);
  ExperimentResult basic = Run(Scheme::kBasic);
  ExperimentResult advanced = Run(Scheme::kAdvanced);

  // Identical executions.
  EXPECT_EQ(exspan.outputs, basic.outputs);
  EXPECT_EQ(exspan.outputs, advanced.outputs);

  // Fig. 9: total storage strictly ordered, Advanced far below ExSPAN.
  size_t last = exspan.snapshot_times.size() - 1;
  EXPECT_GT(exspan.TotalStorageAt(last), basic.TotalStorageAt(last));
  EXPECT_GT(basic.TotalStorageAt(last), advanced.TotalStorageAt(last));
  EXPECT_GT(exspan.TotalStorageAt(last), 4 * advanced.TotalStorageAt(last));

  // Fig. 8: the same ordering holds for the per-node growth-rate tails.
  Cdf exspan_cdf(exspan.PerNodeGrowthBps());
  Cdf basic_cdf(basic.PerNodeGrowthBps());
  Cdf advanced_cdf(advanced.PerNodeGrowthBps());
  EXPECT_GT(exspan_cdf.Quantile(0.9), basic_cdf.Quantile(0.9));
  EXPECT_GT(basic_cdf.Quantile(0.9), advanced_cdf.Quantile(0.9));
  EXPECT_GT(exspan_cdf.Max(), 4 * advanced_cdf.Max());
}

TEST_F(ForwardingFiguresTest, Fig11BandwidthNearlyEqual) {
  ExperimentResult exspan = Run(Scheme::kExspan);
  ExperimentResult advanced = Run(Scheme::kAdvanced);
  // With 500-byte payloads the provenance metadata is negligible: Advanced
  // adds only a few percent of bandwidth.
  double ratio = static_cast<double>(advanced.total_network_bytes) /
                 static_cast<double>(exspan.total_network_bytes);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.10);
}

TEST_F(ForwardingFiguresTest, Fig11RouteUpdatesAddLittle) {
  ExperimentResult advanced = Run(Scheme::kAdvanced);
  ExperimentConfig with_updates = config_;
  with_updates.route_update_interval_s = 1.0;
  ExperimentResult updated =
      apps::RunForwarding(Scheme::kAdvanced, topo_, workload_, with_updates);
  double increase = static_cast<double>(updated.total_network_bytes) /
                        static_cast<double>(advanced.total_network_bytes) -
                    1.0;
  EXPECT_GE(increase, 0.0);
  EXPECT_LT(increase, 0.05);  // paper: 0.6% at a 10s update interval
}

TEST_F(ForwardingFiguresTest, Fig10AdvancedGrowsWithPairs) {
  size_t small_pairs = 4, large_pairs = 32;
  auto run_with_pairs = [&](size_t pairs, Scheme scheme) {
    auto w = apps::MakeFixedCountForwardingWorkload(
        topo_, pairs, /*total_packets=*/400, /*duration_s=*/5,
        apps::kDefaultPayloadLen, /*seed=*/42);
    return apps::RunForwarding(scheme, topo_, w, config_);
  };
  ExperimentResult adv_small = run_with_pairs(small_pairs, Scheme::kAdvanced);
  ExperimentResult adv_large = run_with_pairs(large_pairs, Scheme::kAdvanced);
  // More equivalence classes => more shared trees.
  EXPECT_GT(adv_large.final_storage.rule_exec,
            adv_small.final_storage.rule_exec);
  // ExSPAN is driven by the packet count, not the pair count (+-15%).
  ExperimentResult ex_small = run_with_pairs(small_pairs, Scheme::kExspan);
  ExperimentResult ex_large = run_with_pairs(large_pairs, Scheme::kExspan);
  double flat = static_cast<double>(ex_large.final_storage.Total()) /
                static_cast<double>(ex_small.final_storage.Total());
  EXPECT_GT(flat, 0.8);
  EXPECT_LT(flat, 1.3);
  // Advanced remains well below ExSPAN even at the high pair count.
  EXPECT_GT(ex_large.final_storage.Total(),
            2 * adv_large.final_storage.Total());
}

TEST_F(ForwardingFiguresTest, Fig12QueryLatencyOrdering) {
  // Queries ran on a LAN testbed in the paper (§6.1.3): propagation is
  // sub-millisecond and processing dominates. On the WAN profile the
  // identical hop counts would drown the processing difference.
  TransitStubParams lan;
  lan.transit_transit = LinkProps{0.0005, 1e9};
  lan.transit_stub = LinkProps{0.0003, 1e9};
  lan.stub_stub = LinkProps{0.0002, 1e9};
  TransitStubTopology lan_topo = MakeTransitStub(lan);
  auto lan_workload = apps::MakeForwardingWorkload(
      lan_topo, /*pairs=*/20, /*rate_pps=*/10, /*duration_s=*/5,
      apps::kDefaultPayloadLen, /*seed=*/42);

  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  double mean_exspan = 0, mean_basic = 0, mean_advanced = 0;
  for (Scheme scheme : {Scheme::kExspan, Scheme::kBasic, Scheme::kAdvanced}) {
    auto bed = Testbed::Create(*program, &lan_topo.graph, scheme);
    ASSERT_TRUE(bed.ok());
    for (auto [s, d] : lan_workload.pairs) {
      ASSERT_TRUE(apps::InstallRoutesForPair((*bed)->system(), lan_topo.graph,
                                             s, d)
                      .ok());
    }
    for (const auto& item : lan_workload.items) {
      ASSERT_TRUE((*bed)->system().ScheduleInject(item.event, item.time_s)
                      .ok());
    }
    (*bed)->system().Run();
    auto querier = (*bed)->MakeQuerier();
    auto outputs = (*bed)->system().AllOutputs();
    ASSERT_GT(outputs.size(), 10u);
    double total = 0;
    for (size_t i = 0; i < 30; ++i) {
      auto res = querier->Query(outputs[i * outputs.size() / 30].tuple);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      total += res->latency_s;
    }
    if (scheme == Scheme::kExspan) mean_exspan = total;
    if (scheme == Scheme::kBasic) mean_basic = total;
    if (scheme == Scheme::kAdvanced) mean_advanced = total;
  }
  // The paper's ~3x: ExSPAN must be at least 1.5x either optimized scheme.
  EXPECT_GT(mean_exspan, 1.5 * mean_basic);
  EXPECT_GT(mean_exspan, 1.5 * mean_advanced);
}

class DnsFiguresTest : public ::testing::Test {
 protected:
  void SetUp() override {
    apps::DnsParams params;
    params.num_servers = 40;
    params.num_urls = 12;
    params.trunk_depth = 10;
    universe_ = apps::MakeDnsUniverse(params);
    workload_ = apps::MakeDnsWorkload(universe_, /*count=*/300,
                                      /*rate_rps=*/100, 0.9, /*seed=*/42);
    config_.duration_s = 3.5;
    config_.snapshot_interval_s = 0.5;
  }

  ExperimentResult Run(Scheme scheme) {
    return apps::RunDns(scheme, universe_, workload_, config_);
  }

  apps::DnsUniverse universe_;
  std::vector<apps::WorkloadItem> workload_;
  ExperimentConfig config_;
};

TEST_F(DnsFiguresTest, Fig13And16StorageOrdering) {
  ExperimentResult exspan = Run(Scheme::kExspan);
  ExperimentResult basic = Run(Scheme::kBasic);
  ExperimentResult advanced = Run(Scheme::kAdvanced);
  EXPECT_EQ(exspan.outputs, 300u);
  size_t last = exspan.snapshot_times.size() - 1;
  EXPECT_GT(exspan.TotalStorageAt(last), basic.TotalStorageAt(last));
  EXPECT_GT(basic.TotalStorageAt(last), advanced.TotalStorageAt(last));
  // The DNS gap is smaller than forwarding's in the paper, but Advanced
  // still wins by a clear factor.
  EXPECT_GT(exspan.TotalStorageAt(last), 3 * advanced.TotalStorageAt(last));
}

TEST_F(DnsFiguresTest, Fig15AdvancedBandwidthOverheadVisible) {
  ExperimentResult exspan = Run(Scheme::kExspan);
  ExperimentResult advanced = Run(Scheme::kAdvanced);
  double ratio = static_cast<double>(advanced.total_network_bytes) /
                 static_cast<double>(exspan.total_network_bytes);
  // No payload: the metadata overhead shows up (paper: ~+25%).
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.60);
}

TEST_F(DnsFiguresTest, Fig14AdvancedScalesWithUrls) {
  apps::DnsParams params;
  params.num_servers = 40;
  params.num_urls = 12;
  params.trunk_depth = 10;
  params.num_clients = 3;
  apps::DnsUniverse u = apps::MakeDnsUniverse(params);
  auto run_urls = [&](int urls) {
    auto w = apps::MakeDnsWorkload(u, 200, 100, 0.9, 42, urls);
    ExperimentConfig c;
    c.duration_s = 2.5;
    c.snapshot_interval_s = 0.5;
    return apps::RunDns(Scheme::kAdvanced, u, w, c);
  };
  ExperimentResult few = run_urls(2);
  ExperimentResult many = run_urls(12);
  EXPECT_GT(many.final_storage.rule_exec, few.final_storage.rule_exec);
}

}  // namespace
}  // namespace dpc
