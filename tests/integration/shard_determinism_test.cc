// Shard-count differential: the sharded parallel runtime must be an
// implementation detail. For the same program, topology, workload and
// seed, a run at 2 or 8 shards must produce byte-identical per-node
// storage accounting, identical runtime/network counters, identical
// provenance query answers — and, under injected loss, the identical set
// of dropped traversals — as the classic single-queue run.
#include <gtest/gtest.h>

#include <sstream>

#include "src/apps/dns.h"
#include "src/apps/experiments.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"

namespace dpc {
namespace {

using apps::ExperimentConfig;
using apps::ExperimentResult;
using apps::Scheme;
using apps::Testbed;

TransitStubTopology MakeTopo() {
  TransitStubParams params;
  params.num_transit = 2;
  params.stubs_per_transit = 2;
  params.nodes_per_stub = 4;
  return MakeTransitStub(params);
}

// Field-by-field equality of two experiment runs' accounting. Gtest
// assertions fire inside, labeled with the shard counts compared.
void ExpectIdenticalResults(const ExperimentResult& a,
                            const ExperimentResult& b,
                            const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.events_injected, b.events_injected);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.total_network_bytes, b.total_network_bytes);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.bandwidth_buckets, b.bandwidth_buckets);
  EXPECT_EQ(a.snapshot_times, b.snapshot_times);
  // The per-snapshot, per-node storage bytes: the strongest accounting
  // identity — every prov/ruleExec/tuple row landed on the same node
  // with the same serialized size at the same simulated time.
  EXPECT_EQ(a.per_node_storage, b.per_node_storage);
  EXPECT_EQ(a.final_storage.prov, b.final_storage.prov);
  EXPECT_EQ(a.final_storage.rule_exec, b.final_storage.rule_exec);
  EXPECT_EQ(a.final_storage.event_store, b.final_storage.event_store);
  EXPECT_EQ(a.final_storage.tuple_store, b.final_storage.tuple_store);
}

// Parameterized over (scheme, seed, batch_eval): the shard identity must
// hold with set-at-a-time evaluation on and off — batch drains never
// cross a shard window, so sharding and batching compose.
class ShardDeterminismTest
    : public ::testing::TestWithParam<std::tuple<Scheme, uint64_t, bool>> {};

TEST_P(ShardDeterminismTest, ForwardingAccountingIdenticalAcrossShardCounts) {
  auto [scheme, seed, batch_eval] = GetParam();
  TransitStubTopology topo = MakeTopo();
  auto workload =
      apps::MakeForwardingWorkload(topo, /*pairs=*/8, /*rate_pps=*/40,
                                   /*duration_s=*/1.5, /*payload_len=*/64,
                                   seed);
  auto run = [&, batch_eval = batch_eval](int shards) {
    ExperimentConfig config;
    config.duration_s = 1.5;
    config.snapshot_interval_s = 0.5;
    config.shards = shards;
    config.batch_eval = batch_eval;
    config.metrics = false;
    return apps::RunForwarding(scheme, topo, workload, config);
  };
  ExperimentResult base = run(1);
  ASSERT_GT(base.outputs, 0u);
  ExpectIdenticalResults(base, run(2), "forwarding shards 1 vs 2");
  ExpectIdenticalResults(base, run(8), "forwarding shards 1 vs 8");
}

TEST_P(ShardDeterminismTest, DnsAccountingIdenticalAcrossShardCounts) {
  auto [scheme, seed, batch_eval] = GetParam();
  apps::DnsParams params;
  params.num_servers = 24;
  params.num_urls = 12;
  params.trunk_depth = 8;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(params);
  auto workload = apps::MakeDnsWorkload(universe, /*count=*/60,
                                        /*rate_rps=*/50, /*zipf_theta=*/0.9,
                                        seed);
  auto run = [&, batch_eval = batch_eval](int shards) {
    ExperimentConfig config;
    config.duration_s = 60.0 / 50;
    config.snapshot_interval_s = 0.4;
    config.shards = shards;
    config.batch_eval = batch_eval;
    config.metrics = false;
    return apps::RunDns(scheme, universe, workload, config);
  };
  ExperimentResult base = run(1);
  ASSERT_GT(base.outputs, 0u);
  ExpectIdenticalResults(base, run(2), "dns shards 1 vs 2");
  ExpectIdenticalResults(base, run(8), "dns shards 1 vs 8");
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSeeds, ShardDeterminismTest,
    ::testing::Combine(::testing::Values(Scheme::kExspan, Scheme::kBasic,
                                         Scheme::kAdvanced),
                       ::testing::Values(1u, 23u),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(apps::SchemeName(std::get<0>(info.param))) + "Seed" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "Batched" : "Unbatched");
    });

// Under hash-keyed loss the drop set is a pure function of (seed,
// transmission, link) — so a lossy sharded run drops exactly the same
// traversals, delivers exactly the same outputs, and stores exactly the
// same rows as the single-queue run.
TEST(ShardDeterminismLossTest, LossyRunsDropIdenticalSets) {
  TransitStubTopology topo = MakeTopo();
  auto workload = apps::MakeForwardingWorkload(topo, 8, 40, 1.5, 64, 11);
  auto run = [&](int shards) {
    ExperimentConfig config;
    config.duration_s = 1.5;
    config.snapshot_interval_s = 0.5;
    config.loss_rate = 0.2;
    config.loss_seed = 77;
    config.shards = shards;
    config.metrics = false;
    return apps::RunForwarding(Scheme::kAdvanced, topo, workload, config);
  };
  ExperimentResult base = run(1);
  ASSERT_GT(base.dropped_messages, 0u);
  ASSERT_GT(base.outputs, 0u);
  EXPECT_LT(base.outputs, base.events_injected);
  ExpectIdenticalResults(base, run(2), "lossy shards 1 vs 2");
  ExpectIdenticalResults(base, run(8), "lossy shards 1 vs 8");
}

// Provenance queries — the paper's actual deliverable — answer
// identically whatever the shard count: same trees, same structure, for
// every delivered output.
TEST(ShardDeterminismQueryTest, QueryAnswersIdenticalAcrossShardCounts) {
  TransitStubTopology topo = MakeTopo();
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  Rng rng(5);
  auto pairs = apps::PickCommunicatingPairs(topo, 6, rng);

  auto run = [&](int shards) {
    apps::TestbedOptions options;
    options.shards = shards;
    options.metrics = false;
    auto bed = Testbed::Create(*program, &topo.graph, Scheme::kAdvanced,
                               options);
    EXPECT_TRUE(bed.ok());
    EXPECT_EQ((*bed)->shards(), shards);  // no silent clamp on this topo
    for (auto [s, d] : pairs) {
      EXPECT_TRUE(
          apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d)
              .ok());
    }
    double t = 0;
    for (int round = 0; round < 4; ++round) {
      for (auto [s, d] : pairs) {
        EXPECT_TRUE((*bed)
                        ->system()
                        .ScheduleInject(
                            apps::MakePacket(
                                s, s, d,
                                apps::MakePayload(32, round * 100 + s)),
                            t += 0.002)
                        .ok());
      }
    }
    (*bed)->system().Run();
    // Serialize every output's provenance answer into one canonical blob.
    auto querier = (*bed)->MakeQuerier();
    std::ostringstream answers;
    for (const OutputRecord& out : (*bed)->system().AllOutputs()) {
      Vid evid = out.meta.evid;
      auto res = querier->Query(out.tuple, &evid);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      if (!res.ok()) continue;
      for (const ProvTree& tree : res->trees) {
        answers << tree.ToString() << "\n";
      }
    }
    return answers.str();
  };

  std::string base = run(1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

// Reliable transport no longer clamps: per-node transport state and
// shard-owned retransmission timers make it cross-shard safe, so the
// testbed honors the requested shard count.
TEST(ShardDeterminismTestbedTest, ReliableTransportRunsSharded) {
  TransitStubTopology topo = MakeTopo();
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  apps::TestbedOptions options;
  options.shards = 4;
  options.reliable_transport = true;
  auto bed = Testbed::Create(*program, &topo.graph, Scheme::kBasic, options);
  ASSERT_TRUE(bed.ok());
  EXPECT_EQ((*bed)->shards(), 4);
  EXPECT_NE((*bed)->shard_engine(), nullptr);
}

// The full shard identity must also hold with the reliable transport in
// the path: per-source sequence numbers, the salted per-transmission loss
// hash, and retransmission timers on the owning shard reproduce the exact
// drop set, ack traffic, storage bytes and query answers of the
// single-queue run — under 20% injected loss.
class ReliableTransportShardTest
    : public ::testing::TestWithParam<Scheme> {};

TEST_P(ReliableTransportShardTest, LossyReliableRunsIdenticalAcrossShards) {
  Scheme scheme = GetParam();
  TransitStubTopology topo = MakeTopo();
  auto workload = apps::MakeForwardingWorkload(topo, 8, 40, 1.5, 64, 19);
  auto run = [&](int shards) {
    ExperimentConfig config;
    config.duration_s = 1.5;
    config.snapshot_interval_s = 0.5;
    config.loss_rate = 0.2;
    config.loss_seed = 91;
    config.reliable_transport = true;
    config.shards = shards;
    config.metrics = false;
    return apps::RunForwarding(scheme, topo, workload, config);
  };
  ExperimentResult base = run(1);
  ASSERT_GT(base.dropped_messages, 0u);
  ASSERT_GT(base.outputs, 0u);
  ExpectIdenticalResults(base, run(2), "reliable lossy shards 1 vs 2");
  ExpectIdenticalResults(base, run(8), "reliable lossy shards 1 vs 8");
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ReliableTransportShardTest,
    ::testing::Values(Scheme::kExspan, Scheme::kBasic, Scheme::kAdvanced),
    [](const auto& info) {
      return std::string(apps::SchemeName(info.param));
    });

// Query answers through the reliable transport, sharded: every delivered
// output's provenance tree is byte-identical whatever the shard count.
TEST(ShardDeterminismQueryTest, ReliableQueriesIdenticalAcrossShardCounts) {
  TransitStubTopology topo = MakeTopo();
  auto program = apps::MakeForwardingProgram();
  ASSERT_TRUE(program.ok());
  Rng rng(9);
  auto pairs = apps::PickCommunicatingPairs(topo, 4, rng);

  auto run = [&](int shards) {
    apps::TestbedOptions options;
    options.shards = shards;
    options.reliable_transport = true;
    options.loss_rate = 0.2;
    options.loss_seed = 13;
    options.metrics = false;
    auto bed = Testbed::Create(*program, &topo.graph, Scheme::kAdvanced,
                               options);
    EXPECT_TRUE(bed.ok());
    EXPECT_EQ((*bed)->shards(), shards);
    for (auto [s, d] : pairs) {
      EXPECT_TRUE(
          apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d)
              .ok());
    }
    double t = 0;
    for (int round = 0; round < 3; ++round) {
      for (auto [s, d] : pairs) {
        EXPECT_TRUE((*bed)
                        ->system()
                        .ScheduleInject(
                            apps::MakePacket(
                                s, s, d,
                                apps::MakePayload(32, round * 100 + s)),
                            t += 0.002)
                        .ok());
      }
    }
    (*bed)->system().Run();
    auto querier = (*bed)->MakeQuerier();
    std::ostringstream answers;
    for (const OutputRecord& out : (*bed)->system().AllOutputs()) {
      Vid evid = out.meta.evid;
      auto res = querier->Query(out.tuple, &evid);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      if (!res.ok()) continue;
      for (const ProvTree& tree : res->trees) {
        answers << tree.ToString() << "\n";
      }
    }
    return answers.str();
  };

  std::string base = run(1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(8));
}

}  // namespace
}  // namespace dpc
