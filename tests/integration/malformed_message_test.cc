// Malformed-peer-bytes hardening: truncated, garbage and replayed frames
// pushed straight at System::HandleMessage and
// DistributedQuerier::HandleMessage must terminate with an error Status —
// never a DPC_CHECK abort — and show up in the malformed-message
// counters. Run under ASan in CI, this is the regression gate for the
// remote-reachable abort paths.
#include <gtest/gtest.h>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/distributed_query.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"
#include "src/util/serial.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;

Message Make(MessageKind kind, std::vector<uint8_t> payload, NodeId src = 3,
             NodeId dst = 0) {
  Message msg;
  msg.kind = kind;
  msg.src = src;
  msg.dst = dst;
  msg.payload = std::move(payload);
  return msg;
}

std::vector<uint8_t> RandomBytes(Rng& rng, size_t n) {
  std::vector<uint8_t> out(n);
  for (uint8_t& b : out) b = static_cast<uint8_t>(rng.NextBelow(256));
  return out;
}

class MalformedMessageTest : public ::testing::TestWithParam<Scheme> {
 protected:
  void SetUp() override {
    TransitStubParams params;
    params.num_transit = 2;
    params.stubs_per_transit = 2;
    params.nodes_per_stub = 3;
    topo_ = MakeTransitStub(params);
    auto program = apps::MakeForwardingProgram();
    ASSERT_TRUE(program.ok());
    auto bed = Testbed::Create(std::move(program).value(), &topo_.graph,
                               GetParam());
    ASSERT_TRUE(bed.ok());
    bed_ = std::move(bed).value();

    Rng rng(17);
    auto pairs = apps::PickCommunicatingPairs(topo_, 3, rng);
    for (auto [s, d] : pairs) {
      ASSERT_TRUE(
          apps::InstallRoutesForPair(bed_->system(), topo_.graph, s, d).ok());
    }
    double t = 0;
    for (auto [s, d] : pairs) {
      ASSERT_TRUE(bed_->system()
                      .ScheduleInject(
                          apps::MakePacket(s, s, d,
                                           apps::MakePayload(64, s)),
                          t += 0.001)
                      .ok());
    }
    bed_->system().Run();
    ASSERT_GT(bed_->system().stats().outputs, 0u);
  }

  TransitStubTopology topo_;
  std::unique_ptr<Testbed> bed_;
};

TEST_P(MalformedMessageTest, SystemRejectsGarbageEventPayloads) {
  System& sys = bed_->system();
  uint64_t before =
      GlobalMetrics().GetCounter("system.malformed_messages").value();

  // Empty, short and random payloads: all must fail tuple decoding.
  EXPECT_FALSE(sys.HandleMessage(Make(MessageKind::kEvent, {})).ok());
  EXPECT_FALSE(sys.HandleMessage(Make(MessageKind::kEvent, {0xff})).ok());
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    Message msg = Make(MessageKind::kEvent,
                       RandomBytes(rng, rng.NextBelow(64)));
    Status st = sys.HandleMessage(msg);  // must return, never abort
    if (st.ok()) {
      // Astronomically unlikely: random bytes decoded as a full valid
      // event. Acceptable as long as the process survived.
      continue;
    }
  }

  // A structurally valid tuple whose location slot is not an integer.
  Tuple bad("packet", {Value::Str("not-a-node"), Value::Int(1)});
  ByteWriter w;
  bad.Serialize(w);
  EXPECT_FALSE(sys.HandleMessage(Make(MessageKind::kEvent, w.Take())).ok());

  // A valid tuple with the recorder metadata truncated off.
  Tuple good = apps::MakePacket(0, 0, 1, "payload");
  ByteWriter w2;
  good.Serialize(w2);
  EXPECT_FALSE(sys.HandleMessage(Make(MessageKind::kEvent, w2.Take())).ok());

  EXPECT_GT(GlobalMetrics().GetCounter("system.malformed_messages").value(),
            before);
}

TEST_P(MalformedMessageTest, SystemRejectsForeignKinds) {
  // Query frames ride the querier's own network; acks belong to the
  // transport. Either arriving at the System is a peer error.
  EXPECT_FALSE(
      bed_->system().HandleMessage(Make(MessageKind::kQuery, {1, 2, 3})).ok());
  EXPECT_FALSE(
      bed_->system().HandleMessage(Make(MessageKind::kAck, {})).ok());
  // Control signals carry no payload to decode: always accepted.
  EXPECT_TRUE(
      bed_->system().HandleMessage(Make(MessageKind::kControl, {9})).ok());
}

std::unique_ptr<DistributedQuerier> MakeDistributed(Testbed& bed,
                                                    const Topology* topo) {
  switch (bed.scheme()) {
    case Scheme::kExspan:
      return DistributedQuerier::ForExspan(bed.exspan(), topo, &bed.queue());
    case Scheme::kBasic:
      return DistributedQuerier::ForBasic(bed.basic(), &bed.program(),
                                          &bed.system().functions(), topo,
                                          &bed.queue());
    default:
      return DistributedQuerier::ForAdvanced(bed.advanced(), &bed.program(),
                                             &bed.system().functions(), topo,
                                             &bed.queue());
  }
}

TEST_P(MalformedMessageTest, QuerierRejectsTruncatedAndUnknownFrames) {
  auto querier = MakeDistributed(*bed_, &topo_.graph);

  // Truncated: fewer than the 8 id bytes.
  EXPECT_TRUE(querier->HandleMessage(Make(MessageKind::kQuery, {}))
                  .IsInvalidArgument());
  EXPECT_TRUE(querier->HandleMessage(Make(MessageKind::kQuery, {1, 2, 3}))
                  .IsInvalidArgument());

  // Well-formed id, but no such continuation: the late/replayed case.
  ByteWriter w;
  w.PutU64(12345);
  EXPECT_TRUE(querier->HandleMessage(Make(MessageKind::kQuery, w.Take()))
                  .IsNotFound());

  // Fuzz: no live continuations, so every frame must fail cleanly.
  Rng rng(4242);
  for (int i = 0; i < 500; ++i) {
    Message msg = Make(MessageKind::kQuery,
                       RandomBytes(rng, rng.NextBelow(32)));
    EXPECT_FALSE(querier->HandleMessage(msg).ok());
  }
}

TEST_P(MalformedMessageTest, ReplayedFramesAfterCompletionAreCountedNoOps) {
  auto querier = MakeDistributed(*bed_, &topo_.graph);
  OutputRecord out = bed_->system().AllOutputs().front();
  bool use_evid = GetParam() == Scheme::kAdvanced;
  auto res = querier->QueryAndWait(out.tuple,
                                   use_evid ? &out.meta.evid : nullptr);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  // The protocol allocated continuation ids starting at 0; after the
  // query completed they are all retired, so replaying them must be a
  // counted error, not a crash or a double-release.
  uint64_t before =
      GlobalMetrics().GetCounter("query.unknown_continuations").value();
  for (uint64_t id = 0; id < 64; ++id) {
    ByteWriter w;
    w.PutU64(id);
    EXPECT_TRUE(querier->HandleMessage(Make(MessageKind::kQuery, w.Take()))
                    .IsNotFound());
  }
  EXPECT_EQ(
      GlobalMetrics().GetCounter("query.unknown_continuations").value(),
      before + 64);

  // The querier still works after the abuse.
  auto again = querier->QueryAndWait(out.tuple,
                                     use_evid ? &out.meta.evid : nullptr);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MalformedMessageTest,
                         ::testing::Values(Scheme::kExspan, Scheme::kBasic,
                                           Scheme::kAdvanced),
                         [](const auto& info) {
                           return std::string(apps::SchemeName(info.param));
                         });

}  // namespace
}  // namespace dpc
