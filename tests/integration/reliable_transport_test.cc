// End-to-end fault tolerance: with the reliable transport layered over a
// lossy network, forwarding and DNS runs must converge to byte-identical
// outputs and identical runtime stats versus the loss-free run — each
// retransmitted delivery applied exactly once — and every provenance query
// must terminate with a result or DeadlineExceeded, deterministically per
// seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/apps/dns.h"
#include "src/apps/experiments.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/distributed_query.h"

namespace dpc {
namespace {

using apps::Scheme;
using apps::Testbed;
using apps::TestbedOptions;

// Serialized output tuples per node, each node's multiset sorted so
// arrival-order jitter from retransmission delays does not matter.
std::vector<std::vector<std::vector<uint8_t>>> OutputBytes(Testbed& bed) {
  std::vector<std::vector<std::vector<uint8_t>>> per_node;
  for (NodeId n = 0; n < bed.topology().num_nodes(); ++n) {
    std::vector<std::vector<uint8_t>> rows;
    for (const OutputRecord& out : bed.system().OutputsAt(n)) {
      ByteWriter w;
      out.tuple.Serialize(w);
      rows.push_back(w.Take());
    }
    std::sort(rows.begin(), rows.end());
    per_node.push_back(std::move(rows));
  }
  return per_node;
}

TransitStubTopology SmallTransitStub() {
  TransitStubParams params;
  params.num_transit = 2;
  params.stubs_per_transit = 2;
  params.nodes_per_stub = 4;
  return MakeTransitStub(params);
}

std::unique_ptr<Testbed> RunForwardingWorkload(const TransitStubTopology& topo,
                                               Scheme scheme,
                                               TestbedOptions options) {
  auto program = apps::MakeForwardingProgram();
  EXPECT_TRUE(program.ok());
  auto bed = Testbed::Create(std::move(program).value(), &topo.graph, scheme,
                             std::move(options));
  EXPECT_TRUE(bed.ok());
  Rng rng(5);
  auto pairs = apps::PickCommunicatingPairs(topo, 6, rng);
  for (auto [s, d] : pairs) {
    EXPECT_TRUE(
        apps::InstallRoutesForPair((*bed)->system(), topo.graph, s, d).ok());
  }
  double t = 0;
  for (int round = 0; round < 4; ++round) {
    for (auto [s, d] : pairs) {
      EXPECT_TRUE((*bed)
                      ->system()
                      .ScheduleInject(
                          apps::MakePacket(
                              s, s, d,
                              apps::MakePayload(32, round * 100 + s)),
                          t += 0.002)
                      .ok());
    }
  }
  (*bed)->system().Run();
  return std::move(bed).value();
}

TEST(ReliableForwardingTest, TwentyPercentLossConvergesToLossFreeRun) {
  TransitStubTopology topo = SmallTransitStub();
  auto clean = RunForwardingWorkload(topo, Scheme::kAdvanced, {});
  ASSERT_GT(clean->system().stats().outputs, 0u);

  TestbedOptions lossy;
  lossy.loss_rate = 0.2;
  lossy.loss_seed = 42;
  lossy.reliable_transport = true;
  // Pure loss is transient: retry until delivered (bounded attempts are
  // for permanent faults like partitions).
  lossy.transport.max_attempts = 0;
  auto survived = RunForwardingWorkload(topo, Scheme::kAdvanced, lossy);

  // The network really did drop traffic, the transport really did resend.
  EXPECT_GT(survived->network().dropped_messages(), 0u);
  EXPECT_GT(survived->transport()->stats().retransmissions, 0u);
  EXPECT_EQ(survived->transport()->stats().delivery_failures, 0u);

  // Dedup applied every retransmitted delivery exactly once: the runtime
  // stats and the outputs are identical to the loss-free run, byte for
  // byte.
  EXPECT_EQ(survived->system().stats().outputs,
            clean->system().stats().outputs);
  EXPECT_EQ(survived->system().stats().rule_firings,
            clean->system().stats().rule_firings);
  EXPECT_EQ(survived->system().stats().control_signals,
            clean->system().stats().control_signals);
  EXPECT_EQ(OutputBytes(*survived), OutputBytes(*clean));

  // No pending stragglers: every class completed (§5.3 accounting).
  EXPECT_EQ(survived->advanced()->PendingOutputs(), 0u);
}

TEST(ReliableForwardingTest, DeterministicPerSeed) {
  TransitStubTopology topo = SmallTransitStub();
  TestbedOptions lossy;
  lossy.loss_rate = 0.25;
  lossy.loss_seed = 7;
  lossy.reliable_transport = true;
  lossy.transport.max_attempts = 0;
  auto a = RunForwardingWorkload(topo, Scheme::kBasic, lossy);
  auto b = RunForwardingWorkload(topo, Scheme::kBasic, lossy);
  EXPECT_EQ(a->network().dropped_messages(), b->network().dropped_messages());
  EXPECT_EQ(a->transport()->stats().retransmissions,
            b->transport()->stats().retransmissions);
  EXPECT_EQ(a->transport()->stats().duplicates_suppressed,
            b->transport()->stats().duplicates_suppressed);
  EXPECT_EQ(OutputBytes(*a), OutputBytes(*b));
}

TEST(ReliableForwardingTest, QueriesSurviveLossEndToEnd) {
  // Maintain under loss+transport, then query every output over a lossy
  // query network with its own reliable transport: all trees must verify.
  TransitStubTopology topo = SmallTransitStub();
  TestbedOptions lossy;
  lossy.loss_rate = 0.2;
  lossy.loss_seed = 13;
  lossy.reliable_transport = true;
  lossy.transport.max_attempts = 0;
  auto bed = RunForwardingWorkload(topo, Scheme::kAdvanced, lossy);
  ASSERT_GT(bed->system().stats().outputs, 10u);

  auto distributed = DistributedQuerier::ForAdvanced(
      bed->advanced(), &bed->program(), &bed->system().functions(),
      &topo.graph, &bed->queue());
  distributed->network().SetLossRate(0.2, /*seed=*/14);
  TransportOptions retry_forever;
  retry_forever.max_attempts = 0;
  distributed->EnableReliableTransport(retry_forever);
  distributed->set_default_deadline_s(120.0);
  auto analytic = bed->MakeQuerier();
  for (const OutputRecord& out : bed->system().AllOutputs()) {
    Vid evid = out.meta.evid;
    auto expected = analytic->Query(out.tuple, &evid);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto got = distributed->QueryAndWait(out.tuple, &evid);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->trees.size(), expected->trees.size());
    EXPECT_EQ(got->trees[0].Output(), out.tuple);
  }
}

TEST(ReliableDnsTest, DnsRunConvergesUnderLoss) {
  apps::DnsParams params;
  params.num_servers = 30;
  params.num_urls = 12;
  params.trunk_depth = 8;
  apps::DnsUniverse universe = apps::MakeDnsUniverse(params);
  auto workload =
      apps::MakeDnsWorkload(universe, /*count=*/60, /*rate_rps=*/200,
                            /*zipf_theta=*/0.9, /*seed=*/3);

  // Basic stores every event's own chain (no cross-event sharing), so its
  // storage totals are delivery-order independent and must match the
  // loss-free run exactly.
  apps::ExperimentConfig clean_config;
  clean_config.duration_s = 2;
  clean_config.snapshot_interval_s = 1;
  auto clean = apps::RunDns(Scheme::kBasic, universe, workload, clean_config);
  ASSERT_GT(clean.outputs, 0u);

  apps::ExperimentConfig lossy_config = clean_config;
  lossy_config.loss_rate = 0.2;
  lossy_config.loss_seed = 21;
  lossy_config.reliable_transport = true;
  lossy_config.transport.max_attempts = 0;
  auto survived = apps::RunDns(Scheme::kBasic, universe, workload,
                               lossy_config);

  EXPECT_GT(survived.dropped_messages, 0u);
  EXPECT_GT(survived.transport_stats.retransmissions, 0u);
  EXPECT_EQ(survived.transport_stats.delivery_failures, 0u);
  // Exactly-once delivery: the lossy run produced the same work.
  EXPECT_EQ(survived.events_injected, clean.events_injected);
  EXPECT_EQ(survived.outputs, clean.outputs);
  // And the same final provenance storage, byte for byte.
  EXPECT_EQ(survived.final_storage.Total(), clean.final_storage.Total());
}

TEST(ReliableForwardingTest, UnreliableLossyRunStaysDegraded) {
  // Control: without the transport the same loss rate loses outputs, so
  // the convergence above is the transport's doing.
  TransitStubTopology topo = SmallTransitStub();
  auto clean = RunForwardingWorkload(topo, Scheme::kAdvanced, {});
  TestbedOptions lossy;
  lossy.loss_rate = 0.2;
  lossy.loss_seed = 42;
  auto degraded = RunForwardingWorkload(topo, Scheme::kAdvanced, lossy);
  EXPECT_LT(degraded->system().stats().outputs,
            clean->system().stats().outputs);
}

}  // namespace
}  // namespace dpc
