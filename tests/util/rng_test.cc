// Rng determinism/range properties and the Zipf sampler's distribution.
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace dpc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (uint64_t n : {1ULL, 2ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(n), n);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(5);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);
}

TEST(ZipfTest, RanksWithinBounds) {
  ZipfGenerator zipf(38, 0.9, 3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(), 38u);
  }
}

TEST(ZipfTest, PopularityIsMonotone) {
  ZipfGenerator zipf(20, 0.9, 3);
  std::map<size_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Next()];
  // Rank 0 must dominate; counts decrease (allowing sampling noise) with
  // rank.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[19]);
  // Rank 0's share under theta=0.9 over 20 items is roughly 25%.
  EXPECT_GT(counts[0], 200000 / 8);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0, 3);
  std::map<size_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  for (const auto& [_, c] : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(ZipfTest, SingleItem) {
  ZipfGenerator zipf(1, 0.9, 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Next(), 0u);
}

}  // namespace
}  // namespace dpc
