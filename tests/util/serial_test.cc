// ByteWriter/ByteReader round-trips and malformed-input handling.
#include "src/util/serial.h"

#include <gtest/gtest.h>

#include <limits>

namespace dpc {
namespace {

TEST(SerialTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.AtEnd());
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  ByteWriter w;
  w.PutVarint(GetParam());
  ByteReader r(w.bytes());
  auto v = r.GetVarint();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL,
                      16384ULL, (1ULL << 32), (1ULL << 56),
                      std::numeric_limits<uint64_t>::max()));

class SignedVarintRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTrip, Signed) {
  ByteWriter w;
  w.PutVarintSigned(GetParam());
  ByteReader r(w.bytes());
  auto v = r.GetVarintSigned();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Values, SignedVarintRoundTrip,
    ::testing::Values(0LL, 1LL, -1LL, 63LL, -64LL, 64LL, -65LL, 1000000LL,
                      -1000000LL, std::numeric_limits<int64_t>::max(),
                      std::numeric_limits<int64_t>::min()));

TEST(SerialTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("");
  w.PutString("hello");
  std::string binary("\x00\x01\xff", 3);
  w.PutString(binary);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetString().value(), binary);
}

TEST(SerialTest, DigestRoundTrip) {
  Sha1Digest d = Sha1::Hash("digest");
  ByteWriter w;
  w.PutDigest(d);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetDigest().value(), d);
}

TEST(SerialTest, BoolRoundTrip) {
  ByteWriter w;
  w.PutBool(true);
  w.PutBool(false);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.GetBool().value());
  EXPECT_FALSE(r.GetBool().value());
}

TEST(SerialTest, TruncatedReadsFail) {
  ByteWriter w;
  w.PutU32(7);
  std::vector<uint8_t> bytes = w.Take();
  bytes.pop_back();
  ByteReader r(bytes);
  auto v = r.GetU32();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsParseError());
}

TEST(SerialTest, TruncatedStringBodyFails) {
  ByteWriter w;
  w.PutVarint(100);  // claims a 100-byte string follows
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(SerialTest, OverlongVarintFails) {
  std::vector<uint8_t> bytes(11, 0x80);  // never terminates within 64 bits
  ByteReader r(bytes);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(SerialTest, EmptyReaderAtEnd) {
  std::vector<uint8_t> empty;
  ByteReader r(empty);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_FALSE(r.GetU8().ok());
}

TEST(SerialTest, RemainingTracksPosition) {
  ByteWriter w;
  w.PutU64(1);
  w.PutU8(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 9u);
  (void)r.GetU64();
  EXPECT_EQ(r.remaining(), 1u);
}

}  // namespace
}  // namespace dpc
