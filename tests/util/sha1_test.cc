// SHA-1 against FIPS 180-1 / RFC 3174 test vectors, plus incremental
// hashing and digest utilities.
#include "src/util/sha1.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

namespace dpc {
namespace {

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(Sha1::Hash("").ToHex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(Sha1::Hash("abc").ToHex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  std::string a(1000000, 'a');
  EXPECT_EQ(Sha1::Hash(a).ToHex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, ExactBlockBoundary) {
  // 64-byte input exercises the padding-into-new-block path.
  std::string block(64, 'x');
  EXPECT_EQ(Sha1::Hash(block), Sha1::Hash(block.data(), block.size()));
  std::string b55(55, 'y'), b56(56, 'y'), b57(57, 'y');
  EXPECT_NE(Sha1::Hash(b55), Sha1::Hash(b56));
  EXPECT_NE(Sha1::Hash(b56), Sha1::Hash(b57));
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  std::string data =
      "the quick brown fox jumps over the lazy dog, repeatedly and at "
      "odd chunk boundaries";
  for (size_t chunk : {1u, 3u, 7u, 13u, 64u, 100u}) {
    Sha1 hasher;
    for (size_t i = 0; i < data.size(); i += chunk) {
      hasher.Update(data.substr(i, chunk));
    }
    EXPECT_EQ(hasher.Finish(), Sha1::Hash(data)) << "chunk " << chunk;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.Update("abc");
  Sha1Digest first = hasher.Finish();
  hasher.Reset();
  hasher.Update("abc");
  EXPECT_EQ(hasher.Finish(), first);
}

TEST(Sha1DigestTest, HexTruncation) {
  Sha1Digest d = Sha1::Hash("abc");
  EXPECT_EQ(d.ToHex(4), "a9993e36");
  EXPECT_EQ(d.ToHex(0).size(), 40u);
  EXPECT_EQ(d.ToHex(40).size(), 40u);  // clamped to digest size
}

TEST(Sha1DigestTest, OrderingAndEquality) {
  Sha1Digest a = Sha1::Hash("a");
  Sha1Digest b = Sha1::Hash("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_EQ(a, Sha1::Hash("a"));
}

TEST(Sha1DigestTest, ZeroDetection) {
  Sha1Digest zero{};
  EXPECT_TRUE(zero.IsZero());
  EXPECT_FALSE(Sha1::Hash("x").IsZero());
}

TEST(Sha1DigestTest, Prefix64IsStable) {
  Sha1Digest d = Sha1::Hash("abc");
  EXPECT_EQ(d.Prefix64(), Sha1::Hash("abc").Prefix64());
  EXPECT_NE(d.Prefix64(), Sha1::Hash("abd").Prefix64());
}

TEST(Sha1DigestTest, NoCollisionsOverManyInputs) {
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(Sha1::Hash(std::to_string(i)).ToHex());
  }
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace dpc
