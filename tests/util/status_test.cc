// Status / Result plumbing and the propagation macros.
#include "src/util/status.h"

#include <gtest/gtest.h>

#include "src/util/result.h"

namespace dpc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("no such tuple");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "no such tuple");
  EXPECT_EQ(st.ToString(), "NotFound: no such tuple");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, DeadlineExceededPrintsItsName) {
  EXPECT_EQ(Status::DeadlineExceeded("query timed out").ToString(),
            "DeadlineExceeded: query timed out");
}

TEST(StatusTest, CopyIsCheap) {
  Status st = Status::Internal("boom");
  Status copy = st;
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_EQ(copy.code(), st.code());
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  DPC_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("must be positive");
  return x * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  EXPECT_EQ(ParsePositive(5).ValueOr(0), 10);
}

Result<int> UsesAssignOrReturn(int x) {
  DPC_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(UsesAssignOrReturn(3).value(), 7);
  EXPECT_TRUE(UsesAssignOrReturn(-3).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyFriendly) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

}  // namespace
}  // namespace dpc
