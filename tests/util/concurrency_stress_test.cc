// Concurrency stress tests for the objects the future sharded runtime
// will share across worker threads: the tracer, the metrics registry, the
// identity counters, the tuple store/interner, and the lazily memoized
// tuple identities. Each test hammers one object from several threads and
// then asserts *exact* totals — the counters are designed to lose nothing
// under contention, not to be approximately right.
//
// These tests are meaningful on any build, but their real job is under
// -DDPC_SANITIZE=thread (the tsan CI job), where ThreadSanitizer verifies
// the synchronization the thread-safety annotations promise statically.
#include <array>
#include <atomic>
#include <barrier>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/prov_tables.h"
#include "src/db/intern.h"
#include "src/db/tuple.h"
#include "src/net/transport.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/perf.h"

namespace dpc {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 2000;

// Runs `fn(thread_index)` on kThreads threads, released simultaneously so
// the first operations actually contend.
template <typename Fn>
void RunThreads(Fn fn) {
  std::barrier start(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      fn(t);
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST(ConcurrencyStressTest, TracerConcurrentEmitsKeepEveryEvent) {
  Tracer tracer;
  tracer.Enable([] { return 1.5; },
                static_cast<size_t>(kThreads) * kOpsPerThread);
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      tracer.Instant(static_cast<NodeId>(t), TraceCat::kQueue, "ev",
                     "\"i\": " + std::to_string(i));
    }
  });
  tracer.Disable();
  EXPECT_EQ(tracer.event_count(),
            static_cast<size_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  // Every buffered event is whole: name, phase and timestamp all match
  // what some thread recorded (never a torn interleaving).
  for (const TraceEvent& ev : tracer.events()) {
    EXPECT_EQ(ev.name, "ev");
    EXPECT_EQ(ev.phase, 'i');
    EXPECT_EQ(ev.ts, 1.5);
  }
}

TEST(ConcurrencyStressTest, TracerOverflowCountsEveryDrop) {
  constexpr size_t kCap = 1000;
  Tracer tracer;
  tracer.Enable([] { return 0.0; }, kCap);
  RunThreads([&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      tracer.Instant(0, TraceCat::kRule, "x");
    }
  });
  tracer.Disable();
  EXPECT_EQ(tracer.event_count(), kCap);
  EXPECT_EQ(tracer.dropped_events(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread - kCap);
}

TEST(ConcurrencyStressTest, CounterTotalIsExact) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("stress.total");
  RunThreads([&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) c.Increment();
  });
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ConcurrencyStressTest, CounterPerNodeCellsAreExactAcrossBlocks) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("stress.per_node");
  // Nodes straddling the chained-block boundaries (blocks cover [0,64),
  // [64,192), [192,448), ...), so concurrent first touches force block
  // allocations while other threads are mid-increment.
  const std::vector<int32_t> nodes = {0, 63, 64, 191, 192, 447, 448, 1000};
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      c.IncrementAt(nodes[(t + i) % nodes.size()]);
    }
  });
  std::vector<uint64_t> cells = c.per_node();
  ASSERT_EQ(cells.size(), 1001u);
  uint64_t cell_sum = 0;
  for (uint64_t v : cells) cell_sum += v;
  EXPECT_EQ(cell_sum, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
  // Every thread walks the same node rotation, so each node gets an equal
  // share.
  for (int32_t n : nodes) {
    EXPECT_EQ(cells[static_cast<size_t>(n)],
              static_cast<uint64_t>(kThreads) * kOpsPerThread /
                  nodes.size())
        << "node " << n;
  }
}

TEST(ConcurrencyStressTest, HistogramCountSumMinMaxAreExact) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("stress.hist");
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      h.Observe(static_cast<double>(t * kOpsPerThread + i));
    }
  });
  const uint64_t total = static_cast<uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(h.count(), total);
  // Exact: every observed value is a small integer, and the CAS-add loop
  // loses no contribution.
  EXPECT_EQ(h.sum(), static_cast<double>(total) * (total - 1) / 2);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), static_cast<double>(total - 1));
  uint64_t bucket_sum = 0;
  for (uint64_t b : h.buckets()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, total);
}

TEST(ConcurrencyStressTest, IdentityCountersAggregateExactlyAcrossThreads) {
  IdentityCounters before = identity_counters();
  RunThreads([&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      identity_cells().tuples_interned.Bump();
      identity_cells().tuple_bytes_serialized.Bump(3);
    }
  });
  // The worker threads have exited: their cells are retired and folded
  // into the global totals, so the delta is exact.
  IdentityCounters delta = identity_counters() - before;
  EXPECT_EQ(delta.tuples_interned,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(delta.tuple_bytes_serialized,
            static_cast<uint64_t>(kThreads) * kOpsPerThread * 3);
}

TEST(ConcurrencyStressTest, ConcurrentFirstTouchIdentityIsComputedOnce) {
  // Shared TupleRefs whose identities are all cold; every thread races
  // the first touch of Vid/Hash64/SerializedSize on every tuple.
  constexpr int kTuples = 64;
  std::vector<TupleRef> tuples;
  for (int i = 0; i < kTuples; ++i) {
    tuples.push_back(MakeTupleRef(
        Tuple::Make("stress", i, {Value::Int(i * 7), Value::Str("payload")})));
  }
  IdentityCounters before = identity_counters();

  std::vector<std::array<uint64_t, kTuples>> hashes(kThreads);
  std::vector<std::array<Sha1Digest, kTuples>> vids(kThreads);
  std::vector<std::array<size_t, kTuples>> sizes(kThreads);
  RunThreads([&](int t) {
    // Stagger the starting tuple per thread so different threads race
    // different tuples' first touches.
    for (int i = 0; i < kTuples; ++i) {
      int k = (i + t * kTuples / kThreads) % kTuples;
      vids[t][k] = tuples[k]->Vid();
      hashes[t][k] = tuples[k]->Hash64();
      sizes[t][k] = tuples[k]->SerializedSize();
    }
  });

  // Each tuple's VID was computed exactly once: one miss per tuple, every
  // other Vid() call was answered by the memo. (Measured before the
  // verification below, whose fresh reference tuples bump the same
  // counters.)
  IdentityCounters delta = identity_counters() - before;
  EXPECT_EQ(delta.vid_cache_misses, static_cast<uint64_t>(kTuples));
  EXPECT_EQ(delta.vid_cache_hits,
            static_cast<uint64_t>(kTuples) * (kThreads - 1));

  // All threads observed identical identities, equal to a freshly
  // computed reference.
  for (int k = 0; k < kTuples; ++k) {
    Tuple fresh("stress", tuples[k]->values());
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(vids[t][k].bytes, fresh.Vid().bytes);
      EXPECT_EQ(hashes[t][k], fresh.Hash64());
      EXPECT_EQ(sizes[t][k], fresh.SerializedSize());
    }
  }

}

TEST(ConcurrencyStressTest, InternerReturnsCorrectContentUnderContention) {
  TupleInterner interner;
  constexpr int kDistinct = 32;
  std::atomic<uint64_t> mismatches{0};
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread / 4; ++i) {
      int k = (t + i) % kDistinct;
      Tuple want = Tuple::Make("intern", k, {Value::Int(i % 3)});
      TupleRef got = interner.Intern(want);
      if (!(*got == want)) mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  // 3 payload variants per key relation/location pair.
  EXPECT_LE(interner.size(), static_cast<size_t>(kDistinct) * 3);
  EXPECT_EQ(interner.flushes(), 0u);
}

TEST(ConcurrencyStressTest, TupleStoreConcurrentPutsDeduplicateByVid) {
  TupleStore store;
  constexpr int kDistinct = 48;
  std::vector<TupleRef> tuples;
  for (int i = 0; i < kDistinct; ++i) {
    tuples.push_back(
        MakeTupleRef(Tuple::Make("stored", i % 5, {Value::Int(i)})));
  }
  std::atomic<uint64_t> inserted{0};
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread / 4; ++i) {
      const TupleRef& ref = tuples[(t + i) % kDistinct];
      if (store.Put(ref)) inserted.fetch_add(1);
    }
  });
  // Every distinct VID was inserted exactly once, no matter how many
  // threads raced the same Put.
  EXPECT_EQ(inserted.load(), static_cast<uint64_t>(kDistinct));
  EXPECT_EQ(store.size(), static_cast<size_t>(kDistinct));
  size_t want_bytes = 0;
  for (const TupleRef& ref : tuples) {
    want_bytes += ref->Vid().bytes.size() + ref->SerializedSize();
    const Tuple* found = store.Find(ref->Vid());
    ASSERT_NE(found, nullptr);
    EXPECT_TRUE(*found == *ref);
  }
  EXPECT_EQ(store.SerializedBytes(), want_bytes);
}

// AtomicTransportStats: concurrent bumps are never lost, and Reset is
// race-safe — the old plain-struct `*this = TransportStats()` reset could
// tear (a reader observing some fields zeroed and others not, a racing
// increment resurrected into the "cleared" struct). With per-field
// atomics, totals after a quiet reset are exact.
TEST(ConcurrencyStressTest, TransportStatsConcurrentBumpsAreExact) {
  AtomicTransportStats stats;
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      stats.data_frames_sent.fetch_add(1, std::memory_order_relaxed);
      if (t % 2 == 0) {
        stats.retransmissions.fetch_add(1, std::memory_order_relaxed);
      }
      if (i % 4 == 0) {
        stats.acks_sent.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  TransportStats snap = stats.Snapshot();
  EXPECT_EQ(snap.data_frames_sent,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.retransmissions,
            static_cast<uint64_t>(kThreads / 2) * kOpsPerThread);
  EXPECT_EQ(snap.acks_sent,
            static_cast<uint64_t>(kThreads) * (kOpsPerThread / 4));
  EXPECT_EQ(snap.duplicates_suppressed, 0u);
  stats.Reset();
  snap = stats.Snapshot();
  EXPECT_EQ(snap.data_frames_sent, 0u);
  EXPECT_EQ(snap.retransmissions, 0u);
  EXPECT_EQ(snap.acks_sent, 0u);
}

// Reset racing concurrent writers must never corrupt a counter: every
// field is always either a sum of post-reset increments or a pre-reset
// value — never garbage from a torn word. TSan checks the data-race-free
// claim; this checks the arithmetic stays sane (<= total increments).
TEST(ConcurrencyStressTest, TransportStatsResetRacesWritersSafely) {
  AtomicTransportStats stats;
  RunThreads([&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      if (t == 0 && i % 64 == 0) {
        stats.Reset();
      } else {
        stats.delivery_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  uint64_t v = stats.Snapshot().delivery_failures;
  EXPECT_LE(v, static_cast<uint64_t>(kThreads - 1) * kOpsPerThread +
                   kOpsPerThread);
}

}  // namespace
}  // namespace dpc
