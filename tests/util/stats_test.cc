// Cdf quantiles, TimeSeries regression slope, and byte/rate formatting.
#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace dpc {
namespace {

TEST(CdfTest, FractionAtOrBelow) {
  Cdf cdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(1), 0.2);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(3), 0.6);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(100), 1.0);
}

TEST(CdfTest, QuantilesNearestRank) {
  Cdf cdf({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.1), 10);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 50);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 10);
  EXPECT_DOUBLE_EQ(cdf.Median(), 50);
}

TEST(CdfTest, UnsortedInputIsSorted) {
  Cdf cdf({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(cdf.Min(), 1);
  EXPECT_DOUBLE_EQ(cdf.Max(), 5);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 3);
}

TEST(CdfTest, SingleSample) {
  Cdf cdf({7});
  EXPECT_DOUBLE_EQ(cdf.Median(), 7);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.99), 7);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 7);
}

TEST(CdfTest, CurveEndpoints) {
  Cdf cdf({0, 10});
  auto curve = cdf.Curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0);
  EXPECT_DOUBLE_EQ(curve.back().first, 10);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(CdfTest, EmptyCurve) {
  Cdf cdf(std::vector<double>{});
  EXPECT_TRUE(cdf.Curve(5).empty());
  EXPECT_EQ(cdf.size(), 0u);
}

TEST(TimeSeriesTest, LinearGrowthRate) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) ts.Add(i, 100.0 * i + 5);
  EXPECT_NEAR(ts.GrowthRate(), 100.0, 1e-9);
}

TEST(TimeSeriesTest, FlatSeriesHasZeroRate) {
  TimeSeries ts;
  ts.Add(0, 42);
  ts.Add(10, 42);
  ts.Add(20, 42);
  EXPECT_NEAR(ts.GrowthRate(), 0.0, 1e-12);
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(1024.0 * 1024 * 1.5), "1.50 MB");
  EXPECT_EQ(FormatBytes(1024.0 * 1024 * 1024 * 11.8), "11.80 GB");
}

TEST(FormatTest, BitRate) {
  EXPECT_EQ(FormatBitRate(500), "500.00 bps");
  EXPECT_EQ(FormatBitRate(5e3), "5.00 Kbps");
  EXPECT_EQ(FormatBitRate(30e6), "30.00 Mbps");
  EXPECT_EQ(FormatBitRate(2.5e9), "2.50 Gbps");
}

}  // namespace
}  // namespace dpc
