// Figure 15: bandwidth usage while resolving a large stream of DNS
// requests. DNS requests carry no payload, so Advanced's per-message
// metadata (existFlag, equivalence-key hash, EVID) is visible: the paper
// measured ~4.5 MBps for ExSPAN/Basic vs ~6 MBps for Advanced (~25%
// higher).
//
// Scale knobs: DPC_REQUESTS (paper: 100000), DPC_RATE (paper: 1000/s).
#include <cstdio>

#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  size_t requests = EnvSize("DPC_REQUESTS", 5000);
  double rate = EnvDouble("DPC_RATE", 500);

  DnsUniverse universe = MakeDnsUniverse();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "DNS: %zu requests @ %.0f req/s (paper: 100000 @ 1000/s)",
                requests, rate);
  PrintFigureHeader("Figure 15: bandwidth consumption for DNS resolution",
                    setup);

  auto workload = MakeDnsWorkload(universe, requests, rate,
                                  /*zipf_theta=*/0.9, /*seed=*/42);
  double duration = static_cast<double>(requests) / rate + 2;
  ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 4;
  config.bandwidth_bucket_s = 1.0;

  std::vector<ExperimentResult> results;
  for (Scheme scheme : kPaperSchemes) {
    results.push_back(RunDns(scheme, universe, workload, config));
  }

  std::printf("%-10s", "time(s)");
  for (const auto& r : results) std::printf(" %14s", r.scheme.c_str());
  std::printf("\n");
  size_t buckets = 0;
  for (const auto& r : results)
    buckets = std::max(buckets, r.bandwidth_buckets.size());
  for (size_t b = 0; b < buckets; ++b) {
    std::printf("%-10zu", b);
    for (const auto& r : results) {
      double bytes = b < r.bandwidth_buckets.size()
                         ? static_cast<double>(r.bandwidth_buckets[b])
                         : 0;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f MBps", bytes / 1e6);
      std::printf(" %14s", buf);
    }
    std::printf("\n");
  }
  std::printf("\n%-10s", "total");
  for (const auto& r : results) {
    std::printf(" %14s",
                FormatBytes(static_cast<double>(r.total_network_bytes))
                    .c_str());
  }
  double exspan = static_cast<double>(results[0].total_network_bytes);
  double advanced = static_cast<double>(results[2].total_network_bytes);
  std::printf("\n\nAdvanced bandwidth overhead vs ExSPAN: %+.1f%% "
              "(paper: ~+25%%)\n",
              100.0 * (advanced - exspan) / exspan);
  return 0;
}
