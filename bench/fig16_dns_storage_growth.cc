// Figure 16: total DNS provenance storage under continuous requests. The
// paper reports growth rates of 13.15 / 11.57 / 3.81 Mbps (ExSPAN / Basic /
// Advanced), i.e. 1.32 / 1.16 / 0.38 GB after 100 s, and time-to-1TB of
// 21 h / 24 h / ~3 days.
//
// Scale knobs: DPC_RATE (paper: 1000 req/s), DPC_DURATION (paper: 100 s).
#include <cstdio>

#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  double rate = EnvDouble("DPC_RATE", 200);
  double duration = EnvDouble("DPC_DURATION", 20);

  DnsUniverse universe = MakeDnsUniverse();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "DNS: %.0f req/s for %.0f s, snapshots every %.1f s",
                rate, duration, duration / 10);
  PrintFigureHeader("Figure 16: total DNS provenance storage growth", setup);

  auto workload = MakeDnsWorkload(
      universe, static_cast<size_t>(rate * duration), rate,
      /*zipf_theta=*/0.9, /*seed=*/42);
  ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 10;

  std::vector<ExperimentResult> results;
  for (Scheme scheme : kPaperSchemes) {
    results.push_back(RunDns(scheme, universe, workload, config));
  }

  std::printf("%-10s", "time(s)");
  for (const auto& r : results) std::printf(" %16s", r.scheme.c_str());
  std::printf("\n");
  for (size_t i = 0; i < results[0].snapshot_times.size(); ++i) {
    std::printf("%-10.1f", results[0].snapshot_times[i]);
    for (const auto& r : results) {
      std::printf(" %16s", FormatBytes(r.TotalStorageAt(i)).c_str());
    }
    std::printf("\n");
  }
  std::printf("\n%-10s", "rate");
  for (const auto& r : results) {
    std::printf(" %14s/s", FormatBytes(r.TotalGrowthBytesPerSec()).c_str());
  }
  std::printf("\n%-10s", "1TB in");
  for (const auto& r : results) {
    double rate_bps = r.TotalGrowthBytesPerSec();
    double hours = rate_bps > 0 ? 1e12 / rate_bps / 3600.0 : 0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f h", hours);
    std::printf(" %16s", buf);
  }
  std::printf("\n\nExSPAN/Advanced growth ratio: %.1fx (paper: ~3.5x)\n",
              results[2].TotalGrowthBytesPerSec() > 0
                  ? results[0].TotalGrowthBytesPerSec() /
                        results[2].TotalGrowthBytesPerSec()
                  : 0.0);
  return 0;
}
