// Shared printing helpers for the figure-regeneration benches.
#ifndef DPC_BENCH_BENCH_UTIL_H_
#define DPC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/util/stats.h"

namespace dpc::bench {

// Prints a CDF as decile rows: "p10 .. p100" of the sample values.
inline void PrintCdfRow(const std::string& label,
                        const std::vector<double>& samples,
                        const char* unit,
                        double scale = 1.0) {
  Cdf cdf(samples);
  std::printf("%-22s", label.c_str());
  for (int p = 10; p <= 100; p += 10) {
    std::printf(" %9.2f", cdf.Quantile(p / 100.0) * scale);
  }
  std::printf("  (mean %.2f %s, median %.2f %s)\n", cdf.Mean() * scale, unit,
              cdf.Median() * scale, unit);
}

inline void PrintCdfHeader(const char* metric) {
  std::printf("%-22s", metric);
  for (int p = 10; p <= 100; p += 10) std::printf("       p%02d", p);
  std::printf("\n");
}

}  // namespace dpc::bench

#endif  // DPC_BENCH_BENCH_UTIL_H_
