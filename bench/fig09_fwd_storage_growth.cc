// Figure 9: total provenance storage over time under continuous packet
// insertion (forwarding). The paper reports 11.8 GB (ExSPAN) / 9.2 GB
// (Basic) / 0.92 GB (Advanced) at 90 s, i.e. growth rates of roughly
// 131 / 109 / 10.3 MB/s, and converts them to time-to-fill-1TB.
//
// Scale knobs: DPC_PAIRS, DPC_RATE, DPC_DURATION.
#include <cstdio>

#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  size_t pairs = EnvSize("DPC_PAIRS", 40);
  double rate = EnvDouble("DPC_RATE", 10);
  double duration = EnvDouble("DPC_DURATION", 20);

  TransitStubTopology topo = MakeTransitStub();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "forwarding: %zu pairs @ %.0f pkt/s, snapshots every %.1f s",
                pairs, rate, duration / 10);
  PrintFigureHeader("Figure 9: total provenance storage growth", setup);

  ForwardingWorkload workload = MakeForwardingWorkload(
      topo, pairs, rate, duration, kDefaultPayloadLen, /*seed=*/42);
  ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 10;

  std::vector<ExperimentResult> results;
  for (Scheme scheme : kPaperSchemes) {
    results.push_back(RunForwarding(scheme, topo, workload, config));
  }

  std::printf("%-10s", "time(s)");
  for (const auto& r : results) std::printf(" %16s", r.scheme.c_str());
  std::printf("\n");
  for (size_t i = 0; i < results[0].snapshot_times.size(); ++i) {
    std::printf("%-10.1f", results[0].snapshot_times[i]);
    for (const auto& r : results) {
      std::printf(" %16s", FormatBytes(r.TotalStorageAt(i)).c_str());
    }
    std::printf("\n");
  }

  std::printf("\n%-10s", "rate");
  for (const auto& r : results) {
    std::printf(" %14s/s", FormatBytes(r.TotalGrowthBytesPerSec()).c_str());
  }
  std::printf("\n%-10s", "1TB in");
  for (const auto& r : results) {
    double rate_bps = r.TotalGrowthBytesPerSec();
    double hours = rate_bps > 0 ? 1e12 / rate_bps / 3600.0 : 0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f h", hours);
    std::printf(" %16s", buf);
  }
  std::printf("\n\nreduction vs ExSPAN: Basic %.0f%%, Advanced %.0f%% "
              "(paper: ~22%%, ~92%%)\n",
              100.0 * (1.0 - results[1].TotalGrowthBytesPerSec() /
                                 results[0].TotalGrowthBytesPerSec()),
              100.0 * (1.0 - results[2].TotalGrowthBytesPerSec() /
                                 results[0].TotalGrowthBytesPerSec()));
  return 0;
}
