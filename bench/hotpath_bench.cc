// Microbenchmark for the tuple-identity hot path: repeated Vid() /
// SerializedSize() / Hash64() reads against the memoized caches vs the
// recompute-every-time baseline (serialize into a scratch buffer, hash
// the buffer — what the runtime did before memoization), plus a
// fig09-style end-to-end forwarding run timed per scheme with the
// identity-work counters (SHA-1 invocations, bytes serialized, cache hit
// rates) it generated. Prints a JSON report; the checked-in before/after
// snapshot lives at BENCH_hotpath.json.
//
// Scale knobs: DPC_PAIRS, DPC_RATE, DPC_DURATION; sharded-runtime case:
// DPC_SHARDS, DPC_SHARD_PAIRS, DPC_SHARD_RATE, DPC_SHARD_DURATION.
#include <chrono>
#include <thread>
#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/experiments.h"
#include "src/net/event_queue.h"
#include "src/obs/trace.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/perf.h"
#include "src/util/rng.h"

namespace dpc {
namespace {

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

Tuple RandomTuple(Rng& rng) {
  std::vector<Value> values;
  values.push_back(Value::Int(static_cast<int64_t>(rng.NextBelow(64))));
  size_t arity = 2 + rng.NextBelow(4);
  for (size_t i = 1; i < arity; ++i) {
    if (rng.NextBelow(2) == 0) {
      values.push_back(Value::Int(static_cast<int64_t>(rng.Next())));
    } else {
      values.push_back(
          Value::Str(std::string(8 + rng.NextBelow(24), 'x')));
    }
  }
  return Tuple("rel" + std::to_string(rng.NextBelow(8)), std::move(values));
}

// --- repeated identity reads ------------------------------------------------

struct IdentityCase {
  double uncached_ns_per_read = 0;
  double cached_ns_per_read = 0;
  double speedup = 0;
};

// `reads` identity reads per tuple. The uncached loop reproduces the
// pre-memoization cost: every read re-serializes the tuple and re-hashes
// the buffer (SHA-1 for the VID; the size falls out of the buffer).
IdentityCase BenchRepeatedIdentity(const std::vector<Tuple>& tuples,
                                   size_t reads) {
  IdentityCase res;
  uint64_t sink = 0;

  auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < reads; ++r) {
    for (const Tuple& t : tuples) {
      ByteWriter w;
      t.Serialize(w);
      Sha1Digest d = Sha1::Hash(w.bytes().data(), w.size());
      sink += d.bytes[0] + w.size();
    }
  }
  auto end = std::chrono::steady_clock::now();
  double total_reads = static_cast<double>(reads * tuples.size());
  res.uncached_ns_per_read = Seconds(start, end) * 1e9 / total_reads;

  start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < reads; ++r) {
    for (const Tuple& t : tuples) {
      sink += t.Vid().bytes[0] + t.SerializedSize();
    }
  }
  end = std::chrono::steady_clock::now();
  res.cached_ns_per_read = Seconds(start, end) * 1e9 / total_reads;

  DPC_CHECK(sink != 0);  // keep the loops alive
  res.speedup = res.uncached_ns_per_read / res.cached_ns_per_read;
  return res;
}

// Same shape for the 64-bit container hash: FNV over a freshly
// serialized buffer vs the memoized streaming hash.
IdentityCase BenchRepeatedHash(const std::vector<Tuple>& tuples,
                               size_t reads) {
  IdentityCase res;
  uint64_t sink = 0;

  auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < reads; ++r) {
    for (const Tuple& t : tuples) {
      ByteWriter w;
      t.Serialize(w);
      sink += Fnv1a::HashBytes(w.bytes().data(), w.size());
    }
  }
  auto end = std::chrono::steady_clock::now();
  double total_reads = static_cast<double>(reads * tuples.size());
  res.uncached_ns_per_read = Seconds(start, end) * 1e9 / total_reads;

  start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < reads; ++r) {
    for (const Tuple& t : tuples) sink += t.Hash64();
  }
  end = std::chrono::steady_clock::now();
  res.cached_ns_per_read = Seconds(start, end) * 1e9 / total_reads;

  DPC_CHECK(sink != 0);
  res.speedup = res.uncached_ns_per_read / res.cached_ns_per_read;
  return res;
}

// Serialization throughput with pre-reserved buffers (MB/s).
double BenchSerializeMbps(const std::vector<Tuple>& tuples, size_t reads) {
  size_t bytes = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < reads; ++r) {
    for (const Tuple& t : tuples) {
      ByteWriter w;
      w.Reserve(t.SerializedSize());
      t.Serialize(w);
      bytes += w.size();
    }
  }
  auto end = std::chrono::steady_clock::now();
  return static_cast<double>(bytes) / Seconds(start, end) / 1e6;
}

// --- event-queue dispatch: tracing off vs on --------------------------------

struct DispatchCase {
  double off_ns_per_event = 0;
  double on_ns_per_event = 0;
  double overhead_pct = 0;  // of the traced path over the disabled path
};

// Drains `events` trivial callbacks through a fresh EventQueue and reports
// ns/dispatch. The disabled-tracing path must stay one predicted branch:
// the snapshot in BENCH_hotpath.json is the regression gate.
double DispatchNsPerEvent(size_t events) {
  EventQueue q;
  uint64_t sink = 0;
  for (size_t i = 0; i < events; ++i) {
    q.ScheduleAt(static_cast<double>(i) * 1e-6, [&sink]() { ++sink; });
  }
  auto start = std::chrono::steady_clock::now();
  q.RunAll();
  auto end = std::chrono::steady_clock::now();
  DPC_CHECK(sink == events);
  return Seconds(start, end) * 1e9 / static_cast<double>(events);
}

DispatchCase BenchQueueDispatch(size_t events) {
  DispatchCase res;
  DPC_CHECK(!Trace().enabled());
  res.off_ns_per_event = DispatchNsPerEvent(events);
  // Dispatch spans carry their own timestamps, so a constant clock is
  // fine here; sized to hold every event so drops don't skew the timing.
  Trace().Enable([]() { return 0.0; }, events + 16);
  res.on_ns_per_event = DispatchNsPerEvent(events);
  Trace().Disable();
  Trace().Clear();
  res.overhead_pct =
      (res.on_ns_per_event / res.off_ns_per_event - 1.0) * 100.0;
  return res;
}

// --- end-to-end: fig09-style forwarding run ---------------------------------

struct EndToEndCase {
  std::string scheme;
  double wall_clock_s = 0;
  uint64_t sha1_invocations = 0;
  uint64_t tuple_bytes_serialized = 0;
  uint64_t vid_cache_hits = 0;
  uint64_t vid_cache_misses = 0;
};

std::vector<EndToEndCase> BenchEndToEnd(size_t pairs, double rate,
                                        double duration) {
  TransitStubTopology topo = MakeTransitStub();
  apps::ForwardingWorkload workload = apps::MakeForwardingWorkload(
      topo, pairs, rate, duration, apps::kDefaultPayloadLen, /*seed=*/42);
  apps::ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 10;

  std::vector<EndToEndCase> out;
  for (apps::Scheme scheme : apps::kPaperSchemes) {
    auto start = std::chrono::steady_clock::now();
    apps::ExperimentResult r =
        apps::RunForwarding(scheme, topo, workload, config);
    auto end = std::chrono::steady_clock::now();
    DPC_CHECK(r.outputs > 0);
    EndToEndCase c;
    c.scheme = r.scheme;
    c.wall_clock_s = Seconds(start, end);
    c.sha1_invocations = r.identity.sha1_invocations;
    c.tuple_bytes_serialized = r.identity.tuple_bytes_serialized;
    c.vid_cache_hits = r.identity.vid_cache_hits;
    c.vid_cache_misses = r.identity.vid_cache_misses;
    out.push_back(std::move(c));
  }
  return out;
}

// --- sharded runtime: 1-shard vs N-shard wall clock -------------------------

struct ShardedCase {
  int nodes = 0;
  int shards = 0;
  double wall_1shard_s = 0;
  double wall_nshard_s = 0;
  double speedup = 0;
  bool accounting_identical = false;
  uint64_t outputs = 0;
  uint64_t events_injected = 0;
};

// A 1000+-node transit-stub deployment run on the classic single queue and
// on the sharded parallel engine. Reports measured wall clocks (whatever
// the host can actually deliver — see host_cores in the JSON) and verifies
// the sharded run's accounting is byte-identical.
ShardedCase BenchSharded(int shards, size_t pairs, double rate,
                         double duration) {
  TransitStubParams params;
  params.num_transit = 8;
  params.stubs_per_transit = 4;
  params.nodes_per_stub = 32;  // 8 + 8*4*32 = 1032 nodes
  TransitStubTopology topo = MakeTransitStub(params);
  apps::ForwardingWorkload workload = apps::MakeForwardingWorkload(
      topo, pairs, rate, duration, apps::kDefaultPayloadLen, /*seed=*/42);
  apps::ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 4;
  config.metrics = false;

  ShardedCase c;
  c.nodes = topo.graph.num_nodes();
  c.shards = shards;

  auto start = std::chrono::steady_clock::now();
  apps::ExperimentResult r1 =
      apps::RunForwarding(apps::Scheme::kAdvanced, topo, workload, config);
  c.wall_1shard_s = Seconds(start, std::chrono::steady_clock::now());

  config.shards = shards;
  start = std::chrono::steady_clock::now();
  apps::ExperimentResult rn =
      apps::RunForwarding(apps::Scheme::kAdvanced, topo, workload, config);
  c.wall_nshard_s = Seconds(start, std::chrono::steady_clock::now());

  DPC_CHECK(r1.outputs > 0);
  c.outputs = rn.outputs;
  c.events_injected = rn.events_injected;
  c.speedup = c.wall_1shard_s / c.wall_nshard_s;
  c.accounting_identical =
      r1.per_node_storage == rn.per_node_storage &&
      r1.final_storage.prov == rn.final_storage.prov &&
      r1.final_storage.rule_exec == rn.final_storage.rule_exec &&
      r1.final_storage.event_store == rn.final_storage.event_store &&
      r1.final_storage.tuple_store == rn.final_storage.tuple_store &&
      r1.total_network_bytes == rn.total_network_bytes &&
      r1.total_messages == rn.total_messages &&
      r1.outputs == rn.outputs;
  return c;
}

int Main() {
  Rng rng(20170514);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 256; ++i) tuples.push_back(RandomTuple(rng));

  IdentityCase identity = BenchRepeatedIdentity(tuples, 2000);
  IdentityCase hash = BenchRepeatedHash(tuples, 2000);
  double mbps = BenchSerializeMbps(tuples, 2000);
  DispatchCase dispatch =
      BenchQueueDispatch(apps::EnvSize("DPC_DISPATCH_EVENTS", 200000));

  size_t pairs = apps::EnvSize("DPC_PAIRS", 20);
  double rate = apps::EnvDouble("DPC_RATE", 10);
  double duration = apps::EnvDouble("DPC_DURATION", 10);
  std::vector<EndToEndCase> e2e = BenchEndToEnd(pairs, rate, duration);

  ShardedCase sharded = BenchSharded(
      static_cast<int>(apps::EnvSize("DPC_SHARDS", 8)),
      apps::EnvSize("DPC_SHARD_PAIRS", 64),
      apps::EnvDouble("DPC_SHARD_RATE", 20),
      apps::EnvDouble("DPC_SHARD_DURATION", 5));

  std::printf("{\n  \"bench\": \"hotpath_bench\",\n");
  std::printf("  \"repeated_identity\": {\"uncached_ns_per_read\": %.1f, "
              "\"cached_ns_per_read\": %.1f, \"speedup\": %.1f},\n",
              identity.uncached_ns_per_read, identity.cached_ns_per_read,
              identity.speedup);
  std::printf("  \"repeated_hash\": {\"uncached_ns_per_read\": %.1f, "
              "\"cached_ns_per_read\": %.1f, \"speedup\": %.1f},\n",
              hash.uncached_ns_per_read, hash.cached_ns_per_read,
              hash.speedup);
  std::printf("  \"serialize_mb_per_s\": %.0f,\n", mbps);
  std::printf("  \"queue_dispatch\": {\"tracing_off_ns_per_event\": %.1f, "
              "\"tracing_on_ns_per_event\": %.1f, \"overhead_pct\": %.1f},\n",
              dispatch.off_ns_per_event, dispatch.on_ns_per_event,
              dispatch.overhead_pct);
  std::printf("  \"fig09\": {\"pairs\": %zu, \"rate_pps\": %.0f, "
              "\"duration_s\": %.0f, \"schemes\": [\n",
              pairs, rate, duration);
  for (size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndCase& c = e2e[i];
    double total_vid = static_cast<double>(c.vid_cache_hits +
                                           c.vid_cache_misses);
    std::printf(
        "    {\"scheme\": \"%s\", \"wall_clock_s\": %.3f, "
        "\"sha1_invocations\": %llu, \"tuple_bytes_serialized\": %llu, "
        "\"vid_cache_hit_rate\": %.3f}%s\n",
        c.scheme.c_str(), c.wall_clock_s,
        static_cast<unsigned long long>(c.sha1_invocations),
        static_cast<unsigned long long>(c.tuple_bytes_serialized),
        total_vid > 0 ? static_cast<double>(c.vid_cache_hits) / total_vid
                      : 0.0,
        i + 1 < e2e.size() ? "," : "");
  }
  std::printf("  ]},\n");
  std::printf(
      "  \"sharded\": {\"nodes\": %d, \"shards\": %d, "
      "\"host_cores\": %u,\n"
      "    \"wall_clock_1shard_s\": %.3f, \"wall_clock_%dshard_s\": %.3f, "
      "\"speedup\": %.2f,\n"
      "    \"events_injected\": %llu, \"outputs\": %llu, "
      "\"accounting_identical\": %s}\n",
      sharded.nodes, sharded.shards,
      std::thread::hardware_concurrency(), sharded.wall_1shard_s,
      sharded.shards, sharded.wall_nshard_s, sharded.speedup,
      static_cast<unsigned long long>(sharded.events_injected),
      static_cast<unsigned long long>(sharded.outputs),
      sharded.accounting_identical ? "true" : "false");
  std::printf("}\n");
  return 0;
}

}  // namespace
}  // namespace dpc

int main() { return dpc::Main(); }
