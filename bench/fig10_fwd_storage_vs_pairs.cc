// Figure 10: total provenance storage with a fixed packet budget spread
// over an increasing number of communicating pairs. ExSPAN and Basic stay
// roughly flat (one tree per packet regardless of pairs); Advanced grows
// linearly in the number of pairs (one shared tree per equivalence class)
// while remaining far below both.
//
// Scale knobs: DPC_PACKETS (total, default 2000 as in the paper).
#include <cstdio>

#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  size_t total_packets = EnvSize("DPC_PACKETS", 2000);
  TransitStubTopology topo = MakeTransitStub();

  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "forwarding: %zu packets total, evenly spread over the pairs",
                total_packets);
  PrintFigureHeader("Figure 10: storage vs number of communicating pairs",
                    setup);

  const size_t pair_counts[] = {5, 10, 20, 40, 80};

  std::printf("%-8s %16s %16s %16s %18s\n", "pairs", "ExSPAN", "Basic",
              "Advanced", "Adv shared trees");
  for (size_t pairs : pair_counts) {
    ForwardingWorkload workload = MakeFixedCountForwardingWorkload(
        topo, pairs, total_packets, /*duration_s=*/20,
        kDefaultPayloadLen, /*seed=*/42);
    ExperimentConfig config;
    config.duration_s = 20;
    config.snapshot_interval_s = 10;

    std::printf("%-8zu", pairs);
    size_t adv_rule_exec = 0;
    for (Scheme scheme : kPaperSchemes) {
      ExperimentResult res = RunForwarding(scheme, topo, workload, config);
      std::printf(" %16s",
                  FormatBytes(res.final_storage.Total()).c_str());
      if (scheme == Scheme::kAdvanced) {
        adv_rule_exec = res.final_storage.rule_exec;
      }
    }
    std::printf(" %18s\n", FormatBytes(adv_rule_exec).c_str());
  }
  std::printf("\nexpected shape: ExSPAN/Basic ~flat (one tree per packet); "
              "Advanced grows with pairs\n(one shared tree per equivalence "
              "class, the last column) but stays well below both\n");
  return 0;
}
