// Ablation (DESIGN.md): design choices the paper motivates but does not
// plot as separate figures.
//
//   (a) §5.4 inter-equivalence-class sharing: Advanced vs
//       Advanced+InterClass ruleExec storage on a workload whose classes
//       share path suffixes (many sources, few destinations).
//   (b) Inline tree shipping (the alternative §2.2 argues against):
//       ReferenceRecorder's bandwidth vs the distributed schemes.
//   (c) Per-scheme storage breakdown (prov / ruleExec / event store /
//       materialized tuples).
#include <cstdio>

#include "src/apps/dns.h"
#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

namespace {

void PrintBreakdown(const ExperimentResult& res) {
  const StorageBreakdown& s = res.final_storage;
  std::printf("%-22s %14s %14s %14s %14s %14s\n", res.scheme.c_str(),
              FormatBytes(s.prov).c_str(), FormatBytes(s.rule_exec).c_str(),
              FormatBytes(s.event_store).c_str(),
              FormatBytes(s.tuple_store).c_str(),
              FormatBytes(s.Total()).c_str());
}

}  // namespace

int main() {
  size_t sources = EnvSize("DPC_SOURCES", 30);

  TransitStubTopology topo = MakeTransitStub();
  PrintFigureHeader(
      "Ablation: inter-class sharing (§5.4), inline shipping, breakdown",
      "forwarding: many sources converging on 2 destinations");

  // Workload: many sources, two destinations => classes share suffixes.
  Rng rng(7);
  ForwardingWorkload workload;
  NodeId d1 = topo.stub_nodes[0];
  NodeId d2 = topo.stub_nodes[1];
  for (size_t i = 0; i < sources; ++i) {
    NodeId s = topo.stub_nodes[2 + rng.NextBelow(topo.stub_nodes.size() - 2)];
    NodeId d = (i % 2 == 0) ? d1 : d2;
    if (s == d) continue;
    workload.pairs.emplace_back(s, d);
  }
  uint64_t seq = 0;
  for (int round = 0; round < 10; ++round) {
    for (auto [s, d] : workload.pairs) {
      workload.items.push_back(WorkloadItem{
          MakePacket(s, s, d, MakePayload(kDefaultPayloadLen, seq++)),
          0.01 * static_cast<double>(seq)});
    }
  }

  ExperimentConfig config;
  config.duration_s = 0.01 * static_cast<double>(seq) + 1;
  config.snapshot_interval_s = config.duration_s / 2;

  std::printf("\n-- storage breakdown --\n");
  std::printf("%-22s %14s %14s %14s %14s %14s\n", "scheme", "prov",
              "ruleExec", "eventStore", "tupleStore", "total");
  ExperimentResult ref =
      RunForwarding(Scheme::kReference, topo, workload, config);
  PrintBreakdown(ref);
  std::vector<ExperimentResult> results;
  for (Scheme scheme :
       {Scheme::kExspan, Scheme::kBasic, Scheme::kAdvanced,
        Scheme::kAdvancedInterClass}) {
    results.push_back(RunForwarding(scheme, topo, workload, config));
    PrintBreakdown(results.back());
  }

  // §5.4 pays off when many chains share a rule-execution node but differ
  // in their next pointer. DNS is the extreme case: every client's chain
  // passes the root server's delegation rows.
  std::printf("\n-- §5.4 inter-class sharing (forwarding vs DNS) --\n");
  const ExperimentResult& advanced = results[2];
  const ExperimentResult& inter = results[3];
  std::printf("forwarding ruleExec: Advanced %s -> +InterClass %s "
              "(%+.1f%%)\n",
              FormatBytes(advanced.final_storage.rule_exec).c_str(),
              FormatBytes(inter.final_storage.rule_exec).c_str(),
              100.0 * (static_cast<double>(inter.final_storage.rule_exec) /
                           static_cast<double>(
                               advanced.final_storage.rule_exec) -
                       1.0));
  {
    DnsUniverse universe = MakeDnsUniverse();
    auto dns_workload =
        MakeDnsWorkload(universe, /*count=*/2000, /*rate_rps=*/200,
                        /*zipf_theta=*/0.9, /*seed=*/5);
    ExperimentConfig dns_config;
    dns_config.duration_s = 12;
    dns_config.snapshot_interval_s = 6;
    ExperimentResult dns_adv =
        RunDns(Scheme::kAdvanced, universe, dns_workload, dns_config);
    ExperimentResult dns_inter = RunDns(Scheme::kAdvancedInterClass,
                                        universe, dns_workload, dns_config);
    std::printf("DNS ruleExec:        Advanced %s -> +InterClass %s "
                "(%+.1f%%)\n",
                FormatBytes(dns_adv.final_storage.rule_exec).c_str(),
                FormatBytes(dns_inter.final_storage.rule_exec).c_str(),
                100.0 * (static_cast<double>(
                             dns_inter.final_storage.rule_exec) /
                             static_cast<double>(
                                 dns_adv.final_storage.rule_exec) -
                         1.0));
  }
  std::printf(
      "note: our ruleExec tables have set semantics over content-addressed\n"
      "RIDs, so rows identical across equivalence classes are already\n"
      "stored once in plain Advanced; the explicit §5.4 node/link split\n"
      "only wins at rows sharing (RID, VIDS) but differing in NLoc/NRID\n"
      "(high fan-in nodes) and pays a key-duplication tax elsewhere.\n");

  std::printf("\n-- inline tree shipping (bandwidth) --\n");
  std::printf("%-22s %16s %12s\n", "scheme", "network bytes", "vs ExSPAN");
  double exspan_bytes = static_cast<double>(results[0].total_network_bytes);
  auto print_bw = [&](const ExperimentResult& r) {
    std::printf("%-22s %16s %+11.1f%%\n", r.scheme.c_str(),
                FormatBytes(static_cast<double>(r.total_network_bytes))
                    .c_str(),
                100.0 * (static_cast<double>(r.total_network_bytes) -
                         exspan_bytes) /
                    exspan_bytes);
  };
  print_bw(results[0]);
  print_bw(results[1]);
  print_bw(results[2]);
  ExperimentResult ref_named = std::move(ref);
  ref_named.scheme = "Inline-shipping";
  print_bw(ref_named);
  return 0;
}
