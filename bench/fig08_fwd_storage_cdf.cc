// Figure 8: CDF of per-node provenance storage growth rate, packet
// forwarding on the 100-node transit-stub topology with communicating
// pairs streaming packets.
//
// Paper setup: 100 pairs @ 100 packets/s for 100 s. Expected shape:
// ExSPAN has the heaviest tail (transit nodes above 30 Mbps), Basic is
// uniformly lower, and Advanced keeps every node far below both.
//
// Scale knobs: DPC_PAIRS, DPC_RATE (packets/s/pair), DPC_DURATION (s).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  size_t pairs = EnvSize("DPC_PAIRS", 40);
  double rate = EnvDouble("DPC_RATE", 10);
  double duration = EnvDouble("DPC_DURATION", 20);

  TransitStubTopology topo = MakeTransitStub();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "forwarding: %d nodes, %zu pairs @ %.0f pkt/s, %.0f s "
                "(paper: 100 pairs @ 100 pkt/s, 100 s)",
                topo.graph.num_nodes(), pairs, rate, duration);
  PrintFigureHeader("Figure 8: per-node storage growth rate CDF", setup);

  ForwardingWorkload workload =
      MakeForwardingWorkload(topo, pairs, rate, duration,
                             kDefaultPayloadLen, /*seed=*/42);
  ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 10;

  bench::PrintCdfHeader("growth rate (Kbps)");
  double advanced_max = 0, exspan_p80 = 0, advanced_p80 = 0;
  for (Scheme scheme : kPaperSchemes) {
    ExperimentResult res = RunForwarding(scheme, topo, workload, config);
    std::vector<double> growth = res.PerNodeGrowthBps();
    bench::PrintCdfRow(res.scheme, growth, "Kbps", 1e-3);
    Cdf cdf(growth);
    if (scheme == Scheme::kAdvanced) {
      advanced_max = cdf.Max();
      advanced_p80 = cdf.Quantile(0.8);
    }
    if (scheme == Scheme::kExspan) exspan_p80 = cdf.Quantile(0.8);
  }
  std::printf("\nAdvanced max node growth: %s"
              "   |   p80 ExSPAN/Advanced ratio: %.1fx\n",
              FormatBitRate(advanced_max).c_str(),
              advanced_p80 > 0 ? exspan_p80 / advanced_p80 : 0.0);
  return 0;
}
