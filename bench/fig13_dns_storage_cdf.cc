// Figure 13: CDF of per-nameserver storage growth rate for DNS resolution
// at a fixed aggregate request rate. The paper reports a ~4x gap between
// ExSPAN and Advanced at the 80th percentile (476 vs 121 Kbps at 1000
// req/s) — smaller than packet forwarding because DNS requests carry no
// payload, so the irreducible per-event delta weighs more.
//
// Scale knobs: DPC_RATE (aggregate req/s, paper 1000), DPC_DURATION.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  double rate = EnvDouble("DPC_RATE", 200);
  double duration = EnvDouble("DPC_DURATION", 20);

  DnsUniverse universe = MakeDnsUniverse();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "DNS: %zu nameservers (depth %d), %zu URLs, %.0f req/s for "
                "%.0f s (paper: 1000 req/s)",
                universe.servers.size(), universe.max_depth,
                universe.urls.size(), rate, duration);
  PrintFigureHeader("Figure 13: per-nameserver storage growth rate CDF",
                    setup);

  auto workload = MakeDnsWorkload(
      universe, static_cast<size_t>(rate * duration), rate,
      /*zipf_theta=*/0.9, /*seed=*/42);
  ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 10;

  bench::PrintCdfHeader("growth rate (Kbps)");
  double exspan_p80 = 0, advanced_p80 = 0;
  double exspan_med = 0, advanced_med = 0;
  for (Scheme scheme : kPaperSchemes) {
    ExperimentResult res = RunDns(scheme, universe, workload, config);
    std::vector<double> growth_all = res.PerNodeGrowthBps();
    std::vector<double> growth;
    for (NodeId server : universe.servers) {
      growth.push_back(growth_all[server]);
    }
    bench::PrintCdfRow(res.scheme, growth, "Kbps", 1e-3);
    Cdf cdf(growth);
    if (scheme == Scheme::kExspan) {
      exspan_p80 = cdf.Quantile(0.8);
      exspan_med = cdf.Median();
    }
    if (scheme == Scheme::kAdvanced) {
      advanced_p80 = cdf.Quantile(0.8);
      advanced_med = cdf.Median();
    }
  }
  std::printf("\nExSPAN/Advanced ratio: median %.1fx, p80 %.1fx "
              "(paper p80: ~3.9x; see EXPERIMENTS.md on the gap)\n",
              advanced_med > 0 ? exspan_med / advanced_med : 0.0,
              advanced_p80 > 0 ? exspan_p80 / advanced_p80 : 0.0);
  return 0;
}
