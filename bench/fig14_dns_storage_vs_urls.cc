// Figure 14: DNS provenance storage with a fixed request budget and an
// increasing number of distinct URLs. ExSPAN and Basic are driven by the
// number of requests and stay flat; Advanced adds one shared tree per URL
// (equivalence class) and grows linearly, remaining lowest except in the
// degenerate one-request-per-class limit.
//
// Scale knobs: DPC_REQUESTS (paper: 200).
#include <cstdio>

#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  size_t requests = EnvSize("DPC_REQUESTS", 200);

  DnsParams params;
  // Few clients, so the number of equivalence classes (client x URL) is
  // driven by the URL count, as in the paper's setup.
  params.num_clients = 5;
  DnsUniverse universe = MakeDnsUniverse(params);
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "DNS: %zu requests total over an increasing URL universe",
                requests);
  PrintFigureHeader("Figure 14: storage vs number of requested URLs", setup);

  const int url_counts[] = {5, 10, 19, 29, 38};

  std::printf("%-8s %16s %16s %16s\n", "URLs", "ExSPAN", "Basic",
              "Advanced");
  std::vector<double> advanced_series;
  for (int urls : url_counts) {
    auto workload = MakeDnsWorkload(universe, requests, /*rate_rps=*/50,
                                    /*zipf_theta=*/0.9, /*seed=*/42, urls);
    ExperimentConfig config;
    config.duration_s =
        static_cast<double>(requests) / 50 + 1;
    config.snapshot_interval_s = config.duration_s / 2;

    std::printf("%-8d", urls);
    for (Scheme scheme : kPaperSchemes) {
      ExperimentResult res = RunDns(scheme, universe, workload, config);
      std::printf(" %16s", FormatBytes(res.final_storage.Total()).c_str());
      if (scheme == Scheme::kAdvanced) {
        advanced_series.push_back(res.final_storage.Total());
      }
    }
    std::printf("\n");
  }
  double per_url = (advanced_series.back() - advanced_series.front()) /
                   (url_counts[4] - url_counts[0]);
  std::printf("\nAdvanced grows ~%.1f Kb per added URL "
              "(paper: 11.6 Kb/URL); ExSPAN/Basic stay ~flat\n",
              per_url * 8.0 / 1000.0);
  return 0;
}
