// Figure 11: network bandwidth consumed while maintaining provenance
// during packet forwarding. All three schemes should sit close together —
// the per-packet metadata (existFlag, hashes) is negligible next to the
// 500-byte payloads. The §6.1.2 variant re-runs Advanced with a
// slow-changing route update every few seconds; the paper measured a 0.6%
// bandwidth increase.
//
// Scale knobs: DPC_PAIRS (500 in the paper), DPC_PACKETS_PER_PAIR (100),
// DPC_UPDATE_INTERVAL (10 s).
#include <cstdio>

#include "src/apps/experiments.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  size_t pairs = EnvSize("DPC_PAIRS", 100);
  size_t per_pair = EnvSize("DPC_PACKETS_PER_PAIR", 40);
  double update_interval = EnvDouble("DPC_UPDATE_INTERVAL", 5);
  double duration = 20;

  TransitStubTopology topo = MakeTransitStub();
  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "forwarding: %zu pairs x %zu packets (paper: 500 x 100)",
                pairs, per_pair);
  PrintFigureHeader("Figure 11: bandwidth consumption during forwarding",
                    setup);

  ForwardingWorkload workload = MakeFixedCountForwardingWorkload(
      topo, pairs, pairs * per_pair, duration, kDefaultPayloadLen,
      /*seed=*/42);
  ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 4;
  config.bandwidth_bucket_s = 1.0;

  std::vector<ExperimentResult> results;
  for (Scheme scheme : kPaperSchemes) {
    results.push_back(RunForwarding(scheme, topo, workload, config));
  }
  // Advanced with periodic route updates (§6.1.2).
  ExperimentConfig update_config = config;
  update_config.route_update_interval_s = update_interval;
  results.push_back(
      RunForwarding(Scheme::kAdvanced, topo, workload, update_config));
  results.back().scheme = "Advanced+updates";

  std::printf("%-10s", "time(s)");
  for (const auto& r : results) std::printf(" %18s", r.scheme.c_str());
  std::printf("\n");
  size_t buckets = 0;
  for (const auto& r : results)
    buckets = std::max(buckets, r.bandwidth_buckets.size());
  for (size_t b = 0; b < buckets && b < static_cast<size_t>(duration); ++b) {
    std::printf("%-10zu", b);
    for (const auto& r : results) {
      double bytes = b < r.bandwidth_buckets.size()
                         ? static_cast<double>(r.bandwidth_buckets[b])
                         : 0;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f MBps",
                    bytes / r.bandwidth_bucket_s / 1e6);
      std::printf(" %18s", buf);
    }
    std::printf("\n");
  }

  std::printf("\n%-10s", "total");
  for (const auto& r : results) {
    std::printf(" %18s",
                FormatBytes(static_cast<double>(r.total_network_bytes))
                    .c_str());
  }
  double adv = static_cast<double>(results[2].total_network_bytes);
  double adv_upd = static_cast<double>(results[3].total_network_bytes);
  double exspan = static_cast<double>(results[0].total_network_bytes);
  std::printf("\n\nAdvanced vs ExSPAN: %+.1f%%   |   updates add %+.2f%% "
              "(paper: ~0.6%%)\n",
              100.0 * (adv - exspan) / exspan,
              100.0 * (adv_upd - adv) / adv);
  return 0;
}
