// Figure 12: CDF of distributed provenance query latency over 100 random
// recv tuples (packet forwarding). The paper's emulation testbed (25
// machines, LAN sockets) measured mean/median 75/74 ms for ExSPAN vs
// 25.5/25 ms for Basic — about a 3x gap caused by ExSPAN processing and
// shipping materialized intermediate tuples, which Basic and Advanced
// re-derive locally instead.
//
// We replay queries against a LAN-latency profile of the same topology
// (their query testbed was a LAN, not the simulated WAN).
//
// Scale knobs: DPC_PAIRS, DPC_QUERIES.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/experiments.h"
#include "src/core/distributed_query.h"
#include "src/core/query.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  size_t num_pairs = EnvSize("DPC_PAIRS", 50);
  size_t num_queries = EnvSize("DPC_QUERIES", 100);

  // LAN profile mirroring the §6.1.3 physical testbed.
  TransitStubParams tparams;
  tparams.transit_transit = LinkProps{0.0005, 1e9};
  tparams.transit_stub = LinkProps{0.0003, 1e9};
  tparams.stub_stub = LinkProps{0.0002, 1e9};
  TransitStubTopology topo = MakeTransitStub(tparams);

  char setup[256];
  std::snprintf(setup, sizeof(setup),
                "forwarding on a LAN profile; %zu pairs, %zu queries "
                "(paper: 100 queries, 5.3 hops avg)",
                num_pairs, num_queries);
  PrintFigureHeader("Figure 12: provenance query latency CDF", setup);

  ForwardingWorkload workload = MakeFixedCountForwardingWorkload(
      topo, num_pairs, num_pairs * 4, /*duration_s=*/20, kDefaultPayloadLen,
      /*seed=*/42);

  auto program_or = MakeForwardingProgram();
  if (!program_or.ok()) {
    std::fprintf(stderr, "%s\n", program_or.status().ToString().c_str());
    return 1;
  }

  bench::PrintCdfHeader("latency (ms)");
  double mean_exspan = 0, mean_basic = 0;
  for (Scheme scheme :
       {Scheme::kExspan, Scheme::kBasic, Scheme::kAdvanced}) {
    auto bed_or = Testbed::Create(*program_or, &topo.graph, scheme);
    if (!bed_or.ok()) {
      std::fprintf(stderr, "%s\n", bed_or.status().ToString().c_str());
      return 1;
    }
    auto bed = std::move(bed_or).value();
    for (auto [s, d] : workload.pairs) {
      Status st = InstallRoutesForPair(bed->system(), topo.graph, s, d);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    for (const WorkloadItem& item : workload.items) {
      (void)bed->system().ScheduleInject(item.event, item.time_s);
    }
    bed->system().Run();

    // Query random outputs, both with the analytic cost model and with
    // the message-driven distributed protocol (parallel branch fan-out).
    std::vector<OutputRecord> outputs = bed->system().AllOutputs();
    if (outputs.empty()) {
      std::fprintf(stderr, "no outputs to query\n");
      return 1;
    }
    std::unique_ptr<DistributedQuerier> protocol;
    switch (scheme) {
      case Scheme::kExspan:
        protocol = DistributedQuerier::ForExspan(bed->exspan(), &topo.graph,
                                                 &bed->queue());
        break;
      case Scheme::kBasic:
        protocol = DistributedQuerier::ForBasic(
            bed->basic(), &bed->program(), &bed->system().functions(),
            &topo.graph, &bed->queue());
        break;
      default:
        protocol = DistributedQuerier::ForAdvanced(
            bed->advanced(), &bed->program(), &bed->system().functions(),
            &topo.graph, &bed->queue());
        break;
    }
    Rng rng(1234);
    auto querier = bed->MakeQuerier();
    std::vector<double> latencies;
    std::vector<double> protocol_latencies;
    int total_hops = 0;
    for (size_t q = 0; q < num_queries; ++q) {
      const OutputRecord& out = outputs[rng.NextBelow(outputs.size())];
      auto res = querier->Query(out.tuple, nullptr);
      if (!res.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      latencies.push_back(res->latency_s * 1000.0);
      total_hops += res->hops;
      auto dist = protocol->QueryAndWait(out.tuple);
      if (!dist.ok()) {
        std::fprintf(stderr, "protocol query failed: %s\n",
                     dist.status().ToString().c_str());
        return 1;
      }
      protocol_latencies.push_back(dist->latency_s * 1000.0);
    }
    bench::PrintCdfRow(SchemeName(scheme), latencies, "ms");
    Cdf cdf(latencies);
    Cdf proto_cdf(protocol_latencies);
    if (scheme == Scheme::kExspan) mean_exspan = cdf.Mean();
    if (scheme == Scheme::kBasic) mean_basic = cdf.Mean();
    std::printf("%-22s   avg hops %.1f | distributed protocol "
                "mean %.2f ms, median %.2f ms\n",
                "",
                static_cast<double>(total_hops) /
                    static_cast<double>(num_queries),
                proto_cdf.Mean(), proto_cdf.Median());
  }
  std::printf("\nExSPAN/Basic mean latency ratio: %.1fx (paper: ~2.9x)\n",
              mean_basic > 0 ? mean_exspan / mean_basic : 0.0);
  return 0;
}
