// google-benchmark microbenchmarks for the hot paths of the runtime:
// SHA-1 hashing, tuple encoding, rule firing, equivalence-key checking,
// and provenance table insertion.
#include <benchmark/benchmark.h>

#include "src/apps/dns.h"
#include "src/apps/forwarding.h"
#include "src/util/logging.h"
#include "src/core/advanced_recorder.h"
#include "src/core/equivalence_keys.h"
#include "src/core/prov_tables.h"
#include "src/ndlog/eval.h"
#include "src/util/rng.h"
#include "src/util/sha1.h"

namespace dpc {
namespace {

void BM_Sha1_64B(benchmark::State& state) {
  std::string data(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha1_64B);

void BM_Sha1_1KB(benchmark::State& state) {
  std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha1_1KB);

void BM_TupleVid(benchmark::State& state) {
  Tuple t = apps::MakePacket(1, 1, 3, apps::MakePayload(500, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Vid());
  }
}
BENCHMARK(BM_TupleVid);

void BM_TupleSerialize(benchmark::State& state) {
  Tuple t = apps::MakePacket(1, 1, 3, apps::MakePayload(500, 7));
  for (auto _ : state) {
    ByteWriter w;
    t.Serialize(w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_TupleSerialize);

void BM_FireRule(benchmark::State& state) {
  auto program = apps::MakeForwardingProgram();
  DPC_CHECK(program.ok());
  const Rule& r1 = program->rules()[0];
  Database db;
  // A route table with several entries, as on a busy node.
  for (int d = 0; d < state.range(0); ++d) {
    db.Insert(apps::MakeRoute(1, 100 + d, 2));
  }
  FunctionRegistry fns = DefaultFunctions();
  Tuple packet = apps::MakePacket(1, 1, 100, apps::MakePayload(500, 7));
  for (auto _ : state) {
    auto firings = FireRule(r1, packet, db, fns);
    benchmark::DoNotOptimize(firings.ok());
  }
}
BENCHMARK(BM_FireRule)->Arg(1)->Arg(8)->Arg(64);

void BM_EquivalenceKeyHash(benchmark::State& state) {
  auto program = apps::MakeForwardingProgram();
  DPC_CHECK(program.ok());
  auto keys = ComputeEquivalenceKeys(*program);
  DPC_CHECK(keys.ok());
  Tuple packet = apps::MakePacket(1, 1, 100, apps::MakePayload(500, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(keys->HashOf(packet));
  }
}
BENCHMARK(BM_EquivalenceKeyHash);

void BM_StaticAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    auto program = apps::MakeDnsProgram();
    DPC_CHECK(program.ok());
    auto keys = ComputeEquivalenceKeys(*program);
    benchmark::DoNotOptimize(keys.ok());
  }
}
BENCHMARK(BM_StaticAnalysis);

void BM_RuleExecInsert(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    RuleExecTable table(/*with_next=*/true);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      RuleExecEntry e;
      e.rloc = 1;
      uint64_t x = rng.Next();
      e.rid = Sha1::Hash(&x, sizeof(x));
      e.rule_id = "r1";
      e.vids.push_back(e.rid);
      table.Insert(e);
    }
    benchmark::DoNotOptimize(table.SerializedBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_RuleExecInsert);

}  // namespace
}  // namespace dpc

BENCHMARK_MAIN();
