// Durability-cost benchmark for the WAL layer: a fig09-style forwarding
// run per paper scheme with journaling off, on, and on-with-checkpoints
// (wall-clock overhead of the write-ahead log), plus recovery latency as
// a function of WAL tail length — cold replay of the whole log and
// checkpoint-plus-tail replay. Prints a JSON report; the checked-in
// snapshot lives at BENCH_recovery.json.
//
// Scale knobs: DPC_PAIRS, DPC_RATE, DPC_DURATION (overhead section);
// DPC_RECOVERY_MAX_ROUNDS (latency section).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/apps/experiments.h"
#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/wal_recorder.h"
#include "src/util/logging.h"

namespace dpc {
namespace {

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

// Scoped temp dir for the WAL files of one benchmark case.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/dpc-recovery-bench-XXXXXX";
    DPC_CHECK(mkdtemp(tmpl) != nullptr);
    path_ = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

size_t DirBytes(const std::string& dir) {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

// --- WAL overhead on an end-to-end forwarding run ---------------------------

struct OverheadCase {
  std::string scheme;
  double wall_off_s = 0;
  double wall_wal_s = 0;
  double wall_wal_buffered_s = 0;
  double wall_wal_ckpt_s = 0;
  double overhead_pct = 0;           // flush-per-record journaling
  double buffered_overhead_pct = 0;  // group-commit journaling
  double ckpt_overhead_pct = 0;      // journaling + periodic checkpoints
  // Journaling cost as a share of the SIMULATED duration — what the same
  // absolute cost would mean for a deployment processing this workload in
  // real time (the simulator baseline runs ~30x faster than real time, so
  // overhead_pct against it is a worst case).
  double cost_pct_of_sim_time = 0;
  double wal_mb = 0;                 // on-disk log size, no checkpoints
};

std::vector<OverheadCase> BenchOverhead(size_t pairs, double rate,
                                        double duration) {
  TransitStubTopology topo = MakeTransitStub();
  apps::ForwardingWorkload workload = apps::MakeForwardingWorkload(
      topo, pairs, rate, duration, apps::kDefaultPayloadLen, /*seed=*/42);
  apps::ExperimentConfig config;
  config.duration_s = duration;
  config.snapshot_interval_s = duration / 10;
  config.metrics = false;

  std::vector<OverheadCase> out;
  for (apps::Scheme scheme : apps::kPaperSchemes) {
    OverheadCase c;

    auto start = std::chrono::steady_clock::now();
    apps::ExperimentResult off =
        apps::RunForwarding(scheme, topo, workload, config);
    c.wall_off_s = Seconds(start, std::chrono::steady_clock::now());
    c.scheme = off.scheme;
    DPC_CHECK(off.outputs > 0);

    {
      TempDir wal_dir;
      config.wal_dir = wal_dir.path();
      start = std::chrono::steady_clock::now();
      apps::ExperimentResult on =
          apps::RunForwarding(scheme, topo, workload, config);
      c.wall_wal_s = Seconds(start, std::chrono::steady_clock::now());
      DPC_CHECK(on.outputs == off.outputs);
      c.wal_mb = static_cast<double>(DirBytes(wal_dir.path())) / 1e6;
    }
    {
      TempDir wal_dir;
      config.wal_dir = wal_dir.path();
      config.wal_buffered = true;
      start = std::chrono::steady_clock::now();
      apps::ExperimentResult on =
          apps::RunForwarding(scheme, topo, workload, config);
      c.wall_wal_buffered_s = Seconds(start, std::chrono::steady_clock::now());
      DPC_CHECK(on.outputs == off.outputs);
      config.wal_buffered = false;
    }
    {
      TempDir wal_dir;
      config.wal_dir = wal_dir.path();
      config.wal_checkpoint_interval_s = duration / 4;
      start = std::chrono::steady_clock::now();
      apps::ExperimentResult on =
          apps::RunForwarding(scheme, topo, workload, config);
      c.wall_wal_ckpt_s = Seconds(start, std::chrono::steady_clock::now());
      DPC_CHECK(on.outputs == off.outputs);
      config.wal_checkpoint_interval_s = 0;
    }
    config.wal_dir.clear();

    c.overhead_pct = (c.wall_wal_s / c.wall_off_s - 1.0) * 100.0;
    c.buffered_overhead_pct =
        (c.wall_wal_buffered_s / c.wall_off_s - 1.0) * 100.0;
    c.ckpt_overhead_pct = (c.wall_wal_ckpt_s / c.wall_off_s - 1.0) * 100.0;
    c.cost_pct_of_sim_time = (c.wall_wal_s - c.wall_off_s) / duration * 100.0;
    out.push_back(std::move(c));
  }
  return out;
}

// --- recovery latency vs WAL tail length ------------------------------------

struct RecoveryCase {
  size_t rounds = 0;
  bool checkpointed = false;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;
  double recover_ms = 0;
};

constexpr int kLineNodes = 8;

Topology MakeLineTopo() {
  Topology topo;
  topo.AddNodes(kLineNodes);
  for (int i = 0; i + 1 < kLineNodes; ++i) {
    DPC_CHECK(topo.AddLink(i, i + 1, LinkProps{0.001, 1e9}).ok());
  }
  topo.ComputeRoutes();
  return topo;
}

// Runs `rounds` two-direction forwarding rounds against a journaled
// Advanced-scheme deployment, optionally cutting one checkpoint halfway,
// then times WalRecorder::Recover() into a fresh testbed.
RecoveryCase BenchRecovery(const Program& program, const Topology& topo,
                           size_t rounds, bool checkpointed) {
  RecoveryCase c;
  c.rounds = rounds;
  c.checkpointed = checkpointed;

  TempDir wal_dir;
  apps::TestbedOptions options;
  options.wal_dir = wal_dir.path();
  {
    auto bed = apps::Testbed::Create(program, &topo, apps::Scheme::kAdvanced,
                                     options);
    DPC_CHECK(bed.ok());
    apps::Testbed& b = **bed;
    DPC_CHECK(
        apps::InstallRoutesForPair(b.system(), topo, 0, kLineNodes - 1).ok());
    DPC_CHECK(
        apps::InstallRoutesForPair(b.system(), topo, kLineNodes - 1, 0).ok());
    double t = 0;
    for (size_t round = 0; round < rounds; ++round) {
      if (checkpointed && round == rounds / 2) {
        b.system().Run();
        DPC_CHECK(b.wal()->Checkpoint().ok());
      }
      DPC_CHECK(b.system()
                    .ScheduleInject(apps::MakePacket(
                                        0, 0, kLineNodes - 1,
                                        apps::MakePayload(24, round)),
                                    t += 0.003)
                    .ok());
      DPC_CHECK(b.system()
                    .ScheduleInject(apps::MakePacket(
                                        kLineNodes - 1, kLineNodes - 1, 0,
                                        apps::MakePayload(24, 100000 + round)),
                                    t += 0.003)
                    .ok());
    }
    b.system().Run();
  }

  auto bed = apps::Testbed::Create(program, &topo, apps::Scheme::kAdvanced,
                                   options);
  DPC_CHECK(bed.ok());
  auto start = std::chrono::steady_clock::now();
  auto stats = (*bed)->wal()->Recover();
  c.recover_ms = Seconds(start, std::chrono::steady_clock::now()) * 1e3;
  DPC_CHECK(stats.ok());
  c.records_replayed = stats->records_replayed;
  c.records_skipped = stats->records_skipped;
  return c;
}

int Main() {
  size_t pairs = apps::EnvSize("DPC_PAIRS", 20);
  double rate = apps::EnvDouble("DPC_RATE", 10);
  double duration = apps::EnvDouble("DPC_DURATION", 10);
  std::vector<OverheadCase> overhead = BenchOverhead(pairs, rate, duration);

  size_t max_rounds = apps::EnvSize("DPC_RECOVERY_MAX_ROUNDS", 512);
  auto program = apps::MakeForwardingProgram();
  Topology topo = MakeLineTopo();
  std::vector<RecoveryCase> recovery;
  for (size_t rounds = 8; rounds <= max_rounds; rounds *= 4) {
    recovery.push_back(BenchRecovery(*program, topo, rounds, false));
  }
  recovery.push_back(BenchRecovery(*program, topo, max_rounds, true));

  std::printf("{\n  \"bench\": \"recovery_bench\",\n");
  std::printf("  \"wal_overhead\": {\"pairs\": %zu, \"rate_pps\": %.0f, "
              "\"duration_s\": %.0f, \"schemes\": [\n",
              pairs, rate, duration);
  for (size_t i = 0; i < overhead.size(); ++i) {
    const OverheadCase& c = overhead[i];
    std::printf(
        "    {\"scheme\": \"%s\", \"wall_off_s\": %.3f, "
        "\"wall_wal_s\": %.3f, \"overhead_pct\": %.1f, "
        "\"wall_wal_buffered_s\": %.3f, \"buffered_overhead_pct\": %.1f, "
        "\"wall_wal_ckpt_s\": %.3f, \"ckpt_overhead_pct\": %.1f, "
        "\"cost_pct_of_sim_time\": %.2f, \"wal_mb\": %.2f}%s\n",
        c.scheme.c_str(), c.wall_off_s, c.wall_wal_s, c.overhead_pct,
        c.wall_wal_buffered_s, c.buffered_overhead_pct, c.wall_wal_ckpt_s,
        c.ckpt_overhead_pct, c.cost_pct_of_sim_time, c.wal_mb,
        i + 1 < overhead.size() ? "," : "");
  }
  std::printf("  ]},\n");
  std::printf("  \"recovery_latency\": [\n");
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryCase& c = recovery[i];
    std::printf(
        "    {\"rounds\": %zu, \"checkpointed\": %s, "
        "\"records_replayed\": %llu, \"records_skipped\": %llu, "
        "\"recover_ms\": %.2f}%s\n",
        c.rounds, c.checkpointed ? "true" : "false",
        static_cast<unsigned long long>(c.records_replayed),
        static_cast<unsigned long long>(c.records_skipped), c.recover_ms,
        i + 1 < recovery.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace dpc

int main() { return dpc::Main(); }
