// Microbenchmark: naive FireRule (full table scans per condition atom)
// vs the planner's FireRulePlanned (greedy join order + lazily built hash
// indexes) vs set-at-a-time FireRuleBatched (one plan execution per batch
// of same-relation events) on a two-way join rule. Prints a JSON report;
// the checked-in snapshot lives at BENCH_eval.json.
//
//   r1 h(@L, A, B, C) :- e(@L, A), s1(@L, A, B), s2(@L, B, C).
//
// Every event matches exactly one s1 row, which selects exactly one s2
// row: the naive evaluator still scans both tables per event, while the
// planned evaluator does two O(1) index probes. Below the crossover
// (tables of <= kNaiveCrossoverRows rows) the planned path falls through
// to the naive scan — at that size the scan beats index maintenance, so
// the rows=10 case reports speedup ~1 rather than the former regression.
// The batch case evaluates the plan once over 10k same-timestamp events:
// shared executor scratch plus group-probed first keys amortize the
// per-event setup the planned path pays 10k times.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/analysis/planner.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/parser.h"
#include "src/runtime/batch_eval.h"
#include "src/util/logging.h"

namespace dpc {
namespace {

constexpr char kRuleText[] =
    "r1 h(@L, A, B, C) :- e(@L, A), s1(@L, A, B), s2(@L, B, C).";

struct CaseResult {
  int rows = 0;
  double naive_us_per_event = 0;
  double planned_us_per_event = 0;
  double batched_us_per_event = 0;
  double speedup = 0;          // naive / planned
  double batched_speedup = 0;  // planned / batched
};

double MicrosPerEvent(const std::vector<Tuple>& events, size_t iters,
                      const std::function<size_t(const Tuple&)>& fire) {
  size_t total_firings = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < iters; ++it) {
    for (const Tuple& ev : events) total_firings += fire(ev);
  }
  auto end = std::chrono::steady_clock::now();
  DPC_CHECK(total_firings == iters * events.size());
  double us = std::chrono::duration<double, std::micro>(end - start).count();
  return us / static_cast<double>(iters * events.size());
}

// One FireRuleBatched call over the whole event set per iteration — the
// runtime's batch path when all events land at one simulated instant.
double MicrosPerEventBatched(const Rule& rule, const RulePlan& plan,
                             const std::vector<Tuple>& events,
                             const Database& db, const FunctionRegistry& fns,
                             size_t iters) {
  std::vector<const Tuple*> batch;
  batch.reserve(events.size());
  for (const Tuple& ev : events) batch.push_back(&ev);
  size_t total_firings = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < iters; ++it) {
    std::vector<BatchEventFirings> out =
        FireRuleBatched(rule, plan, batch, db, fns);
    for (size_t i = 0; i < out.size(); ++i) {
      DPC_CHECK(out[i].status.ok());
      total_firings += FiringsOf(out, i).size();
    }
  }
  auto end = std::chrono::steady_clock::now();
  DPC_CHECK(total_firings == iters * events.size());
  double us = std::chrono::duration<double, std::micro>(end - start).count();
  return us / static_cast<double>(iters * events.size());
}

void FillDb(Database& db, int rows) {
  for (int a = 0; a < rows; ++a) {
    db.Insert(Tuple::Make("s1", 0,
                          {Value::Int(a), Value::Int((a * 7) % rows)}));
    db.Insert(Tuple::Make("s2", 0, {Value::Int(a), Value::Int(a + 1)}));
  }
}

// Warm-up: verifies all three evaluators agree and builds the lazy
// indexes outside the timed region (as the runtime would after the first
// event).
void WarmAndCheck(const Rule& rule, const RulePlan& plan,
                  const std::vector<Tuple>& events, const Database& db,
                  const FunctionRegistry& fns) {
  std::vector<const Tuple*> batch;
  for (const Tuple& ev : events) batch.push_back(&ev);
  std::vector<BatchEventFirings> batched =
      FireRuleBatched(rule, plan, batch, db, fns);
  for (size_t i = 0; i < events.size(); ++i) {
    auto naive = FireRule(rule, events[i], db, fns);
    auto planned = FireRulePlanned(rule, plan, events[i], db, fns);
    const std::vector<RuleFiring>& bfirings = FiringsOf(batched, i);
    DPC_CHECK(naive.ok() && planned.ok() && batched[i].status.ok());
    DPC_CHECK(naive->size() == 1 && planned->size() == 1 &&
              bfirings.size() == 1);
    DPC_CHECK(naive->front().head == planned->front().head);
    DPC_CHECK(naive->front().head == bfirings.front().head);
  }
}

CaseResult RunCase(const Rule& rule, const RulePlan& plan, int rows,
                   size_t iters) {
  Database db;
  FillDb(db, rows);
  std::vector<Tuple> events;
  for (int a = 0; a < rows; a += (rows > 64 ? rows / 64 : 1)) {
    events.push_back(Tuple::Make("e", 0, {Value::Int(a)}));
  }
  FunctionRegistry fns;
  WarmAndCheck(rule, plan, events, db, fns);

  CaseResult res;
  res.rows = rows;
  res.naive_us_per_event = MicrosPerEvent(events, iters, [&](const Tuple& ev) {
    return FireRule(rule, ev, db, fns)->size();
  });
  res.planned_us_per_event =
      MicrosPerEvent(events, iters, [&](const Tuple& ev) {
        return FireRulePlanned(rule, plan, ev, db, fns)->size();
      });
  res.batched_us_per_event =
      MicrosPerEventBatched(rule, plan, events, db, fns, iters);
  res.speedup = res.naive_us_per_event / res.planned_us_per_event;
  res.batched_speedup = res.planned_us_per_event / res.batched_us_per_event;
  return res;
}

// The headline case: 10k events of one relation at one simulated instant
// against an above-crossover table — the runtime drains them into a
// single batch, so the comparison is one FireRuleBatched call vs 10k
// FireRulePlanned calls.
CaseResult RunBatchCase(const Rule& rule, const RulePlan& plan, int rows,
                        int num_events, size_t iters) {
  Database db;
  FillDb(db, rows);
  std::vector<Tuple> events;
  events.reserve(static_cast<size_t>(num_events));
  for (int i = 0; i < num_events; ++i) {
    events.push_back(Tuple::Make("e", 0, {Value::Int(i % rows)}));
  }
  FunctionRegistry fns;
  WarmAndCheck(rule, plan, events, db, fns);

  CaseResult res;
  res.rows = rows;
  res.planned_us_per_event =
      MicrosPerEvent(events, iters, [&](const Tuple& ev) {
        return FireRulePlanned(rule, plan, ev, db, fns)->size();
      });
  res.batched_us_per_event =
      MicrosPerEventBatched(rule, plan, events, db, fns, iters);
  res.batched_speedup = res.planned_us_per_event / res.batched_us_per_event;
  return res;
}

int Main() {
  auto rules = ParseRules(kRuleText);
  DPC_CHECK(rules.ok());
  const Rule& rule = rules->front();
  ProgramPlan plan = PlanRules(*rules);

  std::vector<CaseResult> cases;
  cases.push_back(RunCase(rule, plan.rules[0], 10, 4000));
  cases.push_back(RunCase(rule, plan.rules[0], 100, 1500));
  cases.push_back(RunCase(rule, plan.rules[0], 1000, 300));
  CaseResult batch =
      RunBatchCase(rule, plan.rules[0], 1000, /*num_events=*/10000,
                   /*iters=*/30);

  std::printf("{\n  \"bench\": \"eval_bench\",\n  \"rule\": \"%s\",\n"
              "  \"naive_crossover_rows\": %zu,\n  \"cases\": [\n",
              kRuleText, kNaiveCrossoverRows);
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::printf("    {\"rows\": %d, \"naive_us_per_event\": %.3f, "
                "\"planned_us_per_event\": %.3f, "
                "\"batched_us_per_event\": %.3f, \"speedup\": %.1f, "
                "\"batched_speedup\": %.1f}%s\n",
                c.rows, c.naive_us_per_event, c.planned_us_per_event,
                c.batched_us_per_event, c.speedup, c.batched_speedup,
                i + 1 < cases.size() ? "," : "");
  }
  std::printf("  ],\n  \"batch_case\": {\"rows\": %d, \"events\": 10000, "
              "\"planned_us_per_event\": %.3f, \"batched_us_per_event\": "
              "%.3f, \"batched_speedup\": %.1f}\n}\n",
              batch.rows, batch.planned_us_per_event,
              batch.batched_us_per_event, batch.batched_speedup);
  return 0;
}

}  // namespace
}  // namespace dpc

int main() { return dpc::Main(); }
