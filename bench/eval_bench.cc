// Microbenchmark: naive FireRule (full table scans per condition atom)
// vs the planner's FireRulePlanned (greedy join order + lazily built hash
// indexes) on a two-way join rule, at 10 / 100 / 1000-row slow tables.
// Prints a JSON report; the checked-in snapshot lives at BENCH_eval.json.
//
//   r1 h(@L, A, B, C) :- e(@L, A), s1(@L, A, B), s2(@L, B, C).
//
// Every event matches exactly one s1 row, which selects exactly one s2
// row: the naive evaluator still scans both tables per event, while the
// planned evaluator does two O(1) index probes.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/analysis/planner.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/parser.h"
#include "src/util/logging.h"

namespace dpc {
namespace {

constexpr char kRuleText[] =
    "r1 h(@L, A, B, C) :- e(@L, A), s1(@L, A, B), s2(@L, B, C).";

struct CaseResult {
  int rows = 0;
  double naive_us_per_event = 0;
  double planned_us_per_event = 0;
  double speedup = 0;
};

double MicrosPerEvent(const std::vector<Tuple>& events, size_t iters,
                      const std::function<size_t(const Tuple&)>& fire) {
  size_t total_firings = 0;
  auto start = std::chrono::steady_clock::now();
  for (size_t it = 0; it < iters; ++it) {
    for (const Tuple& ev : events) total_firings += fire(ev);
  }
  auto end = std::chrono::steady_clock::now();
  DPC_CHECK(total_firings == iters * events.size());
  double us = std::chrono::duration<double, std::micro>(end - start).count();
  return us / static_cast<double>(iters * events.size());
}

CaseResult RunCase(const Rule& rule, const RulePlan& plan, int rows,
                   size_t iters) {
  Database db;
  for (int a = 0; a < rows; ++a) {
    db.Insert(Tuple::Make("s1", 0,
                          {Value::Int(a), Value::Int((a * 7) % rows)}));
    db.Insert(Tuple::Make("s2", 0, {Value::Int(a), Value::Int(a + 1)}));
  }
  std::vector<Tuple> events;
  for (int a = 0; a < rows; a += (rows > 64 ? rows / 64 : 1)) {
    events.push_back(Tuple::Make("e", 0, {Value::Int(a)}));
  }
  FunctionRegistry fns;

  // Warm-up: verifies both evaluators agree and builds the lazy indexes
  // outside the timed region (as the runtime would after the first event).
  for (const Tuple& ev : events) {
    auto naive = FireRule(rule, ev, db, fns);
    auto planned = FireRulePlanned(rule, plan, ev, db, fns);
    DPC_CHECK(naive.ok() && planned.ok());
    DPC_CHECK(naive->size() == 1 && planned->size() == 1);
    DPC_CHECK(naive->front().head == planned->front().head);
  }

  CaseResult res;
  res.rows = rows;
  res.naive_us_per_event = MicrosPerEvent(events, iters, [&](const Tuple& ev) {
    return FireRule(rule, ev, db, fns)->size();
  });
  res.planned_us_per_event =
      MicrosPerEvent(events, iters, [&](const Tuple& ev) {
        return FireRulePlanned(rule, plan, ev, db, fns)->size();
      });
  res.speedup = res.naive_us_per_event / res.planned_us_per_event;
  return res;
}

int Main() {
  auto rules = ParseRules(kRuleText);
  DPC_CHECK(rules.ok());
  const Rule& rule = rules->front();
  ProgramPlan plan = PlanRules(*rules);

  std::vector<CaseResult> cases;
  cases.push_back(RunCase(rule, plan.rules[0], 10, 4000));
  cases.push_back(RunCase(rule, plan.rules[0], 100, 1500));
  cases.push_back(RunCase(rule, plan.rules[0], 1000, 300));

  std::printf("{\n  \"bench\": \"eval_bench\",\n  \"rule\": \"%s\",\n"
              "  \"cases\": [\n", kRuleText);
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    std::printf("    {\"rows\": %d, \"naive_us_per_event\": %.3f, "
                "\"planned_us_per_event\": %.3f, \"speedup\": %.1f}%s\n",
                c.rows, c.naive_us_per_event, c.planned_us_per_event,
                c.speedup, i + 1 < cases.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace dpc

int main() { return dpc::Main(); }
