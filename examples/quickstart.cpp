// Quickstart: the paper's running example end to end.
//
// Builds the three-node network of Fig. 2, runs the packet-forwarding DELP
// of Fig. 1 under equivalence-based compression (§5.3), sends two packets
// of the same equivalence class, prints the compressed provenance tables
// (Table 3) and queries the provenance tree of a recv tuple (Fig. 3).
#include <cstdio>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"
#include "src/core/query.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  // --- 1. The program -------------------------------------------------
  auto program_or = MakeForwardingProgram();
  if (!program_or.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program_or.status().ToString().c_str());
    return 1;
  }
  std::printf("DELP program (Fig. 1):\n%s\n",
              program_or->ToString().c_str());

  // Static analysis (§5.2): the equivalence keys.
  auto keys = ComputeEquivalenceKeys(*program_or);
  if (!keys.ok()) {
    std::fprintf(stderr, "%s\n", keys.status().ToString().c_str());
    return 1;
  }
  std::printf("equivalence keys: %s\n\n", keys->ToString().c_str());

  // --- 2. The network of Fig. 2 ---------------------------------------
  Topology topo;
  NodeId n1 = topo.AddNode(), n2 = topo.AddNode(), n3 = topo.AddNode();
  (void)topo.AddLink(n1, n2, LinkProps{0.002, 50e6});
  (void)topo.AddLink(n2, n3, LinkProps{0.002, 50e6});
  topo.ComputeRoutes();

  auto bed_or =
      Testbed::Create(std::move(program_or).value(), &topo, Scheme::kAdvanced);
  if (!bed_or.ok()) {
    std::fprintf(stderr, "%s\n", bed_or.status().ToString().c_str());
    return 1;
  }
  auto bed = std::move(bed_or).value();
  System& sys = bed->system();

  // Slow-changing route state: n1 -> n2 -> n3.
  (void)sys.InsertSlowTuple(MakeRoute(n1, n3, n2));
  (void)sys.InsertSlowTuple(MakeRoute(n2, n3, n3));

  // --- 3. Two packets of the same equivalence class --------------------
  (void)sys.ScheduleInject(MakePacket(n1, n1, n3, "data"), 0.1);
  (void)sys.ScheduleInject(MakePacket(n1, n1, n3, "url"), 0.2);
  sys.Run();

  std::printf("execution: %llu events, %llu rule firings, %llu outputs\n\n",
              static_cast<unsigned long long>(sys.stats().events_injected),
              static_cast<unsigned long long>(sys.stats().rule_firings),
              static_cast<unsigned long long>(sys.stats().outputs));

  // --- 4. The compressed tables (Table 3) -----------------------------
  std::printf("ruleExec rows (shared provenance tree, one per node):\n");
  for (NodeId n : {n1, n2, n3}) {
    for (const RuleExecEntry& row : bed->advanced()->RuleExecAt(n).rows()) {
      std::printf("  (n%d, %s, %s, %zu vids, next=%s)\n", row.rloc,
                  row.rid.ToHex(4).c_str(), row.rule_id.c_str(),
                  row.vids.size(), row.next.ToString().c_str());
    }
  }
  std::printf("prov rows (one per output tuple, with EVID delta):\n");
  for (const ProvEntry& row : bed->advanced()->ProvAt(n3).rows()) {
    std::printf("  (n%d, vid=%s, ref=%s, evid=%s)\n", row.loc,
                row.vid.ToHex(4).c_str(), row.rule.ToString().c_str(),
                row.evid.ToHex(4).c_str());
  }

  // --- 5. Querying (§5.6) ----------------------------------------------
  auto querier = bed->MakeQuerier();
  Tuple recv = MakeRecv(n3, n1, n3, "data");
  auto res = querier->Query(recv);
  if (!res.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 res.status().ToString().c_str());
    return 1;
  }
  std::printf("\nprovenance of %s (latency %.2f ms, %zu entries, %d hops):\n",
              recv.ToString().c_str(), res->latency_s * 1e3,
              res->entries_touched, res->hops);
  for (const ProvTree& tree : res->trees) {
    std::printf("%s\n", tree.ToString().c_str());
  }

  StorageBreakdown total = bed->TotalStorage();
  std::printf("total provenance storage: %zu bytes "
              "(prov %zu, ruleExec %zu, events %zu, tuples %zu)\n",
              total.Total(), total.prov, total.rule_exec, total.event_store,
              total.tuple_store);
  return 0;
}
