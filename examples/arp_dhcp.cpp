// ARP and DHCP as DELPs (§3.1 claims the model covers both): a switched
// LAN where hosts resolve each other's MAC addresses and lease their IP
// configuration, with equivalence-based provenance compression on.
// Demonstrates that the same library machinery — static analysis,
// compression, querying — applies beyond the paper's two applications.
#include <cstdio>

#include "src/apps/extras.h"
#include "src/apps/testbed.h"
#include "src/core/equivalence_keys.h"
#include "src/core/query.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

namespace {

int RunApp(const char* title, Result<Program> program_or,
           const LanFixture& lan,
           const std::function<Status(System&)>& install,
           const std::function<void(System&)>& workload,
           const Tuple& query_target) {
  std::printf("=== %s ===\n", title);
  if (!program_or.ok()) {
    std::fprintf(stderr, "%s\n", program_or.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", program_or->ToString().c_str());
  auto keys = ComputeEquivalenceKeys(*program_or);
  if (!keys.ok()) return 1;
  std::printf("equivalence keys: %s\n\n", keys->ToString().c_str());

  auto bed_or = Testbed::Create(std::move(program_or).value(), &lan.graph,
                                Scheme::kAdvanced);
  if (!bed_or.ok()) return 1;
  auto bed = std::move(bed_or).value();
  if (!install(bed->system()).ok()) return 1;
  workload(bed->system());
  bed->system().Run();

  const SystemStats& stats = bed->system().stats();
  StorageBreakdown storage = bed->TotalStorage();
  std::printf("%llu events -> %llu replies; provenance storage %zu bytes "
              "(%zu shared ruleExec)\n",
              static_cast<unsigned long long>(stats.events_injected),
              static_cast<unsigned long long>(stats.outputs),
              storage.Total(), storage.rule_exec);

  auto querier = bed->MakeQuerier();
  auto res = querier->Query(query_target);
  if (!res.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 res.status().ToString().c_str());
    return 1;
  }
  std::printf("\nprovenance of %s:\n%s\n", query_target.ToString().c_str(),
              res->trees.front().ToString().c_str());
  return 0;
}

}  // namespace

int main() {
  LanFixture lan = MakeLan(6);
  std::printf("LAN: switch n%d with %zu hosts\n\n", lan.switch_node,
              lan.hosts.size());

  // --- ARP: every host resolves every other host's IP, three times. ---
  int rc = RunApp(
      "ARP", MakeArpProgram(), lan,
      [&lan](System& sys) { return InstallArpState(sys, lan); },
      [&lan](System& sys) {
        double t = 0;
        for (int round = 0; round < 3; ++round) {
          for (size_t i = 0; i < lan.hosts.size(); ++i) {
            for (size_t j = 0; j < lan.hosts.size(); ++j) {
              if (i == j) continue;
              (void)sys.ScheduleInject(
                  MakeArpQuery(lan.hosts[i],
                               LanIpOfHost(static_cast<int>(j))),
                  t += 0.001);
            }
          }
        }
      },
      MakeArpReply(lan.hosts[0], LanIpOfHost(1), LanMacOfHost(1)));
  if (rc != 0) return rc;

  // --- DHCP: every host leases its address twice. ---
  return RunApp(
      "DHCP", MakeDhcpProgram(), lan,
      [&lan](System& sys) { return InstallDhcpState(sys, lan); },
      [&lan](System& sys) {
        double t = 0;
        for (int round = 0; round < 2; ++round) {
          for (size_t i = 0; i < lan.hosts.size(); ++i) {
            (void)sys.ScheduleInject(
                MakeDhcpDiscover(lan.hosts[i],
                                 LanMacOfHost(static_cast<int>(i))),
                t += 0.001);
          }
        }
      },
      MakeDhcpOffer(lan.hosts[2], LanMacOfHost(2), LanIpOfHost(2)));
}
