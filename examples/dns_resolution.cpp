// Recursive DNS resolution (§6.2 / Appendix F): builds the synthetic
// nameserver hierarchy, resolves Zipf-distributed URL requests under
// equivalence-based compression, prints one resolution's provenance chain
// (root delegation -> ... -> address record -> reply), and reports the
// compression the URL-level equivalence classes achieve.
#include <cstdio>

#include "src/apps/experiments.h"
#include "src/core/query.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  DnsUniverse universe = MakeDnsUniverse();
  std::printf("DNS universe: %zu nameservers (max depth %d), %zu clients, "
              "%zu URLs\n",
              universe.servers.size(), universe.max_depth,
              universe.clients.size(), universe.urls.size());
  std::printf("sample URL: %s (held by server n%d)\n\n",
              universe.urls[0].c_str(),
              universe.servers[universe.url_holders[0]]);

  auto program_or = MakeDnsProgram();
  if (!program_or.ok()) {
    std::fprintf(stderr, "%s\n", program_or.status().ToString().c_str());
    return 1;
  }
  std::printf("DELP program (Appendix F):\n%s\n",
              program_or->ToString().c_str());

  auto bed_or = Testbed::Create(std::move(program_or).value(),
                                &universe.graph, Scheme::kAdvanced);
  if (!bed_or.ok()) return 1;
  auto bed = std::move(bed_or).value();
  if (!InstallDnsState(bed->system(), universe).ok()) return 1;

  auto workload = MakeDnsWorkload(universe, /*count=*/500, /*rate_rps=*/100,
                                  /*zipf_theta=*/0.9, /*seed=*/11);
  for (const WorkloadItem& item : workload) {
    (void)bed->system().ScheduleInject(item.event, item.time_s);
  }
  bed->system().Run();

  const SystemStats& stats = bed->system().stats();
  std::printf("resolved %llu / %zu requests (%llu rule firings)\n",
              static_cast<unsigned long long>(stats.outputs),
              workload.size(),
              static_cast<unsigned long long>(stats.rule_firings));

  // Compression effect: ruleExec rows vs total requests.
  size_t rule_exec_rows = 0;
  for (NodeId n = 0; n < universe.graph.num_nodes(); ++n) {
    rule_exec_rows += bed->advanced()->RuleExecAt(n).size();
  }
  std::printf("shared ruleExec rows: %zu for %zu requests "
              "(one chain per client x URL class)\n\n",
              rule_exec_rows, workload.size());

  // Query the provenance of the first reply.
  auto outputs = bed->system().AllOutputs();
  if (outputs.empty()) return 1;
  auto querier = bed->MakeQuerier();
  Vid evid = outputs.front().meta.evid;
  auto res = querier->Query(outputs.front().tuple, &evid);
  if (!res.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 res.status().ToString().c_str());
    return 1;
  }
  std::printf("provenance of %s\n(query latency %.2f ms, %zu entries, "
              "%d hops):\n%s",
              outputs.front().tuple.ToString().c_str(),
              res->latency_s * 1e3, res->entries_touched, res->hops,
              res->trees.front().ToString().c_str());
  return 0;
}
