// Packet forwarding on the paper's 100-node transit-stub topology (§6.1):
// streams traffic between random stub-node pairs under all three
// maintenance schemes, compares their storage, and queries a random recv
// tuple under each scheme, verifying the reconstructed trees agree.
#include <cstdio>

#include "src/apps/experiments.h"
#include "src/core/query.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

int main() {
  TransitStubTopology topo = MakeTransitStub();
  std::printf("transit-stub topology: %d nodes, %zu links, diameter %d, "
              "avg distance %.1f\n\n",
              topo.graph.num_nodes(), topo.graph.num_links(),
              topo.graph.Diameter(), topo.graph.AverageDistance());

  ForwardingWorkload workload = MakeForwardingWorkload(
      topo, /*pairs=*/20, /*rate_pps=*/20, /*duration_s=*/5,
      kDefaultPayloadLen, /*seed=*/3);
  std::printf("workload: %zu pairs, %zu packets with %zu-byte payloads\n\n",
              workload.pairs.size(), workload.items.size(),
              kDefaultPayloadLen);

  auto program_or = MakeForwardingProgram();
  if (!program_or.ok()) return 1;

  std::printf("%-12s %14s %14s %12s %10s\n", "scheme", "storage",
              "net bytes", "messages", "outputs");
  ProvTree exspan_tree;
  for (Scheme scheme : kPaperSchemes) {
    auto bed_or = Testbed::Create(*program_or, &topo.graph, scheme);
    if (!bed_or.ok()) return 1;
    auto bed = std::move(bed_or).value();
    for (auto [s, d] : workload.pairs) {
      if (!InstallRoutesForPair(bed->system(), topo.graph, s, d).ok())
        return 1;
    }
    for (const WorkloadItem& item : workload.items) {
      (void)bed->system().ScheduleInject(item.event, item.time_s);
    }
    bed->system().Run();

    std::printf("%-12s %14s %14s %12llu %10llu\n", SchemeName(scheme),
                FormatBytes(bed->TotalStorage().Total()).c_str(),
                FormatBytes(static_cast<double>(
                                bed->network().total_bytes_sent()))
                    .c_str(),
                static_cast<unsigned long long>(
                    bed->network().total_messages()),
                static_cast<unsigned long long>(
                    bed->system().stats().outputs));

    // Query the first delivered packet's provenance.
    auto outputs = bed->system().AllOutputs();
    if (outputs.empty()) continue;
    auto querier = bed->MakeQuerier();
    auto res = querier->Query(outputs.front().tuple);
    if (!res.ok()) {
      std::fprintf(stderr, "  query failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    if (scheme == Scheme::kExspan) {
      exspan_tree = res->trees.front();
    } else if (!(res->trees.front() == exspan_tree)) {
      std::fprintf(stderr, "  scheme disagrees with ExSPAN tree!\n");
      return 1;
    }
  }

  std::printf("\nall schemes reconstruct the same provenance tree; "
              "the first one:\n%s",
              exspan_tree.ToString().c_str());
  return 0;
}
