// Slow-changing table updates (§5.5, Fig. 7): a network administrator
// redirects traffic from n1 -> n2 -> n3 to n1 -> n4 -> n3 while packets of
// the same equivalence class keep flowing. The example shows the sig
// broadcast, the equivalence-cache reset, and that provenance queries
// return the historically correct route for packets before and after the
// change.
#include <cstdio>

#include "src/apps/forwarding.h"
#include "src/apps/testbed.h"
#include "src/core/query.h"

using namespace dpc;        // NOLINT(build/namespaces)
using namespace dpc::apps;  // NOLINT(build/namespaces)

namespace {

void QueryAndPrint(ProvenanceQuerier& querier, const Tuple& recv,
                   const Tuple& packet) {
  Vid evid = packet.Vid();
  auto res = querier.Query(recv, &evid);
  if (!res.ok()) {
    std::printf("  %s -> query failed: %s\n", recv.ToString().c_str(),
                res.status().ToString().c_str());
    return;
  }
  const ProvTree& tree = res->trees.front();
  std::printf("  %s routed via:", recv.ToString().c_str());
  for (const ProvStep& step : tree.steps()) {
    for (const Tuple& slow : step.slow_tuples) {
      std::printf(" %s", slow.ToString().c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Fig. 7's diamond: n1 can reach n3 via n2 or via the new node n4.
  Topology topo;
  NodeId n1 = topo.AddNode(), n2 = topo.AddNode(), n3 = topo.AddNode(),
         n4 = topo.AddNode();
  LinkProps lp{0.002, 50e6};
  (void)topo.AddLink(n1, n2, lp);
  (void)topo.AddLink(n2, n3, lp);
  (void)topo.AddLink(n1, n4, lp);
  (void)topo.AddLink(n4, n3, lp);
  topo.ComputeRoutes();

  auto program_or = MakeForwardingProgram();
  if (!program_or.ok()) return 1;
  auto bed_or = Testbed::Create(std::move(program_or).value(), &topo,
                                Scheme::kAdvanced);
  if (!bed_or.ok()) return 1;
  auto bed = std::move(bed_or).value();
  System& sys = bed->system();

  std::printf("initial routes: n1 -> n2 -> n3\n");
  (void)sys.InsertSlowTuple(MakeRoute(n1, n3, n2));
  (void)sys.InsertSlowTuple(MakeRoute(n2, n3, n3));
  sys.Run();

  (void)sys.ScheduleInject(MakePacket(n1, n1, n3, "before-1"), 1.0);
  (void)sys.ScheduleInject(MakePacket(n1, n1, n3, "before-2"), 2.0);
  sys.Run();

  std::printf("\nadministrator redirects traffic through n4 (Fig. 7):\n");
  std::printf("  - delete route(@n1, n3, n2)   (no broadcast needed)\n");
  (void)sys.DeleteSlowTuple(MakeRoute(n1, n3, n2));
  uint64_t sigs_before = sys.stats().control_signals;
  std::printf("  - insert route(@n1, n3, n4)   (broadcasts sig)\n");
  (void)sys.InsertSlowTuple(MakeRoute(n1, n3, n4));
  std::printf("  - insert route(@n4, n3, n3)   (broadcasts sig)\n");
  (void)sys.InsertSlowTuple(MakeRoute(n4, n3, n3));
  sys.Run();
  std::printf("  sig control messages delivered: %llu\n",
              static_cast<unsigned long long>(sys.stats().control_signals -
                                              sigs_before));

  (void)sys.ScheduleInject(MakePacket(n1, n1, n3, "after-1"), 10.0);
  (void)sys.ScheduleInject(MakePacket(n1, n1, n3, "after-2"), 11.0);
  sys.Run();

  std::printf("\nprovenance queries (history is preserved exactly):\n");
  auto querier = bed->MakeQuerier();
  for (const char* payload : {"before-1", "before-2", "after-1", "after-2"}) {
    QueryAndPrint(*querier, MakeRecv(n3, n1, n3, payload),
                  MakePacket(n1, n1, n3, payload));
  }
  return 0;
}
