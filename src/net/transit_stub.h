// GT-ITM-style transit-stub topology generator (the paper's §6.1 setup:
// 4 transit nodes, 3 stub domains per transit node, 8 nodes per stub
// domain = 100 nodes; transit-transit 50ms/1Gbps, transit-stub
// 10ms/100Mbps, stub-stub 2ms/50Mbps).
#ifndef DPC_NET_TRANSIT_STUB_H_
#define DPC_NET_TRANSIT_STUB_H_

#include <vector>

#include "src/net/topology.h"

namespace dpc {

struct TransitStubParams {
  int num_transit = 4;
  int stubs_per_transit = 3;
  int nodes_per_stub = 8;
  // Probability of each extra intra-stub edge beyond the spanning tree.
  double extra_stub_edge_prob = 0.15;
  LinkProps transit_transit{0.050, 1e9};
  LinkProps transit_stub{0.010, 100e6};
  LinkProps stub_stub{0.002, 50e6};
  uint64_t seed = 42;
};

struct TransitStubTopology {
  Topology graph;  // routes already computed
  std::vector<NodeId> transit_nodes;
  // stub_nodes[i] lists the members of stub domain i.
  std::vector<std::vector<NodeId>> stub_domains;
  // All stub nodes, flattened (the traffic sources/sinks).
  std::vector<NodeId> stub_nodes;
};

// Generates a connected transit-stub graph. Transit nodes form a ring plus
// chords; each stub domain is a random connected subgraph whose gateway
// node attaches to its transit node.
TransitStubTopology MakeTransitStub(const TransitStubParams& params = {});

}  // namespace dpc

#endif  // DPC_NET_TRANSIT_STUB_H_
