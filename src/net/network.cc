#include "src/net/network.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace dpc {

namespace {
uint64_t PackPair(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}
}  // namespace

size_t Message::WireSize() const {
  return kMessageHeaderBytes + payload.size();
}

Network::Network(const Topology* topology, EventQueue* queue)
    : topology_(topology), queue_(queue) {
  DPC_CHECK(topology_ != nullptr);
  DPC_CHECK(queue_ != nullptr);
}

void Network::ChargeBytes(double time, size_t bytes) {
  total_bytes_ += bytes;
  size_t bucket = static_cast<size_t>(time / bucket_width_s_);
  if (bucket_bytes_.size() <= bucket) bucket_bytes_.resize(bucket + 1, 0);
  bucket_bytes_[bucket] += bytes;
}

void Network::Send(Message msg) {
  DPC_CHECK(msg.src >= 0 && msg.src < topology_->num_nodes());
  DPC_CHECK(msg.dst >= 0 && msg.dst < topology_->num_nodes());
  ++total_messages_;
  if (msg.src == msg.dst) {
    queue_->ScheduleAfter(local_delay_s_, [this, m = std::move(msg)]() {
      if (handler_) handler_(m);
    });
    return;
  }
  NodeId src = msg.src;
  Forward(std::move(msg), src);
}

void Network::SetLossRate(double rate, uint64_t seed) {
  DPC_CHECK(rate >= 0 && rate < 1);
  loss_rate_ = rate;
  loss_rng_ = std::make_unique<Rng>(seed);
}

Status Network::CheckLink(NodeId a, NodeId b) const {
  if (!topology_->HasLink(a, b)) {
    return Status::InvalidArgument("no link between " + std::to_string(a) +
                                   " and " + std::to_string(b));
  }
  return Status::OK();
}

Rng& Network::LossRng() {
  if (loss_rng_ == nullptr) loss_rng_ = std::make_unique<Rng>(1);
  return *loss_rng_;
}

Status Network::SetLinkLossRate(NodeId a, NodeId b, double rate) {
  DPC_RETURN_NOT_OK(CheckLink(a, b));
  if (rate < 0 || rate >= 1) {
    return Status::InvalidArgument("loss rate must be in [0, 1)");
  }
  link_loss_[PackPair(a, b)] = rate;
  return Status::OK();
}

Status Network::SetLinkUp(NodeId a, NodeId b, bool up) {
  DPC_RETURN_NOT_OK(CheckLink(a, b));
  if (up) {
    links_down_.erase(PackPair(a, b));
  } else {
    links_down_.insert(PackPair(a, b));
  }
  return Status::OK();
}

Status Network::ScheduleLinkUp(NodeId a, NodeId b, bool up, SimTime at) {
  DPC_RETURN_NOT_OK(CheckLink(a, b));
  queue_->ScheduleAt(at, [this, a, b, up]() { (void)SetLinkUp(a, b, up); });
  return Status::OK();
}

Status Network::SetPartition(std::vector<int> group_of_node) {
  if (!group_of_node.empty() &&
      group_of_node.size() != static_cast<size_t>(topology_->num_nodes())) {
    return Status::InvalidArgument(
        "partition vector must name a group per node");
  }
  partition_ = std::move(group_of_node);
  return Status::OK();
}

void Network::SchedulePartition(std::vector<int> group_of_node, SimTime at) {
  queue_->ScheduleAt(at, [this, groups = std::move(group_of_node)]() {
    Status st = SetPartition(groups);
    DPC_CHECK(st.ok()) << st.ToString();
  });
}

bool Network::TraversalDropped(NodeId at, NodeId next) {
  if (links_down_.count(PackPair(at, next)) > 0) return true;
  if (!partition_.empty() && partition_[at] != partition_[next]) return true;
  double rate = loss_rate_;
  auto it = link_loss_.find(PackPair(at, next));
  if (it != link_loss_.end()) rate = it->second;
  return rate > 0 && LossRng().NextDouble() < rate;
}

void Network::Forward(Message msg, NodeId at) {
  NodeId next = topology_->NextHop(at, msg.dst);
  DPC_CHECK(next != kNullNode) << "no route from " << at << " to " << msg.dst;
  const LinkProps& link = topology_->Link(at, next);
  size_t wire = msg.WireSize();
  ChargeBytes(queue_->now(), wire);
  if (TraversalDropped(at, next)) {
    ++dropped_messages_;
    GlobalMetrics().GetCounter("network.messages_dropped").IncrementAt(at);
    if (Trace().enabled()) {
      Trace().Instant(at, TraceCat::kNetwork, "drop",
                      "\"next\": " + std::to_string(next) +
                          ", \"dst\": " + std::to_string(msg.dst) +
                          ", \"bytes\": " + std::to_string(wire));
    }
    return;  // the traversal consumed bandwidth but never arrives
  }
  double delay = link.latency_s +
                 static_cast<double>(wire) * 8.0 / link.bandwidth_bps;
  queue_->ScheduleAfter(delay, [this, m = std::move(msg), next]() mutable {
    if (next == m.dst) {
      if (handler_) handler_(m);
    } else {
      Forward(std::move(m), next);
    }
  });
}

void Network::Broadcast(NodeId from, Message msg) {
  for (NodeId n = 0; n < topology_->num_nodes(); ++n) {
    if (n == from) continue;  // the originator already handled it locally
    Message copy = msg;
    copy.src = from;
    copy.dst = n;
    Send(std::move(copy));
  }
}

void Network::ResetAccounting() {
  total_bytes_ = 0;
  total_messages_ = 0;
  dropped_messages_ = 0;
  bucket_bytes_.clear();
}

}  // namespace dpc
