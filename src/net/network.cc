#include "src/net/network.h"

#include "src/net/shard_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace dpc {

namespace {
uint64_t PackPair(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// FNV-1a over the message identity fields, for sends that did not assign
// a tx_id themselves. `| 1` keeps 0 meaning "unassigned".
uint64_t ContentTxId(const Message& msg) {
  uint64_t h = 1469598103934665603ULL;
  auto mix_byte = [&h](uint8_t b) {
    h ^= b;
    h *= 1099511628211ULL;
  };
  mix_byte(static_cast<uint8_t>(msg.kind));
  for (int shift = 0; shift < 32; shift += 8) {
    mix_byte(static_cast<uint8_t>(static_cast<uint32_t>(msg.src) >> shift));
    mix_byte(static_cast<uint8_t>(static_cast<uint32_t>(msg.dst) >> shift));
  }
  for (uint8_t b : msg.payload) mix_byte(b);
  return h | 1;
}
}  // namespace

size_t Message::WireSize() const {
  return kMessageHeaderBytes + payload.size();
}

Network::Network(const Topology* topology, EventQueue* queue)
    : topology_(topology),
      queue_(queue),
      accounts_(1),
      drop_counter_(&GlobalMetrics().GetCounter("network.messages_dropped")) {
  DPC_CHECK(topology_ != nullptr);
  DPC_CHECK(queue_ != nullptr);
}

void Network::BindShardEngine(ShardEngine* engine) {
  engine_ = engine;
  accounts_.clear();
  accounts_.resize(engine_ != nullptr ? engine_->num_shards() : 1);
}

Network::ShardAccount& Network::AccountFor(NodeId at) {
  return accounts_[engine_ != nullptr ? engine_->shard_of(at) : 0];
}

SimTime Network::SimNow() const {
  if (engine_ != nullptr) {
    int shard = ShardEngine::current_shard();
    if (shard >= 0) return engine_->queue(shard).now();
    return engine_->now();
  }
  return queue_->now();
}

void Network::ScheduleAtNodeAfter(NodeId node, double delay,
                                  std::function<void()> fn, uint64_t tag) {
  SimTime t = SimNow() + delay;
  if (engine_ != nullptr) {
    engine_->ScheduleAtNode(node, t, std::move(fn), tag);
  } else {
    queue_->ScheduleAtTagged(t, tag, std::move(fn));
  }
}

void Network::ChargeBytes(ShardAccount& acct, double time, size_t bytes) {
  acct.bytes += bytes;
  double rel = time - bucket_origin_s_;
  if (rel < 0) rel = 0;
  size_t bucket = static_cast<size_t>(rel / bucket_width_s_);
  if (acct.bucket_bytes.size() <= bucket) {
    acct.bucket_bytes.resize(bucket + 1, 0);
  }
  acct.bucket_bytes[bucket] += bytes;
}

void Network::Send(Message msg) {
  DPC_CHECK(msg.src >= 0 && msg.src < topology_->num_nodes());
  DPC_CHECK(msg.dst >= 0 && msg.dst < topology_->num_nodes());
  if (msg.tx_id == 0) msg.tx_id = ContentTxId(msg);
  ++AccountFor(msg.src).messages;
  if (msg.src == msg.dst) {
    uint64_t tag = msg.batch_tag;
    ScheduleAtNodeAfter(msg.dst, local_delay_s_,
                        [this, m = std::move(msg)]() {
                          if (handler_) handler_(m);
                        },
                        tag);
    return;
  }
  NodeId src = msg.src;
  Forward(std::move(msg), src);
}

void Network::SetLossRate(double rate, uint64_t seed) {
  DPC_CHECK(rate >= 0 && rate < 1);
  loss_rate_ = rate;
  loss_seed_ = seed;
}

Status Network::CheckLink(NodeId a, NodeId b) const {
  if (!topology_->HasLink(a, b)) {
    return Status::InvalidArgument("no link between " + std::to_string(a) +
                                   " and " + std::to_string(b));
  }
  return Status::OK();
}

Status Network::SetLinkLossRate(NodeId a, NodeId b, double rate) {
  DPC_RETURN_NOT_OK(CheckLink(a, b));
  if (rate < 0 || rate >= 1) {
    return Status::InvalidArgument("loss rate must be in [0, 1)");
  }
  link_loss_[PackPair(a, b)] = rate;
  return Status::OK();
}

Status Network::SetLinkUp(NodeId a, NodeId b, bool up) {
  DPC_RETURN_NOT_OK(CheckLink(a, b));
  if (up) {
    links_down_.erase(PackPair(a, b));
  } else {
    links_down_.insert(PackPair(a, b));
  }
  return Status::OK();
}

Status Network::ScheduleLinkUp(NodeId a, NodeId b, bool up, SimTime at) {
  DPC_RETURN_NOT_OK(CheckLink(a, b));
  auto flip = [this, a, b, up]() { (void)SetLinkUp(a, b, up); };
  if (engine_ != nullptr) {
    // Fault state is read by every shard: flip it at a window barrier.
    engine_->ScheduleGlobal(at, std::move(flip));
  } else {
    queue_->ScheduleAt(at, std::move(flip));
  }
  return Status::OK();
}

Status Network::SetPartition(std::vector<int> group_of_node) {
  if (!group_of_node.empty() &&
      group_of_node.size() != static_cast<size_t>(topology_->num_nodes())) {
    return Status::InvalidArgument(
        "partition vector must name a group per node");
  }
  partition_ = std::move(group_of_node);
  return Status::OK();
}

void Network::SchedulePartition(std::vector<int> group_of_node, SimTime at) {
  auto apply = [this, groups = std::move(group_of_node)]() {
    Status st = SetPartition(groups);
    DPC_CHECK(st.ok()) << st.ToString();
  };
  if (engine_ != nullptr) {
    engine_->ScheduleGlobal(at, std::move(apply));
  } else {
    queue_->ScheduleAt(at, std::move(apply));
  }
}

bool Network::TraversalDropped(NodeId at, NodeId next,
                               const Message& msg) const {
  if (links_down_.count(PackPair(at, next)) > 0) return true;
  if (!partition_.empty() && partition_[at] != partition_[next]) return true;
  double rate = loss_rate_;
  auto it = link_loss_.find(PackPair(at, next));
  if (it != link_loss_.end()) rate = it->second;
  if (rate <= 0) return false;
  // Deterministic draw: a pure function of (seed, transmission, directed
  // hop), so the same traversal drops — or survives — regardless of what
  // other traffic exists or how nodes are sharded.
  uint64_t hop = (static_cast<uint64_t>(static_cast<uint32_t>(at)) << 32) |
                 static_cast<uint32_t>(next);
  uint64_t h = Mix64(loss_seed_ ^ Mix64(msg.tx_id ^ Mix64(hop)));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

void Network::Forward(Message msg, NodeId at) {
  NodeId next = topology_->NextHop(at, msg.dst);
  DPC_CHECK(next != kNullNode) << "no route from " << at << " to " << msg.dst;
  const LinkProps& link = topology_->Link(at, next);
  size_t wire = msg.WireSize();
  ChargeBytes(AccountFor(at), SimNow(), wire);
  if (TraversalDropped(at, next, msg)) {
    ++AccountFor(at).dropped;
    drop_counter_->IncrementAt(at);
    if (Trace().enabled()) {
      Trace().Instant(at, TraceCat::kNetwork, "drop",
                      "\"next\": " + std::to_string(next) +
                          ", \"dst\": " + std::to_string(msg.dst) +
                          ", \"bytes\": " + std::to_string(wire));
    }
    return;  // the traversal consumed bandwidth but never arrives
  }
  double delay = link.latency_s +
                 static_cast<double>(wire) * 8.0 / link.bandwidth_bps;
  // Only the final hop — the entry that invokes the delivery handler — is
  // tagged; intermediate Forward hops never join a batch.
  uint64_t tag = next == msg.dst ? msg.batch_tag : 0;
  ScheduleAtNodeAfter(
      next, delay,
      [this, m = std::move(msg), next]() mutable {
        if (next == m.dst) {
          if (handler_) handler_(m);
        } else {
          Forward(std::move(m), next);
        }
      },
      tag);
}

void Network::Broadcast(NodeId from, Message msg) {
  for (NodeId n = 0; n < topology_->num_nodes(); ++n) {
    if (n == from) continue;  // the originator already handled it locally
    Message copy = msg;
    copy.src = from;
    copy.dst = n;
    copy.tx_id = 0;  // re-derive per destination
    Send(std::move(copy));
  }
}

uint64_t Network::total_bytes_sent() const {
  uint64_t sum = 0;
  for (const ShardAccount& a : accounts_) sum += a.bytes;
  return sum;
}

uint64_t Network::total_messages() const {
  uint64_t sum = 0;
  for (const ShardAccount& a : accounts_) sum += a.messages;
  return sum;
}

uint64_t Network::dropped_messages() const {
  uint64_t sum = 0;
  for (const ShardAccount& a : accounts_) sum += a.dropped;
  return sum;
}

std::vector<uint64_t> Network::bucket_bytes() const {
  std::vector<uint64_t> merged;
  for (const ShardAccount& a : accounts_) {
    if (a.bucket_bytes.size() > merged.size()) {
      merged.resize(a.bucket_bytes.size(), 0);
    }
    for (size_t i = 0; i < a.bucket_bytes.size(); ++i) {
      merged[i] += a.bucket_bytes[i];
    }
  }
  return merged;
}

void Network::ResetAccounting() {
  for (ShardAccount& a : accounts_) {
    a.bytes = 0;
    a.messages = 0;
    a.dropped = 0;
    a.bucket_bytes.clear();
  }
}

}  // namespace dpc
