#include "src/net/network.h"

#include "src/util/logging.h"

namespace dpc {

size_t Message::WireSize() const {
  return kMessageHeaderBytes + payload.size();
}

Network::Network(const Topology* topology, EventQueue* queue)
    : topology_(topology), queue_(queue) {
  DPC_CHECK(topology_ != nullptr);
  DPC_CHECK(queue_ != nullptr);
}

void Network::ChargeBytes(double time, size_t bytes) {
  total_bytes_ += bytes;
  size_t bucket = static_cast<size_t>(time / bucket_width_s_);
  if (bucket_bytes_.size() <= bucket) bucket_bytes_.resize(bucket + 1, 0);
  bucket_bytes_[bucket] += bytes;
}

void Network::Send(Message msg) {
  DPC_CHECK(msg.src >= 0 && msg.src < topology_->num_nodes());
  DPC_CHECK(msg.dst >= 0 && msg.dst < topology_->num_nodes());
  ++total_messages_;
  if (msg.src == msg.dst) {
    queue_->ScheduleAfter(local_delay_s_, [this, m = std::move(msg)]() {
      if (handler_) handler_(m);
    });
    return;
  }
  NodeId src = msg.src;
  Forward(std::move(msg), src);
}

void Network::SetLossRate(double rate, uint64_t seed) {
  DPC_CHECK(rate >= 0 && rate < 1);
  loss_rate_ = rate;
  loss_rng_ = rate > 0 ? std::make_unique<Rng>(seed) : nullptr;
}

void Network::Forward(Message msg, NodeId at) {
  NodeId next = topology_->NextHop(at, msg.dst);
  DPC_CHECK(next != kNullNode) << "no route from " << at << " to " << msg.dst;
  const LinkProps& link = topology_->Link(at, next);
  size_t wire = msg.WireSize();
  ChargeBytes(queue_->now(), wire);
  if (loss_rng_ != nullptr && loss_rng_->NextDouble() < loss_rate_) {
    ++dropped_messages_;
    return;  // the traversal consumed bandwidth but never arrives
  }
  double delay = link.latency_s +
                 static_cast<double>(wire) * 8.0 / link.bandwidth_bps;
  queue_->ScheduleAfter(delay, [this, m = std::move(msg), next]() mutable {
    if (next == m.dst) {
      if (handler_) handler_(m);
    } else {
      Forward(std::move(m), next);
    }
  });
}

void Network::Broadcast(NodeId from, Message msg) {
  for (NodeId n = 0; n < topology_->num_nodes(); ++n) {
    Message copy = msg;
    copy.src = from;
    copy.dst = n;
    Send(std::move(copy));
  }
}

void Network::ResetAccounting() {
  total_bytes_ = 0;
  total_messages_ = 0;
  bucket_bytes_.clear();
}

}  // namespace dpc
