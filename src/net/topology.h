// Topology: the undirected graph G = (V, E) modelling the distributed
// system (§3), with per-link latency and bandwidth, and hop-count shortest
// paths used both for packet routing tables and for query-latency
// accounting.
#ifndef DPC_NET_TOPOLOGY_H_
#define DPC_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "src/db/tuple.h"
#include "src/util/result.h"

namespace dpc {

struct LinkProps {
  double latency_s = 0.001;        // one-way propagation delay
  double bandwidth_bps = 1e9;      // capacity in bits/second

  bool operator==(const LinkProps&) const = default;
};

class Topology {
 public:
  // Adds a node; ids are dense and assigned in creation order.
  NodeId AddNode();

  // Adds `count` nodes, returning the id of the first.
  NodeId AddNodes(int count);

  // Adds an undirected link. Duplicate links are rejected.
  Status AddLink(NodeId a, NodeId b, LinkProps props);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  size_t num_links() const { return links_.size(); }

  bool HasLink(NodeId a, NodeId b) const;
  // Properties of link (a, b); requires the link to exist.
  const LinkProps& Link(NodeId a, NodeId b) const;

  const std::vector<NodeId>& Neighbors(NodeId n) const {
    return adjacency_[n];
  }

  // Invokes fn(a, b, props) for every link, in insertion order (used by
  // the shard engine to derive its cross-shard lookahead).
  template <typename Fn>
  void ForEachLink(Fn fn) const {
    for (const auto& l : links_) fn(l.a, l.b, l.props);
  }

  // Recomputes all-pairs hop-count shortest paths (BFS from every node;
  // neighbor order breaks ties deterministically). Must be called after the
  // last AddLink and before any routing query below.
  void ComputeRoutes();

  // Hop distance; -1 when unreachable.
  int Distance(NodeId from, NodeId to) const;

  // First hop on a shortest path from `from` to `to`; kNullNode when
  // unreachable or from == to.
  NodeId NextHop(NodeId from, NodeId to) const;

  // Full node sequence [from, ..., to]; empty when unreachable.
  std::vector<NodeId> Path(NodeId from, NodeId to) const;

  bool IsConnected() const;
  int Diameter() const;
  double AverageDistance() const;

  // Sum of per-link latencies along the shortest path.
  double PathLatency(NodeId from, NodeId to) const;

 private:
  int LinkIndex(NodeId a, NodeId b) const;

  struct StoredLink {
    NodeId a, b;
    LinkProps props;
  };

  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<StoredLink> links_;
  // links keyed by (min, max) packed into 64 bits -> index into links_.
  std::vector<std::pair<uint64_t, int>> link_index_;
  bool routes_valid_ = false;
  // dist_[u][v] and next_hop_[u][v].
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<NodeId>> next_hop_;
};

}  // namespace dpc

#endif  // DPC_NET_TOPOLOGY_H_
