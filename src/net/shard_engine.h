// ShardEngine: the conservative parallel discrete-event runtime (classic
// conservative PDES, Chandy–Misra style with a global window barrier).
//
// Nodes are partitioned into shards; each shard owns one EventQueue and is
// driven by one worker thread. The engine repeatedly:
//
//   1. drains cross-shard mailboxes into the destination queues, merged in
//      deterministic (time, source shard, push index) order;
//   2. computes T = the minimum pending event time across all shards, and
//      a horizon E = T + L, where the lookahead L is the minimum latency
//      of any link whose endpoints live in different shards;
//   3. releases every shard to run its events with time < E concurrently
//      (a "window"), then barriers.
//
// Safety argument: an event executing at time t >= T on one shard can only
// affect another shard through a link of latency >= L, so its effects land
// at t + L >= T + L = E — beyond the window every other shard is currently
// executing. Cross-shard sends therefore never violate causality, and
// because the mailbox merge order is a pure function of simulated time and
// shard topology (never of thread interleaving), an N-shard run schedules
// exactly the same (time, seq) event order into every queue as the 1-shard
// run — byte-identical storage accounting falls out.
//
// Objects reachable from event callbacks must be either shard-confined
// (per-node recorder state, per-node databases) or thread-safe (tracer,
// metrics, tuple store — see docs/concurrency.md). The engine itself owns
// no simulation state beyond the queues and mailboxes.
#ifndef DPC_NET_SHARD_ENGINE_H_
#define DPC_NET_SHARD_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/net/event_queue.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace dpc {

// Deterministic node -> shard assignment: contiguous blocks of near-equal
// size, so transit-stub locality keeps most traffic shard-local.
class ShardMap {
 public:
  ShardMap(int num_nodes, int num_shards);

  int num_shards() const { return num_shards_; }
  int shard_of(NodeId n) const { return shard_of_[n]; }

 private:
  int num_shards_;
  std::vector<int> shard_of_;
};

// Minimum latency over links whose endpoints land in different shards;
// +infinity when every link is shard-internal (shards never interact and
// windows are unbounded).
SimTime MinCrossShardLatency(const Topology& topology, const ShardMap& map);

class ShardEngine {
 public:
  // `shard0` is the externally owned queue driving shard 0 (the Testbed's
  // queue, so single-shard call sites keep working unchanged); the engine
  // owns the queues for shards 1..N-1. `topology` must outlive the engine.
  // Requires num_shards >= 1 and, when num_shards > 1, a strictly positive
  // cross-shard lookahead (callers clamp to 1 shard otherwise).
  ShardEngine(const Topology* topology, int num_shards, EventQueue* shard0);
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  int num_shards() const { return map_.num_shards(); }
  int shard_of(NodeId n) const { return map_.shard_of(n); }
  EventQueue& queue(int shard) { return *queues_[shard]; }
  SimTime lookahead_s() const { return lookahead_; }

  // Index of the shard the calling thread is currently executing a window
  // for, or -1 outside windows (the idle coordinator).
  static int current_shard();

  // Latest barrier time (atomic; safe to read from any thread, e.g. as a
  // tracer clock). During a global action this is the action's time.
  SimTime now() const { return global_now_.load(std::memory_order_relaxed); }

  // Simulated time as seen by the calling thread: the executing shard's
  // queue clock inside a window, the barrier clock outside.
  SimTime LocalNow();

  // Schedules `fn` at time `t` on the shard owning `node`. Same-shard (and
  // idle-coordinator) schedules go straight into the queue; cross-shard
  // schedules from a worker are mailbox pushes, merged at the next barrier
  // in (time, source shard, push index) order. The conservative window
  // guarantees t is never in the destination's past. A nonzero `tag`
  // reaches the destination queue as the entry's batch tag
  // (EventQueue::ScheduleAtTagged) whichever path the schedule takes.
  void ScheduleAtNode(NodeId node, SimTime t, EventQueue::Callback fn,
                      uint64_t tag = 0);

  // Schedules `fn` to run on the coordinator thread, alone, at the first
  // barrier where every event with time < `t` has executed — before any
  // event at exactly `t`. Global actions see a quiescent simulation
  // (storage snapshots, fault-state flips, slow-tuple updates). Must be
  // called from the coordinator (idle or inside another global action).
  void ScheduleGlobal(SimTime t, std::function<void()> fn);

  // Runs windows until every queue, mailbox and global action drains.
  // `max_events` bounds the total events executed (0 = unlimited).
  void RunAll(size_t max_events = 0);

  // Runs until everything with time <= t (events and global actions) has
  // executed; every shard clock then advances to t.
  void RunUntil(SimTime t);

  // Total events executed across all shards over the engine's lifetime.
  uint64_t events_executed() const { return events_executed_; }
  // Windows (parallel phases) run so far.
  uint64_t windows() const { return windows_; }
  // Cross-shard mailbox messages merged so far.
  uint64_t cross_shard_messages() const { return cross_shard_messages_; }

 private:
  struct Mail {
    SimTime time;
    uint64_t tag;
    EventQueue::Callback fn;
  };
  // One slot per (dst shard, src shard): only src's worker thread writes
  // during a window, only the coordinator reads at the barrier, so slots
  // need no locks. Padded so neighboring writers don't false-share.
  struct alignas(64) MailSlot {
    std::vector<Mail> mail;
  };
  struct GlobalAction {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const GlobalAction& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void StartWorkers();
  void WorkerLoop(int shard);
  // Runs one shard's window [*, horizon_) with the thread-local shard set.
  void RunShardWindow(int shard);
  // Coordinator: merges mailbox mail into destination queues.
  void DrainMailboxes();
  // Coordinator: drives windows until drained / past `until` / budget.
  void RunLoop(SimTime until, size_t max_events);

  const Topology* topology_;
  ShardMap map_;
  SimTime lookahead_;
  std::vector<EventQueue*> queues_;             // [shard] -> queue
  std::vector<std::unique_ptr<EventQueue>> owned_queues_;  // shards 1..N-1
  std::vector<MailSlot> mail_;                  // [dst * N + src]
  std::priority_queue<GlobalAction, std::vector<GlobalAction>,
                      std::greater<GlobalAction>>
      globals_;
  uint64_t next_global_seq_ = 0;

  // Window barrier: the coordinator publishes horizon_ and bumps epoch_;
  // each worker runs its window and reports via done_count_. Plain
  // std::mutex/condition_variable (not dpc::Mutex) because the annotated
  // wrapper has no condition-variable interop; TSan still checks it.
  std::mutex barrier_mu_;
  std::condition_variable worker_cv_;
  std::condition_variable coord_cv_;
  uint64_t epoch_ = 0;
  int done_count_ = 0;
  bool stop_ = false;
  SimTime horizon_ = 0;
  size_t window_cap_ = 0;  // per-shard per-window event bound (0 = none)
  std::vector<std::thread> workers_;  // shards 1..N-1; shard 0 runs inline
  std::atomic<uint64_t> window_events_{0};

  std::atomic<SimTime> global_now_{0};
  uint64_t events_executed_ = 0;
  uint64_t windows_ = 0;
  uint64_t cross_shard_messages_ = 0;

  Counter* windows_counter_;
  Counter* cross_shard_counter_;
  Counter* global_actions_counter_;
  Tracer* tracer_;
};

}  // namespace dpc

#endif  // DPC_NET_SHARD_ENGINE_H_
