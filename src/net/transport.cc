#include "src/net/transport.h"

#include <algorithm>

#include "src/net/shard_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/serial.h"

namespace dpc {

namespace {

// Transport frame header prepended to the application payload.
enum FrameType : uint8_t { kDataFrame = 0, kAckFrame = 1 };

std::vector<uint8_t> WrapPayload(FrameType type, uint64_t seq,
                                 const std::vector<uint8_t>& payload) {
  ByteWriter w;
  w.PutU8(type);
  w.PutU64(seq);
  std::vector<uint8_t> out = w.Take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// Per-transmission identity for the deterministic loss hash: a fresh id
// per (src, seq, attempt) — and per (src, seq, ack#) for acks, salted
// apart — so retransmissions of identical bytes draw independently. The
// source node salts the hash because sequence numbers are per source:
// without it, node 3's frame 7 and node 9's frame 7 would share a loss
// fate on a common link.
uint64_t FrameTxId(NodeId src, uint64_t seq, uint32_t attempt, bool ack) {
  uint64_t x = (static_cast<uint64_t>(src) + 1) * 0xd6e8feb86659fd93ULL +
               seq * 0x9e3779b97f4a7c15ULL + attempt +
               (ack ? 0x517cc1b727220a95ULL : 0);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return (x ^ (x >> 31)) | 1;
}

}  // namespace

ReliableTransport::ReliableTransport(Network* network, EventQueue* queue,
                                     TransportOptions options)
    : network_(network), queue_(queue), options_(options) {
  DPC_CHECK(network_ != nullptr);
  DPC_CHECK(queue_ != nullptr);
  DPC_CHECK(options_.initial_rto_s > 0);
  DPC_CHECK(options_.backoff_factor >= 1);
  nodes_.resize(static_cast<size_t>(network_->topology()->num_nodes()));
  MetricsRegistry& reg = GlobalMetrics();
  metrics_.data_frames_sent = &reg.GetCounter("transport.data_frames_sent");
  metrics_.retransmissions = &reg.GetCounter("transport.retransmissions");
  metrics_.acks_sent = &reg.GetCounter("transport.acks_sent");
  metrics_.duplicates_suppressed =
      &reg.GetCounter("transport.duplicates_suppressed");
  metrics_.delivery_failures = &reg.GetCounter("transport.delivery_failures");
  network_->SetDeliveryHandler(
      [this](const Message& msg) { OnNetworkDelivery(msg); });
}

size_t ReliableTransport::in_flight() const {
  size_t total = 0;
  for (const NodeState& n : nodes_) total += n.pending.size();
  return total;
}

EventQueue* ReliableTransport::QueueFor(NodeId node) {
  if (engine_ != nullptr) return &engine_->queue(engine_->shard_of(node));
  return queue_;
}

void ReliableTransport::Send(Message msg) {
  NodeId src = msg.src;
  DPC_CHECK(src >= 0 && static_cast<size_t>(src) < nodes_.size());
  NodeState& sender = nodes_[static_cast<size_t>(src)];
  uint64_t seq = sender.next_seq++;
  Pending p;
  p.frame.kind = msg.kind;
  p.frame.src = msg.src;
  p.frame.dst = msg.dst;
  p.frame.payload = WrapPayload(kDataFrame, seq, msg.payload);
  p.original = std::move(msg);
  p.rto_s = options_.initial_rto_s;
  p.frame.tx_id = FrameTxId(src, seq, 1, /*ack=*/false);
  stats_.data_frames_sent.fetch_add(1, std::memory_order_relaxed);
  metrics_.data_frames_sent->IncrementAt(p.frame.src);
  if (Trace().enabled()) {
    // Span covers first transmission through ack (or abandonment).
    Trace().AsyncBegin(p.frame.src, TraceCat::kTransport, "frame", seq,
                       "\"dst\": " + std::to_string(p.frame.dst) +
                           ", \"bytes\": " +
                           std::to_string(p.frame.payload.size()));
  }
  TransmitFrame(p.frame);
  sender.pending.emplace(seq, std::move(p));
  ArmTimer(src, seq);
}

void ReliableTransport::Broadcast(NodeId from, Message msg) {
  int num_nodes = network_->topology()->num_nodes();
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (n == from) continue;  // the originator already handled it locally
    Message copy = msg;
    copy.src = from;
    copy.dst = n;
    Send(std::move(copy));
  }
}

void ReliableTransport::TransmitFrame(const Message& frame) {
  Message copy = frame;
  network_->Send(std::move(copy));
}

void ReliableTransport::ArmTimer(NodeId src, uint64_t seq) {
  NodeState& sender = nodes_[static_cast<size_t>(src)];
  auto it = sender.pending.find(seq);
  if (it == sender.pending.end()) return;
  it->second.timer = QueueFor(src)->ScheduleAfter(
      it->second.rto_s, [this, src, seq]() { OnTimeout(src, seq); });
}

void ReliableTransport::OnTimeout(NodeId src, uint64_t seq) {
  NodeState& sender = nodes_[static_cast<size_t>(src)];
  auto it = sender.pending.find(seq);
  if (it == sender.pending.end()) return;  // acked in the meantime
  Pending& p = it->second;
  if (options_.max_attempts > 0 && p.attempts >= options_.max_attempts) {
    stats_.delivery_failures.fetch_add(1, std::memory_order_relaxed);
    metrics_.delivery_failures->IncrementAt(p.frame.src);
    Message original = std::move(p.original);
    if (Trace().enabled()) {
      Trace().AsyncEnd(original.src, TraceCat::kTransport, "frame", seq,
                       "\"outcome\": \"abandoned\"");
    }
    sender.pending.erase(it);
    DPC_LOG(Warning) << "transport: abandoning message to node "
                     << original.dst << " after " << options_.max_attempts
                     << " attempts";
    if (failure_handler_) failure_handler_(original);
    return;
  }
  ++p.attempts;
  p.frame.tx_id = FrameTxId(src, seq, static_cast<uint32_t>(p.attempts),
                            /*ack=*/false);
  stats_.retransmissions.fetch_add(1, std::memory_order_relaxed);
  metrics_.retransmissions->IncrementAt(p.frame.src);
  if (Trace().enabled()) {
    Trace().Instant(p.frame.src, TraceCat::kTransport, "retransmit",
                    "\"seq\": " + std::to_string(seq) +
                        ", \"attempt\": " + std::to_string(p.attempts));
  }
  p.rto_s = std::min(p.rto_s * options_.backoff_factor, options_.max_rto_s);
  TransmitFrame(p.frame);
  ArmTimer(src, seq);
}

void ReliableTransport::OnNetworkDelivery(const Message& msg) {
  ByteReader r(msg.payload);
  auto type = r.GetU8();
  auto seq = r.GetU64();
  if (!type.ok() || !seq.ok()) {
    DPC_LOG(Error) << "transport: malformed frame from node " << msg.src;
    return;
  }
  if (*type == kAckFrame) {
    // The ack is delivered at the original sender (msg.dst), on its shard:
    // the pending map and its timer both belong to that node's slice.
    NodeState& sender = nodes_[static_cast<size_t>(msg.dst)];
    auto it = sender.pending.find(*seq);
    if (it == sender.pending.end()) return;  // duplicate ack
    QueueFor(msg.dst)->Cancel(it->second.timer);
    if (Trace().enabled()) {
      Trace().AsyncEnd(it->second.frame.src, TraceCat::kTransport, "frame",
                       *seq, "\"outcome\": \"acked\", \"attempts\": " +
                                 std::to_string(it->second.attempts));
    }
    sender.pending.erase(it);
    return;
  }
  if (*type != kDataFrame) {
    DPC_LOG(Error) << "transport: unknown frame type "
                   << static_cast<int>(*type);
    return;
  }
  // Receiver side, on msg.dst's shard; dedup per peer because sequence
  // numbers are per source node.
  PeerRx& rx = nodes_[static_cast<size_t>(msg.dst)].rx[msg.src];
  // Acknowledge every data frame, duplicates included: the previous ack
  // may have been the casualty.
  Message ack;
  ack.kind = MessageKind::kAck;
  ack.src = msg.dst;
  ack.dst = msg.src;
  ByteWriter w;
  w.PutU8(kAckFrame);
  w.PutU64(*seq);
  ack.payload = w.Take();
  ack.tx_id = FrameTxId(msg.src, *seq, ++rx.ack_counts[*seq], /*ack=*/true);
  stats_.acks_sent.fetch_add(1, std::memory_order_relaxed);
  metrics_.acks_sent->IncrementAt(msg.dst);
  network_->Send(std::move(ack));

  if (!rx.delivered.insert(*seq).second) {
    stats_.duplicates_suppressed.fetch_add(1, std::memory_order_relaxed);
    metrics_.duplicates_suppressed->IncrementAt(msg.dst);
    return;
  }
  Message original;
  original.kind = msg.kind;
  original.src = msg.src;
  original.dst = msg.dst;
  original.payload.assign(msg.payload.begin() + 9, msg.payload.end());
  if (handler_) handler_(original);
}

}  // namespace dpc
