#include "src/net/event_queue.h"

#include <chrono>
#include <limits>

#include "src/util/logging.h"

namespace dpc {

namespace {
// The queue whose callback this thread is currently executing. Shard
// workers each dispatch from their own queue, so thread_local is exact.
thread_local EventQueue* tls_dispatching_queue = nullptr;
}  // namespace

EventQueue* EventQueue::Current() { return tls_dispatching_queue; }

EventQueue::EventQueue()
    : dispatch_counter_(&GlobalMetrics().GetCounter("queue.events_dispatched")),
      past_schedule_counter_(
          &GlobalMetrics().GetCounter("queue.past_schedules")),
      tracer_(&Trace()) {}

TimerId EventQueue::ScheduleAtTagged(SimTime t, uint64_t tag, Callback fn) {
  if (t < now_) {
    // Clamp rather than rewind: time never runs backwards. Counted so a
    // shard engine misconfigured with too little lookahead is visible.
    ++past_schedules_;
    past_schedule_counter_->Increment();
    t = now_;
  }
  TimerId id = next_seq_++;
  live_.insert(id);
  queue_.push(Entry{t, id, tag, std::move(fn)});
  return id;
}

void EventQueue::Cancel(TimerId id) {
  if (live_.erase(id) == 0) return;  // already fired or canceled
  canceled_.insert(id);
  SkipCanceled();
}

void EventQueue::SkipCanceled() {
  while (!queue_.empty() && canceled_.count(queue_.top().seq) > 0) {
    canceled_.erase(queue_.top().seq);
    queue_.pop();
  }
}

bool EventQueue::RunNext() {
  SkipCanceled();
  if (queue_.empty()) return false;
  // Move the callback out before popping so it may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  live_.erase(entry.seq);
  now_ = entry.time;
  Dispatch(entry);
  return true;
}

void EventQueue::Dispatch(Entry& entry) {
  ++dispatched_;
  dispatch_counter_->Increment();
  EventQueue* prev = tls_dispatching_queue;
  tls_dispatching_queue = this;
  if (tracer_->enabled()) {
    RunTraced(entry);
  } else {
    entry.fn();
  }
  tls_dispatching_queue = prev;
}

uint64_t EventQueue::HeadTagAtNow() {
  SkipCanceled();
  if (queue_.empty() || queue_.top().time != now_) return 0;
  return queue_.top().tag;
}

size_t EventQueue::DrainAtTime(uint64_t tag) {
  if (tag == 0) return 0;
  size_t n = 0;
  for (;;) {
    SkipCanceled();
    if (queue_.empty()) break;
    const Entry& head = queue_.top();
    // Bitwise time equality is deliberately conservative: two float
    // timestamps that differ at all are different instants, and a batch
    // must never pull an event forward in simulated time.
    if (head.time != now_ || head.tag != tag) break;
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    live_.erase(entry.seq);
    Dispatch(entry);
    ++n;
  }
  return n;
}

void EventQueue::RunTraced(Entry& entry) {
  auto start = std::chrono::steady_clock::now();
  entry.fn();
  auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  tracer_->CompleteAt(
      -1, TraceCat::kQueue, "dispatch", entry.time,
      "\"seq\": " + std::to_string(entry.seq) +
          ", \"wall_us\": " + std::to_string(wall / 1000.0));
}

void EventQueue::RunUntil(SimTime t) {
  SkipCanceled();
  while (!queue_.empty() && queue_.top().time <= t) {
    RunNext();
    SkipCanceled();
  }
  if (now_ < t) now_ = t;
}

SimTime EventQueue::PeekTime() {
  SkipCanceled();
  return queue_.empty() ? std::numeric_limits<SimTime>::infinity()
                        : queue_.top().time;
}

size_t EventQueue::RunWindow(SimTime end_exclusive, size_t max_events) {
  size_t n = 0;
  SkipCanceled();
  while (!queue_.empty() && queue_.top().time < end_exclusive) {
    RunNext();
    ++n;
    if (max_events != 0 && n >= max_events) break;
    SkipCanceled();
  }
  return n;
}

void EventQueue::RunAll(size_t max_events) {
  size_t n = 0;
  while (RunNext()) {
    if (max_events != 0 && ++n >= max_events) {
      DPC_LOG(Warning) << "EventQueue::RunAll stopped after " << n
                       << " events with " << pending() << " pending";
      return;
    }
  }
}

}  // namespace dpc
