#include "src/net/event_queue.h"

#include "src/util/logging.h"

namespace dpc {

void EventQueue::ScheduleAt(SimTime t, Callback fn) {
  DPC_DCHECK(t >= now_) << "scheduling into the past: " << t << " < " << now_;
  queue_.push(Entry{t < now_ ? now_ : t, next_seq_++, std::move(fn)});
}

bool EventQueue::RunNext() {
  if (queue_.empty()) return false;
  // Move the callback out before popping so it may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  entry.fn();
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    RunNext();
  }
  if (now_ < t) now_ = t;
}

void EventQueue::RunAll(size_t max_events) {
  size_t n = 0;
  while (RunNext()) {
    if (max_events != 0 && ++n >= max_events) {
      DPC_LOG(Warning) << "EventQueue::RunAll stopped after " << n
                       << " events with " << queue_.size() << " pending";
      return;
    }
  }
}

}  // namespace dpc
