#include "src/net/shard_engine.h"

#include <algorithm>
#include <cmath>
#include <chrono>
#include <limits>
#include <tuple>

#include "src/util/logging.h"

namespace dpc {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

// Which shard the calling thread is executing a window for; -1 outside
// windows. The coordinator doubles as shard 0's worker, so this is set
// around every window, including the inline one.
thread_local int tls_current_shard = -1;

}  // namespace

ShardMap::ShardMap(int num_nodes, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  if (num_nodes > 0 && num_shards > num_nodes) num_shards = num_nodes;
  num_shards_ = num_shards;
  shard_of_.resize(static_cast<size_t>(num_nodes));
  int base = num_nodes / num_shards;
  int extra = num_nodes % num_shards;
  int node = 0;
  for (int s = 0; s < num_shards; ++s) {
    int len = base + (s < extra ? 1 : 0);
    for (int i = 0; i < len; ++i) shard_of_[node++] = s;
  }
}

SimTime MinCrossShardLatency(const Topology& topology, const ShardMap& map) {
  SimTime min_latency = kInf;
  topology.ForEachLink([&](NodeId a, NodeId b, const LinkProps& props) {
    if (map.shard_of(a) != map.shard_of(b) && props.latency_s < min_latency) {
      min_latency = props.latency_s;
    }
  });
  return min_latency;
}

ShardEngine::ShardEngine(const Topology* topology, int num_shards,
                         EventQueue* shard0)
    : topology_(topology),
      map_(topology != nullptr ? topology->num_nodes() : 0, num_shards),
      lookahead_(0) {
  DPC_CHECK(topology_ != nullptr);
  DPC_CHECK(shard0 != nullptr);
  lookahead_ = MinCrossShardLatency(*topology_, map_);
  DPC_CHECK(map_.num_shards() == 1 || lookahead_ > 0)
      << "zero cross-shard lookahead: a zero-latency link crosses shards";
  queues_.push_back(shard0);
  for (int s = 1; s < map_.num_shards(); ++s) {
    owned_queues_.push_back(std::make_unique<EventQueue>());
    queues_.push_back(owned_queues_.back().get());
  }
  mail_.resize(static_cast<size_t>(map_.num_shards()) * map_.num_shards());
  MetricsRegistry& reg = GlobalMetrics();
  windows_counter_ = &reg.GetCounter("shard.windows");
  cross_shard_counter_ = &reg.GetCounter("shard.cross_shard_messages");
  global_actions_counter_ = &reg.GetCounter("shard.global_actions");
  tracer_ = &Trace();
}

ShardEngine::~ShardEngine() {
  {
    std::lock_guard<std::mutex> lk(barrier_mu_);
    stop_ = true;
  }
  worker_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ShardEngine::current_shard() { return tls_current_shard; }

SimTime ShardEngine::LocalNow() {
  int cur = tls_current_shard;
  return cur >= 0 ? queues_[cur]->now() : now();
}

void ShardEngine::ScheduleAtNode(NodeId node, SimTime t,
                                 EventQueue::Callback fn, uint64_t tag) {
  int dst = map_.shard_of(node);
  int cur = tls_current_shard;
  if (cur == dst || cur < 0) {
    // Same shard, or the idle coordinator (setup, global actions): the
    // destination queue is not concurrently running.
    queues_[dst]->ScheduleAtTagged(t, tag, std::move(fn));
    return;
  }
  // Cross-shard from a worker mid-window: only this thread writes this
  // slot; the coordinator merges it at the barrier.
  mail_[static_cast<size_t>(dst) * map_.num_shards() + cur].mail.push_back(
      Mail{t, tag, std::move(fn)});
}

void ShardEngine::ScheduleGlobal(SimTime t, std::function<void()> fn) {
  DPC_CHECK(tls_current_shard < 0)
      << "ScheduleGlobal must be called from the coordinator";
  globals_.push(GlobalAction{t, next_global_seq_++, std::move(fn)});
}

void ShardEngine::StartWorkers() {
  if (!workers_.empty() || map_.num_shards() == 1) return;
  workers_.reserve(map_.num_shards() - 1);
  for (int s = 1; s < map_.num_shards(); ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

void ShardEngine::RunShardWindow(int shard) {
  tls_current_shard = shard;
  size_t n = queues_[shard]->RunWindow(horizon_, window_cap_);
  tls_current_shard = -1;
  if (n != 0) window_events_.fetch_add(n, std::memory_order_relaxed);
}

void ShardEngine::WorkerLoop(int shard) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(barrier_mu_);
      worker_cv_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    // horizon_ / window_cap_ were written before the epoch bump and are
    // stable for the whole window; the wait above orders the reads.
    RunShardWindow(shard);
    {
      std::lock_guard<std::mutex> lk(barrier_mu_);
      ++done_count_;
      if (done_count_ == map_.num_shards() - 1) coord_cv_.notify_one();
    }
  }
}

void ShardEngine::DrainMailboxes() {
  const int n = map_.num_shards();
  // (time, source shard, push index): the merge order is a pure function
  // of simulated time and shard topology, never of thread interleaving,
  // so destination-queue sequence numbers — and with them all same-time
  // tie-breaks — are identical for every shard count.
  std::vector<std::tuple<SimTime, int, size_t>> order;
  for (int dst = 0; dst < n; ++dst) {
    order.clear();
    for (int src = 0; src < n; ++src) {
      std::vector<Mail>& slot = mail_[static_cast<size_t>(dst) * n + src].mail;
      for (size_t i = 0; i < slot.size(); ++i) {
        order.emplace_back(slot[i].time, src, i);
      }
    }
    if (order.empty()) continue;
    std::sort(order.begin(), order.end());
    for (const auto& [t, src, i] : order) {
      Mail& m = mail_[static_cast<size_t>(dst) * n + src].mail[i];
      queues_[dst]->ScheduleAtTagged(t, m.tag, std::move(m.fn));
    }
    cross_shard_messages_ += order.size();
    cross_shard_counter_->IncrementAt(dst);
    for (int src = 0; src < n; ++src) {
      mail_[static_cast<size_t>(dst) * n + src].mail.clear();
    }
  }
}

void ShardEngine::RunLoop(SimTime until, size_t max_events) {
  DPC_CHECK(tls_current_shard < 0)
      << "re-entrant ShardEngine run from a worker";
  StartWorkers();
  const int n = map_.num_shards();
  size_t ran_this_call = 0;
  for (;;) {
    DrainMailboxes();
    SimTime tq = kInf;
    for (EventQueue* q : queues_) tq = std::min(tq, q->PeekTime());
    // Global actions run alone, on this thread, once everything earlier
    // than their time has executed — and before anything at exactly it.
    while (!globals_.empty() && globals_.top().time <= tq &&
           globals_.top().time <= until) {
      GlobalAction action =
          std::move(const_cast<GlobalAction&>(globals_.top()));
      globals_.pop();
      SimTime at = std::max(now(), action.time);
      global_now_.store(at, std::memory_order_relaxed);
      for (EventQueue* q : queues_) q->AdvanceTo(action.time);
      action.fn();
      global_actions_counter_->Increment();
      tq = kInf;
      for (EventQueue* q : queues_) tq = std::min(tq, q->PeekTime());
    }
    SimTime next_global = globals_.empty() ? kInf : globals_.top().time;
    SimTime start = std::min(tq, next_global);
    if (start == kInf || start > until) break;

    // Conservative window [start, horizon): an event at t >= start only
    // reaches another shard at t + lookahead >= horizon, so shards are
    // causally independent inside the window. The horizon also never
    // crosses the next global action or the caller's time bound.
    SimTime horizon = tq + lookahead_;
    horizon = std::min(horizon, next_global);
    if (until != kInf) {
      horizon = std::min(
          horizon, std::nextafter(until, kInf));  // events at `until` run
    }
    window_events_.store(0, std::memory_order_relaxed);
    bool tracing = tracer_->enabled();
    auto wall0 = tracing ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
    {
      std::lock_guard<std::mutex> lk(barrier_mu_);
      horizon_ = horizon;
      window_cap_ = max_events == 0 ? 0 : max_events - ran_this_call;
      done_count_ = 0;
      ++epoch_;
    }
    worker_cv_.notify_all();
    RunShardWindow(0);
    if (n > 1) {
      std::unique_lock<std::mutex> lk(barrier_mu_);
      coord_cv_.wait(lk, [&] { return done_count_ == n - 1; });
    }
    size_t executed = window_events_.load(std::memory_order_relaxed);
    ran_this_call += executed;
    events_executed_ += executed;
    ++windows_;
    windows_counter_->Increment();
    SimTime reached = horizon;
    if (reached == kInf) {
      reached = 0;
      for (EventQueue* q : queues_) reached = std::max(reached, q->now());
    }
    if (reached > now()) {
      global_now_.store(reached, std::memory_order_relaxed);
    }
    if (tracing) {
      auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - wall0)
                      .count();
      tracer_->CompleteAt(
          -1, TraceCat::kShard, "window", start,
          "\"horizon\": " + std::to_string(horizon) +
              ", \"events\": " + std::to_string(executed) +
              ", \"wall_us\": " + std::to_string(wall / 1000.0));
    }
    if (max_events != 0 && ran_this_call >= max_events) {
      size_t left = 0;
      for (EventQueue* q : queues_) left += q->pending();
      DPC_LOG(Warning) << "ShardEngine stopped after " << ran_this_call
                       << " events with " << left << " pending";
      return;
    }
  }
  // Align every shard clock to the run's end. A drained single queue
  // leaves `now` at the globally last executed event; without this, each
  // shard queue would stop at its own last local event, and a follow-up
  // phase that schedules at an absolute time in the past (e.g. an
  // experiment reusing t=0 after a setup drain) would clamp to a
  // different instant on every shard — breaking the shard-count
  // differential the moment any schedule lands in the past.
  SimTime end = 0;
  for (EventQueue* q : queues_) end = std::max(end, q->now());
  for (EventQueue* q : queues_) q->AdvanceTo(end);
  if (end > now()) global_now_.store(end, std::memory_order_relaxed);
}

void ShardEngine::RunAll(size_t max_events) { RunLoop(kInf, max_events); }

void ShardEngine::RunUntil(SimTime t) {
  RunLoop(t, 0);
  for (EventQueue* q : queues_) q->AdvanceTo(t);
  if (t > now()) global_now_.store(t, std::memory_order_relaxed);
}

}  // namespace dpc
