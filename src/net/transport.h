// ReliableTransport: exactly-once message delivery over the lossy Network.
//
// The paper's prototype inherits reliable delivery from RapidNet/ns-3; our
// simulator injects faults (network.h), so anything that must survive them
// layers this transport over the raw Network:
//
//   * every data frame carries a transport sequence number and is
//     acknowledged by the receiver with a small kAck frame;
//   * the sender retransmits an unacknowledged frame after a timeout,
//     doubling the timeout each attempt (exponential backoff, capped),
//     until the ack arrives or `max_attempts` is exhausted;
//   * the receiver deduplicates by sequence number, so a retransmitted
//     kEvent/kControl/kQuery delivery is handed to the application exactly
//     once — duplicates are re-acked (the previous ack may have been lost)
//     but suppressed.
//
// Everything is driven by the shared EventQueue, so runs are deterministic
// for a given loss seed. See docs/transport.md for the protocol write-up.
//
// Shard safety: all transport state is partitioned per node. Sender state
// (sequence counter, in-flight frames, retransmission timers) lives with
// the frame's source node; receiver state (dedup sets, ack counts) lives
// with the destination, keyed per peer. After BindShardEngine every timer
// is armed on the owning shard's EventQueue, and every code path that
// touches node n's slice runs on n's shard (sends and timeouts at the
// source, data deliveries at the destination, acks back at the source) or
// on the idle coordinator between windows — so no lock is needed and the
// per-source sequence numbers are shard-count invariant, which keeps the
// hash-keyed drop set byte-identical at any shard count.
#ifndef DPC_NET_TRANSPORT_H_
#define DPC_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/network.h"
#include "src/obs/metrics.h"

namespace dpc {
class ShardEngine;
}

namespace dpc {

struct TransportOptions {
  double initial_rto_s = 0.25;  // first retransmission timeout
  double backoff_factor = 2.0;  // RTO multiplier per failed attempt
  double max_rto_s = 8.0;       // backoff cap
  // Total send attempts per frame before giving up (first transmission
  // included). 0 retries forever — only safe when every fault heals.
  int max_attempts = 16;
};

// Plain snapshot of the transport counters (what callers consume).
struct TransportStats {
  uint64_t data_frames_sent = 0;      // first transmissions
  uint64_t retransmissions = 0;       // timeout-triggered resends
  uint64_t acks_sent = 0;             // receiver-side acknowledgements
  uint64_t duplicates_suppressed = 0; // retransmits already applied
  uint64_t delivery_failures = 0;     // frames abandoned after max_attempts
};

// The live counters. Atomic fields so concurrent bumps never lose updates
// and Reset never tears: the old `*this = TransportStats()` reset wrote
// five plain words non-atomically, so a reader racing it could observe a
// half-zeroed struct (and a writer racing it could resurrect a stale
// increment). Per-field atomic stores make reset race-safe; Snapshot is
// field-wise consistent (exact when quiescent, which is when tests and
// experiment teardown read it).
struct AtomicTransportStats {
  std::atomic<uint64_t> data_frames_sent{0};
  std::atomic<uint64_t> retransmissions{0};
  std::atomic<uint64_t> acks_sent{0};
  std::atomic<uint64_t> duplicates_suppressed{0};
  std::atomic<uint64_t> delivery_failures{0};

  TransportStats Snapshot() const {
    TransportStats s;
    s.data_frames_sent = data_frames_sent.load(std::memory_order_relaxed);
    s.retransmissions = retransmissions.load(std::memory_order_relaxed);
    s.acks_sent = acks_sent.load(std::memory_order_relaxed);
    s.duplicates_suppressed =
        duplicates_suppressed.load(std::memory_order_relaxed);
    s.delivery_failures = delivery_failures.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    data_frames_sent.store(0, std::memory_order_relaxed);
    retransmissions.store(0, std::memory_order_relaxed);
    acks_sent.store(0, std::memory_order_relaxed);
    duplicates_suppressed.store(0, std::memory_order_relaxed);
    delivery_failures.store(0, std::memory_order_relaxed);
  }
};

class ReliableTransport : public MessageChannel {
 public:
  // `network` and `queue` must outlive the transport. The transport takes
  // over the network's delivery handler; applications install theirs on
  // the transport instead.
  ReliableTransport(Network* network, EventQueue* queue,
                    TransportOptions options = {});

  // Routes retransmission timers through the owning shard's EventQueue so
  // cross-node timer arming/cancellation is shard-safe. Mirrors
  // Network::BindShardEngine; call before the engine starts running (the
  // testbed binds both together). Pass nullptr to fall back to the classic
  // single-queue mode.
  void BindShardEngine(ShardEngine* engine) { engine_ = engine; }

  void SetDeliveryHandler(DeliveryHandler handler) override {
    handler_ = std::move(handler);
  }

  // Invoked (from the event queue) with the original message when delivery
  // is abandoned after `max_attempts`; the application decides whether
  // that is fatal (e.g. a query failing with DeadlineExceeded).
  using FailureHandler = std::function<void(const Message& msg)>;
  void SetFailureHandler(FailureHandler handler) {
    failure_handler_ = std::move(handler);
  }

  // Reliably sends `msg`; delivers to the destination's handler exactly
  // once unless every attempt is exhausted.
  void Send(Message msg) override;

  // Reliable §5.5 broadcast: a unicast Send to every node but `from`.
  void Broadcast(NodeId from, Message msg) override;

  TransportStats stats() const { return stats_.Snapshot(); }
  // Zeroes the per-window counters, symmetric with
  // Network::ResetAccounting (in-flight frames keep their state).
  // Race-safe: per-field atomic stores, no struct-wide tear.
  void ResetStats() { stats_.Reset(); }
  // Frames sent but not yet acknowledged (across all source nodes). Only
  // meaningful when the run is quiescent.
  size_t in_flight() const;
  Network& network() { return *network_; }
  const TransportOptions& options() const { return options_; }

 private:
  struct Pending {
    Message frame;     // wrapped message, ready to resend
    Message original;  // what the caller passed, for the failure handler
    int attempts = 1;
    double rto_s = 0;
    TimerId timer = 0;
  };

  // Receiver-side state a node keeps about one peer. Sequence numbers are
  // per source node, so the dedup set and ack counters must be keyed by
  // the peer too — a global seq-keyed set would collide across sources.
  struct PeerRx {
    std::unordered_set<uint64_t> delivered;
    // Acks sent per seq: varies each re-ack's tx_id so a lost ack's
    // replacement gets an independent loss draw (a fixed ack tx_id would
    // make hash-keyed loss drop every re-ack of an unlucky seq forever).
    std::unordered_map<uint64_t, uint32_t> ack_counts;
  };

  // One node's slice of the transport. Touched only from the owning
  // shard's worker (or the idle coordinator), never concurrently.
  struct NodeState {
    uint64_t next_seq = 1;                        // sender: per-src seq space
    std::unordered_map<uint64_t, Pending> pending;  // sender: in-flight
    std::unordered_map<NodeId, PeerRx> rx;          // receiver: per peer src
  };

  // The EventQueue that owns `node`: its shard's queue when an engine is
  // bound, the classic shared queue otherwise.
  EventQueue* QueueFor(NodeId node);

  void TransmitFrame(const Message& frame);
  void ArmTimer(NodeId src, uint64_t seq);
  void OnTimeout(NodeId src, uint64_t seq);
  void OnNetworkDelivery(const Message& msg);

  Network* network_;
  EventQueue* queue_;
  ShardEngine* engine_ = nullptr;
  TransportOptions options_;
  DeliveryHandler handler_;
  FailureHandler failure_handler_;
  // Indexed by NodeId; sized once at construction so concurrent shards
  // never observe a reallocation.
  std::vector<NodeState> nodes_;
  AtomicTransportStats stats_;

  // Registry counters resolved once at construction (see obs/metrics.h);
  // these mirror stats_ but survive ResetStats-style windowing via
  // snapshot deltas.
  struct {
    Counter* data_frames_sent;
    Counter* retransmissions;
    Counter* acks_sent;
    Counter* duplicates_suppressed;
    Counter* delivery_failures;
  } metrics_;
};

}  // namespace dpc

#endif  // DPC_NET_TRANSPORT_H_
