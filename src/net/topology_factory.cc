#include "src/net/topology_factory.h"

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace dpc {

Topology MakeLineTopology(int n, LinkProps link) {
  DPC_CHECK(n >= 1);
  Topology t;
  t.AddNodes(n);
  for (int i = 0; i + 1 < n; ++i) {
    DPC_CHECK(t.AddLink(i, i + 1, link).ok());
  }
  t.ComputeRoutes();
  return t;
}

Topology MakeRingTopology(int n, LinkProps link) {
  DPC_CHECK(n >= 3);
  Topology t;
  t.AddNodes(n);
  for (int i = 0; i < n; ++i) {
    DPC_CHECK(t.AddLink(i, (i + 1) % n, link).ok());
  }
  t.ComputeRoutes();
  return t;
}

Topology MakeStarTopology(int n, LinkProps link) {
  DPC_CHECK(n >= 2);
  Topology t;
  t.AddNodes(n);
  for (int i = 1; i < n; ++i) {
    DPC_CHECK(t.AddLink(0, i, link).ok());
  }
  t.ComputeRoutes();
  return t;
}

Topology MakeGridTopology(int rows, int cols, LinkProps link) {
  DPC_CHECK(rows >= 1 && cols >= 1);
  Topology t;
  t.AddNodes(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        DPC_CHECK(t.AddLink(id(r, c), id(r, c + 1), link).ok());
      }
      if (r + 1 < rows) {
        DPC_CHECK(t.AddLink(id(r, c), id(r + 1, c), link).ok());
      }
    }
  }
  t.ComputeRoutes();
  return t;
}

Topology MakeRandomTreeTopology(int n, uint64_t seed, LinkProps link) {
  DPC_CHECK(n >= 1);
  Topology t;
  t.AddNodes(n);
  Rng rng(seed);
  for (int i = 1; i < n; ++i) {
    NodeId parent =
        static_cast<NodeId>(rng.NextBelow(static_cast<uint64_t>(i)));
    DPC_CHECK(t.AddLink(i, parent, link).ok());
  }
  t.ComputeRoutes();
  return t;
}

}  // namespace dpc
