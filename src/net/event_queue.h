// Discrete-event simulation core (the repo's ns-3 substitute).
// Events are (time, sequence) ordered callbacks; sequence numbers break
// ties deterministically in schedule order.
#ifndef DPC_NET_EVENT_QUEUE_H_
#define DPC_NET_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace dpc {

// Simulated time in seconds.
using SimTime = double;

// Handle for a scheduled event, usable with EventQueue::Cancel.
using TimerId = uint64_t;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  // Schedules `fn` at absolute time `t` (>= now). A stale `t < now()` is
  // clamped to now() and counted in the "queue.past_schedules" metric —
  // time never runs backwards, and under sharding a stale cross-shard
  // timestamp must not time-travel. The returned TimerId may be passed to
  // Cancel before the event fires.
  TimerId ScheduleAt(SimTime t, Callback fn) {
    return ScheduleAtTagged(t, 0, std::move(fn));
  }

  // As ScheduleAt, carrying a batch tag: a nonzero tag marks the event as
  // drainable into a same-(tag, time) batch by DrainAtTime. The runtime
  // tags event deliveries with their (destination node, relation) so all
  // same-predicate events landing at one node at one instant can be
  // evaluated set-at-a-time (src/runtime/batch_eval.h).
  TimerId ScheduleAtTagged(SimTime t, uint64_t tag, Callback fn);

  // Schedules `fn` `delay` seconds from now.
  TimerId ScheduleAfter(SimTime delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a scheduled event. Canceling an already-fired (or already
  // canceled) timer is a no-op. Cancellation is lazy: the entry stays in
  // the heap until its time comes but its callback is dropped then.
  void Cancel(TimerId id);

  SimTime now() const { return now_; }
  bool empty() const { return live_.empty(); }
  // Number of live (non-canceled) events still scheduled.
  size_t pending() const { return live_.size(); }
  // Events dispatched over this queue's lifetime.
  uint64_t dispatched() const { return dispatched_; }

  // Runs the earliest live event; returns false when no live events remain.
  bool RunNext();

  // Runs events until the queue empties or simulated time would exceed
  // `t`; `now()` advances to `t` afterwards.
  void RunUntil(SimTime t);

  // Drains the queue. `max_events` guards against runaway loops
  // (0 = unlimited).
  void RunAll(size_t max_events = 0);

  // --- shard-engine primitives (src/net/shard_engine.h) ----------------

  // Time of the earliest live event, or +infinity when none are pending.
  SimTime PeekTime();

  // Runs every live event with time < `end_exclusive` (the conservative
  // PDES window [now, end)), bounded by `max_events` (0 = unlimited).
  // Unlike RunUntil, now() is left at the last executed event — the
  // engine advances it explicitly at barriers. Returns events executed.
  size_t RunWindow(SimTime end_exclusive, size_t max_events = 0);

  // Advances now() to `t` without running anything (t < now() is a no-op).
  void AdvanceTo(SimTime t) {
    if (now_ < t) now_ = t;
  }

  // Stale schedules clamped to now() over this queue's lifetime.
  uint64_t past_schedules() const { return past_schedules_; }

  // --- batch-draining primitives (src/runtime/batch_eval.h) -------------

  // The queue a callback on this thread is currently being dispatched
  // from, or nullptr outside dispatch. Lets the runtime tell "I am the
  // event the queue just popped" (safe to drain peers) from a direct call
  // (e.g. a test feeding HandleMessage by hand — nothing to drain).
  static EventQueue* Current();

  // Tag of the earliest live entry if its time equals now(), else 0.
  // Inside a dispatch this asks: does the very next event fire at this
  // same instant, with this same tag?
  uint64_t HeadTagAtNow();

  // Runs — exactly as RunNext would, dispatch counter and trace span
  // included — every contiguous head entry whose time equals now() and
  // whose tag equals `tag` (nonzero), in sequence order. Stops at the
  // first entry with a different time or tag, so the drain never crosses
  // a same-instant untagged event (e.g. a slow-table update), never
  // reorders relative to RunWindow/RunNext, and — since every drained
  // entry fires at now(), inside the window that admitted the current
  // event — never crosses a shard window boundary. Returns the number
  // drained.
  size_t DrainAtTime(uint64_t tag);

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    uint64_t tag;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops canceled entries off the top of the heap.
  void SkipCanceled();
  // Out-of-line traced dispatch, so RunNext's disabled-tracing path stays
  // a single predicted branch.
  void RunTraced(Entry& entry);
  // Shared dispatch body: counters, Current() scope, traced-or-not run.
  void Dispatch(Entry& entry);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Ids scheduled but not yet fired or canceled; keeps Cancel a no-op for
  // stale ids and makes pending() an exact live count.
  std::unordered_set<TimerId> live_;
  std::unordered_set<TimerId> canceled_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t dispatched_ = 0;
  uint64_t past_schedules_ = 0;
  // Cached at construction so the per-dispatch cost is one pointer bump
  // plus one branch on the tracer flag.
  Counter* dispatch_counter_;
  Counter* past_schedule_counter_;
  Tracer* tracer_;
};

}  // namespace dpc

#endif  // DPC_NET_EVENT_QUEUE_H_
