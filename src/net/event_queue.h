// Discrete-event simulation core (the repo's ns-3 substitute).
// Events are (time, sequence) ordered callbacks; sequence numbers break
// ties deterministically in schedule order.
#ifndef DPC_NET_EVENT_QUEUE_H_
#define DPC_NET_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dpc {

// Simulated time in seconds.
using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `fn` at absolute time `t` (>= now).
  void ScheduleAt(SimTime t, Callback fn);

  // Schedules `fn` `delay` seconds from now.
  void ScheduleAfter(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  SimTime now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }

  // Runs the earliest event; returns false when the queue is empty.
  bool RunNext();

  // Runs events until the queue empties or simulated time would exceed
  // `t`; `now()` advances to `t` afterwards.
  void RunUntil(SimTime t);

  // Drains the queue. `max_events` guards against runaway loops
  // (0 = unlimited).
  void RunAll(size_t max_events = 0);

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace dpc

#endif  // DPC_NET_EVENT_QUEUE_H_
