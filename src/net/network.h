// Network: message delivery over a Topology driven by the EventQueue.
// Messages are forwarded hop-by-hop along shortest paths; every traversed
// link contributes latency + serialization delay and is charged to the
// bandwidth accounting that the paper's Figures 11 and 15 report.
#ifndef DPC_NET_NETWORK_H_
#define DPC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/db/tuple.h"
#include "src/net/event_queue.h"
#include "src/net/topology.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace dpc {

enum class MessageKind : uint8_t {
  kEvent = 0,    // an event tuple propagating through a DELP
  kControl = 1,  // slow-changing-update sig broadcast (§5.5)
  kQuery = 2,    // distributed provenance query traffic
};

struct Message {
  MessageKind kind = MessageKind::kEvent;
  NodeId src = kNullNode;
  NodeId dst = kNullNode;
  std::vector<uint8_t> payload;

  size_t WireSize() const;
};

// Fixed per-message framing overhead charged on every hop (addresses,
// kind tag, length), mimicking a UDP-style header.
inline constexpr size_t kMessageHeaderBytes = 28;

class Network {
 public:
  using DeliveryHandler = std::function<void(const Message& msg)>;

  Network(const Topology* topology, EventQueue* queue);

  // Installs the handler invoked when a message reaches its destination.
  void SetDeliveryHandler(DeliveryHandler handler) {
    handler_ = std::move(handler);
  }

  // Sends `msg` from msg.src to msg.dst. Local sends (src == dst) deliver
  // after `local_delay_s` with no bandwidth charge.
  void Send(Message msg);

  // Unicasts a copy of `msg` from `from` to every other node (§5.5 sig).
  void Broadcast(NodeId from, Message msg);

  // --- accounting ---
  uint64_t total_bytes_sent() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }

  // Bytes charged per `bucket` seconds of simulated time since t=0.
  // bandwidth(t) = bucket_bytes[i] / bucket for t in bucket i.
  const std::vector<uint64_t>& bucket_bytes() const { return bucket_bytes_; }
  double bucket_width_s() const { return bucket_width_s_; }
  void set_bucket_width_s(double w) { bucket_width_s_ = w; }

  // Resets counters (not pending traffic).
  void ResetAccounting();

  // Delay before a locally-addressed message is delivered.
  void set_local_delay_s(double d) { local_delay_s_ = d; }

  // Failure injection: drop each link traversal independently with
  // probability `rate` (deterministic given `seed`). Local deliveries are
  // never dropped. Dropped traversals are still charged to bandwidth (the
  // bytes were sent), and counted in dropped_messages().
  void SetLossRate(double rate, uint64_t seed = 1);
  uint64_t dropped_messages() const { return dropped_messages_; }

 private:
  void Forward(Message msg, NodeId at);
  void ChargeBytes(double time, size_t bytes);

  const Topology* topology_;
  EventQueue* queue_;
  DeliveryHandler handler_;
  double local_delay_s_ = 1e-6;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  double bucket_width_s_ = 1.0;
  std::vector<uint64_t> bucket_bytes_;
  double loss_rate_ = 0;
  uint64_t dropped_messages_ = 0;
  std::unique_ptr<Rng> loss_rng_;
};

}  // namespace dpc

#endif  // DPC_NET_NETWORK_H_
