// Network: message delivery over a Topology driven by the EventQueue.
// Messages are forwarded hop-by-hop along shortest paths; every traversed
// link contributes latency + serialization delay and is charged to the
// bandwidth accounting that the paper's Figures 11 and 15 report.
//
// Delivery is best-effort: the fault-injection API below (uniform or
// per-link loss, links going down/up at a simulated time, node partitions)
// drops traversals. Layer a ReliableTransport (transport.h) on top when a
// workload must survive those faults.
//
// Sharded runtime (src/net/shard_engine.h): after BindShardEngine, every
// hop is scheduled on the shard owning the node it executes at, and the
// bandwidth/drop accounting is kept in per-shard slots (each written only
// by its owning worker) merged on read. Loss draws are a pure hash of
// (seed, tx_id, link) — no shared RNG stream — so the set of dropped
// traversals is identical at any shard count.
#ifndef DPC_NET_NETWORK_H_
#define DPC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/db/tuple.h"
#include "src/net/event_queue.h"
#include "src/net/topology.h"
#include "src/util/stats.h"

namespace dpc {

class Counter;
class ShardEngine;

enum class MessageKind : uint8_t {
  kEvent = 0,    // an event tuple propagating through a DELP
  kControl = 1,  // slow-changing-update sig broadcast (§5.5)
  kQuery = 2,    // distributed provenance query traffic
  kAck = 3,      // transport-layer acknowledgement (transport.h)
};

struct Message {
  MessageKind kind = MessageKind::kEvent;
  NodeId src = kNullNode;
  NodeId dst = kNullNode;
  // Simulation-local transmission identity keying the deterministic loss
  // draw for each link traversal. Not serialized and not charged to
  // WireSize. 0 = unassigned: Send derives one from the message content.
  // ReliableTransport assigns a fresh id per (seq, attempt) so a
  // retransmission of identical bytes gets an independent draw.
  uint64_t tx_id = 0;
  // Simulation-local batch tag (not serialized, no wire cost): nonzero on
  // kEvent messages whose delivery may join a same-instant set-at-a-time
  // batch at the destination (src/runtime/batch_eval.h). The tag rides to
  // the final hop's queue entry; intermediate hops stay untagged.
  uint64_t batch_tag = 0;
  std::vector<uint8_t> payload;

  size_t WireSize() const;
};

// Fixed per-message framing overhead charged on every hop (addresses,
// kind tag, length), mimicking a UDP-style header.
inline constexpr size_t kMessageHeaderBytes = 28;

// Anything that can carry Messages between nodes: the raw (lossy) Network
// or a ReliableTransport layered over it. System and DistributedQuerier
// program against this seam so reliability is a deployment choice.
class MessageChannel {
 public:
  using DeliveryHandler = std::function<void(const Message& msg)>;

  virtual ~MessageChannel() = default;

  // Installs the handler invoked when a message reaches its destination.
  // Under the sharded runtime it runs on the destination's shard thread.
  virtual void SetDeliveryHandler(DeliveryHandler handler) = 0;

  // Sends `msg` from msg.src to msg.dst.
  virtual void Send(Message msg) = 0;

  // Unicasts a copy of `msg` from `from` to every *other* node (§5.5 sig).
  // The originator handles the signal synchronously at the send site, so
  // it is not echoed a copy.
  virtual void Broadcast(NodeId from, Message msg) = 0;
};

class Network : public MessageChannel {
 public:
  Network(const Topology* topology, EventQueue* queue);

  // Routes hop scheduling through `engine` (each hop executes on the shard
  // owning the node it is at) and widens the accounting to one slot per
  // shard. Call before any traffic; the engine must outlive the Network.
  void BindShardEngine(ShardEngine* engine);

  void SetDeliveryHandler(DeliveryHandler handler) override {
    handler_ = std::move(handler);
  }

  // Sends `msg` from msg.src to msg.dst. Local sends (src == dst) deliver
  // after `local_delay_s` with no bandwidth charge.
  void Send(Message msg) override;

  void Broadcast(NodeId from, Message msg) override;

  // --- accounting ---
  // Sums over the per-shard slots. Exact while the engine is idle or
  // between windows (tests, experiment teardown); during a window a
  // concurrent read would be a benign-but-torn snapshot, so don't.
  uint64_t total_bytes_sent() const;
  uint64_t total_messages() const;
  uint64_t dropped_messages() const;

  // Bytes charged per `bucket` seconds of simulated time since the bucket
  // origin (t=0 by default). bandwidth(t) = bucket_bytes[i] / bucket for
  // t - origin in bucket i. By value: the merge of the per-shard bucket
  // vectors.
  std::vector<uint64_t> bucket_bytes() const;
  double bucket_width_s() const { return bucket_width_s_; }
  void set_bucket_width_s(double w) { bucket_width_s_ = w; }
  // Rebases bucket 0 at `t0`: an experiment whose measured phase starts
  // after a setup drain keys its bandwidth series off the phase start, not
  // absolute sim time (which would prepend one empty bucket per elapsed
  // width). Idle-only, like set_bucket_width_s.
  void set_bucket_origin_s(double t0) { bucket_origin_s_ = t0; }

  // Resets counters (not pending traffic). Idle-only.
  void ResetAccounting();

  const Topology* topology() const { return topology_; }

  // Delay before a locally-addressed message is delivered.
  void set_local_delay_s(double d) { local_delay_s_ = d; }

  // --- fault injection -------------------------------------------------
  // All injected faults drop individual link traversals. Local deliveries
  // (src == dst) are never dropped. Dropped traversals are still charged
  // to bandwidth (the bytes were sent) and counted in dropped_messages().
  //
  // Fault state is mutated only while the shard engine is idle (setup
  // code, or Schedule* callbacks which run as global actions at a window
  // barrier) and read by workers during windows; the engine's barrier
  // provides the happens-before, so the maps below need no lock.

  // Uniform loss: drop each traversal independently with probability
  // `rate`. Deterministic given `seed`: whether a traversal drops is a
  // pure hash of (seed, msg.tx_id, link), independent of arrival order
  // and shard count.
  void SetLossRate(double rate, uint64_t seed = 1);

  // Per-link loss overriding the uniform rate on that link (either
  // direction). Keyed by the same seed as SetLossRate.
  Status SetLinkLossRate(NodeId a, NodeId b, double rate);

  // Takes link (a, b) down / back up. While down, every traversal of the
  // link is dropped; routing is unchanged (the paper's routes are static),
  // so recovery is the transport layer's job.
  Status SetLinkUp(NodeId a, NodeId b, bool up);
  // Same, at simulated time `at` (a global action when sharded).
  Status ScheduleLinkUp(NodeId a, NodeId b, bool up, SimTime at);

  // Partitions the nodes: a traversal is dropped when its endpoints are in
  // different groups. `group_of_node[n]` is node n's group id; the vector
  // must have one entry per node. An empty vector heals the partition.
  Status SetPartition(std::vector<int> group_of_node);
  void SchedulePartition(std::vector<int> group_of_node, SimTime at);

 private:
  // Accounting slot for activity at node `at`: written only by the worker
  // owning `at`'s shard (or the coordinator while the engine is idle), so
  // plain uint64_t fields suffice. Padded to avoid false sharing.
  struct alignas(64) ShardAccount {
    uint64_t bytes = 0;
    uint64_t messages = 0;
    uint64_t dropped = 0;
    std::vector<uint64_t> bucket_bytes;
  };

  void Forward(Message msg, NodeId at);
  void ChargeBytes(ShardAccount& acct, double time, size_t bytes);
  // True when fault injection says this traversal never arrives. Pure in
  // (fault state, msg.tx_id, at, next).
  bool TraversalDropped(NodeId at, NodeId next, const Message& msg) const;
  Status CheckLink(NodeId a, NodeId b) const;
  ShardAccount& AccountFor(NodeId at);
  // Simulated time in the calling context: the executing shard's clock on
  // a worker, the engine's global clock (or queue time) otherwise.
  SimTime SimNow() const;
  // Schedules `fn` at SimNow() + delay on the shard owning `node`,
  // carrying `tag` as the queue entry's batch tag.
  void ScheduleAtNodeAfter(NodeId node, double delay,
                           std::function<void()> fn, uint64_t tag = 0);

  const Topology* topology_;
  EventQueue* queue_;
  ShardEngine* engine_ = nullptr;
  DeliveryHandler handler_;
  double local_delay_s_ = 1e-6;
  double bucket_width_s_ = 1.0;
  double bucket_origin_s_ = 0;
  std::vector<ShardAccount> accounts_;  // one per shard; size 1 unsharded
  double loss_rate_ = 0;
  uint64_t loss_seed_ = 1;
  Counter* drop_counter_;
  // Fault state keyed by the (min, max) node pair packed into 64 bits.
  std::unordered_map<uint64_t, double> link_loss_;
  std::unordered_set<uint64_t> links_down_;
  std::vector<int> partition_;  // empty = no partition
};

}  // namespace dpc

#endif  // DPC_NET_NETWORK_H_
