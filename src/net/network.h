// Network: message delivery over a Topology driven by the EventQueue.
// Messages are forwarded hop-by-hop along shortest paths; every traversed
// link contributes latency + serialization delay and is charged to the
// bandwidth accounting that the paper's Figures 11 and 15 report.
//
// Delivery is best-effort: the fault-injection API below (uniform or
// per-link loss, links going down/up at a simulated time, node partitions)
// drops traversals. Layer a ReliableTransport (transport.h) on top when a
// workload must survive those faults.
#ifndef DPC_NET_NETWORK_H_
#define DPC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/db/tuple.h"
#include "src/net/event_queue.h"
#include "src/net/topology.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace dpc {

enum class MessageKind : uint8_t {
  kEvent = 0,    // an event tuple propagating through a DELP
  kControl = 1,  // slow-changing-update sig broadcast (§5.5)
  kQuery = 2,    // distributed provenance query traffic
  kAck = 3,      // transport-layer acknowledgement (transport.h)
};

struct Message {
  MessageKind kind = MessageKind::kEvent;
  NodeId src = kNullNode;
  NodeId dst = kNullNode;
  std::vector<uint8_t> payload;

  size_t WireSize() const;
};

// Fixed per-message framing overhead charged on every hop (addresses,
// kind tag, length), mimicking a UDP-style header.
inline constexpr size_t kMessageHeaderBytes = 28;

// Anything that can carry Messages between nodes: the raw (lossy) Network
// or a ReliableTransport layered over it. System and DistributedQuerier
// program against this seam so reliability is a deployment choice.
class MessageChannel {
 public:
  using DeliveryHandler = std::function<void(const Message& msg)>;

  virtual ~MessageChannel() = default;

  // Installs the handler invoked when a message reaches its destination.
  virtual void SetDeliveryHandler(DeliveryHandler handler) = 0;

  // Sends `msg` from msg.src to msg.dst.
  virtual void Send(Message msg) = 0;

  // Unicasts a copy of `msg` from `from` to every *other* node (§5.5 sig).
  // The originator handles the signal synchronously at the send site, so
  // it is not echoed a copy.
  virtual void Broadcast(NodeId from, Message msg) = 0;
};

class Network : public MessageChannel {
 public:
  Network(const Topology* topology, EventQueue* queue);

  void SetDeliveryHandler(DeliveryHandler handler) override {
    handler_ = std::move(handler);
  }

  // Sends `msg` from msg.src to msg.dst. Local sends (src == dst) deliver
  // after `local_delay_s` with no bandwidth charge.
  void Send(Message msg) override;

  void Broadcast(NodeId from, Message msg) override;

  // --- accounting ---
  uint64_t total_bytes_sent() const { return total_bytes_; }
  uint64_t total_messages() const { return total_messages_; }

  // Bytes charged per `bucket` seconds of simulated time since t=0.
  // bandwidth(t) = bucket_bytes[i] / bucket for t in bucket i.
  const std::vector<uint64_t>& bucket_bytes() const { return bucket_bytes_; }
  double bucket_width_s() const { return bucket_width_s_; }
  void set_bucket_width_s(double w) { bucket_width_s_ = w; }

  // Resets counters (not pending traffic).
  void ResetAccounting();

  const Topology* topology() const { return topology_; }

  // Delay before a locally-addressed message is delivered.
  void set_local_delay_s(double d) { local_delay_s_ = d; }

  // --- fault injection -------------------------------------------------
  // All injected faults drop individual link traversals. Local deliveries
  // (src == dst) are never dropped. Dropped traversals are still charged
  // to bandwidth (the bytes were sent) and counted in dropped_messages().

  // Uniform loss: drop each traversal independently with probability
  // `rate` (deterministic given `seed`).
  void SetLossRate(double rate, uint64_t seed = 1);

  // Per-link loss overriding the uniform rate on that link (either
  // direction). Draws come from the same seeded stream as SetLossRate.
  Status SetLinkLossRate(NodeId a, NodeId b, double rate);

  // Takes link (a, b) down / back up. While down, every traversal of the
  // link is dropped; routing is unchanged (the paper's routes are static),
  // so recovery is the transport layer's job.
  Status SetLinkUp(NodeId a, NodeId b, bool up);
  // Same, at simulated time `at`.
  Status ScheduleLinkUp(NodeId a, NodeId b, bool up, SimTime at);

  // Partitions the nodes: a traversal is dropped when its endpoints are in
  // different groups. `group_of_node[n]` is node n's group id; the vector
  // must have one entry per node. An empty vector heals the partition.
  Status SetPartition(std::vector<int> group_of_node);
  void SchedulePartition(std::vector<int> group_of_node, SimTime at);

  uint64_t dropped_messages() const { return dropped_messages_; }

 private:
  void Forward(Message msg, NodeId at);
  void ChargeBytes(double time, size_t bytes);
  // True when fault injection says this traversal never arrives.
  bool TraversalDropped(NodeId at, NodeId next);
  Status CheckLink(NodeId a, NodeId b) const;
  Rng& LossRng();

  const Topology* topology_;
  EventQueue* queue_;
  DeliveryHandler handler_;
  double local_delay_s_ = 1e-6;
  uint64_t total_bytes_ = 0;
  uint64_t total_messages_ = 0;
  double bucket_width_s_ = 1.0;
  std::vector<uint64_t> bucket_bytes_;
  double loss_rate_ = 0;
  uint64_t dropped_messages_ = 0;
  std::unique_ptr<Rng> loss_rng_;
  // Fault state keyed by the (min, max) node pair packed into 64 bits.
  std::unordered_map<uint64_t, double> link_loss_;
  std::unordered_set<uint64_t> links_down_;
  std::vector<int> partition_;  // empty = no partition
};

}  // namespace dpc

#endif  // DPC_NET_NETWORK_H_
