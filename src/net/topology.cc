#include "src/net/topology.h"

#include <algorithm>
#include <deque>

#include "src/util/logging.h"

namespace dpc {

namespace {
uint64_t PackPair(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}
}  // namespace

NodeId Topology::AddNode() {
  adjacency_.emplace_back();
  routes_valid_ = false;
  return static_cast<NodeId>(adjacency_.size() - 1);
}

NodeId Topology::AddNodes(int count) {
  DPC_CHECK(count > 0);
  NodeId first = AddNode();
  for (int i = 1; i < count; ++i) AddNode();
  return first;
}

Status Topology::AddLink(NodeId a, NodeId b, LinkProps props) {
  if (a == b) return Status::InvalidArgument("self link");
  if (a < 0 || b < 0 || a >= num_nodes() || b >= num_nodes()) {
    return Status::InvalidArgument("link endpoint out of range");
  }
  if (HasLink(a, b)) {
    return Status::AlreadyExists("duplicate link");
  }
  link_index_.emplace_back(PackPair(a, b), static_cast<int>(links_.size()));
  std::sort(link_index_.begin(), link_index_.end());
  links_.push_back(StoredLink{a, b, props});
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  routes_valid_ = false;
  return Status::OK();
}

int Topology::LinkIndex(NodeId a, NodeId b) const {
  uint64_t key = PackPair(a, b);
  auto it = std::lower_bound(
      link_index_.begin(), link_index_.end(), key,
      [](const std::pair<uint64_t, int>& e, uint64_t k) { return e.first < k; });
  if (it == link_index_.end() || it->first != key) return -1;
  return it->second;
}

bool Topology::HasLink(NodeId a, NodeId b) const {
  return LinkIndex(a, b) >= 0;
}

const LinkProps& Topology::Link(NodeId a, NodeId b) const {
  int idx = LinkIndex(a, b);
  DPC_CHECK(idx >= 0) << "no link between " << a << " and " << b;
  return links_[idx].props;
}

void Topology::ComputeRoutes() {
  int n = num_nodes();
  dist_.assign(n, std::vector<int>(n, -1));
  next_hop_.assign(n, std::vector<NodeId>(n, kNullNode));
  for (NodeId src = 0; src < n; ++src) {
    // BFS from src; record each node's parent to derive the *first* hop.
    auto& dist = dist_[src];
    std::vector<NodeId> first_hop(n, kNullNode);
    dist[src] = 0;
    std::deque<NodeId> frontier{src};
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      for (NodeId v : adjacency_[u]) {
        if (dist[v] != -1) continue;
        dist[v] = dist[u] + 1;
        first_hop[v] = (u == src) ? v : first_hop[u];
        frontier.push_back(v);
      }
    }
    next_hop_[src] = std::move(first_hop);
  }
  routes_valid_ = true;
}

int Topology::Distance(NodeId from, NodeId to) const {
  DPC_CHECK(routes_valid_) << "call ComputeRoutes() first";
  return dist_[from][to];
}

NodeId Topology::NextHop(NodeId from, NodeId to) const {
  DPC_CHECK(routes_valid_) << "call ComputeRoutes() first";
  if (from == to) return kNullNode;
  return next_hop_[from][to];
}

std::vector<NodeId> Topology::Path(NodeId from, NodeId to) const {
  std::vector<NodeId> path;
  if (Distance(from, to) < 0) return path;
  path.push_back(from);
  NodeId cur = from;
  while (cur != to) {
    cur = NextHop(cur, to);
    DPC_CHECK(cur != kNullNode);
    path.push_back(cur);
  }
  return path;
}

bool Topology::IsConnected() const {
  DPC_CHECK(routes_valid_);
  if (num_nodes() == 0) return true;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (dist_[0][v] < 0) return false;
  }
  return true;
}

int Topology::Diameter() const {
  DPC_CHECK(routes_valid_);
  int d = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v = 0; v < num_nodes(); ++v) {
      d = std::max(d, dist_[u][v]);
    }
  }
  return d;
}

double Topology::AverageDistance() const {
  DPC_CHECK(routes_valid_);
  double sum = 0;
  int64_t count = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (u == v || dist_[u][v] < 0) continue;
      sum += dist_[u][v];
      ++count;
    }
  }
  return count == 0 ? 0 : sum / static_cast<double>(count);
}

double Topology::PathLatency(NodeId from, NodeId to) const {
  std::vector<NodeId> path = Path(from, to);
  double total = 0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    total += Link(path[i], path[i + 1]).latency_s;
  }
  return total;
}

}  // namespace dpc
