// Convenience topology constructors used by tests, examples and property
// sweeps: lines, rings, stars, grids, and random trees, all with uniform
// link properties and routes precomputed.
#ifndef DPC_NET_TOPOLOGY_FACTORY_H_
#define DPC_NET_TOPOLOGY_FACTORY_H_

#include "src/net/topology.h"

namespace dpc {

// n nodes: 0 - 1 - 2 - ... - (n-1).
Topology MakeLineTopology(int n, LinkProps link = {});

// n nodes in a cycle (n >= 3).
Topology MakeRingTopology(int n, LinkProps link = {});

// A hub (node 0) with n-1 spokes.
Topology MakeStarTopology(int n, LinkProps link = {});

// rows x cols mesh; node ids row-major.
Topology MakeGridTopology(int rows, int cols, LinkProps link = {});

// A uniformly random recursive tree over n nodes rooted at 0.
Topology MakeRandomTreeTopology(int n, uint64_t seed, LinkProps link = {});

}  // namespace dpc

#endif  // DPC_NET_TOPOLOGY_FACTORY_H_
