#include "src/net/transit_stub.h"

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace dpc {

TransitStubTopology MakeTransitStub(const TransitStubParams& params) {
  DPC_CHECK(params.num_transit >= 1);
  DPC_CHECK(params.stubs_per_transit >= 1);
  DPC_CHECK(params.nodes_per_stub >= 1);

  TransitStubTopology out;
  Rng rng(params.seed);
  Topology& g = out.graph;

  // Transit core: ring + chords (full mesh for <= 4 transit nodes).
  for (int i = 0; i < params.num_transit; ++i) {
    out.transit_nodes.push_back(g.AddNode());
  }
  int nt = params.num_transit;
  if (nt > 1) {
    for (int i = 0; i < nt; ++i) {
      Status st = g.AddLink(out.transit_nodes[i],
                            out.transit_nodes[(i + 1) % nt],
                            params.transit_transit);
      (void)st;  // ring edge may duplicate for nt == 2
    }
    if (nt <= 4) {
      for (int i = 0; i < nt; ++i) {
        for (int j = i + 2; j < nt; ++j) {
          if (!g.HasLink(out.transit_nodes[i], out.transit_nodes[j])) {
            DPC_CHECK(g.AddLink(out.transit_nodes[i], out.transit_nodes[j],
                                params.transit_transit)
                          .ok());
          }
        }
      }
    }
  }

  // Stub domains.
  for (int t = 0; t < nt; ++t) {
    for (int s = 0; s < params.stubs_per_transit; ++s) {
      std::vector<NodeId> domain;
      for (int k = 0; k < params.nodes_per_stub; ++k) {
        NodeId n = g.AddNode();
        domain.push_back(n);
        out.stub_nodes.push_back(n);
      }
      // Random spanning tree: attach node k to a random earlier node.
      for (int k = 1; k < params.nodes_per_stub; ++k) {
        NodeId parent = domain[rng.NextBelow(static_cast<uint64_t>(k))];
        DPC_CHECK(g.AddLink(domain[k], parent, params.stub_stub).ok());
      }
      // Extra intra-domain edges for path diversity.
      for (int i = 0; i < params.nodes_per_stub; ++i) {
        for (int j = i + 1; j < params.nodes_per_stub; ++j) {
          if (g.HasLink(domain[i], domain[j])) continue;
          if (rng.NextDouble() < params.extra_stub_edge_prob) {
            DPC_CHECK(g.AddLink(domain[i], domain[j], params.stub_stub).ok());
          }
        }
      }
      // Gateway: the domain's first node attaches to the transit node.
      DPC_CHECK(
          g.AddLink(domain[0], out.transit_nodes[t], params.transit_stub)
              .ok());
      out.stub_domains.push_back(std::move(domain));
    }
  }

  g.ComputeRoutes();
  DPC_CHECK(g.IsConnected());
  return out;
}

}  // namespace dpc
