#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dpc {

namespace {

// Bucket index for value `v`: 0 for v <= 1, else 1 + floor(log2(v))
// clamped to the last bucket. Values are observed in their natural unit
// (seconds, bytes, hops); the log2 ladder keeps the range wide.
size_t BucketIndex(double v) {
  if (!(v > 1.0)) return 0;  // also catches NaN and negatives
  int e = static_cast<int>(std::ceil(std::log2(v)));
  if (e < 1) e = 1;
  if (e >= static_cast<int>(Histogram::kBuckets)) {
    return Histogram::kBuckets - 1;
  }
  return static_cast<size_t>(e);
}

double BucketUpperBound(size_t i) {
  return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
}

double QuantileFromBuckets(const std::vector<uint64_t>& buckets,
                           uint64_t count, double q) {
  if (count == 0 || buckets.empty()) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * count));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(buckets.size() - 1);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

// Atomic CAS-add / CAS-min / CAS-max for doubles (atomic<double> has no
// fetch_add in the dialect we target). All relaxed: metrics order does not
// carry data dependencies.
void AtomicAdd(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Counter::~Counter() {
  for (auto& slot : blocks_) {
    delete[] slot.load(std::memory_order_acquire);
  }
}

std::atomic<uint64_t>& Counter::Cell(size_t n) {
  size_t b = BlockIndex(n);
  std::atomic<uint64_t>* block = blocks_[b].load(std::memory_order_acquire);
  if (block == nullptr) {
    MutexLock lock(mu_);
    block = blocks_[b].load(std::memory_order_relaxed);
    if (block == nullptr) {
      // Value-initialized: all cells zero. Published with release so the
      // zeroes are visible to the acquire load above.
      block = new std::atomic<uint64_t>[BlockSize(b)]();
      blocks_[b].store(block, std::memory_order_release);
    }
  }
  return block[n - BlockBase(b)];
}

void Counter::IncrementAt(int32_t node, uint64_t d) {
  if (metrics_internal::TlsPaused()) [[unlikely]] return;
  value_.fetch_add(d, std::memory_order_relaxed);
  if (node < 0) return;
  size_t n = static_cast<size_t>(node);
  Cell(n).fetch_add(d, std::memory_order_relaxed);
  size_t want = n + 1;
  size_t cur = nodes_.load(std::memory_order_relaxed);
  while (cur < want &&
         !nodes_.compare_exchange_weak(cur, want,
                                       std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Counter::per_node() const {
  size_t n = nodes_.load(std::memory_order_acquire);
  std::vector<uint64_t> out(n, 0);
  for (size_t b = 0; b < kMaxBlocks && BlockBase(b) < n; ++b) {
    const std::atomic<uint64_t>* block =
        blocks_[b].load(std::memory_order_acquire);
    if (block == nullptr) continue;
    size_t limit = std::min(BlockSize(b), n - BlockBase(b));
    for (size_t i = 0; i < limit; ++i) {
      out[BlockBase(b) + i] = block[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Counter::Reset() {
  value_.store(0, std::memory_order_relaxed);
  nodes_.store(0, std::memory_order_relaxed);
  for (size_t b = 0; b < kMaxBlocks; ++b) {
    std::atomic<uint64_t>* block = blocks_[b].load(std::memory_order_acquire);
    if (block == nullptr) continue;
    for (size_t i = 0; i < BlockSize(b); ++i) {
      block[i].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Histogram()
    : min_(std::numeric_limits<double>::infinity()) {}

void Histogram::Observe(double v) {
  if (metrics_internal::TlsPaused()) [[unlikely]] return;
  if (std::isnan(v)) return;
  if (v < 0) v = 0;
  AtomicMin(min_, v);
  AtomicMax(max_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::buckets() const {
  std::vector<uint64_t> out(kBuckets, 0);
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  return QuantileFromBuckets(buckets(), count(), q);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double MetricsSnapshot::Hist::Quantile(double q) const {
  return QuantileFromBuckets(buckets, count, q);
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& before) const {
  MetricsSnapshot d;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    uint64_t base = it == before.counters.end() ? 0 : it->second;
    d.counters[name] = value >= base ? value - base : value;
  }
  for (const auto& [name, cells] : counters_per_node) {
    auto it = before.counters_per_node.find(name);
    std::vector<uint64_t> out = cells;
    if (it != before.counters_per_node.end()) {
      for (size_t i = 0; i < out.size() && i < it->second.size(); ++i) {
        if (out[i] >= it->second[i]) out[i] -= it->second[i];
      }
    }
    d.counters_per_node[name] = std::move(out);
  }
  d.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    auto it = before.histograms.find(name);
    Hist out = h;
    if (it != before.histograms.end()) {
      const Hist& b = it->second;
      if (out.count >= b.count) out.count -= b.count;
      out.sum -= b.sum;
      for (size_t i = 0; i < out.buckets.size() && i < b.buckets.size();
           ++i) {
        if (out.buckets[i] >= b.buckets[i]) out.buckets[i] -= b.buckets[i];
      }
    }
    d.histograms[name] = std::move(out);
  }
  return d;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name;
    out += " ";
    out += std::to_string(value);
    out += "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name;
    out += " ";
    out += FormatDouble(value);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name;
    out += " count=" + std::to_string(h.count);
    out += " mean=" + FormatDouble(h.mean());
    out += " p50<=" + FormatDouble(h.Quantile(0.5));
    out += " p99<=" + FormatDouble(h.Quantile(0.99));
    out += " max=" + FormatDouble(h.max);
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + std::to_string(value);
  }
  out += "}, \"counters_per_node\": {";
  first = true;
  for (const auto& [name, cells] : counters_per_node) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": [";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(cells[i]);
    }
    out += "]";
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": " + FormatDouble(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(out, name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    out += ", \"mean\": " + FormatDouble(h.mean());
    out += ", \"min\": " + FormatDouble(h.min);
    out += ", \"max\": " + FormatDouble(h.max);
    out += ", \"p50\": " + FormatDouble(h.Quantile(0.5));
    out += ", \"p90\": " + FormatDouble(h.Quantile(0.9));
    out += ", \"p99\": " + FormatDouble(h.Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) {
    s.counters[name] = c->value();
    std::vector<uint64_t> cells = c->per_node();
    if (!cells.empty()) s.counters_per_node[name] = std::move(cells);
  }
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist out;
    out.count = h->count();
    out.sum = h->sum();
    out.min = h->min();
    out.max = h->max();
    out.buckets = h->buckets();
    s.histograms[name] = std::move(out);
  }
  return s;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dpc
