// Tracer: a low-overhead in-memory recorder of spans and instants over
// *simulated* time, exported in Chrome-trace / Perfetto JSON.
//
// Tracing is compiled in but off by default. Every instrumentation site
// guards with `if (Trace().enabled())` — the disabled hot path costs one
// predictable branch on a plain bool (verified by bench/hotpath_bench's
// queue_dispatch case). When enabled, events append to a bounded buffer;
// overflow drops further events and counts them, never reallocating the
// simulation into a stall.
//
// Timestamps come from the discrete-event clock through the installed
// clock callback, so a trace lines up with the latencies the paper's
// figures report. Within one simulated instant a handler does not advance
// the sim clock, so synchronous spans (rule firings, recorder
// maintenance) are zero-duration slices positioned at their sim time,
// carrying the measured wall-clock cost in a "wall_us" arg. Operations
// that do span simulated time — a transport frame in flight, a
// distributed query, its per-hop chain steps — are async begin/end pairs
// keyed by id. See docs/observability.md for the span taxonomy and how
// to open exports in Perfetto.
//
// Thread-safety: enabled() is a relaxed atomic load (still the one
// predictable branch at every instrumentation site); the buffer, clock,
// bound and dropped counter are guarded by an internal mutex, so shard
// threads may record concurrently and events interleave whole, never
// torn. Inspection copies the buffer out under the lock — see
// docs/concurrency.md for the full contract.
#ifndef DPC_OBS_TRACE_H_
#define DPC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/util/status.h"
#include "src/util/thread_annotations.h"

namespace dpc {

// Matches src/db/tuple.h (obs deliberately depends only on util).
using NodeId = int32_t;

// One track per category under each node's process row in Perfetto.
enum class TraceCat : uint8_t {
  kQueue = 0,      // event-queue dispatch
  kRule = 1,       // rule firings (planned evaluation)
  kRecorder = 2,   // provenance-maintenance hooks
  kNetwork = 3,    // raw network (drops)
  kTransport = 4,  // reliable-transport frames / retransmits / acks
  kQuery = 5,      // distributed provenance queries
  kShard = 6,      // shard-engine windows / barriers (shard_engine.h)
  kBatch = 7,      // set-at-a-time batch plan executions (batch_eval.h)
};

const char* TraceCatName(TraceCat cat);

struct TraceEvent {
  std::string name;
  // Pre-rendered JSON object *interior* (e.g. "\"rows\": 3"), or empty.
  std::string args;
  double ts = 0;   // simulated seconds
  double dur = 0;  // simulated seconds ('X' events)
  uint64_t id = 0; // async pair key ('b'/'e' events)
  NodeId node = -1;  // -1 = the simulator process itself
  TraceCat cat = TraceCat::kQueue;
  char phase = 'i';  // 'X' complete, 'i' instant, 'b'/'e' async begin/end
};

class Tracer {
 public:
  // The one-branch guard every instrumentation site checks first.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Starts recording. `clock` supplies the simulated time for events that
  // do not pass one explicitly (recorders, transport); bind it to the
  // deployment's EventQueue. Clears any previous buffer.
  void Enable(std::function<double()> clock, size_t max_events = 2000000)
      DPC_EXCLUDES(mu_);
  // Stops recording and drops the clock (which may dangle afterwards);
  // the buffered events stay readable/exportable until the next Enable.
  void Disable() DPC_EXCLUDES(mu_);
  void Clear() DPC_EXCLUDES(mu_);

  double now() const DPC_EXCLUDES(mu_);

  // --- recording (call only when enabled()) ---------------------------

  // Zero-duration slice at sim time `ts` (pass now() when at hand).
  void CompleteAt(NodeId node, TraceCat cat, std::string name, double ts,
                  std::string args = {}) DPC_EXCLUDES(mu_);
  // Marker at the current sim time.
  void Instant(NodeId node, TraceCat cat, std::string name,
               std::string args = {}) DPC_EXCLUDES(mu_);
  // Async span over simulated time, keyed by (cat, id).
  void AsyncBegin(NodeId node, TraceCat cat, std::string name, uint64_t id,
                  std::string args = {}) DPC_EXCLUDES(mu_);
  void AsyncEnd(NodeId node, TraceCat cat, std::string name, uint64_t id,
                std::string args = {}) DPC_EXCLUDES(mu_);

  // --- inspection / export --------------------------------------------

  // A copy of the buffer (stable even while recording continues).
  std::vector<TraceEvent> events() const DPC_EXCLUDES(mu_);
  size_t event_count() const DPC_EXCLUDES(mu_);
  uint64_t dropped_events() const DPC_EXCLUDES(mu_);

  // Chrome-trace JSON ({"traceEvents": [...]}; open in ui.perfetto.dev
  // or chrome://tracing). Timestamps are exported in microseconds of
  // simulated time, in recording order (monotonically non-decreasing).
  // Renders from a copy taken under the lock.
  std::string ToChromeJson() const DPC_EXCLUDES(mu_);
  Status WriteChromeJson(const std::string& path) const DPC_EXCLUDES(mu_);

 private:
  void PushLocked(TraceEvent ev) DPC_REQUIRES(mu_);
  double NowLocked() const DPC_REQUIRES(mu_);

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::function<double()> clock_ DPC_GUARDED_BY(mu_);
  size_t max_events_ DPC_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ DPC_GUARDED_BY(mu_) = 0;
  std::vector<TraceEvent> events_ DPC_GUARDED_BY(mu_);
};

// The process-wide tracer (same pattern as GlobalMetrics). Named Trace()
// for brevity at the many guard sites.
Tracer& Trace();

}  // namespace dpc

#endif  // DPC_OBS_TRACE_H_
