#include "src/obs/trace.h"

#include <cstdio>
#include <fstream>

namespace dpc {

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FormatMicros(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

const char* TraceCatName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kQueue: return "queue";
    case TraceCat::kRule: return "rule";
    case TraceCat::kRecorder: return "recorder";
    case TraceCat::kNetwork: return "network";
    case TraceCat::kTransport: return "transport";
    case TraceCat::kQuery: return "query";
    case TraceCat::kShard: return "shard";
    case TraceCat::kBatch: return "batch";
  }
  return "?";
}

void Tracer::Enable(std::function<double()> clock, size_t max_events) {
  MutexLock lock(mu_);
  clock_ = std::move(clock);
  max_events_ = max_events;
  events_.clear();
  dropped_ = 0;
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  MutexLock lock(mu_);
  enabled_.store(false, std::memory_order_release);
  clock_ = nullptr;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

double Tracer::NowLocked() const { return clock_ ? clock_() : 0.0; }

double Tracer::now() const {
  MutexLock lock(mu_);
  return NowLocked();
}

void Tracer::PushLocked(TraceEvent ev) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::CompleteAt(NodeId node, TraceCat cat, std::string name,
                        double ts, std::string args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.ts = ts;
  ev.node = node;
  ev.cat = cat;
  ev.phase = 'X';
  MutexLock lock(mu_);
  PushLocked(std::move(ev));
}

void Tracer::Instant(NodeId node, TraceCat cat, std::string name,
                     std::string args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.node = node;
  ev.cat = cat;
  ev.phase = 'i';
  MutexLock lock(mu_);
  ev.ts = NowLocked();
  PushLocked(std::move(ev));
}

void Tracer::AsyncBegin(NodeId node, TraceCat cat, std::string name,
                        uint64_t id, std::string args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.id = id;
  ev.node = node;
  ev.cat = cat;
  ev.phase = 'b';
  MutexLock lock(mu_);
  ev.ts = NowLocked();
  PushLocked(std::move(ev));
}

void Tracer::AsyncEnd(NodeId node, TraceCat cat, std::string name,
                      uint64_t id, std::string args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.args = std::move(args);
  ev.id = id;
  ev.node = node;
  ev.cat = cat;
  ev.phase = 'e';
  MutexLock lock(mu_);
  ev.ts = NowLocked();
  PushLocked(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  MutexLock lock(mu_);
  return events_;
}

size_t Tracer::event_count() const {
  MutexLock lock(mu_);
  return events_.size();
}

uint64_t Tracer::dropped_events() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  {
    MutexLock lock(mu_);
    events = events_;
    dropped = dropped_;
  }
  // pid 0 is the simulator itself (node -1); node N maps to pid N + 1.
  // tid is the category track within the node's process row.
  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  auto emit_meta = [&](int pid, int tid, const char* meta,
                       const std::string& value) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"";
    out += meta;
    out += "\", \"ph\": \"M\", \"pid\": " + std::to_string(pid);
    if (tid >= 0) out += ", \"tid\": " + std::to_string(tid);
    out += ", \"args\": {\"name\": \"";
    AppendEscaped(out, value);
    out += "\"}}";
  };

  // Emit process/thread names only for (node, cat) pairs that appear.
  std::vector<uint64_t> seen;  // packed (pid << 8) | tid
  auto mark_seen = [&](int pid, int tid) {
    uint64_t key = (static_cast<uint64_t>(pid) << 8) |
                   static_cast<uint64_t>(tid);
    for (uint64_t s : seen) {
      if (s == key) return false;
    }
    seen.push_back(key);
    return true;
  };
  for (const TraceEvent& ev : events) {
    int pid = ev.node + 1;
    int tid = static_cast<int>(ev.cat);
    if (mark_seen(pid, tid)) {
      emit_meta(pid, -1,
                "process_name",
                pid == 0 ? std::string("simulator")
                         : "node " + std::to_string(ev.node));
      emit_meta(pid, tid, "thread_name", TraceCatName(ev.cat));
    }
  }

  for (const TraceEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"";
    AppendEscaped(out, ev.name);
    out += "\", \"cat\": \"";
    out += TraceCatName(ev.cat);
    out += "\", \"ph\": \"";
    out += ev.phase;
    out += "\", \"ts\": " + FormatMicros(ev.ts);
    if (ev.phase == 'X') {
      out += ", \"dur\": " + FormatMicros(ev.dur);
    }
    if (ev.phase == 'b' || ev.phase == 'e') {
      out += ", \"id\": \"" + std::to_string(ev.id) + "\"";
    }
    if (ev.phase == 'i') {
      out += ", \"s\": \"t\"";
    }
    out += ", \"pid\": " + std::to_string(ev.node + 1);
    out += ", \"tid\": " + std::to_string(static_cast<int>(ev.cat));
    if (!ev.args.empty()) {
      out += ", \"args\": {" + ev.args + "}";
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
         "{\"clock\": \"simulated\", \"dropped_events\": \"" +
         std::to_string(dropped) + "\"}}\n";
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot write trace to " + path);
  std::string json = ToChromeJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Tracer& Trace() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace dpc
