// MetricsRegistry: process-wide named counters, gauges and histograms —
// the generalization of the tuple-identity counters in src/util/perf.h to
// every subsystem (runtime, recorders, transport, distributed queries).
//
// The simulator is single-threaded, so metrics are plain variables behind
// stable references: a hot path looks its Counter up once (by name, a map
// probe) and then increments through the cached pointer. Counters are
// monotone and meant to be read as deltas — snapshot before a measurement
// window, subtract after (MetricsSnapshot::Delta), exactly like
// IdentityCounters.
//
// Per-node scoping: Counter::IncrementAt(node, d) bumps the process total
// and a per-node cell, so experiment summaries can show where the work
// happened without a separate registry per node.
//
// Naming convention: "<subsystem>.<what>" in snake_case, e.g.
// "transport.retransmissions", "query.duplicate_responses". The full list
// lives in docs/observability.md.
#ifndef DPC_OBS_METRICS_H_
#define DPC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dpc {

class Counter {
 public:
  void Increment(uint64_t d = 1) { value_ += d; }
  // Bumps the total and the per-node cell (the vector grows on demand;
  // node < 0 is treated as process-scoped and only bumps the total).
  void IncrementAt(int32_t node, uint64_t d = 1) {
    value_ += d;
    if (node < 0) return;
    if (per_node_.size() <= static_cast<size_t>(node)) {
      per_node_.resize(static_cast<size_t>(node) + 1, 0);
    }
    per_node_[static_cast<size_t>(node)] += d;
  }

  uint64_t value() const { return value_; }
  const std::vector<uint64_t>& per_node() const { return per_node_; }
  void Reset() {
    value_ = 0;
    per_node_.clear();
  }

 private:
  uint64_t value_ = 0;
  std::vector<uint64_t> per_node_;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  double value_ = 0;
};

// Histogram over non-negative values with power-of-two bucket boundaries:
// bucket i counts observations in (2^(i-1), 2^i] scaled by `scale`
// (bucket 0 is [0, scale]). Coarse, allocation-free per observation, and
// good enough for latency / size distributions in a simulator.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  // Upper bound of the bucket holding quantile `q` in [0, 1]: an
  // upper estimate of the true quantile.
  double Quantile(double q) const;
  void Reset();

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<uint64_t> buckets_ = std::vector<uint64_t>(kBuckets, 0);
};

// A point-in-time copy of every metric, detached from the registry.
// Counter values (totals, per-node cells, histogram counts/sums/buckets)
// subtract cleanly via Delta; gauges keep the later value.
struct MetricsSnapshot {
  struct Hist {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<uint64_t> buckets;

    double mean() const { return count == 0 ? 0 : sum / count; }
    double Quantile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  // Only counters that were ever incremented with IncrementAt appear here.
  std::map<std::string, std::vector<uint64_t>> counters_per_node;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;

  // This snapshot minus `before`: the activity inside a measurement
  // window. Histogram min/max are window-approximate (taken from the
  // later snapshot); gauges are carried over unchanged.
  MetricsSnapshot Delta(const MetricsSnapshot& before) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Sorted "name value" lines (the dpc_cli --stats rendering).
  std::string ToText() const;
  // A JSON object: {"counters": {...}, "gauges": {...}, ...}.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // References are stable for the registry's lifetime: hot paths resolve
  // once and cache the pointer.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  // Zeroes every metric (the objects stay registered: cached pointers
  // remain valid).
  void Reset();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry every subsystem records into.
MetricsRegistry& GlobalMetrics();

}  // namespace dpc

#endif  // DPC_OBS_METRICS_H_
