// MetricsRegistry: process-wide named counters, gauges and histograms —
// the generalization of the tuple-identity counters in src/util/perf.h to
// every subsystem (runtime, recorders, transport, distributed queries).
//
// Thread-safety model: registration (GetCounter/GetGauge/GetHistogram) and
// whole-registry operations (Snapshot/Reset) take the registry mutex, but
// the metric objects themselves are lock-free — a hot path looks its
// Counter up once (by name, a map probe under the lock) and then
// increments through the cached pointer with a relaxed atomic add, never
// touching the registry again. References are stable for the registry's
// lifetime, so cached pointers stay valid across Snapshot/Reset and may be
// shared by any number of shard threads.
//
// Counters are monotone and meant to be read as deltas — snapshot before a
// measurement window, subtract after (MetricsSnapshot::Delta), exactly
// like IdentityCounters.
//
// Per-node scoping: Counter::IncrementAt(node, d) bumps the process total
// and a per-node cell, so experiment summaries can show where the work
// happened without a separate registry per node. The cells live in chained
// fixed-position blocks (block i holds 64<<i cells) that are allocated on
// demand and never move, so concurrent IncrementAt calls are plain atomic
// adds even while the logical node range is growing.
//
// Naming convention: "<subsystem>.<what>" in snake_case, e.g.
// "transport.retransmissions", "query.duplicate_responses". The full list
// lives in docs/observability.md.
#ifndef DPC_OBS_METRICS_H_
#define DPC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/thread_annotations.h"

namespace dpc {

namespace metrics_internal {
// True while a MetricsPauseGuard is live on this thread: metric mutations
// become no-ops so replayed work (WAL recovery) is not counted twice.
// A function-local slot (constant-initialized, no init guard) rather than
// an extern thread_local: cross-TU extern TLS goes through the wrapper
// call, which GCC's -fsanitize=null flags as a possibly-null access.
inline bool& TlsPaused() {
  static thread_local bool paused = false;
  return paused;
}
}  // namespace metrics_internal

// Suppresses Counter/Histogram mutations from the constructing thread for
// the guard's lifetime. WAL replay drives the recorder hooks — the same
// code that bumped recorder.* metrics during the original run — and a
// recovered process must not report that work again. Nestable.
class MetricsPauseGuard {
 public:
  MetricsPauseGuard() : prev_(metrics_internal::TlsPaused()) {
    metrics_internal::TlsPaused() = true;
  }
  ~MetricsPauseGuard() { metrics_internal::TlsPaused() = prev_; }
  MetricsPauseGuard(const MetricsPauseGuard&) = delete;
  MetricsPauseGuard& operator=(const MetricsPauseGuard&) = delete;

 private:
  bool prev_;
};

class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;
  ~Counter();

  void Increment(uint64_t d = 1) {
    if (metrics_internal::TlsPaused()) [[unlikely]] return;
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  // Bumps the total and the per-node cell (cell blocks are allocated on
  // demand; node < 0 is treated as process-scoped and only bumps the
  // total).
  void IncrementAt(int32_t node, uint64_t d = 1) DPC_EXCLUDES(mu_);

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  // Snapshot of the per-node cells, sized to the highest node ever
  // incremented plus one (empty if IncrementAt was never called).
  std::vector<uint64_t> per_node() const;
  void Reset() DPC_EXCLUDES(mu_);

 private:
  // Cell blocks: block b holds 64<<b cells and covers global node indices
  // [64*(2^b - 1), 64*(2^(b+1) - 1)). For a node n the block index is
  // bit_width((n>>6) + 1) - 1. int32_t node ids need at most 26 blocks.
  static constexpr size_t kBlockBits = 6;  // first block: 64 cells
  static constexpr size_t kMaxBlocks = 26;

  static size_t BlockIndex(size_t n) {
    return std::bit_width((n >> kBlockBits) + 1) - 1;
  }
  static size_t BlockBase(size_t b) {
    return ((size_t{1} << b) - 1) << kBlockBits;
  }
  static size_t BlockSize(size_t b) { return size_t{1} << (kBlockBits + b); }

  // Returns the cell for node index `n`, allocating its block if needed.
  std::atomic<uint64_t>& Cell(size_t n) DPC_EXCLUDES(mu_);

  std::atomic<uint64_t> value_{0};
  // Acquire-loaded by readers/incrementers; allocation is serialized by
  // mu_ and published with a release store. Blocks never move or shrink.
  std::array<std::atomic<std::atomic<uint64_t>*>, kMaxBlocks> blocks_{};
  // Logical per-node size: max(node)+1 over all IncrementAt calls,
  // maintained with a CAS-max.
  std::atomic<size_t> nodes_{0};
  Mutex mu_;  // serializes block allocation only
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Histogram over non-negative values with power-of-two bucket boundaries:
// bucket i counts observations in (2^(i-1), 2^i] scaled by `scale`
// (bucket 0 is [0, scale]). Coarse, allocation-free per observation, and
// good enough for latency / size distributions in a simulator. Observe is
// lock-free (atomic bucket/count adds, CAS loops for sum/min/max);
// concurrent readers see each observation's fields tear-free but a reader
// racing a writer may see count/sum/buckets at slightly different points
// in time — snapshot between measurement phases for exact totals.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  Histogram();

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0 : sum() / n;
  }
  std::vector<uint64_t> buckets() const;
  // Upper bound of the bucket holding quantile `q` in [0, 1]: an
  // upper estimate of the true quantile.
  double Quantile(double q) const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  // +infinity until the first observation; min() maps "no data" to 0.
  std::atomic<double> min_;
  std::atomic<double> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

// A point-in-time copy of every metric, detached from the registry.
// Counter values (totals, per-node cells, histogram counts/sums/buckets)
// subtract cleanly via Delta; gauges keep the later value.
struct MetricsSnapshot {
  struct Hist {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::vector<uint64_t> buckets;

    double mean() const { return count == 0 ? 0 : sum / count; }
    double Quantile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  // Only counters that were ever incremented with IncrementAt appear here.
  std::map<std::string, std::vector<uint64_t>> counters_per_node;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;

  // This snapshot minus `before`: the activity inside a measurement
  // window. Histogram min/max are window-approximate (taken from the
  // later snapshot); gauges are carried over unchanged.
  MetricsSnapshot Delta(const MetricsSnapshot& before) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Sorted "name value" lines (the dpc_cli --stats rendering).
  std::string ToText() const;
  // A JSON object: {"counters": {...}, "gauges": {...}, ...}.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  // References are stable for the registry's lifetime: hot paths resolve
  // once and cache the pointer, then mutate lock-free.
  Counter& GetCounter(const std::string& name) DPC_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) DPC_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) DPC_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const DPC_EXCLUDES(mu_);
  // Zeroes every metric (the objects stay registered: cached pointers
  // remain valid).
  void Reset() DPC_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DPC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DPC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DPC_GUARDED_BY(mu_);
};

// The process-wide registry every subsystem records into.
MetricsRegistry& GlobalMetrics();

}  // namespace dpc

#endif  // DPC_OBS_METRICS_H_
