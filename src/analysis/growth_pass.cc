// Pass 8: derivation-boundedness certification (W801, N802, N803, N804,
// E804).
//
// A DELP is recursive when its predicate-level trigger graph has a cycle
// (forwarding's packet -> packet, DNS's request -> request): an injected
// event can re-derive an event relation already on its chain, and without
// a bound the recorders' provenance tables grow forever. The pass tries
// three proofs per cycle, strongest first:
//
//   decreasing-arg   some integer argument position is non-increasing
//                    through every cycle rule, strictly decreases through
//                    at least one (H := V - c via the pass-4 folding
//                    machinery), and a cycle rule guards it from below
//                    (V > 0). TTL-style recursion: at most (initial /
//                    decrement) traversals.                        N802
//   finite-support   every head attribute of every cycle rule is drawn
//                    from slow-changing state, a constant, or preserved
//                    from the event; the derivable-event set of one
//                    injection is then a subset of a finite product, and
//                    the content-deduplicated provenance tables (prov /
//                    rule_exec / tuple stores key rows by content) stop
//                    growing once it saturates.                    N802
//   topology         every cycle rule relocates to a destination read
//                    from a slow-changing condition atom: each traversal
//                    consumes an edge of the slow-state location graph,
//                    so the hop count is bounded whenever that graph is
//                    acyclic (forwarding routes, DNS delegation).
//                    Conditional certification.                    N803
//
// A cycle rule whose head is its event atom verbatim re-fires identically
// forever once it fires at all (conditions are slow-changing, constraints
// deterministic): provably divergent, E804. Cycles with no proof get W801
// with the cycle path. Programs whose cycles are all certified — or with
// no cycles — get an N804 certification note carrying the maximum
// derivation chain depth.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/passes.h"
#include "src/analysis/trigger_graph.h"
#include "src/core/dependency_graph.h"
#include "src/core/equivalence_keys.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/functions.h"

namespace dpc {
namespace analysis_internal {

namespace {

// Folds a variable-free expression to an integer (pass-4 machinery); no
// value when the expression mentions variables, calls unknown functions,
// or folds to a non-integer.
bool FoldToInt(const ExprPtr& e, int64_t* out) {
  std::vector<std::string> vars;
  e->CollectVars(vars);
  if (!vars.empty()) return false;
  Result<Value> v = EvalExpr(*e, Bindings{}, FunctionRegistry{});
  if (!v.ok() || !v->is_int()) return false;
  *out = v->AsInt();
  return true;
}

const Assignment* FindAssignment(const Rule& rule, const std::string& var) {
  for (const Assignment& asn : rule.assignments) {
    if (asn.var == var) return &asn;
  }
  return nullptr;
}

bool VarInAtom(const Atom& atom, const std::string& var) {
  for (const Term& t : atom.args) {
    if (t.is_var() && t.var == var) return true;
  }
  return false;
}

bool VarInConditions(const Rule& rule, const std::string& var) {
  for (const Atom* cond : rule.ConditionAtoms()) {
    if (VarInAtom(*cond, var)) return true;
  }
  return false;
}

// --- proof: identity self-loop (E804) --------------------------------

bool SameTerm(const Term& a, const Term& b) {
  if (a.is_var() != b.is_var()) return false;
  return a.is_var() ? a.var == b.var : a.constant == b.constant;
}

// head == event atom verbatim: the derived event is content-identical to
// the triggering one, so if the rule fires once it re-fires forever (its
// conditions are slow-changing and its constraints deterministic).
bool IsIdentitySelfLoop(const Rule& rule) {
  const Atom& event = rule.EventAtom();
  if (rule.head.relation != event.relation) return false;
  if (rule.head.args.size() != event.args.size()) return false;
  for (size_t i = 0; i < event.args.size(); ++i) {
    if (!SameTerm(rule.head.args[i], event.args[i])) return false;
  }
  return true;
}

// --- proof: strictly-decreasing guarded integer argument (N802) ------

// Delta of head position `pos` relative to event position `pos` through
// `rule`: 0 when preserved verbatim, +c for H := V - c (c folded from a
// variable-free subexpression), no value otherwise.
bool ArgDelta(const Rule& rule, size_t pos, int64_t* delta) {
  const Atom& event = rule.EventAtom();
  if (pos >= event.args.size() || pos >= rule.head.args.size()) return false;
  const Term& ev = event.args[pos];
  const Term& hd = rule.head.args[pos];
  if (!ev.is_var() || !hd.is_var()) return false;
  if (hd.var == ev.var) {
    *delta = 0;
    return true;
  }
  const Assignment* asn = FindAssignment(rule, hd.var);
  if (asn == nullptr || asn->expr->kind != Expr::Kind::kBinary) return false;
  const Expr& e = *asn->expr;
  int64_t c = 0;
  if (e.op == Expr::Op::kSub && e.lhs->kind == Expr::Kind::kVar &&
      e.lhs->var == ev.var && FoldToInt(e.rhs, &c)) {
    *delta = c;
    return true;
  }
  if (e.op == Expr::Op::kAdd) {
    if (e.lhs->kind == Expr::Kind::kVar && e.lhs->var == ev.var &&
        FoldToInt(e.rhs, &c)) {
      *delta = -c;
      return true;
    }
    if (e.rhs->kind == Expr::Kind::kVar && e.rhs->var == ev.var &&
        FoldToInt(e.lhs, &c)) {
      *delta = -c;
      return true;
    }
  }
  return false;
}

// A constraint bounding `var` from below: var > c, var >= c, c < var,
// c <= var, with c variable-free.
bool HasLowerBoundGuard(const Rule& rule, const std::string& var) {
  for (const Constraint& cons : rule.constraints) {
    if (cons.expr->kind != Expr::Kind::kBinary) continue;
    const Expr& e = *cons.expr;
    int64_t c = 0;
    if ((e.op == Expr::Op::kGt || e.op == Expr::Op::kGe) &&
        e.lhs->kind == Expr::Kind::kVar && e.lhs->var == var &&
        FoldToInt(e.rhs, &c)) {
      return true;
    }
    if ((e.op == Expr::Op::kLt || e.op == Expr::Op::kLe) &&
        e.rhs->kind == Expr::Kind::kVar && e.rhs->var == var &&
        FoldToInt(e.lhs, &c)) {
      return true;
    }
  }
  return false;
}

// Tries the decreasing-argument proof over `cycle_rules`. On success
// fills `detail` with the witness position and guard.
bool ProveDecreasingArg(const std::vector<const Rule*>& cycle_rules,
                        std::string* detail) {
  if (cycle_rules.empty()) return false;
  size_t max_pos = cycle_rules.front()->EventAtom().args.size();
  for (const Rule* rule : cycle_rules) {
    max_pos = std::min(max_pos, rule->EventAtom().args.size());
    max_pos = std::min(max_pos, rule->head.args.size());
  }
  for (size_t pos = 0; pos < max_pos; ++pos) {
    int64_t total = 0;
    bool ok = true;
    bool guarded = false;
    const Rule* strict = nullptr;
    for (const Rule* rule : cycle_rules) {
      int64_t delta = 0;
      if (!ArgDelta(*rule, pos, &delta) || delta < 0) {
        ok = false;
        break;
      }
      if (delta > 0 && strict == nullptr) strict = rule;
      total += delta;
      const Term& ev = rule->EventAtom().args[pos];
      if (ev.is_var() && HasLowerBoundGuard(*rule, ev.var)) guarded = true;
    }
    if (!ok || total <= 0 || !guarded) continue;
    *detail = "argument " + std::to_string(pos) + " of " +
              strict->EventAtom().relation +
              " strictly decreases through rule " + strict->id +
              " (total decrement " + std::to_string(total) +
              " per traversal) and is guarded from below";
    return true;
  }
  return false;
}

// --- proof: finite derivable-event support (N802) --------------------

// Classification of where a head argument's value can come from.
enum class ArgSource {
  kFinite,    // constant, slow-changing state, or a function of those
  kEventPos,  // preserved from an event argument position
  kInfinite,  // event-payload arithmetic: unbounded across traversals
};

ArgSource ClassifyVar(const Rule& rule, const std::string& var,
                      size_t* event_pos);

// An expression is finitely sourced when every variable it mentions is;
// event-position copies inside arithmetic are conservatively infinite
// (only verbatim preservation keeps a value invariant over traversals).
ArgSource ClassifyExpr(const Rule& rule, const ExprPtr& expr,
                       size_t* event_pos) {
  if (expr->kind == Expr::Kind::kConst) return ArgSource::kFinite;
  if (expr->kind == Expr::Kind::kVar) {
    return ClassifyVar(rule, expr->var, event_pos);
  }
  std::vector<std::string> vars;
  expr->CollectVars(vars);
  for (const std::string& v : vars) {
    size_t ignored = 0;
    if (ClassifyVar(rule, v, &ignored) != ArgSource::kFinite) {
      return ArgSource::kInfinite;
    }
  }
  return ArgSource::kFinite;
}

ArgSource ClassifyVar(const Rule& rule, const std::string& var,
                      size_t* event_pos) {
  if (VarInConditions(rule, var)) return ArgSource::kFinite;
  const Atom& event = rule.EventAtom();
  for (size_t i = 0; i < event.args.size(); ++i) {
    if (event.args[i].is_var() && event.args[i].var == var) {
      *event_pos = i;
      return ArgSource::kEventPos;
    }
  }
  if (const Assignment* asn = FindAssignment(rule, var)) {
    return ClassifyExpr(rule, asn->expr, event_pos);
  }
  return ArgSource::kInfinite;  // unbound: rejected elsewhere (E106)
}

// Greatest-fixpoint finiteness of every (cycle relation, position): start
// all finite, demote positions fed by event-payload arithmetic or by
// already-infinite positions, iterate to stability. All-finite means the
// derivable-event set of one injection is a subset of
// (slow projections x constants x injected values): finite, so the
// content-deduplicated provenance tables saturate.
bool ProveFiniteSupport(const std::vector<const Rule*>& cycle_rules,
                        const std::set<std::string>& cycle_relations,
                        std::string* detail) {
  std::map<std::pair<std::string, size_t>, bool> finite;
  for (const Rule* rule : cycle_rules) {
    for (size_t j = 0; j < rule->head.args.size(); ++j) {
      finite[{rule->head.relation, j}] = true;
    }
    for (size_t j = 0; j < rule->EventAtom().args.size(); ++j) {
      finite[{rule->EventAtom().relation, j}] = true;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule* rule : cycle_rules) {
      for (size_t j = 0; j < rule->head.args.size(); ++j) {
        auto& slot = finite[{rule->head.relation, j}];
        if (!slot) continue;
        const Term& t = rule->head.args[j];
        if (!t.is_var()) continue;
        size_t pos = 0;
        ArgSource src = ClassifyVar(*rule, t.var, &pos);
        bool still_finite =
            src == ArgSource::kFinite ||
            (src == ArgSource::kEventPos &&
             finite[{rule->EventAtom().relation, pos}]);
        if (src == ArgSource::kInfinite) still_finite = false;
        if (!still_finite) {
          slot = false;
          changed = true;
        }
      }
    }
  }
  for (const auto& [key, is_finite] : finite) {
    if (cycle_relations.count(key.first) > 0 && !is_finite) return false;
  }
  *detail =
      "every cycle-head attribute is a constant, read from slow-changing "
      "state, or preserved from the event: the derivable-event set of one "
      "injection is finite and the content-deduplicated provenance tables "
      "saturate";
  return true;
}

// --- proof: topology consumption (N803, conditional) -----------------

// Every cycle rule relocates (head location term differs from the
// event's) to a variable read from a slow-changing condition atom: each
// traversal consumes one edge of the slow-state location graph.
bool Relocates(const Rule& rule) {
  if (rule.head.args.empty() || rule.EventAtom().args.empty()) return false;
  return !SameTerm(rule.head.args[0], rule.EventAtom().args[0]);
}

bool ProveTopology(const std::vector<const Rule*>& cycle_rules,
                   std::string* detail) {
  for (const Rule* rule : cycle_rules) {
    if (!Relocates(*rule)) return false;
    if (rule->head.args.empty()) return false;
    const Term& dest = rule->head.args[0];
    if (!dest.is_var() || !VarInConditions(*rule, dest.var)) return false;
  }
  *detail =
      "every cycle traversal relocates to a destination read from "
      "slow-changing state, consuming one edge of the slow-state location "
      "graph; bounded whenever that graph is acyclic";
  return true;
}

}  // namespace

void RunGrowthPass(const std::vector<Rule>& rules, const Program* program,
                   bool emit_notes, std::vector<Diagnostic>& out,
                   GrowthReport* report) {
  if (rules.empty()) return;
  TriggerGraph graph = TriggerGraph::Build(rules);

  GrowthReport local;
  GrowthReport& rep = report != nullptr ? *report : local;
  rep.analyzed = true;

  // Longest derivation chain, one pass in rule order (the DELP chain
  // convention): each rule extends the chain of its event relation.
  std::map<std::string, size_t> rel_depth;
  rel_depth[rules.front().EventAtom().relation] = 0;
  for (const Rule& rule : rules) {
    if (rule.atoms.empty()) continue;
    auto it = rel_depth.find(rule.EventAtom().relation);
    if (it == rel_depth.end()) continue;
    size_t d = it->second + 1;
    auto [slot, inserted] = rel_depth.emplace(rule.head.relation, d);
    if (!inserted && d > slot->second) slot->second = d;
    rep.max_chain_depth = std::max(rep.max_chain_depth, d);
  }

  // Pass-7-style keyed-destination detail for N803 (best effort; the
  // proof itself needs only the rule shapes).
  auto keyed_destination = [&](const Rule& rule) {
    if (program == nullptr || rule.head.args.empty() ||
        !rule.head.args[0].is_var()) {
      return false;
    }
    DependencyGraph dep = DependencyGraph::Build(*program);
    auto keys = ComputeEquivalenceKeys(*program, dep);
    if (!keys.ok()) return false;
    AttrNode head_loc{rule.head.relation, 0};
    for (size_t k : keys->indices()) {
      if (dep.Reachable(AttrNode{program->input_event_relation(), k},
                        head_loc)) {
        return true;
      }
    }
    return false;
  };

  bool all_certified = true;
  for (size_t c = 0; c < graph.num_components(); ++c) {
    if (!graph.ComponentCyclic(static_cast<int>(c))) continue;
    rep.recursive = true;

    CycleGrowthReport cycle;
    cycle.path = graph.CyclePath(static_cast<int>(c));
    std::set<std::string> cycle_relations;
    for (size_t v : graph.ComponentMembers(static_cast<int>(c))) {
      cycle_relations.insert(graph.relations()[v]);
    }
    std::vector<const Rule*> cycle_rules;
    SourceLoc cycle_loc;
    for (const TriggerEdge& e : graph.edges()) {
      if (graph.ComponentOf(e.from) != static_cast<int>(c) ||
          graph.ComponentOf(e.to) != static_cast<int>(c)) {
        continue;
      }
      cycle_rules.push_back(&rules[e.rule_index]);
      cycle.rule_ids.push_back(rules[e.rule_index].id);
      if (!cycle_loc.valid()) cycle_loc = rules[e.rule_index].loc;
    }

    const Rule* divergent_rule = nullptr;
    for (const Rule* rule : cycle_rules) {
      if (IsIdentitySelfLoop(*rule)) {
        divergent_rule = rule;
        break;
      }
    }

    std::string detail;
    if (divergent_rule != nullptr) {
      cycle.divergent = true;
      cycle.proof = "divergent";
      cycle.detail = "rule " + divergent_rule->id +
                     " derives its own triggering event verbatim; once it "
                     "fires it re-fires identically forever (conditions are "
                     "slow-changing, constraints deterministic)";
      all_certified = false;
      AddDiag(out, Severity::kError, "E804", divergent_rule->loc,
              "rule " + divergent_rule->id +
                  ": provably divergent derivation (cycle " + cycle.path +
                  "): " + cycle.detail);
    } else if (ProveDecreasingArg(cycle_rules, &detail)) {
      cycle.bounded = true;
      cycle.proof = "decreasing-arg";
      cycle.detail = detail;
      if (emit_notes) {
        AddDiag(out, Severity::kNote, "N802", cycle_loc,
                "recursive cycle " + cycle.path +
                    " is bounded (decreasing argument): " + detail);
      }
    } else if (ProveFiniteSupport(cycle_rules, cycle_relations, &detail)) {
      cycle.bounded = true;
      cycle.proof = "finite-support";
      cycle.detail = detail;
      if (emit_notes) {
        AddDiag(out, Severity::kNote, "N802", cycle_loc,
                "recursive cycle " + cycle.path +
                    " is bounded (finite support): " + detail);
      }
    } else if (ProveTopology(cycle_rules, &detail)) {
      cycle.bounded = true;
      cycle.conditional = true;
      cycle.proof = "topology";
      if (!cycle_rules.empty() && keyed_destination(*cycle_rules.front())) {
        detail += "; the destination is determined by equivalence keys of "
                  "the input event";
      }
      cycle.detail = detail;
      if (emit_notes) {
        AddDiag(out, Severity::kNote, "N803", cycle_loc,
                "recursive cycle " + cycle.path +
                    " is conditionally bounded (topology): " + detail);
      }
    } else {
      all_certified = false;
      std::string rule_list;
      for (const std::string& id : cycle.rule_ids) {
        if (!rule_list.empty()) rule_list += ", ";
        rule_list += id;
      }
      cycle.detail =
          "no boundedness proof: no guarded decreasing argument, head "
          "attributes carry event-payload arithmetic, and the cycle does "
          "not consume topology";
      AddDiag(out, Severity::kWarning, "W801", cycle_loc,
              "potentially unbounded derivation: cycle " + cycle.path +
                  " (rules " + rule_list +
                  ") has no boundedness proof; provenance tables may grow "
                  "without bound");
    }
    rep.cycles.push_back(std::move(cycle));
  }

  rep.certified = all_certified;
  if (emit_notes && all_certified) {
    std::string msg;
    if (!rep.recursive) {
      msg = "derivation bounded: the trigger graph is acyclic; every chain "
            "fires at most " +
            std::to_string(rep.max_chain_depth) +
            " rule" + (rep.max_chain_depth == 1 ? "" : "s") +
            " per injected event";
    } else {
      size_t conditional = 0;
      for (const CycleGrowthReport& cy : rep.cycles) {
        if (cy.conditional) ++conditional;
      }
      msg = "derivation bounded: all " + std::to_string(rep.cycles.size()) +
            " recursive cycle" + (rep.cycles.size() == 1 ? "" : "s") +
            " certified" +
            (conditional > 0
                 ? " (" + std::to_string(conditional) +
                       " conditional on acyclic slow-state topology)"
                 : "") +
            "; acyclic chain depth " + std::to_string(rep.max_chain_depth);
    }
    AddDiag(out, Severity::kNote, "N804", rules.front().loc, msg);
  }
}

}  // namespace analysis_internal
}  // namespace dpc
