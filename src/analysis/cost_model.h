// Static cost model over compiled rule plans (src/analysis/planner.h).
//
// With no table statistics at analysis time, the model prices every
// slow-changing table at a configurable assumed cardinality and every
// bound probe column at an assumed number of distinct values, then
// estimates per rule:
//
//   * join fan-out — expected firings per triggering event, the product
//     of the per-step match estimates along the planned join order;
//   * communication cost — expected bytes shipped per firing for rules
//     whose head relocates (its location term differs from the event's),
//     weighted by the fan-out;
//   * chain-weighted totals — the DELP is linear, so each rule's expected
//     trigger count per injected input event is the product of upstream
//     fan-outs; the program estimate folds that in.
//
// The attribute DependencyGraph and the equivalence keys (§5.2) sharpen
// the estimate: a probe column reachable from an equivalence-key input
// attribute is driven by a value that partitions executions, so it is
// credited extra selectivity (`key_column_boost`). The lint pass surfaces
// the result as N604 plan/cost notes.
#ifndef DPC_ANALYSIS_COST_MODEL_H_
#define DPC_ANALYSIS_COST_MODEL_H_

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/planner.h"
#include "src/ndlog/program.h"

namespace dpc {

struct CostParams {
  // Assumed live rows per slow-changing table.
  double slow_table_rows = 1000.0;
  // Assumed distinct values per bound probe column.
  double distinct_per_column = 16.0;
  // Extra selectivity factor for a probe column the dependency graph
  // links to an equivalence-key attribute of the input event.
  double key_column_boost = 2.0;
  // Assumed serialized bytes per tuple attribute.
  double bytes_per_value = 12.0;
};

struct StepCostEstimate {
  size_t atom_index = 0;
  // Expected matching tuples per probe of this step.
  double est_matches = 1.0;
  bool indexed = false;
};

struct RuleCostEstimate {
  std::string rule_id;
  std::vector<StepCostEstimate> steps;
  // Expected firings per triggering event (product of step estimates).
  double fanout = 1.0;
  // Expected triggering events per injected input event (product of
  // upstream fan-outs along the chain; 0 for unreachable rules).
  double trigger_rate = 1.0;
  // True when the head's location term differs from the event's: every
  // firing ships a message.
  bool relocates = false;
  // Expected bytes shipped per triggering event (0 when not relocating).
  double comm_bytes = 0.0;
};

struct ProgramCostEstimate {
  std::vector<RuleCostEstimate> rules;  // parallel to the program's rules
  // Chain-weighted expected bytes shipped per injected input event.
  double total_comm_bytes = 0.0;
};

// Estimates costs for `plan`, which must have been compiled from
// `program`. Builds the dependency graph and equivalence keys internally;
// a program whose keys cannot be derived still gets estimates, just
// without the key-selectivity credit.
ProgramCostEstimate EstimateCost(const Program& program,
                                 const ProgramPlan& plan,
                                 const CostParams& params = {});

// Pass-9 static storage model: prices the per-program provenance bytes of
// all four recording schemes under the StorageParams workload, from the
// exact wire sizes of src/core/prov_tables.h:
//
//   ProvEntry            48 B (+20 B evid under Advanced)
//   RuleExecEntry        24 B + rule-id string + vid-count varint
//                        + 20 B per vid (+24 B next pointer when chained)
//   RuleExecNodeEntry    like RuleExecEntry, no next pointer
//   RuleExecLinkEntry    48 B
//   store row            20 B content key + serialized tuple
//
// Per-rule firing counts come from the trigger graph's condensation: the
// rate of each strongly connected component is propagated from the input
// event along cross-component edges (a component is entered once per
// upstream chain, and a rule that exits a recursive cycle is assumed
// guarded, firing once per entry), and rules inside a cyclic component
// fire `recursion_depth` times per entry. The model assumes injected
// events are pairwise content-distinct, every derived tuple is distinct
// within its chain, and exactly one rule consumes each raw injected event
// (the DELP chain convention). `plan` must have been compiled from
// `program`; `cost_params` only matters under
// StorageParams::use_plan_fanout.
StorageReport EstimateStorage(const Program& program, const ProgramPlan& plan,
                              const StorageParams& params,
                              const CostParams& cost_params = {});

}  // namespace dpc

#endif  // DPC_ANALYSIS_COST_MODEL_H_
