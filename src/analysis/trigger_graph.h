// Predicate-level trigger graph over a DELP's event relations.
//
// A relation is an *event relation* when it appears as some rule's event
// atom: tuples of that relation flow through the runtime and trigger rule
// evaluation. Every rule whose head is itself an event relation extends
// the derivation chain, contributing the edge
//
//     event(r) --r--> head(r)
//
// Recursion — forwarding's packet -> packet hop, DNS's request -> request
// delegation — shows up as a cycle in this graph. Pass 8 (growth_pass.cc)
// classifies each strongly connected component with a cycle and attempts a
// boundedness proof; the static storage model (cost_model.cc) uses the
// condensation to propagate per-chain trigger rates without looping.
#ifndef DPC_ANALYSIS_TRIGGER_GRAPH_H_
#define DPC_ANALYSIS_TRIGGER_GRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/ndlog/ast.h"

namespace dpc {

struct TriggerEdge {
  size_t from = 0;        // index into TriggerGraph::relations
  size_t to = 0;          // index into TriggerGraph::relations
  size_t rule_index = 0;  // the rule contributing this edge
};

class TriggerGraph {
 public:
  static TriggerGraph Build(const std::vector<Rule>& rules);

  // Event relations in first-appearance order (event atoms first, then
  // heads that are event relations).
  const std::vector<std::string>& relations() const { return relations_; }
  const std::vector<TriggerEdge>& edges() const { return edges_; }

  // Index of `relation` in relations(), or npos when it is not an event
  // relation.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t IndexOf(const std::string& relation) const;

  // Strongly connected components of the trigger graph, by relation
  // index. Component ids are assigned in reverse topological order of the
  // condensation (a component's successors always carry smaller ids).
  int ComponentOf(size_t relation_index) const { return scc_[relation_index]; }
  size_t num_components() const { return num_components_; }
  // A component is cyclic when it has more than one relation or a
  // self-loop edge: derivations can revisit it.
  bool ComponentCyclic(int component) const { return cyclic_[component]; }

  // True when `rule_index` is an intra-component edge of a cyclic
  // component — the rule re-derives an event relation of its own cycle.
  bool RuleInCycle(size_t rule_index) const;

  // Relation indices of `component`, in relations() order.
  std::vector<size_t> ComponentMembers(int component) const;

  // A representative cycle through `component` (which must be cyclic),
  // rendered as "a -> b -> a" for the W801/N80x diagnostics.
  std::string CyclePath(int component) const;

 private:
  std::vector<std::string> relations_;
  std::vector<TriggerEdge> edges_;
  std::vector<int> scc_;
  std::vector<bool> cyclic_;
  size_t num_components_ = 0;
};

}  // namespace dpc

#endif  // DPC_ANALYSIS_TRIGGER_GRAPH_H_
