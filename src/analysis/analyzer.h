// Pass-based static analyzer over parsed DELPs. Unlike Program::Parse,
// which collapses everything into a single Status, the analyzer runs every
// pass and accumulates source-located diagnostics, so one run over a
// defective program reports all of its defects:
//
//   1. DELP conformance (src/ndlog/conformance.h): Definition 1
//      conditions plus rule safety.                       E100..E108
//   2. Schema consistency: one arity per relation, consistent constant
//      types per attribute, known relations of interest.  E201, W202, W203
//   3. Variable lint: singleton variables, assignments shadowing atom
//      bindings, duplicate assignments.                   W301, W302, W303
//   4. Constraint satisfiability: constant folding flags always-true
//      constraints (spurious equivalence-key attributes) and always-false
//      rules (dead provenance).                           W401, W402, W403
//   5. Equivalence-key soundness: per-attribute reachability explanations
//      (src/core/equivalence_keys.h) cross-checked against GetEquiKeys;
//      divergence is an internal error.                   N501, E502
//   6. Join planning and cost: compiles each rule with the planner
//      (src/analysis/planner.h) and flags unavoidable cross-product
//      joins, unindexable probes and dead rules; with plan notes
//      enabled it also emits a per-rule plan/cost report backed by
//      the static cost model.                             W601-W603, N604
//   7. Shard locality (opt-in, `--shard`): classifies every rule as
//      node-local or cross-shard from its head/event location terms,
//      flags cross-shard rules whose destination is not determined by
//      an equivalence key (the §5.5 cache-reset hazard), and rejects
//      condition atoms not co-located with the event.
//                                                         N701, W702, E703
//   8. Derivation boundedness: builds the predicate-level trigger graph,
//      detects recursive cycles and attempts a boundedness proof per
//      cycle (strictly-decreasing guarded integer argument, finite
//      derivable-event support, or topology-consuming relocation);
//      unproven cycles are potentially unbounded derivations, identity
//      self-loops provably divergent, and certified programs get a
//      certification note.                    W801, N802, N803, N804, E804
//   9. Static storage model (opt-in, `--storage`): prices expected
//      provenance bytes per rule firing and per program for all four
//      schemes (ExSPAN / Basic / Advanced / Advanced+inter-class) from
//      schema widths, equivalence keys and trigger rates, and warns when
//      the Advanced scheme is predicted to save less than a configurable
//      margin over ExSPAN or cannot share trees at all.
//                                                         N901, W902, W903
//
// Parse failures surface as code E001. The `dpc_cli lint` subcommand
// (src/analysis/lint.h) renders results as text or JSON.
#ifndef DPC_ANALYSIS_ANALYZER_H_
#define DPC_ANALYSIS_ANALYZER_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/equivalence_keys.h"
#include "src/ndlog/program.h"
#include "src/util/diagnostics.h"

namespace dpc {

// Workload knobs of the pass-9 static storage model (cost_model.h's
// EstimateStorage). Everything the schema cannot answer — how many events
// arrive, how wide their values serialize, how deep recursion runs — is a
// parameter here, exactly like cardinalities fed to a query optimizer.
struct StorageParams {
  // Injected input events, assumed pairwise content-distinct.
  double events = 1000.0;
  // Expected traversals of each recursive trigger-graph cycle per chain
  // (forwarding: expected hop count; DNS: expected delegation depth).
  double recursion_depth = 4.0;
  // Distinct equivalence classes as a fraction of `events`; < 0 derives a
  // crude default from the key arity and `distinct_per_column`.
  double class_fraction = -1.0;
  // Assumed distinct values per event attribute, used only to derive
  // `class_fraction` when it is negative.
  double distinct_per_column = 16.0;
  // Slow-changing rows inserted across all slow relations, split evenly.
  double slow_rows = 0.0;
  // Serialized bytes per attribute value (kind tag + payload); the
  // per-relation map overrides it for relations with known widths.
  double value_bytes = 12.0;
  std::map<std::string, double> value_bytes_by_relation;
  // Expected matching rows per condition-atom probe (joins assumed to be
  // keyed lookups). With `use_plan_fanout` the per-rule fan-out comes from
  // the pass-6 cost model instead.
  double fanout = 1.0;
  bool use_plan_fanout = false;
  // W902 fires when the Advanced scheme is predicted to save less than
  // this fraction of the ExSPAN total.
  double advanced_margin = 0.25;
  // Stated relative error of the estimates, surfaced in the report and
  // asserted by the differential test (storage_model_test.cc).
  double error_bound = 0.25;
};

struct AnalyzerOptions {
  // Program name and relations of interest (checked by the schema pass).
  ProgramOptions program;
  // Run the equivalence-key soundness pass (requires an error-free
  // program).
  bool explain_keys = true;
  // Also emit one N501 note-severity diagnostic per input-event attribute.
  bool key_notes = false;
  // Emit one N604 note per rule carrying its join plan and cost estimate,
  // and fill AnalysisResult::plan_report. The plan warnings (W601-W603)
  // are always on.
  bool plan_notes = false;
  // Run the shard-locality pass (N701/W702/E703) and fill
  // AnalysisResult::shard_report. Off by default: W702 is expected on
  // correct programs whose destination is data-dependent (e.g. dns.ndlog),
  // so the pass is an opt-in readiness check for the sharded runtime, not
  // part of the always-on lint.
  bool shard = false;
  // Emit pass 8's certification notes (N802/N803 per proved cycle, N804
  // for a certified program) and fill AnalysisResult::growth_report. The
  // boundedness warnings/errors (W801, E804) are always on.
  bool growth_notes = false;
  // Run the pass-9 static storage model (N901 notes, W902/W903 warnings)
  // and fill AnalysisResult::storage_report. Opt-in like --shard: the
  // model is a report, not a defect check.
  bool storage = false;
  StorageParams storage_params;
};

// One rule's compiled plan and cost estimate, as surfaced by pass 6 with
// plan notes enabled (`dpc-lint --plan`).
struct RulePlanReport {
  std::string rule_id;
  // Join-order display, e.g. "packet -> route[0,1]".
  std::string join_order;
  size_t indexed_probes = 0;
  size_t scan_probes = 0;  // cross-products included
  // Constraints evaluated before the final join position (pushdown wins).
  size_t pushed_constraints = 0;
  // Constraints constant-folded out of the plan (always true).
  size_t folded_constraints = 0;
  bool cross_product = false;
  // The rule can never fire (always-false constraint) or its trigger is
  // unreachable from the input event.
  bool dead = false;
  // From the static cost model; only meaningful when `has_cost` (the
  // program was constructible).
  bool has_cost = false;
  double est_fanout = 0.0;
  double est_comm_bytes = 0.0;
};

// Pass-6 report: per-rule plans plus the per-relation index signatures
// the runtime will build.
struct PlanReport {
  std::vector<RulePlanReport> rules;
  // relation -> "[c0,c1]"-style signature strings, both sorted.
  std::vector<std::pair<std::string, std::vector<std::string>>>
      index_signatures;

  bool empty() const { return rules.empty() && index_signatures.empty(); }
};

// One rule's shard-locality classification, as surfaced by pass 7
// (`dpc-lint --shard`).
struct RuleShardReport {
  std::string rule_id;
  // Rendered location terms of the event atom and the head.
  std::string event_loc;
  std::string head_loc;
  // The head location term equals the event location term: the firing
  // stays on the shard that owns the triggering event.
  bool node_local = false;
  // For cross-shard rules: the destination is determined by an
  // equivalence key of the input event (or is a constant node), so the
  // sharded runtime can route the firing — and the §5.5 cache resets it
  // implies — without consulting another shard. Trivially true for
  // node-local rules.
  bool keyed = false;
  // Condition atoms whose location term differs from the event's (each
  // also reported as E703).
  size_t mixed_conditions = 0;
};

// Pass-7 report, in rule order.
struct ShardReport {
  std::vector<RuleShardReport> rules;

  size_t node_local() const {
    size_t n = 0;
    for (const RuleShardReport& r : rules) n += r.node_local ? 1 : 0;
    return n;
  }
  size_t cross_shard() const { return rules.size() - node_local(); }
  bool empty() const { return rules.empty(); }
};

// Pass-8 classification of one recursive trigger-graph cycle.
struct CycleGrowthReport {
  // Representative cycle through the component, e.g. "packet -> packet".
  std::string path;
  // Rules whose event and head both lie on the cycle, in rule order.
  std::vector<std::string> rule_ids;
  // Which proof certified the cycle: "decreasing-arg", "finite-support",
  // "topology"; "divergent" for identity self-loops; empty when unproven.
  std::string proof;
  // Human-readable proof witness or failure explanation.
  std::string detail;
  bool bounded = false;      // certified, possibly conditionally
  bool conditional = false;  // bounded only under the stated condition
  bool divergent = false;    // provably re-fires identically forever
};

// Pass-8 report (filled under AnalyzerOptions::growth_notes).
struct GrowthReport {
  bool analyzed = false;
  // Any trigger-graph cycle exists (the program can re-derive an event
  // relation it already derived).
  bool recursive = false;
  // Rules on the longest acyclic derivation chain from the input event
  // (intra-cycle re-entries not counted).
  size_t max_chain_depth = 0;
  std::vector<CycleGrowthReport> cycles;
  // No unproven or divergent cycles: every derivation chain is bounded
  // (subject to the conditional cycles' stated conditions).
  bool certified = false;

  bool empty() const { return !analyzed; }
};

// Pass-9 estimate for one rule: expected firings per injected input event
// and expected provenance bytes appended per firing, by scheme.
struct RuleStorageReport {
  std::string rule_id;
  double firings_per_event = 0.0;
  double exspan_bytes = 0.0;
  double basic_bytes = 0.0;
  double advanced_bytes = 0.0;     // per *maintaining* firing
  double interclass_bytes = 0.0;   // idem, split node/link tables
};

// Pass-9 program-level totals for one scheme under StorageParams.
struct SchemeStorageReport {
  std::string scheme;  // "exspan", "basic", "advanced", "advanced-interclass"
  double prov = 0.0;
  double rule_exec = 0.0;
  double event_store = 0.0;
  double tuple_store = 0.0;

  double total() const { return prov + rule_exec + event_store + tuple_store; }
};

// Pass-9 report (filled under AnalyzerOptions::storage).
struct StorageReport {
  bool analyzed = false;
  double events = 0.0;       // workload size the totals assume
  double classes = 0.0;      // expected distinct equivalence classes
  double error_bound = 0.0;  // stated relative error of the model
  // Predicted (exspan_total - advanced_total) / exspan_total.
  double advanced_savings = 0.0;
  std::vector<RuleStorageReport> rules;
  std::vector<SchemeStorageReport> schemes;

  bool empty() const { return !analyzed; }
};

struct AnalysisResult {
  // All diagnostics, sorted by source location.
  std::vector<Diagnostic> diagnostics;
  // True when the conformance pass emitted no errors (the rules form a
  // valid DELP, though warnings may remain).
  bool conformant = false;

  // Per-rule plan/cost report (empty unless pass 6 ran with plan notes).
  PlanReport plan_report;

  // Per-rule shard-locality report (empty unless pass 7 ran, i.e. under
  // AnalyzerOptions::shard on an error-free program).
  ShardReport shard_report;

  // Boundedness report (empty unless pass 8 ran with growth notes).
  GrowthReport growth_report;

  // Static storage model report (empty unless pass 9 ran, i.e. under
  // AnalyzerOptions::storage on an error-free program).
  StorageReport storage_report;

  // Equivalence-key soundness report (empty unless pass 5 ran).
  std::vector<KeyExplanation> key_explanations;
  // EquivalenceKeys::ToString() of the derived keys, e.g.
  // "(packet:0, packet:2)"; empty unless pass 5 ran.
  std::string key_summary;

  size_t errors() const { return CountErrors(diagnostics); }
  size_t warnings() const { return CountWarnings(diagnostics); }
};

// Runs all passes over pre-parsed rules.
AnalysisResult AnalyzeRules(std::vector<Rule> rules,
                            const AnalyzerOptions& options = {});

// Parses `source` and runs all passes. A parse failure yields a single
// E001 diagnostic carrying the parser's line/column.
AnalysisResult AnalyzeSource(std::string_view source,
                             const AnalyzerOptions& options = {});

// Best-effort extraction of "line L, column C" from a parser/lexer error
// message; invalid SourceLoc when absent. Exposed for tests.
SourceLoc ExtractLocFromMessage(const std::string& message);

}  // namespace dpc

#endif  // DPC_ANALYSIS_ANALYZER_H_
