// Pass-based static analyzer over parsed DELPs. Unlike Program::Parse,
// which collapses everything into a single Status, the analyzer runs every
// pass and accumulates source-located diagnostics, so one run over a
// defective program reports all of its defects:
//
//   1. DELP conformance (src/ndlog/conformance.h): Definition 1
//      conditions plus rule safety.                       E100..E108
//   2. Schema consistency: one arity per relation, consistent constant
//      types per attribute, known relations of interest.  E201, W202, W203
//   3. Variable lint: singleton variables, assignments shadowing atom
//      bindings, duplicate assignments.                   W301, W302, W303
//   4. Constraint satisfiability: constant folding flags always-true
//      constraints (spurious equivalence-key attributes) and always-false
//      rules (dead provenance).                           W401, W402, W403
//   5. Equivalence-key soundness: per-attribute reachability explanations
//      (src/core/equivalence_keys.h) cross-checked against GetEquiKeys;
//      divergence is an internal error.                   N501, E502
//   6. Join planning and cost: compiles each rule with the planner
//      (src/analysis/planner.h) and flags unavoidable cross-product
//      joins, unindexable probes and dead rules; with plan notes
//      enabled it also emits a per-rule plan/cost report backed by
//      the static cost model.                             W601-W603, N604
//   7. Shard locality (opt-in, `--shard`): classifies every rule as
//      node-local or cross-shard from its head/event location terms,
//      flags cross-shard rules whose destination is not determined by
//      an equivalence key (the §5.5 cache-reset hazard), and rejects
//      condition atoms not co-located with the event.
//                                                         N701, W702, E703
//
// Parse failures surface as code E001. The `dpc_cli lint` subcommand
// (src/analysis/lint.h) renders results as text or JSON.
#ifndef DPC_ANALYSIS_ANALYZER_H_
#define DPC_ANALYSIS_ANALYZER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/equivalence_keys.h"
#include "src/ndlog/program.h"
#include "src/util/diagnostics.h"

namespace dpc {

struct AnalyzerOptions {
  // Program name and relations of interest (checked by the schema pass).
  ProgramOptions program;
  // Run the equivalence-key soundness pass (requires an error-free
  // program).
  bool explain_keys = true;
  // Also emit one N501 note-severity diagnostic per input-event attribute.
  bool key_notes = false;
  // Emit one N604 note per rule carrying its join plan and cost estimate,
  // and fill AnalysisResult::plan_report. The plan warnings (W601-W603)
  // are always on.
  bool plan_notes = false;
  // Run the shard-locality pass (N701/W702/E703) and fill
  // AnalysisResult::shard_report. Off by default: W702 is expected on
  // correct programs whose destination is data-dependent (e.g. dns.ndlog),
  // so the pass is an opt-in readiness check for the sharded runtime, not
  // part of the always-on lint.
  bool shard = false;
};

// One rule's compiled plan and cost estimate, as surfaced by pass 6 with
// plan notes enabled (`dpc-lint --plan`).
struct RulePlanReport {
  std::string rule_id;
  // Join-order display, e.g. "packet -> route[0,1]".
  std::string join_order;
  size_t indexed_probes = 0;
  size_t scan_probes = 0;  // cross-products included
  // Constraints evaluated before the final join position (pushdown wins).
  size_t pushed_constraints = 0;
  // Constraints constant-folded out of the plan (always true).
  size_t folded_constraints = 0;
  bool cross_product = false;
  // The rule can never fire (always-false constraint) or its trigger is
  // unreachable from the input event.
  bool dead = false;
  // From the static cost model; only meaningful when `has_cost` (the
  // program was constructible).
  bool has_cost = false;
  double est_fanout = 0.0;
  double est_comm_bytes = 0.0;
};

// Pass-6 report: per-rule plans plus the per-relation index signatures
// the runtime will build.
struct PlanReport {
  std::vector<RulePlanReport> rules;
  // relation -> "[c0,c1]"-style signature strings, both sorted.
  std::vector<std::pair<std::string, std::vector<std::string>>>
      index_signatures;

  bool empty() const { return rules.empty() && index_signatures.empty(); }
};

// One rule's shard-locality classification, as surfaced by pass 7
// (`dpc-lint --shard`).
struct RuleShardReport {
  std::string rule_id;
  // Rendered location terms of the event atom and the head.
  std::string event_loc;
  std::string head_loc;
  // The head location term equals the event location term: the firing
  // stays on the shard that owns the triggering event.
  bool node_local = false;
  // For cross-shard rules: the destination is determined by an
  // equivalence key of the input event (or is a constant node), so the
  // sharded runtime can route the firing — and the §5.5 cache resets it
  // implies — without consulting another shard. Trivially true for
  // node-local rules.
  bool keyed = false;
  // Condition atoms whose location term differs from the event's (each
  // also reported as E703).
  size_t mixed_conditions = 0;
};

// Pass-7 report, in rule order.
struct ShardReport {
  std::vector<RuleShardReport> rules;

  size_t node_local() const {
    size_t n = 0;
    for (const RuleShardReport& r : rules) n += r.node_local ? 1 : 0;
    return n;
  }
  size_t cross_shard() const { return rules.size() - node_local(); }
  bool empty() const { return rules.empty(); }
};

struct AnalysisResult {
  // All diagnostics, sorted by source location.
  std::vector<Diagnostic> diagnostics;
  // True when the conformance pass emitted no errors (the rules form a
  // valid DELP, though warnings may remain).
  bool conformant = false;

  // Per-rule plan/cost report (empty unless pass 6 ran with plan notes).
  PlanReport plan_report;

  // Per-rule shard-locality report (empty unless pass 7 ran, i.e. under
  // AnalyzerOptions::shard on an error-free program).
  ShardReport shard_report;

  // Equivalence-key soundness report (empty unless pass 5 ran).
  std::vector<KeyExplanation> key_explanations;
  // EquivalenceKeys::ToString() of the derived keys, e.g.
  // "(packet:0, packet:2)"; empty unless pass 5 ran.
  std::string key_summary;

  size_t errors() const { return CountErrors(diagnostics); }
  size_t warnings() const { return CountWarnings(diagnostics); }
};

// Runs all passes over pre-parsed rules.
AnalysisResult AnalyzeRules(std::vector<Rule> rules,
                            const AnalyzerOptions& options = {});

// Parses `source` and runs all passes. A parse failure yields a single
// E001 diagnostic carrying the parser's line/column.
AnalysisResult AnalyzeSource(std::string_view source,
                             const AnalyzerOptions& options = {});

// Best-effort extraction of "line L, column C" from a parser/lexer error
// message; invalid SourceLoc when absent. Exposed for tests.
SourceLoc ExtractLocFromMessage(const std::string& message);

}  // namespace dpc

#endif  // DPC_ANALYSIS_ANALYZER_H_
