// Pass-based static analyzer over parsed DELPs. Unlike Program::Parse,
// which collapses everything into a single Status, the analyzer runs every
// pass and accumulates source-located diagnostics, so one run over a
// defective program reports all of its defects:
//
//   1. DELP conformance (src/ndlog/conformance.h): Definition 1
//      conditions plus rule safety.                       E100..E108
//   2. Schema consistency: one arity per relation, consistent constant
//      types per attribute, known relations of interest.  E201, W202, W203
//   3. Variable lint: singleton variables, assignments shadowing atom
//      bindings, duplicate assignments.                   W301, W302, W303
//   4. Constraint satisfiability: constant folding flags always-true
//      constraints (spurious equivalence-key attributes) and always-false
//      rules (dead provenance).                           W401, W402, W403
//   5. Equivalence-key soundness: per-attribute reachability explanations
//      (src/core/equivalence_keys.h) cross-checked against GetEquiKeys;
//      divergence is an internal error.                   N501, E502
//
// Parse failures surface as code E001. The `dpc_cli lint` subcommand
// (src/analysis/lint.h) renders results as text or JSON.
#ifndef DPC_ANALYSIS_ANALYZER_H_
#define DPC_ANALYSIS_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/core/equivalence_keys.h"
#include "src/ndlog/program.h"
#include "src/util/diagnostics.h"

namespace dpc {

struct AnalyzerOptions {
  // Program name and relations of interest (checked by the schema pass).
  ProgramOptions program;
  // Run the equivalence-key soundness pass (requires an error-free
  // program).
  bool explain_keys = true;
  // Also emit one N501 note-severity diagnostic per input-event attribute.
  bool key_notes = false;
};

struct AnalysisResult {
  // All diagnostics, sorted by source location.
  std::vector<Diagnostic> diagnostics;
  // True when the conformance pass emitted no errors (the rules form a
  // valid DELP, though warnings may remain).
  bool conformant = false;

  // Equivalence-key soundness report (empty unless pass 5 ran).
  std::vector<KeyExplanation> key_explanations;
  // EquivalenceKeys::ToString() of the derived keys, e.g.
  // "(packet:0, packet:2)"; empty unless pass 5 ran.
  std::string key_summary;

  size_t errors() const { return CountErrors(diagnostics); }
  size_t warnings() const { return CountWarnings(diagnostics); }
};

// Runs all passes over pre-parsed rules.
AnalysisResult AnalyzeRules(std::vector<Rule> rules,
                            const AnalyzerOptions& options = {});

// Parses `source` and runs all passes. A parse failure yields a single
// E001 diagnostic carrying the parser's line/column.
AnalysisResult AnalyzeSource(std::string_view source,
                             const AnalyzerOptions& options = {});

// Best-effort extraction of "line L, column C" from a parser/lexer error
// message; invalid SourceLoc when absent. Exposed for tests.
SourceLoc ExtractLocFromMessage(const std::string& message);

}  // namespace dpc

#endif  // DPC_ANALYSIS_ANALYZER_H_
