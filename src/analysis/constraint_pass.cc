#include <map>
#include <string>
#include <utility>

#include "src/analysis/passes.h"
#include "src/ndlog/eval.h"

namespace dpc {
namespace analysis_internal {

void RunConstraintPass(const std::vector<Rule>& rules,
                       std::vector<Diagnostic>& out) {
  // No user functions at analysis time: f_ calls simply make an expression
  // non-foldable, which is the conservative outcome.
  const FunctionRegistry no_functions;

  for (const Rule& rule : rules) {
    // Seed the environment with assignments whose right-hand sides fold to
    // constants (in body order, so chains like N := 2, M := N + 1 fold).
    Bindings env;
    for (const Assignment& asn : rule.assignments) {
      if (env.count(asn.var) > 0) continue;
      Result<Value> v = EvalExpr(*asn.expr, env, no_functions);
      if (v.ok()) env.emplace(asn.var, std::move(v).value());
    }

    // Constant-fold each constraint under the environment.
    for (const Constraint& c : rule.constraints) {
      Result<Value> v = EvalExpr(*c.expr, env, no_functions);
      if (!v.ok()) continue;  // depends on event/join values: not foldable
      if (v->Truthy()) {
        AddDiag(out, Severity::kWarning, "W401", c.loc,
                "rule " + rule.id + ": constraint " + c.ToString() +
                    " is always true and never filters; it still forces "
                    "its attributes into the equivalence keys");
      } else {
        AddDiag(out, Severity::kWarning, "W402", c.loc,
                "rule " + rule.id + ": constraint " + c.ToString() +
                    " is always false, so the rule can never fire "
                    "(dead provenance)");
      }
    }

    // Contradictory equality constraints: X == c1 and X == c2 with
    // c1 != c2 can never hold together even though neither folds alone.
    std::map<std::string, std::pair<Value, SourceLoc>> pinned;
    for (const Constraint& c : rule.constraints) {
      const Expr& e = *c.expr;
      if (e.kind != Expr::Kind::kBinary || e.op != Expr::Op::kEq) continue;
      const Expr* var_side = nullptr;
      const Expr* const_side = nullptr;
      if (e.lhs->kind == Expr::Kind::kVar &&
          e.rhs->kind == Expr::Kind::kConst) {
        var_side = e.lhs.get();
        const_side = e.rhs.get();
      } else if (e.rhs->kind == Expr::Kind::kVar &&
                 e.lhs->kind == Expr::Kind::kConst) {
        var_side = e.rhs.get();
        const_side = e.lhs.get();
      } else {
        continue;
      }
      auto [it, inserted] = pinned.emplace(
          var_side->var, std::make_pair(const_side->constant, c.loc));
      if (!inserted && it->second.first != const_side->constant) {
        Diagnostic& d = AddDiag(
            out, Severity::kWarning, "W403", c.loc,
            "rule " + rule.id + ": contradictory equality constraints pin " +
                var_side->var + " to both " + it->second.first.ToString() +
                " and " + const_side->constant.ToString() +
                "; the rule can never fire");
        AddDiag(d.notes, Severity::kNote, "W403", it->second.second,
                var_side->var + " == " + it->second.first.ToString() +
                    " required here");
      }
    }
  }
}

}  // namespace analysis_internal
}  // namespace dpc
