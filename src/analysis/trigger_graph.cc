#include "src/analysis/trigger_graph.h"

#include <algorithm>
#include <map>

namespace dpc {

namespace {

// Iterative Tarjan SCC. DELP trigger graphs are tiny (one node per event
// relation), but lint runs over arbitrary input files, so no recursion.
struct TarjanState {
  const std::vector<std::vector<size_t>>& adj;
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<size_t> stack;
  std::vector<int>& scc;
  int next_index = 0;
  int next_component = 0;

  TarjanState(size_t n, const std::vector<std::vector<size_t>>& a,
              std::vector<int>& out)
      : adj(a), index(n, -1), lowlink(n, 0), on_stack(n, false), scc(out) {}

  void Run(size_t root) {
    // Explicit DFS frame: (node, next successor position).
    std::vector<std::pair<size_t, size_t>> frames;
    frames.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      auto& [v, pos] = frames.back();
      if (pos < adj[v].size()) {
        size_t w = adj[v][pos++];
        if (index[w] < 0) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.emplace_back(w, 0);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        size_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          scc[w] = next_component;
        } while (w != v);
        ++next_component;
      }
      size_t done = v;
      frames.pop_back();
      if (!frames.empty()) {
        size_t parent = frames.back().first;
        lowlink[parent] = std::min(lowlink[parent], lowlink[done]);
      }
    }
  }
};

}  // namespace

TriggerGraph TriggerGraph::Build(const std::vector<Rule>& rules) {
  TriggerGraph g;
  std::map<std::string, size_t> index;
  auto intern = [&](const std::string& rel) {
    auto [it, inserted] = index.emplace(rel, g.relations_.size());
    if (inserted) g.relations_.push_back(rel);
    return it->second;
  };
  // Event relations are exactly the event atoms; heads join the node set
  // only when they are themselves event relations (they trigger a rule).
  for (const Rule& rule : rules) {
    if (rule.atoms.empty()) continue;
    intern(rule.EventAtom().relation);
  }
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    if (rule.atoms.empty()) continue;
    auto head = index.find(rule.head.relation);
    if (head == index.end()) continue;  // terminal head: chain ends here
    g.edges_.push_back(
        TriggerEdge{index.at(rule.EventAtom().relation), head->second, r});
  }

  size_t n = g.relations_.size();
  std::vector<std::vector<size_t>> adj(n);
  for (const TriggerEdge& e : g.edges_) adj[e.from].push_back(e.to);

  g.scc_.assign(n, -1);
  TarjanState tarjan(n, adj, g.scc_);
  for (size_t v = 0; v < n; ++v) {
    if (tarjan.index[v] < 0) tarjan.Run(v);
  }
  g.num_components_ = static_cast<size_t>(tarjan.next_component);

  // Cyclic: more than one member, or a self-loop edge.
  std::vector<size_t> members(g.num_components_, 0);
  for (size_t v = 0; v < n; ++v) ++members[g.scc_[v]];
  g.cyclic_.assign(g.num_components_, false);
  for (size_t c = 0; c < g.num_components_; ++c) {
    g.cyclic_[c] = members[c] > 1;
  }
  for (const TriggerEdge& e : g.edges_) {
    if (e.from == e.to) g.cyclic_[g.scc_[e.from]] = true;
  }
  return g;
}

size_t TriggerGraph::IndexOf(const std::string& relation) const {
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (relations_[i] == relation) return i;
  }
  return npos;
}

bool TriggerGraph::RuleInCycle(size_t rule_index) const {
  for (const TriggerEdge& e : edges_) {
    if (e.rule_index != rule_index) continue;
    return scc_[e.from] == scc_[e.to] && cyclic_[scc_[e.from]];
  }
  return false;
}

std::vector<size_t> TriggerGraph::ComponentMembers(int component) const {
  std::vector<size_t> members;
  for (size_t v = 0; v < relations_.size(); ++v) {
    if (scc_[v] == component) members.push_back(v);
  }
  return members;
}

std::string TriggerGraph::CyclePath(int component) const {
  std::vector<size_t> members = ComponentMembers(component);
  if (members.empty()) return "";
  // Walk intra-component edges from the first member, preferring unvisited
  // relations, until the walk returns to the start; good enough for a
  // representative "a -> b -> a" path.
  size_t start = members.front();
  std::string path = relations_[start];
  std::vector<bool> visited(relations_.size(), false);
  visited[start] = true;
  size_t at = start;
  for (size_t hop = 0; hop <= members.size(); ++hop) {
    size_t next = npos;
    for (const TriggerEdge& e : edges_) {
      if (e.from != at || scc_[e.to] != component) continue;
      if (e.to == start && hop > 0) {
        next = e.to;
        break;
      }
      if (next == npos && !visited[e.to]) next = e.to;
    }
    if (next == npos) {
      // Self-loop component (or walk exhausted): close the cycle.
      next = start;
    }
    path += " -> " + relations_[next];
    if (next == start) break;
    visited[next] = true;
    at = next;
  }
  return path;
}

}  // namespace dpc
