#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/cost_model.h"
#include "src/analysis/passes.h"
#include "src/analysis/planner.h"

namespace dpc {
namespace analysis_internal {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

void RunPlanPass(const std::vector<Rule>& rules, const Program* program,
                 bool emit_notes, std::vector<Diagnostic>& out,
                 PlanReport* report) {
  if (rules.empty()) return;
  ProgramPlan plan = PlanRules(rules);

  // Rule-level reachability: the input event relation seeds the frontier;
  // a reachable rule that can fire contributes its head relation. Rules
  // whose trigger never becomes reachable are dead (W603). A rule killed
  // by its own always-false constraint is diagnosed as W402 by pass 4, not
  // here — but it stops propagation, so its downstream goes dead.
  std::set<std::string> reachable = {rules.front().EventAtom().relation};
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t r = 0; r < rules.size(); ++r) {
      if (plan.rules[r].never_fires) continue;
      if (reachable.count(rules[r].EventAtom().relation) == 0) continue;
      if (reachable.insert(rules[r].head.relation).second) changed = true;
    }
  }

  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const RulePlan& rp = plan.rules[r];

    bool unreachable = reachable.count(rule.EventAtom().relation) == 0;
    if (unreachable) {
      AddDiag(out, Severity::kWarning, "W603", rule.loc,
              "rule " + rule.id + ": trigger relation " +
                  rule.EventAtom().relation +
                  " is unreachable from any event (no upstream rule can "
                  "derive it); the rule is dead");
    }

    for (const PlanStep& step : rp.steps) {
      const Atom& atom = rule.atoms[step.atom_index];
      if (step.cross_product) {
        AddDiag(out, Severity::kWarning, "W601", atom.loc,
                "rule " + rule.id + ": condition " + atom.relation +
                    " shares no bound variable or constant with the "
                    "event or any earlier join; no ordering avoids this "
                    "cross-product (plan: " + rp.ToString(rule) + ")");
      } else if (step.bound_columns.empty()) {
        AddDiag(out, Severity::kWarning, "W602", atom.loc,
                "rule " + rule.id + ": probe of " + atom.relation +
                    " has no bound columns; no index applies and "
                    "evaluation degrades to a full scan");
      }
    }
  }

  if (!emit_notes) return;

  // Cost estimates need a constructed Program (dependency graph +
  // equivalence keys); without one the notes still carry the plans.
  ProgramCostEstimate cost;
  bool has_cost = program != nullptr;
  if (has_cost) cost = EstimateCost(*program, plan);

  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const RulePlan& rp = plan.rules[r];

    RulePlanReport rep;
    rep.rule_id = rule.id;
    rep.join_order = rp.ToString(rule);
    for (const PlanStep& step : rp.steps) {
      if (step.bound_columns.empty()) {
        ++rep.scan_probes;
      } else {
        ++rep.indexed_probes;
      }
    }
    // "Pushed" counts constraints evaluated before the final join
    // position — the ones the naive leaf-evaluation order would have
    // paid for at every candidate combination.
    if (!rp.steps.empty()) {
      rep.pushed_constraints = rp.pre_constraints.size();
      for (size_t s = 0; s + 1 < rp.steps.size(); ++s) {
        rep.pushed_constraints += rp.steps[s].constraints.size();
      }
    }
    rep.folded_constraints = rp.folded_constraints.size();
    rep.cross_product = rp.HasCrossProduct();
    rep.dead = rp.never_fires ||
               reachable.count(rule.EventAtom().relation) == 0;
    if (has_cost) {
      rep.has_cost = true;
      rep.est_fanout = cost.rules[r].fanout;
      rep.est_comm_bytes = cost.rules[r].comm_bytes;
    }

    std::string msg = "rule " + rule.id + ": plan " + rep.join_order + "; " +
                      std::to_string(rep.indexed_probes) + " indexed probe" +
                      (rep.indexed_probes == 1 ? "" : "s") + ", " +
                      std::to_string(rep.scan_probes) + " scan" +
                      (rep.scan_probes == 1 ? "" : "s") + "; " +
                      std::to_string(rep.pushed_constraints) + " pushed, " +
                      std::to_string(rep.folded_constraints) +
                      " folded constraint" +
                      (rep.folded_constraints == 1 ? "" : "s");
    if (rep.has_cost) {
      msg += "; est fan-out " + FormatDouble(rep.est_fanout) +
             ", est comm " + FormatDouble(rep.est_comm_bytes) + " B/event";
    }
    AddDiag(out, Severity::kNote, "N604", rule.loc, msg);

    if (report != nullptr) report->rules.push_back(std::move(rep));
  }

  if (report != nullptr) {
    for (const auto& [relation, sigs] : plan.index_signatures) {
      std::vector<std::string> rendered;
      rendered.reserve(sigs.size());
      for (const IndexSignature& sig : sigs) {
        rendered.push_back(IndexSignatureToString(sig));
      }
      report->index_signatures.emplace_back(relation, std::move(rendered));
    }
  }
}

}  // namespace analysis_internal
}  // namespace dpc
