#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/analysis/passes.h"

namespace dpc {
namespace analysis_internal {

namespace {

const char* KindName(Value::Kind kind) {
  return kind == Value::Kind::kInt ? "int" : "string";
}

struct FirstUse {
  size_t arity;
  SourceLoc loc;
  std::string rule_id;
};

}  // namespace

void RunSchemaPass(const std::vector<Rule>& rules,
                   const ProgramOptions& options,
                   std::vector<Diagnostic>& out) {
  std::map<std::string, FirstUse> arities;
  std::map<std::pair<std::string, size_t>, std::pair<Value::Kind, SourceLoc>>
      attr_kinds;

  auto check_atom = [&](const Rule& rule, const Atom& atom) {
    auto [it, inserted] = arities.emplace(
        atom.relation, FirstUse{atom.args.size(), atom.loc, rule.id});
    if (!inserted && it->second.arity != atom.args.size()) {
      Diagnostic& d = AddDiag(
          out, Severity::kError, "E201", atom.loc,
          "relation " + atom.relation + " used with arity " +
              std::to_string(atom.args.size()) + " in rule " + rule.id +
              " but with arity " + std::to_string(it->second.arity) +
              " elsewhere");
      AddDiag(d.notes, Severity::kNote, "E201", it->second.loc,
              "first used with arity " + std::to_string(it->second.arity) +
                  " in rule " + it->second.rule_id);
    }
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      if (t.is_var()) continue;
      Value::Kind kind = t.constant.kind();
      auto [kit, kinserted] = attr_kinds.emplace(
          std::make_pair(atom.relation, i), std::make_pair(kind, t.loc));
      if (!kinserted && kit->second.first != kind) {
        Diagnostic& d = AddDiag(
            out, Severity::kWarning, "W202", t.loc,
            "attribute " + atom.relation + ":" + std::to_string(i) +
                " holds a " + KindName(kind) + " constant here but a " +
                KindName(kit->second.first) + " constant elsewhere");
        AddDiag(d.notes, Severity::kNote, "W202", kit->second.second,
                std::string(KindName(kit->second.first)) +
                    " constant first appears here");
      }
    }
  };

  std::set<std::string> mentioned;
  for (const Rule& rule : rules) {
    check_atom(rule, rule.head);
    mentioned.insert(rule.head.relation);
    for (const Atom& atom : rule.atoms) {
      check_atom(rule, atom);
      mentioned.insert(atom.relation);
    }
  }

  // Undeclared relations of interest: Program::RoleOf silently treats any
  // unknown relation as slow-changing, so a typo here would otherwise
  // disable provenance materialization without a sound.
  for (const std::string& rel : options.relations_of_interest) {
    if (mentioned.count(rel) == 0) {
      AddDiag(out, Severity::kWarning, "W203", SourceLoc{},
              "relation of interest " + rel +
                  " does not appear in the program");
    }
  }
}

}  // namespace analysis_internal
}  // namespace dpc
