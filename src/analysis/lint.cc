#include "src/analysis/lint.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace dpc {

namespace {

void AppendJsonLoc(std::string& out, const SourceLoc& loc) {
  out += "\"line\":" + std::to_string(loc.line) +
         ",\"column\":" + std::to_string(loc.column);
}

void AppendJsonDiagnostic(std::string& out, const Diagnostic& d) {
  out += "{\"severity\":\"";
  out += SeverityName(d.severity);
  out += "\",\"code\":\"" + JsonEscape(d.code) + "\",";
  AppendJsonLoc(out, d.loc);
  out += ",\"message\":\"" + JsonEscape(d.message) + "\",\"notes\":[";
  for (size_t i = 0; i < d.notes.size(); ++i) {
    if (i > 0) out += ",";
    AppendJsonDiagnostic(out, d.notes[i]);
  }
  out += "]}";
}

void AppendJsonExplanation(std::string& out, const KeyExplanation& ex) {
  out += "{\"attr\":\"" + JsonEscape(ex.attr.ToString()) + "\",\"var\":\"" +
         JsonEscape(ex.var) + "\",\"is_key\":";
  out += ex.is_key ? "true" : "false";
  out += ",\"reason\":\"";
  out += KeyReasonName(ex.reason);
  out += "\",\"chain\":[";
  for (size_t i = 0; i < ex.chain.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(ex.chain[i].ToString()) + "\"";
  }
  out += "]}";
}

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

// Fraction-valued fields (error bounds, savings ratios) live in [0, 1],
// where one decimal place would round 0.25 to "0.2"; keep four.
std::string JsonFraction(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

void AppendJsonPlanRule(std::string& out, const RulePlanReport& r) {
  out += "{\"rule\":\"" + JsonEscape(r.rule_id) + "\",\"join_order\":\"" +
         JsonEscape(r.join_order) +
         "\",\"indexed_probes\":" + std::to_string(r.indexed_probes) +
         ",\"scan_probes\":" + std::to_string(r.scan_probes) +
         ",\"pushed_constraints\":" + std::to_string(r.pushed_constraints) +
         ",\"folded_constraints\":" + std::to_string(r.folded_constraints) +
         ",\"cross_product\":";
  out += r.cross_product ? "true" : "false";
  out += ",\"dead\":";
  out += r.dead ? "true" : "false";
  if (r.has_cost) {
    out += ",\"est_fanout\":" + JsonDouble(r.est_fanout) +
           ",\"est_comm_bytes\":" + JsonDouble(r.est_comm_bytes);
  }
  out += "}";
}

void AppendJsonShardRule(std::string& out, const RuleShardReport& r) {
  out += "{\"rule\":\"" + JsonEscape(r.rule_id) + "\",\"event_loc\":\"" +
         JsonEscape(r.event_loc) + "\",\"head_loc\":\"" +
         JsonEscape(r.head_loc) + "\",\"node_local\":";
  out += r.node_local ? "true" : "false";
  out += ",\"keyed\":";
  out += r.keyed ? "true" : "false";
  out += ",\"mixed_conditions\":" + std::to_string(r.mixed_conditions) + "}";
}

void AppendJsonShard(std::string& out, const ShardReport& shard) {
  out += "\"shards\":{\"rules\":[";
  for (size_t i = 0; i < shard.rules.size(); ++i) {
    if (i > 0) out += ",";
    AppendJsonShardRule(out, shard.rules[i]);
  }
  out += "],\"node_local\":" + std::to_string(shard.node_local()) +
         ",\"cross_shard\":" + std::to_string(shard.cross_shard()) + "}";
}

void AppendJsonGrowth(std::string& out, const GrowthReport& growth) {
  out += "\"growth\":{\"recursive\":";
  out += growth.recursive ? "true" : "false";
  out += ",\"certified\":";
  out += growth.certified ? "true" : "false";
  out += ",\"max_chain_depth\":" + std::to_string(growth.max_chain_depth) +
         ",\"cycles\":[";
  for (size_t i = 0; i < growth.cycles.size(); ++i) {
    const CycleGrowthReport& c = growth.cycles[i];
    if (i > 0) out += ",";
    out += "{\"path\":\"" + JsonEscape(c.path) + "\",\"rules\":[";
    for (size_t r = 0; r < c.rule_ids.size(); ++r) {
      if (r > 0) out += ",";
      out += "\"" + JsonEscape(c.rule_ids[r]) + "\"";
    }
    out += "],\"proof\":\"" + JsonEscape(c.proof) + "\",\"detail\":\"" +
           JsonEscape(c.detail) + "\",\"bounded\":";
    out += c.bounded ? "true" : "false";
    out += ",\"conditional\":";
    out += c.conditional ? "true" : "false";
    out += ",\"divergent\":";
    out += c.divergent ? "true" : "false";
    out += "}";
  }
  out += "]}";
}

void AppendJsonStorage(std::string& out, const StorageReport& storage) {
  out += "\"storage\":{\"events\":" + JsonDouble(storage.events) +
         ",\"classes\":" + JsonDouble(storage.classes) +
         ",\"error_bound\":" + JsonFraction(storage.error_bound) +
         ",\"advanced_savings\":" + JsonFraction(storage.advanced_savings) +
         ",\"rules\":[";
  for (size_t i = 0; i < storage.rules.size(); ++i) {
    const RuleStorageReport& r = storage.rules[i];
    if (i > 0) out += ",";
    out += "{\"rule\":\"" + JsonEscape(r.rule_id) +
           "\",\"firings_per_event\":" + JsonDouble(r.firings_per_event) +
           ",\"exspan_bytes\":" + JsonDouble(r.exspan_bytes) +
           ",\"basic_bytes\":" + JsonDouble(r.basic_bytes) +
           ",\"advanced_bytes\":" + JsonDouble(r.advanced_bytes) +
           ",\"interclass_bytes\":" + JsonDouble(r.interclass_bytes) + "}";
  }
  out += "],\"schemes\":[";
  for (size_t i = 0; i < storage.schemes.size(); ++i) {
    const SchemeStorageReport& s = storage.schemes[i];
    if (i > 0) out += ",";
    out += "{\"scheme\":\"" + JsonEscape(s.scheme) +
           "\",\"prov\":" + JsonDouble(s.prov) +
           ",\"rule_exec\":" + JsonDouble(s.rule_exec) +
           ",\"event_store\":" + JsonDouble(s.event_store) +
           ",\"tuple_store\":" + JsonDouble(s.tuple_store) +
           ",\"total\":" + JsonDouble(s.total()) + "}";
  }
  out += "]}";
}

void AppendJsonPlan(std::string& out, const PlanReport& plan) {
  out += "\"plans\":{\"rules\":[";
  for (size_t i = 0; i < plan.rules.size(); ++i) {
    if (i > 0) out += ",";
    AppendJsonPlanRule(out, plan.rules[i]);
  }
  out += "],\"index_signatures\":[";
  for (size_t i = 0; i < plan.index_signatures.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"relation\":\"" + JsonEscape(plan.index_signatures[i].first) +
           "\",\"signatures\":[";
    const auto& sigs = plan.index_signatures[i].second;
    for (size_t s = 0; s < sigs.size(); ++s) {
      if (s > 0) out += ",";
      out += "\"" + JsonEscape(sigs[s]) + "\"";
    }
    out += "]}";
  }
  out += "]}";
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

FileLint LintSource(std::string file, std::string_view source,
                    const LintOptions& options) {
  FileLint lint;
  lint.file = std::move(file);
  lint.result = AnalyzeSource(source, options.analyzer);
  return lint;
}

std::string RenderText(const std::vector<FileLint>& results,
                       const LintOptions& options) {
  std::string out;
  for (const FileLint& fl : results) {
    for (const Diagnostic& d : fl.result.diagnostics) {
      out += d.ToString(fl.file);
      out += "\n";
    }
    if (options.print_keys && !fl.result.key_summary.empty()) {
      out += fl.file + ": equivalence keys " + fl.result.key_summary + "\n";
      for (const KeyExplanation& ex : fl.result.key_explanations) {
        out += "  " + ex.ToString() + "\n";
      }
    }
    if (options.print_plan && !fl.result.plan_report.empty()) {
      out += fl.file + ": rule plans\n";
      for (const RulePlanReport& r : fl.result.plan_report.rules) {
        out += "  " + r.rule_id + ": " + r.join_order;
        if (r.dead) out += " (dead)";
        if (r.has_cost) {
          out += " fan-out " + JsonDouble(r.est_fanout) + ", comm " +
                 JsonDouble(r.est_comm_bytes) + " B/event";
        }
        out += "\n";
      }
      for (const auto& [relation, sigs] : fl.result.plan_report.index_signatures) {
        out += "  index " + relation + ":";
        for (const std::string& sig : sigs) out += " " + sig;
        out += "\n";
      }
    }
    if (options.print_shard && !fl.result.shard_report.empty()) {
      const ShardReport& shard = fl.result.shard_report;
      out += fl.file + ": shard locality (" +
             std::to_string(shard.node_local()) + " node-local, " +
             std::to_string(shard.cross_shard()) + " cross-shard)\n";
      for (const RuleShardReport& r : shard.rules) {
        out += "  " + r.rule_id + ": ";
        if (r.node_local) {
          out += "node-local (@" + r.event_loc + ")";
        } else {
          out += "cross-shard (@" + r.event_loc + " -> @" + r.head_loc +
                 (r.keyed ? "), keyed" : "), unkeyed");
        }
        if (r.mixed_conditions > 0) {
          out += ", " + std::to_string(r.mixed_conditions) +
                 " mislocated condition" +
                 (r.mixed_conditions == 1 ? "" : "s");
        }
        out += "\n";
      }
    }
    if (options.print_growth && !fl.result.growth_report.empty()) {
      const GrowthReport& growth = fl.result.growth_report;
      out += fl.file + ": derivation growth (";
      out += growth.recursive ? "recursive" : "non-recursive";
      out += growth.certified ? ", certified" : ", NOT certified";
      out += ", chain depth " + std::to_string(growth.max_chain_depth) + ")\n";
      for (const CycleGrowthReport& c : growth.cycles) {
        out += "  cycle " + c.path + ": ";
        if (c.divergent) {
          out += "divergent";
        } else if (c.bounded) {
          out += c.proof + (c.conditional ? " (conditional)" : "");
        } else {
          out += "unproven";
        }
        out += " — " + c.detail + "\n";
      }
    }
    if (options.print_storage && !fl.result.storage_report.empty()) {
      const StorageReport& storage = fl.result.storage_report;
      out += fl.file + ": storage model (" + JsonDouble(storage.events) +
             " events, " + JsonDouble(storage.classes) +
             " classes, advanced saves " +
             JsonDouble(storage.advanced_savings * 100.0) + "%)\n";
      for (const RuleStorageReport& r : storage.rules) {
        out += "  " + r.rule_id + ": " + JsonDouble(r.firings_per_event) +
               " firings/event; B/firing exspan " +
               JsonDouble(r.exspan_bytes) + ", basic " +
               JsonDouble(r.basic_bytes) + ", advanced " +
               JsonDouble(r.advanced_bytes) + ", inter-class " +
               JsonDouble(r.interclass_bytes) + "\n";
      }
      for (const SchemeStorageReport& s : storage.schemes) {
        out += "  " + s.scheme + ": prov " + JsonDouble(s.prov) +
               " + ruleExec " + JsonDouble(s.rule_exec) + " + events " +
               JsonDouble(s.event_store) + " + tuples " +
               JsonDouble(s.tuple_store) + " = " + JsonDouble(s.total()) +
               " B\n";
      }
    }
    size_t errors = fl.result.errors();
    size_t warnings = fl.result.warnings();
    out += fl.file + ": " + std::to_string(errors) + " error" +
           (errors == 1 ? "" : "s") + ", " + std::to_string(warnings) +
           " warning" + (warnings == 1 ? "" : "s") + "\n";
  }
  return out;
}

std::string RenderJson(const std::vector<FileLint>& results) {
  size_t total_errors = 0;
  size_t total_warnings = 0;
  std::string out = "{\"files\":[";
  for (size_t f = 0; f < results.size(); ++f) {
    const FileLint& fl = results[f];
    if (f > 0) out += ",";
    size_t errors = fl.result.errors();
    size_t warnings = fl.result.warnings();
    total_errors += errors;
    total_warnings += warnings;
    out += "{\"file\":\"" + JsonEscape(fl.file) +
           "\",\"errors\":" + std::to_string(errors) +
           ",\"warnings\":" + std::to_string(warnings) + ",\"diagnostics\":[";
    for (size_t i = 0; i < fl.result.diagnostics.size(); ++i) {
      if (i > 0) out += ",";
      AppendJsonDiagnostic(out, fl.result.diagnostics[i]);
    }
    out += "]";
    if (!fl.result.key_summary.empty()) {
      out += ",\"equivalence_keys\":{\"summary\":\"" +
             JsonEscape(fl.result.key_summary) + "\",\"attributes\":[";
      for (size_t i = 0; i < fl.result.key_explanations.size(); ++i) {
        if (i > 0) out += ",";
        AppendJsonExplanation(out, fl.result.key_explanations[i]);
      }
      out += "]}";
    }
    if (!fl.result.plan_report.empty()) {
      out += ",";
      AppendJsonPlan(out, fl.result.plan_report);
    }
    if (!fl.result.shard_report.empty()) {
      out += ",";
      AppendJsonShard(out, fl.result.shard_report);
    }
    if (!fl.result.growth_report.empty()) {
      out += ",";
      AppendJsonGrowth(out, fl.result.growth_report);
    }
    if (!fl.result.storage_report.empty()) {
      out += ",";
      AppendJsonStorage(out, fl.result.storage_report);
    }
    out += "}";
  }
  out += "],\"errors\":" + std::to_string(total_errors) +
         ",\"warnings\":" + std::to_string(total_warnings) + "}";
  return out;
}

int LintExitCode(const std::vector<FileLint>& results,
                 const LintOptions& options) {
  for (const FileLint& fl : results) {
    if (fl.result.errors() > 0) return 1;
    if (options.werror && fl.result.warnings() > 0) return 1;
  }
  return 0;
}

}  // namespace dpc
