// Analysis-driven rule compiler (the planner): turns each DELP rule into
// an index-backed join plan executed by FireRulePlanned.
//
// The naive evaluator (src/ndlog/eval.h FireRule) matches condition atoms
// in textual body order against whole slow-changing tables and only
// applies assignments and constraints at the join leaves. The planner
// instead compiles, once per program load:
//
//   * a join order chosen greedily by bound-variable coverage, so an atom
//     sharing variables with what is already bound is probed before one
//     that would cross-product;
//   * a placement for every assignment and constraint at the earliest
//     join position where all of its variables are bound (constraint and
//     assignment pushdown), with constraints the constant folder proves
//     always-true (W401) folded out of the plan entirely and an
//     always-false constraint (W402) marking the whole rule never-firing;
//   * per condition atom, the signature of bound columns the probe
//     supplies — exactly the hash indexes (src/db/table.h) the runtime
//     builds lazily per slow-changing table.
//
// Plans preserve the naive evaluator's semantics for well-typed programs:
// FireRulePlanned produces the same firing set, with RuleFiring.slow_tuples
// restored to body-atom order so provenance recording is unchanged (see
// docs/ndlog.md, "The planned-evaluation contract").
#ifndef DPC_ANALYSIS_PLANNER_H_
#define DPC_ANALYSIS_PLANNER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/db/table.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/program.h"

namespace dpc {

// One probe of a condition atom in the planned join order.
struct PlanStep {
  // Index into rule.atoms of the condition atom this step joins.
  size_t atom_index = 0;
  // Sorted columns of the atom bound (by constants or earlier bindings)
  // when the step runs. Empty: the probe degrades to a full scan.
  IndexSignature bound_columns;
  // True when the step binds nothing shared with the tuples joined so
  // far and is not the first probe: a cross-product join (W601).
  bool cross_product = false;
  // Indexes into rule.assignments / rule.constraints evaluated right
  // after this step's match, in body order (assignments first).
  std::vector<size_t> assignments;
  std::vector<size_t> constraints;
};

// The compiled form of one rule.
struct RulePlan {
  std::string rule_id;
  // Condition atoms in execution order.
  std::vector<PlanStep> steps;
  // Assignments/constraints evaluable as soon as the event atom has
  // matched, before any table probe (the deepest pushdown).
  std::vector<size_t> pre_assignments;
  std::vector<size_t> pre_constraints;
  // Constraints the constant folder proved always-true; dropped from
  // execution (they can never filter).
  std::vector<size_t> folded_constraints;
  // A constraint folds to false: the rule can never fire and the planned
  // evaluator returns no firings without probing anything.
  bool never_fires = false;

  // True when any step is a cross-product join.
  bool HasCrossProduct() const;
  // "ev ⨝ rel[0,1] ⨝ rel2[scan]"-style display of the join order.
  std::string ToString(const Rule& rule) const;
};

// The compiled form of a program: one plan per rule plus the union of
// index signatures each slow-changing relation will be probed with.
struct ProgramPlan {
  std::vector<RulePlan> rules;  // parallel to the source rule vector
  std::map<std::string, std::set<IndexSignature>> index_signatures;
};

// Compiles one rule. `rule_index` is only used for display defaults when
// the rule carries no id.
RulePlan PlanRule(const Rule& rule);

// Compiles every rule and aggregates per-relation index signatures.
// Works on arbitrary (even non-conformant) rule vectors: the plan pass
// runs it before a Program can necessarily be constructed.
ProgramPlan PlanRules(const std::vector<Rule>& rules);
ProgramPlan PlanProgram(const Program& program);

// Fires `rule` under `plan` (which must have been compiled from it).
// Index probes replace table scans wherever the plan found bound columns.
// Identical firing sets to FireRule for well-typed programs; see
// docs/ndlog.md for the exact contract.
Result<std::vector<RuleFiring>> FireRulePlanned(const Rule& rule,
                                                const RulePlan& plan,
                                                const Tuple& event,
                                                const Database& db,
                                                const FunctionRegistry& fns);

}  // namespace dpc

#endif  // DPC_ANALYSIS_PLANNER_H_
