// Analysis-driven rule compiler (the planner): turns each DELP rule into
// an index-backed join plan executed by FireRulePlanned.
//
// The naive evaluator (src/ndlog/eval.h FireRule) matches condition atoms
// in textual body order against whole slow-changing tables and only
// applies assignments and constraints at the join leaves. The planner
// instead compiles, once per program load:
//
//   * a join order chosen greedily by bound-variable coverage, so an atom
//     sharing variables with what is already bound is probed before one
//     that would cross-product;
//   * a placement for every assignment and constraint at the earliest
//     join position where all of its variables are bound (constraint and
//     assignment pushdown), with constraints the constant folder proves
//     always-true (W401) folded out of the plan entirely and an
//     always-false constraint (W402) marking the whole rule never-firing;
//   * per condition atom, the signature of bound columns the probe
//     supplies — exactly the hash indexes (src/db/table.h) the runtime
//     builds lazily per slow-changing table.
//
// Plans preserve the naive evaluator's semantics for well-typed programs:
// FireRulePlanned produces the same firing set, with RuleFiring.slow_tuples
// restored to body-atom order so provenance recording is unchanged (see
// docs/ndlog.md, "The planned-evaluation contract").
#ifndef DPC_ANALYSIS_PLANNER_H_
#define DPC_ANALYSIS_PLANNER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/db/table.h"
#include "src/ndlog/eval.h"
#include "src/ndlog/program.h"

namespace dpc {

// One probe of a condition atom in the planned join order.
struct PlanStep {
  // Index into rule.atoms of the condition atom this step joins.
  size_t atom_index = 0;
  // Sorted columns of the atom bound (by constants or earlier bindings)
  // when the step runs. Empty: the probe degrades to a full scan.
  IndexSignature bound_columns;
  // True when the step binds nothing shared with the tuples joined so
  // far and is not the first probe: a cross-product join (W601).
  bool cross_product = false;
  // Indexes into rule.assignments / rule.constraints evaluated right
  // after this step's match, in body order (assignments first).
  std::vector<size_t> assignments;
  std::vector<size_t> constraints;
};

// Below this many rows in every probed table, the naive nested-loop
// evaluator beats the planned path's fixed per-call setup (the
// BENCH_eval.json rows=10 regression); FireRulePlanned falls through when
// the plan also preserves body order. Recorded in the bench output.
inline constexpr size_t kNaiveCrossoverRows = 16;

// The compiled form of one rule.
struct RulePlan {
  std::string rule_id;
  // Condition atoms in execution order.
  std::vector<PlanStep> steps;
  // Assignments/constraints evaluable as soon as the event atom has
  // matched, before any table probe (the deepest pushdown).
  std::vector<size_t> pre_assignments;
  std::vector<size_t> pre_constraints;
  // Constraints the constant folder proved always-true; dropped from
  // execution (they can never filter).
  std::vector<size_t> folded_constraints;
  // A constraint folds to false: the rule can never fire and the planned
  // evaluator returns no firings without probing anything.
  bool never_fires = false;

  // --- batchability flags (docs/analysis.md) ---------------------------
  // Step positions reordered back to body-atom order, precomputed for
  // RuleFiring.slow_tuples so executors don't sort per call.
  std::vector<size_t> body_order;
  // True when the planned join order equals textual body order. Pushdown
  // then only prunes earlier what the naive evaluator prunes at its
  // leaves, so FireRule yields the same firings in the same order and can
  // substitute for the plan below the small-table crossover.
  bool naive_order_safe = false;
  // True when step 0's probe key is computable straight from the event
  // tuple: every bound column is a constant or a variable bound at an
  // event-atom position. The batch evaluator then hashes and groups
  // events by first-probe key without running MatchAtom per event.
  std::vector<int> first_key_event_pos;   // event position, or -1: constant
  std::vector<Value> first_key_constants;  // aligned; used where pos == -1
  bool batch_first_key = false;
  // Largest probed-table size at which FireRulePlanned falls through to
  // the naive evaluator. Only consulted when naive_order_safe; a per-plan
  // field (not a constant) so differential tests can force either path.
  size_t small_table_fallback_rows = kNaiveCrossoverRows;

  // True when any step is a cross-product join.
  bool HasCrossProduct() const;
  // "ev ⨝ rel[0,1] ⨝ rel2[scan]"-style display of the join order.
  std::string ToString(const Rule& rule) const;
};

// The compiled form of a program: one plan per rule plus the union of
// index signatures each slow-changing relation will be probed with.
struct ProgramPlan {
  std::vector<RulePlan> rules;  // parallel to the source rule vector
  std::map<std::string, std::set<IndexSignature>> index_signatures;
};

// Compiles one rule. `rule_index` is only used for display defaults when
// the rule carries no id.
RulePlan PlanRule(const Rule& rule);

// Compiles every rule and aggregates per-relation index signatures.
// Works on arbitrary (even non-conformant) rule vectors: the plan pass
// runs it before a Program can necessarily be constructed.
ProgramPlan PlanRules(const std::vector<Rule>& rules);
ProgramPlan PlanProgram(const Program& program);

// True when `plan` should fall through to the naive evaluator for this
// database: the join order is textual body order (firing order is then
// unchanged) and every probed table is at or below the plan's crossover
// size. Never true for never-firing or zero-step plans.
bool UseNaiveFallback(const Rule& rule, const RulePlan& plan,
                      const Database& db);

// Reusable executor for one compiled plan. FireRulePlanned constructs one
// per call; the batch evaluator (src/runtime/batch_eval.h) constructs one
// per (rule, batch) and amortizes the bindings map, trail, join scratch
// and per-depth probe-key buffers across every event of the batch.
class PlanExecutor {
 public:
  PlanExecutor(const Rule& rule, const RulePlan& plan,
               const FunctionRegistry& fns);

  // Evaluates the plan for `event` against `db`, appending firings in
  // exactly FireRulePlanned's order. When `first_candidates` is non-null
  // it replaces step 0's table probe (the batch path's hoisted group
  // probe); candidates are still fully unified, so an over-approximate
  // list — e.g. one keyed on a 64-bit hash — is safe.
  Status Execute(const Tuple& event, const Database& db,
                 const std::vector<const TupleRef*>* first_candidates,
                 std::vector<RuleFiring>& out);

 private:
  Result<bool> Apply(const std::vector<size_t>& asns,
                     const std::vector<size_t>& cons);
  Status Join(size_t idx);

  const Rule& rule_;
  const RulePlan& plan_;
  const FunctionRegistry& fns_;
  const Database* db_ = nullptr;
  const std::vector<const TupleRef*>* first_candidates_ = nullptr;
  std::vector<RuleFiring>* out_ = nullptr;
  Bindings env_;
  std::vector<std::string> trail_;
  std::vector<const TupleRef*> joined_;
  std::vector<std::vector<Value>> keys_;  // per-depth probe-key scratch
};

// Fires `rule` under `plan` (which must have been compiled from it).
// Index probes replace table scans wherever the plan found bound columns;
// when UseNaiveFallback holds the call routes to FireRule instead.
// Identical firing sets to FireRule for well-typed programs; see
// docs/ndlog.md for the exact contract.
Result<std::vector<RuleFiring>> FireRulePlanned(const Rule& rule,
                                                const RulePlan& plan,
                                                const Tuple& event,
                                                const Database& db,
                                                const FunctionRegistry& fns);

}  // namespace dpc

#endif  // DPC_ANALYSIS_PLANNER_H_
