// Pass 9: static per-scheme storage model (N901, W902, W903).
//
// A thin diagnostic front end over cost_model.cc's EstimateStorage: one
// N901 note per rule (expected firings and bytes appended per firing, by
// scheme), one N901 note per scheme with the program totals under the
// StorageParams workload, W902 when the Advanced scheme is predicted to
// save less than the configured margin of the ExSPAN total, and W903 when
// every input-event attribute is an equivalence key — each event is then
// its own class and the Advanced scheme cannot share provenance trees.
#include <cstdio>
#include <string>
#include <vector>

#include "src/analysis/cost_model.h"
#include "src/analysis/passes.h"
#include "src/analysis/planner.h"
#include "src/core/equivalence_keys.h"

namespace dpc {
namespace analysis_internal {

namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

void RunStoragePass(const std::vector<Rule>& rules, const Program& program,
                    const StorageParams& params, std::vector<Diagnostic>& out,
                    StorageReport* report) {
  if (rules.empty()) return;
  ProgramPlan plan = PlanRules(rules);
  StorageReport local = EstimateStorage(program, plan, params);
  if (report != nullptr) *report = local;
  const StorageReport& rep = report != nullptr ? *report : local;

  for (size_t r = 0; r < rules.size() && r < rep.rules.size(); ++r) {
    const RuleStorageReport& rr = rep.rules[r];
    AddDiag(out, Severity::kNote, "N901", rules[r].loc,
            "rule " + rr.rule_id + ": est " + Fmt(rr.firings_per_event) +
                " firings/event; B/firing exspan " + Fmt(rr.exspan_bytes) +
                ", basic " + Fmt(rr.basic_bytes) + ", advanced " +
                Fmt(rr.advanced_bytes) + ", inter-class " +
                Fmt(rr.interclass_bytes));
  }
  for (const SchemeStorageReport& s : rep.schemes) {
    AddDiag(out, Severity::kNote, "N901", rules.front().loc,
            "scheme " + s.scheme + ": prov " + Fmt(s.prov) + " + ruleExec " +
                Fmt(s.rule_exec) + " + events " + Fmt(s.event_store) +
                " + tuples " + Fmt(s.tuple_store) + " = " + Fmt(s.total()) +
                " B (" + Fmt(rep.events) + " events, " + Fmt(rep.classes) +
                " classes, +/-" + Fmt(rep.error_bound * 100.0) + "%)");
  }

  if (rep.advanced_savings < params.advanced_margin) {
    AddDiag(out, Severity::kWarning, "W902", rules.front().loc,
            "the Advanced scheme is predicted to save only " +
                Fmt(rep.advanced_savings * 100.0) +
                "% of the ExSPAN storage total (margin " +
                Fmt(params.advanced_margin * 100.0) +
                "%); compression may not pay for its bookkeeping under "
                "this workload");
  }

  size_t event_arity = rules.front().EventAtom().args.size();
  if (auto keys = ComputeEquivalenceKeys(program);
      keys.ok() && keys->indices().size() == event_arity && event_arity > 0) {
    AddDiag(out, Severity::kWarning, "W903", rules.front().loc,
            "every attribute of input event " +
                program.input_event_relation() +
                " is an equivalence key: each event forms its own class and "
                "the Advanced scheme cannot share provenance trees");
  }
}

}  // namespace analysis_internal
}  // namespace dpc
