#include <string>
#include <vector>

#include "src/analysis/passes.h"
#include "src/core/dependency_graph.h"

namespace dpc {
namespace analysis_internal {

void RunEquiKeyPass(const Program& program, bool emit_notes,
                    std::vector<Diagnostic>& out,
                    std::vector<KeyExplanation>& explanations,
                    std::string& summary) {
  DependencyGraph graph = DependencyGraph::Build(program);
  Result<EquivalenceKeys> keys = ComputeEquivalenceKeys(program, graph);
  Result<std::vector<KeyExplanation>> expl =
      ExplainEquivalenceKeys(program, graph);
  if (!keys.ok() || !expl.ok()) {
    const Status& st = keys.ok() ? expl.status() : keys.status();
    AddDiag(out, Severity::kError, "E502", SourceLoc{},
            "internal: equivalence-key derivation failed: " + st.message());
    return;
  }

  summary = keys->ToString();
  explanations = std::move(expl).value();

  // Soundness cross-check: the explanation pass derives key status by
  // shortest-path search, GetEquiKeys by reachable-set intersection. Any
  // divergence means one of them is wrong — and with it Theorem 1's
  // compression guarantee — so it is an error, not a warning.
  std::vector<size_t> from_explanations;
  for (const KeyExplanation& ex : explanations) {
    if (ex.is_key) from_explanations.push_back(ex.attr.index);
  }
  if (from_explanations != keys->indices()) {
    std::string derived = "(";
    for (size_t k = 0; k < from_explanations.size(); ++k) {
      if (k > 0) derived += ", ";
      derived += keys->event_relation() + ":" +
                 std::to_string(from_explanations[k]);
    }
    derived += ")";
    AddDiag(out, Severity::kError, "E502", SourceLoc{},
            "equivalence-key soundness cross-check failed: GetEquiKeys "
            "derived " +
                summary + " but the explanation pass derived " + derived);
    return;
  }

  if (emit_notes) {
    const Atom& ev_atom = program.rules().front().EventAtom();
    for (const KeyExplanation& ex : explanations) {
      SourceLoc loc = ex.attr.index < ev_atom.args.size()
                          ? ev_atom.args[ex.attr.index].loc
                          : SourceLoc{};
      AddDiag(out, Severity::kNote, "N501", loc, ex.ToString());
    }
  }
}

}  // namespace analysis_internal
}  // namespace dpc
