// Internal declarations of the individual analyzer passes; the public
// entry point is Analyze{Rules,Source} in analyzer.h.
#ifndef DPC_ANALYSIS_PASSES_H_
#define DPC_ANALYSIS_PASSES_H_

#include <string>
#include <vector>

#include "src/core/equivalence_keys.h"
#include "src/ndlog/program.h"
#include "src/util/diagnostics.h"

namespace dpc {
namespace analysis_internal {

// Pass 2: every relation used with a single arity and consistent constant
// types per attribute position; relations of interest must appear in the
// program (E201, W202, W203).
void RunSchemaPass(const std::vector<Rule>& rules,
                   const ProgramOptions& options,
                   std::vector<Diagnostic>& out);

// Pass 3: singleton variables, assignments shadowing atom bindings,
// duplicate assignments (W301, W302, W303).
void RunVariableLintPass(const std::vector<Rule>& rules,
                         std::vector<Diagnostic>& out);

// Pass 4: constant-folds constraints to flag always-true constraints,
// always-false rules, and contradictory equalities (W401, W402, W403).
void RunConstraintPass(const std::vector<Rule>& rules,
                       std::vector<Diagnostic>& out);

// Pass 5: per-attribute key explanations cross-checked against
// ComputeEquivalenceKeys (N501 notes, E502 on divergence).
void RunEquiKeyPass(const Program& program, bool emit_notes,
                    std::vector<Diagnostic>& out,
                    std::vector<KeyExplanation>& explanations,
                    std::string& summary);

}  // namespace analysis_internal
}  // namespace dpc

#endif  // DPC_ANALYSIS_PASSES_H_
