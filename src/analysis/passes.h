// Internal declarations of the individual analyzer passes; the public
// entry point is Analyze{Rules,Source} in analyzer.h.
#ifndef DPC_ANALYSIS_PASSES_H_
#define DPC_ANALYSIS_PASSES_H_

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/core/equivalence_keys.h"
#include "src/ndlog/program.h"
#include "src/util/diagnostics.h"

namespace dpc {
namespace analysis_internal {

// Pass 2: every relation used with a single arity and consistent constant
// types per attribute position; relations of interest must appear in the
// program (E201, W202, W203).
void RunSchemaPass(const std::vector<Rule>& rules,
                   const ProgramOptions& options,
                   std::vector<Diagnostic>& out);

// Pass 3: singleton variables, assignments shadowing atom bindings,
// duplicate assignments (W301, W302, W303).
void RunVariableLintPass(const std::vector<Rule>& rules,
                         std::vector<Diagnostic>& out);

// Pass 4: constant-folds constraints to flag always-true constraints,
// always-false rules, and contradictory equalities (W401, W402, W403).
void RunConstraintPass(const std::vector<Rule>& rules,
                       std::vector<Diagnostic>& out);

// Pass 5: per-attribute key explanations cross-checked against
// ComputeEquivalenceKeys (N501 notes, E502 on divergence).
void RunEquiKeyPass(const Program& program, bool emit_notes,
                    std::vector<Diagnostic>& out,
                    std::vector<KeyExplanation>& explanations,
                    std::string& summary);

// Pass 6: compiles every rule into a join plan and diagnoses unavoidable
// cross-product joins (W601), unindexable probes (W602) and rules whose
// trigger relation is unreachable from the input event (W603). `program`
// may be null (errors elsewhere): the plan warnings still run, only the
// cost model needs a constructed Program. With `emit_notes` one N604
// plan/cost note per rule is added and `report` (when non-null) filled.
void RunPlanPass(const std::vector<Rule>& rules, const Program* program,
                 bool emit_notes, std::vector<Diagnostic>& out,
                 PlanReport* report);

}  // namespace analysis_internal
}  // namespace dpc

#endif  // DPC_ANALYSIS_PASSES_H_
