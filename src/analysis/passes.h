// Internal declarations of the individual analyzer passes; the public
// entry point is Analyze{Rules,Source} in analyzer.h.
#ifndef DPC_ANALYSIS_PASSES_H_
#define DPC_ANALYSIS_PASSES_H_

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/core/equivalence_keys.h"
#include "src/ndlog/program.h"
#include "src/util/diagnostics.h"

namespace dpc {
namespace analysis_internal {

// Pass 2: every relation used with a single arity and consistent constant
// types per attribute position; relations of interest must appear in the
// program (E201, W202, W203).
void RunSchemaPass(const std::vector<Rule>& rules,
                   const ProgramOptions& options,
                   std::vector<Diagnostic>& out);

// Pass 3: singleton variables, assignments shadowing atom bindings,
// duplicate assignments (W301, W302, W303).
void RunVariableLintPass(const std::vector<Rule>& rules,
                         std::vector<Diagnostic>& out);

// Pass 4: constant-folds constraints to flag always-true constraints,
// always-false rules, and contradictory equalities (W401, W402, W403).
void RunConstraintPass(const std::vector<Rule>& rules,
                       std::vector<Diagnostic>& out);

// Pass 5: per-attribute key explanations cross-checked against
// ComputeEquivalenceKeys (N501 notes, E502 on divergence).
void RunEquiKeyPass(const Program& program, bool emit_notes,
                    std::vector<Diagnostic>& out,
                    std::vector<KeyExplanation>& explanations,
                    std::string& summary);

// Pass 6: compiles every rule into a join plan and diagnoses unavoidable
// cross-product joins (W601), unindexable probes (W602) and rules whose
// trigger relation is unreachable from the input event (W603). `program`
// may be null (errors elsewhere): the plan warnings still run, only the
// cost model needs a constructed Program. With `emit_notes` one N604
// plan/cost note per rule is added and `report` (when non-null) filled.
void RunPlanPass(const std::vector<Rule>& rules, const Program* program,
                 bool emit_notes, std::vector<Diagnostic>& out,
                 PlanReport* report);

// Pass 7 (opt-in): shard-locality classification. A rule is node-local
// when its head location term equals its event location term (N701 note);
// otherwise it is cross-shard, and if its destination is neither a
// constant node nor reachable from an equivalence key of the input event
// in the dependency graph, the sharded runtime cannot route its §5.5
// cache resets — W702. Condition atoms not co-located with the event are
// E703 errors. Requires a constructed Program (dependency graph +
// equivalence keys), hence an error-free front half.
void RunLocalityPass(const std::vector<Rule>& rules, const Program& program,
                     std::vector<Diagnostic>& out, ShardReport* report);

// Pass 8: derivation boundedness. Builds the predicate-level trigger
// graph, detects recursive cycles, and attempts a boundedness proof per
// cycle: a strictly-decreasing guarded integer argument (N802), finite
// derivable-event support — every cycle-head attribute drawn from
// slow-changing state, so content-deduplicated provenance tables saturate
// (N802) — or topology consumption — every cycle hop relocates to a
// destination read from slow-changing state (N803, conditional on that
// state being acyclic). Unproven cycles are W801 "potentially unbounded
// derivation" with the cycle path; a cycle rule whose head is its event
// verbatim re-fires identically forever (E804). A program whose cycles
// are all certified (or that has none) gets an N804 certification note.
// W801/E804 are always on; the notes and `report` fill under
// `emit_notes`. `program` may be null (keyed-destination details are then
// omitted from N803).
void RunGrowthPass(const std::vector<Rule>& rules, const Program* program,
                   bool emit_notes, std::vector<Diagnostic>& out,
                   GrowthReport* report);

// Pass 9 (opt-in): static per-scheme storage model. Reuses the pass-6
// cost machinery (plans, trigger rates, equivalence keys) to price
// expected provenance bytes per rule firing and per program for ExSPAN,
// Basic, Advanced and Advanced+inter-class, emitting N901 notes, W902
// when Advanced is predicted to save less than params.advanced_margin of
// the ExSPAN total, and W903 when every event attribute is an equivalence
// key (each event its own class; Advanced cannot share trees). Requires a
// constructed Program, hence an error-free front half.
void RunStoragePass(const std::vector<Rule>& rules, const Program& program,
                    const StorageParams& params, std::vector<Diagnostic>& out,
                    StorageReport* report);

}  // namespace analysis_internal
}  // namespace dpc

#endif  // DPC_ANALYSIS_PASSES_H_
