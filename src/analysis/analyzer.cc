#include "src/analysis/analyzer.h"

#include <cstdio>
#include <optional>

#include "src/analysis/passes.h"
#include "src/ndlog/conformance.h"
#include "src/ndlog/parser.h"

namespace dpc {

using analysis_internal::RunConstraintPass;
using analysis_internal::RunEquiKeyPass;
using analysis_internal::RunGrowthPass;
using analysis_internal::RunLocalityPass;
using analysis_internal::RunPlanPass;
using analysis_internal::RunSchemaPass;
using analysis_internal::RunStoragePass;
using analysis_internal::RunVariableLintPass;

SourceLoc ExtractLocFromMessage(const std::string& message) {
  // Parser and lexer errors all end in "... at line L, column C"; take the
  // last occurrence so embedded numbers earlier in the message don't
  // confuse the scan.
  size_t pos = message.rfind("line ");
  if (pos == std::string::npos) return SourceLoc{};
  int line = 0;
  int column = 0;
  if (std::sscanf(message.c_str() + pos, "line %d, column %d", &line,
                  &column) == 2 &&
      line > 0) {
    return SourceLoc{line, column};
  }
  if (std::sscanf(message.c_str() + pos, "line %d", &line) == 1 && line > 0) {
    return SourceLoc{line, 1};
  }
  return SourceLoc{};
}

AnalysisResult AnalyzeRules(std::vector<Rule> rules,
                            const AnalyzerOptions& options) {
  AnalysisResult res;

  CheckDelpConformance(rules, res.diagnostics);
  res.conformant = CountErrors(res.diagnostics) == 0;

  RunSchemaPass(rules, options.program, res.diagnostics);
  RunVariableLintPass(rules, res.diagnostics);
  RunConstraintPass(rules, res.diagnostics);

  // Passes 5 and 6 want an error-free front half: plans and keys derived
  // from an ill-formed DELP (empty bodies, unbound variables, schema
  // clashes) would explain nothing, and the planner assumes every rule
  // has an event atom. The cost model additionally needs a constructible
  // Program for its dependency graph.
  bool clean = CountErrors(res.diagnostics) == 0;
  std::optional<Program> program;
  if (clean) {
    auto prog = Program::FromRules(rules, options.program);
    if (prog.ok()) {
      program = std::move(prog).value();
    } else if (options.explain_keys) {
      AddDiag(res.diagnostics, Severity::kError, "E502", SourceLoc{},
              "internal: conformance passed but Program construction "
              "failed: " +
                  prog.status().message());
    }
  }

  if (clean) {
    RunPlanPass(rules, program ? &*program : nullptr, options.plan_notes,
                res.diagnostics,
                options.plan_notes ? &res.plan_report : nullptr);
  }

  if (options.explain_keys && program) {
    RunEquiKeyPass(*program, options.key_notes, res.diagnostics,
                   res.key_explanations, res.key_summary);
  }

  // Pass 7 shares pass 5/6's preconditions: locality classifications of an
  // ill-formed DELP would be meaningless, and the keyedness check needs
  // the constructed Program's dependency graph.
  if (options.shard && program) {
    RunLocalityPass(rules, *program, res.diagnostics, &res.shard_report);
  }

  // Pass 8 runs whenever the front half is clean: W801/E804 are defect
  // checks, so they are always on; only the certification notes (and the
  // report) are opt-in. Pass 9 is a pure report and needs the Program.
  if (clean) {
    RunGrowthPass(rules, program ? &*program : nullptr, options.growth_notes,
                  res.diagnostics,
                  options.growth_notes ? &res.growth_report : nullptr);
  }
  if (options.storage && program) {
    RunStoragePass(rules, *program, options.storage_params, res.diagnostics,
                   &res.storage_report);
  }

  SortByLocation(res.diagnostics);
  return res;
}

AnalysisResult AnalyzeSource(std::string_view source,
                             const AnalyzerOptions& options) {
  auto rules = ParseRules(source);
  if (!rules.ok()) {
    AnalysisResult res;
    AddDiag(res.diagnostics, Severity::kError, "E001",
            ExtractLocFromMessage(rules.status().message()),
            rules.status().message());
    return res;
  }
  return AnalyzeRules(std::move(rules).value(), options);
}

}  // namespace dpc
