#include "src/analysis/analyzer.h"

#include <cstdio>

#include "src/analysis/passes.h"
#include "src/ndlog/conformance.h"
#include "src/ndlog/parser.h"

namespace dpc {

using analysis_internal::RunConstraintPass;
using analysis_internal::RunEquiKeyPass;
using analysis_internal::RunSchemaPass;
using analysis_internal::RunVariableLintPass;

SourceLoc ExtractLocFromMessage(const std::string& message) {
  // Parser and lexer errors all end in "... at line L, column C"; take the
  // last occurrence so embedded numbers earlier in the message don't
  // confuse the scan.
  size_t pos = message.rfind("line ");
  if (pos == std::string::npos) return SourceLoc{};
  int line = 0;
  int column = 0;
  if (std::sscanf(message.c_str() + pos, "line %d, column %d", &line,
                  &column) == 2 &&
      line > 0) {
    return SourceLoc{line, column};
  }
  if (std::sscanf(message.c_str() + pos, "line %d", &line) == 1 && line > 0) {
    return SourceLoc{line, 1};
  }
  return SourceLoc{};
}

AnalysisResult AnalyzeRules(std::vector<Rule> rules,
                            const AnalyzerOptions& options) {
  AnalysisResult res;

  CheckDelpConformance(rules, res.diagnostics);
  res.conformant = CountErrors(res.diagnostics) == 0;

  RunSchemaPass(rules, options.program, res.diagnostics);
  RunVariableLintPass(rules, res.diagnostics);
  RunConstraintPass(rules, res.diagnostics);

  // The soundness pass needs a constructible, schema-clean Program: keys
  // derived from an ill-formed DELP would explain nothing.
  if (options.explain_keys && CountErrors(res.diagnostics) == 0) {
    auto prog = Program::FromRules(std::move(rules), options.program);
    if (prog.ok()) {
      RunEquiKeyPass(*prog, options.key_notes, res.diagnostics,
                     res.key_explanations, res.key_summary);
    } else {
      AddDiag(res.diagnostics, Severity::kError, "E502", SourceLoc{},
              "internal: conformance passed but Program construction "
              "failed: " +
                  prog.status().message());
    }
  }

  SortByLocation(res.diagnostics);
  return res;
}

AnalysisResult AnalyzeSource(std::string_view source,
                             const AnalyzerOptions& options) {
  auto rules = ParseRules(source);
  if (!rules.ok()) {
    AnalysisResult res;
    AddDiag(res.diagnostics, Severity::kError, "E001",
            ExtractLocFromMessage(rules.status().message()),
            rules.status().message());
    return res;
  }
  return AnalyzeRules(std::move(rules).value(), options);
}

}  // namespace dpc
