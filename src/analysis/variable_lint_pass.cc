#include <map>
#include <string>

#include "src/analysis/passes.h"

namespace dpc {
namespace analysis_internal {

namespace {

struct VarUse {
  int count = 0;
  SourceLoc first_loc;
  bool only_in_head = true;
  // The single occurrence (if count==1) is a body atom's location
  // argument; dropping the location of a consumed event is idiomatic
  // (e.g. DNS r4), so such singletons are not flagged.
  bool sole_is_body_location = false;
};

}  // namespace

void RunVariableLintPass(const std::vector<Rule>& rules,
                         std::vector<Diagnostic>& out) {
  for (const Rule& rule : rules) {
    std::map<std::string, VarUse> uses;
    auto touch = [&](const std::string& var, SourceLoc loc, bool in_head,
                     bool body_location) {
      VarUse& u = uses[var];
      if (u.count == 0) {
        u.first_loc = loc;
        u.sole_is_body_location = body_location;
      } else {
        u.sole_is_body_location = false;
      }
      ++u.count;
      u.only_in_head = u.only_in_head && in_head;
    };

    for (const Term& t : rule.head.args) {
      if (t.is_var()) touch(t.var, t.loc, /*in_head=*/true, false);
    }
    for (const Atom& atom : rule.atoms) {
      for (size_t i = 0; i < atom.args.size(); ++i) {
        const Term& t = atom.args[i];
        if (t.is_var()) touch(t.var, t.loc, false, /*body_location=*/i == 0);
      }
    }
    for (const Constraint& c : rule.constraints) {
      std::vector<std::string> vars;
      c.expr->CollectVars(vars);
      for (const auto& v : vars) touch(v, c.loc, false, false);
    }

    // Assignments: the assigned variable plus the right-hand side.
    std::map<std::string, SourceLoc> assigned;
    for (const Assignment& asn : rule.assignments) {
      bool bound_by_atom = false;
      SourceLoc atom_loc;
      for (const Atom& atom : rule.atoms) {
        for (const Term& t : atom.args) {
          if (t.is_var() && t.var == asn.var) {
            bound_by_atom = true;
            atom_loc = t.loc;
          }
        }
      }
      if (bound_by_atom) {
        Diagnostic& d = AddDiag(
            out, Severity::kWarning, "W302", asn.loc,
            "rule " + rule.id + ": assignment to " + asn.var +
                " shadows its binding from a body atom; the assignment "
                "acts as an equality filter");
        AddDiag(d.notes, Severity::kNote, "W302", atom_loc,
                asn.var + " is bound here");
      }
      auto [it, inserted] = assigned.emplace(asn.var, asn.loc);
      if (!inserted) {
        Diagnostic& d =
            AddDiag(out, Severity::kWarning, "W303", asn.loc,
                    "rule " + rule.id + ": variable " + asn.var +
                        " is assigned more than once");
        AddDiag(d.notes, Severity::kNote, "W303", it->second,
                "first assigned here");
      }
      touch(asn.var, asn.loc, false, false);
      std::vector<std::string> vars;
      asn.expr->CollectVars(vars);
      for (const auto& v : vars) touch(v, asn.loc, false, false);
    }

    for (const auto& [var, use] : uses) {
      if (use.count != 1) continue;
      if (!var.empty() && var[0] == '_') continue;  // intentional singleton
      if (use.sole_is_body_location) continue;
      // A variable occurring only in the head is unbound: the conformance
      // pass already reports E106, so don't pile a lint warning on top.
      if (use.only_in_head) continue;
      AddDiag(out, Severity::kWarning, "W301", use.first_loc,
              "rule " + rule.id + ": variable " + var +
                  " occurs only once (singleton); prefix it with _ if "
                  "intentional");
    }
  }
}

}  // namespace analysis_internal
}  // namespace dpc
