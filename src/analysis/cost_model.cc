#include "src/analysis/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/analysis/trigger_graph.h"
#include "src/core/dependency_graph.h"
#include "src/core/equivalence_keys.h"
#include "src/util/serial.h"

namespace dpc {

namespace {

// True when the head's location term can differ from the event's at
// runtime: any pair other than the same variable or the same constant.
bool HeadRelocates(const Rule& rule) {
  if (rule.head.args.empty() || rule.EventAtom().args.empty()) return false;
  const Term& head_loc = rule.head.args[0];
  const Term& event_loc = rule.EventAtom().args[0];
  if (head_loc.is_var() && event_loc.is_var()) {
    return head_loc.var != event_loc.var;
  }
  if (!head_loc.is_var() && !event_loc.is_var()) {
    return head_loc.constant != event_loc.constant;
  }
  return true;
}

}  // namespace

ProgramCostEstimate EstimateCost(const Program& program,
                                 const ProgramPlan& plan,
                                 const CostParams& params) {
  ProgramCostEstimate est;

  // Union of attribute nodes reachable from any equivalence-key attribute
  // of the input event: probes on these columns are key-driven.
  DependencyGraph graph = DependencyGraph::Build(program);
  std::set<AttrNode> key_reach;
  if (auto keys = ComputeEquivalenceKeys(program, graph); keys.ok()) {
    for (size_t index : keys->indices()) {
      std::set<AttrNode> reach = graph.ReachableSet(
          AttrNode{program.input_event_relation(), index});
      key_reach.insert(reach.begin(), reach.end());
    }
  }

  // Expected tuple count per event relation, per injected input event.
  std::map<std::string, double> event_rate;
  event_rate[program.input_event_relation()] = 1.0;

  const std::vector<Rule>& rules = program.rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const RulePlan& rp = plan.rules[r];

    RuleCostEstimate rc;
    rc.rule_id = rule.id;
    rc.fanout = rp.never_fires ? 0.0 : 1.0;
    for (const PlanStep& step : rp.steps) {
      const Atom& atom = rule.atoms[step.atom_index];
      StepCostEstimate sc;
      sc.atom_index = step.atom_index;
      sc.indexed = !step.bound_columns.empty();
      if (step.bound_columns.empty()) {
        sc.est_matches = params.slow_table_rows;
      } else {
        double divisor = 1.0;
        for (size_t col : step.bound_columns) {
          divisor *= params.distinct_per_column;
          if (key_reach.count(AttrNode{atom.relation, col}) > 0) {
            divisor *= params.key_column_boost;
          }
        }
        sc.est_matches = std::max(1.0, params.slow_table_rows / divisor);
      }
      if (!rp.never_fires) rc.fanout *= sc.est_matches;
      rc.steps.push_back(sc);
    }

    auto rate = event_rate.find(rule.EventAtom().relation);
    rc.trigger_rate = rate == event_rate.end() ? 0.0 : rate->second;
    rc.relocates = HeadRelocates(rule);
    if (rc.relocates) {
      rc.comm_bytes =
          rc.fanout * static_cast<double>(rule.head.args.size()) *
          params.bytes_per_value;
    }
    est.total_comm_bytes += rc.trigger_rate * rc.comm_bytes;
    event_rate[rule.head.relation] += rc.trigger_rate * rc.fanout;

    est.rules.push_back(std::move(rc));
  }
  return est;
}

namespace {

// Wire sizes of the provenance-table entries, mirroring the Serialize
// methods in src/core/prov_tables.cc (which the differential test in
// tests/analysis/storage_model_test.cc keeps honest end-to-end).
constexpr double kNodeIdBytes = 4;
constexpr double kDigestBytes = 20;
constexpr double kNodeRidBytes = kNodeIdBytes + kDigestBytes;
constexpr double kProvBytes = kNodeIdBytes + kDigestBytes + kNodeRidBytes;
constexpr double kLinkBytes = kNodeIdBytes + kDigestBytes + kNodeRidBytes;
// Content-addressed store rows prefix the serialized payload with a key.
constexpr double kStoreKeyBytes = kDigestBytes;

// RuleExecEntry bytes for a firing of `rule` referencing `nvids` vids.
double RuleExecBytes(const Rule& rule, size_t nvids, bool with_next) {
  return kNodeIdBytes + kDigestBytes +
         static_cast<double>(StringSerializedSize(rule.id) +
                             VarintSize(nvids)) +
         kDigestBytes * static_cast<double>(nvids) +
         (with_next ? kNodeRidBytes : 0.0);
}

}  // namespace

StorageReport EstimateStorage(const Program& program, const ProgramPlan& plan,
                              const StorageParams& params,
                              const CostParams& cost_params) {
  StorageReport rep;
  rep.analyzed = true;
  rep.error_bound = params.error_bound;
  rep.events = params.events;

  const std::vector<Rule>& rules = program.rules();
  const double events = params.events;

  // Expected distinct equivalence classes. With no explicit fraction, a
  // crude default: the non-location key attributes draw independently
  // from `distinct_per_column` values each.
  size_t key_count = 0;
  std::vector<size_t> key_indices;
  if (auto keys = ComputeEquivalenceKeys(program); keys.ok()) {
    key_indices = keys->indices();
    key_count = key_indices.size();
  }
  double fraction = params.class_fraction;
  if (fraction < 0.0) {
    double non_loc = key_count > 0 ? static_cast<double>(key_count - 1) : 0.0;
    fraction = std::min(
        1.0, std::pow(params.distinct_per_column, non_loc) /
                 std::max(1.0, events));
  }
  double classes = std::clamp(fraction, 0.0, 1.0) * events;
  classes = std::min(events, std::max(std::min(1.0, events), classes));
  rep.classes = classes;

  // Per-rule join fan-out (expected firings per triggering event).
  ProgramCostEstimate cost;
  if (params.use_plan_fanout) cost = EstimateCost(program, plan, cost_params);
  std::vector<double> fan(rules.size(), 0.0);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (plan.rules[r].never_fires) continue;
    fan[r] = params.use_plan_fanout
                 ? cost.rules[r].fanout
                 : std::pow(params.fanout,
                            static_cast<double>(
                                rules[r].ConditionAtoms().size()));
  }

  // Entry rate per trigger-graph component: chains reaching the component
  // per injected event. Component ids are in reverse topological order
  // (successors smaller), so one descending sweep propagates rates along
  // cross-component edges. A rule exiting a cyclic component is assumed
  // guarded (forwarding's D == L, DNS's addressRecord probe): it fires
  // once per chain entering the cycle, not once per traversal.
  TriggerGraph graph = TriggerGraph::Build(rules);
  std::vector<double> comp_rate(graph.num_components(), 0.0);
  size_t input_idx = graph.IndexOf(program.input_event_relation());
  if (input_idx != TriggerGraph::npos) {
    comp_rate[graph.ComponentOf(input_idx)] = 1.0;
  }
  for (size_t c = graph.num_components(); c-- > 0;) {
    for (const TriggerEdge& e : graph.edges()) {
      if (graph.ComponentOf(e.from) != static_cast<int>(c)) continue;
      int to = graph.ComponentOf(e.to);
      if (to == static_cast<int>(c)) continue;  // intra-cycle: no new entry
      comp_rate[to] += comp_rate[c] * fan[e.rule_index];
    }
  }

  // F_r: expected firings per injected input event. Rules inside a cyclic
  // component fire once per traversal.
  std::vector<double> firings(rules.size(), 0.0);
  for (size_t r = 0; r < rules.size(); ++r) {
    size_t ev = graph.IndexOf(rules[r].EventAtom().relation);
    if (ev == TriggerGraph::npos) continue;
    double rate = comp_rate[graph.ComponentOf(ev)];
    firings[r] = rate * fan[r] * (graph.RuleInCycle(r) ? params.recursion_depth
                                                       : 1.0);
  }

  // Cross-class sharing of rule-exec rows. The advanced recorder derives
  // every row id from (rule, slow vids) alone — never from the class key —
  // and the tables are content-addressed, so two classes whose chains
  // consume the same slow tuples share rows. A rule's rows are
  // class-distinct only when a slow condition binds a value flowing from a
  // non-location equivalence key (`keyed_slow`), and that distinctness
  // propagates to every downstream rule through the chained `next` pointer
  // (`tainted`). Classes that differ only in the event location are
  // approximated as sharing, the common co-located-workload case.
  std::vector<char> keyed_slow(rules.size(), 0);
  std::vector<char> tainted(rules.size(), 0);
  {
    DependencyGraph dep = DependencyGraph::Build(program);
    std::set<AttrNode> key_reach;
    for (size_t i : key_indices) {
      if (i == 0) continue;
      for (const AttrNode& n :
           dep.ReachableSet(AttrNode{program.input_event_relation(), i})) {
        key_reach.insert(n);
      }
    }
    for (size_t r = 0; r < rules.size(); ++r) {
      const Rule& rule = rules[r];
      // Variables of this rule carrying key-derived values: event-atom
      // positions whose attribute is key-reachable, closed over the
      // rule's assignments. A slow row is selected per class only when a
      // join column is bound to such a variable — a constraint-mediated
      // dependence (f_isSubDomain) narrows the candidates but typically
      // leaves the matched rows shared across co-zoned classes.
      std::set<std::string> key_vars;
      const Atom& ev = rule.EventAtom();
      for (size_t i = 0; i < ev.args.size(); ++i) {
        if (ev.args[i].is_var() &&
            key_reach.count(AttrNode{ev.relation, i}) > 0) {
          key_vars.insert(ev.args[i].var);
        }
      }
      bool grew = true;
      while (grew) {
        grew = false;
        for (const Assignment& as : rule.assignments) {
          if (key_vars.count(as.var) > 0) continue;
          std::vector<std::string> used;
          as.expr->CollectVars(used);
          for (const std::string& v : used) {
            if (key_vars.count(v) > 0) {
              key_vars.insert(as.var);
              grew = true;
              break;
            }
          }
        }
      }
      for (const Atom* cond : rule.ConditionAtoms()) {
        for (const Term& t : cond->args) {
          if (t.is_var() && key_vars.count(t.var) > 0) keyed_slow[r] = 1;
        }
      }
    }
    std::set<std::string> tainted_rel;
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t r = 0; r < rules.size(); ++r) {
        if (keyed_slow[r] == 0 &&
            tainted_rel.count(rules[r].EventAtom().relation) == 0) {
          continue;
        }
        if (tainted_rel.insert(rules[r].head.relation).second) changed = true;
      }
    }
    for (size_t r = 0; r < rules.size(); ++r) {
      tainted[r] = keyed_slow[r] != 0 ||
                   tainted_rel.count(rules[r].EventAtom().relation) > 0;
    }
  }

  // Serialized tuple bytes per relation: relation-name string + arity
  // varint + per-value bytes (src/db/tuple.cc).
  std::map<std::string, size_t> arity;
  for (const Rule& rule : rules) {
    arity.emplace(rule.head.relation, rule.head.args.size());
    for (const Atom& atom : rule.atoms) {
      arity.emplace(atom.relation, atom.args.size());
    }
  }
  auto tuple_bytes = [&](const std::string& rel) {
    auto vb = params.value_bytes_by_relation.find(rel);
    double per_value = vb != params.value_bytes_by_relation.end()
                           ? vb->second
                           : params.value_bytes;
    size_t a = arity.count(rel) > 0 ? arity.at(rel) : 0;
    return static_cast<double>(StringSerializedSize(rel) + VarintSize(a)) +
           static_cast<double>(a) * per_value;
  };

  // Slow-changing rows are assumed spread evenly over the slow relations,
  // so the model prices them at the mean slow-tuple width.
  double slow_tb = 0.0;
  {
    std::set<std::string> slow;
    for (const Rule& rule : rules) {
      for (const Atom* cond : rule.ConditionAtoms()) slow.insert(cond->relation);
    }
    for (const std::string& rel : slow) slow_tb += tuple_bytes(rel);
    if (!slow.empty()) slow_tb /= static_cast<double>(slow.size());
  }
  const double slow_rows = params.slow_rows;
  const double event_tb = tuple_bytes(program.input_event_relation());
  const double event_store = events * (kStoreKeyBytes + event_tb);

  SchemeStorageReport exspan{.scheme = "exspan"};
  SchemeStorageReport basic{.scheme = "basic"};
  SchemeStorageReport advanced{.scheme = "advanced"};
  SchemeStorageReport interclass{.scheme = "advanced-interclass"};
  exspan.event_store = basic.event_store = advanced.event_store =
      interclass.event_store = event_store;

  // ExSPAN materializes the injected event in the tuple store too, and
  // keeps one prov row per injected event plus one per slow row.
  exspan.prov = events * kProvBytes + slow_rows * kProvBytes;
  exspan.tuple_store = events * (kStoreKeyBytes + event_tb) +
                       slow_rows * (kStoreKeyBytes + slow_tb);

  double basic_slow_refs = 0.0;
  double advanced_slow_refs = 0.0;

  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const double f = firings[r];
    const size_t nslow = rule.ConditionAtoms().size();
    // Delivered head of interest: only those firings append prov rows
    // under the compressed schemes.
    const bool interesting =
        program.RoleOf(rule.head.relation) == RelationRole::kTerminal &&
        program.IsOfInterest(rule.head.relation);

    const double ex_exec = RuleExecBytes(rule, 1 + nslow, /*with_next=*/false);
    const double chained_exec = RuleExecBytes(rule, nslow, /*with_next=*/true);
    const double node_exec = RuleExecBytes(rule, nslow, /*with_next=*/false);

    exspan.prov += events * f * kProvBytes;
    exspan.rule_exec += events * f * ex_exec;
    exspan.tuple_store +=
        events * f * (kStoreKeyBytes + tuple_bytes(rule.head.relation));

    basic.prov += interesting ? events * f * kProvBytes : 0.0;
    basic.rule_exec += events * f * chained_exec;
    basic_slow_refs += events * f * static_cast<double>(nslow);

    // Rows shared across classes collapse to one copy per chain position
    // (f rows program-wide); class-distinct rows cost one copy per class.
    const double chain_copies = tainted[r] ? classes * f : f;
    const double node_copies = keyed_slow[r] ? classes * f : f;

    advanced.prov +=
        interesting ? events * f * (kProvBytes + kDigestBytes) : 0.0;
    advanced.rule_exec += chain_copies * chained_exec;
    advanced_slow_refs += node_copies * static_cast<double>(nslow);

    // Inter-class sharing splits the row: the node part (rule + slow vids)
    // shares whenever the slow bindings do, even below a class-distinct
    // prefix; only the link row chains through `next`.
    interclass.rule_exec +=
        node_copies * node_exec + chain_copies * kLinkBytes;

    RuleStorageReport rr;
    rr.rule_id = rule.id;
    rr.firings_per_event = f;
    rr.exspan_bytes = kProvBytes + ex_exec + kStoreKeyBytes +
                      tuple_bytes(rule.head.relation);
    rr.basic_bytes = chained_exec + (interesting ? kProvBytes : 0.0);
    rr.advanced_bytes =
        chained_exec + (interesting ? kProvBytes + kDigestBytes : 0.0);
    rr.interclass_bytes = node_exec + kLinkBytes +
                          (interesting ? kProvBytes + kDigestBytes : 0.0);
    rep.rules.push_back(std::move(rr));
  }

  // The compressed schemes materialize only the slow tuples their firings
  // reference (deduplicated, so capped by the live rows); exactly one rule
  // consumes each raw injected event, whose vid the leaf firing records.
  basic.rule_exec += events * kDigestBytes;
  basic.tuple_store =
      std::min(slow_rows, basic_slow_refs) * (kStoreKeyBytes + slow_tb);
  advanced.tuple_store =
      std::min(slow_rows, advanced_slow_refs) * (kStoreKeyBytes + slow_tb);
  interclass.prov = advanced.prov;
  interclass.tuple_store = advanced.tuple_store;

  rep.schemes = {exspan, basic, advanced, interclass};
  if (exspan.total() > 0.0) {
    rep.advanced_savings =
        (exspan.total() - advanced.total()) / exspan.total();
  }
  return rep;
}

}  // namespace dpc
