#include "src/analysis/cost_model.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/core/dependency_graph.h"
#include "src/core/equivalence_keys.h"

namespace dpc {

namespace {

// True when the head's location term can differ from the event's at
// runtime: any pair other than the same variable or the same constant.
bool HeadRelocates(const Rule& rule) {
  if (rule.head.args.empty() || rule.EventAtom().args.empty()) return false;
  const Term& head_loc = rule.head.args[0];
  const Term& event_loc = rule.EventAtom().args[0];
  if (head_loc.is_var() && event_loc.is_var()) {
    return head_loc.var != event_loc.var;
  }
  if (!head_loc.is_var() && !event_loc.is_var()) {
    return head_loc.constant != event_loc.constant;
  }
  return true;
}

}  // namespace

ProgramCostEstimate EstimateCost(const Program& program,
                                 const ProgramPlan& plan,
                                 const CostParams& params) {
  ProgramCostEstimate est;

  // Union of attribute nodes reachable from any equivalence-key attribute
  // of the input event: probes on these columns are key-driven.
  DependencyGraph graph = DependencyGraph::Build(program);
  std::set<AttrNode> key_reach;
  if (auto keys = ComputeEquivalenceKeys(program, graph); keys.ok()) {
    for (size_t index : keys->indices()) {
      std::set<AttrNode> reach = graph.ReachableSet(
          AttrNode{program.input_event_relation(), index});
      key_reach.insert(reach.begin(), reach.end());
    }
  }

  // Expected tuple count per event relation, per injected input event.
  std::map<std::string, double> event_rate;
  event_rate[program.input_event_relation()] = 1.0;

  const std::vector<Rule>& rules = program.rules();
  for (size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const RulePlan& rp = plan.rules[r];

    RuleCostEstimate rc;
    rc.rule_id = rule.id;
    rc.fanout = rp.never_fires ? 0.0 : 1.0;
    for (const PlanStep& step : rp.steps) {
      const Atom& atom = rule.atoms[step.atom_index];
      StepCostEstimate sc;
      sc.atom_index = step.atom_index;
      sc.indexed = !step.bound_columns.empty();
      if (step.bound_columns.empty()) {
        sc.est_matches = params.slow_table_rows;
      } else {
        double divisor = 1.0;
        for (size_t col : step.bound_columns) {
          divisor *= params.distinct_per_column;
          if (key_reach.count(AttrNode{atom.relation, col}) > 0) {
            divisor *= params.key_column_boost;
          }
        }
        sc.est_matches = std::max(1.0, params.slow_table_rows / divisor);
      }
      if (!rp.never_fires) rc.fanout *= sc.est_matches;
      rc.steps.push_back(sc);
    }

    auto rate = event_rate.find(rule.EventAtom().relation);
    rc.trigger_rate = rate == event_rate.end() ? 0.0 : rate->second;
    rc.relocates = HeadRelocates(rule);
    if (rc.relocates) {
      rc.comm_bytes =
          rc.fanout * static_cast<double>(rule.head.args.size()) *
          params.bytes_per_value;
    }
    est.total_comm_bytes += rc.trigger_rate * rc.comm_bytes;
    event_rate[rule.head.relation] += rc.trigger_rate * rc.fanout;

    est.rules.push_back(std::move(rc));
  }
  return est;
}

}  // namespace dpc
