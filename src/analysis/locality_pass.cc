// Pass 7: shard-locality classification (N701, W702, E703).
//
// The sharded runtime the roadmap targets partitions nodes across worker
// threads. A rule firing is cheap when it stays on the shard that owns the
// triggering event and expensive — a cross-shard handoff plus, for the
// advanced scheme, a §5.5 co-located cache reset at the destination — when
// it does not. All of that is decidable statically from the location
// terms:
//
//   node-local   head(@L, ...) :- event(@L, ...), ...     N701 note
//   cross-shard  head(@X, ...) :- event(@L, ...), ...     X != L
//
// A cross-shard rule is routable when its destination is a function of the
// event alone: a constant node, or a location variable reachable from an
// equivalence-key attribute of the input event in the dependency graph
// (§5.2) — two key-equivalent events then agree on the destination shard,
// so the per-equivalence-class state of §5.3/§5.5 stays shard-partitioned.
// A cross-shard rule whose destination is *not* keyed defeats that
// partitioning (W702): the cache reset for an equivalence class may land
// on any shard, forcing cross-shard coordination the runtime cannot
// amortize.
//
// Condition atoms are joined at the event's node; a condition whose
// location term differs from the event's cannot be evaluated on one shard
// at all (E703).
#include <string>
#include <vector>

#include "src/analysis/passes.h"
#include "src/core/dependency_graph.h"
#include "src/core/equivalence_keys.h"

namespace dpc {
namespace analysis_internal {

namespace {

// Syntactic equality of two location terms: same variable, or same
// constant value.
bool SameLocTerm(const Term& a, const Term& b) {
  if (a.is_var() != b.is_var()) return false;
  if (a.is_var()) return a.var == b.var;
  return a.constant == b.constant;
}

}  // namespace

void RunLocalityPass(const std::vector<Rule>& rules, const Program& program,
                     std::vector<Diagnostic>& out, ShardReport* report) {
  if (rules.empty()) return;

  DependencyGraph graph = DependencyGraph::Build(program);
  Result<EquivalenceKeys> keys = ComputeEquivalenceKeys(program, graph);
  if (!keys.ok()) {
    AddDiag(out, Severity::kError, "E502", SourceLoc{},
            "internal: Program constructed but equivalence keys failed in "
            "the locality pass: " +
                keys.status().message());
    return;
  }
  const std::string& input = keys.value().event_relation();

  for (const Rule& rule : rules) {
    if (rule.atoms.empty()) continue;  // E102 elsewhere; pass runs clean
    const Atom& event = rule.EventAtom();
    if (event.args.empty() || rule.head.args.empty()) continue;
    const Term& event_loc = event.args[0];

    RuleShardReport rep;
    rep.rule_id = rule.id;
    rep.event_loc = event_loc.ToString();
    rep.head_loc = rule.head.args[0].ToString();

    for (const Atom* cond : rule.ConditionAtoms()) {
      if (!cond->args.empty() && SameLocTerm(cond->args[0], event_loc)) {
        continue;
      }
      ++rep.mixed_conditions;
      std::string cond_loc =
          cond->args.empty() ? "<none>" : cond->args[0].ToString();
      AddDiag(out, Severity::kError, "E703", cond->loc,
              "rule " + rule.id + ": condition " + cond->relation +
                  " is at location " + cond_loc + " but the event is at " +
                  rep.event_loc +
                  "; conditions must be co-located with their triggering "
                  "event to evaluate on one shard");
    }

    rep.node_local = SameLocTerm(rule.head.args[0], event_loc);
    if (rep.node_local) {
      rep.keyed = true;
      AddDiag(out, Severity::kNote, "N701", rule.loc,
              "rule " + rule.id + ": node-local — head location " +
                  rep.head_loc +
                  " equals the event location; the firing never leaves "
                  "the event's shard");
    } else if (!rule.head.args[0].is_var()) {
      // Constant destination: every firing lands on one fixed shard.
      rep.keyed = true;
    } else {
      // Destination is keyed when the head's location attribute is
      // reachable from some equivalence-key attribute of the input event:
      // key-equivalent events then route to the same shard.
      AttrNode head_loc_attr{rule.head.relation, 0};
      for (size_t k : keys.value().indices()) {
        if (graph.Reachable(AttrNode{input, k}, head_loc_attr)) {
          rep.keyed = true;
          break;
        }
      }
      if (!rep.keyed) {
        AddDiag(out, Severity::kWarning, "W702", rule.loc,
                "rule " + rule.id + ": cross-shard — head location " +
                    rep.head_loc +
                    " is not determined by any equivalence key of input "
                    "event " +
                    input +
                    "; the §5.5 cache reset for an equivalence class may "
                    "land on any shard (cache-reset hazard)");
      }
    }

    if (report != nullptr) report->rules.push_back(std::move(rep));
  }
}

}  // namespace analysis_internal
}  // namespace dpc
