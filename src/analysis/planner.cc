#include "src/analysis/planner.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <utility>

namespace dpc {

namespace {

bool AllVarsBound(const Expr& expr, const std::set<std::string>& bound) {
  std::vector<std::string> vars;
  expr.CollectVars(vars);
  for (const std::string& v : vars) {
    if (bound.count(v) == 0) return false;
  }
  return true;
}

// Columns of `atom` whose term is a constant or an already-bound variable,
// sorted ascending. A repeated unbound variable contributes only its later
// occurrences once the first has bound it — but at probe time all
// occurrences bind together, so only constants and previously-bound
// variables count here.
IndexSignature BoundColumnsOf(const Atom& atom,
                              const std::set<std::string>& bound) {
  IndexSignature cols;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    if (!t.is_var() || bound.count(t.var) > 0) cols.push_back(i);
  }
  return cols;
}

// Scheduling state threaded through the pushdown: which assignments and
// constraints have been placed, and the variables bound so far.
struct Scheduler {
  const Rule& rule;
  std::set<std::string> bound;
  std::vector<bool> asn_placed;
  std::vector<bool> con_placed;

  explicit Scheduler(const Rule& r)
      : rule(r),
        asn_placed(r.assignments.size(), false),
        con_placed(r.constraints.size(), false) {}

  // Places every not-yet-placed assignment whose right-hand side is fully
  // bound (iterated to a fixpoint, so body-order chains like N := 2,
  // M := N + 1 place together) and then every fully-bound constraint.
  void PlaceReady(std::vector<size_t>& asn_out, std::vector<size_t>& con_out) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < rule.assignments.size(); ++i) {
        if (asn_placed[i]) continue;
        if (!AllVarsBound(*rule.assignments[i].expr, bound)) continue;
        asn_placed[i] = true;
        asn_out.push_back(i);
        bound.insert(rule.assignments[i].var);
        changed = true;
      }
    }
    for (size_t i = 0; i < rule.constraints.size(); ++i) {
      if (con_placed[i]) continue;
      if (!AllVarsBound(*rule.constraints[i].expr, bound)) continue;
      con_placed[i] = true;
      con_out.push_back(i);
    }
  }

  // Appends everything still unplaced (expressions over variables no atom
  // binds — only possible in non-conformant rules). Evaluating them last
  // reproduces the naive evaluator's unbound-variable error.
  void PlaceLeftovers(std::vector<size_t>& asn_out,
                      std::vector<size_t>& con_out) {
    for (size_t i = 0; i < rule.assignments.size(); ++i) {
      if (!asn_placed[i]) asn_out.push_back(i);
    }
    for (size_t i = 0; i < rule.constraints.size(); ++i) {
      if (!con_placed[i]) con_out.push_back(i);
    }
  }
};

}  // namespace

bool RulePlan::HasCrossProduct() const {
  for (const PlanStep& s : steps) {
    if (s.cross_product) return true;
  }
  return false;
}

std::string RulePlan::ToString(const Rule& rule) const {
  std::string out = rule.EventAtom().relation;
  for (const PlanStep& s : steps) {
    out += " -> " + rule.atoms[s.atom_index].relation;
    if (s.bound_columns.empty()) {
      out += s.cross_product ? "[xprod]" : "[scan]";
    } else {
      out += IndexSignatureToString(s.bound_columns);
    }
  }
  if (never_fires) out += " (never fires)";
  return out;
}

RulePlan PlanRule(const Rule& rule) {
  RulePlan plan;
  plan.rule_id = rule.id;

  // Constant folding, mirroring the W401/W402 constraint pass: seed an
  // environment from assignments whose right-hand sides fold (in body
  // order), then fold each constraint. Always-true constraints leave the
  // plan; an always-false one makes the rule never fire.
  const FunctionRegistry no_functions;
  Bindings fold_env;
  for (const Assignment& asn : rule.assignments) {
    if (fold_env.count(asn.var) > 0) continue;
    Result<Value> v = EvalExpr(*asn.expr, fold_env, no_functions);
    if (v.ok()) fold_env.emplace(asn.var, std::move(v).value());
  }
  Scheduler sched(rule);
  for (size_t i = 0; i < rule.constraints.size(); ++i) {
    Result<Value> v = EvalExpr(*rule.constraints[i].expr, fold_env,
                               no_functions);
    if (!v.ok()) continue;
    if (v->Truthy()) {
      plan.folded_constraints.push_back(i);
      sched.con_placed[i] = true;  // never emitted into the plan
    } else {
      plan.never_fires = true;
    }
  }

  for (const Term& t : rule.EventAtom().args) {
    if (t.is_var()) sched.bound.insert(t.var);
  }
  sched.PlaceReady(plan.pre_assignments, plan.pre_constraints);

  // Greedy join ordering: at each position probe the condition atom with
  // the most bound columns (ties: earliest in body order, so plans are
  // deterministic and degenerate to textual order when nothing differs).
  std::vector<size_t> remaining;
  for (size_t i = 0; i < rule.atoms.size(); ++i) {
    if (i != rule.event_index) remaining.push_back(i);
  }
  while (!remaining.empty()) {
    size_t best_pos = 0;
    IndexSignature best_cols =
        BoundColumnsOf(rule.atoms[remaining[0]], sched.bound);
    for (size_t p = 1; p < remaining.size(); ++p) {
      IndexSignature cols =
          BoundColumnsOf(rule.atoms[remaining[p]], sched.bound);
      if (cols.size() > best_cols.size()) {
        best_pos = p;
        best_cols = std::move(cols);
      }
    }
    PlanStep step;
    step.atom_index = remaining[best_pos];
    step.bound_columns = std::move(best_cols);
    step.cross_product = step.bound_columns.empty() && !plan.steps.empty();
    remaining.erase(remaining.begin() + best_pos);
    for (const Term& t : rule.atoms[step.atom_index].args) {
      if (t.is_var()) sched.bound.insert(t.var);
    }
    sched.PlaceReady(step.assignments, step.constraints);
    plan.steps.push_back(std::move(step));
  }

  if (plan.steps.empty()) {
    sched.PlaceLeftovers(plan.pre_assignments, plan.pre_constraints);
  } else {
    sched.PlaceLeftovers(plan.steps.back().assignments,
                         plan.steps.back().constraints);
  }

  // Batchability flags: body order permutation, order-safety of the naive
  // fallback, and whether step 0's probe key reads straight off the event.
  plan.body_order.resize(plan.steps.size());
  std::iota(plan.body_order.begin(), plan.body_order.end(), size_t{0});
  std::sort(plan.body_order.begin(), plan.body_order.end(),
            [&](size_t a, size_t b) {
              return plan.steps[a].atom_index < plan.steps[b].atom_index;
            });
  plan.naive_order_safe = std::is_sorted(
      plan.steps.begin(), plan.steps.end(),
      [](const PlanStep& a, const PlanStep& b) {
        return a.atom_index < b.atom_index;
      });
  if (!plan.steps.empty() && !plan.steps[0].bound_columns.empty()) {
    const Atom& first = rule.atoms[plan.steps[0].atom_index];
    const Atom& event_atom = rule.EventAtom();
    plan.batch_first_key = true;
    for (size_t col : plan.steps[0].bound_columns) {
      const Term& t = first.args[col];
      if (!t.is_var()) {
        plan.first_key_event_pos.push_back(-1);
        plan.first_key_constants.push_back(t.constant);
        continue;
      }
      // A variable bound by a pre-assignment (not an event position)
      // defeats the direct key read.
      int pos = -1;
      for (size_t p = 0; p < event_atom.args.size(); ++p) {
        if (event_atom.args[p].is_var() && event_atom.args[p].var == t.var) {
          pos = static_cast<int>(p);
          break;
        }
      }
      if (pos < 0) {
        plan.batch_first_key = false;
        break;
      }
      plan.first_key_event_pos.push_back(pos);
      plan.first_key_constants.emplace_back();  // keeps vectors aligned
    }
    if (!plan.batch_first_key) {
      plan.first_key_event_pos.clear();
      plan.first_key_constants.clear();
    }
  }
  return plan;
}

ProgramPlan PlanRules(const std::vector<Rule>& rules) {
  ProgramPlan plan;
  plan.rules.reserve(rules.size());
  for (const Rule& rule : rules) {
    RulePlan rp = PlanRule(rule);
    for (const PlanStep& step : rp.steps) {
      if (step.bound_columns.empty()) continue;
      plan.index_signatures[rule.atoms[step.atom_index].relation].insert(
          step.bound_columns);
    }
    plan.rules.push_back(std::move(rp));
  }
  return plan;
}

ProgramPlan PlanProgram(const Program& program) {
  return PlanRules(program.rules());
}

bool UseNaiveFallback(const Rule& rule, const RulePlan& plan,
                      const Database& db) {
  if (!plan.naive_order_safe || plan.steps.empty() || plan.never_fires) {
    return false;
  }
  for (const PlanStep& step : plan.steps) {
    const Table* table = db.Find(rule.atoms[step.atom_index].relation);
    if (table != nullptr && table->size() > plan.small_table_fallback_rows) {
      return false;
    }
  }
  return true;
}

PlanExecutor::PlanExecutor(const Rule& rule, const RulePlan& plan,
                           const FunctionRegistry& fns)
    : rule_(rule),
      plan_(plan),
      fns_(fns),
      joined_(plan.steps.size(), nullptr),
      keys_(plan.steps.size()) {}

// Evaluates the assignments/constraints placed at one plan position.
// Returns false to prune the current branch (filter failed), true to
// continue; evaluation errors surface as a Status.
Result<bool> PlanExecutor::Apply(const std::vector<size_t>& asns,
                                 const std::vector<size_t>& cons) {
  for (size_t i : asns) {
    const Assignment& asn = rule_.assignments[i];
    DPC_ASSIGN_OR_RETURN(Value v, EvalExpr(*asn.expr, env_, fns_));
    auto it = env_.find(asn.var);
    if (it == env_.end()) {
      env_.emplace(asn.var, std::move(v));
      trail_.push_back(asn.var);
    } else if (it->second != v) {
      return false;
    }
  }
  for (size_t i : cons) {
    DPC_ASSIGN_OR_RETURN(Value v,
                         EvalExpr(*rule_.constraints[i].expr, env_, fns_));
    if (!v.Truthy()) return false;
  }
  return true;
}

Status PlanExecutor::Join(size_t idx) {
  if (idx == plan_.steps.size()) {
    DPC_ASSIGN_OR_RETURN(Tuple head, InstantiateAtom(rule_.head, env_));
    RuleFiring firing;
    firing.head = std::move(head);
    firing.slow_tuples.reserve(plan_.steps.size());
    for (size_t step : plan_.body_order) {
      firing.slow_tuples.push_back(*joined_[step]);
    }
    out_->push_back(std::move(firing));
    return Status::OK();
  }
  const PlanStep& step = plan_.steps[idx];
  const Atom& atom = rule_.atoms[step.atom_index];

  Status st;
  auto visit = [&](const TupleRef& candidate) {
    size_t mark = trail_.size();
    // Full unification re-verifies the probed columns: the index matches
    // on hashes, and repeated/unbound columns still need binding.
    if (MatchAtom(atom, *candidate, env_, trail_)) {
      Result<bool> keep = Apply(step.assignments, step.constraints);
      if (!keep.ok()) {
        st = keep.status();
      } else if (*keep) {
        joined_[idx] = &candidate;
        st = Join(idx + 1);
      }
      if (!st.ok()) {
        UndoTrail(env_, trail_, mark);
        return false;
      }
    }
    UndoTrail(env_, trail_, mark);
    return true;
  };

  if (idx == 0 && first_candidates_ != nullptr) {
    for (const TupleRef* candidate : *first_candidates_) {
      if (!visit(*candidate)) break;
    }
    return st;
  }

  const Table* table = db_->Find(atom.relation);
  if (table == nullptr) return Status::OK();
  if (step.bound_columns.empty()) {
    table->ForEachRef(visit);
  } else {
    std::vector<Value>& key = keys_[idx];
    key.clear();
    for (size_t col : step.bound_columns) {
      const Term& t = atom.args[col];
      if (t.is_var()) {
        auto it = env_.find(t.var);
        if (it == env_.end()) {
          return Status::Internal("plan probes unbound variable " + t.var +
                                  " in rule " + rule_.id);
        }
        key.push_back(it->second);
      } else {
        key.push_back(t.constant);
      }
    }
    table->ForEachMatchRef(step.bound_columns, key, visit);
  }
  return st;
}

Status PlanExecutor::Execute(
    const Tuple& event, const Database& db,
    const std::vector<const TupleRef*>* first_candidates,
    std::vector<RuleFiring>& out) {
  if (plan_.never_fires) return Status::OK();
  env_.clear();  // clear() keeps the map's buckets: no realloc per event
  trail_.clear();
  if (!MatchAtom(rule_.EventAtom(), event, env_)) {
    return Status::OK();  // The event does not instantiate this trigger.
  }
  db_ = &db;
  first_candidates_ = first_candidates;
  out_ = &out;
  DPC_ASSIGN_OR_RETURN(bool keep,
                       Apply(plan_.pre_assignments, plan_.pre_constraints));
  if (!keep) return Status::OK();
  return Join(0);
}

Result<std::vector<RuleFiring>> FireRulePlanned(const Rule& rule,
                                                const RulePlan& plan,
                                                const Tuple& event,
                                                const Database& db,
                                                const FunctionRegistry& fns) {
  std::vector<RuleFiring> out;
  if (plan.never_fires) return out;
  if (UseNaiveFallback(rule, plan, db)) {
    // Tiny tables: naive nested loops beat plan setup, and order safety
    // guarantees the identical firing sequence.
    return FireRule(rule, event, db, fns);
  }
  PlanExecutor exec(rule, plan, fns);
  DPC_RETURN_NOT_OK(exec.Execute(event, db, nullptr, out));
  return out;
}

}  // namespace dpc
