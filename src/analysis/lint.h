// dpc-lint: the file-oriented front end of the static analyzer, surfaced
// as the `dpc_cli lint` subcommand. Lints one or more NDlog source files,
// renders diagnostics as human-readable text or machine-readable JSON, and
// maps the outcome to a process exit code (--werror promotes warnings).
#ifndef DPC_ANALYSIS_LINT_H_
#define DPC_ANALYSIS_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/analyzer.h"

namespace dpc {

enum class LintFormat { kText, kJson };

struct LintOptions {
  AnalyzerOptions analyzer;
  // Treat warnings as fatal for the exit code.
  bool werror = false;
  LintFormat format = LintFormat::kText;
  // Include the per-attribute equivalence-key report in text output (the
  // JSON output always carries it when the soundness pass ran).
  bool print_keys = false;
  // Include the per-rule plan/cost report in text output (the JSON output
  // carries it whenever the analyzer produced one, i.e. under
  // `--plan` / AnalyzerOptions::plan_notes).
  bool print_plan = false;
  // Include the shard-locality report in text output (the JSON output
  // carries it whenever the analyzer produced one, i.e. under
  // `--shard` / AnalyzerOptions::shard).
  bool print_shard = false;
  // Include the boundedness-certification report in text output (the JSON
  // output carries it whenever the analyzer produced one, i.e. under
  // `--growth` / AnalyzerOptions::growth_notes).
  bool print_growth = false;
  // Include the storage-model report in text output (the JSON output
  // carries it whenever the analyzer produced one, i.e. under
  // `--storage` / AnalyzerOptions::storage).
  bool print_storage = false;
};

// One linted file and its analysis result.
struct FileLint {
  std::string file;
  AnalysisResult result;
};

// Analyzes `source` attributed to `file` (display name only; no I/O).
FileLint LintSource(std::string file, std::string_view source,
                    const LintOptions& options);

// "file:line:col: severity: message [code]" lines plus a per-file summary.
std::string RenderText(const std::vector<FileLint>& results,
                       const LintOptions& options);

// JSON object: {"files":[{"file","errors","warnings","diagnostics":[...],
// "equivalence_keys":{...}?,"plans":{...}?,"shards":{...}?,"growth":{...}?,
// "storage":{...}?}],"errors":N,"warnings":M}. Stable schema, documented
// in docs/analysis.md.
std::string RenderJson(const std::vector<FileLint>& results);

// 0 when clean; 1 when any file has errors (or warnings under --werror).
int LintExitCode(const std::vector<FileLint>& results,
                 const LintOptions& options);

// JSON string escaping (exposed for tests).
std::string JsonEscape(std::string_view s);

}  // namespace dpc

#endif  // DPC_ANALYSIS_LINT_H_
