// Abstract syntax for the restricted NDlog dialect of the paper (§2.1, §3.1).
//
// A rule has the shape
//     rID  head(@L, ...) :- event(@L, ...), cond_1, ..., cond_n.
// where each cond is a slow-changing relational atom, an arithmetic
// constraint (e.g. D == L), an assignment (N := L + 2), or a user-defined
// function call used inside a constraint (f_isSubDomain(DM, URL) == true).
#ifndef DPC_NDLOG_AST_H_
#define DPC_NDLOG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/db/value.h"
#include "src/util/diagnostics.h"

namespace dpc {

// A term in a relational atom: either a variable or a constant.
struct Term {
  enum class Kind { kVar, kConst };

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVar;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = std::move(v);
    return t;
  }

  bool is_var() const { return kind == Kind::kVar; }

  std::string ToString() const;

  Kind kind = Kind::kVar;
  std::string var;
  Value constant;
  // Position of the term's token in the source (unset for synthesized AST).
  SourceLoc loc;
};

// A relational atom rel(@a0, a1, ..., an). args[0] is the location term.
struct Atom {
  std::string relation;
  std::vector<Term> args;
  // Position of the relation name in the source.
  SourceLoc loc;

  std::string ToString() const;
};

// Expression AST for constraints and assignments.
struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind { kVar, kConst, kBinary, kCall };
  enum class Op {
    kAdd, kSub, kMul, kDiv, kMod,
    kEq, kNe, kLt, kLe, kGt, kGe,
  };

  static ExprPtr MakeVar(std::string name);
  static ExprPtr MakeConst(Value v);
  static ExprPtr MakeBinary(Op op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeCall(std::string fn, std::vector<ExprPtr> args);

  // Collects the names of all variables mentioned in the expression.
  void CollectVars(std::vector<std::string>& out) const;

  std::string ToString() const;

  Kind kind = Kind::kConst;
  std::string var;          // kVar
  Value constant;           // kConst
  Op op = Op::kAdd;         // kBinary
  ExprPtr lhs, rhs;         // kBinary
  std::string fn;           // kCall
  std::vector<ExprPtr> args;  // kCall
};

const char* OpName(Expr::Op op);
bool IsComparisonOp(Expr::Op op);

// A boolean condition in a rule body; the rule fires only when it evaluates
// truthy under the candidate bindings.
struct Constraint {
  ExprPtr expr;
  // Position of the constraint's first token in the source.
  SourceLoc loc;

  std::string ToString() const { return expr->ToString(); }
};

// var := expr. Introduces (or must agree with) a binding for `var`.
struct Assignment {
  std::string var;
  ExprPtr expr;
  // Position of the assigned variable in the source.
  SourceLoc loc;

  std::string ToString() const { return var + " := " + expr->ToString(); }
};

// One NDlog rule. `atoms[event_index]` is the designated event atom
// (by DELP convention the first body atom); all other atoms are
// slow-changing conditions.
struct Rule {
  std::string id;
  Atom head;
  std::vector<Atom> atoms;
  std::vector<Constraint> constraints;
  std::vector<Assignment> assignments;
  size_t event_index = 0;
  // Position of the rule's first token in the source.
  SourceLoc loc;

  const Atom& EventAtom() const { return atoms[event_index]; }

  // Body atoms other than the event atom, in body order.
  std::vector<const Atom*> ConditionAtoms() const;

  std::string ToString() const;
};

}  // namespace dpc

#endif  // DPC_NDLOG_AST_H_
