// Program: a validated Distributed Event-driven Linear Program (DELP),
// Definition 1 of the paper:
//
//   1. every rule is event-driven:  head :- event, conditions;
//   2. consecutive rules are dependent: head(r_i) == event(r_{i+1});
//   3. head relations only ever appear as event relations in rule bodies
//      (so every condition relation is slow-changing).
//
// The Program also classifies relations into roles used by the runtime,
// the static analysis and the provenance recorders.
#ifndef DPC_NDLOG_PROGRAM_H_
#define DPC_NDLOG_PROGRAM_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/ndlog/ast.h"
#include "src/util/result.h"

namespace dpc {

enum class RelationRole {
  kInputEvent,    // the externally injected event relation (event of r1)
  kSlowChanging,  // non-event condition relations (network state)
  kDerived,       // head relations also consumed as events downstream
  kTerminal,      // head relations never consumed as events (outputs)
};

const char* RelationRoleName(RelationRole role);

struct ProgramOptions {
  // Program name used in diagnostics and provenance displays.
  std::string name = "delp";
  // Relations whose provenance is materialized (§3.2 "relations of
  // interest"). Empty means: all terminal relations.
  std::vector<std::string> relations_of_interest;
};

class Program {
 public:
  // Parses and validates `source` as a DELP.
  static Result<Program> Parse(std::string_view source,
                               ProgramOptions options = {});

  // Validates pre-parsed rules as a DELP.
  static Result<Program> FromRules(std::vector<Rule> rules,
                                   ProgramOptions options = {});

  const std::string& name() const { return options_.name; }
  const std::vector<Rule>& rules() const { return rules_; }

  // nullptr when no rule carries `id`.
  const Rule* FindRule(const std::string& id) const;

  RelationRole RoleOf(const std::string& relation) const;
  bool IsSlowChanging(const std::string& relation) const;
  bool IsEventRelation(const std::string& relation) const;

  // The relation whose tuples are injected from outside (event of r1).
  const std::string& input_event_relation() const { return input_event_; }

  // Head relations never consumed as events; the program's outputs.
  const std::vector<std::string>& terminal_relations() const {
    return terminal_relations_;
  }

  // Relations whose provenance is concretely maintained (§3.2).
  const std::vector<std::string>& relations_of_interest() const {
    return relations_of_interest_;
  }
  bool IsOfInterest(const std::string& relation) const;

  // Rules whose event atom matches `relation`, in program order.
  std::vector<const Rule*> RulesTriggeredBy(const std::string& relation) const;

  std::string ToString() const;

 private:
  Program() = default;

  Status Validate();
  void ComputeRoles();

  std::vector<Rule> rules_;
  ProgramOptions options_;
  std::string input_event_;
  std::unordered_map<std::string, RelationRole> roles_;
  std::vector<std::string> terminal_relations_;
  std::vector<std::string> relations_of_interest_;
  std::unordered_set<std::string> interest_set_;
};

}  // namespace dpc

#endif  // DPC_NDLOG_PROGRAM_H_
