#include "src/ndlog/conformance.h"

#include <string>
#include <unordered_set>

namespace dpc {

namespace {

// Emits E107/E108 for every variable of `e` missing from `bound`.
void CheckExprVarsBound(const Rule& rule, const ExprPtr& e, SourceLoc loc,
                        const std::unordered_set<std::string>& bound,
                        const char* what, const char* code,
                        std::vector<Diagnostic>& out) {
  std::vector<std::string> vars;
  e->CollectVars(vars);
  for (const auto& v : vars) {
    if (bound.count(v) == 0) {
      AddDiag(out, Severity::kError, code, loc,
              "rule " + rule.id + ": variable " + v + " in " + what +
                  " is unbound");
    }
  }
}

}  // namespace

void CheckDelpConformance(const std::vector<Rule>& rules,
                          std::vector<Diagnostic>& out) {
  if (rules.empty()) {
    AddDiag(out, Severity::kError, "E100", SourceLoc{},
            "a DELP must contain at least one rule");
    return;
  }

  std::unordered_set<std::string> rule_ids;
  std::unordered_set<std::string> head_relations;
  for (const Rule& r : rules) {
    if (!rule_ids.insert(r.id).second) {
      AddDiag(out, Severity::kError, "E101", r.loc,
              "duplicate rule id " + r.id);
    }
    if (r.atoms.empty()) {
      AddDiag(out, Severity::kError, "E102", r.loc,
              "rule " + r.id + " has no event atom");
    }
    head_relations.insert(r.head.relation);
  }

  // Condition 3: head relations never appear as non-event body atoms.
  for (const Rule& r : rules) {
    if (r.atoms.empty()) continue;
    for (const Atom* cond : r.ConditionAtoms()) {
      if (head_relations.count(cond->relation) > 0) {
        AddDiag(out, Severity::kError, "E104", cond->loc,
                "rule " + r.id + ": head relation " + cond->relation +
                    " used as a non-event (condition) atom; DELP condition 3 "
                    "requires head relations to appear only as event atoms");
      }
    }
  }

  // Condition 2: consecutive rules are dependent.
  for (size_t i = 0; i + 1 < rules.size(); ++i) {
    if (rules[i + 1].atoms.empty()) continue;
    const std::string& head = rules[i].head.relation;
    const std::string& next_event = rules[i + 1].EventAtom().relation;
    if (head != next_event) {
      AddDiag(out, Severity::kError, "E103", rules[i + 1].EventAtom().loc,
              "rules " + rules[i].id + " and " + rules[i + 1].id +
                  " are not dependent: head relation " + head +
                  " differs from the next rule's event relation " +
                  next_event);
    }
  }

  // Safety: every head variable must be bound by a body atom or an
  // assignment; constraints and assignments may only mention bound
  // variables.
  for (const Rule& r : rules) {
    std::unordered_set<std::string> bound;
    for (const Atom& atom : r.atoms) {
      for (const Term& t : atom.args) {
        if (t.is_var()) bound.insert(t.var);
      }
    }
    for (const Assignment& asn : r.assignments) bound.insert(asn.var);
    for (const Term& t : r.head.args) {
      if (t.is_var() && bound.count(t.var) == 0) {
        AddDiag(out, Severity::kError, "E106", t.loc,
                "rule " + r.id + ": head variable " + t.var + " is unbound");
      }
    }
    for (const Constraint& c : r.constraints) {
      CheckExprVarsBound(r, c.expr, c.loc, bound, "constraint", "E107", out);
    }
    for (const Assignment& asn : r.assignments) {
      CheckExprVarsBound(r, asn.expr, asn.loc, bound, "assignment", "E108",
                         out);
    }
  }

  // The input event relation (event of r1) must not be a slow-changing
  // relation anywhere; events flow, they are not joined against.
  if (rules.front().atoms.empty()) return;
  const std::string& input = rules.front().EventAtom().relation;
  for (const Rule& r : rules) {
    if (r.atoms.empty()) continue;
    for (const Atom* cond : r.ConditionAtoms()) {
      if (cond->relation == input) {
        AddDiag(out, Severity::kError, "E105", cond->loc,
                "input event relation " + input +
                    " is used as a condition atom in rule " + r.id);
      }
    }
  }
}

}  // namespace dpc
