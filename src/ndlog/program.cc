#include "src/ndlog/program.h"

#include <algorithm>

#include "src/ndlog/conformance.h"
#include "src/ndlog/parser.h"

namespace dpc {

const char* RelationRoleName(RelationRole role) {
  switch (role) {
    case RelationRole::kInputEvent: return "input-event";
    case RelationRole::kSlowChanging: return "slow-changing";
    case RelationRole::kDerived: return "derived";
    case RelationRole::kTerminal: return "terminal";
  }
  return "?";
}

Result<Program> Program::Parse(std::string_view source,
                               ProgramOptions options) {
  DPC_ASSIGN_OR_RETURN(std::vector<Rule> rules, ParseRules(source));
  return FromRules(std::move(rules), std::move(options));
}

Result<Program> Program::FromRules(std::vector<Rule> rules,
                                   ProgramOptions options) {
  Program prog;
  prog.rules_ = std::move(rules);
  prog.options_ = std::move(options);
  DPC_RETURN_NOT_OK(prog.Validate());
  prog.ComputeRoles();
  return prog;
}

Status Program::Validate() {
  // Definition 1 checking lives in the shared conformance pass so the
  // static analyzer (src/analysis) reports the same violations with
  // source locations. Here every error collapses into one Status; unlike
  // the old fail-fast validator, all violations are reported at once.
  std::vector<Diagnostic> diags;
  CheckDelpConformance(rules_, diags);
  std::string msg;
  for (const Diagnostic& d : diags) {
    if (d.severity != Severity::kError) continue;
    if (!msg.empty()) msg += "; ";
    msg += d.message;
  }
  if (msg.empty()) return Status::OK();
  return Status::InvalidArgument(std::move(msg));
}

void Program::ComputeRoles() {
  std::unordered_set<std::string> heads;
  std::unordered_set<std::string> events;
  for (const Rule& r : rules_) {
    heads.insert(r.head.relation);
    events.insert(r.EventAtom().relation);
  }

  input_event_ = rules_.front().EventAtom().relation;
  roles_[input_event_] = RelationRole::kInputEvent;

  for (const Rule& r : rules_) {
    for (const Atom* cond : r.ConditionAtoms()) {
      roles_.emplace(cond->relation, RelationRole::kSlowChanging);
    }
  }

  for (const Rule& r : rules_) {
    const std::string& hd = r.head.relation;
    if (hd == input_event_) continue;  // e.g. packet derives packet
    if (events.count(hd) > 0) {
      roles_.emplace(hd, RelationRole::kDerived);
    } else {
      roles_.emplace(hd, RelationRole::kTerminal);
      if (std::find(terminal_relations_.begin(), terminal_relations_.end(),
                    hd) == terminal_relations_.end()) {
        terminal_relations_.push_back(hd);
      }
    }
  }

  relations_of_interest_ = options_.relations_of_interest.empty()
                               ? terminal_relations_
                               : options_.relations_of_interest;
  interest_set_.insert(relations_of_interest_.begin(),
                       relations_of_interest_.end());
}

const Rule* Program::FindRule(const std::string& id) const {
  for (const Rule& r : rules_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

RelationRole Program::RoleOf(const std::string& relation) const {
  auto it = roles_.find(relation);
  // Unknown relations are treated as slow-changing state: they can only be
  // base tuples inserted by the operator.
  return it == roles_.end() ? RelationRole::kSlowChanging : it->second;
}

bool Program::IsSlowChanging(const std::string& relation) const {
  return RoleOf(relation) == RelationRole::kSlowChanging;
}

bool Program::IsEventRelation(const std::string& relation) const {
  for (const Rule& r : rules_) {
    if (r.EventAtom().relation == relation) return true;
  }
  return false;
}

bool Program::IsOfInterest(const std::string& relation) const {
  return interest_set_.count(relation) > 0;
}

std::vector<const Rule*> Program::RulesTriggeredBy(
    const std::string& relation) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    if (r.EventAtom().relation == relation) out.push_back(&r);
  }
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace dpc
