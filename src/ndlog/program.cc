#include "src/ndlog/program.h"

#include <algorithm>

#include "src/ndlog/parser.h"

namespace dpc {

const char* RelationRoleName(RelationRole role) {
  switch (role) {
    case RelationRole::kInputEvent: return "input-event";
    case RelationRole::kSlowChanging: return "slow-changing";
    case RelationRole::kDerived: return "derived";
    case RelationRole::kTerminal: return "terminal";
  }
  return "?";
}

Result<Program> Program::Parse(std::string_view source,
                               ProgramOptions options) {
  DPC_ASSIGN_OR_RETURN(std::vector<Rule> rules, ParseRules(source));
  return FromRules(std::move(rules), std::move(options));
}

Result<Program> Program::FromRules(std::vector<Rule> rules,
                                   ProgramOptions options) {
  Program prog;
  prog.rules_ = std::move(rules);
  prog.options_ = std::move(options);
  DPC_RETURN_NOT_OK(prog.Validate());
  prog.ComputeRoles();
  return prog;
}

Status Program::Validate() {
  if (rules_.empty()) {
    return Status::InvalidArgument("a DELP must contain at least one rule");
  }

  std::unordered_set<std::string> rule_ids;
  std::unordered_set<std::string> head_relations;
  std::unordered_set<std::string> event_relations;
  for (const Rule& r : rules_) {
    if (!rule_ids.insert(r.id).second) {
      return Status::InvalidArgument("duplicate rule id " + r.id);
    }
    if (r.atoms.empty()) {
      return Status::InvalidArgument("rule " + r.id + " has no event atom");
    }
    head_relations.insert(r.head.relation);
    event_relations.insert(r.EventAtom().relation);
  }

  // Condition 3: head relations never appear as non-event body atoms.
  for (const Rule& r : rules_) {
    for (const Atom* cond : r.ConditionAtoms()) {
      if (head_relations.count(cond->relation) > 0) {
        return Status::InvalidArgument(
            "rule " + r.id + ": head relation " + cond->relation +
            " used as a non-event (condition) atom; DELP condition 3 "
            "requires head relations to appear only as event atoms");
      }
    }
  }

  // Condition 2: consecutive rules are dependent.
  for (size_t i = 0; i + 1 < rules_.size(); ++i) {
    const std::string& head = rules_[i].head.relation;
    const std::string& next_event = rules_[i + 1].EventAtom().relation;
    if (head != next_event) {
      return Status::InvalidArgument(
          "rules " + rules_[i].id + " and " + rules_[i + 1].id +
          " are not dependent: head relation " + head +
          " differs from the next rule's event relation " + next_event);
    }
  }

  // Safety: every head variable must be bound by a body atom or an
  // assignment.
  for (const Rule& r : rules_) {
    std::unordered_set<std::string> bound;
    for (const Atom& atom : r.atoms) {
      for (const Term& t : atom.args) {
        if (t.is_var()) bound.insert(t.var);
      }
    }
    for (const Assignment& asn : r.assignments) bound.insert(asn.var);
    for (const Term& t : r.head.args) {
      if (t.is_var() && bound.count(t.var) == 0) {
        return Status::InvalidArgument("rule " + r.id + ": head variable " +
                                       t.var + " is unbound");
      }
    }
    // Constraints and assignments may only mention bound variables.
    auto check_expr_vars = [&](const ExprPtr& e,
                               const char* what) -> Status {
      std::vector<std::string> vars;
      e->CollectVars(vars);
      for (const auto& v : vars) {
        if (bound.count(v) == 0) {
          return Status::InvalidArgument("rule " + r.id + ": variable " + v +
                                         " in " + what + " is unbound");
        }
      }
      return Status::OK();
    };
    for (const Constraint& c : r.constraints) {
      DPC_RETURN_NOT_OK(check_expr_vars(c.expr, "constraint"));
    }
    for (const Assignment& asn : r.assignments) {
      DPC_RETURN_NOT_OK(check_expr_vars(asn.expr, "assignment"));
    }
  }

  // The input event relation (event of r1) must not be a slow-changing
  // relation anywhere; events flow, they are not joined against.
  const std::string& input = rules_.front().EventAtom().relation;
  for (const Rule& r : rules_) {
    for (const Atom* cond : r.ConditionAtoms()) {
      if (cond->relation == input) {
        return Status::InvalidArgument(
            "input event relation " + input +
            " is used as a condition atom in rule " + r.id);
      }
    }
  }

  return Status::OK();
}

void Program::ComputeRoles() {
  std::unordered_set<std::string> heads;
  std::unordered_set<std::string> events;
  for (const Rule& r : rules_) {
    heads.insert(r.head.relation);
    events.insert(r.EventAtom().relation);
  }

  input_event_ = rules_.front().EventAtom().relation;
  roles_[input_event_] = RelationRole::kInputEvent;

  for (const Rule& r : rules_) {
    for (const Atom* cond : r.ConditionAtoms()) {
      roles_.emplace(cond->relation, RelationRole::kSlowChanging);
    }
  }

  for (const Rule& r : rules_) {
    const std::string& hd = r.head.relation;
    if (hd == input_event_) continue;  // e.g. packet derives packet
    if (events.count(hd) > 0) {
      roles_.emplace(hd, RelationRole::kDerived);
    } else {
      roles_.emplace(hd, RelationRole::kTerminal);
      if (std::find(terminal_relations_.begin(), terminal_relations_.end(),
                    hd) == terminal_relations_.end()) {
        terminal_relations_.push_back(hd);
      }
    }
  }

  relations_of_interest_ = options_.relations_of_interest.empty()
                               ? terminal_relations_
                               : options_.relations_of_interest;
  interest_set_.insert(relations_of_interest_.begin(),
                       relations_of_interest_.end());
}

const Rule* Program::FindRule(const std::string& id) const {
  for (const Rule& r : rules_) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

RelationRole Program::RoleOf(const std::string& relation) const {
  auto it = roles_.find(relation);
  // Unknown relations are treated as slow-changing state: they can only be
  // base tuples inserted by the operator.
  return it == roles_.end() ? RelationRole::kSlowChanging : it->second;
}

bool Program::IsSlowChanging(const std::string& relation) const {
  return RoleOf(relation) == RelationRole::kSlowChanging;
}

bool Program::IsEventRelation(const std::string& relation) const {
  for (const Rule& r : rules_) {
    if (r.EventAtom().relation == relation) return true;
  }
  return false;
}

bool Program::IsOfInterest(const std::string& relation) const {
  return interest_set_.count(relation) > 0;
}

std::vector<const Rule*> Program::RulesTriggeredBy(
    const std::string& relation) const {
  std::vector<const Rule*> out;
  for (const Rule& r : rules_) {
    if (r.EventAtom().relation == relation) out.push_back(&r);
  }
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace dpc
