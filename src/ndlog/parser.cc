#include "src/ndlog/parser.h"

#include "src/ndlog/lexer.h"

namespace dpc {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Rule>> Run() {
    std::vector<Rule> rules;
    while (!Check(TokenKind::kEof)) {
      DPC_ASSIGN_OR_RETURN(Rule rule, ParseRule(rules.size() + 1));
      rules.push_back(std::move(rule));
    }
    return rules;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  static SourceLoc LocOf(const Token& tok) {
    return SourceLoc{tok.line, tok.column};
  }

  Status ErrorAt(const Token& tok, const std::string& msg) {
    return Status::ParseError(msg + ", got " + tok.Describe() + " at " +
                              LocOf(tok).ToString());
  }

  Result<Token> Expect(TokenKind kind, const char* what) {
    if (!Check(kind)) {
      return ErrorAt(Peek(), std::string("expected ") + what);
    }
    return Advance();
  }

  Result<Rule> ParseRule(size_t ordinal) {
    Rule rule;
    DPC_ASSIGN_OR_RETURN(Token first, Expect(TokenKind::kIdent, "rule head"));
    rule.loc = LocOf(first);
    if (Check(TokenKind::kIdent)) {
      // "r1 packet(...)": explicit rule id followed by the head relation.
      rule.id = first.text;
      DPC_ASSIGN_OR_RETURN(rule.head, ParseAtomNamed(Advance()));
    } else {
      rule.id = "r" + std::to_string(ordinal);
      DPC_ASSIGN_OR_RETURN(rule.head, ParseAtomNamed(first));
    }

    DPC_RETURN_NOT_OK(Expect(TokenKind::kImplies, "':-'").status());

    bool saw_relational_atom = false;
    while (true) {
      DPC_RETURN_NOT_OK(ParseBodyElem(rule));
      if (!rule.atoms.empty()) saw_relational_atom = true;
      if (Match(TokenKind::kPeriod)) break;
      DPC_RETURN_NOT_OK(Expect(TokenKind::kComma, "',' or '.'").status());
    }
    if (!saw_relational_atom) {
      return Status::ParseError("rule " + rule.id +
                                " has no relational body atom at " +
                                rule.loc.ToString());
    }
    rule.event_index = 0;  // DELP convention: first body atom is the event.
    return rule;
  }

  Status ParseBodyElem(Rule& rule) {
    if (Check(TokenKind::kIdent)) {
      const Token& tok = Peek();
      if (IsVariableName(tok.text) && Peek(1).kind == TokenKind::kAssign) {
        Assignment asn;
        asn.loc = LocOf(tok);
        asn.var = Advance().text;
        Advance();  // ':='
        DPC_ASSIGN_OR_RETURN(asn.expr, ParseExpr());
        rule.assignments.push_back(std::move(asn));
        return Status::OK();
      }
      if (!IsVariableName(tok.text) && !IsFunctionName(tok.text) &&
          Peek(1).kind == TokenKind::kLParen) {
        DPC_ASSIGN_OR_RETURN(Atom atom, ParseAtomNamed(Advance()));
        rule.atoms.push_back(std::move(atom));
        return Status::OK();
      }
    }
    // Everything else is a constraint expression.
    Constraint c;
    c.loc = LocOf(Peek());
    DPC_ASSIGN_OR_RETURN(c.expr, ParseExpr());
    rule.constraints.push_back(std::move(c));
    return Status::OK();
  }

  Result<Atom> ParseAtomNamed(const Token& name) {
    Atom atom;
    atom.relation = name.text;
    atom.loc = LocOf(name);
    DPC_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('").status());
    bool first = true;
    while (!Match(TokenKind::kRParen)) {
      if (!first) {
        DPC_RETURN_NOT_OK(Expect(TokenKind::kComma, "','").status());
      }
      // The location marker '@' may prefix the first argument.
      if (first) Match(TokenKind::kAt);
      DPC_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.args.push_back(std::move(term));
      first = false;
    }
    if (atom.args.empty()) {
      return Status::ParseError("atom " + atom.relation +
                                " has no arguments at " +
                                atom.loc.ToString());
    }
    return atom;
  }

  Result<Term> ParseTerm() {
    const Token& tok = Peek();
    SourceLoc loc = LocOf(tok);
    auto located = [&loc](Term t) {
      t.loc = loc;
      return t;
    };
    switch (tok.kind) {
      case TokenKind::kIdent: {
        Advance();
        if (IsVariableName(tok.text)) return located(Term::Var(tok.text));
        if (tok.text == "true") return located(Term::Const(Value::Bool(true)));
        if (tok.text == "false") {
          return located(Term::Const(Value::Bool(false)));
        }
        // Symbolic constant, e.g. protocol names.
        return located(Term::Const(Value::Str(tok.text)));
      }
      case TokenKind::kNumber: {
        Advance();
        return located(Term::Const(Value::Int(tok.number)));
      }
      case TokenKind::kString: {
        Advance();
        return located(Term::Const(Value::Str(tok.text)));
      }
      case TokenKind::kMinus: {
        Advance();
        DPC_ASSIGN_OR_RETURN(Token num,
                             Expect(TokenKind::kNumber, "number after '-'"));
        return located(Term::Const(Value::Int(-num.number)));
      }
      default:
        return ErrorAt(tok, "expected term");
    }
  }

  // expr := additive (comparison-op additive)?
  Result<ExprPtr> ParseExpr() {
    DPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    Expr::Op op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = Expr::Op::kEq; break;
      case TokenKind::kNe: op = Expr::Op::kNe; break;
      case TokenKind::kLt: op = Expr::Op::kLt; break;
      case TokenKind::kLe: op = Expr::Op::kLe; break;
      case TokenKind::kGt: op = Expr::Op::kGt; break;
      case TokenKind::kGe: op = Expr::Op::kGe; break;
      default:
        return lhs;
    }
    Advance();
    DPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    DPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      Expr::Op op = Match(TokenKind::kPlus) ? Expr::Op::kAdd
                                            : (Advance(), Expr::Op::kSub);
      DPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    DPC_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) ||
           Check(TokenKind::kPercent)) {
      Expr::Op op;
      if (Match(TokenKind::kStar)) {
        op = Expr::Op::kMul;
      } else if (Match(TokenKind::kSlash)) {
        op = Expr::Op::kDiv;
      } else {
        Advance();
        op = Expr::Op::kMod;
      }
      DPC_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kIdent: {
        Advance();
        if (IsFunctionName(tok.text)) {
          DPC_RETURN_NOT_OK(
              Expect(TokenKind::kLParen, "'(' after function name").status());
          std::vector<ExprPtr> args;
          bool first = true;
          while (!Match(TokenKind::kRParen)) {
            if (!first) {
              DPC_RETURN_NOT_OK(Expect(TokenKind::kComma, "','").status());
            }
            DPC_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            first = false;
          }
          return Expr::MakeCall(tok.text, std::move(args));
        }
        if (IsVariableName(tok.text)) return Expr::MakeVar(tok.text);
        if (tok.text == "true") return Expr::MakeConst(Value::Bool(true));
        if (tok.text == "false") return Expr::MakeConst(Value::Bool(false));
        return Expr::MakeConst(Value::Str(tok.text));
      }
      case TokenKind::kNumber:
        Advance();
        return Expr::MakeConst(Value::Int(tok.number));
      case TokenKind::kString:
        Advance();
        return Expr::MakeConst(Value::Str(tok.text));
      case TokenKind::kMinus: {
        Advance();
        DPC_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
        return Expr::MakeBinary(Expr::Op::kSub,
                                Expr::MakeConst(Value::Int(0)),
                                std::move(inner));
      }
      case TokenKind::kLParen: {
        Advance();
        DPC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        DPC_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'").status());
        return inner;
      }
      default:
        return ErrorAt(tok, "expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Rule>> ParseRules(std::string_view source) {
  DPC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).Run();
}

Result<Tuple> ParseTuple(std::string_view source) {
  // Reuse the rule parser by wrapping the atom as a throwaway rule body.
  std::string wrapped = "q(@0) :- " + std::string(source) + ".";
  DPC_ASSIGN_OR_RETURN(std::vector<Rule> rules, ParseRules(wrapped));
  if (rules.size() != 1 || rules[0].atoms.size() != 1 ||
      !rules[0].constraints.empty() || !rules[0].assignments.empty()) {
    return Status::ParseError("expected a single ground atom: " +
                              std::string(source));
  }
  const Atom& atom = rules[0].atoms[0];
  std::vector<Value> values;
  values.reserve(atom.args.size());
  for (const Term& term : atom.args) {
    if (term.is_var()) {
      return Status::ParseError("ground atom must not contain variables: " +
                                term.var);
    }
    values.push_back(term.constant);
  }
  if (values.empty() || !values[0].is_int()) {
    return Status::ParseError(
        "ground atom needs an integer location argument");
  }
  return Tuple(atom.relation, std::move(values));
}

}  // namespace dpc
