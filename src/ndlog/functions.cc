#include "src/ndlog/functions.h"

#include <algorithm>

namespace dpc {

void FunctionRegistry::Register(std::string name, NdlogFunction fn) {
  fns_[std::move(name)] = std::move(fn);
}

bool FunctionRegistry::Contains(const std::string& name) const {
  return fns_.count(name) > 0;
}

Result<Value> FunctionRegistry::Call(const std::string& name,
                                     const std::vector<Value>& args) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return Status::NotFound("unknown function " + name);
  }
  return it->second(args);
}

bool IsSubDomain(const std::string& domain, const std::string& url) {
  // The root domain (empty or ".") contains every URL.
  if (domain.empty() || domain == ".") return true;
  if (url == domain) return true;
  // Suffix match on a label boundary: "hello.com" ⊂ "www.hello.com".
  if (url.size() > domain.size() &&
      url.compare(url.size() - domain.size(), domain.size(), domain) == 0 &&
      url[url.size() - domain.size() - 1] == '.') {
    return true;
  }
  return false;
}

namespace {

Status Arity(const char* fn, const std::vector<Value>& args, size_t want) {
  if (args.size() != want) {
    return Status::InvalidArgument(std::string(fn) + " expects " +
                                   std::to_string(want) + " arguments, got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

Status WantString(const char* fn, const Value& v) {
  if (!v.is_string()) {
    return Status::InvalidArgument(std::string(fn) +
                                   " expects string arguments");
  }
  return Status::OK();
}

}  // namespace

FunctionRegistry DefaultFunctions() {
  FunctionRegistry reg;

  reg.Register("f_isSubDomain",
               [](const std::vector<Value>& args) -> Result<Value> {
                 DPC_RETURN_NOT_OK(Arity("f_isSubDomain", args, 2));
                 DPC_RETURN_NOT_OK(WantString("f_isSubDomain", args[0]));
                 DPC_RETURN_NOT_OK(WantString("f_isSubDomain", args[1]));
                 return Value::Bool(
                     IsSubDomain(args[0].AsString(), args[1].AsString()));
               });

  reg.Register("f_size", [](const std::vector<Value>& args) -> Result<Value> {
    DPC_RETURN_NOT_OK(Arity("f_size", args, 1));
    DPC_RETURN_NOT_OK(WantString("f_size", args[0]));
    return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
  });

  reg.Register("f_concat",
               [](const std::vector<Value>& args) -> Result<Value> {
                 DPC_RETURN_NOT_OK(Arity("f_concat", args, 2));
                 DPC_RETURN_NOT_OK(WantString("f_concat", args[0]));
                 DPC_RETURN_NOT_OK(WantString("f_concat", args[1]));
                 return Value::Str(args[0].AsString() + args[1].AsString());
               });

  reg.Register("f_min", [](const std::vector<Value>& args) -> Result<Value> {
    DPC_RETURN_NOT_OK(Arity("f_min", args, 2));
    return std::min(args[0], args[1]);
  });

  reg.Register("f_max", [](const std::vector<Value>& args) -> Result<Value> {
    DPC_RETURN_NOT_OK(Arity("f_max", args, 2));
    return std::max(args[0], args[1]);
  });

  return reg;
}

}  // namespace dpc
