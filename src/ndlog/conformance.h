// DELP conformance checking (Definition 1 of the paper, plus rule safety),
// expressed as accumulated source-located diagnostics rather than a
// fail-fast Status. Program::Validate() and the static analyzer
// (src/analysis) both run this checker; a program is a valid DELP iff the
// checker emits no error-severity diagnostics.
//
// Diagnostic codes (documented in docs/analysis.md):
//   E100  program has no rules
//   E101  duplicate rule id
//   E102  rule has no relational body atom
//   E103  consecutive rules not dependent (Definition 1, condition 2)
//   E104  head relation used as a condition atom (condition 3)
//   E105  input event relation used as a condition atom
//   E106  unbound head variable
//   E107  unbound variable in a constraint
//   E108  unbound variable in an assignment
#ifndef DPC_NDLOG_CONFORMANCE_H_
#define DPC_NDLOG_CONFORMANCE_H_

#include <vector>

#include "src/ndlog/ast.h"
#include "src/util/diagnostics.h"

namespace dpc {

// Appends one diagnostic per violation to `out`; never stops early.
void CheckDelpConformance(const std::vector<Rule>& rules,
                          std::vector<Diagnostic>& out);

}  // namespace dpc

#endif  // DPC_NDLOG_CONFORMANCE_H_
