// Tokenizer for NDlog source text.
#ifndef DPC_NDLOG_LEXER_H_
#define DPC_NDLOG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace dpc {

enum class TokenKind {
  kIdent,      // packet, RT, f_isSubDomain, r1
  kNumber,     // 42
  kString,     // "data"
  kLParen,     // (
  kRParen,     // )
  kComma,      // ,
  kPeriod,     // .
  kAt,         // @
  kImplies,    // :-
  kAssign,     // :=
  kEq,         // ==
  kNe,         // !=
  kLe,         // <=
  kGe,         // >=
  kLt,         // <
  kGt,         // >
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kPercent,    // %
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;   // identifier / string literal body
  int64_t number = 0;  // kNumber
  int line = 0;
  int column = 0;

  std::string Describe() const;
};

// Tokenizes `source`. Comments run from "//" or "#" to end of line.
// Returns a ParseError (with line/column info) on malformed input.
Result<std::vector<Token>> Tokenize(std::string_view source);

// True if `ident` names an NDlog variable (starts with an uppercase letter
// or underscore).
bool IsVariableName(std::string_view ident);

// True if `ident` names a user-defined function (f_ prefix by convention).
bool IsFunctionName(std::string_view ident);

}  // namespace dpc

#endif  // DPC_NDLOG_LEXER_H_
