#include "src/ndlog/eval.h"

namespace dpc {

namespace {

Result<Value> EvalBinary(Expr::Op op, const Value& lhs, const Value& rhs) {
  if (IsComparisonOp(op)) {
    if (lhs.kind() != rhs.kind()) {
      // Cross-type comparison: only (in)equality is meaningful.
      switch (op) {
        case Expr::Op::kEq:
          return Value::Bool(false);
        case Expr::Op::kNe:
          return Value::Bool(true);
        default:
          return Status::InvalidArgument(
              "ordered comparison between values of different types");
      }
    }
    switch (op) {
      case Expr::Op::kEq: return Value::Bool(lhs == rhs);
      case Expr::Op::kNe: return Value::Bool(lhs != rhs);
      case Expr::Op::kLt: return Value::Bool(lhs < rhs);
      case Expr::Op::kLe: return Value::Bool(lhs <= rhs);
      case Expr::Op::kGt: return Value::Bool(lhs > rhs);
      case Expr::Op::kGe: return Value::Bool(lhs >= rhs);
      default: break;
    }
  }
  // Arithmetic. "+" additionally concatenates strings.
  if (op == Expr::Op::kAdd && lhs.is_string() && rhs.is_string()) {
    return Value::Str(lhs.AsString() + rhs.AsString());
  }
  if (!lhs.is_int() || !rhs.is_int()) {
    return Status::InvalidArgument(std::string("arithmetic operator '") +
                                   OpName(op) +
                                   "' requires integer operands");
  }
  int64_t a = lhs.AsInt(), b = rhs.AsInt();
  switch (op) {
    case Expr::Op::kAdd: return Value::Int(a + b);
    case Expr::Op::kSub: return Value::Int(a - b);
    case Expr::Op::kMul: return Value::Int(a * b);
    case Expr::Op::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value::Int(a / b);
    case Expr::Op::kMod:
      if (b == 0) return Status::InvalidArgument("modulo by zero");
      return Value::Int(a % b);
    default:
      return Status::Internal("unhandled binary op");
  }
}

bool MatchAtomImpl(const Atom& atom, const Tuple& tuple, Bindings& env,
                   std::vector<std::string>* trail) {
  if (atom.relation != tuple.relation()) return false;
  if (atom.args.size() != tuple.arity()) return false;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& term = atom.args[i];
    const Value& v = tuple.at(i);
    if (term.is_var()) {
      auto [it, inserted] = env.emplace(term.var, v);
      if (inserted) {
        if (trail != nullptr) trail->push_back(term.var);
      } else if (it->second != v) {
        return false;
      }
    } else if (term.constant != v) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Bindings& env,
                       const FunctionRegistry& fns) {
  switch (expr.kind) {
    case Expr::Kind::kConst:
      return expr.constant;
    case Expr::Kind::kVar: {
      auto it = env.find(expr.var);
      if (it == env.end()) {
        return Status::InvalidArgument("unbound variable " + expr.var);
      }
      return it->second;
    }
    case Expr::Kind::kBinary: {
      DPC_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, env, fns));
      DPC_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, env, fns));
      return EvalBinary(expr.op, lhs, rhs);
    }
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const auto& a : expr.args) {
        DPC_ASSIGN_OR_RETURN(Value v, EvalExpr(*a, env, fns));
        args.push_back(std::move(v));
      }
      return fns.Call(expr.fn, args);
    }
  }
  return Status::Internal("unhandled expression kind");
}

bool MatchAtom(const Atom& atom, const Tuple& tuple, Bindings& env) {
  return MatchAtomImpl(atom, tuple, env, nullptr);
}

bool MatchAtom(const Atom& atom, const Tuple& tuple, Bindings& env,
               std::vector<std::string>& trail) {
  return MatchAtomImpl(atom, tuple, env, &trail);
}

void UndoTrail(Bindings& env, std::vector<std::string>& trail, size_t mark) {
  while (trail.size() > mark) {
    env.erase(trail.back());
    trail.pop_back();
  }
}

Result<Tuple> InstantiateAtom(const Atom& atom, const Bindings& env) {
  std::vector<Value> values;
  values.reserve(atom.args.size());
  for (const Term& term : atom.args) {
    if (term.is_var()) {
      auto it = env.find(term.var);
      if (it == env.end()) {
        return Status::InvalidArgument("unbound variable " + term.var +
                                       " in atom " + atom.relation);
      }
      values.push_back(it->second);
    } else {
      values.push_back(term.constant);
    }
  }
  return Tuple(atom.relation, std::move(values));
}

namespace {

// Recursively joins condition atoms [idx..) against db, then applies
// assignments and constraints and emits the head. `env` is extended in
// place; every new binding is recorded in `trail` and rolled back before
// returning, so candidates never pay a full environment copy.
Status JoinConditions(const Rule& rule,
                      const std::vector<const Atom*>& conditions, size_t idx,
                      const Database& db, const FunctionRegistry& fns,
                      Bindings& env, std::vector<std::string>& trail,
                      std::vector<TupleRef>& joined,
                      std::vector<RuleFiring>& out) {
  if (idx == conditions.size()) {
    // Assignments run in body order; each may introduce a new binding.
    size_t mark = trail.size();
    Status st = [&]() -> Status {
      for (const Assignment& asn : rule.assignments) {
        DPC_ASSIGN_OR_RETURN(Value v, EvalExpr(*asn.expr, env, fns));
        auto it = env.find(asn.var);
        if (it == env.end()) {
          env.emplace(asn.var, std::move(v));
          trail.push_back(asn.var);
        } else if (it->second != v) {
          return Status::OK();  // no match
        }
      }
      for (const Constraint& c : rule.constraints) {
        DPC_ASSIGN_OR_RETURN(Value v, EvalExpr(*c.expr, env, fns));
        if (!v.Truthy()) return Status::OK();
      }
      DPC_ASSIGN_OR_RETURN(Tuple head, InstantiateAtom(rule.head, env));
      out.push_back(RuleFiring{std::move(head), joined});
      return Status::OK();
    }();
    UndoTrail(env, trail, mark);
    return st;
  }

  const Atom& atom = *conditions[idx];
  const Table* table = db.Find(atom.relation);
  if (table == nullptr) return Status::OK();

  Status st;
  table->ForEachRef([&](const TupleRef& candidate) {
    size_t mark = trail.size();
    if (MatchAtom(atom, *candidate, env, trail)) {
      joined.push_back(candidate);
      st = JoinConditions(rule, conditions, idx + 1, db, fns, env, trail,
                          joined, out);
      joined.pop_back();
      if (!st.ok()) {
        UndoTrail(env, trail, mark);
        return false;
      }
    }
    UndoTrail(env, trail, mark);
    return true;
  });
  return st;
}

}  // namespace

Result<std::vector<RuleFiring>> FireRule(const Rule& rule, const Tuple& event,
                                         const Database& db,
                                         const FunctionRegistry& fns) {
  std::vector<RuleFiring> out;
  Bindings env;
  if (!MatchAtom(rule.EventAtom(), event, env)) {
    return out;  // The event does not instantiate this rule's trigger.
  }
  std::vector<const Atom*> conditions = rule.ConditionAtoms();
  std::vector<TupleRef> joined;
  std::vector<std::string> trail;
  DPC_RETURN_NOT_OK(
      JoinConditions(rule, conditions, 0, db, fns, env, trail, joined, out));
  return out;
}

}  // namespace dpc
