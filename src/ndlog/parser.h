// Recursive-descent parser for NDlog rule text.
#ifndef DPC_NDLOG_PARSER_H_
#define DPC_NDLOG_PARSER_H_

#include <string_view>
#include <vector>

#include "src/db/tuple.h"
#include "src/ndlog/ast.h"
#include "src/util/result.h"

namespace dpc {

// Parses a sequence of rules, e.g.
//
//   r1 packet(@N, S, D, DT) :- packet(@L, S, D, DT), route(@L, D, N).
//   r2 recv(@L, S, D, DT)   :- packet(@L, S, D, DT), D == L.
//
// The leading rule identifier is optional; absent ids are generated as
// "r1", "r2", ... by position. By DELP convention the first relational atom
// of each body is the event atom. `true`/`false` parse as integer constants
// 1/0; other lowercase identifiers in atom arguments parse as symbolic
// string constants.
Result<std::vector<Rule>> ParseRules(std::string_view source);

// Parses a ground atom — e.g. `route(@1, 3, 2)` or
// `packet(@0, 0, 2, "data")` — into a Tuple. Variables are rejected; the
// location argument must be an integer.
Result<Tuple> ParseTuple(std::string_view source);

}  // namespace dpc

#endif  // DPC_NDLOG_PARSER_H_
