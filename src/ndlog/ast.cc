#include "src/ndlog/ast.h"

namespace dpc {

std::string Term::ToString() const {
  if (is_var()) return var;
  return constant.ToString();
}

std::string Atom::ToString() const {
  std::string out = relation;
  out += "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i == 0) out += "@";
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

ExprPtr Expr::MakeVar(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr Expr::MakeConst(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = std::move(v);
  return e;
}

ExprPtr Expr::MakeBinary(Op op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeCall(std::string fn, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->fn = std::move(fn);
  e->args = std::move(args);
  return e;
}

void Expr::CollectVars(std::vector<std::string>& out) const {
  switch (kind) {
    case Kind::kVar:
      out.push_back(var);
      break;
    case Kind::kConst:
      break;
    case Kind::kBinary:
      lhs->CollectVars(out);
      rhs->CollectVars(out);
      break;
    case Kind::kCall:
      for (const auto& a : args) a->CollectVars(out);
      break;
  }
}

const char* OpName(Expr::Op op) {
  switch (op) {
    case Expr::Op::kAdd: return "+";
    case Expr::Op::kSub: return "-";
    case Expr::Op::kMul: return "*";
    case Expr::Op::kDiv: return "/";
    case Expr::Op::kMod: return "%";
    case Expr::Op::kEq: return "==";
    case Expr::Op::kNe: return "!=";
    case Expr::Op::kLt: return "<";
    case Expr::Op::kLe: return "<=";
    case Expr::Op::kGt: return ">";
    case Expr::Op::kGe: return ">=";
  }
  return "?";
}

bool IsComparisonOp(Expr::Op op) {
  switch (op) {
    case Expr::Op::kEq:
    case Expr::Op::kNe:
    case Expr::Op::kLt:
    case Expr::Op::kLe:
    case Expr::Op::kGt:
    case Expr::Op::kGe:
      return true;
    default:
      return false;
  }
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return var;
    case Kind::kConst:
      return constant.ToString();
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + OpName(op) + " " +
             rhs->ToString() + ")";
    case Kind::kCall: {
      std::string out = fn;
      out += "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

std::vector<const Atom*> Rule::ConditionAtoms() const {
  std::vector<const Atom*> out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i != event_index) out.push_back(&atoms[i]);
  }
  return out;
}

std::string Rule::ToString() const {
  std::string out = id;
  out += " ";
  out += head.ToString();
  out += " :- ";
  bool first = true;
  auto sep = [&out, &first]() {
    if (!first) out += ", ";
    first = false;
  };
  for (const auto& a : atoms) {
    sep();
    out += a.ToString();
  }
  for (const auto& asn : assignments) {
    sep();
    out += asn.ToString();
  }
  for (const auto& c : constraints) {
    sep();
    out += c.ToString();
  }
  out += ".";
  return out;
}

}  // namespace dpc
