// Registry of user-defined functions callable from NDlog rule bodies
// (names carry the f_ prefix by RapidNet convention).
#ifndef DPC_NDLOG_FUNCTIONS_H_
#define DPC_NDLOG_FUNCTIONS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/value.h"
#include "src/util/result.h"

namespace dpc {

using NdlogFunction =
    std::function<Result<Value>(const std::vector<Value>& args)>;

class FunctionRegistry {
 public:
  // Registers `fn` under `name`, replacing any previous registration.
  void Register(std::string name, NdlogFunction fn);

  bool Contains(const std::string& name) const;

  Result<Value> Call(const std::string& name,
                     const std::vector<Value>& args) const;

 private:
  std::unordered_map<std::string, NdlogFunction> fns_;
};

// Registry pre-populated with the functions the paper's applications use:
//
//   f_isSubDomain(DM, URL) - true iff domain DM is a suffix-domain of URL's
//                            hostname (e.g. "com" and "hello.com" are
//                            sub-domains of "www.hello.com").
//   f_size(S)              - length of string S.
//   f_concat(A, B)         - string concatenation.
//   f_min(A, B), f_max(A, B)
FunctionRegistry DefaultFunctions();

// Exposed for direct testing: the f_isSubDomain predicate.
bool IsSubDomain(const std::string& domain, const std::string& url);

}  // namespace dpc

#endif  // DPC_NDLOG_FUNCTIONS_H_
