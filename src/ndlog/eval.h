// Single-rule evaluation: the building block of pipelined semi-naïve
// evaluation (§3.1). Given an event tuple and the local database of
// slow-changing tables, FireRule produces every head tuple derivable by one
// application of the rule, together with the slow-changing tuples that
// joined (which become the provenance of the firing).
#ifndef DPC_NDLOG_EVAL_H_
#define DPC_NDLOG_EVAL_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/table.h"
#include "src/db/tuple.h"
#include "src/ndlog/ast.h"
#include "src/ndlog/functions.h"
#include "src/util/result.h"

namespace dpc {

// Variable name -> value environment built during matching.
using Bindings = std::unordered_map<std::string, Value>;

// Evaluates `expr` under `env`. Arithmetic requires integer operands;
// comparisons work on either type (ordered lexicographically for strings).
Result<Value> EvalExpr(const Expr& expr, const Bindings& env,
                       const FunctionRegistry& fns);

// Unifies `atom` against `tuple`. On success extends `env` (consistently
// with existing bindings) and returns true. `env` may be partially extended
// on failure; callers either pass a scratch copy or record the extensions
// in a trail (below) and roll them back.
bool MatchAtom(const Atom& atom, const Tuple& tuple, Bindings& env);

// As above, but appends the name of every variable newly bound by this
// call to `trail` (also on failure), so the caller can undo a failed or
// explored match with UndoTrail instead of copying the whole environment
// per candidate tuple.
bool MatchAtom(const Atom& atom, const Tuple& tuple, Bindings& env,
               std::vector<std::string>& trail);

// Removes from `env` every binding recorded in `trail` past `mark`, then
// truncates `trail` back to `mark`. Together with the trailing MatchAtom
// overload this gives join loops O(bindings-touched) rollback.
void UndoTrail(Bindings& env, std::vector<std::string>& trail, size_t mark);

// Instantiates `atom` under a complete `env`; fails if any variable is
// unbound.
Result<Tuple> InstantiateAtom(const Atom& atom, const Bindings& env);

// One derivation produced by a rule firing. The joined condition tuples
// are shared handles onto the database's own rows, so a firing costs no
// tuple copies and downstream consumers (recorders) see the rows' memoized
// identities.
struct RuleFiring {
  Tuple head;
  // The slow-changing condition tuples that joined, in body-atom order.
  std::vector<TupleRef> slow_tuples;
};

// Fires `rule` with `event` as the instance of the rule's event atom,
// joining condition atoms against `db` and applying assignments and
// constraints. Returns every derivation (possibly none).
Result<std::vector<RuleFiring>> FireRule(const Rule& rule, const Tuple& event,
                                         const Database& db,
                                         const FunctionRegistry& fns);

}  // namespace dpc

#endif  // DPC_NDLOG_EVAL_H_
