#include "src/ndlog/lexer.h"

#include <cctype>

namespace dpc {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kPeriod: return "'.'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kIdent) return "identifier '" + text + "'";
  if (kind == TokenKind::kString) return "string \"" + text + "\"";
  if (kind == TokenKind::kNumber) return "number " + std::to_string(number);
  return TokenKindName(kind);
}

bool IsVariableName(std::string_view ident) {
  return !ident.empty() &&
         (std::isupper(static_cast<unsigned char>(ident[0])) ||
          ident[0] == '_');
}

bool IsFunctionName(std::string_view ident) {
  return ident.rfind("f_", 0) == 0;
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      DPC_ASSIGN_OR_RETURN(Token tok, Next());
      tokens.push_back(std::move(tok));
    }
    tokens.push_back(Simple(TokenKind::kEof));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '#' || (c == '/' && Peek(1) == '/')) {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token Simple(TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = column_;
    return t;
  }

  Status ErrorHere(const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  Result<Token> Next() {
    Token tok = Simple(TokenKind::kEof);
    char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        ident.push_back(Advance());
      }
      tok.kind = TokenKind::kIdent;
      tok.text = std::move(ident);
      return tok;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      int64_t v = 0;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        v = v * 10 + (Advance() - '0');
      }
      tok.kind = TokenKind::kNumber;
      tok.number = v;
      return tok;
    }

    if (c == '"') {
      Advance();
      std::string body;
      while (!AtEnd() && Peek() != '"') {
        char ch = Advance();
        if (ch == '\\' && !AtEnd()) {
          char esc = Advance();
          switch (esc) {
            case 'n': body.push_back('\n'); break;
            case 't': body.push_back('\t'); break;
            default: body.push_back(esc); break;
          }
        } else {
          body.push_back(ch);
        }
      }
      if (AtEnd()) return ErrorHere("unterminated string literal");
      Advance();  // closing quote
      tok.kind = TokenKind::kString;
      tok.text = std::move(body);
      return tok;
    }

    Advance();
    switch (c) {
      case '(': tok.kind = TokenKind::kLParen; return tok;
      case ')': tok.kind = TokenKind::kRParen; return tok;
      case ',': tok.kind = TokenKind::kComma; return tok;
      case '.': tok.kind = TokenKind::kPeriod; return tok;
      case '@': tok.kind = TokenKind::kAt; return tok;
      case '+': tok.kind = TokenKind::kPlus; return tok;
      case '-': tok.kind = TokenKind::kMinus; return tok;
      case '*': tok.kind = TokenKind::kStar; return tok;
      case '/': tok.kind = TokenKind::kSlash; return tok;
      case '%': tok.kind = TokenKind::kPercent; return tok;
      case ':':
        if (Peek() == '-') {
          Advance();
          tok.kind = TokenKind::kImplies;
          return tok;
        }
        if (Peek() == '=') {
          Advance();
          tok.kind = TokenKind::kAssign;
          return tok;
        }
        return ErrorHere("expected ':-' or ':='");
      case '=':
        if (Peek() == '=') {
          Advance();
          tok.kind = TokenKind::kEq;
          return tok;
        }
        return ErrorHere("expected '=='");
      case '!':
        if (Peek() == '=') {
          Advance();
          tok.kind = TokenKind::kNe;
          return tok;
        }
        return ErrorHere("expected '!='");
      case '<':
        if (Peek() == '=') {
          Advance();
          tok.kind = TokenKind::kLe;
          return tok;
        }
        tok.kind = TokenKind::kLt;
        return tok;
      case '>':
        if (Peek() == '=') {
          Advance();
          tok.kind = TokenKind::kGe;
          return tok;
        }
        tok.kind = TokenKind::kGt;
        return tok;
      default:
        return ErrorHere(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace dpc
