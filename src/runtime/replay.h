// Reactive provenance maintenance (§3.2): instead of materializing
// provenance for relations of less interest, record only the
// non-deterministic inputs — injected events and slow-changing table
// updates — and re-execute the (deterministic) DELP at query time to
// reconstruct the provenance of *any* tuple, including intermediate event
// tuples that none of the storage schemes materialize. This is the DTaP
// strategy the paper adopts for tuples outside the relations of interest.
#ifndef DPC_RUNTIME_REPLAY_H_
#define DPC_RUNTIME_REPLAY_H_

#include <vector>

#include "src/core/tree.h"
#include "src/db/tuple.h"
#include "src/ndlog/program.h"
#include "src/net/topology.h"
#include "src/util/result.h"
#include "src/util/serial.h"

namespace dpc {

// Ordered log of every non-deterministic input to an execution.
class ReplayLog {
 public:
  enum class Kind : uint8_t { kSlowInsert = 0, kSlowDelete = 1, kInject = 2 };

  struct Entry {
    Kind kind;
    double time;
    Tuple tuple;

    bool operator==(const Entry&) const = default;
  };

  void RecordSlowInsert(double time, const Tuple& t) {
    Append(Kind::kSlowInsert, time, t);
  }
  void RecordSlowDelete(double time, const Tuple& t) {
    Append(Kind::kSlowDelete, time, t);
  }
  void RecordInject(double time, const Tuple& t) {
    Append(Kind::kInject, time, t);
  }

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // The log is itself persistable: this is the storage the reactive
  // strategy pays instead of materialized provenance.
  void Serialize(ByteWriter& w) const;
  static Result<ReplayLog> Deserialize(ByteReader& r);
  size_t SerializedBytes() const { return bytes_; }

 private:
  void Append(Kind kind, double time, const Tuple& t);

  std::vector<Entry> entries_;
  size_t bytes_ = 0;
};

// Re-executes a log against a fresh deployment and extracts provenance.
class Replayer {
 public:
  // Both pointers must outlive the Replayer.
  Replayer(const Program* program, const Topology* topology);

  // Replays `log` and returns every derivation whose root is `target`.
  // `target` may be of any derived relation — terminal or intermediate.
  // NotFound when the replay never derives it.
  Result<std::vector<ProvTree>> ProvenanceOf(const ReplayLog& log,
                                             const Tuple& target) const;

  // Replays `log` and returns all full trees (roots are terminal outputs).
  Result<std::vector<ProvTree>> AllTrees(const ReplayLog& log) const;

 private:
  const Program* program_;
  const Topology* topology_;
};

}  // namespace dpc

#endif  // DPC_RUNTIME_REPLAY_H_
