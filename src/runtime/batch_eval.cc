#include "src/runtime/batch_eval.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/db/table.h"
#include "src/util/hash.h"

namespace dpc {

namespace {

// First-probe key hash for one event, read directly off the event tuple's
// positions (RulePlan::batch_first_key). Returns false when the event is
// too short for some key position — such an event cannot match the rule's
// event atom (MatchAtom checks arity first), so the caller routes it
// through the plain per-event path, which yields no firings.
bool FirstKeyHash(const RulePlan& plan, const Tuple& event, uint64_t* hash) {
  Fnv1a h;
  for (size_t k = 0; k < plan.first_key_event_pos.size(); ++k) {
    int pos = plan.first_key_event_pos[k];
    if (pos < 0) {
      plan.first_key_constants[k].HashInto(h);
      continue;
    }
    if (static_cast<size_t>(pos) >= event.arity()) return false;
    event.at(static_cast<size_t>(pos)).HashInto(h);
  }
  *hash = h.hash();
  return true;
}

// Below this batch size the slot compile (a few dozen small allocations)
// is not worth amortizing; the PlanExecutor path serves small batches.
constexpr size_t kSlotCompileMinEvents = 4;

// Positional executor: compiles a pure-join plan (no assignments, no
// constraints, no scan steps) into match ops over dense value slots, so
// the per-event inner loop touches no string-keyed Bindings map at all.
// Variable names resolve to slot indexes once at compile time; each slot
// is written by exactly one binder (an event-atom or step-atom position)
// before any reader runs, so backtracking needs no trail — the next
// candidate simply overwrites the step's slots.
//
// Equivalence with PlanExecutor on the compiled subset: candidates come
// from the same lazy hash indexes in the same bucket order
// (Table::CollectMatchRefs ≡ ForEachMatchRef), the ops re-verify exactly
// what MatchAtom verifies (arity, constants, repeated variables), and
// firings are emitted with slow_tuples restored to body order. Pure joins
// cannot raise evaluation errors, so the status is always OK — as it is
// for FireRulePlanned on such rules.
class SlotExecutor {
 public:
  // Compiles (rule, plan) into positional form; false when the plan is
  // outside the compiled subset (the caller then uses PlanExecutor).
  bool Compile(const Rule& rule, const RulePlan& plan) {
    rule_ = &rule;
    plan_ = &plan;
    if (plan.never_fires || plan.steps.empty()) return false;
    if (!plan.pre_assignments.empty() || !plan.pre_constraints.empty()) {
      return false;
    }
    std::map<std::string, uint32_t> slot_of;
    const Atom& event_atom = rule.EventAtom();
    event_arity_ = event_atom.args.size();
    CompileAtom(event_atom, slot_of, event_ops_);
    steps_.clear();
    steps_.reserve(plan.steps.size());
    for (const PlanStep& ps : plan.steps) {
      if (!ps.assignments.empty() || !ps.constraints.empty()) return false;
      if (ps.bound_columns.empty()) return false;  // scan: stay on the
                                                   // general path
      Step step;
      const Atom& atom = rule.atoms[ps.atom_index];
      step.arity = atom.args.size();
      // The probe key reads slots bound by earlier binders (or plan
      // constants); compile it before this atom's ops assign new slots.
      for (size_t col : ps.bound_columns) {
        const Term& t = atom.args[col];
        if (t.is_var()) {
          auto it = slot_of.find(t.var);
          if (it == slot_of.end()) return false;  // probes unbound var
          step.key.emplace_back(static_cast<int32_t>(it->second), nullptr);
        } else {
          step.key.emplace_back(-1, &t.constant);
        }
      }
      CompileAtom(atom, slot_of, step.ops);
      step.sig = &ps.bound_columns;
      step.relation = &atom.relation;
      steps_.push_back(std::move(step));
    }
    head_src_.clear();
    for (const Term& t : rule.head.args) {
      if (t.is_var()) {
        auto it = slot_of.find(t.var);
        // An unbound head variable errors under InstantiateAtom; keep
        // that path's fidelity by not compiling the rule.
        if (it == slot_of.end()) return false;
        head_src_.emplace_back(static_cast<int32_t>(it->second), nullptr);
      } else {
        head_src_.emplace_back(-1, &t.constant);
      }
    }
    slots_.assign(slot_of.size(), Value());
    joined_.assign(steps_.size(), nullptr);
    cand_.assign(steps_.size(), {});
    return true;
  }

  // Resolves each step's table and lazy hash index once for the whole
  // batch (the database is frozen for the duration of the call), so the
  // per-event inner loop skips the relation and signature lookups.
  void Bind(const Database& db) {
    for (Step& step : steps_) {
      step.table = db.Find(*step.relation);
      step.index = step.table != nullptr ? &step.table->IndexFor(*step.sig)
                                         : nullptr;
    }
  }

  void Execute(const Tuple& event,
               const std::vector<const TupleRef*>* first_candidates,
               std::vector<RuleFiring>& out) {
    if (event.relation() != rule_->EventAtom().relation ||
        event.arity() != event_arity_) {
      return;  // cannot instantiate the trigger; no firings
    }
    if (!RunOps(event_ops_, event)) return;
    first_candidates_ = first_candidates;
    out_ = &out;
    Join(0);
  }

 private:
  struct Op {
    enum class Kind { kBind, kCheckSlot, kCheckConst };
    Kind kind;
    uint32_t pos;             // tuple position read
    uint32_t slot = 0;        // kBind / kCheckSlot
    const Value* constant = nullptr;  // kCheckConst
  };
  struct Step {
    const IndexSignature* sig = nullptr;
    const std::string* relation = nullptr;
    const Table* table = nullptr;           // set by Bind
    const Table::HashIndex* index = nullptr;  // set by Bind
    size_t arity = 0;
    std::vector<Op> ops;
    // Probe-key sources in bound-column order: slot index, or a constant.
    std::vector<std::pair<int32_t, const Value*>> key;
  };

  void CompileAtom(const Atom& atom, std::map<std::string, uint32_t>& slot_of,
                   std::vector<Op>& ops) {
    ops.clear();
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& t = atom.args[i];
      Op op;
      op.pos = static_cast<uint32_t>(i);
      if (!t.is_var()) {
        op.kind = Op::Kind::kCheckConst;
        op.constant = &t.constant;
      } else {
        auto [it, inserted] =
            slot_of.emplace(t.var, static_cast<uint32_t>(slot_of.size()));
        op.kind = inserted ? Op::Kind::kBind : Op::Kind::kCheckSlot;
        op.slot = it->second;
      }
      ops.push_back(op);
    }
  }

  // Exactly MatchAtom's unification over the precompiled ops (the arity
  // and relation checks live at the call sites).
  bool RunOps(const std::vector<Op>& ops, const Tuple& t) {
    for (const Op& op : ops) {
      const Value& v = t.at(op.pos);
      switch (op.kind) {
        case Op::Kind::kBind:
          slots_[op.slot] = v;
          break;
        case Op::Kind::kCheckSlot:
          if (slots_[op.slot] != v) return false;
          break;
        case Op::Kind::kCheckConst:
          if (*op.constant != v) return false;
          break;
      }
    }
    return true;
  }

  void Join(size_t idx) {
    if (idx == steps_.size()) {
      RuleFiring firing;
      std::vector<Value> values;
      values.reserve(head_src_.size());
      for (const auto& [slot, constant] : head_src_) {
        values.push_back(slot >= 0 ? slots_[static_cast<size_t>(slot)]
                                   : *constant);
      }
      firing.head = Tuple(rule_->head.relation, std::move(values));
      firing.slow_tuples.reserve(steps_.size());
      for (size_t step : plan_->body_order) {
        firing.slow_tuples.push_back(*joined_[step]);
      }
      out_->push_back(std::move(firing));
      return;
    }
    Step& step = steps_[idx];
    const std::vector<const TupleRef*>* candidates;
    if (idx == 0 && first_candidates_ != nullptr) {
      candidates = first_candidates_;
    } else {
      if (step.index == nullptr) return;  // relation has no table yet
      Fnv1a h;
      for (const auto& [slot, constant] : step.key) {
        (slot >= 0 ? slots_[static_cast<size_t>(slot)] : *constant)
            .HashInto(h);
      }
      cand_[idx].clear();
      step.table->CollectFromIndex(*step.index, h.hash(), cand_[idx]);
      candidates = &cand_[idx];
    }
    for (const TupleRef* candidate : *candidates) {
      // Full re-verification, as PlanExecutor's MatchAtom does: the index
      // matched on hashes only, and repeated/unbound columns still need
      // checking and binding.
      if ((*candidate)->arity() != step.arity) continue;
      if (!RunOps(step.ops, **candidate)) continue;
      joined_[idx] = candidate;
      Join(idx + 1);
    }
  }

  const Rule* rule_ = nullptr;
  const RulePlan* plan_ = nullptr;
  size_t event_arity_ = 0;
  std::vector<Op> event_ops_;
  std::vector<Step> steps_;
  std::vector<std::pair<int32_t, const Value*>> head_src_;
  std::vector<Value> slots_;
  std::vector<const TupleRef*> joined_;
  std::vector<std::vector<const TupleRef*>> cand_;  // per-depth scratch
  const std::vector<const TupleRef*>* first_candidates_ = nullptr;
  std::vector<RuleFiring>* out_ = nullptr;
};

}  // namespace

std::vector<BatchEventFirings> FireRuleBatched(
    const Rule& rule, const RulePlan& plan,
    const std::vector<const Tuple*>& events, const Database& db,
    const FunctionRegistry& fns) {
  std::vector<BatchEventFirings> out(events.size());
  if (plan.never_fires) return out;

  if (UseNaiveFallback(rule, plan, db)) {
    // Tiny tables: mirror FireRulePlanned's fallthrough so batched and
    // per-event evaluation stay byte-identical either side of the
    // crossover.
    for (size_t i = 0; i < events.size(); ++i) {
      Result<std::vector<RuleFiring>> r = FireRule(rule, *events[i], db, fns);
      if (r.ok()) {
        out[i].firings = std::move(r).value();
      } else {
        out[i].status = r.status();
      }
    }
    return out;
  }

  PlanExecutor exec(rule, plan, fns);
  SlotExecutor slots;
  bool use_slots =
      events.size() >= kSlotCompileMinEvents && slots.Compile(rule, plan);
  if (use_slots) slots.Bind(db);
  auto run_one = [&](const Tuple& event,
                     const std::vector<const TupleRef*>* first_candidates,
                     BatchEventFirings& r) {
    if (use_slots) {
      slots.Execute(event, first_candidates, r.firings);
    } else {
      r.status = exec.Execute(event, db, first_candidates, r.firings);
    }
  };

  const Table* first_table =
      plan.steps.empty()
          ? nullptr
          : db.Find(rule.atoms[plan.steps[0].atom_index].relation);
  if (!plan.batch_first_key || first_table == nullptr) {
    // No direct key read (or nothing to probe): the win is the shared
    // executor scratch. A missing first table still runs per event so
    // pre-join evaluation errors surface with per-event fidelity.
    for (size_t i = 0; i < events.size(); ++i) {
      run_one(*events[i], nullptr, out[i]);
    }
    return out;
  }

  // Fast path: hash each event's first-probe key off the tuple and group
  // equal hashes with an open-addressed chain table (O(n), no sort), then
  // fetch each group's candidate run once and execute the plan per member
  // with the probe hoisted out. Evaluation is pure, so grouped execution
  // order doesn't matter — results land at each event's original slot.
  const Table::HashIndex& first_index =
      first_table->IndexFor(plan.steps[0].bound_columns);

  struct Group {
    uint64_t hash = 0;
    int32_t head = -1;  // first event index in the chain
    int32_t tail = -1;  // last event index, for O(1) append
  };
  size_t cap = 1;
  while (cap < events.size() * 2) cap <<= 1;
  std::vector<Group> groups(cap);
  std::vector<int32_t> next(events.size(), -1);
  const size_t mask = cap - 1;
  for (size_t i = 0; i < events.size(); ++i) {
    uint64_t hash = 0;
    if (!FirstKeyHash(plan, *events[i], &hash)) {
      // Shape mismatch: cannot match the event atom; keep exact parity
      // with the per-event path (which returns OK with no firings).
      run_one(*events[i], nullptr, out[i]);
      continue;
    }
    size_t slot = hash & mask;
    while (groups[slot].head >= 0 && groups[slot].hash != hash) {
      slot = (slot + 1) & mask;
    }
    Group& group = groups[slot];
    if (group.head < 0) {
      group.hash = hash;
      group.head = group.tail = static_cast<int32_t>(i);
    } else {
      next[group.tail] = static_cast<int32_t>(i);
      group.tail = static_cast<int32_t>(i);
    }
  }

  // Within a group, identical events yield identical results (evaluation
  // is a pure function of event content and the frozen database), so each
  // result is computed once and later duplicates record a reference to it
  // (same_as) instead of recomputing — or deep-copying — the firings. The
  // rep list is capped: past it, members evaluate directly rather than
  // scanning an ever-longer list (adversarial all-distinct same-hash
  // groups).
  constexpr size_t kMaxMemoReps = 4;
  std::vector<const TupleRef*> candidates;
  std::vector<uint32_t> reps;
  for (const Group& group : groups) {
    if (group.head < 0) continue;
    candidates.clear();
    first_table->CollectFromIndex(first_index, group.hash, candidates);
    reps.clear();
    for (int32_t i = group.head; i >= 0; i = next[i]) {
      const Tuple& event = *events[i];
      const uint32_t* hit = nullptr;
      for (const uint32_t& r : reps) {
        if (*events[r] == event) {
          hit = &r;
          break;
        }
      }
      if (hit != nullptr) {
        out[i].status = out[*hit].status;
        out[i].same_as = static_cast<int32_t>(*hit);
        out[*hit].shared = true;
        continue;
      }
      run_one(event, &candidates, out[i]);
      if (reps.size() < kMaxMemoReps) {
        reps.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  return out;
}

}  // namespace dpc
