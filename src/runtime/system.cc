#include "src/runtime/system.h"

#include <chrono>

#include "src/net/shard_engine.h"

#include "src/util/logging.h"

namespace dpc {

namespace {

using WallClock = std::chrono::steady_clock;

double WallMicrosSince(WallClock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             WallClock::now() - t0)
             .count() /
         1000.0;
}

}  // namespace

System::System(const Program* program, const Topology* topology,
               MessageChannel* channel, EventQueue* queue,
               FunctionRegistry functions, ProvenanceRecorder* recorder)
    : program_(program),
      plan_(program != nullptr ? PlanProgram(*program) : ProgramPlan{}),
      topology_(topology),
      channel_(channel),
      queue_(queue),
      functions_(std::move(functions)),
      recorder_(recorder) {
  DPC_CHECK(program_ != nullptr);
  DPC_CHECK(topology_ != nullptr);
  DPC_CHECK(channel_ != nullptr);
  DPC_CHECK(queue_ != nullptr);
  dbs_.resize(topology_->num_nodes());
  outputs_.resize(topology_->num_nodes());
  MetricsRegistry& reg = GlobalMetrics();
  metrics_.events_injected = &reg.GetCounter("system.events_injected");
  metrics_.rule_firings = &reg.GetCounter("system.rule_firings");
  metrics_.outputs = &reg.GetCounter("system.outputs");
  metrics_.control_signals = &reg.GetCounter("system.control_signals");
  metrics_.malformed_messages = &reg.GetCounter("system.malformed_messages");
  metrics_.invalid_heads = &reg.GetCounter("system.invalid_heads");
  tracer_ = &Trace();
  channel_->SetDeliveryHandler([this](const Message& msg) {
    Status st = HandleMessage(msg);
    if (!st.ok()) {
      DPC_LOG(Error) << "dropped message from node " << msg.src << ": "
                     << st.ToString();
    }
  });
}

Status System::InsertSlowTuple(const Tuple& t) {
  if (!program_->IsSlowChanging(t.relation())) {
    return Status::InvalidArgument("relation " + t.relation() +
                                   " is not slow-changing in program " +
                                   program_->name());
  }
  NodeId node = t.Location();
  if (node < 0 || node >= topology_->num_nodes()) {
    return Status::OutOfRange("tuple located at unknown node " +
                              std::to_string(node));
  }
  // One shared allocation serves the database row and the recorder's
  // materialization; both see the same memoized VID.
  TupleRef ref = MakeTupleRef(t);
  if (!dbs_[node].Insert(ref)) {
    return Status::OK();  // already present: no state change, no broadcast
  }
  if (replay_log_ != nullptr) {
    replay_log_->RecordSlowInsert(GlobalNow(), t);
  }
  if (recorder_ != nullptr && recorder_->OnSlowInsert(node, ref)) {
    // §5.5: broadcast a sig so every node resets its equivalence cache.
    // The inserting node resets synchronously — there must be no window
    // where its own cache is stale — and the broadcast covers the rest
    // (Network::Broadcast does not echo to the originator).
    stats_.control_signals.fetch_add(1, std::memory_order_relaxed);
    metrics_.control_signals->IncrementAt(node);
    recorder_->OnControlSignal(node);
    Message sig;
    sig.kind = MessageKind::kControl;
    channel_->Broadcast(node, std::move(sig));
  }
  return Status::OK();
}

Status System::DeleteSlowTuple(const Tuple& t) {
  if (!program_->IsSlowChanging(t.relation())) {
    return Status::InvalidArgument("relation " + t.relation() +
                                   " is not slow-changing in program " +
                                   program_->name());
  }
  NodeId node = t.Location();
  if (node < 0 || node >= topology_->num_nodes()) {
    return Status::OutOfRange("tuple located at unknown node " +
                              std::to_string(node));
  }
  if (!dbs_[node].Erase(t)) {
    return Status::NotFound("tuple not present: " + t.ToString());
  }
  if (replay_log_ != nullptr) {
    replay_log_->RecordSlowDelete(GlobalNow(), t);
  }
  // Deletions never invalidate stored provenance (§5.5): provenance is
  // monotone execution history.
  if (recorder_ != nullptr) recorder_->OnSlowDelete(node, t);
  return Status::OK();
}

Status System::ScheduleInject(const Tuple& event, SimTime when) {
  if (event.relation() != program_->input_event_relation()) {
    return Status::InvalidArgument(
        "injected relation " + event.relation() +
        " is not the program's input event relation " +
        program_->input_event_relation());
  }
  // Arity must match r1's event atom: recorders hash equivalence-key
  // attribute positions of the event, and a short tuple must be rejected
  // here with a Status rather than crashing the node at hash time.
  const Atom& event_atom = program_->rules().front().EventAtom();
  if (event.arity() != event_atom.args.size()) {
    return Status::InvalidArgument(
        "injected event " + event.ToString() + " has arity " +
        std::to_string(event.arity()) + " but the program's event atom " +
        event_atom.ToString() + " expects arity " +
        std::to_string(event_atom.args.size()));
  }
  NodeId node = event.Location();
  if (node < 0 || node >= topology_->num_nodes()) {
    return Status::OutOfRange("event located at unknown node " +
                              std::to_string(node));
  }
  if (replay_log_ != nullptr) {
    replay_log_->RecordInject(when, event);
  }
  auto inject = [this, ev = MakeTupleRef(event), node]() {
    stats_.events_injected.fetch_add(1, std::memory_order_relaxed);
    metrics_.events_injected->IncrementAt(node);
    ProvMeta meta;
    if (recorder_ != nullptr) {
      if (tracer_->enabled()) {
        auto t0 = WallClock::now();
        meta = recorder_->OnInject(node, ev);
        tracer_->CompleteAt(node, TraceCat::kRecorder, "on_inject",
                            NowFor(node),
                            "\"wall_us\": " +
                                std::to_string(WallMicrosSince(t0)));
      } else {
        meta = recorder_->OnInject(node, ev);
      }
    }
    ProcessEvent(node, ev, meta);
  };
  if (engine_ != nullptr) {
    engine_->ScheduleAtNode(node, when, std::move(inject));
  } else {
    queue_->ScheduleAt(when, std::move(inject));
  }
  return Status::OK();
}

void System::ProcessEvent(NodeId node, const TupleRef& tuple,
                          const ProvMeta& meta) {
  std::vector<const Rule*> rules =
      program_->RulesTriggeredBy(tuple->relation());
  for (const Rule* rule : rules) {
    // RulesTriggeredBy returns pointers into program_->rules(), so the
    // offset recovers the rule's statically compiled plan.
    size_t rule_index = static_cast<size_t>(rule - program_->rules().data());
    const RulePlan& rule_plan = plan_.rules[rule_index];
    bool tracing = tracer_->enabled();
    auto eval_start = tracing ? WallClock::now() : WallClock::time_point{};
    Result<std::vector<RuleFiring>> firings =
        FireRulePlanned(*rule, rule_plan, *tuple, dbs_[node], functions_);
    if (tracing) {
      tracer_->CompleteAt(
          node, TraceCat::kRule, "fire:" + rule->id, NowFor(node),
          "\"plan_steps\": " + std::to_string(rule_plan.steps.size()) +
              ", \"firings\": " +
              std::to_string(firings.ok() ? firings->size() : 0) +
              ", \"wall_us\": " + std::to_string(WallMicrosSince(eval_start)));
    }
    if (!firings.ok()) {
      DPC_LOG(Error) << "rule " << rule->id
                     << " failed: " << firings.status().ToString();
      continue;
    }
    for (RuleFiring& f : *firings) {
      stats_.rule_firings.fetch_add(1, std::memory_order_relaxed);
      metrics_.rule_firings->IncrementAt(node);
      // One allocation carries the head through the recorder, the local
      // database / output record, and message construction.
      TupleRef head = MakeTupleRef(std::move(f.head));
      // A head built from untrusted event values can lack an integer
      // location, or name a node outside the topology. Validate before
      // the recorder hook (ExSPAN indexes per-node state by it) and
      // drop the firing (counted) instead of aborting in
      // Tuple::Location or walking off the node array.
      if (!head->HasValidLocation() || head->Location() < 0 ||
          head->Location() >= topology_->num_nodes()) {
        metrics_.invalid_heads->IncrementAt(node);
        DPC_LOG(Error) << "rule " << rule->id
                       << " derived a head without a valid location: "
                       << head->ToString();
        continue;
      }
      ProvMeta head_meta = meta;
      if (recorder_ != nullptr) {
        if (tracing) {
          auto t0 = WallClock::now();
          head_meta = recorder_->OnRuleFired(node, *rule, tuple, meta,
                                             f.slow_tuples, head);
          tracer_->CompleteAt(node, TraceCat::kRecorder, "on_rule_fired",
                              NowFor(node),
                              "\"rule\": \"" + rule->id + "\", \"wall_us\": " +
                                  std::to_string(WallMicrosSince(t0)));
        } else {
          head_meta = recorder_->OnRuleFired(node, *rule, tuple, meta,
                                             f.slow_tuples, head);
        }
      }
      NodeId head_loc = head->Location();
      bool head_is_event =
          !program_->RulesTriggeredBy(head->relation()).empty();
      if (head_is_event) {
        // The pipeline continues: ship (or locally deliver) the new event.
        SendEvent(node, head, head_meta);
      } else if (head_loc == node) {
        EmitOutput(node, head, head_meta);
      } else {
        // Terminal output materialized remotely (e.g. DNS r4's reply).
        SendEvent(node, head, head_meta);
      }
    }
  }
}

void System::EmitOutput(NodeId node, const TupleRef& tuple,
                        const ProvMeta& meta) {
  stats_.outputs.fetch_add(1, std::memory_order_relaxed);
  metrics_.outputs->IncrementAt(node);
  dbs_[node].Insert(tuple);
  if (recorder_ != nullptr) {
    if (tracer_->enabled()) {
      auto t0 = WallClock::now();
      recorder_->OnOutput(node, tuple, meta);
      tracer_->CompleteAt(
          node, TraceCat::kRecorder, "on_output", NowFor(node),
          "\"wall_us\": " + std::to_string(WallMicrosSince(t0)));
    } else {
      recorder_->OnOutput(node, tuple, meta);
    }
  }
  outputs_[node].push_back(OutputRecord{*tuple, meta, NowFor(node)});
  if (output_callback_) output_callback_(node, outputs_[node].back());
}

std::vector<uint8_t> System::EncodeEventPayload(const Tuple& tuple,
                                                const ProvMeta& meta) const {
  ByteWriter w;
  w.Reserve(tuple.SerializedSize());
  tuple.Serialize(w);
  if (recorder_ != nullptr) recorder_->SerializeMeta(meta, w);
  return w.Take();
}

void System::SendEvent(NodeId from, const TupleRef& tuple,
                       const ProvMeta& meta) {
  Message msg;
  msg.kind = MessageKind::kEvent;
  msg.src = from;
  msg.dst = tuple->Location();
  msg.payload = EncodeEventPayload(*tuple, meta);
  channel_->Send(std::move(msg));
}

Status System::HandleMessage(const Message& msg) {
  switch (msg.kind) {
    case MessageKind::kControl: {
      stats_.control_signals.fetch_add(1, std::memory_order_relaxed);
      metrics_.control_signals->IncrementAt(msg.dst);
      if (recorder_ != nullptr) recorder_->OnControlSignal(msg.dst);
      return Status::OK();
    }
    case MessageKind::kEvent: {
      // Everything decoded here is untrusted peer bytes: any failure is
      // a counted Status, never a DPC_CHECK (a malformed message must
      // cost the sender a dropped event, not the receiver its process).
      ByteReader r(msg.payload);
      Result<Tuple> tuple = Tuple::Deserialize(r);
      if (!tuple.ok()) {
        metrics_.malformed_messages->IncrementAt(msg.dst);
        return Status::InvalidArgument("bad event payload from node " +
                                       std::to_string(msg.src) + ": " +
                                       tuple.status().ToString());
      }
      if (!tuple->HasValidLocation()) {
        metrics_.malformed_messages->IncrementAt(msg.dst);
        return Status::InvalidArgument(
            "event tuple without an integer location from node " +
            std::to_string(msg.src) + ": " + tuple->ToString());
      }
      ProvMeta meta;
      if (recorder_ != nullptr) {
        Result<ProvMeta> m = recorder_->DeserializeMeta(r);
        if (!m.ok()) {
          metrics_.malformed_messages->IncrementAt(msg.dst);
          return Status::InvalidArgument("bad meta payload from node " +
                                         std::to_string(msg.src) + ": " +
                                         m.status().ToString());
        }
        meta = std::move(m).value();
      }
      NodeId node = msg.dst;
      // Intern (when enabled) so repeated identical deliveries share one
      // allocation and its memoized identities.
      TupleRef ev = interning_enabled_
                        ? interner_.Intern(std::move(tuple).value())
                        : MakeTupleRef(std::move(tuple).value());
      if (!program_->RulesTriggeredBy(ev->relation()).empty()) {
        // Arrival-side provenance materialization (ExSPAN's shipped
        // (RLoc, RID) row) happens here, on the destination's shard;
        // terminal arrivals get theirs from EmitOutput's OnOutput.
        if (recorder_ != nullptr) recorder_->OnArrival(node, ev, meta);
        ProcessEvent(node, ev, meta);
      } else {
        EmitOutput(node, ev, meta);
      }
      return Status::OK();
    }
    case MessageKind::kQuery:
      metrics_.malformed_messages->IncrementAt(msg.dst);
      return Status::InvalidArgument(
          "unexpected query message in System (query traffic rides the "
          "querier's own network)");
    case MessageKind::kAck:
      // Transport acks are consumed by ReliableTransport; one arriving
      // here means the channel is the raw Network — drop it.
      metrics_.malformed_messages->IncrementAt(msg.dst);
      return Status::InvalidArgument("unexpected transport ack in System");
  }
  return Status::InvalidArgument("unknown message kind");
}

void System::Run(size_t max_events) {
  if (engine_ != nullptr) {
    engine_->RunAll(max_events);
  } else {
    queue_->RunAll(max_events);
  }
}

void System::RunUntil(SimTime t) {
  if (engine_ != nullptr) {
    engine_->RunUntil(t);
  } else {
    queue_->RunUntil(t);
  }
}

SimTime System::NowFor(NodeId node) const {
  return engine_ != nullptr ? engine_->queue(engine_->shard_of(node)).now()
                            : queue_->now();
}

SimTime System::GlobalNow() const {
  return engine_ != nullptr ? engine_->now() : queue_->now();
}

std::vector<OutputRecord> System::AllOutputs() const {
  std::vector<OutputRecord> out;
  for (const auto& per_node : outputs_) {
    out.insert(out.end(), per_node.begin(), per_node.end());
  }
  return out;
}

}  // namespace dpc
