#include "src/runtime/system.h"

#include <chrono>
#include <set>
#include <utility>

#include "src/net/shard_engine.h"
#include "src/runtime/batch_eval.h"

#include "src/util/logging.h"

namespace dpc {

thread_local std::vector<System::PendingEvent>* System::tls_collector_ =
    nullptr;
thread_local System* System::tls_collector_owner_ = nullptr;

namespace {

using WallClock = std::chrono::steady_clock;

double WallMicrosSince(WallClock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             WallClock::now() - t0)
             .count() /
         1000.0;
}

}  // namespace

System::System(const Program* program, const Topology* topology,
               MessageChannel* channel, EventQueue* queue,
               FunctionRegistry functions, ProvenanceRecorder* recorder)
    : program_(program),
      plan_(program != nullptr ? PlanProgram(*program) : ProgramPlan{}),
      topology_(topology),
      channel_(channel),
      queue_(queue),
      functions_(std::move(functions)),
      recorder_(recorder) {
  DPC_CHECK(program_ != nullptr);
  DPC_CHECK(topology_ != nullptr);
  DPC_CHECK(channel_ != nullptr);
  DPC_CHECK(queue_ != nullptr);
  dbs_.resize(topology_->num_nodes());
  outputs_.resize(topology_->num_nodes());
  MetricsRegistry& reg = GlobalMetrics();
  metrics_.events_injected = &reg.GetCounter("system.events_injected");
  metrics_.rule_firings = &reg.GetCounter("system.rule_firings");
  metrics_.outputs = &reg.GetCounter("system.outputs");
  metrics_.control_signals = &reg.GetCounter("system.control_signals");
  metrics_.malformed_messages = &reg.GetCounter("system.malformed_messages");
  metrics_.invalid_heads = &reg.GetCounter("system.invalid_heads");
  metrics_.batch_size = &reg.GetHistogram("system.batch_size");
  batched_firings_counters_.reserve(program_->rules().size());
  for (const Rule& r : program_->rules()) {
    batched_firings_counters_.push_back(
        &reg.GetCounter("system.batched_firings." + r.id));
  }
  // Static batchability (docs/perf.md): a trigger relation batches only
  // when no rule it triggers derives a head relation that any rule it
  // triggers also conditions on — EmitOutput inserts heads into the local
  // database synchronously, and a same-instant insert visible to later
  // events under tuple-at-a-time must not be hidden by pre-collecting the
  // batch. (Event heads are exempt implicitly: they travel through the
  // network with a strictly positive local delay.)
  {
    std::set<std::string> trigger_relations;
    for (const Rule& r : program_->rules()) {
      trigger_relations.insert(r.EventAtom().relation);
    }
    uint64_t ordinal = 1;
    for (const std::string& rel : trigger_relations) {
      std::vector<const Rule*> triggered = program_->RulesTriggeredBy(rel);
      std::set<std::string> condition_relations;
      for (const Rule* r : triggered) {
        for (size_t i = 0; i < r->atoms.size(); ++i) {
          if (i != r->event_index) {
            condition_relations.insert(r->atoms[i].relation);
          }
        }
      }
      bool batchable = true;
      for (const Rule* r : triggered) {
        if (condition_relations.count(r->head.relation) > 0) {
          batchable = false;
          break;
        }
      }
      if (batchable) batch_relation_ids_.emplace(rel, ordinal++);
    }
  }
  tracer_ = &Trace();
  channel_->SetDeliveryHandler([this](const Message& msg) {
    Status st = HandleMessage(msg);
    if (!st.ok()) {
      DPC_LOG(Error) << "dropped message from node " << msg.src << ": "
                     << st.ToString();
    }
  });
}

Status System::InsertSlowTuple(const Tuple& t) {
  if (!program_->IsSlowChanging(t.relation())) {
    return Status::InvalidArgument("relation " + t.relation() +
                                   " is not slow-changing in program " +
                                   program_->name());
  }
  NodeId node = t.Location();
  if (node < 0 || node >= topology_->num_nodes()) {
    return Status::OutOfRange("tuple located at unknown node " +
                              std::to_string(node));
  }
  // One shared allocation serves the database row and the recorder's
  // materialization; both see the same memoized VID.
  TupleRef ref = MakeTupleRef(t);
  if (!dbs_[node].Insert(ref)) {
    return Status::OK();  // already present: no state change, no broadcast
  }
  if (replay_log_ != nullptr) {
    replay_log_->RecordSlowInsert(GlobalNow(), t);
  }
  if (recorder_ != nullptr && recorder_->OnSlowInsert(node, ref)) {
    // §5.5: broadcast a sig so every node resets its equivalence cache.
    // The inserting node resets synchronously — there must be no window
    // where its own cache is stale — and the broadcast covers the rest
    // (Network::Broadcast does not echo to the originator).
    stats_.control_signals.fetch_add(1, std::memory_order_relaxed);
    metrics_.control_signals->IncrementAt(node);
    recorder_->OnControlSignal(node);
    Message sig;
    sig.kind = MessageKind::kControl;
    channel_->Broadcast(node, std::move(sig));
  }
  return Status::OK();
}

Status System::DeleteSlowTuple(const Tuple& t) {
  if (!program_->IsSlowChanging(t.relation())) {
    return Status::InvalidArgument("relation " + t.relation() +
                                   " is not slow-changing in program " +
                                   program_->name());
  }
  NodeId node = t.Location();
  if (node < 0 || node >= topology_->num_nodes()) {
    return Status::OutOfRange("tuple located at unknown node " +
                              std::to_string(node));
  }
  if (!dbs_[node].Erase(t)) {
    return Status::NotFound("tuple not present: " + t.ToString());
  }
  if (replay_log_ != nullptr) {
    replay_log_->RecordSlowDelete(GlobalNow(), t);
  }
  // Deletions never invalidate stored provenance (§5.5): provenance is
  // monotone execution history.
  if (recorder_ != nullptr) recorder_->OnSlowDelete(node, t);
  return Status::OK();
}

Status System::ScheduleInject(const Tuple& event, SimTime when) {
  if (event.relation() != program_->input_event_relation()) {
    return Status::InvalidArgument(
        "injected relation " + event.relation() +
        " is not the program's input event relation " +
        program_->input_event_relation());
  }
  // Arity must match r1's event atom: recorders hash equivalence-key
  // attribute positions of the event, and a short tuple must be rejected
  // here with a Status rather than crashing the node at hash time.
  const Atom& event_atom = program_->rules().front().EventAtom();
  if (event.arity() != event_atom.args.size()) {
    return Status::InvalidArgument(
        "injected event " + event.ToString() + " has arity " +
        std::to_string(event.arity()) + " but the program's event atom " +
        event_atom.ToString() + " expects arity " +
        std::to_string(event_atom.args.size()));
  }
  NodeId node = event.Location();
  if (node < 0 || node >= topology_->num_nodes()) {
    return Status::OutOfRange("event located at unknown node " +
                              std::to_string(node));
  }
  if (replay_log_ != nullptr) {
    replay_log_->RecordInject(when, event);
  }
  uint64_t tag = BatchTagFor(node, event.relation());
  auto inject = [this, ev = MakeTupleRef(event), node, tag]() {
    stats_.events_injected.fetch_add(1, std::memory_order_relaxed);
    metrics_.events_injected->IncrementAt(node);
    Dispatch(node, ev, ProvMeta{}, /*is_arrival=*/false, tag);
  };
  if (engine_ != nullptr) {
    engine_->ScheduleAtNode(node, when, std::move(inject), tag);
  } else {
    queue_->ScheduleAtTagged(when, tag, std::move(inject));
  }
  return Status::OK();
}

uint64_t System::BatchTagFor(NodeId node, const std::string& relation) const {
  if (!batch_eval_) return 0;
  auto it = batch_relation_ids_.find(relation);
  if (it == batch_relation_ids_.end()) return 0;
  // (node + 1) keeps the tag nonzero for node 0; the ordinal separates
  // relations landing at the same node at the same instant.
  return (static_cast<uint64_t>(static_cast<uint32_t>(node + 1)) << 32) |
         it->second;
}

ProvMeta System::RunEventHook(NodeId node, const TupleRef& tuple,
                              const ProvMeta& meta, bool is_arrival) {
  if (recorder_ == nullptr) return meta;
  if (is_arrival) {
    // Arrival-side provenance materialization (ExSPAN's shipped
    // (RLoc, RID) row) happens here, on the destination's shard;
    // terminal arrivals get theirs from EmitOutput's OnOutput.
    recorder_->OnArrival(node, tuple, meta);
    return meta;
  }
  if (tracer_->enabled()) {
    auto t0 = WallClock::now();
    ProvMeta m = recorder_->OnInject(node, tuple);
    tracer_->CompleteAt(
        node, TraceCat::kRecorder, "on_inject", NowFor(node),
        "\"wall_us\": " + std::to_string(WallMicrosSince(t0)));
    return m;
  }
  return recorder_->OnInject(node, tuple);
}

void System::Dispatch(NodeId node, const TupleRef& tuple, const ProvMeta& meta,
                      bool is_arrival, uint64_t tag) {
  if (tls_collector_ != nullptr) {
    if (tls_collector_owner_ == this) {
      // A batch drain is collecting on this thread: defer the event.
      tls_collector_->push_back(PendingEvent{tuple, meta, is_arrival});
      return;
    }
    // Another System's drain is in progress (shared queue, colliding
    // tags): process tuple-at-a-time rather than nest a second drain.
  } else if (batch_eval_ && tag != 0 &&
             TryProcessBatch(node, tuple, meta, is_arrival, tag)) {
    return;
  }
  ProvMeta m = RunEventHook(node, tuple, meta, is_arrival);
  ProcessEvent(node, tuple, m);
}

bool System::TryProcessBatch(NodeId node, const TupleRef& tuple,
                             const ProvMeta& meta, bool is_arrival,
                             uint64_t tag) {
  EventQueue* q = EventQueue::Current();
  // Only the event the queue itself just popped may drain its peers: a
  // direct HandleMessage call (tests, replay) has no queue context, and
  // the next entry must fire at this same instant with this same tag.
  if (q == nullptr || q->HeadTagAtNow() != tag) return false;
  std::vector<PendingEvent> batch;
  batch.push_back(PendingEvent{tuple, meta, is_arrival});
  tls_collector_ = &batch;
  tls_collector_owner_ = this;
  q->DrainAtTime(tag);
  tls_collector_ = nullptr;
  tls_collector_owner_ = nullptr;
  ProcessBatch(node, batch);
  return true;
}

void System::ProcessBatch(NodeId node, std::vector<PendingEvent>& batch) {
  metrics_.batch_size->Observe(static_cast<double>(batch.size()));
  std::vector<const Rule*> rules =
      program_->RulesTriggeredBy(batch.front().tuple->relation());
  std::vector<const Tuple*> events;
  events.reserve(batch.size());
  for (const PendingEvent& pe : batch) events.push_back(pe.tuple.get());

  // Phase A: evaluate each rule once over the whole batch. Pure — reads
  // the local database only — so every event sees exactly the state it
  // would have seen tuple-at-a-time (the static batchability guard rules
  // out same-instant local inserts into probed relations).
  bool tracing = tracer_->enabled();
  std::vector<std::vector<BatchEventFirings>> results(rules.size());
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const Rule* rule = rules[ri];
    size_t rule_index = static_cast<size_t>(rule - program_->rules().data());
    auto eval_start = tracing ? WallClock::now() : WallClock::time_point{};
    results[ri] = FireRuleBatched(*rule, plan_.rules[rule_index], events,
                                  dbs_[node], functions_);
    uint64_t firings = 0;
    for (size_t e = 0; e < results[ri].size(); ++e) {
      firings += FiringsOf(results[ri], e).size();
    }
    batched_firings_counters_[rule_index]->IncrementAt(node, firings);
    if (tracing) {
      tracer_->CompleteAt(
          node, TraceCat::kBatch, "batch:" + rule->id, NowFor(node),
          "\"batch_size\": " + std::to_string(batch.size()) +
              ", \"firings\": " + std::to_string(firings) +
              ", \"wall_us\": " + std::to_string(WallMicrosSince(eval_start)));
    }
  }

  // Phase B: emit per event, in batch (= queue sequence) order — the
  // identical interleaving of recorder hooks, sends and outputs as N
  // separate dispatches, so downstream tie-breaks cannot diverge.
  for (size_t e = 0; e < batch.size(); ++e) {
    PendingEvent& pe = batch[e];
    ProvMeta meta = RunEventHook(node, pe.tuple, pe.meta, pe.is_arrival);
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      BatchEventFirings& own = results[ri][e];
      if (!own.status.ok()) {
        DPC_LOG(Error) << "rule " << rules[ri]->id
                       << " failed: " << own.status.ToString();
        continue;
      }
      // A memoized duplicate emits the representative's firings; a
      // representative some duplicate still needs keeps its firings
      // intact, so emission copies instead of moving out of them.
      BatchEventFirings& bf =
          own.same_as >= 0 ? results[ri][static_cast<size_t>(own.same_as)]
                           : own;
      for (RuleFiring& f : bf.firings) {
        if (bf.shared) {
          RuleFiring copy = f;
          EmitFiring(node, *rules[ri], pe.tuple, meta, copy);
        } else {
          EmitFiring(node, *rules[ri], pe.tuple, meta, f);
        }
      }
    }
  }
}

void System::ProcessEvent(NodeId node, const TupleRef& tuple,
                          const ProvMeta& meta) {
  std::vector<const Rule*> rules =
      program_->RulesTriggeredBy(tuple->relation());
  for (const Rule* rule : rules) {
    // RulesTriggeredBy returns pointers into program_->rules(), so the
    // offset recovers the rule's statically compiled plan.
    size_t rule_index = static_cast<size_t>(rule - program_->rules().data());
    const RulePlan& rule_plan = plan_.rules[rule_index];
    bool tracing = tracer_->enabled();
    auto eval_start = tracing ? WallClock::now() : WallClock::time_point{};
    Result<std::vector<RuleFiring>> firings =
        FireRulePlanned(*rule, rule_plan, *tuple, dbs_[node], functions_);
    if (tracing) {
      tracer_->CompleteAt(
          node, TraceCat::kRule, "fire:" + rule->id, NowFor(node),
          "\"plan_steps\": " + std::to_string(rule_plan.steps.size()) +
              ", \"firings\": " +
              std::to_string(firings.ok() ? firings->size() : 0) +
              ", \"wall_us\": " + std::to_string(WallMicrosSince(eval_start)));
    }
    if (!firings.ok()) {
      DPC_LOG(Error) << "rule " << rule->id
                     << " failed: " << firings.status().ToString();
      continue;
    }
    for (RuleFiring& f : *firings) {
      EmitFiring(node, *rule, tuple, meta, f);
    }
  }
}

void System::EmitFiring(NodeId node, const Rule& rule, const TupleRef& tuple,
                        const ProvMeta& meta, RuleFiring& f) {
  stats_.rule_firings.fetch_add(1, std::memory_order_relaxed);
  metrics_.rule_firings->IncrementAt(node);
  // One allocation carries the head through the recorder, the local
  // database / output record, and message construction.
  TupleRef head = MakeTupleRef(std::move(f.head));
  // A head built from untrusted event values can lack an integer
  // location, or name a node outside the topology. Validate before
  // the recorder hook (ExSPAN indexes per-node state by it) and
  // drop the firing (counted) instead of aborting in
  // Tuple::Location or walking off the node array.
  if (!head->HasValidLocation() || head->Location() < 0 ||
      head->Location() >= topology_->num_nodes()) {
    metrics_.invalid_heads->IncrementAt(node);
    DPC_LOG(Error) << "rule " << rule.id
                   << " derived a head without a valid location: "
                   << head->ToString();
    return;
  }
  ProvMeta head_meta = meta;
  if (recorder_ != nullptr) {
    if (tracer_->enabled()) {
      auto t0 = WallClock::now();
      head_meta = recorder_->OnRuleFired(node, rule, tuple, meta,
                                         f.slow_tuples, head);
      tracer_->CompleteAt(node, TraceCat::kRecorder, "on_rule_fired",
                          NowFor(node),
                          "\"rule\": \"" + rule.id + "\", \"wall_us\": " +
                              std::to_string(WallMicrosSince(t0)));
    } else {
      head_meta = recorder_->OnRuleFired(node, rule, tuple, meta,
                                         f.slow_tuples, head);
    }
  }
  NodeId head_loc = head->Location();
  bool head_is_event = !program_->RulesTriggeredBy(head->relation()).empty();
  if (head_is_event) {
    // The pipeline continues: ship (or locally deliver) the new event.
    SendEvent(node, head, head_meta);
  } else if (head_loc == node) {
    EmitOutput(node, head, head_meta);
  } else {
    // Terminal output materialized remotely (e.g. DNS r4's reply).
    SendEvent(node, head, head_meta);
  }
}

void System::EmitOutput(NodeId node, const TupleRef& tuple,
                        const ProvMeta& meta) {
  stats_.outputs.fetch_add(1, std::memory_order_relaxed);
  metrics_.outputs->IncrementAt(node);
  dbs_[node].Insert(tuple);
  if (recorder_ != nullptr) {
    if (tracer_->enabled()) {
      auto t0 = WallClock::now();
      recorder_->OnOutput(node, tuple, meta);
      tracer_->CompleteAt(
          node, TraceCat::kRecorder, "on_output", NowFor(node),
          "\"wall_us\": " + std::to_string(WallMicrosSince(t0)));
    } else {
      recorder_->OnOutput(node, tuple, meta);
    }
  }
  outputs_[node].push_back(OutputRecord{*tuple, meta, NowFor(node)});
  if (output_callback_) output_callback_(node, outputs_[node].back());
}

std::vector<uint8_t> System::EncodeEventPayload(const Tuple& tuple,
                                                const ProvMeta& meta) const {
  ByteWriter w;
  w.Reserve(tuple.SerializedSize());
  tuple.Serialize(w);
  if (recorder_ != nullptr) recorder_->SerializeMeta(meta, w);
  return w.Take();
}

void System::SendEvent(NodeId from, const TupleRef& tuple,
                       const ProvMeta& meta) {
  Message msg;
  msg.kind = MessageKind::kEvent;
  msg.src = from;
  msg.dst = tuple->Location();
  msg.payload = EncodeEventPayload(*tuple, meta);
  // Tag the delivery so same-instant arrivals of a batchable trigger
  // relation drain into one batch at the destination (docs/perf.md). The
  // network attaches the tag to the final-hop delivery entry only.
  msg.batch_tag = BatchTagFor(msg.dst, tuple->relation());
  channel_->Send(std::move(msg));
}

Status System::HandleMessage(const Message& msg) {
  switch (msg.kind) {
    case MessageKind::kControl: {
      stats_.control_signals.fetch_add(1, std::memory_order_relaxed);
      metrics_.control_signals->IncrementAt(msg.dst);
      if (recorder_ != nullptr) recorder_->OnControlSignal(msg.dst);
      return Status::OK();
    }
    case MessageKind::kEvent: {
      // Everything decoded here is untrusted peer bytes: any failure is
      // a counted Status, never a DPC_CHECK (a malformed message must
      // cost the sender a dropped event, not the receiver its process).
      ByteReader r(msg.payload);
      Result<Tuple> tuple = Tuple::Deserialize(r);
      if (!tuple.ok()) {
        metrics_.malformed_messages->IncrementAt(msg.dst);
        return Status::InvalidArgument("bad event payload from node " +
                                       std::to_string(msg.src) + ": " +
                                       tuple.status().ToString());
      }
      if (!tuple->HasValidLocation()) {
        metrics_.malformed_messages->IncrementAt(msg.dst);
        return Status::InvalidArgument(
            "event tuple without an integer location from node " +
            std::to_string(msg.src) + ": " + tuple->ToString());
      }
      ProvMeta meta;
      if (recorder_ != nullptr) {
        Result<ProvMeta> m = recorder_->DeserializeMeta(r);
        if (!m.ok()) {
          metrics_.malformed_messages->IncrementAt(msg.dst);
          return Status::InvalidArgument("bad meta payload from node " +
                                         std::to_string(msg.src) + ": " +
                                         m.status().ToString());
        }
        meta = std::move(m).value();
      }
      NodeId node = msg.dst;
      // Intern (when enabled) so repeated identical deliveries share one
      // allocation and its memoized identities.
      TupleRef ev = interning_enabled_
                        ? interner_.Intern(std::move(tuple).value())
                        : MakeTupleRef(std::move(tuple).value());
      if (!program_->RulesTriggeredBy(ev->relation()).empty()) {
        Dispatch(node, ev, meta, /*is_arrival=*/true, msg.batch_tag);
      } else {
        EmitOutput(node, ev, meta);
      }
      return Status::OK();
    }
    case MessageKind::kQuery:
      metrics_.malformed_messages->IncrementAt(msg.dst);
      return Status::InvalidArgument(
          "unexpected query message in System (query traffic rides the "
          "querier's own network)");
    case MessageKind::kAck:
      // Transport acks are consumed by ReliableTransport; one arriving
      // here means the channel is the raw Network — drop it.
      metrics_.malformed_messages->IncrementAt(msg.dst);
      return Status::InvalidArgument("unexpected transport ack in System");
  }
  return Status::InvalidArgument("unknown message kind");
}

void System::Run(size_t max_events) {
  if (engine_ != nullptr) {
    engine_->RunAll(max_events);
  } else {
    queue_->RunAll(max_events);
  }
}

void System::RunUntil(SimTime t) {
  if (engine_ != nullptr) {
    engine_->RunUntil(t);
  } else {
    queue_->RunUntil(t);
  }
}

SimTime System::NowFor(NodeId node) const {
  return engine_ != nullptr ? engine_->queue(engine_->shard_of(node)).now()
                            : queue_->now();
}

SimTime System::GlobalNow() const {
  return engine_ != nullptr ? engine_->now() : queue_->now();
}

std::vector<OutputRecord> System::AllOutputs() const {
  std::vector<OutputRecord> out;
  for (const auto& per_node : outputs_) {
    out.insert(out.end(), per_node.begin(), per_node.end());
  }
  return out;
}

}  // namespace dpc
